//! Property-based equivalence of the streaming/sharded ingest path:
//! the sharded v2 container round-trips arbitrary traces, and the
//! incremental `StreamingAnalyzer` reproduces the resident `Analyzer`
//! field for field, bit for bit, for any shard size and thread count.

use memgaze::analysis::{
    locality_vs_interval_with, reuse_histogram_from, stream_resident_trace, AnalysisConfig,
    Analyzer,
};
use memgaze::core::{run_fanout, FanoutBackend, FanoutConfig};
use memgaze::model::{
    decode_sharded, encode_sharded, encode_sharded_indexed, Access, AuxAnnotations, FunctionId, Ip,
    IpAnnot, LoadClass, Sample, SampledTrace, ShardReader, SymbolTable, TraceMeta,
};
use proptest::prelude::*;

fn arb_access() -> impl Strategy<Value = Access> {
    (0u64..64, 0u64..(1 << 16), 0u64..(1 << 20))
        .prop_map(|(ip, addr, t)| Access::new(0x400 + ip * 4, 0x10_0000 + addr * 8, t))
}

fn arb_window(max: usize) -> impl Strategy<Value = Vec<Access>> {
    prop::collection::vec(arb_access(), 0..max).prop_map(|mut v| {
        v.sort_by_key(|a| a.time);
        v
    })
}

fn arb_trace() -> impl Strategy<Value = SampledTrace> {
    prop::collection::vec(arb_window(120), 0..10).prop_map(|windows| {
        let mut t = SampledTrace::new(TraceMeta::new("prop", 10_000, 8192));
        let mut offset = 0u64;
        for w in windows {
            let shifted: Vec<Access> = w
                .iter()
                .map(|a| Access::new(a.ip, a.addr, a.time + offset))
                .collect();
            let trigger = shifted.last().map_or(offset, |a| a.time + 1);
            t.push_sample(Sample::new(shifted, trigger)).unwrap();
            offset = trigger + 10_000;
        }
        t.meta.total_loads = offset;
        t
    })
}

/// Annotations and symbols covering the ip range `arb_access` draws
/// from, mixing strided/irregular/constant classes across two functions.
fn fixtures() -> (AuxAnnotations, SymbolTable) {
    let mut annots = AuxAnnotations::new();
    for k in 0..64u64 {
        let ip = Ip(0x400 + k * 4);
        let (class, func) = match k % 3 {
            0 => (LoadClass::Strided, FunctionId(0)),
            1 => (LoadClass::Irregular, FunctionId(if k < 32 { 0 } else { 1 })),
            _ => (LoadClass::Constant, FunctionId(1)),
        };
        let mut an = IpAnnot::of_class(class, func);
        an.implied_const = (k % 5) as u32;
        annots.insert(ip, an);
    }
    let mut symbols = SymbolTable::new();
    symbols.add_function("alpha", Ip(0x400), Ip(0x480), "p.c");
    symbols.add_function("beta", Ip(0x480), Ip(0x500), "p.c");
    (annots, symbols)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The sharded v2 container round-trips arbitrary traces at any
    /// shard size, and the shard iterator re-yields the exact samples.
    #[test]
    fn sharded_container_roundtrips(t in arb_trace(), shard in 1usize..40) {
        let bytes = encode_sharded(&t, shard);
        let back = decode_sharded(&bytes).unwrap();
        prop_assert_eq!(&back, &t);

        let mut reader = ShardReader::new(bytes.as_slice()).unwrap();
        let mut samples = Vec::new();
        for s in reader.by_ref() {
            samples.extend(s.unwrap().samples);
        }
        prop_assert_eq!(&samples, &t.samples);
        prop_assert_eq!(reader.meta(), &t.meta);
    }

    /// Streaming analysis equals resident analysis field for field, for
    /// random traces, shard sizes, and worker counts.
    #[test]
    fn streaming_report_matches_resident(
        t in arb_trace(),
        shard in 1usize..24,
        threads in 1usize..5,
    ) {
        let (annots, symbols) = fixtures();
        let cfg = AnalysisConfig::default();
        let sizes = [8u64, 32];
        let resident = Analyzer::new(&t, &annots, &symbols)
            .with_config(AnalysisConfig { threads: 1, ..cfg });
        let report = stream_resident_trace(
            &t,
            &annots,
            &symbols,
            AnalysisConfig { threads, ..cfg },
            &sizes,
            shard,
        );
        prop_assert_eq!(report.decompression, resident.decompression());
        prop_assert_eq!(&report.function_rows[..], resident.function_table());
        prop_assert_eq!(&report.block_reuse, resident.block_reuse());
        prop_assert_eq!(
            &report.reuse_histogram,
            &reuse_histogram_from(resident.sample_reuse())
        );
        prop_assert_eq!(
            &report.locality_series,
            &locality_vs_interval_with(&t, &annots, cfg.reuse_block, &sizes, 1)
        );
        for n in [1usize, 4] {
            prop_assert_eq!(report.interval_rows(n), resident.interval_rows(n));
        }
    }

    /// Fan-out over an indexed container reproduces the resident
    /// streaming report field for field, for random traces, shard
    /// sizes, and worker counts.
    #[test]
    fn fanout_report_matches_resident(
        t in arb_trace(),
        shard in 1usize..24,
        workers in 1usize..7,
    ) {
        let (annots, symbols) = fixtures();
        let cfg = AnalysisConfig { threads: 1, ..AnalysisConfig::default() };
        let sizes = [8u64, 32];
        let resident = stream_resident_trace(&t, &annots, &symbols, cfg, &sizes, shard);
        let (container, index) = encode_sharded_indexed(&t, shard);
        let fan_cfg = FanoutConfig {
            workers,
            locality_sizes: sizes.to_vec(),
            ..FanoutConfig::default()
        };
        let run = run_fanout(
            &container,
            &index,
            &annots,
            &symbols,
            cfg,
            &fan_cfg,
            &FanoutBackend::InProcess,
        )
        .unwrap();
        prop_assert_eq!(&run.meta, &t.meta);
        prop_assert_eq!(run.report.decompression, resident.decompression);
        prop_assert_eq!(&run.report.function_rows, &resident.function_rows);
        prop_assert_eq!(&run.report.block_reuse, &resident.block_reuse);
        prop_assert_eq!(&run.report.reuse_histogram, &resident.reuse_histogram);
        prop_assert_eq!(&run.report.locality_series, &resident.locality_series);
        for n in [1usize, 4] {
            prop_assert_eq!(run.report.interval_rows(n), resident.interval_rows(n));
        }
    }

    /// Pooled-buffer encodes — `encode_into` appending to a dirty,
    /// pre-filled buffer, then reusing that buffer — are byte-identical
    /// to the unpooled seed `encode` for both the MGZP partial-report
    /// and MGZS worker-spec codecs, for random traces and dirty
    /// prefixes. (The MGZW response framing over a pooled buffer is
    /// covered by the fan-out coordinator's unit tests.)
    #[test]
    fn pooled_codec_encodes_match_unpooled(
        t in arb_trace(),
        shard in 1usize..16,
        prefix in prop::collection::vec(0u8..=255, 0..64),
    ) {
        use memgaze::analysis::{analyze_frames, WorkerSpec};

        let (annots, symbols) = fixtures();
        let cfg = AnalysisConfig { threads: 1, ..AnalysisConfig::default() };
        let (container, index) = encode_sharded_indexed(&t, shard);
        let partial = analyze_frames(
            &container,
            &index,
            0..index.entries.len(),
            &annots,
            &symbols,
            cfg,
            &[8, 32],
        )
        .unwrap();

        // MGZP: appending after arbitrary dirty contents yields the
        // same bytes (checksums cover only the appended frame) …
        let seed = partial.encode();
        let mut buf = prefix.clone();
        partial.encode_into(&mut buf);
        prop_assert_eq!(&buf[..prefix.len()], prefix.as_slice());
        prop_assert_eq!(&buf[prefix.len()..], seed.as_slice());
        // … and so does reusing the buffer's allocation for the next
        // encode, the pooling pattern the workers run.
        buf.clear();
        partial.encode_into(&mut buf);
        prop_assert_eq!(buf.as_slice(), seed.as_slice());

        // MGZS: same law for the worker-spec codec.
        let spec = WorkerSpec {
            footprint_block: cfg.footprint_block,
            reuse_block: cfg.reuse_block,
            threads: 1,
            locality_sizes: vec![8, 32],
            annots: annots.clone(),
            symbols: symbols.clone(),
        };
        let spec_seed = spec.encode();
        let mut sbuf = prefix.clone();
        spec.encode_into(&mut sbuf);
        prop_assert_eq!(&sbuf[prefix.len()..], spec_seed.as_slice());
        sbuf.clear();
        spec.encode_into(&mut sbuf);
        prop_assert_eq!(sbuf.as_slice(), spec_seed.as_slice());
    }
}
