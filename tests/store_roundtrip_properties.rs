//! Property tests of the content-addressed trace store: byte-identity
//! of put/get under block compression, catalog rebuild equivalence,
//! bit-identical cached re-analysis, and typed (never panicking)
//! corruption handling.

use memgaze::analysis::{stream_resident_trace, AnalysisConfig};
use memgaze::model::{
    encode_sharded_indexed, Access, AuxAnnotations, BlockSize, Ip, Sample, SampledTrace,
    SymbolTable, TraceMeta,
};
use memgaze::store::{Catalog, StoreConfig, StoreError, TraceStore};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh store root per proptest case; removed by the case on success
/// (a failing case leaves its directory behind for inspection).
fn fresh_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "memgaze-store-prop-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn symbols() -> SymbolTable {
    let mut sy = SymbolTable::new();
    sy.add_function("alpha", Ip(0x400), Ip(0x410), "a.c");
    sy.add_function("beta", Ip(0x410), Ip(0x420), "b.c");
    sy
}

/// Random sampled traces: a mix of unique and repeated samples so some
/// cases produce duplicate (dedup-able, highly compressible) frames.
fn arb_trace() -> impl Strategy<Value = SampledTrace> {
    (
        prop::collection::vec(
            (
                1usize..24,
                0u64..5,
                0u64..64,
                prop_oneof![Just(false), Just(true)],
            ),
            1..10,
        ),
        1u64..4,
    )
        .prop_map(|(shapes, repeat)| {
            let mut t = SampledTrace::new(TraceMeta::new("store-prop", 10_000, 16 << 10));
            let mut time = 0u64;
            let mut push = |w: usize, ip_salt: u64, addr_salt: u64, time: &mut u64| {
                let accesses: Vec<Access> = (0..w)
                    .map(|i| {
                        Access::new(
                            0x400 + ((i as u64 + ip_salt) % 8) * 4,
                            0x10_0000 + ((i as u64 * 3 + addr_salt) % 32) * 64,
                            *time + i as u64,
                        )
                    })
                    .collect();
                *time += w as u64 + 1;
                t.push_sample(Sample::new(accesses, *time)).unwrap();
            };
            for &(w, ip_salt, addr_salt, repeated) in &shapes {
                push(w, ip_salt, addr_salt, &mut time);
                if repeated {
                    for _ in 0..repeat {
                        push(w, ip_salt, addr_salt, &mut time);
                    }
                }
            }
            t.meta.total_loads = 50_000;
            t.meta.total_instrumented_loads = 500;
            t
        })
}

fn arb_block() -> impl Strategy<Value = BlockSize> {
    prop_oneof![Just(BlockSize::WORD), Just(BlockSize::CACHE_LINE)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `get` after `put` reproduces the container byte-for-byte, through
    /// whatever mix of raw and block-compressed blobs the encoder chose;
    /// re-putting is pure dedup.
    #[test]
    fn put_get_is_byte_identical(trace in arb_trace(), shard in 1usize..5) {
        let root = fresh_root("roundtrip");
        let store = TraceStore::open(StoreConfig::new(&root)).unwrap();
        let (container, index) = encode_sharded_indexed(&trace, shard);
        let sy = symbols();
        let receipt = store.put("t", &container, &index, &sy).unwrap();
        prop_assert_eq!(receipt.frames, index.entries.len());
        prop_assert_eq!(&store.get_container("t").unwrap(), &container);
        let again = store.put("t", &container, &index, &sy).unwrap();
        prop_assert_eq!(again.new_blobs, 0);
        prop_assert_eq!(again.dedup_blobs + again.new_blobs > 0, receipt.frames > 0);
        std::fs::remove_dir_all(&root).unwrap();
    }

    /// The persisted catalog decodes back to exactly what a fresh scan
    /// of the same container computes.
    #[test]
    fn catalog_rebuild_matches_fresh_scan(trace in arb_trace(), shard in 1usize..5) {
        let root = fresh_root("catalog");
        let store = TraceStore::open(StoreConfig::new(&root)).unwrap();
        let (container, index) = encode_sharded_indexed(&trace, shard);
        let sy = symbols();
        store.put("t", &container, &index, &sy).unwrap();
        let stored = store.catalog("t").unwrap();
        let fresh = Catalog::scan("t", &container, &index, &sy, store.summary_block()).unwrap();
        prop_assert_eq!(stored, fresh);
        std::fs::remove_dir_all(&root).unwrap();
    }

    /// The per-frame result-cache path is bit-identical to the uncached
    /// path — and both to the resident streaming analyzer — for random
    /// trace x shard x analyzer config.
    #[test]
    fn cached_analysis_is_bit_identical(
        trace in arb_trace(),
        shard in 1usize..5,
        footprint in arb_block(),
        reuse in arb_block(),
        sizes in prop::collection::vec(prop_oneof![Just(8u64), Just(16), Just(64), Just(256)], 0..3),
    ) {
        let root = fresh_root("cached");
        let store = TraceStore::open(StoreConfig::new(&root)).unwrap();
        let (container, index) = encode_sharded_indexed(&trace, shard);
        let sy = symbols();
        let annots = AuxAnnotations::new();
        store.put("t", &container, &index, &sy).unwrap();
        let cfg = AnalysisConfig {
            footprint_block: footprint,
            reuse_block: reuse,
            threads: 1,
            ..AnalysisConfig::default()
        };
        let cold = store.analyze("t", &annots, &sy, cfg, &sizes).unwrap();
        prop_assert_eq!(cold.result_hits, 0);
        prop_assert_eq!(cold.result_misses, index.entries.len());
        let warm = store.analyze("t", &annots, &sy, cfg, &sizes).unwrap();
        prop_assert_eq!(warm.result_misses, 0);
        prop_assert_eq!(warm.result_hits, index.entries.len());
        prop_assert_eq!(&cold.report, &warm.report);
        let resident = stream_resident_trace(&trace, &annots, &sy, cfg, &sizes, shard);
        prop_assert_eq!(&cold.report, &resident);
        // A different config must not share the cache namespace.
        let other = AnalysisConfig {
            footprint_block: reuse,
            reuse_block: footprint,
            threads: 1,
            ..AnalysisConfig::default()
        };
        if other.footprint_block != cfg.footprint_block
            || other.reuse_block != cfg.reuse_block
        {
            let fresh = store.analyze("t", &annots, &sy, other, &sizes).unwrap();
            prop_assert_eq!(fresh.result_hits, 0);
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    /// A bit flipped anywhere in a blob is a typed [`StoreError`], and a
    /// catalog whose recorded totals drifted from the blobs is a typed
    /// stale-catalog error — never a panic, never silent data.
    #[test]
    fn corruption_and_staleness_are_typed(
        trace in arb_trace(),
        shard in 1usize..5,
        victim_ppm in 0u64..1_000_000,
        bit in 0u32..8,
    ) {
        let root = fresh_root("corrupt");
        let store = TraceStore::open(StoreConfig::new(&root)).unwrap();
        let (container, index) = encode_sharded_indexed(&trace, shard);
        let sy = symbols();
        store.put("t", &container, &index, &sy).unwrap();
        let catalog = store.catalog("t").unwrap();

        // Flip one bit of one blob.
        let f = &catalog.frames[0];
        let hex = format!("{:016x}", f.hash);
        let blob_path = root
            .join("blobs")
            .join(&hex[..2])
            .join(format!("{hex}.blob"));
        let mut bytes = std::fs::read(&blob_path).unwrap();
        let pos = ((bytes.len() as u64 - 1) * victim_ppm / 1_000_000) as usize;
        bytes[pos] ^= 1 << bit;
        std::fs::write(&blob_path, &bytes).unwrap();
        match store.get_blob(f.hash) {
            Err(StoreError::CorruptBlob { hash, .. }) => prop_assert_eq!(hash, f.hash),
            other => prop_assert!(false, "expected CorruptBlob, got {:?}", other.map(|_| ())),
        }
        // Restore the blob, then make the catalog stale instead.
        let payload = &container
            [index.entries[0].offset as usize..(index.entries[0].offset + index.entries[0].len) as usize];
        prop_assert_eq!(f.len as usize, payload.len());
        let mut stale = catalog.clone();
        stale.container_len += 1;
        std::fs::write(root.join("catalog").join("t.mgzc"), stale.encode()).unwrap();
        // Un-corrupt the blob so only the catalog is wrong.
        bytes[pos] ^= 1 << bit;
        std::fs::write(&blob_path, &bytes).unwrap();
        match store.get_container("t") {
            Err(StoreError::StaleCatalog { .. }) => {}
            other => prop_assert!(false, "expected StaleCatalog, got {:?}", other.map(|_| ())),
        }
        // A truncated catalog is a typed decode error.
        let encoded = catalog.encode();
        std::fs::write(
            root.join("catalog").join("t.mgzc"),
            &encoded[..encoded.len() / 2],
        )
        .unwrap();
        match store.catalog("t") {
            Err(StoreError::CorruptCatalog { .. }) => {}
            other => prop_assert!(false, "expected CorruptCatalog, got {:?}", other.map(|_| ())),
        }
        std::fs::remove_dir_all(&root).unwrap();
    }
}
