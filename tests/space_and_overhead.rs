//! Integration tests of the space-savings (Table III) and time-overhead
//! (Fig. 7) behaviours.

use memgaze::core::{full_trace_workload, phase_profiles, trace_workload};
use memgaze::model::io;
use memgaze::ptsim::{BandwidthModel, OverheadModel, PtMode, SamplerConfig};
use memgaze::workloads::gap::{self, GapConfig, GapKernel};
use memgaze::workloads::minivite::{self, MapVariant, MiniViteConfig};

fn mv_cfg() -> MiniViteConfig {
    MiniViteConfig {
        scale: 8,
        degree: 8,
        iterations: 2,
        variant: MapVariant::V1,
        seed: 5,
        v2_default_capacity: 64,
    }
}

#[test]
fn sampled_traces_are_a_small_fraction_of_full() {
    // Table III: sampled traces are around 1% of full ones (period and
    // buffer dependent).
    let sampler = SamplerConfig::application(50_000);
    let (sampled, _) = trace_workload("mv", &sampler, |s| minivite::run(s, &mv_cfg()));
    let (full, _) = full_trace_workload("mv", None, true, |s| minivite::run(s, &mv_cfg()));

    let s_bytes = io::sampled_size_bytes(&sampled.trace);
    let f_bytes = io::full_size_bytes(&full.trace);
    let ratio = s_bytes as f64 / f_bytes as f64;
    assert!(
        ratio < 0.08,
        "sampled {s_bytes} B vs full {f_bytes} B (ratio {:.2}%)",
        100.0 * ratio
    );
}

#[test]
fn uncompressed_traces_are_larger_when_constants_exist() {
    // Table III: All⁺ (uncompressed) vs All. GAP's traced runs include
    // no Constant sites at the workload level, so use the microbench IR
    // path via the minivite degree-weight pass, which has only
    // instrumented loads — instead assert All⁺ ≥ All as the general
    // invariant.
    let (all, _) = full_trace_workload("mv", None, true, |s| minivite::run(s, &mv_cfg()));
    let (all_plus, _) = full_trace_workload("mv", None, false, |s| minivite::run(s, &mv_cfg()));
    assert!(all_plus.trace.accesses.len() >= all.trace.accesses.len());
    assert!(io::full_size_bytes(&all_plus.trace) >= io::full_size_bytes(&all.trace));
}

#[test]
fn rec_traces_drop_under_bandwidth_pressure() {
    // Table III 'Rec': full PT collection drops 30–50% in load-intensive
    // code.
    let bw = BandwidthModel {
        bytes_per_load: 5.0,
        burst_bytes: 16.0 * 1024.0,
    };
    let (rec, _) = full_trace_workload("mv", Some(bw), true, |s| minivite::run(s, &mv_cfg()));
    let (all, _) = full_trace_workload("mv", None, true, |s| minivite::run(s, &mv_cfg()));
    assert!(rec.trace.dropped > 0, "Rec must drop");
    let rate = rec.trace.drop_rate();
    assert!(
        (0.1..=0.9).contains(&rate),
        "drop rate {rate:.2} out of plausible band"
    );
    assert!(rec.trace.accesses.len() < all.trace.accesses.len());
    // Correcting by DROP records recovers the All count.
    let corrected = rec.trace.accesses.len() as u64 + rec.trace.dropped;
    assert_eq!(corrected, all.trace.accesses.len() as u64);
}

#[test]
fn overhead_continuous_vs_opt_matches_fig7_bands() {
    // Collect a GAP run and push its per-phase counters through the
    // overhead model in both modes.
    let mut sampler = SamplerConfig::application(10_000);
    sampler.mode = PtMode::SampleOnly;
    let cfg = GapConfig {
        scale: 9,
        degree: 8,
        kernel: GapKernel::Pr,
        max_iters: 8,
        seed: 3,
    };
    let (report, _) = trace_workload("gap-pr", &sampler, |s| gap::run(s, &cfg));

    let enabled_frac = if report.stream.ptwrites_executed == 0 {
        0.0
    } else {
        report.stream.ptwrites_enabled as f64 / report.stream.ptwrites_executed as f64
    };
    assert!(
        enabled_frac < 0.5,
        "opt mode must gate most ptwrites off: {enabled_frac:.2}"
    );

    let model = OverheadModel::default();
    let cont = phase_profiles(&report.phases, &model, PtMode::Continuous, 1.0);
    let opt = phase_profiles(&report.phases, &model, PtMode::SampleOnly, enabled_frac);

    for (c, o) in cont.iter().zip(&opt) {
        // Fig. 7: continuous typically 10–95%; opt 10–35% and below
        // continuous.
        assert!(
            (0.05..=1.2).contains(&c.overhead),
            "{}: continuous overhead {:.2}",
            c.phase,
            c.overhead
        );
        assert!(
            o.overhead < c.overhead,
            "{}: opt must beat continuous",
            o.phase
        );
        assert!(
            (0.02..=0.5).contains(&o.overhead),
            "{}: opt overhead {:.2}",
            o.phase,
            o.overhead
        );
        // The ptwrite-ratio series correlates with overhead (same order
        // of magnitude).
        assert!((o.overhead - o.ptwrite_ratio).abs() < 0.2);
    }
}

#[test]
fn overhead_correlates_with_ptwrite_ratio_across_workloads() {
    // Fig. 7's red series: the ratio of ptwrites to other instructions
    // predicts the overhead ordering across benchmarks.
    let sampler = SamplerConfig::application(10_000);
    let model = OverheadModel::default();
    let mut points = Vec::new();
    for kernel in [GapKernel::Pr, GapKernel::Cc, GapKernel::CcSv] {
        let cfg = GapConfig {
            scale: 8,
            degree: 8,
            kernel,
            max_iters: 6,
            seed: 3,
        };
        let (report, _) = trace_workload("gap", &sampler, |s| gap::run(s, &cfg));
        let all = phase_profiles(&report.phases, &model, PtMode::Continuous, 1.0);
        for p in all {
            points.push((p.ptwrite_ratio, p.overhead));
        }
    }
    points.sort_by(|a, b| a.0.total_cmp(&b.0));
    // Overhead is monotone (within tolerance) in the ptwrite ratio.
    for w in points.windows(2) {
        assert!(
            w[1].1 >= w[0].1 - 0.1,
            "overhead not tracking ptwrite ratio: {points:?}"
        );
    }
}
