//! Failure injection: corrupted packet streams, drop storms, degenerate
//! configurations, and empty inputs must degrade gracefully — never
//! panic, never fabricate data.

use memgaze::analysis::{stream_resident_trace, AnalysisConfig, Analyzer};
use memgaze::core::{
    fanout::{
        CRASH_ONCE_ENV, HANG_ONCE_ENV, PANIC_ONCE_ENV, SHORT_WRITE_ONCE_ENV, STDERR_FLOOD_ONCE_ENV,
    },
    full_trace_workload, run_fanout, trace_workload, FanoutBackend, FanoutConfig, FanoutError,
    MemGaze, PipelineConfig,
};
use memgaze::instrument::Instrumenter;
use memgaze::model::Ip;
use memgaze::model::{
    encode_sharded_indexed, Access, AuxAnnotations, FrameIndex, ModelError, Sample, SampledTrace,
    SymbolTable, TraceMeta,
};
use memgaze::ptsim::{decode_full, BandwidthModel, PtwPacket, SamplerConfig, StreamSampler};
use memgaze::workloads::gap::{self, GapConfig, GapKernel};
use memgaze::workloads::ubench::{MicroBench, OptLevel};

/// Run an instrumented microbenchmark and return its raw packets.
fn packets_of(bench: &MicroBench) -> (memgaze::instrument::Instrumented, Vec<PtwPacket>) {
    use memgaze::isa::interp::{EventSink, Machine};
    struct P(Vec<PtwPacket>);
    impl EventSink for P {
        fn on_ptwrite(&mut self, ip: Ip, payload: u64, load_time: u64) {
            self.0.push(PtwPacket {
                ip,
                payload,
                load_time,
            });
        }
    }
    let module = bench.module();
    let inst = Instrumenter::default().instrument(&module);
    let main = inst.module.find_proc("main").unwrap();
    let mut mach = Machine::new(&inst.module, P(Vec::new()));
    mach.run(main, 100_000_000).unwrap();
    let packets = mach.into_sink().0;
    (inst, packets)
}

#[test]
fn corrupted_packet_streams_decode_without_panicking() {
    let bench = MicroBench::parse("str1|irr", 512, 4, OptLevel::O3).unwrap();
    let (inst, packets) = packets_of(&bench);
    assert!(packets.len() > 100);

    // Corruption modes: drop every k-th packet, scramble ips, truncate.
    let meta = TraceMeta::new("corrupt", 0, 0);
    for k in [2usize, 3, 5] {
        let dropped: Vec<PtwPacket> = packets
            .iter()
            .enumerate()
            .filter(|(i, _)| i % k != 0)
            .map(|(_, p)| *p)
            .collect();
        let out = decode_full(&dropped, 0, 1000, &inst, meta.clone());
        // Decoding never yields more accesses than packets, and split
        // two-source groups are counted, not invented.
        assert!(out.trace.accesses.len() <= dropped.len());
    }

    let scrambled: Vec<PtwPacket> = packets
        .iter()
        .map(|p| PtwPacket {
            ip: Ip(p.ip.raw() ^ 0xffff_0000),
            ..*p
        })
        .collect();
    let out = decode_full(&scrambled, 0, 1000, &inst, meta.clone());
    assert_eq!(
        out.trace.accesses.len(),
        0,
        "unknown ips must decode to nothing"
    );
    assert_eq!(out.unknown_packets, scrambled.len() as u64);

    let reversed: Vec<PtwPacket> = packets.iter().rev().copied().collect();
    let _ = decode_full(&reversed, 0, 1000, &inst, meta);
}

#[test]
fn drop_storm_preserves_accounting() {
    // A bandwidth model that drops almost everything.
    let starved = BandwidthModel {
        bytes_per_load: 0.2,
        burst_bytes: 64.0,
    };
    let cfg = GapConfig {
        scale: 8,
        degree: 6,
        kernel: GapKernel::Pr,
        max_iters: 4,
        seed: 1,
    };
    let (report, _) = full_trace_workload("storm", Some(starved), true, |s| {
        gap::run(s, &cfg);
    });
    assert!(report.trace.drop_rate() > 0.9, "storm must drop nearly all");
    // Accounting still balances: kept + dropped == instrumented loads.
    assert_eq!(
        report.trace.accesses.len() as u64 + report.trace.dropped,
        report.trace.meta.total_instrumented_loads
    );
    // Whatever survived is still analyzable.
    let as_trace = report.trace.as_single_sample_trace();
    let analyzer = Analyzer::new(&as_trace, &report.annots, &report.symbols);
    let _ = analyzer.decompression();
}

#[test]
fn zero_period_like_configs_are_safe() {
    // Period of 1: a trigger on every load.
    let mut cfg = SamplerConfig::application(1);
    cfg.buffer_bytes = 64;
    let mut s = StreamSampler::new(cfg);
    for t in 0..1000u64 {
        s.on_load(Ip(0x400), t * 8, true, 1);
    }
    let (trace, stats) = s.finish("p1");
    assert_eq!(stats.total_loads, 1000);
    assert_eq!(trace.num_samples(), 1000);
    // Giant period: a single trailing flush.
    let cfg = SamplerConfig::application(u64::MAX / 2);
    let mut s = StreamSampler::new(cfg);
    for t in 0..1000u64 {
        s.on_load(Ip(0x400), t * 8, true, 1);
    }
    let (trace, _) = s.finish("phuge");
    assert_eq!(trace.num_samples(), 1);
}

#[test]
fn empty_and_tiny_workloads_analyze_cleanly() {
    // A workload that performs no loads at all.
    let cfg = SamplerConfig::application(1000);
    let (report, ()) = trace_workload("empty", &cfg, |_s| {});
    assert_eq!(report.stream.total_loads, 0);
    let analyzer = report.analyzer(AnalysisConfig::default());
    assert!(analyzer.function_table().is_empty());
    assert!(analyzer.region_rows().is_empty());
    assert!(analyzer.zoom().is_none());
    assert_eq!(analyzer.working_set().pages_observed, 0);

    // A degenerate graph (scale 0: one vertex).
    let gcfg = GapConfig {
        scale: 0,
        degree: 1,
        kernel: GapKernel::CcSv,
        max_iters: 2,
        seed: 1,
    };
    let (report, out) = trace_workload("tiny", &cfg, |s| gap::run(s, &gcfg));
    assert_eq!(out.values.len(), 1);
    let _ = report.analyzer(AnalysisConfig::default()).function_table();
}

#[test]
fn microbench_with_one_element_array() {
    let bench = MicroBench::parse("irr", 1, 2, OptLevel::O0).unwrap();
    let mut cfg = PipelineConfig::microbench();
    cfg.sampler.period = 2;
    let report = MemGaze::new(cfg).run_microbench(&bench).unwrap();
    // Almost nothing to sample, but nothing breaks.
    let _ = report.trace.mean_window();
}

/// A deterministic multi-sample trace with enough reuse structure that a
/// wrong merge would change the report, plus its indexed container.
fn fanout_fixture() -> (
    SampledTrace,
    Vec<u8>,
    FrameIndex,
    AuxAnnotations,
    SymbolTable,
) {
    let mut t = SampledTrace::new(TraceMeta::new("fanout-fi", 1000, 8192));
    for s in 0..14u64 {
        let n = 25 + (s * 11) % 60;
        let acc: Vec<Access> = (0..n)
            .map(|i| {
                Access::new(
                    0x400 + (i % 6) * 4,
                    ((s * 43 + i * 7) % 300) * 64,
                    s * 1000 + i,
                )
            })
            .collect();
        t.push_sample(Sample::new(acc, s * 1000 + n)).unwrap();
    }
    t.meta.total_loads = 14_000;
    let (container, index) = encode_sharded_indexed(&t, 3);
    let mut annots = AuxAnnotations::new();
    for k in 0..6u64 {
        let class = match k % 3 {
            0 => memgaze::model::LoadClass::Strided,
            1 => memgaze::model::LoadClass::Irregular,
            _ => memgaze::model::LoadClass::Constant,
        };
        let mut an = memgaze::model::IpAnnot::of_class(class, memgaze::model::FunctionId(0));
        an.implied_const = (k % 4) as u32;
        annots.insert(Ip(0x400 + k * 4), an);
    }
    let mut symbols = SymbolTable::new();
    symbols.add_function("hot", Ip(0x400), Ip(0x500), "hot.c");
    (t, container, index, annots, symbols)
}

fn assert_reports_identical(
    run: &memgaze::core::FanoutRunReport,
    resident: &memgaze::analysis::StreamingReport,
    what: &str,
) {
    assert_eq!(run.report.decompression, resident.decompression, "{what}");
    assert_eq!(run.report.function_rows, resident.function_rows, "{what}");
    assert_eq!(run.report.block_reuse, resident.block_reuse, "{what}");
    assert_eq!(
        run.report.reuse_histogram, resident.reuse_histogram,
        "{what}"
    );
    assert_eq!(
        run.report.locality_series, resident.locality_series,
        "{what}"
    );
    for n in [1usize, 4] {
        assert_eq!(
            run.report.interval_rows(n),
            resident.interval_rows(n),
            "{what}"
        );
    }
}

#[test]
fn killed_worker_is_reassigned_and_report_stays_identical() {
    let (t, container, index, annots, symbols) = fanout_fixture();
    let analysis = AnalysisConfig {
        threads: 1,
        ..AnalysisConfig::default()
    };
    let sizes = vec![8u64, 32];
    let resident = stream_resident_trace(&t, &annots, &symbols, analysis, &sizes, 3);
    // One worker crashes mid-run (garbage output + nonzero exit); the
    // coordinator must re-run its range and still produce the identical
    // report.
    let marker = std::env::temp_dir().join(format!("memgaze-crash-once-{}", std::process::id()));
    let _ = std::fs::remove_file(&marker);
    let cfg = FanoutConfig {
        workers: 3,
        locality_sizes: sizes.clone(),
        worker_env: vec![(
            CRASH_ONCE_ENV.to_string(),
            marker.to_string_lossy().into_owned(),
        )],
        ..FanoutConfig::default()
    };
    let backend = FanoutBackend::Subprocess {
        exe: env!("CARGO_BIN_EXE_memgaze").into(),
    };
    let run = run_fanout(
        &container, &index, &annots, &symbols, analysis, &cfg, &backend,
    )
    .unwrap();
    let _ = std::fs::remove_file(&marker);
    assert!(run.retries >= 1, "the injected crash must cost a retry");
    assert!(!run.failures.is_empty());
    assert!(
        run.failures[0].detail.contains("exited"),
        "{:?}",
        run.failures
    );
    assert_reports_identical(&run, &resident, "crash-recovery run");
}

#[test]
fn persistent_worker_killed_mid_range_is_respawned() {
    let (t, container, index, annots, symbols) = fanout_fixture();
    let analysis = AnalysisConfig {
        threads: 1,
        ..AnalysisConfig::default()
    };
    let sizes = vec![8u64, 32];
    let resident = stream_resident_trace(&t, &annots, &symbols, analysis, &sizes, 3);
    // One slot, one range, and a worker that dies with the range in
    // flight: the coordinator must respawn a fresh persistent worker
    // (exactly one extra spawn), retry the range on it, and produce the
    // identical report.
    let marker = std::env::temp_dir().join(format!("memgaze-respawn-once-{}", std::process::id()));
    let _ = std::fs::remove_file(&marker);
    let cfg = FanoutConfig {
        workers: 1,
        locality_sizes: sizes.clone(),
        worker_env: vec![(
            CRASH_ONCE_ENV.to_string(),
            marker.to_string_lossy().into_owned(),
        )],
        ..FanoutConfig::default()
    };
    let backend = FanoutBackend::Subprocess {
        exe: env!("CARGO_BIN_EXE_memgaze").into(),
    };
    let run = run_fanout(
        &container, &index, &annots, &symbols, analysis, &cfg, &backend,
    )
    .unwrap();
    let _ = std::fs::remove_file(&marker);
    assert_eq!(run.ranges.len(), 1);
    assert!(run.retries >= 1, "the mid-range death must cost a retry");
    assert_eq!(run.spawns, 2, "the dead worker plus exactly one respawn");
    assert_reports_identical(&run, &resident, "respawn-recovery run");
}

#[test]
fn warm_pool_reuses_workers_across_runs() {
    use memgaze::core::FanoutPool;

    let (t, container, index, annots, symbols) = fanout_fixture();
    let analysis = AnalysisConfig {
        threads: 1,
        ..AnalysisConfig::default()
    };
    let sizes = vec![8u64, 32];
    let resident = stream_resident_trace(&t, &annots, &symbols, analysis, &sizes, 3);
    let cfg = FanoutConfig {
        workers: 2,
        locality_sizes: sizes.clone(),
        ..FanoutConfig::default()
    };
    let exe = std::path::PathBuf::from(env!("CARGO_BIN_EXE_memgaze"));
    let pool = FanoutPool::new(&exe, &container, &index, &annots, &symbols, analysis, cfg).unwrap();
    pool.prewarm().unwrap();
    assert_eq!(pool.spawn_count(), 2, "prewarm spawns one worker per slot");
    // Repeated runs are served entirely by the warm workers — no new
    // process spawns, no container reloads — and every run's report is
    // still bit-identical to the resident analyzer.
    for round in 0..3 {
        let run = pool.run().unwrap();
        assert_eq!(run.spawns, 0, "round {round} must reuse warm workers");
        assert_eq!(run.retries, 0, "round {round}");
        assert_reports_identical(&run, &resident, "warm-pool run");
    }
    assert_eq!(pool.spawn_count(), 2, "no extra spawns across runs");
}

#[test]
fn hung_worker_is_killed_and_reassigned() {
    let (t, container, index, annots, symbols) = fanout_fixture();
    let analysis = AnalysisConfig {
        threads: 1,
        ..AnalysisConfig::default()
    };
    let resident = stream_resident_trace(&t, &annots, &symbols, analysis, &[], 3);
    let marker = std::env::temp_dir().join(format!("memgaze-hang-once-{}", std::process::id()));
    let _ = std::fs::remove_file(&marker);
    let cfg = FanoutConfig {
        workers: 2,
        timeout: std::time::Duration::from_secs(1),
        worker_env: vec![(
            HANG_ONCE_ENV.to_string(),
            marker.to_string_lossy().into_owned(),
        )],
        ..FanoutConfig::default()
    };
    let backend = FanoutBackend::Subprocess {
        exe: env!("CARGO_BIN_EXE_memgaze").into(),
    };
    let run = run_fanout(
        &container, &index, &annots, &symbols, analysis, &cfg, &backend,
    )
    .unwrap();
    let _ = std::fs::remove_file(&marker);
    assert!(run.retries >= 1);
    assert!(
        run.failures.iter().any(|f| f.detail.contains("timeout")),
        "{:?}",
        run.failures
    );
    assert_reports_identical(&run, &resident, "hang-recovery run");
}

#[test]
fn short_write_worker_fails_typed_and_is_retried() {
    let (t, container, index, annots, symbols) = fanout_fixture();
    let analysis = AnalysisConfig {
        threads: 1,
        ..AnalysisConfig::default()
    };
    let resident = stream_resident_trace(&t, &annots, &symbols, analysis, &[], 3);
    // One worker writes a valid magic + a length header claiming 4096
    // payload bytes, then only a fragment, then exits 0 — so only the
    // coordinator's framing validation can catch it. That must surface
    // as a typed protocol failure and a clean retry, never a panic.
    let marker =
        std::env::temp_dir().join(format!("memgaze-shortwrite-once-{}", std::process::id()));
    let _ = std::fs::remove_file(&marker);
    let cfg = FanoutConfig {
        workers: 3,
        worker_env: vec![(
            SHORT_WRITE_ONCE_ENV.to_string(),
            marker.to_string_lossy().into_owned(),
        )],
        ..FanoutConfig::default()
    };
    let backend = FanoutBackend::Subprocess {
        exe: env!("CARGO_BIN_EXE_memgaze").into(),
    };
    let run = run_fanout(
        &container, &index, &annots, &symbols, analysis, &cfg, &backend,
    )
    .unwrap();
    let _ = std::fs::remove_file(&marker);
    assert!(run.retries >= 1, "the short write must cost a retry");
    assert!(
        run.failures
            .iter()
            .any(|f| f.detail.contains("payload length")),
        "{:?}",
        run.failures
    );
    assert_reports_identical(&run, &resident, "short-write-recovery run");
}

#[test]
fn panicking_in_process_worker_still_yields_complete_report() {
    let (t, container, index, annots, symbols) = fanout_fixture();
    let analysis = AnalysisConfig {
        threads: 1,
        ..AnalysisConfig::default()
    };
    let sizes = vec![8u64, 32];
    let resident = stream_resident_trace(&t, &annots, &symbols, analysis, &sizes, 3);
    // An in-process worker panics on its first attempt. The coordinator
    // must catch the unwind (not die at scope join), recover any mutex
    // the panicking thread poisoned, record the failure, retry, and
    // still produce the identical report.
    let marker = std::env::temp_dir().join(format!("memgaze-panic-once-{}", std::process::id()));
    let _ = std::fs::remove_file(&marker);
    let cfg = FanoutConfig {
        workers: 2,
        locality_sizes: sizes.clone(),
        worker_env: vec![(
            PANIC_ONCE_ENV.to_string(),
            marker.to_string_lossy().into_owned(),
        )],
        ..FanoutConfig::default()
    };
    let run = run_fanout(
        &container,
        &index,
        &annots,
        &symbols,
        analysis,
        &cfg,
        &FanoutBackend::InProcess,
    )
    .unwrap();
    let _ = std::fs::remove_file(&marker);
    assert!(run.retries >= 1, "the injected panic must cost a retry");
    assert!(
        run.failures.iter().any(|f| f.detail.contains("panicked")),
        "{:?}",
        run.failures
    );
    assert_reports_identical(&run, &resident, "panic-recovery run");
}

#[test]
fn stderr_flooding_worker_is_drained_capped_and_retried() {
    let (t, container, index, annots, symbols) = fanout_fixture();
    let analysis = AnalysisConfig {
        threads: 1,
        ..AnalysisConfig::default()
    };
    let resident = stream_resident_trace(&t, &annots, &symbols, analysis, &[], 3);
    // One worker floods stderr with ~4 MiB (far past the pipe buffer)
    // and exits nonzero. The coordinator must drain without deadlock,
    // keep only a bounded prefix in the failure detail (noting the
    // truncation), and recover via retry.
    let marker = std::env::temp_dir().join(format!("memgaze-flood-once-{}", std::process::id()));
    let _ = std::fs::remove_file(&marker);
    let cfg = FanoutConfig {
        workers: 2,
        worker_env: vec![(
            STDERR_FLOOD_ONCE_ENV.to_string(),
            marker.to_string_lossy().into_owned(),
        )],
        ..FanoutConfig::default()
    };
    let backend = FanoutBackend::Subprocess {
        exe: env!("CARGO_BIN_EXE_memgaze").into(),
    };
    let run = run_fanout(
        &container, &index, &annots, &symbols, analysis, &cfg, &backend,
    )
    .unwrap();
    let _ = std::fs::remove_file(&marker);
    assert!(run.retries >= 1);
    let flood = run
        .failures
        .iter()
        .find(|f| f.detail.contains("stderr bytes truncated"))
        .unwrap_or_else(|| panic!("no truncation note in {:?}", run.failures));
    // Bounded: the 64 KiB keep cap plus a little framing, not 4 MiB.
    assert!(
        flood.detail.len() < 70_000,
        "failure detail not capped: {} bytes",
        flood.detail.len()
    );
    assert_reports_identical(&run, &resident, "stderr-flood-recovery run");
}

#[test]
fn fanout_with_obs_produces_stitched_trace_with_retry() {
    use memgaze::obs::{self, Event, ObsConfig};

    let (_, container, index, annots, symbols) = fanout_fixture();
    let analysis = AnalysisConfig {
        threads: 1,
        ..AnalysisConfig::default()
    };
    // Capture-sink observability plus one injected worker crash: the
    // run must yield a single stitched trace holding the coordinator's
    // spans, the subprocess workers' spans (absorbed from their JSONL
    // scratch files, stitched via the remote-parent edge), and at least
    // one retry mark.
    obs::configure(ObsConfig {
        capture: true,
        ..ObsConfig::disabled()
    });
    let marker =
        std::env::temp_dir().join(format!("memgaze-obs-crash-once-{}", std::process::id()));
    let _ = std::fs::remove_file(&marker);
    let cfg = FanoutConfig {
        workers: 2,
        worker_env: vec![(
            CRASH_ONCE_ENV.to_string(),
            marker.to_string_lossy().into_owned(),
        )],
        ..FanoutConfig::default()
    };
    let backend = FanoutBackend::Subprocess {
        exe: env!("CARGO_BIN_EXE_memgaze").into(),
    };
    let run = run_fanout(
        &container, &index, &annots, &symbols, analysis, &cfg, &backend,
    );
    let _ = std::fs::remove_file(&marker);
    let events = obs::take_capture();
    obs::configure(ObsConfig::disabled());
    let run = run.unwrap();
    assert!(run.retries >= 1);

    let me = obs::own_pid();
    assert!(
        events.iter().any(
            |e| matches!(e, Event::Span { pid, name, .. } if *pid == me && name == "fanout.run")
        ),
        "no coordinator fanout.run span among {} events",
        events.len()
    );
    // Worker spans carry a different pid and stitch to a coordinator
    // span through their remote-parent edge.
    assert!(
        events.iter().any(|e| matches!(
            e,
            Event::Span { pid, remote: Some(r), .. } if *pid != me && r.pid == me
        )),
        "no worker span stitched under a coordinator span"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, Event::Mark { name, .. } if name == "fanout.retry")),
        "no fanout.retry mark recorded"
    );
}

#[test]
fn stale_index_sidecar_is_a_typed_error() {
    let (_, container, _, annots, symbols) = fanout_fixture();
    // An index describing a *different* container must be rejected up
    // front — before any worker is dispatched.
    let mut other = SampledTrace::new(TraceMeta::new("other", 1000, 8192));
    other
        .push_sample(Sample::new(vec![Access::new(0x400u64, 64, 0)], 1))
        .unwrap();
    other.meta.total_loads = 1000;
    let (_, stale) = encode_sharded_indexed(&other, 1);
    let err = run_fanout(
        &container,
        &stale,
        &annots,
        &symbols,
        AnalysisConfig::default(),
        &FanoutConfig::default(),
        &FanoutBackend::InProcess,
    )
    .unwrap_err();
    assert!(
        matches!(err, FanoutError::Model(ModelError::StaleIndex { .. })),
        "{err}"
    );
}

#[test]
fn truncated_frame_mid_range_fails_typed_after_retries() {
    let (_, container, index, annots, symbols) = fanout_fixture();
    // Flip a byte inside the middle frame's payload: the header still
    // validates (so dispatch proceeds), but the per-frame checksum fails
    // in whichever worker owns that frame — a persistent error that
    // must exhaust retries and surface as RangeFailed, never a panic.
    let mut corrupt = container.clone();
    let victim = index.entries[index.entries.len() / 2];
    corrupt[victim.offset as usize + 1] ^= 0x40;
    let cfg = FanoutConfig {
        workers: 4,
        max_attempts: 2,
        ..FanoutConfig::default()
    };
    let err = run_fanout(
        &corrupt,
        &index,
        &annots,
        &symbols,
        AnalysisConfig::default(),
        &cfg,
        &FanoutBackend::InProcess,
    )
    .unwrap_err();
    match err {
        FanoutError::RangeFailed { attempts, last, .. } => {
            assert_eq!(attempts, 2);
            assert!(last.contains("stale frame index"), "{last}");
        }
        other => panic!("expected RangeFailed, got {other}"),
    }
}

#[test]
fn analyzer_tolerates_mismatched_side_tables() {
    // Symbols and annotations from a *different* run must not panic the
    // analyses (ips simply resolve to unknown).
    let mut trace = SampledTrace::new(TraceMeta::new("x", 100, 1024));
    trace
        .push_sample(memgaze::model::Sample::new(
            (0..50)
                .map(|i| memgaze::model::Access::new(Ip(0xdead_0000 + i * 4), 0x1000 + i * 64, i))
                .collect(),
            50,
        ))
        .unwrap();
    let annots = AuxAnnotations::new();
    let symbols = SymbolTable::new();
    let analyzer = Analyzer::new(&trace, &annots, &symbols);
    let rows = analyzer.function_table();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].name, "<unknown>");
    assert!(!analyzer.region_rows().is_empty());
    let _ = analyzer.interval_tree();
}
