//! Failure injection: corrupted packet streams, drop storms, degenerate
//! configurations, and empty inputs must degrade gracefully — never
//! panic, never fabricate data.

use memgaze::analysis::{AnalysisConfig, Analyzer};
use memgaze::core::{full_trace_workload, trace_workload, MemGaze, PipelineConfig};
use memgaze::instrument::Instrumenter;
use memgaze::model::Ip;
use memgaze::model::{AuxAnnotations, SampledTrace, SymbolTable, TraceMeta};
use memgaze::ptsim::{decode_full, BandwidthModel, PtwPacket, SamplerConfig, StreamSampler};
use memgaze::workloads::gap::{self, GapConfig, GapKernel};
use memgaze::workloads::ubench::{MicroBench, OptLevel};

/// Run an instrumented microbenchmark and return its raw packets.
fn packets_of(bench: &MicroBench) -> (memgaze::instrument::Instrumented, Vec<PtwPacket>) {
    use memgaze::isa::interp::{EventSink, Machine};
    struct P(Vec<PtwPacket>);
    impl EventSink for P {
        fn on_ptwrite(&mut self, ip: Ip, payload: u64, load_time: u64) {
            self.0.push(PtwPacket {
                ip,
                payload,
                load_time,
            });
        }
    }
    let module = bench.module();
    let inst = Instrumenter::default().instrument(&module);
    let main = inst.module.find_proc("main").unwrap();
    let mut mach = Machine::new(&inst.module, P(Vec::new()));
    mach.run(main, 100_000_000).unwrap();
    let packets = mach.into_sink().0;
    (inst, packets)
}

#[test]
fn corrupted_packet_streams_decode_without_panicking() {
    let bench = MicroBench::parse("str1|irr", 512, 4, OptLevel::O3).unwrap();
    let (inst, packets) = packets_of(&bench);
    assert!(packets.len() > 100);

    // Corruption modes: drop every k-th packet, scramble ips, truncate.
    let meta = TraceMeta::new("corrupt", 0, 0);
    for k in [2usize, 3, 5] {
        let dropped: Vec<PtwPacket> = packets
            .iter()
            .enumerate()
            .filter(|(i, _)| i % k != 0)
            .map(|(_, p)| *p)
            .collect();
        let out = decode_full(&dropped, 0, 1000, &inst, meta.clone());
        // Decoding never yields more accesses than packets, and split
        // two-source groups are counted, not invented.
        assert!(out.trace.accesses.len() <= dropped.len());
    }

    let scrambled: Vec<PtwPacket> = packets
        .iter()
        .map(|p| PtwPacket {
            ip: Ip(p.ip.raw() ^ 0xffff_0000),
            ..*p
        })
        .collect();
    let out = decode_full(&scrambled, 0, 1000, &inst, meta.clone());
    assert_eq!(
        out.trace.accesses.len(),
        0,
        "unknown ips must decode to nothing"
    );
    assert_eq!(out.unknown_packets, scrambled.len() as u64);

    let reversed: Vec<PtwPacket> = packets.iter().rev().copied().collect();
    let _ = decode_full(&reversed, 0, 1000, &inst, meta);
}

#[test]
fn drop_storm_preserves_accounting() {
    // A bandwidth model that drops almost everything.
    let starved = BandwidthModel {
        bytes_per_load: 0.2,
        burst_bytes: 64.0,
    };
    let cfg = GapConfig {
        scale: 8,
        degree: 6,
        kernel: GapKernel::Pr,
        max_iters: 4,
        seed: 1,
    };
    let (report, _) = full_trace_workload("storm", Some(starved), true, |s| {
        gap::run(s, &cfg);
    });
    assert!(report.trace.drop_rate() > 0.9, "storm must drop nearly all");
    // Accounting still balances: kept + dropped == instrumented loads.
    assert_eq!(
        report.trace.accesses.len() as u64 + report.trace.dropped,
        report.trace.meta.total_instrumented_loads
    );
    // Whatever survived is still analyzable.
    let as_trace = report.trace.as_single_sample_trace();
    let analyzer = Analyzer::new(&as_trace, &report.annots, &report.symbols);
    let _ = analyzer.decompression();
}

#[test]
fn zero_period_like_configs_are_safe() {
    // Period of 1: a trigger on every load.
    let mut cfg = SamplerConfig::application(1);
    cfg.buffer_bytes = 64;
    let mut s = StreamSampler::new(cfg);
    for t in 0..1000u64 {
        s.on_load(Ip(0x400), t * 8, true, 1);
    }
    let (trace, stats) = s.finish("p1");
    assert_eq!(stats.total_loads, 1000);
    assert_eq!(trace.num_samples(), 1000);
    // Giant period: a single trailing flush.
    let cfg = SamplerConfig::application(u64::MAX / 2);
    let mut s = StreamSampler::new(cfg);
    for t in 0..1000u64 {
        s.on_load(Ip(0x400), t * 8, true, 1);
    }
    let (trace, _) = s.finish("phuge");
    assert_eq!(trace.num_samples(), 1);
}

#[test]
fn empty_and_tiny_workloads_analyze_cleanly() {
    // A workload that performs no loads at all.
    let cfg = SamplerConfig::application(1000);
    let (report, ()) = trace_workload("empty", &cfg, |_s| {});
    assert_eq!(report.stream.total_loads, 0);
    let analyzer = report.analyzer(AnalysisConfig::default());
    assert!(analyzer.function_table().is_empty());
    assert!(analyzer.region_rows().is_empty());
    assert!(analyzer.zoom().is_none());
    assert_eq!(analyzer.working_set().pages_observed, 0);

    // A degenerate graph (scale 0: one vertex).
    let gcfg = GapConfig {
        scale: 0,
        degree: 1,
        kernel: GapKernel::CcSv,
        max_iters: 2,
        seed: 1,
    };
    let (report, out) = trace_workload("tiny", &cfg, |s| gap::run(s, &gcfg));
    assert_eq!(out.values.len(), 1);
    let _ = report.analyzer(AnalysisConfig::default()).function_table();
}

#[test]
fn microbench_with_one_element_array() {
    let bench = MicroBench::parse("irr", 1, 2, OptLevel::O0).unwrap();
    let mut cfg = PipelineConfig::microbench();
    cfg.sampler.period = 2;
    let report = MemGaze::new(cfg).run_microbench(&bench).unwrap();
    // Almost nothing to sample, but nothing breaks.
    let _ = report.trace.mean_window();
}

#[test]
fn analyzer_tolerates_mismatched_side_tables() {
    // Symbols and annotations from a *different* run must not panic the
    // analyses (ips simply resolve to unknown).
    let mut trace = SampledTrace::new(TraceMeta::new("x", 100, 1024));
    trace
        .push_sample(memgaze::model::Sample::new(
            (0..50)
                .map(|i| memgaze::model::Access::new(Ip(0xdead_0000 + i * 4), 0x1000 + i * 64, i))
                .collect(),
            50,
        ))
        .unwrap();
    let annots = AuxAnnotations::new();
    let symbols = SymbolTable::new();
    let analyzer = Analyzer::new(&trace, &annots, &symbols);
    let rows = analyzer.function_table();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].name, "<unknown>");
    assert!(!analyzer.region_rows().is_empty());
    let _ = analyzer.interval_tree();
}
