//! End-to-end integration tests of the IR microbenchmark path:
//! generate → classify → instrument → execute → collect → decode →
//! analyze, validated against perfect ground-truth traces (paper §VI-A).

use memgaze::analysis::{compare_window_series, pow2_sizes, window_series, CodeWindows};
use memgaze::core::{MemGaze, PipelineConfig};
use memgaze::model::{BlockSize, DecompressionInfo};
use memgaze::workloads::ubench::{suite, MicroBench, OptLevel};

fn pipeline(period: u64) -> (MemGaze, PipelineConfig) {
    let mut cfg = PipelineConfig::microbench();
    cfg.sampler.period = period;
    (MemGaze::new(cfg.clone()), cfg)
}

#[test]
fn sampled_accesses_are_subset_of_ground_truth_for_all_suite_benches() {
    for bench in suite(OptLevel::O3).into_iter().take(4) {
        let bench = MicroBench::new(memgaze::workloads::ubench::UKernelSpec {
            elems: 1024,
            reps: 10,
            ..bench.spec
        });
        let (mg, _) = pipeline(2_000);
        let report = mg.run_microbench(&bench).unwrap();
        let truth = mg.microbench_ground_truth(&bench).unwrap();
        let set: std::collections::HashSet<(u64, u64, u64)> = truth
            .accesses
            .iter()
            .map(|a| (a.time, a.ip.raw(), a.addr.raw()))
            .collect();
        assert!(report.trace.observed_accesses() > 0, "{}", bench.name());
        for a in report.trace.accesses() {
            assert!(
                set.contains(&(a.time, a.ip.raw(), a.addr.raw())),
                "{}: fabricated access {a:?}",
                bench.name()
            );
        }
    }
}

#[test]
fn footprint_mape_within_paper_band() {
    // Fig. 6: trace-window MAPE < 25% for footprint metrics. Allow a
    // slightly wider band on our substrate.
    let sizes = pow2_sizes(4, 9);
    for name in ["str1", "str2|irr", "irr"] {
        let bench = MicroBench::parse(name, 4096, 40, OptLevel::O3).unwrap();
        let (mg, cfg) = pipeline(10_000);
        let report = mg.run_microbench(&bench).unwrap();
        let truth = mg.microbench_ground_truth(&bench).unwrap();

        let sampled = window_series(
            &report.trace,
            &report.instrumented.annots,
            cfg.analysis.footprint_block,
            &sizes,
        );
        let full_trace = truth.as_single_sample_trace();
        let full = window_series(
            &full_trace,
            &report.instrumented.annots,
            cfg.analysis.footprint_block,
            &sizes,
        );
        let mape = compare_window_series(&full, &sampled);
        assert!(mape.points >= 4, "{name}: too few comparable points");
        assert!(
            mape.f < 30.0,
            "{name}: footprint MAPE {:.1}% exceeds the paper band",
            mape.f
        );
        assert!(
            mape.worst() < 40.0,
            "{name}: worst metric MAPE {:.1}%",
            mape.worst()
        );
    }
}

#[test]
fn code_window_estimates_are_tighter_than_trace_windows() {
    // §IV-B: code windows aggregate more samples and reduce error. The
    // ρ-scaled kernel footprint should land close to the true kernel
    // footprint.
    let bench = MicroBench::parse("str2|irr", 4096, 60, OptLevel::O3).unwrap();
    let (mg, _) = pipeline(10_000);
    let report = mg.run_microbench(&bench).unwrap();
    let truth = mg.microbench_ground_truth(&bench).unwrap();

    let info = DecompressionInfo::from_trace(&report.trace, &report.instrumented.annots);
    let symbols = &report.instrumented.orig_symbols;

    let cw_sampled = CodeWindows::build(&report.trace, symbols);
    let full_trace = truth.as_single_sample_trace();
    let cw_full = CodeWindows::build(&full_trace, symbols);

    let fb = BlockSize::WORD;
    let sampled_kernel = cw_sampled.function("kernel").expect("sampled kernel");
    let full_kernel = cw_full.function("kernel").expect("full kernel");
    let est = info.rho() * memgaze::analysis::footprint(sampled_kernel, fb) as f64;
    // The ρ-scaled estimate over-counts re-touched blocks across samples,
    // so for a repetition-heavy kernel it must be a *quantitative
    // overestimate* (paper §VI-A: "errors are quantitative overestimates
    // rather than qualitative") bounded by ρ× the truth.
    let truth_fp = memgaze::analysis::footprint(full_kernel, fb) as f64;
    let ratio = est / truth_fp;
    assert!(
        ratio >= 0.8,
        "sampled estimate must not badly undershoot: ratio {ratio:.2}"
    );
    assert!(
        ratio <= info.rho() * 1.1,
        "overestimate bounded by ρ = {:.1}: ratio {ratio:.2}",
        info.rho()
    );
}

#[test]
fn dynamic_kappa_matches_opt_level() {
    // §VI-C: compression is ≈2× at O0 and ≈1.2× at O3.
    let mut kappas = Vec::new();
    for opt in [OptLevel::O0, OptLevel::O3] {
        let bench = MicroBench::parse("str1", 2048, 10, opt).unwrap();
        let (mg, _) = pipeline(5_000);
        let report = mg.run_microbench(&bench).unwrap();
        let info = DecompressionInfo::from_trace(&report.trace, &report.instrumented.annots);
        kappas.push(info.kappa());
    }
    let (k0, k3) = (kappas[0], kappas[1]);
    assert!((1.6..=2.4).contains(&k0), "O0 κ = {k0}");
    assert!((1.0..=1.4).contains(&k3), "O3 κ = {k3}");
    assert!(k0 > k3);
}

#[test]
fn analyzer_finds_kernel_as_hotspot() {
    let bench = MicroBench::parse("irr", 2048, 20, OptLevel::O3).unwrap();
    let (mg, cfg) = pipeline(4_000);
    let report = mg.run_microbench(&bench).unwrap();
    let analyzer = report.analyzer(cfg.analysis);
    let rows = analyzer.function_table();
    assert_eq!(
        rows[0].name, "kernel",
        "hottest function must be the kernel"
    );
    // The gather benchmark has both strided (index array) and irregular
    // (data) footprint.
    assert!(rows[0].f_str_pct > 0.0 && rows[0].f_str_pct < 100.0);
    // The interval tree zooms into the kernel as well.
    let tree = analyzer.interval_tree();
    let path = tree.zoom_hot_poor_reuse();
    assert!(!path.is_empty());
}

#[test]
fn buffer_and_period_control_trace_size() {
    // §VI-C: "The size is controllable by changing the sample buffer
    // size and the sampling period."
    let bench = MicroBench::parse("str1", 4096, 30, OptLevel::O3).unwrap();
    let sizes: Vec<u64> = [2_000u64, 8_000, 32_000]
        .iter()
        .map(|&period| {
            let (mg, _) = pipeline(period);
            let report = mg.run_microbench(&bench).unwrap();
            memgaze::model::io::sampled_size_bytes(&report.trace)
        })
        .collect();
    assert!(
        sizes[0] > sizes[1] && sizes[1] > sizes[2],
        "longer periods must shrink traces: {sizes:?}"
    );
}
