//! Property-based tests (proptest) of the core invariants across crates.

use memgaze::analysis::{self, BlockReuse, IntervalTree, NodeKind, ZoomConfig, ZoomRegion};
use memgaze::model::{
    io, Access, AuxAnnotations, BlockSize, Sample, SampledTrace, SymbolTable, TraceMeta,
};
use memgaze::ptsim::{SamplerConfig, StreamSampler};
use proptest::prelude::*;

fn arb_access() -> impl Strategy<Value = Access> {
    (0u64..64, 0u64..(1 << 16), 0u64..(1 << 20))
        .prop_map(|(ip, addr, t)| Access::new(0x400 + ip * 4, 0x10_0000 + addr * 8, t))
}

fn arb_window(max: usize) -> impl Strategy<Value = Vec<Access>> {
    prop::collection::vec(arb_access(), 0..max).prop_map(|mut v| {
        // Windows are time-ordered.
        v.sort_by_key(|a| a.time);
        v
    })
}

fn arb_trace() -> impl Strategy<Value = SampledTrace> {
    prop::collection::vec(arb_window(200), 0..8).prop_map(|windows| {
        let mut t = SampledTrace::new(TraceMeta::new("prop", 10_000, 8192));
        let mut offset = 0u64;
        for w in windows {
            let shifted: Vec<Access> = w
                .iter()
                .map(|a| Access::new(a.ip, a.addr, a.time + offset))
                .collect();
            let trigger = shifted.last().map_or(offset, |a| a.time + 1);
            t.push_sample(Sample::new(shifted, trigger)).unwrap();
            offset = trigger + 10_000;
        }
        t.meta.total_loads = offset;
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The Fenwick reuse-distance algorithm agrees with the O(n²) oracle.
    #[test]
    fn reuse_distance_matches_oracle(w in arb_window(150)) {
        let fast = analysis::analyze_window(&w, BlockSize::CACHE_LINE);
        let slow = analysis::analyze_window_naive(&w, BlockSize::CACHE_LINE);
        prop_assert_eq!(fast, slow);
    }

    /// Footprint is monotone under block coarsening: fewer (or equal)
    /// blocks at bigger block sizes.
    #[test]
    fn footprint_monotone_in_block_size(w in arb_window(200)) {
        let f_byte = analysis::footprint(&w, BlockSize::BYTE);
        let f_word = analysis::footprint(&w, BlockSize::WORD);
        let f_line = analysis::footprint(&w, BlockSize::CACHE_LINE);
        let f_page = analysis::footprint(&w, BlockSize::OS_PAGE);
        prop_assert!(f_byte >= f_word);
        prop_assert!(f_word >= f_line);
        prop_assert!(f_line >= f_page);
        // C + S decomposition always recovers F.
        let cs = analysis::captures_survivals(&w, BlockSize::CACHE_LINE);
        prop_assert_eq!(cs.footprint(), f_line);
    }

    /// Reuse distance never exceeds footprint − 1, and the reuse interval
    /// always bounds the distance from above.
    #[test]
    fn distance_bounded_by_footprint_and_interval(w in arb_window(200)) {
        let r = analysis::analyze_window(&w, BlockSize::CACHE_LINE);
        for e in &r.events {
            prop_assert!(e.distance < r.unique_blocks.max(1));
            prop_assert!(e.distance < e.interval);
        }
    }

    /// Trace codec round-trips arbitrary sampled traces.
    #[test]
    fn trace_codec_roundtrip(t in arb_trace()) {
        let bytes = io::encode_sampled(&t);
        let back = io::decode_sampled(bytes).unwrap();
        prop_assert_eq!(t, back);
    }

    /// The stream sampler never fabricates accesses and never reorders
    /// them.
    #[test]
    fn sampler_subset_and_order(
        addrs in prop::collection::vec(0u64..4096, 1..3000),
        period in 50u64..500,
    ) {
        let mut cfg = SamplerConfig::microbench();
        cfg.period = period;
        cfg.buffer_bytes = 1 << 10;
        let mut s = StreamSampler::new(cfg);
        for (t, a) in addrs.iter().enumerate() {
            s.on_load(memgaze::model::Ip(0x400), 0x1000 + a * 8, true, 1);
            let _ = t;
        }
        let (trace, stats) = s.finish("prop");
        prop_assert_eq!(stats.total_loads, addrs.len() as u64);
        for sample in &trace.samples {
            for acc in &sample.accesses {
                // The access at logical time t must carry the t-th addr.
                let expect = 0x1000 + addrs[acc.time as usize] * 8;
                prop_assert_eq!(acc.addr.raw(), expect);
            }
            // Strictly increasing times inside a sample.
            prop_assert!(sample.accesses.windows(2).all(|p| p[0].time < p[1].time));
        }
    }

    /// Merging per-sample BlockReuse summaries conserves region access
    /// counts.
    #[test]
    fn block_reuse_merge_conserves_accesses(t in arb_trace()) {
        let bs = BlockSize::CACHE_LINE;
        let mut merged = BlockReuse::default();
        let mut total = 0u64;
        for s in &t.samples {
            let r = analysis::analyze_window(&s.accesses, bs);
            merged.merge(&BlockReuse::from_analysis(&s.accesses, bs, &r));
            total += s.accesses.len() as u64;
        }
        prop_assert_eq!(merged.region_accesses(0, u64::MAX), total);
    }

    /// κ/ρ algebra: ρ·κ·A always recovers |σ|·(w+z).
    #[test]
    fn rho_kappa_identity(
        samples in 1u64..1000,
        period in 1u64..100_000,
        observed in 1u64..1_000_000,
        implied in 0u64..1_000_000,
    ) {
        let kappa = memgaze::model::compression_ratio(observed, implied);
        let rho = memgaze::model::sample_ratio(samples, period, observed, kappa);
        let lhs = rho * kappa * observed as f64;
        let rhs = (samples * period) as f64;
        prop_assert!((lhs - rhs).abs() / rhs < 1e-9, "{lhs} vs {rhs}");
    }

    /// Window series diagnostics: F_str + F_irr ≥ F restricted to
    /// classified blocks; and ΔF ≤ 1 always.
    #[test]
    fn window_diagnostics_invariants(t in arb_trace()) {
        let annots = AuxAnnotations::new(); // all ips default to Irregular
        let pts = analysis::window_series(&t, &annots, BlockSize::WORD, &[16, 64, 256]);
        for p in &pts {
            prop_assert!(p.delta_f <= 1.0 + 1e-9, "{p:?}");
            prop_assert!(p.f_irr <= p.f + 1e-9);
            prop_assert_eq!(p.f_str, 0.0); // nothing annotated strided
        }
    }

    /// Location-zoom partition soundness: children nest within parents,
    /// never exceed their access counts, and the root covers everything.
    #[test]
    fn zoom_partition_soundness(t in arb_trace()) {
        let symbols = SymbolTable::new();
        let Some(root) = analysis::zoom_trace(&t, &symbols, ZoomConfig::default()) else {
            prop_assert_eq!(t.observed_accesses(), 0);
            return Ok(());
        };
        prop_assert_eq!(root.accesses, t.observed_accesses());
        fn check(r: &ZoomRegion) -> Result<(), TestCaseError> {
            let sum: u64 = r.children.iter().map(|c| c.accesses).sum();
            prop_assert!(sum <= r.accesses);
            for c in &r.children {
                prop_assert!(c.lo >= r.lo && c.hi <= r.hi);
                prop_assert!(c.accesses >= 1);
                check(c)?;
            }
            Ok(())
        }
        check(&root)?;
    }

    /// Interval-tree aggregation: the root's accesses equal the sum of
    /// sample windows, its footprint estimate is ρ-scaled, and every
    /// inter node covers exactly its children's time spans.
    #[test]
    fn interval_tree_aggregation(t in arb_trace()) {
        let annots = AuxAnnotations::new();
        let symbols = SymbolTable::new();
        let rho = 5.0;
        let tree = IntervalTree::build(&t, &annots, &symbols, BlockSize::WORD, rho);
        let Some(root) = tree.root() else {
            prop_assert!(t.samples.is_empty());
            return Ok(());
        };
        let node = tree.node(root);
        prop_assert_eq!(node.accesses, t.observed_accesses());
        if t.samples.len() > 1 {
            prop_assert!((node.f_hat - rho * node.diag.footprint as f64).abs() < 1e-9);
        }
        for i in 0..tree.len() {
            let n = tree.node(i);
            if matches!(n.kind, NodeKind::Inter | NodeKind::Root) && !n.children.is_empty() {
                let first = tree.node(n.children[0]);
                let last = tree.node(*n.children.last().unwrap());
                prop_assert_eq!(n.time_range.0, first.time_range.0);
                prop_assert_eq!(n.time_range.1, last.time_range.1);
                let child_acc: u64 = n.children.iter().map(|&c| tree.node(c).accesses).sum();
                prop_assert_eq!(child_acc, n.accesses);
            }
        }
    }

    /// The trace codec is size-monotone: adding a sample never shrinks
    /// the encoding (no pathological interaction in the delta coder).
    #[test]
    fn codec_size_monotone(t in arb_trace()) {
        let full = io::sampled_size_bytes(&t);
        let mut truncated = t.clone();
        if truncated.samples.pop().is_some() {
            let less = io::sampled_size_bytes(&truncated);
            prop_assert!(less <= full, "{less} > {full}");
        }
    }
}
