//! Equivalence proof for the watch subsystem: a pinned-controller
//! watch run's per-window reports are **bit-identical** to a resident
//! analysis of the same window slices, replayed offline from the
//! container frames the run wrote — across window sizes and
//! `MEMGAZE_THREADS` settings — and the anomaly marks it raises are
//! deterministic.
//!
//! The replay side deliberately shares only [`window_meta`] with the
//! live driver: frames decode through the public [`FrameIndex`] seek
//! path and each window gets a fresh [`StreamingAnalyzer`], so the
//! proof covers the container encoding and the metadata derivation,
//! not just the in-memory fold.

use memgaze::analysis::{
    window_meta, AnalysisConfig, StreamingAnalyzer, StreamingReport, WindowStats,
};
use memgaze::core::{phase_shift_steps, watch_workload, ControllerMode, WatchConfig, WatchReport};
use memgaze::ptsim::SamplerConfig;
use proptest::prelude::*;
use std::sync::Mutex;

const LOCALITY: &[u64] = &[16, 64, 256];
const WORKLOAD: &str = "watch-eq";

/// Serializes tests that set `MEMGAZE_THREADS` — the analysis layer
/// reads it per pass, and the process environment is shared.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// One pinned-controller watch run over the phase-shift workload. The
/// controller observes but never retunes, so the container is a pure
/// function of the workload and the initial sampling knobs.
fn pinned_run(window_samples: usize, steps: usize) -> WatchReport {
    let sampler = SamplerConfig::application(2_000);
    let watch = WatchConfig {
        window_samples,
        mode: ControllerMode::Pinned,
        ..WatchConfig::default()
    };
    watch_workload(
        WORKLOAD,
        &sampler,
        &watch,
        AnalysisConfig::default(),
        LOCALITY,
        |space, step| phase_shift_steps(space, step, steps, 4_000),
    )
    .expect("pinned watch run")
}

/// The resident reference pass: decode every container frame through
/// the index, derive its metadata with the shared `window_meta`, and
/// analyze the slice with a fresh resident `StreamingAnalyzer`.
fn replay_windows(report: &WatchReport) -> Vec<StreamingReport> {
    report
        .index
        .validate(&report.container)
        .expect("watch index matches its container");
    (0..report.index.entries.len())
        .map(|i| {
            let samples = report
                .index
                .read_frame(&report.container, i)
                .expect("frame decodes");
            let meta = window_meta(
                WORKLOAD,
                report.initial_period,
                report.initial_buffer_bytes,
                &samples,
            );
            let mut sa =
                StreamingAnalyzer::new(&report.annots, &report.symbols, AnalysisConfig::default())
                    .with_locality_sizes(LOCALITY);
            sa.ingest_shard(&samples);
            sa.finish(&meta)
        })
        .collect()
}

/// Assert the live run and its offline replay agree field for field:
/// every window's drift stats, and — for the windows the ring still
/// holds — the full streaming report.
fn assert_replay_matches(run: &WatchReport) {
    let replayed = replay_windows(run);
    assert_eq!(
        run.windows.len(),
        replayed.len(),
        "one container frame per closed window"
    );
    for (i, resident) in replayed.iter().enumerate() {
        assert_eq!(
            run.windows[i],
            WindowStats::from_report(i, resident),
            "window {i} drift stats differ from the resident pass"
        );
    }
    for wr in run.ring.windows() {
        assert_eq!(
            wr.report, replayed[wr.stats.window],
            "ring window {} full report differs from the resident pass",
            wr.stats.window
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Across window sizes × thread counts: pinned watch windows are
    /// bit-identical to resident analysis of the replayed frames.
    #[test]
    fn pinned_watch_replays_bit_identical(
        window in 2usize..7,
        threads in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        let _guard = ENV_LOCK.lock().unwrap();
        std::env::set_var("MEMGAZE_THREADS", threads.to_string());
        let run = pinned_run(window, 20);
        prop_assert!(run.retunes.is_empty(), "pinned controller must not retune");
        assert_replay_matches(&run);
        std::env::remove_var("MEMGAZE_THREADS");
    }
}

/// The same run is bit-identical across thread counts — windows,
/// anomaly marks, and the container artifact itself — and repeating a
/// run reproduces its anomaly marks exactly.
#[test]
fn watch_windows_and_marks_deterministic_across_threads() {
    let _guard = ENV_LOCK.lock().unwrap();
    let mut baseline: Option<WatchReport> = None;
    for threads in ["1", "4"] {
        std::env::set_var("MEMGAZE_THREADS", threads);
        let run = pinned_run(4, 20);
        let rerun = pinned_run(4, 20);
        assert_eq!(
            run.anomalies, rerun.anomalies,
            "marks must be deterministic"
        );
        assert_eq!(run.container, rerun.container);
        if let Some(base) = &baseline {
            assert_eq!(
                base.windows, run.windows,
                "windows differ across thread counts"
            );
            assert_eq!(
                base.anomalies, run.anomalies,
                "marks differ across thread counts"
            );
            assert_eq!(
                base.container, run.container,
                "container differs across thread counts"
            );
        } else {
            baseline = Some(run);
        }
    }
    std::env::remove_var("MEMGAZE_THREADS");
}
