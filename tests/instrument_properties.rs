//! Property tests of the instrumentation path: for random microbenchmark
//! specs, instrumentation must preserve program semantics, decoding must
//! reconstruct exactly the instrumented loads, and the κ accounting must
//! balance.

use memgaze::instrument::{InstrumentConfig, Instrumenter};
use memgaze::isa::codegen::{self, Compose, OptLevel, Pattern, UKernelSpec};
use memgaze::isa::interp::{Machine, VecSink};
use memgaze::model::{LoadClass, TraceMeta};
use memgaze::ptsim::collect_full;
use proptest::prelude::*;

fn arb_pattern() -> impl Strategy<Value = Pattern> {
    prop_oneof![
        (1u32..=8).prop_map(Pattern::strided),
        Just(Pattern::Irregular),
    ]
}

fn arb_compose() -> impl Strategy<Value = Compose> {
    prop_oneof![
        arb_pattern().prop_map(Compose::Single),
        prop::collection::vec(arb_pattern(), 1..3).prop_map(Compose::Serial),
        (arb_pattern(), arb_pattern(), 0u8..=100).prop_map(|(first, second, likelihood)| {
            Compose::Conditional {
                first,
                second,
                likelihood,
            }
        }),
    ]
}

fn arb_spec() -> impl Strategy<Value = UKernelSpec> {
    (
        arb_compose(),
        16u32..256,
        1u32..4,
        prop_oneof![Just(OptLevel::O0), Just(OptLevel::O3)],
    )
        .prop_map(|(compose, elems, reps, opt)| UKernelSpec {
            compose,
            elems,
            reps,
            opt,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Instrumentation never changes the executed load stream (ptwrite
    /// has no architectural side effects).
    #[test]
    fn instrumentation_preserves_semantics(spec in arb_spec()) {
        let module = codegen::generate(&spec);
        let inst = Instrumenter::default().instrument(&module);
        let main = module.find_proc("main").unwrap();

        let mut orig = Machine::new(&module, VecSink::default());
        orig.run(main, 200_000_000).unwrap();
        let mut new = Machine::new(&inst.module, VecSink::default());
        new.run(main, 200_000_000).unwrap();

        let a: Vec<(u64, u64)> = orig
            .into_sink()
            .loads
            .iter()
            .map(|l| (l.1, l.2))
            .collect();
        let b: Vec<(u64, u64)> = new
            .into_sink()
            .loads
            .iter()
            .map(|l| (l.1, l.2))
            .collect();
        prop_assert_eq!(a, b);
    }

    /// Decoding an unlimited full collection reconstructs exactly the
    /// addresses of the instrumented (non-Constant) loads, in order.
    #[test]
    fn decode_reconstructs_instrumented_loads(spec in arb_spec()) {
        let module = codegen::generate(&spec);
        let inst = Instrumenter::default().instrument(&module);
        let main = module.find_proc("main").unwrap();

        // Reference: original-module loads, filtered to instrumented ips.
        let mut orig = Machine::new(&module, VecSink::default());
        orig.run(main, 200_000_000).unwrap();
        let reference: Vec<(u64, u64)> = orig
            .into_sink()
            .loads
            .iter()
            .filter(|(ip, _, _)| {
                inst.annots
                    .get(*ip)
                    .map(|a| a.class != LoadClass::Constant)
                    .unwrap_or(false)
                    && inst
                        .ptw_map
                        .values()
                        .any(|i| i.load_ip == *ip)
            })
            .map(|(_, addr, t)| (*addr, *t))
            .collect();

        let (full, _) = collect_full(&inst, main, None, "prop").unwrap();
        let decoded: Vec<(u64, u64)> = full
            .accesses
            .iter()
            .map(|a| (a.addr.raw(), a.time))
            .collect();
        prop_assert_eq!(decoded, reference);
    }

    /// κ accounting balances: for compressed instrumentation, the implied
    /// Constant loads recovered from annotations equal the actual
    /// Constant-load executions of the original program.
    #[test]
    fn kappa_accounting_balances(spec in arb_spec()) {
        let module = codegen::generate(&spec);
        let inst = Instrumenter::default().instrument(&module);
        let main = module.find_proc("main").unwrap();

        // Actual Constant-load executions.
        let mut orig = Machine::new(&module, VecSink::default());
        orig.run(main, 200_000_000).unwrap();
        let const_execs = orig
            .into_sink()
            .loads
            .iter()
            .filter(|(ip, _, _)| {
                inst.annots.get(*ip).map(|a| a.class == LoadClass::Constant).unwrap_or(false)
            })
            .count() as u64;

        // Implied constants recovered from the full collection.
        let (full, _) = collect_full(&inst, main, None, "prop").unwrap();
        let trace = full.as_single_sample_trace();
        let implied = inst.annots.implied_const_accesses(&trace);
        prop_assert_eq!(implied, const_execs);
        let _ = TraceMeta::new("unused", 0, 0);
    }

    /// Uncompressed instrumentation observes at least as many loads as
    /// compressed, and exactly the program's instrumentable total.
    #[test]
    fn uncompressed_superset(spec in arb_spec()) {
        let module = codegen::generate(&spec);
        let main = module.find_proc("main").unwrap();
        let comp = Instrumenter::default().instrument(&module);
        let unc = Instrumenter::new(InstrumentConfig::uncompressed()).instrument(&module);
        let (fc, _) = collect_full(&comp, main, None, "c").unwrap();
        let (fu, _) = collect_full(&unc, main, None, "u").unwrap();
        prop_assert!(fu.accesses.len() >= fc.accesses.len());
        // Uncompressed accesses = compressed + implied constants.
        let implied = comp.annots.implied_const_accesses(&fc.as_single_sample_trace());
        prop_assert_eq!(fu.accesses.len() as u64, fc.accesses.len() as u64 + implied);
    }
}
