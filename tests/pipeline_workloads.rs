//! End-to-end integration tests of the native-workload path:
//! miniVite, GAP, and Darknet through the traced space, PT stream
//! collection, and the full analysis stack.

use memgaze::analysis::AnalysisConfig;
use memgaze::core::{full_trace_workload, trace_workload};
use memgaze::ptsim::SamplerConfig;
use memgaze::workloads::darknet::{self, Network};
use memgaze::workloads::gap::{self, GapConfig, GapKernel};
use memgaze::workloads::minivite::{self, MapVariant, MiniViteConfig};

fn mv_cfg(variant: MapVariant) -> MiniViteConfig {
    MiniViteConfig {
        scale: 8,
        degree: 8,
        iterations: 2,
        variant,
        seed: 77,
        v2_default_capacity: 64,
    }
}

#[test]
fn minivite_hotspots_are_the_papers() {
    let sampler = SamplerConfig::application(20_000);
    let (report, _) = trace_workload("miniVite-v1", &sampler, |s| {
        minivite::run(s, &mv_cfg(MapVariant::V1))
    });
    let analyzer = report.analyzer(AnalysisConfig::default());
    let rows = analyzer.function_table();
    let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
    // The paper's hotspot analysis "clearly highlights buildMap and the
    // map's logical insert function. It also highlights getMax."
    for hot in ["buildMap", "map.insert", "getMax"] {
        assert!(names.contains(&hot), "{hot} missing from {names:?}");
    }
}

#[test]
fn minivite_variants_shift_strided_fraction() {
    // Table IV: v2/v3 replace irregular map accesses with strided ones —
    // map.insert's F_str% rises from v1 to v2/v3.
    let sampler = SamplerConfig::application(10_000);
    let mut fstr = Vec::new();
    for variant in [MapVariant::V1, MapVariant::V2, MapVariant::V3] {
        let (report, _) = trace_workload("mv", &sampler, |s| minivite::run(s, &mv_cfg(variant)));
        let analyzer = report.analyzer(AnalysisConfig::default());
        let rows = analyzer.function_table();
        let insert = rows
            .iter()
            .find(|r| r.name == "map.insert")
            .unwrap_or_else(|| panic!("map.insert missing for {variant:?}"));
        fstr.push(insert.f_str_pct);
    }
    assert!(
        fstr[1] > fstr[0] + 20.0 && fstr[2] > fstr[0] + 20.0,
        "strided fraction must jump from v1 to v2/v3: {fstr:?}"
    );
}

#[test]
fn minivite_zoom_finds_the_map_object() {
    let sampler = SamplerConfig::application(10_000);
    let (report, _) = trace_workload("mv", &sampler, |s| {
        minivite::run(s, &mv_cfg(MapVariant::V2))
    });
    let analyzer = report.analyzer(AnalysisConfig::default());
    let rows = analyzer.region_rows();
    assert!(!rows.is_empty());
    // Some hot region must overlap the map allocation.
    let (map_lo, map_hi) = report.label_range("map").expect("map allocated");
    assert!(
        rows.iter()
            .any(|r| r.range.0 < map_hi && r.range.1 > map_lo),
        "no hot region overlaps the map [{map_lo:#x}..{map_hi:#x}): {:?}",
        rows.iter().map(|r| r.range).collect::<Vec<_>>()
    );
}

#[test]
fn gap_pr_beats_spmv_on_reuse_distance() {
    // Table IX: pr's spatio-temporal reuse distance for o-score is
    // noticeably smaller than pr-spmv's.
    let sampler = SamplerConfig::application(10_000);
    let mut ds = Vec::new();
    for kernel in [GapKernel::Pr, GapKernel::PrSpmv] {
        let cfg = GapConfig {
            scale: 9,
            degree: 8,
            kernel,
            max_iters: 9,
            seed: 13,
        };
        let (report, _) = trace_workload("gap", &sampler, |s| gap::run(s, &cfg));
        let analyzer = report.analyzer(AnalysisConfig::default());
        let (lo, hi) = report.label_range("o-score").expect("o-score allocated");
        // pr-spmv also allocates o-score-next; restrict to the primary.
        let row = analyzer.region_row_for(lo, hi);
        assert!(
            row.accesses > 0,
            "{}: o-score never sampled",
            kernel.label()
        );
        ds.push(row.reuse_d);
    }
    assert!(
        ds[0] < ds[1],
        "pr D {:.2} must beat pr-spmv D {:.2}",
        ds[0],
        ds[1]
    );
}

#[test]
fn gap_cc_variants_differ_as_in_table_ix() {
    let sampler = SamplerConfig::application(10_000);
    let mut results = Vec::new();
    for kernel in [GapKernel::Cc, GapKernel::CcSv] {
        let cfg = GapConfig {
            scale: 9,
            degree: 8,
            kernel,
            max_iters: 9,
            seed: 13,
        };
        let (report, out) = trace_workload("gap", &sampler, |s| gap::run(s, &cfg));
        results.push((report.stream.total_loads, out.abstract_cost));
    }
    let (_cc_loads, cc_cost) = results[0];
    let (sv_loads, sv_cost) = results[1];
    // cc-sv runs far longer (45.5 s vs 2.7 s in the paper).
    assert!(sv_cost > 2 * cc_cost, "cc-sv {sv_cost} vs cc {cc_cost}");
    assert!(sv_loads > 0);
}

#[test]
fn darknet_gemm_dominates_and_is_strided() {
    let sampler = SamplerConfig::application(20_000);
    let (report, _) = trace_workload("darknet", &sampler, |s| darknet::run(s, Network::AlexNet));
    let analyzer = report.analyzer(AnalysisConfig::default());
    let rows = analyzer.function_table();
    assert_eq!(rows[0].name, "gemm", "gemm must dominate: {:?}", rows[0]);
    assert!(
        (rows[0].f_str_pct - 100.0).abs() < 1e-9,
        "gemm is all strided"
    );
    // gemm dominates total footprint (> 90% in the paper).
    let total: f64 = rows.iter().map(|r| r.f_hat_bytes).sum();
    assert!(rows[0].f_hat_bytes > 0.7 * total);
}

#[test]
fn darknet_interval_reuse_distance_increases_over_time() {
    // Table VIII: D over all objects increases over time as N shrinks.
    let sampler = SamplerConfig::application(20_000);
    let (report, _) = trace_workload("darknet", &sampler, |s| darknet::run(s, Network::AlexNet));
    let analyzer = report.analyzer(AnalysisConfig::default());
    let rows = analyzer.interval_rows(8);
    assert_eq!(rows.len(), 8);
    let first_half: f64 = rows[..4].iter().map(|r| r.mean_d).sum();
    let second_half: f64 = rows[4..].iter().map(|r| r.mean_d).sum();
    assert!(
        second_half > first_half,
        "D should grow over time: {:?}",
        rows.iter().map(|r| r.mean_d).collect::<Vec<_>>()
    );
}

#[test]
fn full_trace_collection_supports_drop_free_baselines() {
    let (full, _) = full_trace_workload("mv", None, true, |s| {
        minivite::run(s, &mv_cfg(MapVariant::V3))
    });
    assert_eq!(full.trace.dropped, 0);
    assert!(!full.trace.accesses.is_empty());
    // Times are strictly increasing per the load counter.
    assert!(full
        .trace
        .accesses
        .windows(2)
        .all(|w| w[0].time < w[1].time));
}

#[test]
fn phases_separate_graphgen_from_algorithm() {
    let sampler = SamplerConfig::application(10_000);
    let cfg = GapConfig {
        scale: 8,
        degree: 8,
        kernel: GapKernel::Pr,
        max_iters: 6,
        seed: 3,
    };
    let (report, _) = trace_workload("gap-pr", &sampler, |s| gap::run(s, &cfg));
    let names: Vec<&str> = report.phases.iter().map(|p| p.name.as_str()).collect();
    assert_eq!(names, ["main", "graphgen", "rank"]);
    let gg = &report.phases[1].counters;
    let rank = &report.phases[2].counters;
    assert!(gg.loads > 0 && rank.loads > 0);
    // The rank phase is the load-intensive one.
    assert!(rank.loads > gg.loads);
}
