//! Mutation tests of the static verifier and lint framework: corrupt
//! generated modules (and instrumentation artifacts) in targeted ways and
//! check each corruption is caught with its own lint id, while clean
//! generated modules verify with zero errors and zero unsound differential
//! disagreements.

use memgaze::instrument::lint::check_instrumented;
use memgaze::instrument::plan::InstrPlan;
use memgaze::instrument::{
    lint_module, ClassifiedLoad, InstrumentConfig, Instrumenter, ModuleClassification,
};
use memgaze::isa::codegen::{self, Compose, OptLevel, Pattern, UKernelSpec};
use memgaze::isa::{
    verify_module, AbsResult, AddrKind, AddrMode, BasicBlock, BlockId, DataInit, Diagnostic, Instr,
    LintId, LoadModule, Operand, ProcId, Reg, Severity, Terminator,
};
use memgaze::model::{Ip, LoadClass};
use memgaze_bench::{
    call_graph_module, masked_index_module, nested_loop_module, spilled_iv_module,
};
use proptest::prelude::*;

fn gen(compose: Compose, opt: OptLevel) -> LoadModule {
    codegen::generate(&UKernelSpec {
        compose,
        elems: 64,
        reps: 2,
        opt,
    })
}

/// A generated module with all three load classes present.
fn mixed(opt: OptLevel) -> LoadModule {
    gen(
        Compose::Serial(vec![Pattern::strided(2), Pattern::Irregular]),
        opt,
    )
}

fn has(diags: &[Diagnostic], lint: LintId) -> bool {
    diags.iter().any(|d| d.lint == lint)
}

fn assert_flags(m: &LoadModule, lint: LintId) {
    let diags = verify_module(m);
    assert!(
        has(&diags, lint),
        "expected {lint} among diagnostics, got: {diags:?}"
    );
}

// --- structural mutations (V0xx) ---------------------------------------

#[test]
fn mutation_proc_id_mismatch() {
    for opt in [OptLevel::O0, OptLevel::O3] {
        let mut m = mixed(opt);
        m.procs[0].id = ProcId(7);
        assert_flags(&m, LintId::ProcIdMismatch);
    }
}

#[test]
fn mutation_block_id_mismatch() {
    let mut m = mixed(OptLevel::O3);
    let b = m.procs[0].blocks.len() - 1;
    m.procs[0].blocks[b].id = BlockId(b as u32 + 5);
    assert_flags(&m, LintId::BlockIdMismatch);
}

#[test]
fn mutation_entry_out_of_range() {
    let mut m = mixed(OptLevel::O0);
    m.procs[0].entry = BlockId(99);
    assert_flags(&m, LintId::EntryOutOfRange);
}

#[test]
fn mutation_terminator_target_out_of_range() {
    let mut m = mixed(OptLevel::O3);
    let last = m.procs[0].blocks.len() - 1;
    m.procs[0].blocks[last].term = Terminator::Jmp(BlockId(999));
    assert_flags(&m, LintId::TermTargetOutOfRange);
}

#[test]
fn mutation_call_target_missing() {
    let mut m = mixed(OptLevel::O0);
    let entry = m.procs[0].entry.index();
    m.procs[0].blocks[entry]
        .instrs
        .push(Instr::Call { proc: ProcId(99) });
    assert_flags(&m, LintId::CallTargetMissing);
}

// --- CFG and dataflow mutations (C1xx) ----------------------------------

#[test]
fn mutation_unreachable_block_is_warning() {
    let mut m = mixed(OptLevel::O3);
    let next = m.procs[0].blocks.len() as u32;
    m.procs[0].blocks.push(BasicBlock {
        id: BlockId(next),
        instrs: vec![],
        term: Terminator::Ret,
        src_line: 0,
    });
    let diags = verify_module(&m);
    let hit = diags
        .iter()
        .find(|d| d.lint == LintId::UnreachableBlock)
        .expect("unreachable block flagged");
    assert_eq!(hit.severity, Severity::Warning);
}

#[test]
fn mutation_use_before_def_is_warning() {
    let mut m = mixed(OptLevel::O0);
    // r13 is not in the entry-defined set and codegen never writes it, so
    // a copy out of it at the procedure's entry reads an undefined value.
    let entry = m.procs[0].entry.index();
    m.procs[0].blocks[entry].instrs.insert(
        0,
        Instr::Mov {
            dst: Reg::gp(6),
            src: Reg::gp(13),
        },
    );
    let diags = verify_module(&m);
    let hit = diags
        .iter()
        .find(|d| d.lint == LintId::UseBeforeDef)
        .expect("use-before-def flagged");
    assert_eq!(hit.severity, Severity::Warning);
}

// --- data-layout mutations (D3xx) ---------------------------------------

#[test]
fn mutation_data_overlap() {
    let mut m = mixed(OptLevel::O3);
    let first = m.data.first().expect("generated module has data").clone();
    m.data.push(DataInit {
        label: "shadow".into(),
        base: first.base,
        words: vec![0],
    });
    assert_flags(&m, LintId::DataOverlap);
}

#[test]
fn mutation_code_data_overlap() {
    let mut m = mixed(OptLevel::O0);
    m.data.push(DataInit {
        label: "in_text".into(),
        base: m.base_ip,
        words: vec![0],
    });
    assert_flags(&m, LintId::CodeDataOverlap);
}

#[test]
fn mutation_data_break_behind() {
    let mut m = mixed(OptLevel::O3);
    m.data_break = 0;
    assert_flags(&m, LintId::DataBreakBehind);
}

// --- instrumentation-artifact mutations (P5xx) --------------------------

struct Artifacts {
    module: LoadModule,
    classification: ModuleClassification,
    plan: InstrPlan,
    inst: memgaze::instrument::Instrumented,
    config: InstrumentConfig,
}

fn artifacts(opt: OptLevel) -> Artifacts {
    let module = mixed(opt);
    let config = InstrumentConfig::default();
    let classification = ModuleClassification::analyze(&module);
    let plan = InstrPlan::build(&module, &classification, &config);
    let inst = Instrumenter::new(config.clone()).instrument(&module);
    Artifacts {
        module,
        classification,
        plan,
        inst,
        config,
    }
}

fn check(a: &Artifacts) -> Vec<Diagnostic> {
    check_instrumented(&a.module, &a.inst, &a.classification, &a.plan, &a.config)
}

#[test]
fn mutation_remapped_ptwrite_breaks_group() {
    let mut a = artifacts(OptLevel::O3);
    let first_load = a.inst.ptw_map.values().next().unwrap().load_ip;
    let other = a
        .inst
        .ptw_map
        .values()
        .map(|i| i.load_ip)
        .find(|&l| l != first_load)
        .expect("module has more than one instrumented load");
    let victim = *a.inst.ptw_map.keys().next().unwrap();
    a.inst.ptw_map.get_mut(&victim).unwrap().load_ip = other;
    let diags = check(&a);
    assert!(has(&diags, LintId::MissingPtwrite), "{diags:?}");
}

#[test]
fn mutation_dropped_ptw_map_entry_is_orphan() {
    let mut a = artifacts(OptLevel::O0);
    let victim = *a.inst.ptw_map.keys().next().unwrap();
    a.inst.ptw_map.remove(&victim);
    let diags = check(&a);
    assert!(has(&diags, LintId::OrphanPtwrite), "{diags:?}");
}

#[test]
fn mutation_annotation_class_flip() {
    let mut a = artifacts(OptLevel::O3);
    let (&ip, annot) = a.inst.annots.iter().next().expect("has annotations");
    let mut bad = *annot;
    bad.class = match bad.class {
        LoadClass::Constant => LoadClass::Irregular,
        _ => LoadClass::Constant,
    };
    a.inst.annots.insert(ip, bad);
    let diags = check(&a);
    assert!(has(&diags, LintId::AnnotationMismatch), "{diags:?}");
}

#[test]
fn mutation_implied_count_bump() {
    let mut a = artifacts(OptLevel::O0);
    let (&ip, annot) = a.inst.annots.iter().next().expect("has annotations");
    let mut bad = *annot;
    bad.implied_const += 3;
    a.inst.annots.insert(ip, bad);
    let diags = check(&a);
    assert!(has(&diags, LintId::ImpliedCountMismatch), "{diags:?}");
}

#[test]
fn mutation_stats_bump() {
    let mut a = artifacts(OptLevel::O3);
    a.inst.stats.constant_loads += 1;
    let diags = check(&a);
    assert!(has(&diags, LintId::StatsMismatch), "{diags:?}");
}

// --- clean modules verify; differential agreement -----------------------

/// Every generated microbenchmark module and every synthetic workload
/// module lints with zero errors and zero unsound differential
/// disagreements (the abstract interpreter never proves a load *more*
/// regular than the dataflow classifier observes).
#[test]
fn differential_no_unsound_disagreements_across_suites() {
    let mut modules: Vec<LoadModule> = Vec::new();
    for opt in [OptLevel::O0, OptLevel::O3] {
        for bench in memgaze::workloads::ubench::suite(opt) {
            modules.push(bench.module());
        }
    }
    modules.push(memgaze_bench::synthetic_module(4, 9));
    modules.push(memgaze_bench::synthetic_module(16, 12));

    let config = InstrumentConfig::default();
    let mut total = memgaze::instrument::DiffSummary::default();
    for m in &modules {
        let report = lint_module(m, &config);
        assert!(
            !report.has_errors(),
            "{}: {:?}",
            report.module,
            report.diagnostics
        );
        assert_eq!(
            report.differential.unsound, 0,
            "{}: unsound disagreement",
            report.module
        );
        total.merge(&report.differential);
    }
    assert!(total.loads > 0);
    assert!(
        total.agreement_rate() > 0.5,
        "rate {}",
        total.agreement_rate()
    );
}

/// The uncompressed configuration must also produce clean artifacts.
#[test]
fn uncompressed_config_lints_clean() {
    let m = mixed(OptLevel::O3);
    let report = lint_module(&m, &InstrumentConfig::uncompressed());
    assert!(!report.has_errors(), "{:?}", report.diagnostics);
}

// --- abstract-interpretation proof mutations ----------------------------
//
// Each new analysis layer (slot forwarding, loop-nest induction,
// interprocedural summaries, value-range identities) gets a pair of
// tests: one that the proof goes through on the workload built to need
// it, and one that a targeted mutation invalidating the proof's premise
// actually refutes it — the classifier must drop back to the dataflow
// verdict instead of keeping a now-wrong upgrade. Every mutation also
// re-lints the module and asserts the differential stays sound.

/// The unique classified load matching `pred`.
fn the_load(c: &ModuleClassification, pred: impl Fn(&ClassifiedLoad) -> bool) -> ClassifiedLoad {
    let hits: Vec<&ClassifiedLoad> = c.loads().filter(|l| pred(l)).collect();
    assert_eq!(hits.len(), 1, "expected exactly one matching load");
    *hits[0]
}

/// Mutated modules must still lint without unsound disagreements (and,
/// since upgrades were refuted rather than miscarried, without errors).
fn assert_sound(m: &LoadModule) {
    let report = lint_module(m, &InstrumentConfig::default());
    assert!(!report.has_errors(), "{:?}", report.diagnostics);
    assert_eq!(report.differential.unsound, 0, "unsound after mutation");
}

#[test]
fn slot_forwarding_proves_spilled_iv() {
    let m = spilled_iv_module(64);
    let c = ModuleClassification::analyze(&m);
    let l = the_load(&c, |l| l.scale == 8);
    assert_eq!(l.dataflow_kind, AddrKind::Irregular, "dataflow gives up");
    assert_eq!(l.kind, AddrKind::Strided { stride: 8 }, "absint forwards");
    assert!(l.upgraded());
    assert_sound(&m);
}

#[test]
fn mutation_unknown_store_kills_slot_forwarding() {
    let mut m = spilled_iv_module(64);
    // A store through an untracked pointer may alias the spill slot, so
    // the forwarded recurrence is no longer provable.
    m.procs[0].blocks[1].instrs.push(Instr::Store {
        src: Reg::gp(5),
        addr: AddrMode::base_disp(Reg::gp(12), 0),
    });
    let c = ModuleClassification::analyze(&m);
    let l = the_load(&c, |l| l.scale == 8);
    assert!(!l.upgraded(), "forwarding must die: {:?}", l.absint);
    assert_eq!(l.kind, AddrKind::Irregular);
    assert_sound(&m);
}

#[test]
fn mutation_overlapping_slot_store_kills_forwarding() {
    let mut m = spilled_iv_module(64);
    // An 8-byte store at FP-12 overlaps the FP-8 slot's window, so the
    // precise same-base kill must discard the tracked content.
    m.procs[0].blocks[1].instrs.push(Instr::Store {
        src: Reg::gp(4),
        addr: AddrMode::base_disp(Reg::FP, -12),
    });
    let c = ModuleClassification::analyze(&m);
    let l = the_load(&c, |l| l.scale == 8);
    assert!(!l.upgraded(), "overlap must kill the slot: {:?}", l.absint);
    assert_sound(&m);
}

#[test]
fn nest_proof_carries_outer_stride() {
    let m = nested_loop_module(8, 16);
    let c = ModuleClassification::analyze(&m);
    let l = the_load(&c, |l| l.scale == 8);
    assert_eq!(l.kind, AddrKind::Strided { stride: 8 });
    match l.absint {
        AbsResult::Proven {
            stride,
            outer_stride,
            ..
        } => {
            assert_eq!(stride, 8);
            assert_eq!(outer_stride, Some(16 * 8), "row pitch proven");
        }
        other => panic!("expected nest proof, got {other:?}"),
    }
    assert_sound(&m);
}

#[test]
fn mutation_loaded_row_base_refutes_nest_proof() {
    let mut m = nested_loop_module(8, 16);
    // Redefine the row base from memory inside the inner loop: the
    // address now depends on loaded data, so the induction proof must
    // collapse (ProvenIrregular or Unknown, never a stride).
    m.procs[0].blocks[2].instrs.insert(
        0,
        Instr::Load {
            dst: Reg::gp(1),
            addr: AddrMode::base_disp(Reg::gp(1), 0),
        },
    );
    let c = ModuleClassification::analyze(&m);
    let l = the_load(&c, |l| l.scale == 8);
    assert!(l.absint.stride().is_none(), "no stride: {:?}", l.absint);
    assert_sound(&m);
}

#[test]
fn summaries_keep_caller_pointer_and_prove_leaf_const() {
    let m = call_graph_module(64);
    let c = ModuleClassification::analyze(&m);
    // Caller's array walk survives the calls because the leaf's summary
    // proves gp2 is not clobbered.
    let caller = the_load(&c, |l| l.scale == 8);
    assert_eq!(caller.kind, AddrKind::Strided { stride: 8 });
    // The leaf's argument dereference resolves to the one global scalar
    // every call site passes, upgrading Irregular to Constant.
    let leaf = the_load(&c, |l| l.scale != 8);
    assert_eq!(leaf.dataflow_kind, AddrKind::Irregular);
    assert_eq!(leaf.kind, AddrKind::Constant);
    assert!(leaf.upgraded());
    assert_sound(&m);
}

#[test]
fn mutation_clobbering_leaf_refutes_caller_proof() {
    let mut m = call_graph_module(64);
    // Make the leaf scribble over the caller's array pointer: its
    // summary must report the clobber and the caller's stride proof
    // (and the summary-aware dataflow verdict) must both collapse.
    m.procs[0].blocks[1].instrs.push(Instr::MovImm {
        dst: Reg::gp(2),
        imm: 0,
    });
    let c = ModuleClassification::analyze(&m);
    let caller = the_load(&c, |l| l.scale == 8);
    assert_ne!(caller.kind, AddrKind::Strided { stride: 8 });
    assert_sound(&m);
}

#[test]
fn mutation_disagreeing_call_sites_refute_const_addr() {
    let mut m = call_graph_module(64);
    // Point the second call site's argument somewhere else: the leaf's
    // argument is no longer a single known constant, so the Constant
    // upgrade must not happen.
    let main = &mut m.procs[1];
    let exit = main.blocks.len() - 1;
    for ins in &mut main.blocks[exit].instrs {
        if let Instr::MovImm { dst, imm } = ins {
            if dst.index() == 0 {
                *imm += 64;
            }
        }
    }
    let c = ModuleClassification::analyze(&m);
    let leaf = the_load(&c, |l| l.scale != 8);
    assert_ne!(leaf.kind, AddrKind::Constant, "upgrade must be refuted");
    assert_sound(&m);
}

#[test]
fn mutation_recursive_arg_scramble_degrades_const_to_top() {
    let mut m = call_graph_module(64);
    // Make the leaf call itself with a data-dependent argument: the
    // summary fixpoint must terminate, and the recursive call site's
    // loaded gp0 drives the argument fact to ⊤, refuting the leaf's
    // Constant upgrade. The caller's cross-call stride proof is
    // unaffected (the clobber set is still precise under recursion).
    let leaf_id = m.procs[0].id;
    let body = &mut m.procs[0].blocks[1].instrs;
    body.push(Instr::Mov {
        dst: Reg::gp(0),
        src: Reg::gp(9),
    });
    body.push(Instr::Call { proc: leaf_id });
    let c = ModuleClassification::analyze(&m);
    let leaf = the_load(&c, |l| l.scale != 8);
    assert_ne!(leaf.kind, AddrKind::Constant, "arg fact must hit top");
    let caller = the_load(&c, |l| l.scale == 8);
    assert_eq!(caller.kind, AddrKind::Strided { stride: 8 });
    assert_sound(&m);
}

#[test]
fn range_identity_proves_masked_index() {
    let m = masked_index_module(64);
    let c = ModuleClassification::analyze(&m);
    let l = the_load(&c, |l| l.scale == 8);
    assert_eq!(l.dataflow_kind, AddrKind::Irregular, "mask defeats IVs");
    assert_eq!(l.kind, AddrKind::Strided { stride: 8 });
    assert!(l.upgraded());
    assert_sound(&m);
}

#[test]
fn mutation_narrow_mask_refutes_range_identity() {
    let mut m = masked_index_module(64);
    // Shrink the mask below the loop bound: the index genuinely wraps
    // at 16 now, so `i & 15 == i` no longer holds and the affine proof
    // must be refuted.
    for b in &mut m.procs[0].blocks {
        for ins in &mut b.instrs {
            if let Instr::Bin {
                rhs: Operand::Imm(imm),
                ..
            } = ins
            {
                if *imm == 63 {
                    *imm = 15;
                }
            }
        }
    }
    let c = ModuleClassification::analyze(&m);
    let l = the_load(&c, |l| l.scale == 8);
    assert!(!l.upgraded(), "wrapping mask: {:?}", l.absint);
    assert_eq!(l.kind, AddrKind::Irregular);
    assert_sound(&m);
}

#[test]
fn gather_loads_are_proven_irregular() {
    // A dependent (pointer-chasing) load must come back ProvenIrregular,
    // not merely Unknown: the interpreter positively established the
    // address is data-dependent.
    let m = gen(Compose::Single(Pattern::Irregular), OptLevel::O3);
    let c = ModuleClassification::analyze(&m);
    assert!(
        c.loads()
            .any(|l| matches!(l.absint, AbsResult::ProvenIrregular)),
        "no ProvenIrregular load in the gather kernel"
    );
    assert_sound(&m);
}

/// The eliding configuration keeps every artifact invariant the linter
/// checks (including observe/imply/elide conservation) on the showcase
/// workloads and a mixed microbenchmark.
#[test]
fn eliding_config_lints_clean_and_conserves() {
    let modules = [
        spilled_iv_module(64),
        nested_loop_module(8, 16),
        call_graph_module(64),
        masked_index_module(64),
        mixed(OptLevel::O3),
    ];
    let config = InstrumentConfig::eliding();
    for m in &modules {
        let report = lint_module(m, &config);
        assert!(!report.has_errors(), "{}: {:?}", m.name, report.diagnostics);
        let c = ModuleClassification::analyze(m);
        let plan = InstrPlan::build(m, &c, &config);
        let implied: u64 = plan.iter().map(|(_, d)| d.implied_const as u64).sum();
        assert_eq!(
            plan.num_instrumented() + implied + plan.num_elided(),
            c.len() as u64,
            "{}: conservation",
            m.name
        );
    }
}

// --- properties ----------------------------------------------------------

fn arb_pattern() -> impl Strategy<Value = Pattern> {
    prop_oneof![
        (1u32..=8).prop_map(Pattern::strided),
        Just(Pattern::Irregular),
    ]
}

fn arb_compose() -> impl Strategy<Value = Compose> {
    prop_oneof![
        arb_pattern().prop_map(Compose::Single),
        prop::collection::vec(arb_pattern(), 1..3).prop_map(Compose::Serial),
        (arb_pattern(), arb_pattern(), 0u8..=100).prop_map(|(first, second, likelihood)| {
            Compose::Conditional {
                first,
                second,
                likelihood,
            }
        }),
    ]
}

fn arb_spec() -> impl Strategy<Value = UKernelSpec> {
    (
        arb_compose(),
        16u32..256,
        1u32..4,
        prop_oneof![Just(OptLevel::O0), Just(OptLevel::O3)],
    )
        .prop_map(|(compose, elems, reps, opt)| UKernelSpec {
            compose,
            elems,
            reps,
            opt,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Clean generated modules always verify with zero errors and a sound
    /// differential: the verifier has no false positives on the code the
    /// generator actually produces.
    #[test]
    fn clean_generated_modules_always_lint_clean(spec in arb_spec()) {
        let m = codegen::generate(&spec);
        let report = lint_module(&m, &InstrumentConfig::default());
        prop_assert!(!report.has_errors(), "{:?}", report.diagnostics);
        prop_assert_eq!(report.differential.unsound, 0);
    }

    /// The abstract interpreter never produces an unsound proof — a load
    /// it claims is *more* regular than the final fused class — on any
    /// generated kernel, under either planner configuration. This is the
    /// soundness half of the precision ratchet.
    #[test]
    fn absint_never_unsound(spec in arb_spec()) {
        let m = codegen::generate(&spec);
        for config in [InstrumentConfig::default(), InstrumentConfig::eliding()] {
            let report = lint_module(&m, &config);
            prop_assert_eq!(report.differential.unsound, 0);
            prop_assert!(!report.has_errors(), "{:?}", report.diagnostics);
        }
    }

    /// Every address the layout hands out round-trips through locate, and
    /// addresses in inter-procedure padding resolve to nothing.
    #[test]
    fn layout_locate_round_trips(spec in arb_spec()) {
        let m = codegen::generate(&spec);
        let layout = m.layout();
        for (p, proc) in m.procs.iter().enumerate() {
            let pid = ProcId(p as u32);
            for block in &proc.blocks {
                for idx in 0..block.len() {
                    let ip = layout.ip_of(pid, block.id, idx);
                    prop_assert_eq!(layout.locate(ip), Some((pid, block.id, idx)));
                }
            }
            let end = layout.proc_end(pid);
            let next = if p + 1 < m.procs.len() {
                layout.proc_base(ProcId(p as u32 + 1)).0
            } else {
                end.0
            };
            for gap in (end.0..next).step_by(1) {
                prop_assert_eq!(layout.locate(Ip(gap)), None);
            }
        }
    }
}
