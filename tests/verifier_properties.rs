//! Mutation tests of the static verifier and lint framework: corrupt
//! generated modules (and instrumentation artifacts) in targeted ways and
//! check each corruption is caught with its own lint id, while clean
//! generated modules verify with zero errors and zero unsound differential
//! disagreements.

use memgaze::instrument::lint::check_instrumented;
use memgaze::instrument::plan::InstrPlan;
use memgaze::instrument::{lint_module, InstrumentConfig, Instrumenter, ModuleClassification};
use memgaze::isa::codegen::{self, Compose, OptLevel, Pattern, UKernelSpec};
use memgaze::isa::{
    verify_module, BasicBlock, BlockId, DataInit, Diagnostic, Instr, LintId, LoadModule, ProcId,
    Reg, Severity, Terminator,
};
use memgaze::model::{Ip, LoadClass};
use proptest::prelude::*;

fn gen(compose: Compose, opt: OptLevel) -> LoadModule {
    codegen::generate(&UKernelSpec {
        compose,
        elems: 64,
        reps: 2,
        opt,
    })
}

/// A generated module with all three load classes present.
fn mixed(opt: OptLevel) -> LoadModule {
    gen(
        Compose::Serial(vec![Pattern::strided(2), Pattern::Irregular]),
        opt,
    )
}

fn has(diags: &[Diagnostic], lint: LintId) -> bool {
    diags.iter().any(|d| d.lint == lint)
}

fn assert_flags(m: &LoadModule, lint: LintId) {
    let diags = verify_module(m);
    assert!(
        has(&diags, lint),
        "expected {lint} among diagnostics, got: {diags:?}"
    );
}

// --- structural mutations (V0xx) ---------------------------------------

#[test]
fn mutation_proc_id_mismatch() {
    for opt in [OptLevel::O0, OptLevel::O3] {
        let mut m = mixed(opt);
        m.procs[0].id = ProcId(7);
        assert_flags(&m, LintId::ProcIdMismatch);
    }
}

#[test]
fn mutation_block_id_mismatch() {
    let mut m = mixed(OptLevel::O3);
    let b = m.procs[0].blocks.len() - 1;
    m.procs[0].blocks[b].id = BlockId(b as u32 + 5);
    assert_flags(&m, LintId::BlockIdMismatch);
}

#[test]
fn mutation_entry_out_of_range() {
    let mut m = mixed(OptLevel::O0);
    m.procs[0].entry = BlockId(99);
    assert_flags(&m, LintId::EntryOutOfRange);
}

#[test]
fn mutation_terminator_target_out_of_range() {
    let mut m = mixed(OptLevel::O3);
    let last = m.procs[0].blocks.len() - 1;
    m.procs[0].blocks[last].term = Terminator::Jmp(BlockId(999));
    assert_flags(&m, LintId::TermTargetOutOfRange);
}

#[test]
fn mutation_call_target_missing() {
    let mut m = mixed(OptLevel::O0);
    let entry = m.procs[0].entry.index();
    m.procs[0].blocks[entry]
        .instrs
        .push(Instr::Call { proc: ProcId(99) });
    assert_flags(&m, LintId::CallTargetMissing);
}

// --- CFG and dataflow mutations (C1xx) ----------------------------------

#[test]
fn mutation_unreachable_block_is_warning() {
    let mut m = mixed(OptLevel::O3);
    let next = m.procs[0].blocks.len() as u32;
    m.procs[0].blocks.push(BasicBlock {
        id: BlockId(next),
        instrs: vec![],
        term: Terminator::Ret,
        src_line: 0,
    });
    let diags = verify_module(&m);
    let hit = diags
        .iter()
        .find(|d| d.lint == LintId::UnreachableBlock)
        .expect("unreachable block flagged");
    assert_eq!(hit.severity, Severity::Warning);
}

#[test]
fn mutation_use_before_def_is_warning() {
    let mut m = mixed(OptLevel::O0);
    // r13 is not in the entry-defined set and codegen never writes it, so
    // a copy out of it at the procedure's entry reads an undefined value.
    let entry = m.procs[0].entry.index();
    m.procs[0].blocks[entry].instrs.insert(
        0,
        Instr::Mov {
            dst: Reg::gp(6),
            src: Reg::gp(13),
        },
    );
    let diags = verify_module(&m);
    let hit = diags
        .iter()
        .find(|d| d.lint == LintId::UseBeforeDef)
        .expect("use-before-def flagged");
    assert_eq!(hit.severity, Severity::Warning);
}

// --- data-layout mutations (D3xx) ---------------------------------------

#[test]
fn mutation_data_overlap() {
    let mut m = mixed(OptLevel::O3);
    let first = m.data.first().expect("generated module has data").clone();
    m.data.push(DataInit {
        label: "shadow".into(),
        base: first.base,
        words: vec![0],
    });
    assert_flags(&m, LintId::DataOverlap);
}

#[test]
fn mutation_code_data_overlap() {
    let mut m = mixed(OptLevel::O0);
    m.data.push(DataInit {
        label: "in_text".into(),
        base: m.base_ip,
        words: vec![0],
    });
    assert_flags(&m, LintId::CodeDataOverlap);
}

#[test]
fn mutation_data_break_behind() {
    let mut m = mixed(OptLevel::O3);
    m.data_break = 0;
    assert_flags(&m, LintId::DataBreakBehind);
}

// --- instrumentation-artifact mutations (P5xx) --------------------------

struct Artifacts {
    module: LoadModule,
    classification: ModuleClassification,
    plan: InstrPlan,
    inst: memgaze::instrument::Instrumented,
    config: InstrumentConfig,
}

fn artifacts(opt: OptLevel) -> Artifacts {
    let module = mixed(opt);
    let config = InstrumentConfig::default();
    let classification = ModuleClassification::analyze(&module);
    let plan = InstrPlan::build(&module, &classification, &config);
    let inst = Instrumenter::new(config.clone()).instrument(&module);
    Artifacts {
        module,
        classification,
        plan,
        inst,
        config,
    }
}

fn check(a: &Artifacts) -> Vec<Diagnostic> {
    check_instrumented(&a.module, &a.inst, &a.classification, &a.plan, &a.config)
}

#[test]
fn mutation_remapped_ptwrite_breaks_group() {
    let mut a = artifacts(OptLevel::O3);
    let first_load = a.inst.ptw_map.values().next().unwrap().load_ip;
    let other = a
        .inst
        .ptw_map
        .values()
        .map(|i| i.load_ip)
        .find(|&l| l != first_load)
        .expect("module has more than one instrumented load");
    let victim = *a.inst.ptw_map.keys().next().unwrap();
    a.inst.ptw_map.get_mut(&victim).unwrap().load_ip = other;
    let diags = check(&a);
    assert!(has(&diags, LintId::MissingPtwrite), "{diags:?}");
}

#[test]
fn mutation_dropped_ptw_map_entry_is_orphan() {
    let mut a = artifacts(OptLevel::O0);
    let victim = *a.inst.ptw_map.keys().next().unwrap();
    a.inst.ptw_map.remove(&victim);
    let diags = check(&a);
    assert!(has(&diags, LintId::OrphanPtwrite), "{diags:?}");
}

#[test]
fn mutation_annotation_class_flip() {
    let mut a = artifacts(OptLevel::O3);
    let (&ip, annot) = a.inst.annots.iter().next().expect("has annotations");
    let mut bad = *annot;
    bad.class = match bad.class {
        LoadClass::Constant => LoadClass::Irregular,
        _ => LoadClass::Constant,
    };
    a.inst.annots.insert(ip, bad);
    let diags = check(&a);
    assert!(has(&diags, LintId::AnnotationMismatch), "{diags:?}");
}

#[test]
fn mutation_implied_count_bump() {
    let mut a = artifacts(OptLevel::O0);
    let (&ip, annot) = a.inst.annots.iter().next().expect("has annotations");
    let mut bad = *annot;
    bad.implied_const += 3;
    a.inst.annots.insert(ip, bad);
    let diags = check(&a);
    assert!(has(&diags, LintId::ImpliedCountMismatch), "{diags:?}");
}

#[test]
fn mutation_stats_bump() {
    let mut a = artifacts(OptLevel::O3);
    a.inst.stats.constant_loads += 1;
    let diags = check(&a);
    assert!(has(&diags, LintId::StatsMismatch), "{diags:?}");
}

// --- clean modules verify; differential agreement -----------------------

/// Every generated microbenchmark module and every synthetic workload
/// module lints with zero errors and zero unsound differential
/// disagreements (the abstract interpreter never proves a load *more*
/// regular than the dataflow classifier observes).
#[test]
fn differential_no_unsound_disagreements_across_suites() {
    let mut modules: Vec<LoadModule> = Vec::new();
    for opt in [OptLevel::O0, OptLevel::O3] {
        for bench in memgaze::workloads::ubench::suite(opt) {
            modules.push(bench.module());
        }
    }
    modules.push(memgaze_bench::synthetic_module(4, 9));
    modules.push(memgaze_bench::synthetic_module(16, 12));

    let config = InstrumentConfig::default();
    let mut total = memgaze::instrument::DiffSummary::default();
    for m in &modules {
        let report = lint_module(m, &config);
        assert!(
            !report.has_errors(),
            "{}: {:?}",
            report.module,
            report.diagnostics
        );
        assert_eq!(
            report.differential.unsound, 0,
            "{}: unsound disagreement",
            report.module
        );
        total.merge(&report.differential);
    }
    assert!(total.loads > 0);
    assert!(
        total.agreement_rate() > 0.5,
        "rate {}",
        total.agreement_rate()
    );
}

/// The uncompressed configuration must also produce clean artifacts.
#[test]
fn uncompressed_config_lints_clean() {
    let m = mixed(OptLevel::O3);
    let report = lint_module(&m, &InstrumentConfig::uncompressed());
    assert!(!report.has_errors(), "{:?}", report.diagnostics);
}

// --- properties ----------------------------------------------------------

fn arb_pattern() -> impl Strategy<Value = Pattern> {
    prop_oneof![
        (1u32..=8).prop_map(Pattern::strided),
        Just(Pattern::Irregular),
    ]
}

fn arb_compose() -> impl Strategy<Value = Compose> {
    prop_oneof![
        arb_pattern().prop_map(Compose::Single),
        prop::collection::vec(arb_pattern(), 1..3).prop_map(Compose::Serial),
        (arb_pattern(), arb_pattern(), 0u8..=100).prop_map(|(first, second, likelihood)| {
            Compose::Conditional {
                first,
                second,
                likelihood,
            }
        }),
    ]
}

fn arb_spec() -> impl Strategy<Value = UKernelSpec> {
    (
        arb_compose(),
        16u32..256,
        1u32..4,
        prop_oneof![Just(OptLevel::O0), Just(OptLevel::O3)],
    )
        .prop_map(|(compose, elems, reps, opt)| UKernelSpec {
            compose,
            elems,
            reps,
            opt,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Clean generated modules always verify with zero errors and a sound
    /// differential: the verifier has no false positives on the code the
    /// generator actually produces.
    #[test]
    fn clean_generated_modules_always_lint_clean(spec in arb_spec()) {
        let m = codegen::generate(&spec);
        let report = lint_module(&m, &InstrumentConfig::default());
        prop_assert!(!report.has_errors(), "{:?}", report.diagnostics);
        prop_assert_eq!(report.differential.unsound, 0);
    }

    /// Every address the layout hands out round-trips through locate, and
    /// addresses in inter-procedure padding resolve to nothing.
    #[test]
    fn layout_locate_round_trips(spec in arb_spec()) {
        let m = codegen::generate(&spec);
        let layout = m.layout();
        for (p, proc) in m.procs.iter().enumerate() {
            let pid = ProcId(p as u32);
            for block in &proc.blocks {
                for idx in 0..block.len() {
                    let ip = layout.ip_of(pid, block.id, idx);
                    prop_assert_eq!(layout.locate(ip), Some((pid, block.id, idx)));
                }
            }
            let end = layout.proc_end(pid);
            let next = if p + 1 < m.procs.len() {
                layout.proc_base(ProcId(p as u32 + 1)).0
            } else {
                end.0
            };
            for gap in (end.0..next).step_by(1) {
                prop_assert_eq!(layout.locate(Ip(gap)), None);
            }
        }
    }
}
