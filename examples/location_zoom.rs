//! Location zooming and heatmaps over GAP connected components
//! (paper §IV-C2, Fig. 5 and Fig. 8).
//!
//! ```sh
//! cargo run --release --example location_zoom [cc|cc-sv]
//! ```
//!
//! Zooms from the whole address space down to the hot memory objects,
//! then renders Fig. 8-style access-frequency and reuse-distance
//! heatmaps of the hottest region as ASCII shade maps.

use memgaze::analysis::{fmt_f3, AnalysisConfig, ZoomRegion};
use memgaze::core::trace_workload;
use memgaze::ptsim::SamplerConfig;
use memgaze::workloads::gap::{self, GapConfig, GapKernel};

fn print_tree(r: &ZoomRegion, indent: usize) {
    println!(
        "{:indent$}[{:#x}..{:#x}) {:>6} accesses ({:>5.1}%)  D={}  {} blocks  {}",
        "",
        r.lo,
        r.hi,
        r.accesses,
        r.pct_of_total,
        fmt_f3(r.reuse_d),
        r.blocks,
        r.code.first().map(|c| c.function.as_str()).unwrap_or("-"),
        indent = indent
    );
    for c in &r.children {
        print_tree(c, indent + 2);
    }
}

fn main() {
    let kernel = match std::env::args().nth(1).as_deref() {
        Some("cc-sv") => GapKernel::CcSv,
        _ => GapKernel::Cc,
    };
    let cfg = GapConfig {
        scale: 10,
        degree: 8,
        kernel,
        max_iters: 10,
        seed: 21,
    };

    let mut sampler = SamplerConfig::application(20_000);
    sampler.seed = 5;
    let (report, result) = trace_workload(&format!("GAP-{}", kernel.label()), &sampler, |s| {
        gap::run(s, &cfg)
    });
    println!(
        "GAP {}: {} iterations, {} loads, {} samples\n",
        kernel.label(),
        result.iterations,
        report.stream.total_loads,
        report.trace.num_samples()
    );

    let analyzer = report.analyzer(AnalysisConfig::default());
    println!("== location zoom tree (Fig. 5) ==");
    match analyzer.zoom() {
        Some(root) => print_tree(root, 0),
        None => {
            println!("(no sampled accesses)");
            return;
        }
    }

    // Heatmaps of the hottest leaf region (Fig. 8).
    let rows = analyzer.region_rows();
    if let Some(hot) = rows.first() {
        println!(
            "\n== Fig. 8 heatmaps of hottest region [{:#x}..{:#x}) ==",
            hot.range.0, hot.range.1
        );
        let (acc, d) = analyzer.heatmaps(hot.range, 16, 48);
        println!("access frequency (darker = more accesses):");
        print!("{}", acc.render_ascii());
        println!("reuse distance D (darker = larger):");
        print!("{}", d.render_ascii());
        println!(
            "dark cells at 50% of max: accesses {}, D {}",
            acc.dark_cells(0.5),
            d.dark_cells(0.5)
        );
    }
}
