//! Quickstart: trace a microbenchmark end-to-end and print its memory
//! diagnostics.
//!
//! ```sh
//! cargo run --release --example quickstart [pattern] [opt]
//! # e.g.  cargo run --release --example quickstart "str2|irr" O3
//! ```
//!
//! The microbenchmark runs on the IR path: the kernel is generated into
//! the synthetic ISA, classified and instrumented with `ptwrite`s,
//! executed under the Processor-Tracing model, and the decoded sampled
//! trace is analyzed.

use memgaze::analysis::{fmt_f3, fmt_pct, fmt_si, pow2_sizes};
use memgaze::core::{MemGaze, PipelineConfig};
use memgaze::model::DecompressionInfo;
use memgaze::workloads::ubench::{MicroBench, OptLevel};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let pattern = args.get(1).map(String::as_str).unwrap_or("str2|irr");
    let opt = match args.get(2).map(String::as_str) {
        Some("O0") => OptLevel::O0,
        _ => OptLevel::O3,
    };

    let bench = MicroBench::parse(pattern, 8192, 50, opt).unwrap_or_else(|| {
        panic!("unknown pattern {pattern:?} (try str1, irr, str2|irr, str1/irr)")
    });
    println!("== MemGaze quickstart: {} ==\n", bench.name());

    let mut cfg = PipelineConfig::microbench();
    cfg.sampler.period = 10_000; // the paper's microbenchmark period
    let memgaze = MemGaze::new(cfg.clone());

    let report = memgaze.run_microbench(&bench).expect("pipeline run");
    let info = DecompressionInfo::from_trace(&report.trace, &report.instrumented.annots);

    println!("collection:");
    println!(
        "  loads executed        {}",
        fmt_si(report.run.exec.loads as f64)
    );
    println!(
        "  ptwrites executed     {}",
        fmt_si(report.run.exec.ptwrites as f64)
    );
    println!("  samples               {}", report.trace.num_samples());
    println!(
        "  mean window w         {:.0} accesses",
        report.trace.mean_window()
    );
    println!("  compression kappa     {:.3}", info.kappa());
    println!("  sample ratio rho      {:.1}", info.rho());
    println!(
        "  trace size            {} B (sampled) — sampling keeps ~{:.2}% of loads",
        memgaze::model::io::sampled_size_bytes(&report.trace),
        100.0 / info.rho()
    );

    let analyzer = report.analyzer(cfg.analysis);
    println!("\nhot functions (paper Table IV shape):");
    print!("{}", analyzer.function_table_rendered("").render());

    println!("\nfootprint vs window size (paper Fig. 6 histograms):");
    println!("  window      F        F_str    F_irr    dF");
    for p in analyzer.window_series(&pow2_sizes(4, 12)) {
        println!(
            "  {:<10} {:<8} {:<8} {:<8} {}",
            p.target_size,
            fmt_si(p.f),
            fmt_si(p.f_str),
            fmt_si(p.f_irr),
            fmt_f3(p.delta_f),
        );
    }

    let dec = analyzer.decompression();
    println!(
        "\nA_const% = {} (constant loads recovered from annotations)",
        fmt_pct(
            100.0 * dec.implied_const as f64 / (dec.observed + dec.implied_const).max(1) as f64
        )
    );
}
