//! The miniVite case study (paper §VII-A, Tables IV–V): how three hash
//! table implementations change the memory behaviour of Louvain
//! community detection.
//!
//! ```sh
//! cargo run --release --example minivite_case_study [scale]
//! ```

use memgaze::analysis::{fmt_f3, fmt_pct, fmt_si, AnalysisConfig, Table};
use memgaze::core::trace_workload;
use memgaze::ptsim::SamplerConfig;
use memgaze::workloads::minivite::{self, MapVariant, MiniViteConfig};

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(9);

    println!("== miniVite: data locality of hot function accesses ==\n");
    let mut table4 = Table::new(
        "Table IV shape: per-function locality",
        &["Function", "Variant", "F", "dF", "Fstr%", "A"],
    );
    let mut table5 = Table::new(
        "Table V shape: spatio-temporal reuse of hot memory (64 B block)",
        &["Object", "Variant", "Reuse (D)", "#blocks", "A", "A/block"],
    );
    let mut runtimes = Vec::new();

    for variant in [MapVariant::V1, MapVariant::V2, MapVariant::V3] {
        let cfg = MiniViteConfig {
            scale,
            degree: 8,
            iterations: 2,
            variant,
            seed: 42,
            v2_default_capacity: 64,
        };
        // Applications use a large period and an 8-KiB buffer.
        let mut sampler = SamplerConfig::application(50_000);
        sampler.seed = 7;
        let (report, result) = trace_workload(
            &format!("miniVite-O3-{}", variant.label()),
            &sampler,
            |space| minivite::run(space, &cfg),
        );
        runtimes.push((variant.label(), result.abstract_cost));

        let analyzer = report.analyzer(AnalysisConfig::default());
        for row in analyzer.function_table() {
            if ["buildMap", "map.insert", "getMax"].contains(&row.name.as_str()) {
                table4.push_row(vec![
                    row.name.clone(),
                    variant.label().to_string(),
                    fmt_si(row.f_hat_bytes),
                    fmt_f3(row.delta_f),
                    fmt_pct(row.f_str_pct),
                    fmt_si(row.accesses_decompressed),
                ]);
            }
        }

        for (object, label) in [("map", "map (hash table)"), ("csr-targets", "remote edges")] {
            if let Some((lo, hi)) = report.label_range(object) {
                let row = analyzer.region_row_for(lo, hi);
                table5.push_row(vec![
                    label.to_string(),
                    variant.label().to_string(),
                    fmt_f3(row.reuse_d),
                    fmt_si(row.blocks as f64),
                    fmt_si(row.accesses as f64),
                    fmt_f3(row.accesses_per_block()),
                ]);
            }
        }
    }

    print!("{}", table4.render());
    println!();
    print!("{}", table5.render());

    println!("\nRun times (abstract cost; the paper's v1 > v2 > v3 ordering):");
    for (label, cost) in &runtimes {
        println!("  {label}  {}", fmt_si(*cost as f64));
    }
    assert!(
        runtimes[0].1 > runtimes[2].1,
        "v1 should out-cost v3 — check the cost model"
    );
}
