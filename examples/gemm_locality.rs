//! Darknet gemm/im2col locality (paper §VII-B, Tables VI–VIII): AlexNet
//! vs. ResNet-152 inference through the traced pipeline.
//!
//! ```sh
//! cargo run --release --example gemm_locality
//! ```

use memgaze::analysis::{fmt_f3, fmt_pct, fmt_si, AnalysisConfig, Table};
use memgaze::core::trace_workload;
use memgaze::ptsim::SamplerConfig;
use memgaze::workloads::darknet::{self, Network};

fn main() {
    let mut table6 = Table::new(
        "Table VI shape: data locality of hot function accesses",
        &["Function", "Model", "F", "dF", "Fstr%", "A"],
    );
    let mut table8 = Table::new(
        "Table VIII shape: gemm locality over time (8 access intervals)",
        &["Interval", "Model", "F", "dF", "D", "A"],
    );

    for net in [Network::AlexNet, Network::ResNet152] {
        let mut sampler = SamplerConfig::application(20_000);
        sampler.seed = 11;
        let (report, result) =
            trace_workload(&format!("Darknet-{}", net.label()), &sampler, |space| {
                darknet::run(space, net)
            });
        println!(
            "{}: {} MACs, {} loads, {} samples",
            net.label(),
            fmt_si(result.macs as f64),
            fmt_si(report.stream.total_loads as f64),
            report.trace.num_samples()
        );

        let analyzer = report.analyzer(AnalysisConfig::default());
        for row in analyzer.function_table() {
            if ["gemm", "im2col"].contains(&row.name.as_str()) {
                table6.push_row(vec![
                    row.name.clone(),
                    net.label().to_string(),
                    fmt_si(row.f_hat_bytes),
                    fmt_f3(row.delta_f),
                    fmt_pct(row.f_str_pct),
                    fmt_si(row.accesses_decompressed),
                ]);
            }
        }

        for row in analyzer.interval_rows(8) {
            table8.push_row(vec![
                row.interval.to_string(),
                net.label().to_string(),
                fmt_si(row.f_hat_bytes),
                fmt_f3(row.delta_f),
                fmt_f3(row.mean_d),
                fmt_si(row.accesses_decompressed),
            ]);
        }
    }

    println!();
    print!("{}", table6.render());
    println!();
    print!("{}", table8.render());
    println!("\nAll gemm accesses are strided (Fstr% = 100), as the paper's Table VI reports.");
}
