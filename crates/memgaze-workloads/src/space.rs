//! The traced address space: a simulated allocator plus a static
//! access-site registry.
//!
//! Application workloads (miniVite, GAP, Darknet) run as native Rust but
//! perform their memory traffic against a [`TracedSpace`]: objects are
//! allocated at simulated addresses, and every logical load goes through
//! a registered *site* carrying the static metadata the instrumentor
//! would have produced for the corresponding instruction — function,
//! load class, source count. The space forwards each dynamic load to a
//! [`LoadRecorder`] (the PT model lives behind it) and keeps per-phase
//! execution counters for the overhead model.

use memgaze_model::{AuxAnnotations, FunctionId, Ip, IpAnnot, LoadClass, SymbolTable};
use serde::{Deserialize, Serialize};

/// Receiver of dynamic load events (the bridge to `memgaze-ptsim`).
pub trait LoadRecorder {
    /// One executed load: synthetic site ip, simulated data address,
    /// whether the site is `ptwrite`-instrumented, and its packet count.
    fn record(&mut self, ip: Ip, addr: u64, instrumented: bool, packets: u8) {
        let _ = (ip, addr, instrumented, packets);
    }
}

/// Recorder that ignores everything (dry runs, unit tests).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;
impl LoadRecorder for NullRecorder {}

impl NullRecorder {
    /// Shared no-op instance.
    pub fn new() -> NullRecorder {
        NullRecorder
    }
}

/// Adapter turning a closure into a [`LoadRecorder`].
pub struct FnRecorder<F: FnMut(Ip, u64, bool, u8)>(pub F);

impl<F: FnMut(Ip, u64, bool, u8)> LoadRecorder for FnRecorder<F> {
    fn record(&mut self, ip: Ip, addr: u64, instrumented: bool, packets: u8) {
        (self.0)(ip, addr, instrumented, packets)
    }
}

/// A registered access site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Site {
    /// Synthetic instruction address.
    pub ip: Ip,
    /// Enclosing function name.
    pub func: String,
    /// Short site label ("bucket-head", "neighbor-scan", …).
    pub label: String,
    /// Static class.
    pub class: LoadClass,
    /// Two-source addressing (costs two packets).
    pub two_source: bool,
    /// Constant loads this site implies per execution (frame traffic the
    /// compression suppressed).
    pub implied_const: u32,
    /// Source line for attribution.
    pub line: u32,
}

/// Dense site identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SiteId(pub u32);

/// One named allocation in the simulated space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    /// Object label ("map", "remote-edges", …).
    pub label: String,
    /// Base address.
    pub base: u64,
    /// Size in bytes.
    pub bytes: u64,
}

/// Execution counters, kept per phase and in total.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counters {
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Total instructions (approximate: loads/stores plus ALU work).
    pub instrs: u64,
    /// `ptwrite`s the instrumented binary would execute.
    pub ptwrites: u64,
    /// Loads that carry instrumentation.
    pub instrumented_loads: u64,
}

/// A phase of execution ("graphgen", "modularity", …) for the Fig. 7
/// per-phase overhead breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Phase name.
    pub name: String,
    /// Counters accumulated during the phase.
    pub counters: Counters,
}

/// Instructions charged per load beyond the load itself (address
/// arithmetic plus a consumer).
const INSTRS_PER_LOAD: u64 = 3;
/// Instructions charged per store.
const INSTRS_PER_STORE: u64 = 2;

/// The traced address space.
pub struct TracedSpace<R: LoadRecorder> {
    recorder: R,
    brk: u64,
    allocations: Vec<Allocation>,
    sites: Vec<Site>,
    /// Function name → id, in registration order.
    funcs: Vec<String>,
    /// Whether Constant sites are compressed away (true) or recorded
    /// (false, the "All⁺" mode).
    compress: bool,
    /// Implied Constant loads added to every subsequently registered
    /// non-Constant site — emulates O0 codegen's frame spills/reloads
    /// (κ ≈ 1 + o0_extra).
    o0_extra: u32,
    phases: Vec<Phase>,
    total: Counters,
}

/// Site ips: `SITE_BASE + func_id·FUNC_STRIDE + site_in_func·4`.
const SITE_BASE: u64 = 0x40_0000;
const FUNC_STRIDE: u64 = 0x1000;
/// Data allocations start here.
const DATA_BASE: u64 = 0x10_0000_0000;

impl<R: LoadRecorder> TracedSpace<R> {
    /// A fresh space feeding `recorder`, with compression enabled.
    pub fn new(recorder: R) -> TracedSpace<R> {
        TracedSpace {
            recorder,
            brk: DATA_BASE,
            allocations: Vec::new(),
            sites: Vec::new(),
            funcs: Vec::new(),
            compress: true,
            o0_extra: 0,
            phases: vec![Phase {
                name: "main".to_string(),
                counters: Counters::default(),
            }],
            total: Counters::default(),
        }
    }

    /// Disable compression: Constant sites are recorded too (the
    /// uncompressed "All⁺" baseline).
    pub fn set_compress(&mut self, compress: bool) {
        self.compress = compress;
    }

    /// Emulate O0 codegen: every non-Constant site registered *after*
    /// this call implies `extra` Constant frame loads per execution
    /// (paper §VI-C: O0 compresses ≈2×, i.e. `extra = 1`).
    pub fn set_o0_extra(&mut self, extra: u32) {
        self.o0_extra = extra;
    }

    /// Begin a new phase; subsequent counters accrue to it.
    pub fn phase(&mut self, name: impl Into<String>) {
        self.phases.push(Phase {
            name: name.into(),
            counters: Counters::default(),
        });
    }

    /// Allocate `bytes` of simulated memory. Small allocations pack into
    /// 64-byte-aligned bins; large ones (≥ 2 KiB) are page-aligned and
    /// followed by a guard page, mirroring how real allocators separate
    /// large objects — which is what lets the location zoom's contiguous-
    /// page runs distinguish objects (paper §IV-C2).
    pub fn alloc(&mut self, label: impl Into<String>, bytes: u64) -> u64 {
        const PAGE: u64 = 4096;
        let (base, next) = if bytes >= 2048 {
            let base = (self.brk + PAGE - 1) & !(PAGE - 1);
            let end = (base + bytes + PAGE - 1) & !(PAGE - 1);
            (base, end + PAGE) // one guard page
        } else {
            let base = self.brk;
            (base, base + ((bytes + 63) & !63))
        };
        self.allocations.push(Allocation {
            label: label.into(),
            base,
            bytes,
        });
        self.brk = next;
        base
    }

    /// All allocations, in allocation order.
    pub fn allocations(&self) -> &[Allocation] {
        &self.allocations
    }

    /// The most recent allocation with the given label.
    pub fn find_allocation(&self, label: &str) -> Option<&Allocation> {
        self.allocations.iter().rev().find(|a| a.label == label)
    }

    /// Address range covering every allocation with the given label
    /// (e.g. all nodes of a chained hash map).
    pub fn label_range(&self, label: &str) -> Option<(u64, u64)> {
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for a in self.allocations.iter().filter(|a| a.label == label) {
            lo = lo.min(a.base);
            hi = hi.max(a.base + a.bytes);
        }
        (lo < hi).then_some((lo, hi))
    }

    fn func_id(&mut self, func: &str) -> u32 {
        match self.funcs.iter().position(|f| f == func) {
            Some(i) => i as u32,
            None => {
                self.funcs.push(func.to_string());
                (self.funcs.len() - 1) as u32
            }
        }
    }

    /// Register an access site.
    pub fn site(
        &mut self,
        func: &str,
        label: &str,
        class: LoadClass,
        two_source: bool,
        line: u32,
    ) -> SiteId {
        let fid = self.func_id(func);
        let in_func = self.sites.iter().filter(|s| s.func == func).count() as u64;
        assert!(in_func * 4 < FUNC_STRIDE, "too many sites in {func}");
        let ip = Ip(SITE_BASE + u64::from(fid) * FUNC_STRIDE + in_func * 4);
        let implied_const = if class.is_instrumented() {
            self.o0_extra
        } else {
            0
        };
        self.sites.push(Site {
            ip,
            func: func.to_string(),
            label: label.to_string(),
            class,
            two_source,
            implied_const,
            line,
        });
        SiteId((self.sites.len() - 1) as u32)
    }

    /// Register a site that additionally implies `n` Constant loads per
    /// execution (the frame traffic its basic block would contain).
    pub fn site_with_const(
        &mut self,
        func: &str,
        label: &str,
        class: LoadClass,
        two_source: bool,
        line: u32,
        implied_const: u32,
    ) -> SiteId {
        let id = self.site(func, label, class, two_source, line);
        self.sites[id.0 as usize].implied_const = implied_const;
        id
    }

    /// Execute one load through `site` at `addr`.
    #[inline]
    pub fn load(&mut self, site: SiteId, addr: u64) {
        let s = &self.sites[site.0 as usize];
        let instrumented = if self.compress {
            s.class.is_instrumented()
        } else {
            true
        };
        let packets = if s.two_source { 2 } else { 1 };
        let implied = u64::from(s.implied_const);
        let ip = s.ip;
        self.recorder.record(ip, addr, instrumented, packets);

        let c = &mut self
            .phases
            .last_mut()
            .expect("phase list is never empty")
            .counters;
        // This load plus the constant loads its block implies.
        let loads = 1 + implied;
        c.loads += loads;
        c.instrs += loads * INSTRS_PER_LOAD;
        if instrumented {
            c.ptwrites += u64::from(packets);
            c.instrumented_loads += 1;
            c.instrs += u64::from(packets); // the ptwrite instructions
        }
        self.total.loads += loads;
        self.total.instrs += loads * INSTRS_PER_LOAD;
        if instrumented {
            self.total.ptwrites += u64::from(packets);
            self.total.instrumented_loads += 1;
            self.total.instrs += u64::from(packets);
        }
    }

    /// Execute one store (counted, never traced).
    #[inline]
    pub fn store(&mut self, _addr: u64) {
        let c = &mut self.phases.last_mut().expect("phase").counters;
        c.stores += 1;
        c.instrs += INSTRS_PER_STORE;
        self.total.stores += 1;
        self.total.instrs += INSTRS_PER_STORE;
    }

    /// Charge `n` ALU instructions to the current phase.
    #[inline]
    pub fn alu(&mut self, n: u64) {
        self.phases.last_mut().expect("phase").counters.instrs += n;
        self.total.instrs += n;
    }

    /// Total counters.
    pub fn counters(&self) -> Counters {
        self.total
    }

    /// Per-phase counters.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Build the symbol table covering every registered function.
    pub fn symbols(&self) -> SymbolTable {
        let mut t = SymbolTable::new();
        for (i, name) in self.funcs.iter().enumerate() {
            let lo = SITE_BASE + i as u64 * FUNC_STRIDE;
            t.add_function(name.clone(), Ip(lo), Ip(lo + FUNC_STRIDE), "workload.rs");
        }
        t
    }

    /// Build the auxiliary annotation file for the registered sites.
    pub fn annotations(&self) -> AuxAnnotations {
        let mut ax = AuxAnnotations::new();
        for s in &self.sites {
            let fid = self
                .funcs
                .iter()
                .position(|f| *f == s.func)
                .expect("site func registered") as u32;
            let mut a = IpAnnot::of_class(s.class, FunctionId(fid));
            a.two_source = s.two_source;
            a.implied_const = s.implied_const;
            a.src_line = s.line;
            ax.insert(s.ip, a);
        }
        ax
    }

    /// Access the recorder (e.g. to finish a collection).
    pub fn into_recorder(self) -> R {
        self.recorder
    }

    /// Mutable access to the recorder mid-run — the live watch loop
    /// drains completed samples and retunes the sampler between
    /// workload steps without ending the collection.
    pub fn recorder_mut(&mut self) -> &mut R {
        &mut self.recorder
    }

    /// The registered sites.
    pub fn sites(&self) -> &[Site] {
        &self.sites
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_layout() {
        let mut s = TracedSpace::new(NullRecorder);
        let a = s.alloc("a", 100);
        let b = s.alloc("b", 8);
        assert_eq!(a % 64, 0);
        assert!(b >= a + 100);
        assert_eq!(s.find_allocation("a").unwrap().bytes, 100);
        assert!(s.find_allocation("zzz").is_none());
        s.alloc("a", 100);
        let (lo, hi) = s.label_range("a").unwrap();
        assert_eq!(lo, a);
        assert!(hi > b);
    }

    #[test]
    fn sites_get_stable_ips_grouped_by_function() {
        let mut s = TracedSpace::new(NullRecorder);
        let s1 = s.site("f", "x", LoadClass::Strided, true, 1);
        let s2 = s.site("g", "y", LoadClass::Irregular, false, 2);
        let s3 = s.site("f", "z", LoadClass::Constant, false, 3);
        let sites = s.sites();
        assert_eq!(sites[s1.0 as usize].ip, Ip(SITE_BASE));
        assert_eq!(sites[s2.0 as usize].ip, Ip(SITE_BASE + FUNC_STRIDE));
        assert_eq!(sites[s3.0 as usize].ip, Ip(SITE_BASE + 4));
        // Symbols cover the functions.
        let sym = s.symbols();
        assert_eq!(sym.lookup(sites[s1.0 as usize].ip).unwrap().name, "f");
        assert_eq!(sym.lookup(sites[s3.0 as usize].ip).unwrap().name, "f");
        assert_eq!(sym.lookup(sites[s2.0 as usize].ip).unwrap().name, "g");
    }

    #[test]
    fn loads_route_to_recorder_with_metadata() {
        let mut events: Vec<(Ip, u64, bool, u8)> = Vec::new();
        {
            let rec = FnRecorder(|ip: Ip, addr: u64, inst: bool, pk: u8| {
                events.push((ip, addr, inst, pk))
            });
            let mut s = TracedSpace::new(rec);
            let strided = s.site("f", "s", LoadClass::Strided, true, 1);
            let constant = s.site("f", "c", LoadClass::Constant, false, 2);
            s.load(strided, 0x1000);
            s.load(constant, 0x2000);
        }
        assert_eq!(events.len(), 2);
        assert!(events[0].2);
        assert_eq!(events[0].3, 2);
        // Constant sites are not instrumented under compression.
        assert!(!events[1].2);
    }

    #[test]
    fn uncompressed_mode_records_constants() {
        let mut count = 0u64;
        {
            let rec = FnRecorder(|_: Ip, _: u64, inst: bool, _: u8| {
                if inst {
                    count += 1
                }
            });
            let mut s = TracedSpace::new(rec);
            s.set_compress(false);
            let c = s.site("f", "c", LoadClass::Constant, false, 1);
            s.load(c, 0x10);
        }
        assert_eq!(count, 1);
    }

    #[test]
    fn counters_accrue_per_phase() {
        let mut s = TracedSpace::new(NullRecorder);
        let site = s.site_with_const("f", "x", LoadClass::Strided, false, 1, 2);
        s.load(site, 0x10);
        s.phase("second");
        s.load(site, 0x20);
        s.load(site, 0x30);
        s.store(0x40);
        s.alu(5);

        let phases = s.phases();
        assert_eq!(phases.len(), 2);
        // Phase 1: one load + 2 implied constants.
        assert_eq!(phases[0].counters.loads, 3);
        assert_eq!(phases[0].counters.ptwrites, 1);
        // Phase 2: two sites → 6 loads, one store.
        assert_eq!(phases[1].counters.loads, 6);
        assert_eq!(phases[1].counters.stores, 1);
        assert!(phases[1].counters.instrs >= 6 * 3 + 2 + 5);
        let t = s.counters();
        assert_eq!(t.loads, 9);
        assert_eq!(t.instrumented_loads, 3);
    }

    #[test]
    fn annotations_reflect_sites() {
        let mut s = TracedSpace::new(NullRecorder);
        let a = s.site_with_const("f", "x", LoadClass::Strided, true, 7, 3);
        let ip = s.sites()[a.0 as usize].ip;
        let ax = s.annotations();
        let annot = ax.get(ip).unwrap();
        assert_eq!(annot.class, LoadClass::Strided);
        assert!(annot.two_source);
        assert_eq!(annot.implied_const, 3);
        assert_eq!(annot.src_line, 7);
    }
}
