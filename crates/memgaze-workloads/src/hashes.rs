//! Traced hash tables — the miniVite case study's `map` object
//! (paper §VII-A).
//!
//! * [`ChainedMap`] (v1) models C++ `std::unordered_map`: an open hash
//!   table — an array of buckets, each a linked list of nodes — whose
//!   probes are *irregular* (pointer chases).
//! * [`HopscotchMap`] (v2/v3) models TSL hopscotch: a closed table whose
//!   neighborhood probes and scans are *strided*. v2 uses a default table
//!   size and grows by rehashing (extra accesses from resizing copies and
//!   over-allocation searches); v3 is right-sized per instance and never
//!   resizes.

use crate::containers::TVec;
use crate::space::{LoadRecorder, SiteId, TracedSpace};
use memgaze_model::LoadClass;

fn hash64(k: u64) -> u64 {
    // SplitMix64 finalizer: good avalanche, deterministic.
    let mut z = k.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Accumulating map interface shared by both variants: the logical
/// operation of miniVite's `buildMap` is `map[key] += w`.
pub trait AccumMap {
    /// `map[key] += delta`, inserting on first touch.
    fn insert_add<R: LoadRecorder>(&mut self, space: &mut TracedSpace<R>, key: u64, delta: u64);
    /// The `(key, value)` with the maximum value (miniVite's `getMax`).
    fn get_max<R: LoadRecorder>(&self, space: &mut TracedSpace<R>) -> Option<(u64, u64)>;
    /// Logical entry count.
    fn len(&self) -> usize;
    /// True when no entries exist.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Remove all entries, keeping capacity.
    fn clear(&mut self);
}

/// Chained (open) hash map: v1.
pub struct ChainedMap {
    /// Bucket heads: node index + 1, 0 = empty.
    buckets: TVec<u32>,
    /// Node storage: `(key, val, next+1)`.
    nodes: TVec<(u64, u64, u32)>,
    live_nodes: usize,
    len: usize,
    sites: ChainedSites,
}

struct ChainedSites {
    bucket_head: SiteId,
    chain_key: SiteId,
    value: SiteId,
    scan_bucket: SiteId,
    scan_node: SiteId,
}

impl ChainedMap {
    /// A chained map with `buckets` buckets and room for `max_nodes`
    /// entries.
    pub fn new<R: LoadRecorder>(
        space: &mut TracedSpace<R>,
        buckets: usize,
        max_nodes: usize,
    ) -> ChainedMap {
        let sites = ChainedSites {
            // The bucket-head lookup is an indexed gather off the hash —
            // irregular, two sources (base + hashed index).
            bucket_head: space.site("map.insert", "bucket-head", LoadClass::Irregular, true, 10),
            chain_key: space.site("map.insert", "chain-key", LoadClass::Irregular, false, 11),
            value: space.site("map.insert", "chain-val", LoadClass::Irregular, false, 12),
            // libstdc++'s unordered_map iterates a global singly linked
            // node list: both the bucket walk and the node walk are
            // pointer chases.
            scan_bucket: space.site("getMax", "scan-bucket", LoadClass::Irregular, true, 20),
            scan_node: space.site("getMax", "scan-node", LoadClass::Irregular, false, 21),
        };
        ChainedMap {
            buckets: TVec::new(space, "map", buckets.max(1), 0),
            nodes: TVec::new(space, "map", max_nodes.max(1), (0, 0, 0)),
            live_nodes: 0,
            len: 0,
            sites,
        }
    }
}

impl AccumMap for ChainedMap {
    fn insert_add<R: LoadRecorder>(&mut self, space: &mut TracedSpace<R>, key: u64, delta: u64) {
        space.alu(12); // hash computation
        let b = (hash64(key) % self.buckets.len() as u64) as usize;
        let mut cur = *self.buckets.get(space, self.sites.bucket_head, b);
        while cur != 0 {
            space.alu(3); // compare + advance
            let idx = (cur - 1) as usize;
            let (k, _, next) = *self.nodes.get(space, self.sites.chain_key, idx);
            if k == key {
                // Found: load + store the value word.
                space.load(self.sites.value, self.nodes.addr(idx) + 8);
                space.store(self.nodes.addr(idx) + 8);
                self.nodes.raw_mut()[idx].1 += delta;
                return;
            }
            cur = next;
        }
        // Append a fresh node at the chain head.
        assert!(
            self.live_nodes < self.nodes.len(),
            "ChainedMap node pool full"
        );
        let idx = self.live_nodes;
        self.live_nodes += 1;
        let head = self.buckets.raw()[b];
        self.nodes.set(space, idx, (key, delta, head));
        self.buckets.set(space, b, idx as u32 + 1);
        self.len += 1;
    }

    fn get_max<R: LoadRecorder>(&self, space: &mut TracedSpace<R>) -> Option<(u64, u64)> {
        let mut best: Option<(u64, u64)> = None;
        for b in 0..self.buckets.len() {
            let mut cur = *self.buckets.get(space, self.sites.scan_bucket, b);
            while cur != 0 {
                space.alu(3);
                let idx = (cur - 1) as usize;
                let (k, v, next) = *self.nodes.get(space, self.sites.scan_node, idx);
                if best.is_none_or(|(_, bv)| v > bv) {
                    best = Some((k, v));
                }
                cur = next;
            }
        }
        best
    }

    fn len(&self) -> usize {
        self.len
    }

    fn clear(&mut self) {
        for b in self.buckets.raw_mut() {
            *b = 0;
        }
        self.live_nodes = 0;
        self.len = 0;
    }
}

/// Neighborhood size of the hopscotch table.
pub const HOP_RANGE: usize = 32;

/// Hopscotch (closed) hash map: v2 (default-sized, resizable) and v3
/// (right-sized).
pub struct HopscotchMap {
    /// Slots: `(key, val, occupied)`.
    slots: TVec<(u64, u64, bool)>,
    /// Slots in use for the current instance (right-sizing, v3): probes
    /// and scans stay within `active`.
    active: usize,
    len: usize,
    /// Whether resizing is permitted (v2) or a right-sized table is
    /// expected to suffice (v3).
    resizable: bool,
    sites: HopSites,
    /// Slots rehash-copied over the map's lifetime (v2's hidden cost).
    pub resize_copies: u64,
}

struct HopSites {
    probe: SiteId,
    value: SiteId,
    rehash: SiteId,
    scan: SiteId,
}

impl HopscotchMap {
    /// A hopscotch map with `capacity` slots.
    pub fn new<R: LoadRecorder>(
        space: &mut TracedSpace<R>,
        capacity: usize,
        resizable: bool,
    ) -> HopscotchMap {
        let sites = HopSites {
            // Neighborhood probes advance linearly from the home slot.
            probe: space.site("map.insert", "probe", LoadClass::Strided, true, 30),
            value: space.site("map.insert", "slot-val", LoadClass::Strided, false, 31),
            rehash: space.site("map.insert", "rehash-copy", LoadClass::Strided, true, 32),
            scan: space.site("getMax", "slot-scan", LoadClass::Strided, true, 40),
        };
        let slots = TVec::new(space, "map", capacity.max(HOP_RANGE), (0, 0, false));
        HopscotchMap {
            active: slots.len(),
            slots,
            len: 0,
            resizable,
            sites,
            resize_copies: 0,
        }
    }

    /// Right-size this instance (v3): subsequent probes/scans use only
    /// the first `cap` slots (clamped to `[HOP_RANGE, capacity]`). Call
    /// after [`AccumMap::clear`].
    pub fn set_active_capacity(&mut self, cap: usize) {
        self.active = cap.clamp(HOP_RANGE, self.slots.len());
    }

    fn grow<R: LoadRecorder>(&mut self, space: &mut TracedSpace<R>) {
        let new_cap = self.slots.len() * 2;
        let old: Vec<(u64, u64, bool)> = self.slots.raw().to_vec();
        // Rehash: read every old slot (strided), write the new table.
        let mut new_slots: TVec<(u64, u64, bool)> = TVec::new(space, "map", new_cap, (0, 0, false));
        for (i, &(k, v, occ)) in old.iter().enumerate() {
            space.load(self.sites.rehash, self.slots.addr(i));
            if occ {
                let cap = new_slots.len();
                let home = (hash64(k) % cap as u64) as usize;
                for d in 0..HOP_RANGE {
                    let j = (home + d) % cap;
                    if !new_slots.raw()[j].2 {
                        new_slots.set(space, j, (k, v, true));
                        self.resize_copies += 1;
                        break;
                    }
                }
            }
        }
        self.slots = new_slots;
        self.active = self.slots.len();
    }
}

impl AccumMap for HopscotchMap {
    fn insert_add<R: LoadRecorder>(&mut self, space: &mut TracedSpace<R>, key: u64, delta: u64) {
        loop {
            let cap = self.active;
            space.alu(12); // hash computation
            let home = (hash64(key) % cap as u64) as usize;
            for d in 0..HOP_RANGE {
                space.alu(3); // compare + wrap
                let j = (home + d) % cap;
                let (k, _, occ) = *self.slots.get(space, self.sites.probe, j);
                if occ && k == key {
                    space.load(self.sites.value, self.slots.addr(j) + 8);
                    space.store(self.slots.addr(j) + 8);
                    self.slots.raw_mut()[j].1 += delta;
                    return;
                }
                if !occ {
                    self.slots.set(space, j, (key, delta, true));
                    self.len += 1;
                    return;
                }
            }
            // Neighborhood full.
            if !self.resizable && self.active < self.slots.len() {
                // A right-sized instance that guessed too small doubles
                // its active window (still within the arena, no rehash
                // traffic for entries already placed by this instance's
                // hash-mod-active — we rehash the active prefix).
                let old_active = self.active;
                self.active = (self.active * 2).min(self.slots.len());
                let entries: Vec<(u64, u64)> = self.slots.raw()[..old_active]
                    .iter()
                    .filter(|s| s.2)
                    .map(|s| (s.0, s.1))
                    .collect();
                for i in 0..old_active {
                    self.slots.raw_mut()[i] = (0, 0, false);
                }
                self.len = 0;
                for (k, v) in entries {
                    self.insert_add(space, k, v);
                }
                continue;
            }
            assert!(
                self.resizable,
                "right-sized hopscotch table overflowed its neighborhood"
            );
            self.grow(space);
        }
    }

    fn get_max<R: LoadRecorder>(&self, space: &mut TracedSpace<R>) -> Option<(u64, u64)> {
        let mut best: Option<(u64, u64)> = None;
        // Full-table strided scan over the active window, including
        // empty slots (the v2 over-allocation cost).
        for j in 0..self.active {
            space.alu(2);
            let (k, v, occ) = *self.slots.get(space, self.sites.scan, j);
            if occ && best.is_none_or(|(_, bv)| v > bv) {
                best = Some((k, v));
            }
        }
        best
    }

    fn len(&self) -> usize {
        self.len
    }

    fn clear(&mut self) {
        for s in self.slots.raw_mut() {
            *s = (0, 0, false);
        }
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{FnRecorder, NullRecorder};
    use memgaze_model::Ip;
    use std::collections::HashMap;

    fn oracle_check<M: AccumMap>(space: &mut TracedSpace<NullRecorder>, map: &mut M) {
        let mut oracle: HashMap<u64, u64> = HashMap::new();
        // Mixed inserts and accumulations.
        for i in 0..200u64 {
            let key = i % 50;
            let delta = i + 1;
            map.insert_add(space, key, delta);
            *oracle.entry(key).or_insert(0) += delta;
        }
        assert_eq!(map.len(), 50);
        let (bk, bv) = map.get_max(space).unwrap();
        let (ok, ov) = oracle
            .iter()
            .max_by_key(|(k, v)| (*v, std::cmp::Reverse(*k)))
            .unwrap();
        assert_eq!(bv, *ov, "max value");
        // Keys may tie on value; check the oracle agrees the key attains
        // the max.
        assert_eq!(oracle[&bk], bv, "winning key {bk} vs oracle {ok}");
        map.clear();
        assert!(map.is_empty());
        assert!(map.get_max(space).is_none());
    }

    #[test]
    fn chained_map_matches_oracle() {
        let mut space = TracedSpace::new(NullRecorder);
        let mut m = ChainedMap::new(&mut space, 64, 1024);
        oracle_check(&mut space, &mut m);
    }

    #[test]
    fn hopscotch_map_matches_oracle() {
        let mut space = TracedSpace::new(NullRecorder);
        let mut m = HopscotchMap::new(&mut space, 64, true);
        oracle_check(&mut space, &mut m);
    }

    #[test]
    fn resizable_hopscotch_grows_under_pressure() {
        let mut space = TracedSpace::new(NullRecorder);
        // Capacity equals the neighborhood: a 33rd distinct key cannot
        // fit and must trigger a rehash.
        let mut m = HopscotchMap::new(&mut space, HOP_RANGE, true);
        for i in 0..40u64 {
            m.insert_add(&mut space, i, 1);
        }
        assert!(m.resize_copies > 0, "v2 under pressure must rehash");
        assert_eq!(m.len(), 40);
        // Values survive the rehash.
        let mut space2 = space;
        for i in 0..40u64 {
            m.insert_add(&mut space2, i, 1);
        }
        assert_eq!(m.len(), 40);
        assert_eq!(m.get_max(&mut space2).unwrap().1, 2);
    }

    #[test]
    fn right_sized_hopscotch_never_resizes() {
        let mut space = TracedSpace::new(NullRecorder);
        let mut m = HopscotchMap::new(&mut space, 256, false);
        for i in 0..100u64 {
            m.insert_add(&mut space, i, 1);
        }
        assert_eq!(m.resize_copies, 0);
        assert_eq!(m.len(), 100);
    }

    #[test]
    #[should_panic(expected = "overflowed")]
    fn right_sized_overflow_panics() {
        let mut space = TracedSpace::new(NullRecorder);
        // Capacity equal to the neighborhood: inserting far more keys
        // than slots must overflow.
        let mut m = HopscotchMap::new(&mut space, HOP_RANGE, false);
        for i in 0..10_000u64 {
            m.insert_add(&mut space, i, 1);
        }
    }

    /// v1 produces irregular instrumented loads, v2 strided ones.
    #[test]
    fn access_classes_differ_between_variants() {
        let mut classes: Vec<(Ip, bool)> = Vec::new();
        let annots;
        {
            let rec = FnRecorder(|ip: Ip, _a: u64, inst: bool, _p: u8| classes.push((ip, inst)));
            let mut space = TracedSpace::new(rec);
            let mut v1 = ChainedMap::new(&mut space, 32, 256);
            let mut v2 = HopscotchMap::new(&mut space, 256, true);
            for i in 0..64u64 {
                v1.insert_add(&mut space, i % 16, 1);
                v2.insert_add(&mut space, i % 16, 1);
            }
            annots = space.annotations();
        }
        let irregular = classes
            .iter()
            .filter(|(ip, _)| annots.class_of(*ip) == memgaze_model::LoadClass::Irregular)
            .count();
        let strided = classes
            .iter()
            .filter(|(ip, _)| annots.class_of(*ip) == memgaze_model::LoadClass::Strided)
            .count();
        assert!(irregular > 0, "v1 must contribute irregular loads");
        assert!(strided > 0, "v2 must contribute strided loads");
    }

    #[test]
    fn hopscotch_scan_covers_whole_table() {
        use std::cell::Cell;
        let loads = Cell::new(0usize);
        let rec = FnRecorder(|_: Ip, _: u64, _: bool, _: u8| loads.set(loads.get() + 1));
        let mut space = TracedSpace::new(rec);
        let mut m = HopscotchMap::new(&mut space, 512, false);
        m.insert_add(&mut space, 1, 1);
        let before = loads.get();
        m.get_max(&mut space);
        // Scan touches all 512 slots regardless of occupancy.
        assert_eq!(loads.get() - before, 512);
    }
}
