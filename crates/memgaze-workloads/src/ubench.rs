//! Microbenchmarks (paper §VI): thin layer over the IR code generator.
//!
//! The microbenchmarks run as generated IR modules through the
//! interpreter (the full binary-instrumentation path); this module names
//! them, builds the standard suite, and offers a parsing helper for the
//! paper's composed names (`str2|irr`, `str1/irr`, …).

pub use memgaze_isa::codegen::{Compose, OptLevel, Pattern, UKernelSpec};

/// A named microbenchmark: the spec plus defaults matching the paper
/// ("repeated 100 times", small arrays that become hotspots).
#[derive(Debug, Clone, PartialEq)]
pub struct MicroBench {
    /// The kernel specification.
    pub spec: UKernelSpec,
}

impl MicroBench {
    /// Default element count (array length) for the suite.
    pub const DEFAULT_ELEMS: u32 = 4096;
    /// Default repetition count (the paper repeats hotspots 100×).
    pub const DEFAULT_REPS: u32 = 100;

    /// Build from a spec.
    pub fn new(spec: UKernelSpec) -> MicroBench {
        MicroBench { spec }
    }

    /// Parse a paper-style name: `str<k>`, `irr`, `a|b`, or `a/b`
    /// (conditional with 50% likelihood).
    pub fn parse(name: &str, elems: u32, reps: u32, opt: OptLevel) -> Option<MicroBench> {
        fn prim(s: &str) -> Option<Pattern> {
            if s == "irr" {
                Some(Pattern::Irregular)
            } else if let Some(step) = s.strip_prefix("str") {
                step.parse::<u32>()
                    .ok()
                    .filter(|&k| k > 0)
                    .map(Pattern::strided)
            } else {
                None
            }
        }
        let compose = if let Some((a, b)) = name.split_once('/') {
            Compose::Conditional {
                first: prim(a)?,
                second: prim(b)?,
                likelihood: 50,
            }
        } else if name.contains('|') {
            let ps: Option<Vec<Pattern>> = name.split('|').map(prim).collect();
            Compose::Serial(ps?)
        } else {
            Compose::Single(prim(name)?)
        };
        Some(MicroBench {
            spec: UKernelSpec {
                compose,
                elems,
                reps,
                opt,
            },
        })
    }

    /// Benchmark name ("str2|irr-O3").
    pub fn name(&self) -> String {
        self.spec.name()
    }

    /// Generate the IR module.
    pub fn module(&self) -> memgaze_isa::LoadModule {
        memgaze_isa::codegen::generate(&self.spec)
    }
}

/// The standard evaluation suite at the given optimization level.
pub fn suite(opt: OptLevel) -> Vec<MicroBench> {
    memgaze_isa::codegen::standard_suite(opt, MicroBench::DEFAULT_ELEMS, MicroBench::DEFAULT_REPS)
        .into_iter()
        .map(MicroBench::new)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_names() {
        for name in ["str1", "str8", "irr", "str2|irr", "str1/irr", "str4|str1"] {
            let mb = MicroBench::parse(name, 128, 2, OptLevel::O3).expect(name);
            assert_eq!(mb.name(), format!("{name}-O3"));
        }
        assert!(MicroBench::parse("bogus", 128, 2, OptLevel::O0).is_none());
        assert!(MicroBench::parse("str0", 128, 2, OptLevel::O0).is_none());
        assert!(MicroBench::parse("strX|irr", 128, 2, OptLevel::O0).is_none());
    }

    #[test]
    fn suite_is_nonempty_and_generates() {
        let s = suite(OptLevel::O3);
        assert!(s.len() >= 6);
        for mb in &s {
            let m = mb.module();
            assert!(m.find_proc("kernel").is_some());
            assert!(m.find_proc("main").is_some());
        }
    }
}
