//! Darknet inference kernels: `gemm` and `im2col` (paper §VII-B).
//!
//! Darknet lowers each convolution to `im2col` (unrolling input patches
//! into a column matrix) followed by `gemm`:
//! `C(M×N) += A(M×K) · B(K×N)`, where `A` holds the layer's filters, `B`
//! the unrolled input, and `N` shrinks through the network as features
//! are synthesized — the paper's Table VIII ties the over-time behaviour
//! of `ΔF` and `D` to the evolving `N` and `K`. All gemm accesses are
//! strided (`F_str% = 100`, Table VI).
//!
//! Layer geometries follow AlexNet and ResNet-152 shapes scaled down by a
//! constant factor so runs stay tractable; relative layer-to-layer trends
//! (AlexNet's rapidly falling `N`, ResNet's long uniform conv stacks) are
//! preserved.

use crate::containers::TVec;
use crate::space::{LoadRecorder, SiteId, TracedSpace};
use memgaze_model::LoadClass;
use serde::{Deserialize, Serialize};

/// One lowered convolution: gemm dimensions plus the im2col geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerShape {
    /// Output channels (gemm M).
    pub m: usize,
    /// Filter volume (gemm K = in_ch·k·k).
    pub k: usize,
    /// Output spatial size (gemm N = out_h·out_w).
    pub n: usize,
}

/// Which pre-trained network geometry to mimic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Network {
    /// AlexNet: 5 conv layers with rapidly decreasing N, then FC layers.
    AlexNet,
    /// ResNet-152-like: long stacks of uniform 3×3 convolutions.
    ResNet152,
}

impl Network {
    /// Label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Network::AlexNet => "AlexNet",
            Network::ResNet152 => "ResNet152",
        }
    }

    /// The network's layer shapes (scaled ÷8 in each spatial dimension
    /// from the real models).
    pub fn layers(self) -> Vec<LayerShape> {
        match self {
            Network::AlexNet => vec![
                // conv1..conv5: N falls fast (3025→169 real; scaled).
                LayerShape {
                    m: 12,
                    k: 36,
                    n: 378,
                },
                LayerShape {
                    m: 32,
                    k: 75,
                    n: 90,
                },
                LayerShape {
                    m: 48,
                    k: 144,
                    n: 21,
                },
                LayerShape {
                    m: 48,
                    k: 216,
                    n: 21,
                },
                LayerShape {
                    m: 32,
                    k: 216,
                    n: 21,
                },
                // fc6..fc8 as gemv-like (N = 1), scaled like the convs.
                LayerShape {
                    m: 128,
                    k: 288,
                    n: 1,
                },
                LayerShape {
                    m: 128,
                    k: 128,
                    n: 1,
                },
                LayerShape {
                    m: 32,
                    k: 128,
                    n: 1,
                },
            ],
            Network::ResNet152 => {
                let mut layers = Vec::new();
                // Four stages of repeated 3×3 convolutions; channel count
                // doubles as the spatial size halves — K rises slowly, N
                // falls slowly.
                for (reps, ch, spatial) in [
                    (3usize, 16usize, 784usize),
                    (8, 32, 196),
                    (18, 64, 49),
                    (3, 128, 16),
                ] {
                    for _ in 0..reps {
                        layers.push(LayerShape {
                            m: ch,
                            k: ch * 9 / 4,
                            n: spatial,
                        });
                    }
                }
                layers
            }
        }
    }
}

/// Result of an inference run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DarknetResult {
    /// Per-layer output checksums (functional witness).
    pub checksums: Vec<u64>,
    /// Total multiply-accumulate operations.
    pub macs: u64,
}

struct GemmSites {
    a: SiteId,
    b: SiteId,
    c: SiteId,
}

/// `C += A·B` over traced matrices with Darknet's loop order
/// (i over M, k over K, j over N innermost) — giving long-term reuse of
/// `B` that intra-sample reuse distance will not capture (paper §VII-B).
fn gemm<R: LoadRecorder>(
    space: &mut TracedSpace<R>,
    sites: &GemmSites,
    shape: LayerShape,
    a: &TVec<i64>,
    b: &TVec<i64>,
    c: &mut TVec<i64>,
) -> u64 {
    let (m, k, n) = (shape.m, shape.k, shape.n);
    let mut macs = 0u64;
    for i in 0..m {
        for kk in 0..k {
            // A[i][kk] is reused across the whole inner loop: one load.
            let a_v = *a.get(space, sites.a, i * k + kk);
            for j in 0..n {
                let b_v = *b.get(space, sites.b, kk * n + j);
                // C[i][j] += a·b — load + store.
                space.load(sites.c, c.addr(i * n + j));
                space.store(c.addr(i * n + j));
                c.raw_mut()[i * n + j] = c.raw_mut()[i * n + j].wrapping_add(a_v.wrapping_mul(b_v));
                macs += 1;
            }
        }
    }
    macs
}

/// `im2col`: unroll kxk patches of the input into the column matrix `B`.
/// The input reads stride through the image with the patch geometry; the
/// writes fill `B` row-major.
fn im2col<R: LoadRecorder>(
    space: &mut TracedSpace<R>,
    site_in: SiteId,
    input: &TVec<i64>,
    b: &mut TVec<i64>,
    shape: LayerShape,
) {
    let (k, n) = (shape.k, shape.n);
    for kk in 0..k {
        for j in 0..n {
            // Patch gather: stride pattern over the input image.
            let src = (kk * 7 + j * 3) % input.len();
            let v = *input.get(space, site_in, src);
            space.store(b.addr(kk * n + j));
            b.raw_mut()[kk * n + j] = v;
        }
    }
}

/// Run single-image inference through the network's layers.
pub fn run<R: LoadRecorder>(space: &mut TracedSpace<R>, net: Network) -> DarknetResult {
    space.phase("inference");
    let layers = net.layers();
    let gemm_sites = GemmSites {
        a: space.site("gemm", "A", LoadClass::Strided, true, 100),
        b: space.site("gemm", "B", LoadClass::Strided, true, 101),
        c: space.site("gemm", "C", LoadClass::Strided, true, 102),
    };
    let im2col_site = space.site("im2col", "input", LoadClass::Strided, true, 110);

    // The "image": a deterministic input vector.
    let max_in = layers.iter().map(|l| l.k * l.n).max().unwrap_or(1);
    let input: TVec<i64> = TVec::from_vec(
        space,
        "image",
        (0..max_in.max(1024))
            .map(|i| ((i * 31 + 7) % 253) as i64 - 126)
            .collect(),
    );

    let mut checksums = Vec::with_capacity(layers.len());
    let mut macs = 0u64;
    let mut prev_out: Option<TVec<i64>> = None;

    for (li, &shape) in layers.iter().enumerate() {
        // Per-layer matrices; Darknet reuses one big workspace for B —
        // modeled by allocating under a constant label so all layers'
        // matrices share the region labels of Table VII.
        let a: TVec<i64> = TVec::from_vec(
            space,
            "gemm-A",
            (0..shape.m * shape.k)
                .map(|i| ((i * 17 + li) % 31) as i64 - 15)
                .collect(),
        );
        let mut b: TVec<i64> = TVec::new(space, "gemm-B", shape.k * shape.n, 0);
        let mut c: TVec<i64> = TVec::new(space, "gemm-C", shape.m * shape.n, 0);

        let source = prev_out.as_ref().unwrap_or(&input);
        im2col(space, im2col_site, source, &mut b, shape);
        macs += gemm(space, &gemm_sites, shape, &a, &b, &mut c);

        let sum: u64 = c
            .raw()
            .iter()
            .fold(0u64, |acc, &v| acc.wrapping_add(v as u64));
        checksums.push(sum);
        // Activation normalization keeps magnitudes bounded layer over
        // layer (a stand-in for batch-norm/ReLU scaling).
        for v in c.raw_mut() {
            *v = v.rem_euclid(253) - 126;
        }
        prev_out = Some(c);
    }

    DarknetResult { checksums, macs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{FnRecorder, NullRecorder};
    use memgaze_model::Ip;

    #[test]
    fn layer_trends_match_networks() {
        let alex = Network::AlexNet.layers();
        // AlexNet's N decreases very rapidly.
        assert!(alex[0].n > 10 * alex[4].n);
        let res = Network::ResNet152.layers();
        assert!(res.len() > 20, "ResNet stack should be deep");
        // ResNet N decreases gradually across stages.
        assert!(res[0].n > res.last().unwrap().n);
        // ResNet total MACs dwarf AlexNet conv MACs (bigger footprint,
        // Table VI).
        let macs = |ls: &[LayerShape]| -> usize { ls.iter().map(|l| l.m * l.k * l.n).sum() };
        assert!(macs(&res) > macs(&alex[..5]));
    }

    #[test]
    fn inference_is_deterministic_and_counts_macs() {
        let mut s1 = TracedSpace::new(NullRecorder);
        let r1 = run(&mut s1, Network::AlexNet);
        let mut s2 = TracedSpace::new(NullRecorder);
        let r2 = run(&mut s2, Network::AlexNet);
        assert_eq!(r1.checksums, r2.checksums);
        let expect: u64 = Network::AlexNet
            .layers()
            .iter()
            .map(|l| (l.m * l.k * l.n) as u64)
            .sum();
        assert_eq!(r1.macs, expect);
    }

    #[test]
    fn gemm_loads_are_all_strided() {
        let mut seen = Vec::new();
        let annots;
        {
            let rec = FnRecorder(|ip: Ip, _: u64, _: bool, _: u8| seen.push(ip));
            let mut space = TracedSpace::new(rec);
            run(&mut space, Network::AlexNet);
            annots = space.annotations();
        }
        assert!(!seen.is_empty());
        // Every traced load in the run belongs to a strided site
        // (F_str% = 100, Table VI).
        assert!(seen
            .iter()
            .all(|ip| annots.class_of(*ip) == memgaze_model::LoadClass::Strided));
    }

    #[test]
    fn gemm_dominates_accesses() {
        let mut space = TracedSpace::new(NullRecorder);
        run(&mut space, Network::ResNet152);
        let annots = space.annotations();
        let _ = annots;
        let c = space.counters();
        // gemm performs ≥ 2 loads per MAC; im2col is K·N per layer.
        assert!(c.loads > 2 * 1_000_000, "loads = {}", c.loads);
        assert!(c.stores > 0);
    }

    #[test]
    fn resnet_footprint_exceeds_alexnet() {
        // Table VI: ResNet152's gemm footprint (3855M) dwarfs AlexNet's
        // (69M). Compare total matrix bytes allocated.
        let mut sa = TracedSpace::new(NullRecorder);
        run(&mut sa, Network::AlexNet);
        let mut sr = TracedSpace::new(NullRecorder);
        run(&mut sr, Network::ResNet152);
        let bytes = |s: &TracedSpace<NullRecorder>| -> u64 {
            s.allocations()
                .iter()
                .filter(|a| a.label.starts_with("gemm-"))
                .map(|a| a.bytes)
                .sum()
        };
        assert!(bytes(&sr) > bytes(&sa));
    }
}
