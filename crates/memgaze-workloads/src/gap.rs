//! GAP benchmarks: PageRank and Connected Components (paper §VII-C).
//!
//! * `pr` — Gauss–Seidel PageRank: score updates are applied
//!   *immediately*, giving better reuse of the `o-score` object and fewer
//!   iterations.
//! * `pr-spmv` — Jacobi-style PageRank: contributions are saved to a
//!   separate array until the next iteration.
//! * `cc` — Afforest: neighbor sampling over the first `K` edges, then
//!   finalization that skips the largest intermediate component; more
//!   accesses but better locality structure.
//! * `cc-sv` — Shiloach–Vishkin: repeated hook/compress sweeps over every
//!   edge until quiescent.

use crate::containers::TVec;
use crate::graph::{Graph, GraphKind};
use crate::space::{LoadRecorder, TracedSpace};
use memgaze_model::LoadClass;
use serde::{Deserialize, Serialize};

/// Which GAP kernel to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GapKernel {
    /// Gauss–Seidel PageRank.
    Pr,
    /// Jacobi (SpMV-style) PageRank.
    PrSpmv,
    /// Afforest connected components.
    Cc,
    /// Shiloach–Vishkin connected components.
    CcSv,
}

impl GapKernel {
    /// Benchmark label ("pr", "pr-spmv", "cc", "cc-sv").
    pub fn label(self) -> &'static str {
        match self {
            GapKernel::Pr => "pr",
            GapKernel::PrSpmv => "pr-spmv",
            GapKernel::Cc => "cc",
            GapKernel::CcSv => "cc-sv",
        }
    }
}

/// GAP configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GapConfig {
    /// Graph scale (the paper uses 2²²; scaled down by default).
    pub scale: u32,
    /// Average degree (the paper's graphs have 16 edges/vertex).
    pub degree: usize,
    /// Kernel to run.
    pub kernel: GapKernel,
    /// PageRank iteration cap.
    pub max_iters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GapConfig {
    fn default() -> Self {
        GapConfig {
            scale: 11,
            degree: 8,
            kernel: GapKernel::Pr,
            max_iters: 12,
            seed: 0x6a9,
        }
    }
}

/// Result of a GAP run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GapResult {
    /// Iterations executed.
    pub iterations: usize,
    /// PageRank: final scores (scaled ×10⁶ integers); CC: component ids.
    pub values: Vec<u64>,
    /// Abstract work cost (for run-time comparisons; Table IX's Time).
    pub abstract_cost: u64,
}

const COST_IRREGULAR: u64 = 12;
const COST_STRIDED: u64 = 1;

/// Fixed-point scale for PageRank scores.
const FXP: u64 = 1 << 20;

/// Run the configured kernel: graph-generation phase, then the algorithm
/// phase ("rank" or "cc").
pub fn run<R: LoadRecorder>(space: &mut TracedSpace<R>, cfg: &GapConfig) -> GapResult {
    space.phase("graphgen");
    let g = Graph::generate(space, GraphKind::Rmat, cfg.scale, cfg.degree, cfg.seed);
    match cfg.kernel {
        GapKernel::Pr => pagerank(space, &g, cfg, false),
        GapKernel::PrSpmv => pagerank(space, &g, cfg, true),
        GapKernel::Cc => afforest(space, &g),
        GapKernel::CcSv => shiloach_vishkin(space, &g),
    }
}

/// PageRank over the traced graph. `jacobi` selects pr-spmv.
fn pagerank<R: LoadRecorder>(
    space: &mut TracedSpace<R>,
    g: &Graph,
    cfg: &GapConfig,
    jacobi: bool,
) -> GapResult {
    space.phase("rank");
    let n = g.n;
    let score_site = space.site("pagerank", "o-score", LoadClass::Irregular, true, 70);
    let out_site = space.site("pagerank", "outgoing", LoadClass::Strided, true, 71);

    let mut scores: TVec<u64> = TVec::new(space, "o-score", n, FXP / n as u64);
    // Jacobi keeps a second array of next-iteration scores.
    let mut next: Option<TVec<u64>> = jacobi.then(|| TVec::new(space, "o-score-next", n, 0));
    let degrees: Vec<u64> = (0..n).map(|u| g.degree(u).max(1) as u64).collect();

    let damping_num = 85u64;
    let damping_den = 100u64;
    let base = (FXP / n as u64) * (damping_den - damping_num) / damping_den;

    let mut iterations = 0;
    let mut abstract_cost = 0u64;
    // Jacobi converges slower: it runs the full iteration budget, while
    // Gauss–Seidel stops at ~2/3 of it (modeling "pr requires fewer total
    // iterations").
    let iters = if jacobi {
        cfg.max_iters
    } else {
        (cfg.max_iters * 2).div_ceil(3)
    };

    for _ in 0..iters {
        iterations += 1;
        for u in 0..n {
            let (lo, hi) = g.edge_range(space, u);
            let mut sum = 0u64;
            for e in lo..hi {
                let v = g.target(space, e) as usize; // strided
                                                     // Pull the neighbor's current score — irregular gather.
                let sv = *scores.get(space, score_site, v);
                sum += sv / degrees[v];
                space.alu(8); // divide + accumulate + loop control
                abstract_cost += COST_IRREGULAR + COST_STRIDED;
            }
            let new_score = base + sum * damping_num / damping_den;
            space.load(out_site, scores.addr(u));
            match &mut next {
                Some(nx) => nx.set(space, u, new_score), // saved for next iter
                None => scores.set(space, u, new_score), // immediate update
            }
            abstract_cost += COST_STRIDED;
        }
        if let Some(nx) = &mut next {
            // Swap in the next-iteration scores (strided copy).
            for u in 0..n {
                let v = *nx.get(space, out_site, u);
                scores.set(space, u, v);
                abstract_cost += 2 * COST_STRIDED;
            }
        }
    }

    GapResult {
        iterations,
        values: scores.raw().to_vec(),
        abstract_cost,
    }
}

/// Union-find parent array with traced find/compress.
struct Components {
    comp: TVec<u32>,
    site: crate::space::SiteId,
}

impl Components {
    fn find<R: LoadRecorder>(&mut self, space: &mut TracedSpace<R>, mut x: usize) -> usize {
        // Pointer-chasing find with path halving — irregular loads.
        loop {
            space.alu(4); // compare + halve
            let p = *self.comp.get(space, self.site, x) as usize;
            if p == x {
                return x;
            }
            let gp = *self.comp.get(space, self.site, p) as usize;
            if gp == p {
                return p;
            }
            self.comp.set(space, x, gp as u32);
            x = gp;
        }
    }

    fn link<R: LoadRecorder>(&mut self, space: &mut TracedSpace<R>, u: usize, v: usize) -> bool {
        let ru = self.find(space, u);
        let rv = self.find(space, v);
        if ru == rv {
            return false;
        }
        let (hi, lo) = if ru < rv { (rv, ru) } else { (ru, rv) };
        self.comp.set(space, hi, lo as u32);
        true
    }
}

/// Afforest: subgraph-sampled link phase, then finalize skipping the
/// largest component.
fn afforest<R: LoadRecorder>(space: &mut TracedSpace<R>, g: &Graph) -> GapResult {
    space.phase("cc");
    let n = g.n;
    let site = space.site("afforest", "component", LoadClass::Irregular, true, 80);
    let mut c = Components {
        comp: TVec::from_vec(space, "cc", (0..n as u32).collect()),
        site,
    };
    let mut abstract_cost = 0u64;

    // Phase 1: link only the first K neighbors of each vertex (subgraph
    // sampling).
    const K: usize = 2;
    for u in 0..n {
        let (lo, hi) = g.edge_range(space, u);
        for e in lo..hi.min(lo + K) {
            let v = g.target(space, e) as usize;
            c.link(space, u, v);
            abstract_cost += COST_IRREGULAR;
        }
    }

    // Compress and identify the most frequent component.
    let mut freq = vec![0u32; n];
    for u in 0..n {
        let r = c.find(space, u);
        freq[r] += 1;
        abstract_cost += COST_IRREGULAR / 2;
    }
    let biggest = freq
        .iter()
        .enumerate()
        .max_by_key(|(_, f)| **f)
        .map(|(i, _)| i)
        .unwrap_or(0);

    // Phase 2: finalize — vertices already in the largest component skip
    // their remaining edges entirely.
    for u in 0..n {
        if c.find(space, u) == biggest {
            continue;
        }
        let (lo, hi) = g.edge_range(space, u);
        for e in (lo + K.min(hi - lo))..hi {
            let v = g.target(space, e) as usize;
            c.link(space, u, v);
            abstract_cost += COST_IRREGULAR;
        }
    }

    // Final flatten.
    let values: Vec<u64> = (0..n).map(|u| c.find(space, u) as u64).collect();
    GapResult {
        iterations: 2,
        values,
        abstract_cost,
    }
}

/// Shiloach–Vishkin: full-edge hook + pointer-jump sweeps to a fixpoint.
fn shiloach_vishkin<R: LoadRecorder>(space: &mut TracedSpace<R>, g: &Graph) -> GapResult {
    space.phase("cc");
    let n = g.n;
    let site = space.site(
        "shiloach-vishkin",
        "component",
        LoadClass::Irregular,
        true,
        90,
    );
    let mut comp: TVec<u32> = TVec::from_vec(space, "cc", (0..n as u32).collect());
    let mut abstract_cost = 0u64;
    let mut iterations = 0usize;

    loop {
        iterations += 1;
        let mut changed = false;
        // Hook: for every edge, point the larger root at the smaller.
        for u in 0..n {
            let (lo, hi) = g.edge_range(space, u);
            for e in lo..hi {
                let v = g.target(space, e) as usize;
                let cu = *comp.get(space, site, u) as usize;
                let cv = *comp.get(space, site, v) as usize;
                space.alu(6);
                abstract_cost += 2 * COST_IRREGULAR;
                if cv < cu && cu == *comp.get(space, site, cu) as usize {
                    comp.set(space, cu, cv as u32);
                    changed = true;
                }
            }
        }
        // Compress: pointer jumping.
        for u in 0..n {
            let cu = *comp.get(space, site, u) as usize;
            let ccu = *comp.get(space, site, cu);
            abstract_cost += 2 * COST_IRREGULAR;
            if ccu != comp.raw()[u] {
                comp.set(space, u, ccu);
            }
        }
        if !changed {
            break;
        }
        if iterations > 64 {
            break; // safety net
        }
    }

    let values: Vec<u64> = comp.raw().iter().map(|&c| c as u64).collect();
    GapResult {
        iterations,
        values,
        abstract_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::NullRecorder;

    fn cfg(kernel: GapKernel) -> GapConfig {
        GapConfig {
            scale: 8,
            degree: 6,
            kernel,
            max_iters: 9,
            seed: 5,
        }
    }

    /// Untraced reference CC via BFS.
    fn reference_components(g: &Graph) -> Vec<usize> {
        let n = g.n;
        let mut comp = vec![usize::MAX; n];
        let mut next = 0;
        for s in 0..n {
            if comp[s] != usize::MAX {
                continue;
            }
            let id = next;
            next += 1;
            let mut stack = vec![s];
            comp[s] = id;
            while let Some(u) = stack.pop() {
                let lo = g.offsets.raw()[u] as usize;
                let hi = g.offsets.raw()[u + 1] as usize;
                for e in lo..hi {
                    let v = g.targets.raw()[e] as usize;
                    if comp[v] == usize::MAX {
                        comp[v] = id;
                        stack.push(v);
                    }
                }
            }
        }
        comp
    }

    fn partitions_equal(a: &[u64], b: &[usize]) -> bool {
        use std::collections::HashMap;
        let mut map: HashMap<(u64, usize), ()> = HashMap::new();
        let mut fwd: HashMap<u64, usize> = HashMap::new();
        let mut bwd: HashMap<usize, u64> = HashMap::new();
        for (x, y) in a.iter().zip(b) {
            map.insert((*x, *y), ());
            if let Some(prev) = fwd.insert(*x, *y) {
                if prev != *y {
                    return false;
                }
            }
            if let Some(prev) = bwd.insert(*y, *x) {
                if prev != *x {
                    return false;
                }
            }
        }
        true
    }

    #[test]
    fn both_cc_kernels_agree_with_bfs() {
        for kernel in [GapKernel::Cc, GapKernel::CcSv] {
            let mut space = TracedSpace::new(NullRecorder);
            let c = cfg(kernel);
            let g = Graph::generate(&mut space, GraphKind::Rmat, c.scale, c.degree, c.seed);
            let reference = reference_components(&g);
            let result = match kernel {
                GapKernel::Cc => afforest(&mut space, &g),
                GapKernel::CcSv => shiloach_vishkin(&mut space, &g),
                _ => unreachable!(),
            };
            assert!(
                partitions_equal(&result.values, &reference),
                "{} disagrees with BFS",
                kernel.label()
            );
        }
    }

    #[test]
    fn pagerank_variants_converge_to_same_ranking() {
        let mut s1 = TracedSpace::new(NullRecorder);
        let r1 = run(&mut s1, &cfg(GapKernel::Pr));
        let mut s2 = TracedSpace::new(NullRecorder);
        let r2 = run(&mut s2, &cfg(GapKernel::PrSpmv));
        // Scores need not match exactly (different iteration structure),
        // but the top-10 vertices should largely agree.
        let top = |v: &[u64]| {
            let mut idx: Vec<usize> = (0..v.len()).collect();
            idx.sort_by_key(|&i| std::cmp::Reverse(v[i]));
            idx.truncate(10);
            idx
        };
        let t1 = top(&r1.values);
        let t2 = top(&r2.values);
        let overlap = t1.iter().filter(|i| t2.contains(i)).count();
        assert!(overlap >= 7, "top-10 overlap only {overlap}");
        // Gauss–Seidel takes fewer iterations.
        assert!(r1.iterations < r2.iterations);
    }

    #[test]
    fn pr_scores_sum_to_about_one() {
        let mut space = TracedSpace::new(NullRecorder);
        let r = run(&mut space, &cfg(GapKernel::Pr));
        let sum: u64 = r.values.iter().sum();
        let one = FXP as f64;
        assert!(
            (sum as f64 - one).abs() / one < 0.2,
            "score mass {} vs {}",
            sum,
            FXP
        );
    }

    #[test]
    fn cc_does_more_accesses_but_costs_less_time_than_sv() {
        // Paper Table IX: cc has more accesses (A) yet runs 2.7 s vs
        // 45.5 s for cc-sv.
        let mut sc = TracedSpace::new(NullRecorder);
        let rc = run(&mut sc, &cfg(GapKernel::Cc));
        let mut ss = TracedSpace::new(NullRecorder);
        let rs = run(&mut ss, &cfg(GapKernel::CcSv));
        assert!(
            rs.abstract_cost > rc.abstract_cost,
            "cc-sv must cost more: {} vs {}",
            rs.abstract_cost,
            rc.abstract_cost
        );
        assert!(rs.iterations > rc.iterations);
    }

    #[test]
    fn phases_recorded_for_fig7() {
        let mut space = TracedSpace::new(NullRecorder);
        run(&mut space, &cfg(GapKernel::Pr));
        let names: Vec<&str> = space.phases().iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["main", "graphgen", "rank"]);
        assert!(space.phases()[1].counters.loads > 0);
        assert!(space.phases()[2].counters.loads > 0);
    }
}
