//! Traced workloads for MemGaze's evaluation (paper §VI–§VII).
//!
//! * [`space`] — the simulated address space: allocator, access-site
//!   registry (static load classes, annotations, symbols), per-phase
//!   execution counters;
//! * [`containers`] — traced vectors over the simulated space;
//! * [`hashes`] — the miniVite `map` variants (chained vs. hopscotch);
//! * [`graph`] — CSR graphs with uniform and RMAT generators;
//! * [`ubench`] — the microbenchmark suite (IR-generated, `str`/`irr`
//!   compositions);
//! * [`minivite`] — Louvain community detection with map variants
//!   v1/v2/v3;
//! * [`gap`] — GAP PageRank (`pr`, `pr-spmv`) and Connected Components
//!   (`cc` Afforest, `cc-sv` Shiloach–Vishkin);
//! * [`darknet`] — `gemm`/`im2col` inference with AlexNet and
//!   ResNet-152 geometries.

pub mod containers;
pub mod darknet;
pub mod gap;
pub mod graph;
pub mod hashes;
pub mod minivite;
pub mod space;
pub mod ubench;

pub use containers::TVec;
pub use space::{
    Allocation, Counters, FnRecorder, LoadRecorder, NullRecorder, Phase, Site, SiteId, TracedSpace,
};
