//! Graphs in CSR form plus synthetic generators.
//!
//! The paper's graph benchmarks run on generated graphs (GAP uses a
//! Kronecker graph of 2²² vertices and 64 M edges; miniVite generates its
//! input too). We provide a uniform (Erdős–Rényi-style) generator and an
//! RMAT/Kronecker generator with the usual (0.57, 0.19, 0.19, 0.05)
//! partition probabilities, scaled down by default so full-trace
//! validation baselines stay tractable.

use crate::containers::TVec;
use crate::space::{LoadRecorder, SiteId, TracedSpace};
use memgaze_model::LoadClass;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// An undirected graph in CSR form, traced.
pub struct Graph {
    /// Number of vertices.
    pub n: usize,
    /// Offsets into `targets` (n+1 entries).
    pub offsets: TVec<u64>,
    /// Flattened adjacency lists.
    pub targets: TVec<u32>,
    /// Per-edge weights, parallel to `targets`.
    pub weights: TVec<u32>,
    sites: GraphSites,
}

struct GraphSites {
    offset: SiteId,
    target: SiteId,
    weight: SiteId,
}

/// Graph generator family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphKind {
    /// Uniformly random endpoints.
    Uniform,
    /// RMAT/Kronecker with skewed degree distribution.
    Rmat,
}

impl Graph {
    /// Generate a graph with `2^scale` vertices and `degree·2^scale`
    /// undirected edges, building it through the traced space (the
    /// paper's distinct "graph generation" phase).
    pub fn generate<R: LoadRecorder>(
        space: &mut TracedSpace<R>,
        kind: GraphKind,
        scale: u32,
        degree: usize,
        seed: u64,
    ) -> Graph {
        let n = 1usize << scale;
        let m = n * degree;
        let mut rng = SmallRng::seed_from_u64(seed);

        // Edge list.
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(m);
        for _ in 0..m {
            let (u, v) = match kind {
                GraphKind::Uniform => (rng.gen_range(0..n) as u32, rng.gen_range(0..n) as u32),
                GraphKind::Rmat => rmat_edge(&mut rng, scale),
            };
            edges.push((u, v));
        }

        // Degree count + prefix sum (both directions: undirected).
        let mut deg = vec![0u64; n + 1];
        for &(u, v) in &edges {
            deg[u as usize + 1] += 1;
            deg[v as usize + 1] += 1;
        }
        for i in 1..=n {
            deg[i] += deg[i - 1];
        }
        let offsets_raw = deg.clone();
        let total = offsets_raw[n] as usize;
        let mut targets_raw = vec![0u32; total];
        let mut weights_raw = vec![0u32; total];
        let mut cursor = offsets_raw.clone();
        for &(u, v) in &edges {
            let w = rng.gen_range(1..16u32);
            let cu = cursor[u as usize] as usize;
            targets_raw[cu] = v;
            weights_raw[cu] = w;
            cursor[u as usize] += 1;
            let cv = cursor[v as usize] as usize;
            targets_raw[cv] = u;
            weights_raw[cv] = w;
            cursor[v as usize] += 1;
        }

        let sites = GraphSites {
            offset: space.site("graph", "offset", LoadClass::Strided, true, 50),
            target: space.site("graph", "target", LoadClass::Strided, true, 51),
            weight: space.site("graph", "weight", LoadClass::Strided, true, 52),
        };
        // Touch the CSR while building it — the generation phase's
        // memory traffic (one pass of strided stores + loads).
        let offsets = TVec::from_vec(space, "csr-offsets", offsets_raw);
        let targets = TVec::from_vec(space, "csr-targets", targets_raw);
        let weights = TVec::from_vec(space, "csr-weights", weights_raw);
        for i in 0..n {
            space.load(sites.offset, offsets.addr(i));
            space.store(offsets.addr(i));
        }
        for i in 0..total {
            space.load(sites.target, targets.addr(i));
            space.store(targets.addr(i));
            // Edge generation does real compute (RNG, partitioning,
            // prefix sums): charge ALU work so the phase's ptwrite
            // density matches generator-like code.
            space.alu(24);
        }

        Graph {
            n,
            offsets,
            targets,
            weights,
            sites,
        }
    }

    /// Number of directed edges (2× the undirected count).
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Untraced degree of `u`.
    pub fn degree(&self, u: usize) -> usize {
        (self.offsets.raw()[u + 1] - self.offsets.raw()[u]) as usize
    }

    /// Traced adjacency access: the half-open range of `u`'s edges.
    /// Two strided offset loads (`offsets[u]`, `offsets[u+1]`).
    pub fn edge_range<R: LoadRecorder>(
        &self,
        space: &mut TracedSpace<R>,
        u: usize,
    ) -> (usize, usize) {
        let lo = *self.offsets.get(space, self.sites.offset, u);
        let hi = *self.offsets.get(space, self.sites.offset, u + 1);
        (lo as usize, hi as usize)
    }

    /// Traced edge target load (strided over the adjacency list).
    pub fn target<R: LoadRecorder>(&self, space: &mut TracedSpace<R>, e: usize) -> u32 {
        *self.targets.get(space, self.sites.target, e)
    }

    /// Traced edge weight load.
    pub fn weight<R: LoadRecorder>(&self, space: &mut TracedSpace<R>, e: usize) -> u32 {
        *self.weights.get(space, self.sites.weight, e)
    }
}

/// One RMAT edge: recursively descend the adjacency-matrix quadrants.
fn rmat_edge(rng: &mut SmallRng, scale: u32) -> (u32, u32) {
    let (a, b, c) = (0.57, 0.19, 0.19);
    let mut u = 0u32;
    let mut v = 0u32;
    for _ in 0..scale {
        u <<= 1;
        v <<= 1;
        let r: f64 = rng.gen();
        if r < a {
            // top-left
        } else if r < a + b {
            v |= 1;
        } else if r < a + b + c {
            u |= 1;
        } else {
            u |= 1;
            v |= 1;
        }
    }
    (u, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::NullRecorder;

    #[test]
    fn csr_structure_consistent() {
        let mut space = TracedSpace::new(NullRecorder);
        let g = Graph::generate(&mut space, GraphKind::Uniform, 8, 4, 1);
        assert_eq!(g.n, 256);
        assert_eq!(g.num_edges(), 2 * 256 * 4);
        assert_eq!(g.offsets.raw()[0], 0);
        assert_eq!(*g.offsets.raw().last().unwrap() as usize, g.num_edges());
        // Offsets are monotone; targets are in range.
        assert!(g.offsets.raw().windows(2).all(|w| w[0] <= w[1]));
        assert!(g.targets.raw().iter().all(|&t| (t as usize) < g.n));
        // Degree sum matches.
        let total: usize = (0..g.n).map(|u| g.degree(u)).sum();
        assert_eq!(total, g.num_edges());
    }

    #[test]
    fn rmat_is_skewed() {
        let mut space = TracedSpace::new(NullRecorder);
        let g = Graph::generate(&mut space, GraphKind::Rmat, 10, 8, 7);
        let mut degs: Vec<usize> = (0..g.n).map(|u| g.degree(u)).collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        // Top 1% of vertices should hold far more than 1% of edges.
        let top: usize = degs[..g.n / 100].iter().sum();
        assert!(
            top as f64 > 0.10 * g.num_edges() as f64,
            "top-1% holds only {top} of {}",
            g.num_edges()
        );
        // Uniform graphs are not skewed like that.
        let gu = Graph::generate(&mut space, GraphKind::Uniform, 10, 8, 7);
        let mut du: Vec<usize> = (0..gu.n).map(|u| gu.degree(u)).collect();
        du.sort_unstable_by(|a, b| b.cmp(a));
        let top_u: usize = du[..gu.n / 100].iter().sum();
        assert!(top > 2 * top_u, "rmat {top} vs uniform {top_u}");
    }

    #[test]
    fn traced_traversal_emits_loads() {
        let mut space = TracedSpace::new(NullRecorder);
        let g = Graph::generate(&mut space, GraphKind::Uniform, 6, 4, 3);
        let before = space.counters().loads;
        let (lo, hi) = g.edge_range(&mut space, 0);
        for e in lo..hi {
            let t = g.target(&mut space, e);
            let w = g.weight(&mut space, e);
            assert!((t as usize) < g.n);
            assert!(w >= 1);
        }
        let after = space.counters().loads;
        assert_eq!(after - before, 2 + 2 * (hi - lo) as u64);
    }

    #[test]
    fn generation_is_deterministic() {
        let mut s1 = TracedSpace::new(NullRecorder);
        let mut s2 = TracedSpace::new(NullRecorder);
        let g1 = Graph::generate(&mut s1, GraphKind::Rmat, 8, 4, 42);
        let g2 = Graph::generate(&mut s2, GraphKind::Rmat, 8, 4, 42);
        assert_eq!(g1.targets.raw(), g2.targets.raw());
        assert_eq!(g1.offsets.raw(), g2.offsets.raw());
    }
}
