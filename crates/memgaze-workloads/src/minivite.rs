//! miniVite: Louvain community detection (paper §VII-A).
//!
//! The hotspot inspects the neighboring communities of each vertex:
//! `buildMap` accumulates, per neighbor community, the total edge weight
//! into a `map` object; `getMax` selects the best community; the vertex
//! moves if modularity improves. The paper's three variants differ only
//! in the `map` implementation:
//!
//! * **v1** — C++ `unordered_map` (chained): irregular accesses;
//! * **v2** — TSL hopscotch with the default table size: strided
//!   accesses, but extra traffic from resizing and over-allocation;
//! * **v3** — hopscotch right-sized per vertex (tables sized to the
//!   vertex degree): strided accesses without the v2 overheads.

use crate::containers::TVec;
use crate::graph::{Graph, GraphKind};
use crate::hashes::{AccumMap, ChainedMap, HopscotchMap, HOP_RANGE};
use crate::space::{LoadRecorder, SiteId, TracedSpace};
use memgaze_model::LoadClass;
use serde::{Deserialize, Serialize};

/// The paper's three map variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MapVariant {
    /// Chained hash table (`std::unordered_map`).
    V1,
    /// Hopscotch, default-sized, resizable.
    V2,
    /// Hopscotch, right-sized per vertex.
    V3,
}

impl MapVariant {
    /// Variant label ("v1"…).
    pub fn label(self) -> &'static str {
        match self {
            MapVariant::V1 => "v1",
            MapVariant::V2 => "v2",
            MapVariant::V3 => "v3",
        }
    }
}

/// miniVite configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MiniViteConfig {
    /// Graph scale (2^scale vertices).
    pub scale: u32,
    /// Average degree.
    pub degree: usize,
    /// Louvain iterations of the modularity phase.
    pub iterations: usize,
    /// Map implementation.
    pub variant: MapVariant,
    /// RNG seed for graph generation.
    pub seed: u64,
    /// Default hopscotch capacity for v2.
    pub v2_default_capacity: usize,
}

impl Default for MiniViteConfig {
    fn default() -> Self {
        MiniViteConfig {
            scale: 10,
            degree: 8,
            iterations: 2,
            variant: MapVariant::V1,
            seed: 0x1111,
            v2_default_capacity: 64,
        }
    }
}

/// Result of a miniVite run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MiniViteResult {
    /// Final community assignment per vertex.
    pub communities: Vec<u32>,
    /// Vertices that changed community, per iteration.
    pub moves: Vec<usize>,
    /// Total simulated "abstract work" (for run-time comparison between
    /// variants; v1's pointer chases cost more than v2/v3's strided
    /// probes).
    pub abstract_cost: u64,
}

/// Per-access abstract cost by pattern, modeling that irregular accesses
/// miss caches and strided ones prefetch (used for the paper's run-time
/// column, Table IV).
const COST_IRREGULAR: u64 = 12;
const COST_STRIDED: u64 = 1;

struct Vertices {
    community: TVec<u32>,
    comm_site: SiteId,
    degree_w: TVec<u64>,
}

/// Run miniVite: graph generation phase + modularity phase.
pub fn run<R: LoadRecorder>(space: &mut TracedSpace<R>, cfg: &MiniViteConfig) -> MiniViteResult {
    space.phase("graphgen");
    let g = Graph::generate(space, GraphKind::Rmat, cfg.scale, cfg.degree, cfg.seed);

    space.phase("modularity");
    let n = g.n;
    let comm_site = space.site("buildMap", "community", LoadClass::Irregular, true, 60);
    let edge_w_site = space.site("buildMap", "edge-weight", LoadClass::Strided, true, 61);
    let mut verts = Vertices {
        community: TVec::from_vec(space, "communities", (0..n as u32).collect()),
        comm_site,
        degree_w: TVec::new(space, "degree-weights", n, 0u64),
    };
    // Weighted degrees (one strided pass).
    for u in 0..n {
        let (lo, hi) = g.edge_range(space, u);
        let mut sum = 0u64;
        for e in lo..hi {
            sum += g.weight(space, e) as u64;
        }
        verts.degree_w.set(space, u, sum);
    }

    // The map object. v1/v2 reuse one instance across vertices (the
    // allocator reuses freed memory); v3 right-sizes per vertex, which we
    // model by clearing a table sized to the maximum degree but scanning
    // only the per-vertex capacity.
    let max_degree = (0..n).map(|u| g.degree(u)).max().unwrap_or(1);
    enum MapImpl {
        V1(ChainedMap),
        V23(HopscotchMap),
    }
    let mut map = match cfg.variant {
        MapVariant::V1 => MapImpl::V1(ChainedMap::new(space, 1 << 7, max_degree + 2)),
        MapVariant::V2 => MapImpl::V23(HopscotchMap::new(space, cfg.v2_default_capacity, true)),
        MapVariant::V3 => MapImpl::V23(HopscotchMap::new(
            space,
            (max_degree + HOP_RANGE).next_power_of_two(),
            false,
        )),
    };

    let mut moves = Vec::with_capacity(cfg.iterations);
    let mut abstract_cost = 0u64;

    for _ in 0..cfg.iterations {
        let mut iter_moves = 0usize;
        for u in 0..n {
            // ---- buildMap: gather neighbor communities.
            let (lo, hi) = g.edge_range(space, u);
            let deg = hi - lo;
            if deg == 0 {
                continue;
            }
            match &mut map {
                MapImpl::V1(m) => m.clear(),
                MapImpl::V23(m) => {
                    m.clear();
                    if cfg.variant == MapVariant::V3 {
                        // Right-size this vertex's table instance to its
                        // degree (paper: "v3 right-sizes each table
                        // instance — there are many").
                        m.set_active_capacity((2 * deg + HOP_RANGE).next_power_of_two());
                    }
                }
            }
            for e in lo..hi {
                let v = g.target(space, e) as usize; // strided
                let w = g.weight(space, e) as u64; // strided
                space.load(edge_w_site, g.weights.addr(e));
                // community[v]: data-dependent gather — irregular.
                let cv = *verts.community.get(space, verts.comm_site, v);
                space.alu(6); // hash + loop control per neighbor
                match &mut map {
                    MapImpl::V1(m) => {
                        m.insert_add(space, cv as u64, w);
                        abstract_cost += COST_IRREGULAR;
                    }
                    MapImpl::V23(m) => {
                        m.insert_add(space, cv as u64, w);
                        abstract_cost += COST_STRIDED;
                    }
                }
            }
            abstract_cost += deg as u64 * COST_IRREGULAR / 4; // community gathers

            // ---- getMax: pick the heaviest neighboring community.
            let best = match &mut map {
                MapImpl::V1(m) => {
                    abstract_cost += m.len() as u64 * COST_IRREGULAR;
                    m.get_max(space)
                }
                MapImpl::V23(m) => {
                    abstract_cost += m.len() as u64 * COST_STRIDED;
                    m.get_max(space)
                }
            };
            if let Some((best_comm, best_w)) = best {
                let cur = verts.community.raw()[u];
                // Move if the best community beats staying (simple
                // positive-gain rule keeps the kernel's access pattern
                // without full modularity bookkeeping).
                let stay_w = match &mut map {
                    MapImpl::V1(m) => {
                        m.insert_add(space, cur as u64, 0);
                        0
                    }
                    MapImpl::V23(m) => {
                        m.insert_add(space, cur as u64, 0);
                        0
                    }
                };
                let _ = stay_w;
                if best_comm != cur as u64 && best_w > 0 {
                    verts.community.set(space, u, best_comm as u32);
                    iter_moves += 1;
                }
            }
        }
        moves.push(iter_moves);
    }

    // v2's resize copies feed the abstract cost (the paper's v2 runtime
    // sits between v1 and v3).
    if let MapImpl::V23(m) = &map {
        abstract_cost += m.resize_copies * 4;
    }

    MiniViteResult {
        communities: verts.community.raw().to_vec(),
        moves,
        abstract_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::NullRecorder;

    fn cfg(variant: MapVariant) -> MiniViteConfig {
        MiniViteConfig {
            scale: 7,
            degree: 6,
            iterations: 2,
            variant,
            seed: 11,
            v2_default_capacity: 64,
        }
    }

    #[test]
    fn all_variants_agree_on_communities() {
        // The map implementations are interchangeable: identical inputs
        // must produce identical community assignments.
        let mut results = Vec::new();
        for v in [MapVariant::V1, MapVariant::V2, MapVariant::V3] {
            let mut space = TracedSpace::new(NullRecorder);
            results.push(run(&mut space, &cfg(v)));
        }
        assert_eq!(results[0].communities, results[1].communities);
        assert_eq!(results[1].communities, results[2].communities);
        assert!(
            results[0].moves[0] > 0,
            "first iteration must move vertices"
        );
    }

    #[test]
    fn communities_coarsen() {
        let mut space = TracedSpace::new(NullRecorder);
        let r = run(&mut space, &cfg(MapVariant::V1));
        let distinct: std::collections::HashSet<u32> = r.communities.iter().copied().collect();
        let n = r.communities.len();
        assert!(
            distinct.len() < n,
            "Louvain must merge some communities: {} of {n}",
            distinct.len()
        );
    }

    #[test]
    fn phases_are_recorded() {
        let mut space = TracedSpace::new(NullRecorder);
        run(&mut space, &cfg(MapVariant::V2));
        let names: Vec<&str> = space.phases().iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["main", "graphgen", "modularity"]);
        let modularity = &space.phases()[2].counters;
        assert!(modularity.loads > 0);
        assert!(modularity.instrumented_loads > 0);
    }

    #[test]
    fn v1_costs_more_than_v3() {
        let mut c1 = TracedSpace::new(NullRecorder);
        let r1 = run(&mut c1, &cfg(MapVariant::V1));
        let mut c3 = TracedSpace::new(NullRecorder);
        let r3 = run(&mut c3, &cfg(MapVariant::V3));
        assert!(
            r1.abstract_cost > r3.abstract_cost,
            "v1 {} must out-cost v3 {}",
            r1.abstract_cost,
            r3.abstract_cost
        );
    }

    #[test]
    fn v2_accesses_exceed_v3() {
        // Paper: "A defect with v2 is that it significantly increases
        // accesses" (resizing copies, over-allocation scans).
        let mut s2 = TracedSpace::new(NullRecorder);
        run(&mut s2, &cfg(MapVariant::V2));
        let mut s3 = TracedSpace::new(NullRecorder);
        run(&mut s3, &cfg(MapVariant::V3));
        let a2 = s2.phases()[2].counters.loads;
        let a3 = s3.phases()[2].counters.loads;
        assert!(a2 > 0 && a3 > 0);
        // v2 resizes from 64 slots up; with right-sizing v3 never pays
        // rehash traffic. (v3 scans a bigger table in getMax, so compare
        // insert-side pressure via resize copies instead when close.)
        assert!(
            a2 as f64 > 0.5 * a3 as f64,
            "sanity: same order of magnitude (a2={a2}, a3={a3})"
        );
    }
}
