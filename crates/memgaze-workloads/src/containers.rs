//! Traced containers: Rust values with simulated addresses.
//!
//! A [`TVec`] keeps its elements in ordinary Rust memory but owns a range
//! of the simulated address space; element reads go through
//! [`TVec::get`], which emits a load at the element's simulated address
//! via a registered site. Writes are counted as stores (MemGaze is
//! load-level, §III-B: "For load-based analysis we can ignore stores").

use crate::space::{LoadRecorder, SiteId, TracedSpace};

/// A traced, fixed-address vector.
#[derive(Debug, Clone)]
pub struct TVec<T> {
    data: Vec<T>,
    base: u64,
    elem_bytes: u64,
}

impl<T: Clone> TVec<T> {
    /// Allocate a traced vector of `len` copies of `init` under `label`.
    pub fn new<R: LoadRecorder>(
        space: &mut TracedSpace<R>,
        label: &str,
        len: usize,
        init: T,
    ) -> TVec<T> {
        let elem_bytes = std::mem::size_of::<T>().max(1) as u64;
        let base = space.alloc(label, len as u64 * elem_bytes);
        TVec {
            data: vec![init; len],
            base,
            elem_bytes,
        }
    }
}

impl<T> TVec<T> {
    /// Build from existing data.
    pub fn from_vec<R: LoadRecorder>(
        space: &mut TracedSpace<R>,
        label: &str,
        data: Vec<T>,
    ) -> TVec<T> {
        let elem_bytes = std::mem::size_of::<T>().max(1) as u64;
        let base = space.alloc(label, data.len() as u64 * elem_bytes);
        TVec {
            data,
            base,
            elem_bytes,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Simulated address of element `i`.
    #[inline]
    pub fn addr(&self, i: usize) -> u64 {
        self.base + i as u64 * self.elem_bytes
    }

    /// Base address of the allocation.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Address range `[base, end)`.
    pub fn range(&self) -> (u64, u64) {
        (
            self.base,
            self.base + self.data.len() as u64 * self.elem_bytes,
        )
    }

    /// Traced read of element `i` through `site`.
    #[inline]
    pub fn get<R: LoadRecorder>(&self, space: &mut TracedSpace<R>, site: SiteId, i: usize) -> &T {
        space.load(site, self.addr(i));
        &self.data[i]
    }

    /// Traced write of element `i` (counted as a store).
    #[inline]
    pub fn set<R: LoadRecorder>(&mut self, space: &mut TracedSpace<R>, i: usize, v: T) {
        space.store(self.addr(i));
        self.data[i] = v;
    }

    /// Traced read-modify-write: one load (traced) plus one store.
    #[inline]
    pub fn update<R: LoadRecorder>(
        &mut self,
        space: &mut TracedSpace<R>,
        site: SiteId,
        i: usize,
        f: impl FnOnce(&mut T),
    ) {
        space.load(site, self.addr(i));
        space.store(self.addr(i));
        f(&mut self.data[i]);
    }

    /// Untraced view of the underlying data (setup/verification only).
    pub fn raw(&self) -> &[T] {
        &self.data
    }

    /// Untraced mutable view (setup only).
    pub fn raw_mut(&mut self) -> &mut [T] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{FnRecorder, NullRecorder};
    use memgaze_model::{Ip, LoadClass};

    #[test]
    fn addresses_are_element_strided() {
        let mut space = TracedSpace::new(NullRecorder);
        let v: TVec<u64> = TVec::new(&mut space, "v", 10, 0);
        assert_eq!(v.addr(3) - v.addr(0), 24);
        assert_eq!(v.range().1 - v.range().0, 80);
        assert_eq!(v.len(), 10);
    }

    #[test]
    fn get_emits_load_at_element_address() {
        let mut addrs = Vec::new();
        {
            let rec = FnRecorder(|_: Ip, a: u64, _: bool, _: u8| addrs.push(a));
            let mut space = TracedSpace::new(rec);
            let site = space.site("f", "x", LoadClass::Strided, true, 1);
            let v: TVec<u32> = TVec::from_vec(&mut space, "v", (0..8u32).collect());
            let sum: u32 = (0..8).map(|i| *v.get(&mut space, site, i)).sum();
            assert_eq!(sum, 28);
        }
        assert_eq!(addrs.len(), 8);
        assert_eq!(addrs[1] - addrs[0], 4); // u32 stride
    }

    #[test]
    fn set_counts_store_not_load() {
        let mut space = TracedSpace::new(NullRecorder);
        let site = space.site("f", "x", LoadClass::Strided, false, 1);
        let mut v: TVec<u64> = TVec::new(&mut space, "v", 4, 0);
        v.set(&mut space, 0, 42);
        v.update(&mut space, site, 0, |x| *x += 1);
        assert_eq!(v.raw()[0], 43);
        let c = space.counters();
        assert_eq!(c.stores, 2);
        assert_eq!(c.loads, 1);
    }
}
