//! Address × time heatmaps (paper Fig. 8).
//!
//! "The heatmaps show the distributions of access frequencies and reuse
//! distances (D), where darker is higher" — a matrix whose rows bin a hot
//! memory region's addresses and whose columns bin logical time; one
//! variant accumulates access counts, the other mean reuse distance.

use crate::par;
use crate::reuse::{self, ReuseAnalysis};
use memgaze_model::{BlockSize, Sample, SampledTrace};
use serde::{Deserialize, Serialize};

/// A dense 2-D accumulation grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Heatmap {
    /// Address bins (rows).
    pub rows: usize,
    /// Time bins (columns).
    pub cols: usize,
    /// Row-major cell values.
    pub data: Vec<f64>,
    /// Address range covered `[lo, hi)`.
    pub addr_range: (u64, u64),
    /// Time range covered `[lo, hi)`.
    pub time_range: (u64, u64),
}

impl Heatmap {
    fn new(rows: usize, cols: usize, addr_range: (u64, u64), time_range: (u64, u64)) -> Heatmap {
        Heatmap {
            rows,
            cols,
            data: vec![0.0; rows * cols],
            addr_range,
            time_range,
        }
    }

    fn bin(&self, addr: u64, time: u64) -> Option<(usize, usize)> {
        let (alo, ahi) = self.addr_range;
        let (tlo, thi) = self.time_range;
        if addr < alo || addr >= ahi || time < tlo || time >= thi {
            return None;
        }
        let r = ((addr - alo) as u128 * self.rows as u128 / (ahi - alo) as u128) as usize;
        let c = ((time - tlo) as u128 * self.cols as u128 / (thi - tlo) as u128) as usize;
        Some((r.min(self.rows - 1), c.min(self.cols - 1)))
    }

    /// Cell value at `(row, col)`.
    pub fn at(&self, row: usize, col: usize) -> f64 {
        self.data[row * self.cols + col]
    }

    /// Maximum cell value (the "darkest" cell).
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(0.0, f64::max)
    }

    /// Sum of all cells.
    pub fn total(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Number of cells above `frac` of the maximum — a compact "dark
    /// band" measure used to compare distributions (paper: "cc has fewer
    /// and smaller dark bands").
    pub fn dark_cells(&self, frac: f64) -> usize {
        let cut = self.max() * frac;
        if cut <= 0.0 {
            return 0;
        }
        self.data.iter().filter(|&&v| v >= cut).count()
    }

    /// Render as a compact ASCII shade map (one char per cell) for
    /// reports.
    pub fn render_ascii(&self) -> String {
        const SHADES: &[u8] = b" .:-=+*#%@";
        let max = self.max();
        let mut s = String::with_capacity(self.rows * (self.cols + 1));
        for r in 0..self.rows {
            for c in 0..self.cols {
                let v = self.at(r, c);
                let idx = if max <= 0.0 {
                    0
                } else {
                    ((v / max) * (SHADES.len() - 1) as f64).round() as usize
                };
                s.push(SHADES[idx.min(SHADES.len() - 1)] as char);
            }
            s.push('\n');
        }
        s
    }
}

/// Build the access-frequency and reuse-distance heatmaps of a region.
///
/// Returns `(access_counts, mean_reuse_distance)` heatmaps with the same
/// shape. Cells of the reuse heatmap with no reuse events are zero.
pub fn region_heatmaps(
    trace: &SampledTrace,
    region: (u64, u64),
    rows: usize,
    cols: usize,
    bs: BlockSize,
) -> (Heatmap, Heatmap) {
    let threads = par::default_threads();
    let analyses = par::par_map(&trace.samples, threads, |s| {
        reuse::analyze_window(&s.accesses, bs)
    });
    region_heatmaps_from(trace, &analyses, region, rows, cols, threads)
}

/// [`region_heatmaps`] over precomputed per-sample reuse analyses
/// (one per sample, in sample order) — lets the analyzer share its
/// cached analyses instead of recomputing them per heatmap.
///
/// Per-sample binning runs in parallel with per-worker partial grids;
/// every cell holds a sum of whole numbers, so the merge is exact and
/// independent of scheduling order.
pub fn region_heatmaps_from(
    trace: &SampledTrace,
    analyses: &[ReuseAnalysis],
    region: (u64, u64),
    rows: usize,
    cols: usize,
    threads: usize,
) -> (Heatmap, Heatmap) {
    assert!(rows > 0 && cols > 0, "heatmap shape must be nonzero");
    assert_eq!(
        analyses.len(),
        trace.samples.len(),
        "one analysis per sample"
    );
    let tlo = trace.accesses().map(|a| a.time).min().unwrap_or(0);
    let thi = trace.accesses().map(|a| a.time).max().unwrap_or(0) + 1;
    let mut acc_map = Heatmap::new(rows, cols, region, (tlo, thi));
    let mut d_sum = Heatmap::new(rows, cols, region, (tlo, thi));
    let mut d_cnt = Heatmap::new(rows, cols, region, (tlo, thi));

    let template = acc_map.clone();
    let cells = rows * cols;
    let pairs: Vec<(&Sample, &ReuseAnalysis)> = trace.samples.iter().zip(analyses).collect();
    let (acc_part, dsum_part, dcnt_part) = par::par_fold(
        &pairs,
        threads,
        || {
            (
                vec![0.0f64; cells],
                vec![0.0f64; cells],
                vec![0.0f64; cells],
            )
        },
        |(acc, dsum, dcnt), &(s, analysis)| {
            for a in &s.accesses {
                if let Some((r, c)) = template.bin(a.addr.raw(), a.time) {
                    acc[r * cols + c] += 1.0;
                }
            }
            for e in &analysis.events {
                let a = &s.accesses[e.pos];
                if let Some((r, c)) = template.bin(a.addr.raw(), a.time) {
                    dsum[r * cols + c] += e.distance as f64;
                    dcnt[r * cols + c] += 1.0;
                }
            }
        },
        |(mut a1, mut s1, mut c1), (a2, s2, c2)| {
            for i in 0..cells {
                a1[i] += a2[i];
                s1[i] += s2[i];
                c1[i] += c2[i];
            }
            (a1, s1, c1)
        },
    );
    acc_map.data = acc_part;
    d_sum.data = dsum_part;
    d_cnt.data = dcnt_part;

    // Convert sums to means.
    for i in 0..d_sum.data.len() {
        if d_cnt.data[i] > 0.0 {
            d_sum.data[i] /= d_cnt.data[i];
        }
    }
    (acc_map, d_sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memgaze_model::{Access, Sample, TraceMeta};

    fn trace() -> SampledTrace {
        let mut t = SampledTrace::new(TraceMeta::new("t", 1000, 8192));
        let mut acc = Vec::new();
        // Phase 1 (t 0..100): hammer block at 0x1000.
        for i in 0..100u64 {
            acc.push(Access::new(0x400u64, 0x1000u64, i));
        }
        // Phase 2 (t 100..200): stream 0x2000..0x2000+100*64.
        for i in 0..100u64 {
            acc.push(Access::new(0x400u64, 0x2000 + i * 64, 100 + i));
        }
        t.push_sample(Sample::new(acc, 200)).unwrap();
        t
    }

    #[test]
    fn access_heatmap_localizes_phases() {
        let t = trace();
        let (acc, _) = region_heatmaps(&t, (0x1000, 0x4000), 4, 2, BlockSize::CACHE_LINE);
        assert_eq!(acc.total(), 200.0);
        // Phase 1: row 0 (0x1000..0x1c00), col 0. All 100 accesses in one
        // cell.
        assert_eq!(acc.at(0, 0), 100.0);
        assert_eq!(acc.at(0, 1), 0.0);
        // Phase 2 lands in later rows, col 1.
        let col1: f64 = (0..4).map(|r| acc.at(r, 1)).sum();
        assert_eq!(col1, 100.0);
    }

    #[test]
    fn reuse_heatmap_mean_distance() {
        let t = trace();
        let (_, d) = region_heatmaps(&t, (0x1000, 0x4000), 4, 2, BlockSize::CACHE_LINE);
        // The hammered block reuses back-to-back: mean D = 0 everywhere,
        // and streaming has no reuse → all zeros.
        assert_eq!(d.max(), 0.0);
    }

    #[test]
    fn dark_cells_measure() {
        let t = trace();
        let (acc, _) = region_heatmaps(&t, (0x1000, 0x4000), 4, 2, BlockSize::CACHE_LINE);
        // Only one cell holds 100 accesses; at 90% of max only it counts.
        assert_eq!(acc.dark_cells(0.9), 1);
        assert!(acc.dark_cells(0.01) >= 2);
    }

    #[test]
    fn out_of_region_accesses_ignored() {
        let t = trace();
        let (acc, _) = region_heatmaps(&t, (0x1000, 0x1400), 2, 2, BlockSize::CACHE_LINE);
        assert_eq!(acc.total(), 100.0); // streaming phase excluded
    }

    #[test]
    fn parallel_binning_matches_single_thread() {
        // Many uneven samples: partial-grid merging must reproduce the
        // single-threaded result exactly (all cell values are integer
        // sums, so no float-order slack is needed).
        let mut t = SampledTrace::new(TraceMeta::new("t", 1000, 8192));
        let mut time = 0u64;
        for s in 0..200u64 {
            let n = 1 + (s * 7) % 90;
            let acc: Vec<Access> = (0..n)
                .map(|i| {
                    let a = Access::new(0x400u64, 0x1000 + ((s * 31 + i * 13) % 512) * 64, time);
                    time += 1;
                    a
                })
                .collect();
            t.push_sample(Sample::new(acc, time)).unwrap();
        }
        let analyses: Vec<_> = t
            .samples
            .iter()
            .map(|s| reuse::analyze_window(&s.accesses, BlockSize::CACHE_LINE))
            .collect();
        let region = (0x1000u64, 0x1000 + 512 * 64);
        let (a1, d1) = region_heatmaps_from(&t, &analyses, region, 8, 16, 1);
        let (a4, d4) = region_heatmaps_from(&t, &analyses, region, 8, 16, 4);
        assert_eq!(a1, a4);
        assert_eq!(d1, d4);
    }

    #[test]
    fn ascii_rendering_shape() {
        let t = trace();
        let (acc, _) = region_heatmaps(&t, (0x1000, 0x4000), 3, 5, BlockSize::CACHE_LINE);
        let s = acc.render_ascii();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().all(|l| l.chars().count() == 5));
        assert!(s.contains('@'), "hottest cell must render dark");
    }
}
