//! The execution interval tree (paper §IV-C1, Fig. 4).
//!
//! Built bottom-up from samples: sample nodes carry *exact* intra-sample
//! metrics; the binary levels above them aggregate consecutive intervals
//! and carry ρ-scaled *estimates*; below each sample, leaf function nodes
//! group access runs from the same function. Zooming descends from the
//! root towards hot intervals (many accesses) with poor reuse (large
//! footprint growth).

use crate::diagnostics::FootprintDiagnostics;
use crate::par;
use crate::reuse;
use memgaze_model::{AuxAnnotations, BlockSize, Sample, SampledTrace, SymbolTable};
use serde::{Deserialize, Serialize};

/// What a tree node represents.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NodeKind {
    /// The whole execution.
    Root,
    /// An aggregate of consecutive samples.
    Inter,
    /// One sample (exact intra-sample metrics).
    Sample,
    /// An intra-sample interval (a half of its parent's accesses) —
    /// "nodes below samples correspond to intra-sample intervals"
    /// (Fig. 4).
    Intra,
    /// An access run within one function, inside a sample.
    Function {
        /// Function name.
        name: String,
    },
}

/// One node of the interval tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntervalNode {
    /// Node kind.
    pub kind: NodeKind,
    /// Levels above the sample layer (samples are level 0; function nodes
    /// are level −1, encoded as 0 with kind Function).
    pub level: u32,
    /// Covered logical-time range `[start, end)` in loads.
    pub time_range: (u64, u64),
    /// Observed accesses under this node.
    pub accesses: u64,
    /// Footprint diagnostics (merged for aggregates).
    pub diag: FootprintDiagnostics,
    /// Estimated footprint: exact for sample/function nodes, ρ-scaled for
    /// inter/root nodes.
    pub f_hat: f64,
    /// Mean intra-window reuse distance (exact at sample level; accesses-
    /// weighted mean above).
    pub mean_d: f64,
    /// Child indices in the arena.
    pub children: Vec<usize>,
}

impl IntervalNode {
    /// Footprint growth of this node.
    pub fn delta_f(&self) -> f64 {
        self.diag.delta_f()
    }

    /// The zoom score: hot (many accesses) with poor reuse (large
    /// footprint growth).
    pub fn zoom_score(&self) -> f64 {
        self.accesses as f64 * self.delta_f()
    }
}

/// The interval tree arena.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct IntervalTree {
    nodes: Vec<IntervalNode>,
    root: Option<usize>,
}

impl IntervalTree {
    /// Build the tree for a trace.
    pub fn build(
        trace: &SampledTrace,
        annots: &AuxAnnotations,
        symbols: &SymbolTable,
        bs: BlockSize,
        rho: f64,
    ) -> IntervalTree {
        IntervalTree::build_par(trace, annots, symbols, bs, rho, par::default_threads())
    }

    /// [`IntervalTree::build`] with an explicit worker count: each
    /// sample's subtree (function runs, intra halves, sample node) is an
    /// independent local arena built in parallel, then spliced into the
    /// shared arena in time order with an index offset — so the node
    /// layout is identical for every thread count.
    pub fn build_par(
        trace: &SampledTrace,
        annots: &AuxAnnotations,
        symbols: &SymbolTable,
        bs: BlockSize,
        rho: f64,
        threads: usize,
    ) -> IntervalTree {
        let locals = par::par_map(&trace.samples, threads, |s| {
            sample_subtree(s, annots, symbols, bs)
        });

        let mut nodes: Vec<IntervalNode> = Vec::new();
        let mut level_nodes: Vec<usize> = Vec::new();
        for mut local in locals {
            let base = nodes.len();
            for node in &mut local {
                for c in &mut node.children {
                    *c += base;
                }
            }
            nodes.extend(local);
            // The sample node is the last entry of its local arena.
            level_nodes.push(nodes.len() - 1);
        }

        // Binary aggregation upward.
        let mut level = 1u32;
        while level_nodes.len() > 1 {
            let mut next = Vec::with_capacity(level_nodes.len().div_ceil(2));
            for pair in level_nodes.chunks(2) {
                if pair.len() == 1 {
                    next.push(pair[0]);
                    continue;
                }
                let (a, b) = (&nodes[pair[0]], &nodes[pair[1]]);
                let mut diag = a.diag;
                diag.merge(&b.diag);
                let accesses = a.accesses + b.accesses;
                let mean_d = if accesses == 0 {
                    0.0
                } else {
                    (a.mean_d * a.accesses as f64 + b.mean_d * b.accesses as f64) / accesses as f64
                };
                nodes.push(IntervalNode {
                    kind: NodeKind::Inter,
                    level,
                    time_range: (a.time_range.0, b.time_range.1),
                    accesses,
                    f_hat: rho * diag.footprint as f64,
                    mean_d,
                    diag,
                    children: vec![pair[0], pair[1]],
                });
                next.push(nodes.len() - 1);
            }
            level_nodes = next;
            level += 1;
        }

        let root = level_nodes.first().copied().inspect(|&r| {
            if let NodeKind::Inter = nodes[r].kind {
                nodes[r].kind = NodeKind::Root;
            }
        });
        IntervalTree { nodes, root }
    }

    /// The root index, if the trace was non-empty.
    pub fn root(&self) -> Option<usize> {
        self.root
    }

    /// A node by index.
    pub fn node(&self, i: usize) -> &IntervalNode {
        &self.nodes[i]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Zoom from the root to the hot interval with poor reuse: at each
    /// node descend into the child with the highest zoom score (the red
    /// path of Fig. 4). Returns node indices from root to leaf.
    pub fn zoom_hot_poor_reuse(&self) -> Vec<usize> {
        let mut path = Vec::new();
        let mut cur = match self.root {
            Some(r) => r,
            None => return path,
        };
        loop {
            path.push(cur);
            let node = &self.nodes[cur];
            match node.children.iter().max_by(|&&a, &&b| {
                self.nodes[a]
                    .zoom_score()
                    .total_cmp(&self.nodes[b].zoom_score())
            }) {
                Some(&next) => cur = next,
                None => return path,
            }
        }
    }

    /// All sample-level node indices, in time order.
    pub fn sample_nodes(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Sample))
            .map(|(i, _)| i)
            .collect()
    }
}

/// Samples with at least this many accesses get intra-interval children
/// (two halves) between themselves and the function runs.
const INTRA_SPLIT_MIN: usize = 16;

/// Function-run leaf nodes for one access slice, appended to a local
/// arena; returns their local indices.
fn run_nodes(
    nodes: &mut Vec<IntervalNode>,
    accesses: &[memgaze_model::Access],
    annots: &AuxAnnotations,
    symbols: &SymbolTable,
    bs: BlockSize,
) -> Vec<usize> {
    let name_of = |ip| {
        symbols
            .lookup(ip)
            .map(|f| f.name.clone())
            .unwrap_or_else(|| "<unknown>".to_string())
    };
    let mut out = Vec::new();
    let mut run_start = 0usize;
    while run_start < accesses.len() {
        let name = name_of(accesses[run_start].ip);
        let mut run_end = run_start + 1;
        while run_end < accesses.len() && name_of(accesses[run_end].ip) == name {
            run_end += 1;
        }
        let run = &accesses[run_start..run_end];
        let diag = FootprintDiagnostics::compute(run, annots, bs);
        let r = reuse::analyze_window(run, bs);
        nodes.push(IntervalNode {
            kind: NodeKind::Function { name },
            level: 0,
            time_range: (run[0].time, run[run.len() - 1].time + 1),
            accesses: run.len() as u64,
            f_hat: diag.footprint as f64,
            mean_d: r.mean_distance(),
            diag,
            children: Vec::new(),
        });
        out.push(nodes.len() - 1);
        run_start = run_end;
    }
    out
}

/// One sample's subtree as a local arena (function runs, optional intra
/// halves, then the sample node last), with local child indices.
fn sample_subtree(
    s: &Sample,
    annots: &AuxAnnotations,
    symbols: &SymbolTable,
    bs: BlockSize,
) -> Vec<IntervalNode> {
    let mut nodes: Vec<IntervalNode> = Vec::new();
    let children = if s.accesses.len() >= INTRA_SPLIT_MIN {
        let mid = s.accesses.len() / 2;
        let mut halves = Vec::with_capacity(2);
        for half in [&s.accesses[..mid], &s.accesses[mid..]] {
            let fn_children = run_nodes(&mut nodes, half, annots, symbols, bs);
            let diag = FootprintDiagnostics::compute(half, annots, bs);
            let r = reuse::analyze_window(half, bs);
            nodes.push(IntervalNode {
                kind: NodeKind::Intra,
                level: 0,
                time_range: (half[0].time, half[half.len() - 1].time + 1),
                accesses: half.len() as u64,
                f_hat: diag.footprint as f64,
                mean_d: r.mean_distance(),
                diag,
                children: fn_children,
            });
            halves.push(nodes.len() - 1);
        }
        halves
    } else {
        run_nodes(&mut nodes, &s.accesses, annots, symbols, bs)
    };

    let diag = FootprintDiagnostics::compute(&s.accesses, annots, bs);
    let r = reuse::analyze_window(&s.accesses, bs);
    let start = s.start_time().unwrap_or(s.trigger_time);
    nodes.push(IntervalNode {
        kind: NodeKind::Sample,
        level: 0,
        time_range: (start, s.trigger_time),
        accesses: s.accesses.len() as u64,
        f_hat: diag.footprint as f64,
        mean_d: r.mean_distance(),
        diag,
        children,
    });
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use memgaze_model::{Access, Ip, Sample, TraceMeta};

    fn trace(nsamples: usize) -> (SampledTrace, SymbolTable) {
        let mut symbols = SymbolTable::new();
        symbols.add_function("hot", Ip(0x100), Ip(0x200), "a.c");
        symbols.add_function("cold", Ip(0x200), Ip(0x300), "a.c");
        let mut t = SampledTrace::new(TraceMeta::new("t", 1000, 8192));
        t.meta.total_loads = nsamples as u64 * 1000;
        for s in 0..nsamples {
            let base = s as u64 * 1000;
            let mut acc = Vec::new();
            // A run in "hot" (streaming, poor reuse), then one in "cold"
            // (all the same block, great reuse).
            for i in 0..64u64 {
                acc.push(Access::new(Ip(0x110), (s as u64 * 64 + i) * 64, base + i));
            }
            for i in 64..96u64 {
                acc.push(Access::new(Ip(0x210), 0x8000u64, base + i));
            }
            t.push_sample(Sample::new(acc, base + 96)).unwrap();
        }
        (t, symbols)
    }

    #[test]
    fn builds_levels_bottom_up() {
        let (t, symbols) = trace(8);
        let tree = IntervalTree::build(
            &t,
            &AuxAnnotations::new(),
            &symbols,
            BlockSize::CACHE_LINE,
            10.0,
        );
        let root = tree.root().unwrap();
        assert!(matches!(tree.node(root).kind, NodeKind::Root));
        // 8 samples → 3 binary levels above the sample layer.
        assert_eq!(tree.node(root).level, 3);
        assert_eq!(tree.sample_nodes().len(), 8);
        // Root covers everything.
        assert_eq!(tree.node(root).accesses, 8 * 96);
    }

    #[test]
    fn sample_nodes_have_intra_and_function_children() {
        let (t, symbols) = trace(2);
        let tree = IntervalTree::build(
            &t,
            &AuxAnnotations::new(),
            &symbols,
            BlockSize::CACHE_LINE,
            1.0,
        );
        for i in tree.sample_nodes() {
            let n = tree.node(i);
            // 96-access samples split into two intra halves.
            assert_eq!(n.children.len(), 2);
            let mut names = Vec::new();
            for &half in &n.children {
                let h = tree.node(half);
                assert!(matches!(h.kind, NodeKind::Intra), "{:?}", h.kind);
                // Halves partition the sample's accesses.
                for &f in &h.children {
                    match &tree.node(f).kind {
                        NodeKind::Function { name } => names.push(name.clone()),
                        k => panic!("grandchild is {k:?}"),
                    }
                }
            }
            // First half is all "hot" (accesses 0..48); second half covers
            // the rest of "hot" plus "cold".
            assert_eq!(
                names,
                vec!["hot".to_string(), "hot".to_string(), "cold".to_string()]
            );
            let acc_sum: u64 = n.children.iter().map(|&c| tree.node(c).accesses).sum();
            assert_eq!(acc_sum, n.accesses);
        }
    }

    #[test]
    fn inter_nodes_scale_by_rho() {
        let (t, symbols) = trace(2);
        let rho = 7.0;
        let tree = IntervalTree::build(
            &t,
            &AuxAnnotations::new(),
            &symbols,
            BlockSize::CACHE_LINE,
            rho,
        );
        let root = tree.root().unwrap();
        let n = tree.node(root);
        assert!((n.f_hat - rho * n.diag.footprint as f64).abs() < 1e-9);
        // Sample nodes stay exact.
        for i in tree.sample_nodes() {
            let s = tree.node(i);
            assert!((s.f_hat - s.diag.footprint as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn zoom_descends_to_streaming_function() {
        let (t, symbols) = trace(8);
        let tree = IntervalTree::build(
            &t,
            &AuxAnnotations::new(),
            &symbols,
            BlockSize::CACHE_LINE,
            1.0,
        );
        let path = tree.zoom_hot_poor_reuse();
        assert!(path.len() >= 4, "path {path:?}");
        // The zoom leaf must be the "hot" streaming function run: many
        // accesses, ΔF = 1.
        let leaf = tree.node(*path.last().unwrap());
        match &leaf.kind {
            NodeKind::Function { name } => assert_eq!(name, "hot"),
            k => panic!("leaf is {k:?}"),
        }
        assert!((leaf.delta_f() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn build_threads_invariant() {
        let (t, symbols) = trace(9);
        let annots = AuxAnnotations::new();
        let one = IntervalTree::build_par(&t, &annots, &symbols, BlockSize::CACHE_LINE, 3.0, 1);
        let four = IntervalTree::build_par(&t, &annots, &symbols, BlockSize::CACHE_LINE, 3.0, 4);
        assert_eq!(one, four);
    }

    #[test]
    fn empty_trace_builds_empty_tree() {
        let t = SampledTrace::new(TraceMeta::new("t", 1000, 8192));
        let tree = IntervalTree::build(
            &t,
            &AuxAnnotations::new(),
            &SymbolTable::new(),
            BlockSize::CACHE_LINE,
            1.0,
        );
        assert!(tree.is_empty());
        assert!(tree.root().is_none());
        assert!(tree.zoom_hot_poor_reuse().is_empty());
    }
}
