//! Reuse interval and spatio-temporal reuse distance (paper §IV-A, §V-B).
//!
//! A *reuse interval* is the number of loads between two references to the
//! same (block) address; *reuse distance* (stack distance) is the number
//! of *unique* blocks in that interval. Reuse distance is computed
//! exactly in `O(log n)` per access with a last-access map plus a Fenwick
//! tree that marks the most recent position of each distinct block —
//! querying the tree over `(last[b], now)` counts distinct blocks touched
//! since the previous access to `b`.

use crate::fxhash::FxHashMap;
use memgaze_model::{Access, BlockSize};
use serde::{Deserialize, Serialize};

/// Fenwick (binary indexed) tree over access positions.
struct Fenwick {
    tree: Vec<i64>,
}

impl Fenwick {
    fn new(n: usize) -> Fenwick {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    fn add(&mut self, mut i: usize, delta: i64) {
        i += 1;
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of `[0, i]`.
    fn prefix(&self, mut i: usize) -> i64 {
        i += 1;
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Sum of `(lo, hi]` with exclusive lower bound.
    fn range_exclusive(&self, lo: usize, hi: usize) -> i64 {
        self.prefix(hi) - self.prefix(lo)
    }
}

/// One observed reuse: the access index, its block, interval, and distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReuseEvent {
    /// Index of the reusing access within the window.
    pub pos: usize,
    /// The reused block number.
    pub block: u64,
    /// Loads since the previous access to this block (reuse interval).
    pub interval: u64,
    /// Unique blocks since the previous access to this block (reuse
    /// distance).
    pub distance: u64,
}

/// Exact per-window reuse analysis.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReuseAnalysis {
    /// All reuse events in access order.
    pub events: Vec<ReuseEvent>,
    /// Accesses analyzed.
    pub accesses: usize,
    /// Unique blocks (the window footprint at this block size).
    pub unique_blocks: u64,
}

impl ReuseAnalysis {
    /// Mean reuse distance over all reuse events (first-touches excluded),
    /// or 0 when nothing is reused. The sum is taken in integers so the
    /// result is independent of how the events were grouped — the same
    /// invariant the streaming tracker and fan-out merges rely on.
    pub fn mean_distance(&self) -> f64 {
        if self.events.is_empty() {
            0.0
        } else {
            self.events.iter().map(|e| e.distance).sum::<u64>() as f64 / self.events.len() as f64
        }
    }

    /// Maximum reuse distance (the paper's "Max D"), or 0.
    pub fn max_distance(&self) -> u64 {
        self.events.iter().map(|e| e.distance).max().unwrap_or(0)
    }

    /// Mean reuse interval.
    pub fn mean_interval(&self) -> f64 {
        if self.events.is_empty() {
            0.0
        } else {
            self.events.iter().map(|e| e.interval as f64).sum::<f64>() / self.events.len() as f64
        }
    }

    /// Fraction of accesses that reuse a previously seen block.
    pub fn reuse_fraction(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.events.len() as f64 / self.accesses as f64
        }
    }
}

/// Analyze reuse within one window (typically one sample — the paper
/// prefers intra-sample calculation).
pub fn analyze_window(accesses: &[Access], bs: BlockSize) -> ReuseAnalysis {
    let n = accesses.len();
    let mut fen = Fenwick::new(n);
    let mut last: FxHashMap<u64, usize> =
        FxHashMap::with_capacity_and_hasher(n, Default::default());
    let mut events = Vec::new();

    for (pos, a) in accesses.iter().enumerate() {
        let b = a.addr.block(bs);
        match last.get(&b).copied() {
            Some(prev) => {
                // Unique blocks strictly between prev and pos, plus... by
                // convention D counts blocks *between* the pair, i.e.
                // distinct blocks in (prev, pos) — 0 for back-to-back
                // reuse.
                let distance = if pos > prev + 1 {
                    fen.range_exclusive(prev, pos - 1) as u64
                } else {
                    0
                };
                events.push(ReuseEvent {
                    pos,
                    block: b,
                    interval: (pos - prev) as u64,
                    distance,
                });
                // Move the block's marker to its new position.
                fen.add(prev, -1);
                fen.add(pos, 1);
                last.insert(b, pos);
            }
            None => {
                fen.add(pos, 1);
                last.insert(b, pos);
            }
        }
    }

    ReuseAnalysis {
        events,
        accesses: n,
        unique_blocks: last.len() as u64,
    }
}

/// O(n²) oracle used by tests and property checks.
pub fn analyze_window_naive(accesses: &[Access], bs: BlockSize) -> ReuseAnalysis {
    let n = accesses.len();
    let blocks: Vec<u64> = accesses.iter().map(|a| a.addr.block(bs)).collect();
    let mut events = Vec::new();
    for pos in 0..n {
        // Find previous access to the same block.
        if let Some(prev) = (0..pos).rev().find(|&p| blocks[p] == blocks[pos]) {
            let between: std::collections::HashSet<u64> =
                blocks[prev + 1..pos].iter().copied().collect();
            let mut between = between;
            between.remove(&blocks[pos]);
            events.push(ReuseEvent {
                pos,
                block: blocks[pos],
                interval: (pos - prev) as u64,
                distance: between.len() as u64,
            });
        }
    }
    let unique: std::collections::HashSet<u64> = blocks.iter().copied().collect();
    ReuseAnalysis {
        events,
        accesses: n,
        unique_blocks: unique.len() as u64,
    }
}

/// Per-block statistics tracked by [`BlockReuse`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
struct BlockStats {
    accesses: u64,
    dist_sum: u64,
    reuse_cnt: u64,
    max_dist: u64,
}

impl BlockStats {
    fn absorb(&mut self, other: &BlockStats) {
        self.accesses += other.accesses;
        self.dist_sum += other.dist_sum;
        self.reuse_cnt += other.reuse_cnt;
        self.max_dist = self.max_dist.max(other.max_dist);
    }
}

/// Per-block spatio-temporal reuse summary for location analysis
/// (paper §IV-C2): `D(b)` is the mean unique blocks between subsequent
/// accesses to block `b`.
///
/// Region tables (IV–IX) query the same summary for every region row,
/// so instead of a hash map that each query scans in full, blocks are
/// kept sorted with prefix sums of the summable stats and a sparse
/// table over the max distances. Every `region_*` query is then two
/// binary searches plus O(1) lookups — O(log n) total — independent of
/// how many region rows ask.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockReuse {
    /// Block numbers, strictly increasing.
    blocks: Vec<u64>,
    /// Per-block stats, parallel to `blocks`.
    stats: Vec<BlockStats>,
    /// `pre_*[i]` = sum of the stat over `stats[0..i]` (length n+1).
    pre_accesses: Vec<u64>,
    pre_dist_sum: Vec<u64>,
    pre_reuse_cnt: Vec<u64>,
    /// Sparse table for range-max over `max_dist`: `max_table[k][i]` =
    /// max over `stats[i..i + 2^k]`. Level 0 is the raw column.
    max_table: Vec<Vec<u64>>,
}

impl Default for BlockReuse {
    fn default() -> BlockReuse {
        let mut br = BlockReuse {
            blocks: Vec::new(),
            stats: Vec::new(),
            pre_accesses: Vec::new(),
            pre_dist_sum: Vec::new(),
            pre_reuse_cnt: Vec::new(),
            max_table: Vec::new(),
        };
        br.rebuild_index();
        br
    }
}

impl BlockReuse {
    /// Build from a window's reuse analysis plus its accesses.
    pub fn from_analysis(
        accesses: &[Access],
        bs: BlockSize,
        analysis: &ReuseAnalysis,
    ) -> BlockReuse {
        let mut per_block: FxHashMap<u64, BlockStats> =
            FxHashMap::with_capacity_and_hasher(accesses.len(), Default::default());
        for a in accesses {
            per_block.entry(a.addr.block(bs)).or_default().accesses += 1;
        }
        for e in &analysis.events {
            let entry = per_block.entry(e.block).or_default();
            entry.dist_sum += e.distance;
            entry.reuse_cnt += 1;
            entry.max_dist = entry.max_dist.max(e.distance);
        }
        let mut pairs: Vec<(u64, BlockStats)> = per_block.into_iter().collect();
        pairs.sort_unstable_by_key(|&(b, _)| b);
        let mut br = BlockReuse {
            blocks: pairs.iter().map(|&(b, _)| b).collect(),
            stats: pairs.into_iter().map(|(_, s)| s).collect(),
            pre_accesses: Vec::new(),
            pre_dist_sum: Vec::new(),
            pre_reuse_cnt: Vec::new(),
            max_table: Vec::new(),
        };
        br.rebuild_index();
        br
    }

    /// Coalesce many window summaries at once: concatenate the sorted
    /// columns, sort, absorb duplicate blocks, and rebuild the index a
    /// single time. For `k` parts totalling `n` entries this is
    /// O(n log n) — versus O(k·n) worth of index rebuilds when folding
    /// parts through [`BlockReuse::merge`] one by one.
    pub fn from_parts(parts: impl IntoIterator<Item = BlockReuse>) -> BlockReuse {
        let mut br = BlockReuse::from_parts_unindexed(parts);
        br.rebuild_index();
        br
    }

    /// [`from_parts`](Self::from_parts) without rebuilding the query
    /// index — for intermediate accumulator states that are only ever
    /// merged again (`from_parts` consumes just `blocks`/`stats`),
    /// never queried. Skipping the prefix sums and the O(n log n)
    /// sparse max-table on every geometric fold is what keeps streaming
    /// ingest's merge tax sublinear; a query against an unindexed state
    /// panics on the empty prefix arrays rather than answering wrong.
    pub(crate) fn from_parts_unindexed(parts: impl IntoIterator<Item = BlockReuse>) -> BlockReuse {
        let mut pairs: Vec<(u64, BlockStats)> = Vec::new();
        for p in parts {
            pairs.extend(p.blocks.into_iter().zip(p.stats));
        }
        // Each part arrives with strictly increasing blocks, so the
        // concatenation is a handful of pre-sorted runs — the stable
        // sort's run detection merges them in near-linear time, where an
        // unstable sort would pay the full comparison cost. Order among
        // equal keys is irrelevant: `absorb` only sums and maxes.
        pairs.sort_by_key(|&(b, _)| b);
        let mut br = BlockReuse {
            blocks: Vec::with_capacity(pairs.len()),
            stats: Vec::with_capacity(pairs.len()),
            pre_accesses: Vec::new(),
            pre_dist_sum: Vec::new(),
            pre_reuse_cnt: Vec::new(),
            max_table: Vec::new(),
        };
        for (b, s) in pairs {
            if br.blocks.last() == Some(&b) {
                br.stats.last_mut().unwrap().absorb(&s);
            } else {
                br.blocks.push(b);
                br.stats.push(s);
            }
        }
        br
    }

    /// Raw `(block, [accesses, dist_sum, reuse_cnt, max_dist])` rows in
    /// block order — the summary's interchange form, consumed by the
    /// fan-out wire codec and persisted per frame in the
    /// `memgaze-store` catalog so region queries can rebuild a
    /// [`BlockReuse`] without decoding any shard.
    pub fn raw_rows(&self) -> impl Iterator<Item = (u64, [u64; 4])> + '_ {
        self.blocks
            .iter()
            .zip(&self.stats)
            .map(|(&b, s)| (b, [s.accesses, s.dist_sum, s.reuse_cnt, s.max_dist]))
    }

    /// Rebuild from [`raw_rows`](Self::raw_rows) output (fan-out wire
    /// codec, store catalog). Rows must be in strictly increasing block
    /// order; returns `None` otherwise.
    pub fn from_raw_rows(rows: Vec<(u64, [u64; 4])>) -> Option<BlockReuse> {
        if !rows.windows(2).all(|w| w[0].0 < w[1].0) {
            return None;
        }
        let mut br = BlockReuse {
            blocks: rows.iter().map(|&(b, _)| b).collect(),
            stats: rows
                .into_iter()
                .map(
                    |(_, [accesses, dist_sum, reuse_cnt, max_dist])| BlockStats {
                        accesses,
                        dist_sum,
                        reuse_cnt,
                        max_dist,
                    },
                )
                .collect(),
            pre_accesses: Vec::new(),
            pre_dist_sum: Vec::new(),
            pre_reuse_cnt: Vec::new(),
            max_table: Vec::new(),
        };
        br.rebuild_index();
        Some(br)
    }

    /// Merge another window's summary into this one (sample aggregation,
    /// §IV-B). A two-pointer merge of the sorted columns, then an index
    /// rebuild — O(n + m) plus O(n log n) for the max table.
    pub fn merge(&mut self, other: &BlockReuse) {
        if other.blocks.is_empty() {
            return;
        }
        if self.blocks.is_empty() {
            *self = other.clone();
            return;
        }
        let mut blocks = Vec::with_capacity(self.blocks.len() + other.blocks.len());
        let mut stats = Vec::with_capacity(blocks.capacity());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.blocks.len() || j < other.blocks.len() {
            let take_self = j >= other.blocks.len()
                || (i < self.blocks.len() && self.blocks[i] <= other.blocks[j]);
            if take_self {
                let mut s = self.stats[i];
                if j < other.blocks.len() && other.blocks[j] == self.blocks[i] {
                    s.absorb(&other.stats[j]);
                    j += 1;
                }
                blocks.push(self.blocks[i]);
                stats.push(s);
                i += 1;
            } else {
                blocks.push(other.blocks[j]);
                stats.push(other.stats[j]);
                j += 1;
            }
        }
        self.blocks = blocks;
        self.stats = stats;
        self.rebuild_index();
    }

    /// Exact k-way merge: equivalent to folding [`merge`](Self::merge)
    /// pairwise over `parts` (the per-block stats combine by sum/max,
    /// so order cannot matter), but the prefix sums and the range-max
    /// sparse table are rebuilt once at the end instead of once per
    /// pairwise step — the difference between O(k · n log n) and
    /// O(n log n) when folding one partial per shard frame.
    pub fn merge_many(parts: impl IntoIterator<Item = BlockReuse>) -> BlockReuse {
        let mut pairs: Vec<(u64, BlockStats)> = Vec::new();
        for p in parts {
            pairs.extend(p.blocks.into_iter().zip(p.stats));
        }
        pairs.sort_unstable_by_key(|&(b, _)| b);
        let mut out = BlockReuse {
            blocks: Vec::with_capacity(pairs.len()),
            stats: Vec::with_capacity(pairs.len()),
            pre_accesses: Vec::new(),
            pre_dist_sum: Vec::new(),
            pre_reuse_cnt: Vec::new(),
            max_table: Vec::new(),
        };
        for (b, s) in pairs {
            if out.blocks.last() == Some(&b) {
                out.stats.last_mut().expect("parallel to blocks").absorb(&s);
            } else {
                out.blocks.push(b);
                out.stats.push(s);
            }
        }
        out.rebuild_index();
        out
    }

    /// Recompute the prefix sums and the range-max sparse table from
    /// `blocks`/`stats`.
    fn rebuild_index(&mut self) {
        let n = self.blocks.len();
        debug_assert!(self.blocks.windows(2).all(|w| w[0] < w[1]));
        self.pre_accesses = Vec::with_capacity(n + 1);
        self.pre_dist_sum = Vec::with_capacity(n + 1);
        self.pre_reuse_cnt = Vec::with_capacity(n + 1);
        self.pre_accesses.push(0);
        self.pre_dist_sum.push(0);
        self.pre_reuse_cnt.push(0);
        for s in &self.stats {
            self.pre_accesses
                .push(self.pre_accesses.last().unwrap() + s.accesses);
            self.pre_dist_sum
                .push(self.pre_dist_sum.last().unwrap() + s.dist_sum);
            self.pre_reuse_cnt
                .push(self.pre_reuse_cnt.last().unwrap() + s.reuse_cnt);
        }
        self.max_table.clear();
        if n == 0 {
            return;
        }
        self.max_table
            .push(self.stats.iter().map(|s| s.max_dist).collect());
        let mut width = 1usize;
        while width * 2 <= n {
            let prev = self.max_table.last().unwrap();
            let next: Vec<u64> = (0..=n - width * 2)
                .map(|i| prev[i].max(prev[i + width]))
                .collect();
            self.max_table.push(next);
            width *= 2;
        }
    }

    /// Index range `[l, r)` covering blocks in `[lo_block, hi_block)`.
    fn index_range(&self, lo_block: u64, hi_block: u64) -> (usize, usize) {
        let l = self.blocks.partition_point(|&b| b < lo_block);
        let r = self.blocks.partition_point(|&b| b < hi_block);
        (l, r.max(l))
    }

    /// Mean reuse distance of accesses to blocks in `[lo_block, hi_block)`.
    pub fn region_mean_distance(&self, lo_block: u64, hi_block: u64) -> f64 {
        let (l, r) = self.index_range(lo_block, hi_block);
        let n = self.pre_reuse_cnt[r] - self.pre_reuse_cnt[l];
        if n == 0 {
            0.0
        } else {
            (self.pre_dist_sum[r] - self.pre_dist_sum[l]) as f64 / n as f64
        }
    }

    /// Accesses to blocks in `[lo_block, hi_block)`.
    pub fn region_accesses(&self, lo_block: u64, hi_block: u64) -> u64 {
        let (l, r) = self.index_range(lo_block, hi_block);
        self.pre_accesses[r] - self.pre_accesses[l]
    }

    /// Maximum reuse distance observed in `[lo_block, hi_block)` — the
    /// paper's "Max D" column (Table IX).
    pub fn region_max_distance(&self, lo_block: u64, hi_block: u64) -> u64 {
        let (l, r) = self.index_range(lo_block, hi_block);
        if l >= r {
            return 0;
        }
        let k = (r - l).ilog2() as usize;
        let row = &self.max_table[k];
        row[l].max(row[r - (1 << k)])
    }

    /// Distinct blocks touched in `[lo_block, hi_block)`.
    pub fn region_blocks(&self, lo_block: u64, hi_block: u64) -> u64 {
        let (l, r) = self.index_range(lo_block, hi_block);
        (r - l) as u64
    }

    /// Total distinct blocks in the summary.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the summary is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Iterate `(block, accesses, mean_distance)` entries in block order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64, f64)> + '_ {
        self.blocks.iter().zip(&self.stats).map(|(&b, s)| {
            let d = if s.reuse_cnt == 0 {
                0.0
            } else {
                s.dist_sum as f64 / s.reuse_cnt as f64
            };
            (b, s.accesses, d)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memgaze_model::Access;

    fn seq(blocks: &[u64]) -> Vec<Access> {
        blocks
            .iter()
            .enumerate()
            .map(|(i, b)| Access::new(0x400u64, b * 64, i as u64))
            .collect()
    }

    #[test]
    fn simple_reuse_distances() {
        // a b c a: reuse of a at distance 2 (b, c), interval 3.
        let r = analyze_window(&seq(&[1, 2, 3, 1]), BlockSize::CACHE_LINE);
        assert_eq!(r.events.len(), 1);
        assert_eq!(r.events[0].distance, 2);
        assert_eq!(r.events[0].interval, 3);
        assert_eq!(r.unique_blocks, 3);
        assert_eq!(r.max_distance(), 2);
    }

    #[test]
    fn back_to_back_reuse_is_distance_zero() {
        let r = analyze_window(&seq(&[5, 5, 5]), BlockSize::CACHE_LINE);
        assert_eq!(r.events.len(), 2);
        assert!(r.events.iter().all(|e| e.distance == 0 && e.interval == 1));
        assert_eq!(r.mean_distance(), 0.0);
        assert_eq!(r.mean_interval(), 1.0);
    }

    #[test]
    fn stack_distance_counts_unique_not_total() {
        // a b b b a: interval 4 but only one distinct block between.
        let r = analyze_window(&seq(&[1, 2, 2, 2, 1]), BlockSize::CACHE_LINE);
        let a_reuse = r.events.iter().find(|e| e.block == 1).unwrap();
        assert_eq!(a_reuse.interval, 4);
        assert_eq!(a_reuse.distance, 1);
    }

    #[test]
    fn matches_naive_oracle_on_patterns() {
        let patterns: Vec<Vec<u64>> = vec![
            vec![],
            vec![7],
            vec![1, 2, 3, 4, 1, 2, 3, 4],
            vec![1, 1, 2, 1, 3, 1, 4, 1],
            (0..64).map(|i| i % 8).collect(),
            (0..100).map(|i| (i * 37) % 11).collect(),
        ];
        for p in patterns {
            let a = seq(&p);
            let fast = analyze_window(&a, BlockSize::CACHE_LINE);
            let slow = analyze_window_naive(&a, BlockSize::CACHE_LINE);
            assert_eq!(fast, slow, "pattern {p:?}");
        }
    }

    #[test]
    fn reuse_fraction() {
        let r = analyze_window(&seq(&[1, 2, 1, 2]), BlockSize::CACHE_LINE);
        assert!((r.reuse_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(
            analyze_window(&[], BlockSize::CACHE_LINE).reuse_fraction(),
            0.0
        );
    }

    #[test]
    fn block_reuse_region_queries() {
        let a = seq(&[10, 11, 10, 20, 20, 11]);
        let r = analyze_window(&a, BlockSize::CACHE_LINE);
        let br = BlockReuse::from_analysis(&a, BlockSize::CACHE_LINE, &r);
        assert_eq!(br.region_accesses(10, 12), 4);
        assert_eq!(br.region_accesses(20, 21), 2);
        assert_eq!(br.region_blocks(10, 21), 3);
        // Block 20's reuse is back-to-back: D=0.
        assert_eq!(br.region_mean_distance(20, 21), 0.0);
        // Block 10 reused at distance 1; block 11 at distance 2.
        let d = br.region_mean_distance(10, 12);
        assert!((d - 1.5).abs() < 1e-12, "d={d}");
    }

    #[test]
    fn indexed_queries_match_full_scan() {
        // Pseudo-random block stream with clustered regions; compare the
        // indexed queries against a straight scan over iter() plus an
        // independently tracked per-block max.
        let blocks: Vec<u64> = (0..500u64)
            .map(|i| (i.wrapping_mul(2654435761) % 97) + (i % 3) * 1000)
            .collect();
        let a = seq(&blocks);
        let r = analyze_window(&a, BlockSize::CACHE_LINE);
        let br = BlockReuse::from_analysis(&a, BlockSize::CACHE_LINE, &r);

        let mut max_by_block: std::collections::HashMap<u64, u64> =
            std::collections::HashMap::new();
        let mut sums: std::collections::HashMap<u64, (u64, u64)> = std::collections::HashMap::new();
        for e in &r.events {
            let m = max_by_block.entry(e.block).or_insert(0);
            *m = (*m).max(e.distance);
            let s = sums.entry(e.block).or_insert((0, 0));
            s.0 += e.distance;
            s.1 += 1;
        }

        for (lo, hi) in [
            (0, 97),
            (1000, 1097),
            (50, 1050),
            (0, u64::MAX),
            (96, 97),
            (98, 99),
        ] {
            let scan_accesses: u64 = br
                .iter()
                .filter(|&(b, _, _)| b >= lo && b < hi)
                .map(|(_, a, _)| a)
                .sum();
            assert_eq!(
                br.region_accesses(lo, hi),
                scan_accesses,
                "accesses [{lo},{hi})"
            );

            let scan_blocks = br.iter().filter(|&(b, _, _)| b >= lo && b < hi).count() as u64;
            assert_eq!(br.region_blocks(lo, hi), scan_blocks, "blocks [{lo},{hi})");

            let scan_max = max_by_block
                .iter()
                .filter(|(b, _)| **b >= lo && **b < hi)
                .map(|(_, m)| *m)
                .max()
                .unwrap_or(0);
            assert_eq!(br.region_max_distance(lo, hi), scan_max, "max [{lo},{hi})");

            let (ds, dn) = sums
                .iter()
                .filter(|(b, _)| **b >= lo && **b < hi)
                .fold((0u64, 0u64), |(s, n), (_, (es, en))| (s + es, n + en));
            let scan_mean = if dn == 0 { 0.0 } else { ds as f64 / dn as f64 };
            let got = br.region_mean_distance(lo, hi);
            assert!(
                (got - scan_mean).abs() < 1e-12,
                "mean [{lo},{hi}): {got} vs {scan_mean}"
            );
        }
    }

    #[test]
    fn empty_block_reuse_queries_are_zero() {
        let br = BlockReuse::default();
        assert_eq!(br.region_accesses(0, u64::MAX), 0);
        assert_eq!(br.region_blocks(0, u64::MAX), 0);
        assert_eq!(br.region_max_distance(0, u64::MAX), 0);
        assert_eq!(br.region_mean_distance(0, u64::MAX), 0.0);
        assert!(br.is_empty());
    }

    #[test]
    fn from_parts_matches_pairwise_merge() {
        let windows: Vec<Vec<u64>> = vec![
            vec![1, 2, 1, 9],
            vec![1, 3, 1, 3, 3],
            vec![],
            (0..40).map(|i| i % 7).collect(),
        ];
        let parts: Vec<BlockReuse> = windows
            .iter()
            .map(|w| {
                let a = seq(w);
                let r = analyze_window(&a, BlockSize::CACHE_LINE);
                BlockReuse::from_analysis(&a, BlockSize::CACHE_LINE, &r)
            })
            .collect();
        let mut folded = BlockReuse::default();
        for p in &parts {
            folded.merge(p);
        }
        let bulk = BlockReuse::from_parts(parts);
        assert_eq!(folded, bulk);
    }

    #[test]
    fn block_reuse_merge_accumulates() {
        let a1 = seq(&[1, 2, 1]);
        let a2 = seq(&[1, 3, 1]);
        let r1 = analyze_window(&a1, BlockSize::CACHE_LINE);
        let r2 = analyze_window(&a2, BlockSize::CACHE_LINE);
        let mut b = BlockReuse::from_analysis(&a1, BlockSize::CACHE_LINE, &r1);
        b.merge(&BlockReuse::from_analysis(&a2, BlockSize::CACHE_LINE, &r2));
        assert_eq!(b.region_accesses(1, 2), 4);
        assert_eq!(b.region_blocks(0, 100), 3);
    }
}
