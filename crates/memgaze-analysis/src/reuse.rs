//! Reuse interval and spatio-temporal reuse distance (paper §IV-A, §V-B).
//!
//! A *reuse interval* is the number of loads between two references to the
//! same (block) address; *reuse distance* (stack distance) is the number
//! of *unique* blocks in that interval. Reuse distance is computed
//! exactly in `O(log n)` per access with a last-access map plus a Fenwick
//! tree that marks the most recent position of each distinct block —
//! querying the tree over `(last[b], now)` counts distinct blocks touched
//! since the previous access to `b`.

use memgaze_model::{Access, BlockSize};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Fenwick (binary indexed) tree over access positions.
struct Fenwick {
    tree: Vec<i64>,
}

impl Fenwick {
    fn new(n: usize) -> Fenwick {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    fn add(&mut self, mut i: usize, delta: i64) {
        i += 1;
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of `[0, i]`.
    fn prefix(&self, mut i: usize) -> i64 {
        i += 1;
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Sum of `(lo, hi]` with exclusive lower bound.
    fn range_exclusive(&self, lo: usize, hi: usize) -> i64 {
        self.prefix(hi) - self.prefix(lo)
    }
}

/// One observed reuse: the access index, its block, interval, and distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReuseEvent {
    /// Index of the reusing access within the window.
    pub pos: usize,
    /// The reused block number.
    pub block: u64,
    /// Loads since the previous access to this block (reuse interval).
    pub interval: u64,
    /// Unique blocks since the previous access to this block (reuse
    /// distance).
    pub distance: u64,
}

/// Exact per-window reuse analysis.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReuseAnalysis {
    /// All reuse events in access order.
    pub events: Vec<ReuseEvent>,
    /// Accesses analyzed.
    pub accesses: usize,
    /// Unique blocks (the window footprint at this block size).
    pub unique_blocks: u64,
}

impl ReuseAnalysis {
    /// Mean reuse distance over all reuse events (first-touches excluded),
    /// or 0 when nothing is reused.
    pub fn mean_distance(&self) -> f64 {
        if self.events.is_empty() {
            0.0
        } else {
            self.events.iter().map(|e| e.distance as f64).sum::<f64>() / self.events.len() as f64
        }
    }

    /// Maximum reuse distance (the paper's "Max D"), or 0.
    pub fn max_distance(&self) -> u64 {
        self.events.iter().map(|e| e.distance).max().unwrap_or(0)
    }

    /// Mean reuse interval.
    pub fn mean_interval(&self) -> f64 {
        if self.events.is_empty() {
            0.0
        } else {
            self.events.iter().map(|e| e.interval as f64).sum::<f64>() / self.events.len() as f64
        }
    }

    /// Fraction of accesses that reuse a previously seen block.
    pub fn reuse_fraction(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.events.len() as f64 / self.accesses as f64
        }
    }
}

/// Analyze reuse within one window (typically one sample — the paper
/// prefers intra-sample calculation).
pub fn analyze_window(accesses: &[Access], bs: BlockSize) -> ReuseAnalysis {
    let n = accesses.len();
    let mut fen = Fenwick::new(n);
    let mut last: HashMap<u64, usize> = HashMap::with_capacity(n);
    let mut events = Vec::new();

    for (pos, a) in accesses.iter().enumerate() {
        let b = a.addr.block(bs);
        match last.get(&b).copied() {
            Some(prev) => {
                // Unique blocks strictly between prev and pos, plus... by
                // convention D counts blocks *between* the pair, i.e.
                // distinct blocks in (prev, pos) — 0 for back-to-back
                // reuse.
                let distance = if pos > prev + 1 {
                    fen.range_exclusive(prev, pos - 1) as u64
                } else {
                    0
                };
                events.push(ReuseEvent {
                    pos,
                    block: b,
                    interval: (pos - prev) as u64,
                    distance,
                });
                // Move the block's marker to its new position.
                fen.add(prev, -1);
                fen.add(pos, 1);
                last.insert(b, pos);
            }
            None => {
                fen.add(pos, 1);
                last.insert(b, pos);
            }
        }
    }

    ReuseAnalysis {
        events,
        accesses: n,
        unique_blocks: last.len() as u64,
    }
}

/// O(n²) oracle used by tests and property checks.
pub fn analyze_window_naive(accesses: &[Access], bs: BlockSize) -> ReuseAnalysis {
    let n = accesses.len();
    let blocks: Vec<u64> = accesses.iter().map(|a| a.addr.block(bs)).collect();
    let mut events = Vec::new();
    for pos in 0..n {
        // Find previous access to the same block.
        if let Some(prev) = (0..pos).rev().find(|&p| blocks[p] == blocks[pos]) {
            let between: std::collections::HashSet<u64> =
                blocks[prev + 1..pos].iter().copied().collect();
            let mut between = between;
            between.remove(&blocks[pos]);
            events.push(ReuseEvent {
                pos,
                block: blocks[pos],
                interval: (pos - prev) as u64,
                distance: between.len() as u64,
            });
        }
    }
    let unique: std::collections::HashSet<u64> = blocks.iter().copied().collect();
    ReuseAnalysis {
        events,
        accesses: n,
        unique_blocks: unique.len() as u64,
    }
}

/// Per-block spatio-temporal reuse summary for location analysis
/// (paper §IV-C2): `D(b)` is the mean unique blocks between subsequent
/// accesses to block `b`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BlockReuse {
    /// Per-block: (access count, sum of reuse distances, reuse count,
    /// max reuse distance).
    per_block: HashMap<u64, (u64, u64, u64, u64)>,
}

impl BlockReuse {
    /// Build from a window's reuse analysis plus its accesses.
    pub fn from_analysis(accesses: &[Access], bs: BlockSize, analysis: &ReuseAnalysis) -> BlockReuse {
        let mut per_block: HashMap<u64, (u64, u64, u64, u64)> = HashMap::new();
        for a in accesses {
            per_block.entry(a.addr.block(bs)).or_default().0 += 1;
        }
        for e in &analysis.events {
            let entry = per_block.entry(e.block).or_default();
            entry.1 += e.distance;
            entry.2 += 1;
            entry.3 = entry.3.max(e.distance);
        }
        BlockReuse { per_block }
    }

    /// Merge another window's summary into this one (sample aggregation,
    /// §IV-B).
    pub fn merge(&mut self, other: &BlockReuse) {
        for (b, (a, s, r, m)) in &other.per_block {
            let e = self.per_block.entry(*b).or_default();
            e.0 += a;
            e.1 += s;
            e.2 += r;
            e.3 = e.3.max(*m);
        }
    }

    /// Mean reuse distance of accesses to blocks in `[lo_block, hi_block)`.
    pub fn region_mean_distance(&self, lo_block: u64, hi_block: u64) -> f64 {
        let (mut sum, mut n) = (0u64, 0u64);
        for (b, (_, s, r, _)) in &self.per_block {
            if *b >= lo_block && *b < hi_block {
                sum += s;
                n += r;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }

    /// Accesses to blocks in `[lo_block, hi_block)`.
    pub fn region_accesses(&self, lo_block: u64, hi_block: u64) -> u64 {
        self.per_block
            .iter()
            .filter(|(b, _)| **b >= lo_block && **b < hi_block)
            .map(|(_, (a, _, _, _))| a)
            .sum()
    }

    /// Maximum reuse distance observed in `[lo_block, hi_block)` — the
    /// paper's "Max D" column (Table IX).
    pub fn region_max_distance(&self, lo_block: u64, hi_block: u64) -> u64 {
        self.per_block
            .iter()
            .filter(|(b, _)| **b >= lo_block && **b < hi_block)
            .map(|(_, (_, _, _, m))| *m)
            .max()
            .unwrap_or(0)
    }

    /// Distinct blocks touched in `[lo_block, hi_block)`.
    pub fn region_blocks(&self, lo_block: u64, hi_block: u64) -> u64 {
        self.per_block
            .keys()
            .filter(|b| **b >= lo_block && **b < hi_block)
            .count() as u64
    }

    /// Iterate `(block, accesses, mean_distance)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64, f64)> + '_ {
        self.per_block.iter().map(|(b, (a, s, r, _))| {
            let d = if *r == 0 { 0.0 } else { *s as f64 / *r as f64 };
            (*b, *a, d)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memgaze_model::Access;

    fn seq(blocks: &[u64]) -> Vec<Access> {
        blocks
            .iter()
            .enumerate()
            .map(|(i, b)| Access::new(0x400u64, b * 64, i as u64))
            .collect()
    }

    #[test]
    fn simple_reuse_distances() {
        // a b c a: reuse of a at distance 2 (b, c), interval 3.
        let r = analyze_window(&seq(&[1, 2, 3, 1]), BlockSize::CACHE_LINE);
        assert_eq!(r.events.len(), 1);
        assert_eq!(r.events[0].distance, 2);
        assert_eq!(r.events[0].interval, 3);
        assert_eq!(r.unique_blocks, 3);
        assert_eq!(r.max_distance(), 2);
    }

    #[test]
    fn back_to_back_reuse_is_distance_zero() {
        let r = analyze_window(&seq(&[5, 5, 5]), BlockSize::CACHE_LINE);
        assert_eq!(r.events.len(), 2);
        assert!(r.events.iter().all(|e| e.distance == 0 && e.interval == 1));
        assert_eq!(r.mean_distance(), 0.0);
        assert_eq!(r.mean_interval(), 1.0);
    }

    #[test]
    fn stack_distance_counts_unique_not_total() {
        // a b b b a: interval 4 but only one distinct block between.
        let r = analyze_window(&seq(&[1, 2, 2, 2, 1]), BlockSize::CACHE_LINE);
        let a_reuse = r.events.iter().find(|e| e.block == 1).unwrap();
        assert_eq!(a_reuse.interval, 4);
        assert_eq!(a_reuse.distance, 1);
    }

    #[test]
    fn matches_naive_oracle_on_patterns() {
        let patterns: Vec<Vec<u64>> = vec![
            vec![],
            vec![7],
            vec![1, 2, 3, 4, 1, 2, 3, 4],
            vec![1, 1, 2, 1, 3, 1, 4, 1],
            (0..64).map(|i| i % 8).collect(),
            (0..100).map(|i| (i * 37) % 11).collect(),
        ];
        for p in patterns {
            let a = seq(&p);
            let fast = analyze_window(&a, BlockSize::CACHE_LINE);
            let slow = analyze_window_naive(&a, BlockSize::CACHE_LINE);
            assert_eq!(fast, slow, "pattern {p:?}");
        }
    }

    #[test]
    fn reuse_fraction() {
        let r = analyze_window(&seq(&[1, 2, 1, 2]), BlockSize::CACHE_LINE);
        assert!((r.reuse_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(analyze_window(&[], BlockSize::CACHE_LINE).reuse_fraction(), 0.0);
    }

    #[test]
    fn block_reuse_region_queries() {
        let a = seq(&[10, 11, 10, 20, 20, 11]);
        let r = analyze_window(&a, BlockSize::CACHE_LINE);
        let br = BlockReuse::from_analysis(&a, BlockSize::CACHE_LINE, &r);
        assert_eq!(br.region_accesses(10, 12), 4);
        assert_eq!(br.region_accesses(20, 21), 2);
        assert_eq!(br.region_blocks(10, 21), 3);
        // Block 20's reuse is back-to-back: D=0.
        assert_eq!(br.region_mean_distance(20, 21), 0.0);
        // Block 10 reused at distance 1; block 11 at distance 2.
        let d = br.region_mean_distance(10, 12);
        assert!((d - 1.5).abs() < 1e-12, "d={d}");
    }

    #[test]
    fn block_reuse_merge_accumulates() {
        let a1 = seq(&[1, 2, 1]);
        let a2 = seq(&[1, 3, 1]);
        let r1 = analyze_window(&a1, BlockSize::CACHE_LINE);
        let r2 = analyze_window(&a2, BlockSize::CACHE_LINE);
        let mut b = BlockReuse::from_analysis(&a1, BlockSize::CACHE_LINE, &r1);
        b.merge(&BlockReuse::from_analysis(&a2, BlockSize::CACHE_LINE, &r2));
        assert_eq!(b.region_accesses(1, 2), 4);
        assert_eq!(b.region_blocks(0, 100), 3);
    }
}
