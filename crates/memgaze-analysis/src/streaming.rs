//! Incremental (streaming) trace analysis over shard frames.
//!
//! The resident [`Analyzer`](crate::Analyzer) assumes the whole
//! `SampledTrace` is in memory before any pass runs. This module
//! consumes a trace one shard of samples at a time — e.g. straight off
//! a [`ShardReader`](memgaze_model::ShardReader) — and folds per-shard
//! partial artifacts with the same order-preserving merges the resident
//! passes use, so the final [`StreamingReport`] is **bit-identical** to
//! the resident results for any shard size and worker count, while
//! holding only one decoded shard plus O(partials) state.
//!
//! The merge laws that make this exact:
//!
//! * integer accumulations (access counts, footprint set unions,
//!   histogram bins) are associative, so any shard grouping agrees;
//! * every `f64` reduction folds *per-sample* terms in global sample
//!   order — never per-shard subtotals — reproducing the resident fold
//!   addition for addition;
//! * [`BlockReuse::merge`] is the pairwise form of
//!   [`BlockReuse::from_parts`], which the resident pass uses;
//! * per-function exact reuse distances cross shard boundaries via
//!   [`ReuseTracker`], an incremental engine whose event sequence (and
//!   thus integer distance sum) matches
//!   [`reuse::analyze_window`](crate::reuse::analyze_window) on the
//!   concatenated stream.
//!
//! The same laws extend across *processes*: a shard range's partials
//! can be snapshotted into a [`PartialReport`](crate::fanout::PartialReport)
//! and merged in shard order by the fan-out coordinator (see
//! [`fanout`](crate::fanout)), with [`finish`](StreamingAnalyzer::finish)
//! itself implemented as `into_partial().finish(..)` so resident
//! streaming and fan-out share one fold path.
//!
//! Artifacts that need the whole trace by construction (location zoom,
//! window series keyed on the global κ, time-range heatmaps) are out of
//! scope here; run them on a resident trace, optionally seeding the
//! analyzer with [`Analyzer::with_streamed_artifacts`] so everything
//! already merged is served from the cache.

use crate::analyzer::{AnalysisConfig, FunctionRow, IntervalRow, RegionRow};
use crate::diagnostics::FootprintDiagnostics;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::histogram::{locality_sample_partial, LocalityPoint, Log2Histogram};
use crate::par;
use crate::reuse::{self, BlockReuse};
use memgaze_model::{
    AuxAnnotations, BlockSize, DecompressionInfo, LoadClass, Sample, SampledTrace, SymbolTable,
    TraceMeta,
};
use serde::{Deserialize, Serialize};

/// Ingest accounting of a streaming pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestStats {
    /// Shards ingested.
    pub shards: u64,
    /// Samples ingested.
    pub samples: u64,
    /// Partial-artifact merge events (one per shard-level fold).
    pub merge_events: u64,
    /// Largest shard seen, in samples.
    pub peak_shard_samples: usize,
    /// Largest shard seen, in decoded access bytes — the peak trace
    /// memory a streaming consumer holds at once.
    pub peak_shard_bytes: usize,
}

impl IngestStats {
    /// Roll another pass's accounting into this one: counters add,
    /// peaks take the max — the fan-out coordinator's per-worker
    /// rollup.
    pub fn merge(&mut self, other: &IngestStats) {
        self.shards += other.shards;
        self.samples += other.samples;
        self.merge_events += other.merge_events;
        self.peak_shard_samples = self.peak_shard_samples.max(other.peak_shard_samples);
        self.peak_shard_bytes = self.peak_shard_bytes.max(other.peak_shard_bytes);
    }
}

/// Per-sample reuse summary retained for interval rows: enough to
/// replay the resident `Σ mean·count / Σ count` fold exactly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub(crate) struct SampleReuseSummary {
    pub(crate) events: usize,
    pub(crate) mean_d: f64,
}

/// Incremental exact reuse-distance tracker over an unbounded block
/// stream, O(distinct blocks) memory.
///
/// Feeding the concatenation of a function's accesses (one
/// [`feed`](Self::feed) per access, in order) produces the same event
/// count and the same integer distance sum as
/// [`reuse::analyze_window`] over the whole slice, so
/// [`mean_distance`](Self::mean_distance) is bit-identical — including
/// across shard boundaries, which a windowed analysis cannot see.
///
/// Positions live in a Fenwick tree indexed by a monotonically growing
/// slot counter; when the slots fill up, live markers (one per distinct
/// block) are compacted order-preservingly, which leaves every
/// between-marker count — and hence every distance — unchanged.
///
/// Beyond the running sums, the tracker records its blocks in
/// first-touch order ([`first_touch_order`](Self::first_touch_order))
/// and can report them in last-access order
/// ([`lru_order`](Self::lru_order)); together these summarize the
/// stream well enough that two trackers over adjacent stream segments
/// merge *exactly* — see
/// [`ReusePartial`](crate::fanout::ReusePartial).
pub struct ReuseTracker {
    fen: Vec<i64>,
    last: FxHashMap<u64, usize>,
    next_slot: usize,
    cap: usize,
    events: u64,
    dist_sum: u64,
    firsts: Vec<u64>,
    /// Live-marker scratch reused across compaction rounds.
    live_scratch: Vec<(u64, usize)>,
}

impl Default for ReuseTracker {
    fn default() -> Self {
        ReuseTracker::new()
    }
}

impl ReuseTracker {
    /// A tracker with the default slot capacity.
    pub fn new() -> ReuseTracker {
        ReuseTracker::with_slot_capacity(1024)
    }

    /// A tracker that compacts after `cap` slots — exposed so tests can
    /// force frequent compactions.
    pub fn with_slot_capacity(cap: usize) -> ReuseTracker {
        let cap = cap.max(2);
        ReuseTracker {
            fen: vec![0; cap + 1],
            last: FxHashMap::default(),
            next_slot: 0,
            cap,
            events: 0,
            dist_sum: 0,
            firsts: Vec::new(),
            live_scratch: Vec::new(),
        }
    }

    /// Return to the fresh state while keeping every allocation (Fenwick
    /// array, marker map, scratch), so one tracker can serve many replay
    /// rounds without churning the allocator.
    pub fn reset(&mut self) {
        self.fen.clear();
        self.fen.resize(self.cap + 1, 0);
        self.last.clear();
        self.next_slot = 0;
        self.events = 0;
        self.dist_sum = 0;
        self.firsts.clear();
    }

    /// Grow the slot window of a fresh (or just-reset) tracker so the
    /// next `n` feeds run without compaction. Capacity never changes
    /// results (compaction preserves every distance); this only avoids
    /// the work.
    pub fn reserve_slots(&mut self, n: usize) {
        debug_assert_eq!(self.next_slot, 0, "reserve requires a fresh tracker");
        while self.cap < n {
            self.cap *= 2;
        }
        self.fen.clear();
        self.fen.resize(self.cap + 1, 0);
    }

    /// Seed a fresh tracker with blocks known to be pairwise distinct, in
    /// first-touch order. Equivalent to feeding each block once, but the
    /// Fenwick tree is built in one O(cap) pass instead of n point
    /// updates. The partial-merge replay uses this for its LRU prefix,
    /// which is distinct by construction.
    pub fn preload_distinct(&mut self, blocks: &[u64]) {
        debug_assert_eq!(self.next_slot, 0, "preload requires a fresh tracker");
        debug_assert_eq!(self.events, 0, "preload requires a fresh tracker");
        let n = blocks.len();
        if n == 0 {
            return;
        }
        // Same doubling a feed loop would have performed at each
        // compaction, so the resulting capacity matches feeding exactly.
        while self.cap < n {
            self.cap *= 2;
        }
        self.rebuild_fen_for_prefix(n);
        self.last.reserve(n);
        for (i, &b) in blocks.iter().enumerate() {
            self.last.insert(b, i);
        }
        self.firsts.extend_from_slice(blocks);
        self.next_slot = n;
    }

    fn add(&mut self, pos: usize, delta: i64) {
        let mut i = pos + 1;
        while i < self.fen.len() {
            self.fen[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    fn prefix(&self, pos: usize) -> i64 {
        let mut i = pos + 1;
        let mut s = 0i64;
        while i > 0 {
            s += self.fen[i];
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Observe the next block in the stream.
    pub fn feed(&mut self, block: u64) {
        if self.next_slot == self.cap {
            self.compact();
        }
        let pos = self.next_slot;
        self.next_slot += 1;
        match self.last.get(&block).copied() {
            Some(prev) => {
                // Distinct blocks touched strictly between the previous
                // access to this block and now — same definition as
                // `analyze_window`, queried before the marker moves.
                let distance = if pos > prev + 1 {
                    (self.prefix(pos - 1) - self.prefix(prev)) as u64
                } else {
                    0
                };
                self.events += 1;
                self.dist_sum += distance;
                self.add(prev, -1);
                self.add(pos, 1);
                self.last.insert(block, pos);
            }
            None => {
                self.add(pos, 1);
                self.last.insert(block, pos);
                self.firsts.push(block);
            }
        }
    }

    /// Remap live markers onto consecutive slots, preserving order. The
    /// marker list and Fenwick array are reused across rounds, and the
    /// Fenwick tree is rebuilt in one O(cap) pass from the "markers
    /// occupy slots 0..n" shape instead of n point updates.
    fn compact(&mut self) {
        let mut live = std::mem::take(&mut self.live_scratch);
        live.clear();
        live.extend(self.last.iter().map(|(&b, &s)| (b, s)));
        live.sort_unstable_by_key(|&(_, slot)| slot);
        if live.len() * 2 > self.cap {
            self.cap *= 2;
        }
        self.rebuild_fen_for_prefix(live.len());
        self.last.clear();
        self.next_slot = live.len();
        for (i, &(block, _)) in live.iter().enumerate() {
            self.last.insert(block, i);
        }
        self.live_scratch = live;
    }

    /// Set the Fenwick array to the state where slots `0..n` each hold
    /// exactly one marker: node `i` (1-based) covers slots
    /// `[i - lowbit(i), i)`, so its value is how much of that range lies
    /// below `n`. Identical to `add(pos, 1)` for every `pos < n`.
    fn rebuild_fen_for_prefix(&mut self, n: usize) {
        self.fen.clear();
        self.fen.resize(self.cap + 1, 0);
        for i in 1..=self.cap {
            let lo = i - (i & i.wrapping_neg());
            self.fen[i] = (i.min(n) - lo.min(n)) as i64;
        }
    }

    /// Reuse events observed so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Integer sum of all event distances so far.
    pub fn distance_sum(&self) -> u64 {
        self.dist_sum
    }

    /// Distinct blocks in the order they were first fed.
    pub fn first_touch_order(&self) -> &[u64] {
        &self.firsts
    }

    /// Distinct blocks in last-access order (least recently fed
    /// first). Compaction preserves relative slot order, so sorting the
    /// live markers by slot recovers the true last-access order even
    /// across any number of compactions.
    pub fn lru_order(&self) -> Vec<u64> {
        let mut live: Vec<(u64, usize)> = self.last.iter().map(|(&b, &s)| (b, s)).collect();
        live.sort_unstable_by_key(|&(_, slot)| slot);
        live.into_iter().map(|(b, _)| b).collect()
    }

    /// Mean reuse distance so far (0 when no reuse occurred), identical
    /// to `ReuseAnalysis::mean_distance` over the same stream.
    pub fn mean_distance(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.dist_sum as f64 / self.events as f64
        }
    }
}

/// Per-function accumulators mirroring what the resident function table
/// derives from a whole code window.
struct FuncState {
    id: u32,
    name: String,
    all: FxHashSet<u64>,
    strided: FxHashSet<u64>,
    irregular: FxHashSet<u64>,
    observed: u64,
    implied_const: u64,
    tracker: ReuseTracker,
    /// Per-sample footprint observations, in sample order.
    obs: Vec<f64>,
    /// Footprint blocks of the sample currently being ingested.
    cur: FxHashSet<u64>,
}

impl FuncState {
    fn new(id: u32, name: &str) -> FuncState {
        FuncState {
            id,
            name: name.to_string(),
            all: FxHashSet::default(),
            strided: FxHashSet::default(),
            irregular: FxHashSet::default(),
            observed: 0,
            implied_const: 0,
            tracker: ReuseTracker::new(),
            obs: Vec::new(),
            cur: FxHashSet::default(),
        }
    }
}

/// Streaming counterpart of the resident [`Analyzer`](crate::Analyzer):
/// feed shards in trace order via [`ingest_shard`](Self::ingest_shard),
/// then [`finish`](Self::finish) into a [`StreamingReport`].
pub struct StreamingAnalyzer<'a> {
    annots: &'a AuxAnnotations,
    symbols: &'a SymbolTable,
    cfg: AnalysisConfig,
    locality_sizes: Vec<u64>,
    num_samples: u64,
    observed: u64,
    implied_const: u64,
    per_sample_diags: Vec<FootprintDiagnostics>,
    per_sample_reuse: Vec<SampleReuseSummary>,
    block_reuse: BlockReuse,
    histogram: Log2Histogram,
    /// Per locality size, one `(windows, Σd, Σg, Σf)` row *per sample*,
    /// retained (not pre-summed) so fan-out merges concatenate rows and
    /// the final fold runs once, in global sample order — `f64` sums of
    /// per-shard subtotals would not be associative.
    locality: Vec<Vec<(u64, f64, f64, f64)>>,
    /// Per-function accumulators in first-seen order; the hot loop
    /// reaches them by slot index (via `ip_cache`), never by key lookup.
    /// `into_partial` re-keys by function id into a `BTreeMap`, so this
    /// order never reaches the report.
    funcs: Vec<FuncState>,
    /// Function id → slot in `funcs`; consulted only on `ip_cache`
    /// misses.
    func_slots: FxHashMap<u32, usize>,
    stats: IngestStats,
    /// Shard-level [`BlockReuse`] summaries not yet folded into
    /// `block_reuse`. Folding is deferred geometrically (see
    /// [`fold_pending_block_reuse`](Self::fold_pending_block_reuse)) so
    /// the O(n log n) index rebuild runs O(log shards) times instead of
    /// once per shard; `BlockReuse::from_parts` equals any pairwise
    /// merge order, so the report stays bit-identical.
    pending_block_reuse: Vec<BlockReuse>,
    /// Total entries across `pending_block_reuse`, driving the fold
    /// threshold.
    pending_blocks: usize,
    /// Per-IP memo of `(function slot, load class, implied-const
    /// weight)`, replacing three map/range lookups per access with one
    /// hash probe — and, because it memoizes the *slot*, the per-access
    /// function lookup becomes a vector index instead of a second hash
    /// probe. Annotations and symbols are borrowed immutably for the
    /// analyzer's lifetime, so entries can never go stale.
    ip_cache: FxHashMap<memgaze_model::Ip, (usize, LoadClass, u64)>,
}

impl<'a> StreamingAnalyzer<'a> {
    /// A streaming analyzer over the given annotations and symbols.
    pub fn new(
        annots: &'a AuxAnnotations,
        symbols: &'a SymbolTable,
        cfg: AnalysisConfig,
    ) -> StreamingAnalyzer<'a> {
        StreamingAnalyzer {
            annots,
            symbols,
            cfg,
            locality_sizes: Vec::new(),
            num_samples: 0,
            observed: 0,
            implied_const: 0,
            per_sample_diags: Vec::new(),
            per_sample_reuse: Vec::new(),
            block_reuse: BlockReuse::default(),
            histogram: Log2Histogram::new(),
            locality: Vec::new(),
            funcs: Vec::new(),
            func_slots: FxHashMap::default(),
            stats: IngestStats::default(),
            pending_block_reuse: Vec::new(),
            pending_blocks: 0,
            ip_cache: FxHashMap::default(),
        }
    }

    /// Also accumulate the locality-vs-interval series for these sizes
    /// (must be set before the first shard).
    pub fn with_locality_sizes(mut self, sizes: &[u64]) -> StreamingAnalyzer<'a> {
        assert_eq!(self.stats.shards, 0, "set locality sizes before ingesting");
        self.locality_sizes = sizes.to_vec();
        self.locality = vec![Vec::new(); sizes.len()];
        self
    }

    /// Ingest the next shard of samples, which must continue the trace's
    /// global time order. The per-sample heavy analyses run in parallel
    /// (`cfg.threads`); all folds happen sequentially in sample order.
    pub fn ingest_shard(&mut self, samples: &[Sample]) {
        let mut span = memgaze_obs::span("streaming.ingest_shard");
        if span.is_active() {
            span.set_label(format!(
                "shard {} ({} samples)",
                self.stats.shards,
                samples.len()
            ));
        }
        let rb = self.cfg.reuse_block;
        let fb = self.cfg.footprint_block;
        let annots = self.annots;
        let sizes = &self.locality_sizes;
        let arts = par::par_map(samples, self.cfg.threads, |s| {
            let r = reuse::analyze_window(&s.accesses, rb);
            let diag = FootprintDiagnostics::compute(&s.accesses, annots, fb);
            let part = BlockReuse::from_analysis(&s.accesses, rb, &r);
            let loc: Vec<(u64, f64, f64, f64)> = sizes
                .iter()
                .map(|&size| locality_sample_partial(&s.accesses, annots, rb, size.max(1) as usize))
                .collect();
            (r, diag, part, loc)
        });

        let mut shard_bytes = 0usize;
        let mut parts = Vec::with_capacity(samples.len());
        for (s, (r, diag, part, loc)) in samples.iter().zip(arts) {
            shard_bytes += std::mem::size_of_val(s.accesses.as_slice());
            self.num_samples += 1;
            self.observed += diag.observed;
            self.implied_const += diag.implied_const;
            for e in &r.events {
                self.histogram.insert(e.distance);
            }
            self.per_sample_reuse.push(SampleReuseSummary {
                events: r.events.len(),
                mean_d: r.mean_distance(),
            });
            self.per_sample_diags.push(diag);
            parts.push(part);
            for (rows, p) in self.locality.iter_mut().zip(loc) {
                rows.push(p);
            }
            self.ingest_sample_functions(s);
        }
        // One shard-level BlockReuse merge event: `from_parts` over the
        // shard equals folding per-sample merges, and merging shard
        // summaries equals `from_parts` over everything (integer
        // absorption is associative). The shard summary is queued rather
        // than merged into the global summary here — rebuilding the
        // global index once per shard was the top streaming hotspot —
        // and folded geometrically in `fold_pending_block_reuse`.
        if !parts.is_empty() {
            let shard_summary = if parts.len() == 1 {
                parts.pop().expect("len checked")
            } else {
                // Queued, never queried: skip the index build.
                BlockReuse::from_parts_unindexed(parts)
            };
            self.pending_blocks += shard_summary.len();
            self.pending_block_reuse.push(shard_summary);
            if self.pending_blocks > 4096.max(2 * self.block_reuse.len()) {
                self.fold_pending_block_reuse();
            }
            self.stats.merge_events += 1;
            memgaze_obs::counter!("streaming.merges").add(1);
        }
        self.stats.shards += 1;
        self.stats.samples += samples.len() as u64;
        self.stats.peak_shard_samples = self.stats.peak_shard_samples.max(samples.len());
        self.stats.peak_shard_bytes = self.stats.peak_shard_bytes.max(shard_bytes);
        memgaze_obs::counter!("streaming.shards").add(1);
        memgaze_obs::counter!("streaming.samples").add(samples.len() as u64);
        memgaze_obs::gauge!("streaming.peak_shard_bytes").set_max(shard_bytes as u64);
    }

    /// Fold every queued shard summary into the global `block_reuse` in
    /// one `from_parts` pass (one index rebuild). Grouping is free to
    /// vary: `from_parts` over any partition equals pairwise merges in
    /// any order, so deferring changes nothing in the final report.
    fn fold_pending_block_reuse(&mut self) {
        if self.pending_block_reuse.is_empty() {
            return;
        }
        let _span = memgaze_obs::span("streaming.fold_block_reuse");
        let mut parts = Vec::with_capacity(self.pending_block_reuse.len() + 1);
        if !self.block_reuse.is_empty() {
            parts.push(std::mem::take(&mut self.block_reuse));
        }
        parts.append(&mut self.pending_block_reuse);
        // Intermediate state: only ever re-merged by the next fold or
        // the final one in `into_partial`, so the query index waits.
        self.block_reuse = BlockReuse::from_parts_unindexed(parts);
        self.pending_blocks = 0;
    }

    /// Sequential per-access function pass, mirroring what the resident
    /// code-window grouping + per-function analyses compute.
    fn ingest_sample_functions(&mut self, s: &Sample) {
        let fb = self.cfg.footprint_block;
        let rb = self.cfg.reuse_block;
        for a in &s.accesses {
            let (slot, class, implied) = match self.ip_cache.get(&a.ip) {
                Some(&hit) => hit,
                None => {
                    let (id, name) = match self.symbols.lookup(a.ip) {
                        Some(f) => (f.id.0, f.name.as_str()),
                        None => (u32::MAX, "<unknown>"),
                    };
                    let slot = match self.func_slots.get(&id) {
                        Some(&slot) => slot,
                        None => {
                            self.funcs.push(FuncState::new(id, name));
                            self.func_slots.insert(id, self.funcs.len() - 1);
                            self.funcs.len() - 1
                        }
                    };
                    let info = (
                        slot,
                        self.annots.class_of(a.ip),
                        self.annots.implied_const_of(a.ip),
                    );
                    self.ip_cache.insert(a.ip, info);
                    info
                }
            };
            let st = &mut self.funcs[slot];
            let fb_block = a.addr.block(fb);
            // `cur` dedups within the sample: a block already seen this
            // sample is in `all` already. Class sets stay unconditional
            // — two ips of *different* classes can hit the same block,
            // and each class must still record it.
            if st.cur.insert(fb_block) {
                st.all.insert(fb_block);
            }
            match class {
                LoadClass::Strided => {
                    st.strided.insert(fb_block);
                }
                LoadClass::Irregular => {
                    st.irregular.insert(fb_block);
                }
                LoadClass::Constant => {}
            }
            st.implied_const += implied;
            st.observed += 1;
            st.tracker.feed(a.addr.block(rb));
        }
        // A non-empty `cur` marks exactly the functions this sample
        // touched; iterating the accumulators directly (instead of a
        // side list of touched ids) makes the invariant hold by
        // construction — there is no id list to fall out of sync with
        // `funcs`.
        for st in self.funcs.iter_mut() {
            if !st.cur.is_empty() {
                st.obs.push(st.cur.len() as f64);
                st.cur.clear();
            }
        }
    }

    /// Ingest accounting so far.
    pub fn stats(&self) -> &IngestStats {
        &self.stats
    }

    /// Snapshot everything accumulated so far into a mergeable
    /// [`PartialReport`](crate::fanout::PartialReport). The partial of
    /// a shard range is exactly what a fan-out worker ships back to the
    /// coordinator.
    pub fn into_partial(mut self) -> crate::fanout::PartialReport {
        let _span = memgaze_obs::span("streaming.into_partial");
        // Final fold, always through the *indexed* `from_parts`: every
        // earlier fold skipped the query index, so the last one must
        // (re)build it even when nothing is pending.
        {
            let mut parts = Vec::with_capacity(self.pending_block_reuse.len() + 1);
            if !self.block_reuse.is_empty() {
                parts.push(std::mem::take(&mut self.block_reuse));
            }
            parts.append(&mut self.pending_block_reuse);
            self.block_reuse = BlockReuse::from_parts(parts);
            self.pending_blocks = 0;
        }
        let funcs = self
            .funcs
            .into_iter()
            .map(|st| {
                let sort = |set: FxHashSet<u64>| {
                    let mut v: Vec<u64> = set.into_iter().collect();
                    v.sort_unstable();
                    v
                };
                let reuse = crate::fanout::ReusePartial::from_tracker(&st.tracker);
                let all = sort(st.all);
                // Every class set is a subset of `all` (the hot loop
                // inserts into `all` for every first touch), so equal
                // cardinality means set equality — the sorted vector is
                // then a straight copy instead of another O(n log n)
                // sort. Functions dominated by one class (the common
                // case) skip their big class sort entirely.
                let sorted_class = |set: FxHashSet<u64>, all: &[u64]| {
                    if set.len() == all.len() {
                        all.to_vec()
                    } else {
                        sort(set)
                    }
                };
                let strided = sorted_class(st.strided, &all);
                let irregular = sorted_class(st.irregular, &all);
                (
                    st.id,
                    crate::fanout::FuncPartial {
                        name: st.name,
                        all,
                        strided,
                        irregular,
                        observed: st.observed,
                        implied_const: st.implied_const,
                        reuse,
                        obs: st.obs,
                    },
                )
            })
            .collect();
        crate::fanout::PartialReport {
            footprint_block: self.cfg.footprint_block,
            reuse_block: self.cfg.reuse_block,
            locality_sizes: self.locality_sizes,
            num_samples: self.num_samples,
            observed: self.observed,
            implied_const: self.implied_const,
            per_sample_diags: self.per_sample_diags,
            per_sample_reuse: self.per_sample_reuse,
            locality: self.locality,
            block_reuse: self.block_reuse,
            histogram: self.histogram,
            funcs,
            stats: self.stats,
        }
    }

    /// Fold the accumulated partials into the final report. `meta` is
    /// the trace metadata (with trailer-patched totals when reading a
    /// sharded container).
    ///
    /// Implemented as `into_partial().finish(meta)` so the resident
    /// streaming path and the fan-out merge path share one fold,
    /// keeping their reports bit-identical by construction.
    pub fn finish(self, meta: &TraceMeta) -> StreamingReport {
        self.into_partial().finish(meta)
    }
}

/// Merged artifacts of a streaming pass. Every field and derived table
/// is bit-identical to its resident [`Analyzer`](crate::Analyzer)
/// counterpart for the same trace and configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamingReport {
    /// ρ/κ decompression facts (== `Analyzer::decompression`).
    pub decompression: DecompressionInfo,
    /// Function table (== `Analyzer::function_table`).
    pub function_rows: Vec<FunctionRow>,
    /// Trace-wide block reuse summary (== `Analyzer::block_reuse`).
    pub block_reuse: BlockReuse,
    /// Reuse-distance histogram over samples (==
    /// `reuse_histogram_from(Analyzer::sample_reuse())`).
    pub reuse_histogram: Log2Histogram,
    /// Locality-vs-interval series (== `Analyzer::locality_series`) for
    /// the configured sizes.
    pub locality_series: Vec<LocalityPoint>,
    /// Ingest accounting (shards, merges, peak shard memory).
    pub ingest: IngestStats,
    pub(crate) footprint_block: BlockSize,
    pub(crate) reuse_block: BlockSize,
    pub(crate) per_sample_diags: Vec<FootprintDiagnostics>,
    pub(crate) per_sample_reuse: Vec<SampleReuseSummary>,
}

impl StreamingReport {
    /// Locality over time, replaying the resident
    /// [`Analyzer::interval_rows`](crate::Analyzer::interval_rows) fold
    /// from the retained per-sample summaries.
    pub fn interval_rows(&self, n: usize) -> Vec<IntervalRow> {
        if self.per_sample_diags.is_empty() || n == 0 {
            return Vec::new();
        }
        let rho = self.decompression.rho();
        let fb = self.footprint_block;
        let per_interval = self.per_sample_diags.len().div_ceil(n);
        self.per_sample_diags
            .chunks(per_interval)
            .zip(self.per_sample_reuse.chunks(per_interval))
            .enumerate()
            .map(|(i, (dgroup, rgroup))| {
                let mut diag: Option<FootprintDiagnostics> = None;
                for d in dgroup {
                    match &mut diag {
                        Some(m) => m.merge(d),
                        None => diag = Some(*d),
                    }
                }
                let mut d_sum = 0.0;
                let mut d_n = 0u64;
                for r in rgroup {
                    if r.events > 0 {
                        d_sum += r.mean_d * r.events as f64;
                        d_n += r.events as u64;
                    }
                }
                let diag = diag.unwrap_or_default();
                IntervalRow {
                    interval: i,
                    f_hat_bytes: rho * diag.footprint as f64 * fb.bytes() as f64,
                    delta_f: diag.delta_f(),
                    mean_d: if d_n == 0 { 0.0 } else { d_sum / d_n as f64 },
                    accesses_decompressed: diag.kappa * diag.observed as f64,
                }
            })
            .collect()
    }

    /// Reuse metrics of an address region (==
    /// [`Analyzer::region_row_for`](crate::Analyzer::region_row_for),
    /// sans code attribution, which needs the resident access stream).
    pub fn region_row_for(&self, lo: u64, hi: u64) -> RegionRow {
        let rb = self.reuse_block;
        let lo_b = lo >> rb.log2();
        let hi_b = (hi + rb.bytes() - 1) >> rb.log2();
        let accesses = self.block_reuse.region_accesses(lo_b, hi_b);
        let total = self.decompression.observed;
        RegionRow {
            range: (lo, hi),
            reuse_d: self.block_reuse.region_mean_distance(lo_b, hi_b),
            max_d: self.block_reuse.region_max_distance(lo_b, hi_b),
            blocks: self.block_reuse.region_blocks(lo_b, hi_b),
            accesses,
            pct_of_total: if total == 0 {
                0.0
            } else {
                100.0 * accesses as f64 / total as f64
            },
            code: Vec::new(),
        }
    }
}

/// Convenience: stream a resident trace through a [`StreamingAnalyzer`]
/// in `shard_samples`-sized shards. Mostly useful for tests and
/// benchmarks; real streaming callers feed a
/// [`ShardReader`](memgaze_model::ShardReader) instead.
pub fn stream_resident_trace<'a>(
    trace: &SampledTrace,
    annots: &'a AuxAnnotations,
    symbols: &'a SymbolTable,
    cfg: AnalysisConfig,
    locality_sizes: &[u64],
    shard_samples: usize,
) -> StreamingReport {
    let mut sa = StreamingAnalyzer::new(annots, symbols, cfg).with_locality_sizes(locality_sizes);
    for shard in trace.samples.chunks(shard_samples.max(1)) {
        sa.ingest_shard(shard);
    }
    sa.finish(&trace.meta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::Analyzer;
    use crate::histogram::{locality_vs_interval_with, reuse_histogram_from};
    use memgaze_model::{Access, FunctionId, Ip, IpAnnot};

    fn synthetic_setup() -> (SampledTrace, AuxAnnotations, SymbolTable) {
        let mut t = SampledTrace::new(TraceMeta::new("stream-test", 10_000, 16 << 10));
        t.meta.total_loads = 160_000;
        t.meta.total_instrumented_loads = 1600;
        for s in 0..16u64 {
            let base = s * 10_000;
            let mut accesses = Vec::new();
            for i in 0..100u64 {
                // Two code regions: a streaming function and a cyclic one.
                let (ip, addr) = if i % 4 == 0 {
                    (0x500 + (i % 3) * 4, 0x20_0000 + (i % 16) * 64)
                } else {
                    (0x400 + (i % 5) * 4, 0x10_0000 + (s * 100 + i) * 8)
                };
                accesses.push(Access::new(ip, addr, base + i));
            }
            t.push_sample(Sample::new(accesses, base + 100)).unwrap();
        }
        let mut annots = AuxAnnotations::new();
        for k in 0..5u64 {
            let mut an = IpAnnot::of_class(LoadClass::Strided, FunctionId(0));
            an.implied_const = 3;
            annots.insert(Ip(0x400 + k * 4), an);
        }
        annots.insert(
            Ip(0x500),
            IpAnnot::of_class(LoadClass::Irregular, FunctionId(1)),
        );
        let mut constant = IpAnnot::of_class(LoadClass::Constant, FunctionId(1));
        constant.implied_const = 1;
        annots.insert(Ip(0x504), constant);
        let mut symbols = SymbolTable::new();
        symbols.add_function("stream_fn", Ip(0x400), Ip(0x500), "a.c");
        symbols.add_function("cycle_fn", Ip(0x500), Ip(0x600), "a.c");
        (t, annots, symbols)
    }

    #[test]
    fn tracker_matches_windowed_analysis() {
        // A stream with heavy reuse and a tiny slot capacity, forcing
        // many compactions.
        let accesses: Vec<Access> = (0..600u64)
            .map(|i| Access::new(0x400u64, ((i * 7 + i / 13) % 41) * 64, i))
            .collect();
        let bs = BlockSize::CACHE_LINE;
        let r = reuse::analyze_window(&accesses, bs);
        for cap in [2usize, 8, 64, 4096] {
            let mut tr = ReuseTracker::with_slot_capacity(cap);
            for a in &accesses {
                tr.feed(a.addr.block(bs));
            }
            assert_eq!(tr.events(), r.events.len() as u64, "cap {cap}");
            assert_eq!(tr.mean_distance(), r.mean_distance(), "cap {cap}");
        }
    }

    #[test]
    fn report_matches_resident_for_all_shard_sizes_and_threads() {
        let (t, annots, symbols) = synthetic_setup();
        let sizes = [8u64, 32];
        let cfg = AnalysisConfig::default();
        let resident =
            Analyzer::new(&t, &annots, &symbols).with_config(AnalysisConfig { threads: 1, ..cfg });
        let res_hist = reuse_histogram_from(resident.sample_reuse());
        let res_loc = locality_vs_interval_with(&t, &annots, cfg.reuse_block, &sizes, 1);
        for shard in [1usize, 3, 7, 16, 64] {
            for threads in [1usize, 4] {
                let report = stream_resident_trace(
                    &t,
                    &annots,
                    &symbols,
                    AnalysisConfig { threads, ..cfg },
                    &sizes,
                    shard,
                );
                let tag = format!("shard {shard} threads {threads}");
                assert_eq!(report.decompression, resident.decompression(), "{tag}");
                assert_eq!(report.function_rows, resident.function_table(), "{tag}");
                assert_eq!(&report.block_reuse, resident.block_reuse(), "{tag}");
                assert_eq!(report.reuse_histogram, res_hist, "{tag}");
                assert_eq!(report.locality_series, res_loc, "{tag}");
                for n in [1usize, 3, 8] {
                    assert_eq!(report.interval_rows(n), resident.interval_rows(n), "{tag}");
                }
                let row = report.region_row_for(0x10_0000, 0x10_4000);
                let mut want = resident.region_row_for(0x10_0000, 0x10_4000);
                want.code = Vec::new();
                assert_eq!(row, want, "{tag}");
            }
        }
    }

    #[test]
    fn empty_trace_matches_resident() {
        let t = SampledTrace::new(TraceMeta::new("empty", 1000, 4096));
        let annots = AuxAnnotations::new();
        let symbols = SymbolTable::new();
        let cfg = AnalysisConfig::default();
        let report = stream_resident_trace(&t, &annots, &symbols, cfg, &[8], 4);
        let resident = Analyzer::new(&t, &annots, &symbols);
        assert_eq!(report.decompression, resident.decompression());
        assert_eq!(report.function_rows, resident.function_table());
        assert_eq!(&report.block_reuse, resident.block_reuse());
        assert!(report.locality_series.is_empty());
        assert!(report.interval_rows(4).is_empty());
        assert_eq!(report.ingest.merge_events, 0);
    }

    #[test]
    fn ingest_stats_track_shards_and_peaks() {
        let (t, annots, symbols) = synthetic_setup();
        let report =
            stream_resident_trace(&t, &annots, &symbols, AnalysisConfig::default(), &[], 5);
        assert_eq!(report.ingest.shards, 4); // 16 samples / 5 per shard
        assert_eq!(report.ingest.samples, 16);
        assert_eq!(report.ingest.merge_events, 4);
        assert_eq!(report.ingest.peak_shard_samples, 5);
        assert_eq!(
            report.ingest.peak_shard_bytes,
            5 * 100 * std::mem::size_of::<Access>()
        );
    }

    #[test]
    fn seeded_analyzer_serves_merged_artifacts() {
        let (t, annots, symbols) = synthetic_setup();
        let report =
            stream_resident_trace(&t, &annots, &symbols, AnalysisConfig::default(), &[], 4);
        let a = Analyzer::new(&t, &annots, &symbols).with_streamed_artifacts(&report);
        let stats = a.cache_stats();
        assert_eq!(stats.merges, 3);
        // Seeded slots are served without recomputation...
        let _ = a.decompression();
        let _ = a.function_table();
        let _ = a.region_rows();
        let stats = a.cache_stats();
        assert_eq!(stats.merges, 3);
        assert_eq!(stats.decompression, 0);
        assert_eq!(stats.function_rows, 0);
        assert_eq!(stats.block_reuse, 0);
        // ...and agree with a fresh resident analyzer.
        let fresh = Analyzer::new(&t, &annots, &symbols);
        assert_eq!(a.function_table(), fresh.function_table());
        assert_eq!(a.decompression(), fresh.decompression());
    }
}
