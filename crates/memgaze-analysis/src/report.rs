//! Report rendering: ASCII tables and paper-style number formatting
//! (2.3G, 291K, 64.1%).

use serde::{Deserialize, Serialize};

/// Format a value with an SI suffix the way the paper's tables do
/// (e.g. `2.3G`, `291K`, `67.8K`).
pub fn fmt_si(v: f64) -> String {
    let (val, suffix) = if v.abs() >= 1e9 {
        (v / 1e9, "G")
    } else if v.abs() >= 1e6 {
        (v / 1e6, "M")
    } else if v.abs() >= 1e3 {
        (v / 1e3, "K")
    } else {
        (v, "")
    };
    if suffix.is_empty() {
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{}", v as i64)
        } else {
            format!("{v:.2}")
        }
    } else if val.abs() >= 100.0 {
        format!("{val:.0}{suffix}")
    } else {
        format!("{val:.1}{suffix}")
    }
}

/// Format a percentage with one decimal.
pub fn fmt_pct(v: f64) -> String {
    format!("{v:.1}")
}

/// Format a ratio/distance with three decimals (the paper's ΔF and D
/// columns).
pub fn fmt_f3(v: f64) -> String {
    format!("{v:.3}")
}

/// A simple ASCII table.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics when the cell count does not match the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
    }

    /// Render with padded columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&self.title);
            out.push('\n');
        }
        let fmt_line = |cells: &[String], out: &mut String| {
            for i in 0..ncols {
                if i > 0 {
                    out.push_str("  ");
                }
                let c = &cells[i];
                out.push_str(c);
                for _ in c.chars().count()..widths[i] {
                    out.push(' ');
                }
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        fmt_line(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_line(row, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn si_formatting_matches_paper_style() {
        assert_eq!(fmt_si(2.3e9), "2.3G");
        assert_eq!(fmt_si(291_000.0), "291K");
        assert_eq!(fmt_si(67_800.0), "67.8K");
        assert_eq!(fmt_si(3_855_000_000.0), "3.9G");
        assert_eq!(fmt_si(42.0), "42");
        assert_eq!(fmt_si(0.156), "0.16");
    }

    #[test]
    fn numeric_formats() {
        assert_eq!(fmt_pct(66.43), "66.4");
        assert_eq!(fmt_f3(0.1564), "0.156");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", &["Function", "F", "ΔF"]);
        t.push_row(vec!["buildMap".into(), "2.3G".into(), "0.156".into()]);
        t.push_row(vec!["getMax".into(), "0.4G".into(), "0.150".into()]);
        let s = t.render();
        assert!(s.starts_with("Demo\n"));
        let lines: Vec<&str> = s.lines().collect();
        // Title, header, separator, two rows.
        assert_eq!(lines.len(), 5);
        assert!(lines[1].starts_with("Function"));
        assert!(lines[2].starts_with("---"));
        assert!(lines[3].starts_with("buildMap"));
        assert!(lines[4].starts_with("getMax"));
        // Columns align: "F" column starts at the same offset.
        let col = lines[1].find(" F").unwrap();
        assert_eq!(&lines[4][col..col + 1], " ");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }
}
