//! A vendored FxHash-style hasher for the analysis hot paths.
//!
//! The per-window maps (last-access positions, footprint block sets,
//! stride trackers) are keyed by small integers — block numbers and
//! instruction pointers. SipHash's DoS resistance buys nothing there
//! and costs a large constant factor per lookup, so the hot paths use
//! the Firefox/rustc multiply-rotate hash instead: one wrapping
//! multiply and a rotate per 8-byte word. Not DoS-resistant — keep it
//! out of anything fed by untrusted remote input.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The rustc/Firefox "Fx" hash: wrapping multiply + rotate per word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_behave_like_std() {
        let mut fx: FxHashMap<u64, u64> = FxHashMap::default();
        let mut std_map = std::collections::HashMap::new();
        for i in 0..1000u64 {
            let k = i.wrapping_mul(0x9E37_79B9) % 257;
            *fx.entry(k).or_insert(0) += 1;
            *std_map.entry(k).or_insert(0) += 1;
        }
        assert_eq!(fx.len(), std_map.len());
        for (k, v) in &std_map {
            assert_eq!(fx.get(k), Some(v));
        }
    }

    #[test]
    fn sequential_keys_fill_buckets() {
        // Sequential block numbers must not collapse to a few buckets.
        // The odd multiplier is bijective mod any power of two, so the
        // low bits (hashbrown's bucket index) are perfectly spread.
        let mut buckets = std::collections::HashSet::new();
        let mut full = std::collections::HashSet::new();
        for block in 0..4096u64 {
            let mut h = FxHasher::default();
            h.write_u64(block);
            let hash = h.finish();
            buckets.insert(hash & 0xFFF);
            full.insert(hash);
        }
        assert_eq!(
            buckets.len(),
            4096,
            "low-bit bucket index must be bijective"
        );
        assert_eq!(full.len(), 4096, "full hashes must not collide");
    }
}
