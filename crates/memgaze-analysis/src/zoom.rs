//! Location zooming (paper §IV-C2, Fig. 5).
//!
//! Finds memory regions with poor spatio-temporal locality top-down: a
//! region is divided into fixed-size pages; a *hot subregion* is a maximal
//! run of contiguous pages, each with at least one access, whose total is
//! at least `t`% of the region's accesses; the page size shrinks per
//! level and the zoom stops at a minimum region size. The *contiguous*
//! property matters: cold gaps inside a hot region are kept so the reuse
//! distance `D` reflects the locality of the *entire* object.

use crate::fxhash::FxHashMap;
use crate::reuse::BlockReuse;
use memgaze_model::{Access, AuxAnnotations, BlockSize, SymbolTable};
use serde::{Deserialize, Serialize};

/// Zoom parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZoomConfig {
    /// Access-block size for reuse distance `D` (default: cache line).
    pub access_block: BlockSize,
    /// Initial page size (log₂ bytes) used to find subregions.
    pub initial_page_log2: u8,
    /// Minimum page size; reaching it stops the recursion.
    pub min_page_log2: u8,
    /// Page-size shrink per level, in log₂ steps.
    pub shrink_log2: u8,
    /// Hot-subregion threshold `t` as a percentage of the parent
    /// region's accesses.
    pub hot_threshold_pct: f64,
    /// Stop descending once a region is this small (bytes).
    pub min_region_bytes: u64,
    /// Hard recursion depth cap.
    pub max_depth: u32,
}

impl Default for ZoomConfig {
    fn default() -> Self {
        ZoomConfig {
            access_block: BlockSize::CACHE_LINE,
            initial_page_log2: 20, // 1 MiB pages at the top
            min_page_log2: 12,     // stop at 4-KiB pages
            shrink_log2: 2,        // ÷4 per level
            hot_threshold_pct: 10.0,
            min_region_bytes: 4096,
            max_depth: 8,
        }
    }
}

/// Code attributed to a region: function, line, and access count.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionCode {
    /// Function name.
    pub function: String,
    /// Source line of the hottest access site in the region.
    pub line: u32,
    /// Accesses from this function into the region.
    pub accesses: u64,
}

/// A node of the location zoom tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZoomRegion {
    /// Region address range `[lo, hi)`.
    pub lo: u64,
    /// Exclusive upper address.
    pub hi: u64,
    /// Accesses into the region.
    pub accesses: u64,
    /// Percent of the *trace's* total accesses ("hotness").
    pub pct_of_total: f64,
    /// Mean spatio-temporal reuse distance `D` of accesses to the region.
    pub reuse_d: f64,
    /// Distinct access blocks touched in the region.
    pub blocks: u64,
    /// Zoom depth (0 = top-level region).
    pub depth: u32,
    /// Hot subregions (empty at the leaves).
    pub children: Vec<ZoomRegion>,
    /// Code attribution, hottest first.
    pub code: Vec<RegionCode>,
}

impl ZoomRegion {
    /// Accesses per touched block — the paper's "A / block" hotness.
    pub fn accesses_per_block(&self) -> f64 {
        if self.blocks == 0 {
            0.0
        } else {
            self.accesses as f64 / self.blocks as f64
        }
    }

    /// Region size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.hi - self.lo
    }

    /// Depth-first iterator over leaf regions (final zoom results).
    pub fn leaves(&self) -> Vec<&ZoomRegion> {
        let mut out = Vec::new();
        let mut stack = vec![self];
        while let Some(r) = stack.pop() {
            if r.children.is_empty() {
                out.push(r);
            } else {
                stack.extend(r.children.iter());
            }
        }
        out.sort_by_key(|r| r.lo);
        out
    }
}

/// The zoom analysis: accesses plus merged per-block reuse data.
pub struct LocationZoom<'a> {
    accesses: &'a [Access],
    reuse: &'a BlockReuse,
    symbols: &'a SymbolTable,
    annots: Option<&'a AuxAnnotations>,
    cfg: ZoomConfig,
    total_accesses: u64,
}

impl<'a> LocationZoom<'a> {
    /// Prepare a zoom over the given accesses (typically every sampled
    /// access, with `reuse` merged across samples).
    pub fn new(
        accesses: &'a [Access],
        reuse: &'a BlockReuse,
        symbols: &'a SymbolTable,
        cfg: ZoomConfig,
    ) -> LocationZoom<'a> {
        LocationZoom {
            accesses,
            reuse,
            symbols,
            annots: None,
            cfg,
            total_accesses: accesses.len() as u64,
        }
    }

    /// Attach the annotation file so region code attribution carries
    /// source lines (paper Fig. 5's "code (function, line)").
    pub fn with_annotations(mut self, annots: &'a AuxAnnotations) -> LocationZoom<'a> {
        self.annots = Some(annots);
        self
    }

    /// Run the zoom from the full address range; returns the root region
    /// (or `None` for an empty trace).
    ///
    /// The configured initial page size is clamped so the top level sees
    /// at least four pages — a span smaller than one page would otherwise
    /// never be divided.
    pub fn run(&self) -> Option<ZoomRegion> {
        let lo = self.accesses.iter().map(|a| a.addr.raw()).min()?;
        let hi = self.accesses.iter().map(|a| a.addr.raw()).max()? + 1;
        let span = hi - lo;
        let span_log2 = 63 - span.leading_zeros() as u8;
        let page_log2 = self
            .cfg
            .initial_page_log2
            .min(span_log2.saturating_sub(2))
            .max(self.cfg.min_page_log2);
        let idx: Vec<usize> = (0..self.accesses.len()).collect();
        Some(self.zoom_region(lo, hi, &idx, page_log2, 0))
    }

    fn describe(&self, lo: u64, hi: u64, members: &[usize], depth: u32) -> ZoomRegion {
        let bs = self.cfg.access_block;
        let lo_block = lo >> bs.log2();
        let hi_block = (hi + bs.bytes() - 1) >> bs.log2();
        let d = self.reuse.region_mean_distance(lo_block, hi_block);
        let blocks = self.reuse.region_blocks(lo_block, hi_block);

        // Code attribution: accesses per function, hottest line. Names
        // are borrowed from the symbol table until the final rows are
        // built — one allocation per emitted row, not per access.
        let mut per_fn: FxHashMap<&str, (u64, FxHashMap<u32, u64>)> = FxHashMap::default();
        for &i in members {
            let a = &self.accesses[i];
            let name = self
                .symbols
                .lookup(a.ip)
                .map(|f| f.name.as_str())
                .unwrap_or("<unknown>");
            let e = per_fn.entry(name).or_default();
            e.0 += 1;
            let line = self
                .annots
                .and_then(|ax| ax.get(a.ip))
                .map(|an| an.src_line)
                .unwrap_or(0);
            *e.1.entry(line).or_insert(0) += 1;
        }
        let mut code: Vec<RegionCode> = per_fn
            .into_iter()
            .map(|(function, (accesses, lines))| RegionCode {
                function: function.to_string(),
                line: lines
                    .into_iter()
                    .max_by_key(|(_, c)| *c)
                    .map(|(l, _)| l)
                    .unwrap_or(0),
                accesses,
            })
            .collect();
        code.sort_by_key(|c| std::cmp::Reverse(c.accesses));
        code.truncate(4);

        ZoomRegion {
            lo,
            hi,
            accesses: members.len() as u64,
            pct_of_total: if self.total_accesses == 0 {
                0.0
            } else {
                100.0 * members.len() as f64 / self.total_accesses as f64
            },
            reuse_d: d,
            blocks,
            depth,
            children: Vec::new(),
            code,
        }
    }

    fn zoom_region(
        &self,
        lo: u64,
        hi: u64,
        members: &[usize],
        page_log2: u8,
        depth: u32,
    ) -> ZoomRegion {
        let mut region = self.describe(lo, hi, members, depth);
        let page = 1u64 << page_log2;
        let stop = depth >= self.cfg.max_depth
            || page_log2 < self.cfg.min_page_log2
            || (hi - lo) <= self.cfg.min_region_bytes
            || (hi - lo) <= page;
        if stop || members.is_empty() {
            return region;
        }

        // Bucket member accesses into pages.
        let first_page = lo >> page_log2;
        let n_pages = ((hi - 1) >> page_log2) - first_page + 1;
        let mut page_members: Vec<Vec<usize>> = vec![Vec::new(); n_pages as usize];
        for &i in members {
            let p = (self.accesses[i].addr.raw() >> page_log2) - first_page;
            page_members[p as usize].push(i);
        }

        // Maximal runs of contiguous non-empty pages.
        let threshold = (members.len() as f64 * self.cfg.hot_threshold_pct / 100.0).ceil() as usize;
        let mut runs: Vec<(usize, usize)> = Vec::new(); // [start, end) page idx
        let mut run_start: Option<usize> = None;
        for (p, pm) in page_members.iter().enumerate() {
            if pm.is_empty() {
                if let Some(s) = run_start.take() {
                    runs.push((s, p));
                }
            } else if run_start.is_none() {
                run_start = Some(p);
            }
        }
        if let Some(s) = run_start {
            runs.push((s, page_members.len()));
        }

        let next_page_log2 = page_log2
            .saturating_sub(self.cfg.shrink_log2)
            .max(self.cfg.min_page_log2);
        for (s, e) in runs {
            let run_members: Vec<usize> = page_members[s..e].iter().flatten().copied().collect();
            if run_members.len() < threshold.max(1) {
                continue; // not hot enough
            }
            let run_lo = ((first_page + s as u64) << page_log2).max(lo);
            let run_hi = ((first_page + e as u64) << page_log2).min(hi);
            // A run identical to the parent at the minimum page size
            // cannot be divided further — the parent is the leaf.
            if run_lo == lo && run_hi == hi && next_page_log2 >= page_log2 {
                continue;
            }
            let child = self.zoom_region(run_lo, run_hi, &run_members, next_page_log2, depth + 1);
            region.children.push(child);
        }
        region
    }
}

/// Convenience: run the zoom over every sampled access of a trace.
pub fn zoom_trace(
    trace: &memgaze_model::SampledTrace,
    symbols: &SymbolTable,
    cfg: ZoomConfig,
) -> Option<ZoomRegion> {
    zoom_trace_annotated(trace, symbols, None, cfg)
}

/// [`zoom_trace`] with source-line attribution from the annotation file.
pub fn zoom_trace_annotated(
    trace: &memgaze_model::SampledTrace,
    symbols: &SymbolTable,
    annots: Option<&AuxAnnotations>,
    cfg: ZoomConfig,
) -> Option<ZoomRegion> {
    let accesses: Vec<Access> = trace.accesses().copied().collect();
    let parts = crate::par::par_map(&trace.samples, crate::par::default_threads(), |s| {
        let r = crate::reuse::analyze_window(&s.accesses, cfg.access_block);
        BlockReuse::from_analysis(&s.accesses, cfg.access_block, &r)
    });
    let merged = BlockReuse::from_parts(parts);
    let zoom = LocationZoom::new(&accesses, &merged, symbols, cfg);
    match annots {
        Some(ax) => zoom.with_annotations(ax).run(),
        None => zoom.run(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reuse;
    use memgaze_model::{Access, Ip};

    /// Two hot objects far apart: object A at 1 MiB (streamed, poor
    /// locality), object B at 64 MiB (reused heavily).
    fn two_objects() -> Vec<Access> {
        let mut acc = Vec::new();
        let mut t = 0u64;
        let a_base = 1u64 << 20;
        let b_base = 64u64 << 20;
        for rep in 0..4u64 {
            for i in 0..256u64 {
                acc.push(Access::new(Ip(0x100), a_base + (rep * 256 + i) * 64, t));
                t += 1;
            }
            for i in 0..256u64 {
                acc.push(Access::new(Ip(0x200), b_base + (i % 8) * 64, t));
                t += 1;
            }
        }
        acc
    }

    fn zoom_over(acc: &[Access], cfg: ZoomConfig) -> ZoomRegion {
        let r = reuse::analyze_window(acc, cfg.access_block);
        let br = BlockReuse::from_analysis(acc, cfg.access_block, &r);
        let symbols = SymbolTable::new();
        let z = LocationZoom::new(acc, &br, &symbols, cfg);
        z.run().unwrap()
    }

    #[test]
    fn finds_two_hot_subregions() {
        let acc = two_objects();
        let root = zoom_over(&acc, ZoomConfig::default());
        assert_eq!(root.accesses, acc.len() as u64);
        assert!((root.pct_of_total - 100.0).abs() < 1e-9);
        // Two separate hot objects must appear as distinct leaves.
        let leaves = root.leaves();
        assert!(leaves.len() >= 2, "leaves: {}", leaves.len());
        let a_leaf = leaves.iter().find(|r| r.lo < (2 << 20)).unwrap();
        let b_leaf = leaves.iter().find(|r| r.lo >= (63 << 20)).unwrap();
        // A is streamed (1024 distinct blocks, 1 access each); B is
        // reused (8 blocks, 128 accesses each).
        assert!(a_leaf.accesses_per_block() < 2.0);
        assert!(b_leaf.accesses_per_block() > 50.0);
        // B's reuse distance is small: cycling 8 blocks gives D = 7 for
        // most reuses, with a few large cross-phase distances pulling the
        // mean up slightly.
        assert!(b_leaf.reuse_d < 20.0, "D = {}", b_leaf.reuse_d);
    }

    #[test]
    fn threshold_filters_cold_runs() {
        // One hot object plus a single stray access far away: with a 10%
        // threshold the stray page is not a hot subregion.
        let mut acc = two_objects();
        acc.push(Access::new(Ip(0x300), 512u64 << 20, 99_999));
        let root = zoom_over(&acc, ZoomConfig::default());
        let leaves = root.leaves();
        assert!(
            leaves.iter().all(|r| r.accesses > 1),
            "stray access must not become a leaf"
        );
    }

    #[test]
    fn depth_and_page_floor_terminate() {
        let acc = two_objects();
        let cfg = ZoomConfig {
            max_depth: 2,
            ..Default::default()
        };
        let root = zoom_over(&acc, cfg);
        fn max_depth(r: &ZoomRegion) -> u32 {
            r.children.iter().map(max_depth).max().unwrap_or(r.depth)
        }
        assert!(max_depth(&root) <= 2);
    }

    #[test]
    fn children_nest_within_parents() {
        let acc = two_objects();
        let root = zoom_over(&acc, ZoomConfig::default());
        fn check(r: &ZoomRegion) {
            let sum: u64 = r.children.iter().map(|c| c.accesses).sum();
            assert!(sum <= r.accesses, "children exceed parent accesses");
            for c in &r.children {
                assert!(c.lo >= r.lo && c.hi <= r.hi, "child outside parent");
                assert_eq!(c.depth, r.depth + 1);
                check(c);
            }
        }
        check(&root);
    }

    #[test]
    fn annotations_attach_source_lines() {
        use memgaze_model::{AuxAnnotations, FunctionId, IpAnnot, LoadClass};
        let acc = two_objects();
        let r = reuse::analyze_window(&acc, BlockSize::CACHE_LINE);
        let br = BlockReuse::from_analysis(&acc, BlockSize::CACHE_LINE, &r);
        let mut symbols = SymbolTable::new();
        symbols.add_function("streamer", Ip(0x100), Ip(0x200), "w.c");
        symbols.add_function("reuser", Ip(0x200), Ip(0x300), "w.c");
        let mut annots = AuxAnnotations::new();
        let mut a1 = IpAnnot::of_class(LoadClass::Strided, FunctionId(0));
        a1.src_line = 42;
        annots.insert(Ip(0x100), a1);
        let mut a2 = IpAnnot::of_class(LoadClass::Irregular, FunctionId(1));
        a2.src_line = 77;
        annots.insert(Ip(0x200), a2);

        let root = LocationZoom::new(&acc, &br, &symbols, ZoomConfig::default())
            .with_annotations(&annots)
            .run()
            .unwrap();
        let leaves = root.leaves();
        let a_leaf = leaves.iter().find(|r| r.lo < (2 << 20)).unwrap();
        let code = a_leaf
            .code
            .iter()
            .find(|c| c.function == "streamer")
            .unwrap();
        assert_eq!(code.line, 42);
        let b_leaf = leaves.iter().find(|r| r.lo >= (63 << 20)).unwrap();
        let code = b_leaf.code.iter().find(|c| c.function == "reuser").unwrap();
        assert_eq!(code.line, 77);
    }

    #[test]
    fn empty_input_yields_none() {
        let br = BlockReuse::default();
        let symbols = SymbolTable::new();
        let z = LocationZoom::new(&[], &br, &symbols, ZoomConfig::default());
        assert!(z.run().is_none());
    }
}
