//! Partial-report algebra and wire codec for multi-process fan-out.
//!
//! A fan-out coordinator partitions a sharded container's frame ranges
//! across workers (threads or `memgaze analyze-shard` subprocesses);
//! each worker runs a [`StreamingAnalyzer`] over its contiguous range
//! and snapshots it into a [`PartialReport`]
//! ([`StreamingAnalyzer::into_partial`]). The coordinator folds the
//! partials **in shard order** with [`PartialReport::merge`] and calls
//! [`PartialReport::finish`] — the *same* fold the resident streaming
//! path uses — so fan-out reports are bit-identical to the resident
//! [`Analyzer`](crate::Analyzer) for every worker count and shard size.
//!
//! The merge laws, per artifact:
//!
//! * integer counters, footprint set unions, histogram bins, and
//!   [`BlockReuse`] stats are associative — any grouping agrees;
//! * `f64` per-sample rows (diagnostics, reuse summaries, locality
//!   partials) are **concatenated**, never pre-summed, and folded once
//!   at finish in global sample order;
//! * cross-boundary exact reuse distances merge through
//!   [`ReusePartial`]: a segment is summarized by its distinct blocks
//!   in first-touch order and in last-access order plus its integer
//!   event/distance sums, which is exactly enough to replay the
//!   boundary events of two adjacent segments (see
//!   [`ReusePartial::absorb`]).
//!
//! Everything crossing a process boundary uses a hand-rolled,
//! length-prefixed, FNV-checksummed binary codec (varints + `f64` as
//! IEEE-754 bits), because serialization here must round-trip **bit
//! exactly** — JSON would not.

use crate::analyzer::{AnalysisConfig, FunctionRow};
use crate::confidence::Confidence;
use crate::diagnostics::FootprintDiagnostics;
use crate::fxhash::FxHashSet;
use crate::histogram::{LocalityPoint, Log2Histogram};
use crate::reuse::BlockReuse;
use crate::streaming::{
    IngestStats, ReuseTracker, SampleReuseSummary, StreamingAnalyzer, StreamingReport,
};
use memgaze_model::{
    compression_ratio, fnv1a64, AuxAnnotations, BlockSize, DecompressionInfo, FrameIndex,
    FunctionId, Ip, IpAnnot, LoadClass, ModelError, SymbolTable, TraceMeta,
};
use std::collections::BTreeMap;
use std::ops::Range;

const PARTIAL_MAGIC: &[u8; 4] = b"MGZP";
const PARTIAL_VERSION: u16 = 2;
const SPEC_MAGIC: &[u8; 4] = b"MGZS";
const SPEC_VERSION: u16 = 2;

/// Errors of the partial-report algebra and its wire codec.
#[derive(Debug)]
pub enum PartialError {
    /// Wire data ended prematurely.
    Truncated {
        /// What was being decoded when input ran out.
        context: &'static str,
    },
    /// Wire data failed a checksum or structural validation.
    Corrupt {
        /// What was wrong.
        detail: String,
    },
    /// Two partials built under different analysis configurations.
    ConfigMismatch {
        /// What differed.
        detail: String,
    },
}

impl std::fmt::Display for PartialError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartialError::Truncated { context } => {
                write!(f, "truncated fan-out data while decoding {context}")
            }
            PartialError::Corrupt { detail } => write!(f, "corrupt fan-out data: {detail}"),
            PartialError::ConfigMismatch { detail } => {
                write!(f, "partial-report config mismatch: {detail}")
            }
        }
    }
}

impl std::error::Error for PartialError {}

/// Exact-merge summary of a [`ReuseTracker`] over one stream segment.
///
/// `firsts` holds the segment's distinct blocks in first-touch order,
/// `lru` the same set in last-access order; `events`/`dist_sum` are the
/// segment-internal reuse totals. This is precisely the information
/// needed to merge two adjacent segments exactly — see
/// [`absorb`](Self::absorb).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReusePartial {
    pub(crate) firsts: Vec<u64>,
    pub(crate) lru: Vec<u64>,
    pub(crate) events: u64,
    pub(crate) dist_sum: u64,
}

impl ReusePartial {
    /// Snapshot a tracker's state.
    pub fn from_tracker(tracker: &ReuseTracker) -> ReusePartial {
        ReusePartial {
            firsts: tracker.first_touch_order().to_vec(),
            lru: tracker.lru_order(),
            events: tracker.events(),
            dist_sum: tracker.distance_sum(),
        }
    }

    /// Reuse events in the summarized stream.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Mean reuse distance, identical to
    /// [`ReuseTracker::mean_distance`] over the same stream.
    pub fn mean_distance(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.dist_sum as f64 / self.events as f64
        }
    }

    /// Merge the summary of the *immediately following* stream segment
    /// into this one, exactly.
    ///
    /// Boundary events — the first access in `other` to a block already
    /// seen in `self` — are replayed through a fresh tracker: feed
    /// `self.lru` (all distinct, so no events), then `other.firsts` in
    /// order. For such a block `b`, the distinct blocks between its two
    /// accesses in the concatenated stream are (a) the `self` blocks
    /// accessed after `b`'s last `self` access — exactly those behind
    /// it in `self.lru` — and (b) the `other` blocks first touched
    /// before `b` — exactly those fed earlier from `other.firsts`; the
    /// tracker's marker moves dedupe the union. Events wholly inside
    /// either segment are already counted in that segment's sums.
    ///
    /// The merged orderings are built structurally (the replay
    /// tracker's post-state does not see `other`'s internal
    /// reorderings): first-touch order is `self.firsts` then `other`'s
    /// new blocks; last-access order is `self.lru` minus `other`'s
    /// blocks, then `other.lru`.
    pub fn absorb(&mut self, other: &ReusePartial) {
        let mut replay = ReuseTracker::new();
        self.absorb_with(other, &mut replay);
    }

    /// [`absorb`](Self::absorb) with a caller-supplied replay tracker,
    /// so a fold over many functions reuses one set of Fenwick/marker
    /// allocations. The tracker is reset here; any prior state is
    /// discarded. Results are independent of the tracker's capacity
    /// (compaction preserves every distance), so scratch reuse cannot
    /// change the merge.
    pub(crate) fn absorb_with(&mut self, other: &ReusePartial, replay: &mut ReuseTracker) {
        if other.firsts.is_empty() {
            return;
        }
        if self.firsts.is_empty() {
            *self = other.clone();
            return;
        }
        replay.reset();
        // The replay stream is `self.lru` then `other.firsts`; sizing the
        // slot window to cover both makes the whole replay
        // compaction-free, and the all-distinct LRU prefix loads in one
        // O(n) batch instead of n Fenwick point updates.
        replay.reserve_slots(self.lru.len() + other.firsts.len() + 1);
        replay.preload_distinct(&self.lru);
        debug_assert_eq!(replay.events(), 0, "lru blocks are distinct");
        for &b in &other.firsts {
            replay.feed(b);
        }
        let boundary_events = replay.events();
        let boundary_dist = replay.distance_sum();

        let self_blocks: FxHashSet<u64> = self.lru.iter().copied().collect();
        let other_blocks: FxHashSet<u64> = other.lru.iter().copied().collect();
        self.firsts.extend(
            other
                .firsts
                .iter()
                .copied()
                .filter(|b| !self_blocks.contains(b)),
        );
        let mut lru: Vec<u64> = self
            .lru
            .iter()
            .copied()
            .filter(|b| !other_blocks.contains(b))
            .collect();
        lru.extend_from_slice(&other.lru);
        self.lru = lru;
        self.events += other.events + boundary_events;
        self.dist_sum += other.dist_sum + boundary_dist;
    }
}

/// Per-function partial artifacts of one shard range.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncPartial {
    pub(crate) name: String,
    /// Footprint blocks touched, sorted.
    pub(crate) all: Vec<u64>,
    pub(crate) strided: Vec<u64>,
    pub(crate) irregular: Vec<u64>,
    pub(crate) observed: u64,
    pub(crate) implied_const: u64,
    pub(crate) reuse: ReusePartial,
    /// Per-sample footprint observations, in sample order.
    pub(crate) obs: Vec<f64>,
}

impl FuncPartial {
    /// Merge the partial of the immediately following shard range.
    /// `replay` is scratch for the reuse-summary merge, reused across
    /// the per-function fold.
    fn absorb(&mut self, other: FuncPartial, replay: &mut ReuseTracker) {
        union_sorted(&mut self.all, &other.all);
        union_sorted(&mut self.strided, &other.strided);
        union_sorted(&mut self.irregular, &other.irregular);
        self.observed += other.observed;
        self.implied_const += other.implied_const;
        self.reuse.absorb_with(&other.reuse, replay);
        self.obs.extend(other.obs);
    }
}

/// Union of two sorted, deduplicated block lists, by galloping
/// (exponential-search) merge: each side's next run is located with a
/// doubling probe plus a binary search and copied as a slice, so mostly
/// disjoint or mostly overlapping inputs cost O(runs · log) instead of
/// one comparison per element. Output is the sorted dedup union either
/// way — identical to a two-pointer merge.
fn union_sorted(a: &mut Vec<u64>, b: &[u64]) {
    if b.is_empty() {
        return;
    }
    if a.is_empty() {
        a.extend_from_slice(b);
        return;
    }
    if a[a.len() - 1] < b[0] {
        a.extend_from_slice(b);
        return;
    }
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        if a[i] < b[j] {
            let run = gallop(&a[i..], b[j]);
            out.extend_from_slice(&a[i..i + run]);
            i += run;
        } else if b[j] < a[i] {
            let run = gallop(&b[j..], a[i]);
            out.extend_from_slice(&b[j..j + run]);
            j += run;
        } else {
            out.push(a[i]);
            i += 1;
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    *a = out;
}

/// First index in sorted `s` whose value is `>= key`, assuming
/// `s[0] < key`: double an upper probe until it crosses `key`, then
/// binary-search the last probed window.
fn gallop(s: &[u64], key: u64) -> usize {
    debug_assert!(!s.is_empty() && s[0] < key);
    let mut hi = 1usize;
    while hi < s.len() && s[hi] < key {
        hi *= 2;
    }
    let lo = hi / 2;
    let hi = hi.min(s.len());
    lo + s[lo..hi].partition_point(|&x| x < key)
}

/// The mergeable snapshot of a [`StreamingAnalyzer`] over one shard
/// range: everything [`finish`](Self::finish) needs, in a form where
/// per-sample rows concatenate and aggregates fold associatively.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialReport {
    pub(crate) footprint_block: BlockSize,
    pub(crate) reuse_block: BlockSize,
    pub(crate) locality_sizes: Vec<u64>,
    pub(crate) num_samples: u64,
    pub(crate) observed: u64,
    pub(crate) implied_const: u64,
    pub(crate) per_sample_diags: Vec<FootprintDiagnostics>,
    pub(crate) per_sample_reuse: Vec<SampleReuseSummary>,
    /// Per locality size, one `(windows, Σd, Σg, Σf)` row per sample.
    pub(crate) locality: Vec<Vec<(u64, f64, f64, f64)>>,
    pub(crate) block_reuse: BlockReuse,
    pub(crate) histogram: Log2Histogram,
    pub(crate) funcs: BTreeMap<u32, FuncPartial>,
    pub(crate) stats: IngestStats,
}

impl PartialReport {
    /// The merge identity for a given configuration: merging any
    /// partial into it yields that partial.
    pub fn empty(
        footprint_block: BlockSize,
        reuse_block: BlockSize,
        locality_sizes: &[u64],
    ) -> PartialReport {
        PartialReport {
            footprint_block,
            reuse_block,
            locality_sizes: locality_sizes.to_vec(),
            num_samples: 0,
            observed: 0,
            implied_const: 0,
            per_sample_diags: Vec::new(),
            per_sample_reuse: Vec::new(),
            locality: vec![Vec::new(); locality_sizes.len()],
            block_reuse: BlockReuse::default(),
            histogram: Log2Histogram::new(),
            funcs: BTreeMap::new(),
            stats: IngestStats::default(),
        }
    }

    /// Samples summarized by this partial.
    pub fn num_samples(&self) -> u64 {
        self.num_samples
    }

    /// Ingest accounting of the pass that produced this partial
    /// (rolled up across merges: counters sum, peaks take the max).
    pub fn stats(&self) -> &IngestStats {
        &self.stats
    }

    /// Merge the partial of the **immediately following** shard range
    /// into this one. Merging in any other order silently computes a
    /// different (wrong) trace, so the coordinator keys partials by
    /// range index and folds them in ascending order.
    pub fn merge(&mut self, other: PartialReport) -> Result<(), PartialError> {
        let _span = memgaze_obs::span("fanout.merge");
        if self.footprint_block != other.footprint_block || self.reuse_block != other.reuse_block {
            return Err(PartialError::ConfigMismatch {
                detail: format!(
                    "block sizes ({:?}/{:?}) vs ({:?}/{:?})",
                    self.footprint_block,
                    self.reuse_block,
                    other.footprint_block,
                    other.reuse_block
                ),
            });
        }
        if self.locality_sizes != other.locality_sizes {
            return Err(PartialError::ConfigMismatch {
                detail: format!(
                    "locality sizes {:?} vs {:?}",
                    self.locality_sizes, other.locality_sizes
                ),
            });
        }
        // Merging into the identity is a move: the coordinator seeds its
        // fold with `PartialReport::empty`, so without this the first —
        // and for one worker, only — merge would clone the whole
        // partial field by field.
        if self.num_samples == 0
            && self.observed == 0
            && self.implied_const == 0
            && self.per_sample_diags.is_empty()
            && self.per_sample_reuse.is_empty()
            && self.locality.iter().all(|rows| rows.is_empty())
            && self.block_reuse.is_empty()
            && self.funcs.is_empty()
            && self.histogram == Log2Histogram::new()
            && self.stats == IngestStats::default()
        {
            *self = other;
            return Ok(());
        }
        self.num_samples += other.num_samples;
        self.observed += other.observed;
        self.implied_const += other.implied_const;
        self.per_sample_diags.extend(other.per_sample_diags);
        self.per_sample_reuse.extend(other.per_sample_reuse);
        for (rows, orows) in self.locality.iter_mut().zip(other.locality) {
            rows.extend(orows);
        }
        self.block_reuse.merge(&other.block_reuse);
        self.histogram.merge(&other.histogram);
        let mut replay = ReuseTracker::new();
        for (id, fp) in other.funcs {
            match self.funcs.entry(id) {
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    e.get_mut().absorb(fp, &mut replay)
                }
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(fp);
                }
            }
        }
        self.stats.merge(&other.stats);
        Ok(())
    }

    /// Exact fold of `parts` in frame order, equivalent to a sequential
    /// left-to-right [`merge`](Self::merge) but built for many small
    /// partials (one per shard frame, as the trace store's result cache
    /// produces): the block-reuse summaries are k-way merged with a
    /// single index rebuild, and everything order-sensitive is folded
    /// as a balanced tree of adjacent pairs, which preserves segment
    /// order while keeping each element out of all but O(log k) merges.
    pub fn merge_many(
        parts: Vec<PartialReport>,
        footprint_block: BlockSize,
        reuse_block: BlockSize,
        locality_sizes: &[u64],
    ) -> Result<PartialReport, PartialError> {
        let mut parts = parts;
        let mut reuses = Vec::with_capacity(parts.len());
        for p in &mut parts {
            reuses.push(std::mem::take(&mut p.block_reuse));
        }
        while parts.len() > 1 {
            let mut next = Vec::with_capacity(parts.len().div_ceil(2));
            let mut it = parts.into_iter();
            while let Some(mut a) = it.next() {
                if let Some(b) = it.next() {
                    a.merge(b)?;
                }
                next.push(a);
            }
            parts = next;
        }
        let mut merged = match parts.pop() {
            Some(p) => p,
            None => PartialReport::empty(footprint_block, reuse_block, locality_sizes),
        };
        merged.block_reuse = BlockReuse::merge_many(reuses);
        Ok(merged)
    }

    /// Fold into the final report — the single fold shared with
    /// [`StreamingAnalyzer::finish`], which is what makes fan-out
    /// reports bit-identical to resident streaming by construction.
    pub fn finish(self, meta: &TraceMeta) -> StreamingReport {
        let _span = memgaze_obs::span("fanout.finish");
        let decompression = DecompressionInfo {
            num_samples: self.num_samples,
            period: meta.period,
            observed: self.observed,
            implied_const: self.implied_const,
        };
        let rho = decompression.rho();
        let fb = self.footprint_block;

        let mut function_rows: Vec<FunctionRow> = self
            .funcs
            .into_values()
            .map(|fp| {
                let kappa = compression_ratio(fp.observed, fp.implied_const);
                let diag = FootprintDiagnostics {
                    observed: fp.observed,
                    implied_const: fp.implied_const,
                    footprint: fp.all.len() as u64,
                    f_str: fp.strided.len() as u64,
                    f_irr: fp.irregular.len() as u64,
                    kappa,
                };
                FunctionRow {
                    name: fp.name,
                    f_hat_bytes: rho * diag.footprint as f64 * fb.bytes() as f64,
                    delta_f: diag.delta_f(),
                    f_str_pct: diag.delta_f_str_pct(),
                    accesses_decompressed: diag.kappa * diag.observed as f64,
                    observed: diag.observed,
                    mean_d: fp.reuse.mean_distance(),
                    confidence: Confidence::from_observations(&fp.obs),
                }
            })
            .collect();
        function_rows.sort_by(|a, b| b.accesses_decompressed.total_cmp(&a.accesses_decompressed));

        let locality_series: Vec<LocalityPoint> = self
            .locality_sizes
            .iter()
            .zip(&self.locality)
            .filter_map(|(&size, rows)| {
                let mut n = 0u64;
                let (mut sum_d, mut sum_g, mut sum_f) = (0.0, 0.0, 0.0);
                for &(pn, pd, pg, pf) in rows {
                    n += pn;
                    sum_d += pd;
                    sum_g += pg;
                    sum_f += pf;
                }
                (n > 0).then(|| LocalityPoint {
                    interval: size,
                    mean_d: sum_d / n as f64,
                    mean_delta_f: sum_g / n as f64,
                    mean_f: sum_f / n as f64,
                    windows: n,
                })
            })
            .collect();

        crate::streaming::StreamingReport {
            decompression,
            function_rows,
            block_reuse: self.block_reuse,
            reuse_histogram: self.histogram,
            locality_series,
            ingest: self.stats,
            footprint_block: fb,
            reuse_block: self.reuse_block,
            per_sample_diags: self.per_sample_diags,
            per_sample_reuse: self.per_sample_reuse,
        }
    }

    /// Serialize for the worker→coordinator pipe (`MGZP` framing,
    /// FNV-checksummed, `f64` as IEEE-754 bits — bit-exact round trip).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(1024);
        self.encode_into(&mut buf);
        buf
    }

    /// Append the `MGZP` frame to `buf`, which may carry reused capacity
    /// or earlier content — a persistent worker encodes every response
    /// into one pooled buffer. The checksum covers only this frame's
    /// bytes, so the encoding is byte-identical to [`encode`](Self::encode)
    /// regardless of what precedes it.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        let _span = memgaze_obs::span("codec.encode_partial");
        let start = buf.len();
        buf.extend_from_slice(PARTIAL_MAGIC);
        buf.extend_from_slice(&PARTIAL_VERSION.to_le_bytes());
        buf.push(self.footprint_block.log2());
        buf.push(self.reuse_block.log2());
        put_u64s(buf, &self.locality_sizes);
        put_varint(buf, self.num_samples);
        put_varint(buf, self.observed);
        put_varint(buf, self.implied_const);
        put_varint(buf, self.per_sample_diags.len() as u64);
        for d in &self.per_sample_diags {
            put_varint(buf, d.observed);
            put_varint(buf, d.implied_const);
            put_varint(buf, d.footprint);
            put_varint(buf, d.f_str);
            put_varint(buf, d.f_irr);
            put_f64(buf, d.kappa);
        }
        put_varint(buf, self.per_sample_reuse.len() as u64);
        for r in &self.per_sample_reuse {
            put_varint(buf, r.events as u64);
            put_f64(buf, r.mean_d);
        }
        for rows in &self.locality {
            put_varint(buf, rows.len() as u64);
            for &(n, d, g, fval) in rows {
                put_varint(buf, n);
                put_f64(buf, d);
                put_f64(buf, g);
                put_f64(buf, fval);
            }
        }
        put_varint(buf, self.block_reuse.len() as u64);
        // The first row is verbatim (its block number may be 0, so its
        // delta may be too). After that, rows are strictly block-sorted
        // — deltas are positive — so 0 escapes a repeat: `0, k` stands
        // for `k` more rows with the previous row's delta *and* stats.
        // A uniformly streamed region yields thousands of equal-stat
        // rows one block apart, which all collapse into one escape.
        let mut prev_block = 0u64;
        let mut prev_delta = 0u64;
        let mut prev_stats = [u64::MAX; 4];
        let mut repeat = 0u64;
        let mut first = true;
        for (block, stats) in self.block_reuse.raw_rows() {
            let delta = block - prev_block;
            prev_block = block;
            if !first && delta == prev_delta && stats == prev_stats {
                repeat += 1;
                continue;
            }
            if repeat > 0 {
                put_varint(buf, 0);
                put_varint(buf, repeat);
                repeat = 0;
            }
            put_varint(buf, delta);
            for s in stats {
                put_varint(buf, s);
            }
            prev_delta = delta;
            prev_stats = stats;
            first = false;
        }
        if repeat > 0 {
            put_varint(buf, 0);
            put_varint(buf, repeat);
        }
        let (bins, count, sum) = self.histogram.raw_parts();
        put_u64s(buf, bins);
        put_varint(buf, count);
        put_varint(buf, sum);
        put_varint(buf, self.funcs.len() as u64);
        for (&id, fp) in &self.funcs {
            put_varint(buf, u64::from(id));
            put_str(buf, &fp.name);
            put_sorted(buf, &fp.all);
            // Class lists ride as a one-byte back-reference when they
            // equal `all` — functions dominated by a single load class
            // are the norm, and re-encoding (then re-decoding) the full
            // word-granular footprint list doubles the frame's weight
            // for no information.
            put_class_list(buf, &fp.strided, &fp.all);
            put_class_list(buf, &fp.irregular, &fp.all);
            put_varint(buf, fp.observed);
            put_varint(buf, fp.implied_const);
            put_u64s(buf, &fp.reuse.firsts);
            put_u64s(buf, &fp.reuse.lru);
            put_varint(buf, fp.reuse.events);
            put_varint(buf, fp.reuse.dist_sum);
            put_varint(buf, fp.obs.len() as u64);
            for &o in &fp.obs {
                put_f64(buf, o);
            }
        }
        put_varint(buf, self.stats.shards);
        put_varint(buf, self.stats.samples);
        put_varint(buf, self.stats.merge_events);
        put_varint(buf, self.stats.peak_shard_samples as u64);
        put_varint(buf, self.stats.peak_shard_bytes as u64);
        let sum = fnv1a64(&buf[start..]);
        buf.extend_from_slice(&sum.to_le_bytes());
    }

    /// Decode a serialized partial, rejecting truncation, corruption,
    /// and structural inconsistencies — a worker's garbled output must
    /// surface as a typed error, never a bad merge.
    pub fn decode(data: &[u8]) -> Result<PartialReport, PartialError> {
        let _span = memgaze_obs::span("codec.decode_partial");
        let body = check_frame(data, PARTIAL_MAGIC, PARTIAL_VERSION, "partial report")?;
        let mut src = body;
        let footprint_block = get_block_size(&mut src, "partial footprint block")?;
        let reuse_block = get_block_size(&mut src, "partial reuse block")?;
        let locality_sizes = get_u64s(&mut src, "partial locality sizes")?;
        let num_samples = get_varint(&mut src, "partial num_samples")?;
        let observed = get_varint(&mut src, "partial observed")?;
        let implied_const = get_varint(&mut src, "partial implied_const")?;
        let n = get_len(&mut src, "partial diag count")?;
        let mut per_sample_diags = Vec::with_capacity(n);
        for _ in 0..n {
            per_sample_diags.push(FootprintDiagnostics {
                observed: get_varint(&mut src, "diag observed")?,
                implied_const: get_varint(&mut src, "diag implied_const")?,
                footprint: get_varint(&mut src, "diag footprint")?,
                f_str: get_varint(&mut src, "diag f_str")?,
                f_irr: get_varint(&mut src, "diag f_irr")?,
                kappa: get_f64(&mut src, "diag kappa")?,
            });
        }
        let n = get_len(&mut src, "partial reuse count")?;
        let mut per_sample_reuse = Vec::with_capacity(n);
        for _ in 0..n {
            per_sample_reuse.push(SampleReuseSummary {
                events: get_varint(&mut src, "reuse events")? as usize,
                mean_d: get_f64(&mut src, "reuse mean_d")?,
            });
        }
        let mut locality = Vec::with_capacity(locality_sizes.len());
        for _ in 0..locality_sizes.len() {
            let n = get_len(&mut src, "locality row count")?;
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                rows.push((
                    get_varint(&mut src, "locality windows")?,
                    get_f64(&mut src, "locality d")?,
                    get_f64(&mut src, "locality g")?,
                    get_f64(&mut src, "locality f")?,
                ));
            }
            locality.push(rows);
        }
        let n = get_count(&mut src, "block reuse count")?;
        let mut rows: Vec<(u64, [u64; 4])> = Vec::with_capacity(n);
        let mut block = 0u64;
        let mut prev_delta = 0u64;
        while rows.len() < n {
            let delta = get_varint(&mut src, "block delta")?;
            if delta == 0 && !rows.is_empty() {
                // Repeat escape: `k` more rows with the previous delta
                // and stats (see the encoder).
                let k = get_varint(&mut src, "block repeat")? as usize;
                let (_, stats) = *rows.last().expect("guarded non-empty");
                if k == 0 || prev_delta == 0 || k > n - rows.len() {
                    return Err(PartialError::Corrupt {
                        detail: "bad block repeat run".to_string(),
                    });
                }
                for _ in 0..k {
                    block += prev_delta;
                    rows.push((block, stats));
                }
                continue;
            }
            block += delta;
            prev_delta = delta;
            let mut stats = [0u64; 4];
            for s in &mut stats {
                *s = get_varint(&mut src, "block stat")?;
            }
            rows.push((block, stats));
        }
        let block_reuse = BlockReuse::from_raw_rows(rows).ok_or_else(|| PartialError::Corrupt {
            detail: "block reuse rows out of order".to_string(),
        })?;
        let bins = get_u64s(&mut src, "histogram bins")?;
        let count = get_varint(&mut src, "histogram count")?;
        let sum = get_varint(&mut src, "histogram sum")?;
        let histogram = Log2Histogram::from_raw_parts(bins, count, sum);
        let n = get_len(&mut src, "function count")?;
        let mut funcs = BTreeMap::new();
        for _ in 0..n {
            let id = get_varint(&mut src, "function id")?;
            let id = u32::try_from(id).map_err(|_| PartialError::Corrupt {
                detail: format!("function id {id} out of range"),
            })?;
            let name = get_str(&mut src, "function name")?;
            let all = get_sorted(&mut src, "function footprint")?;
            let strided = get_class_list(&mut src, &all, "function strided")?;
            let irregular = get_class_list(&mut src, &all, "function irregular")?;
            let fp = FuncPartial {
                name,
                all,
                strided,
                irregular,
                observed: get_varint(&mut src, "function observed")?,
                implied_const: get_varint(&mut src, "function implied_const")?,
                reuse: ReusePartial {
                    firsts: get_u64s(&mut src, "function firsts")?,
                    lru: get_u64s(&mut src, "function lru")?,
                    events: get_varint(&mut src, "function events")?,
                    dist_sum: get_varint(&mut src, "function dist_sum")?,
                },
                obs: {
                    let n = get_len(&mut src, "function obs count")?;
                    let mut obs = Vec::with_capacity(n);
                    for _ in 0..n {
                        obs.push(get_f64(&mut src, "function obs")?);
                    }
                    obs
                },
            };
            funcs.insert(id, fp);
        }
        let stats = IngestStats {
            shards: get_varint(&mut src, "stats shards")?,
            samples: get_varint(&mut src, "stats samples")?,
            merge_events: get_varint(&mut src, "stats merges")?,
            peak_shard_samples: get_varint(&mut src, "stats peak samples")? as usize,
            peak_shard_bytes: get_varint(&mut src, "stats peak bytes")? as usize,
        };
        if !src.is_empty() {
            return Err(PartialError::Corrupt {
                detail: format!("{} trailing bytes in partial report", src.len()),
            });
        }
        Ok(PartialReport {
            footprint_block,
            reuse_block,
            locality_sizes,
            num_samples,
            observed,
            implied_const,
            per_sample_diags,
            per_sample_reuse,
            locality,
            block_reuse,
            histogram,
            funcs,
            stats,
        })
    }
}

/// Everything a worker needs besides the container + index: the side
/// tables and the analysis configuration. Shipped to workers as a spec
/// file (`MGZS` framing).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerSpec {
    /// Footprint block size.
    pub footprint_block: BlockSize,
    /// Reuse block size.
    pub reuse_block: BlockSize,
    /// Analysis threads per worker.
    pub threads: usize,
    /// Locality-vs-interval sizes.
    pub locality_sizes: Vec<u64>,
    /// The instrumentor's annotation side table.
    pub annots: AuxAnnotations,
    /// Function symbols.
    pub symbols: SymbolTable,
}

impl WorkerSpec {
    /// The analysis configuration this spec encodes. Zoom settings are
    /// irrelevant to the streaming path and take their defaults.
    pub fn analysis_config(&self) -> AnalysisConfig {
        AnalysisConfig {
            footprint_block: self.footprint_block,
            reuse_block: self.reuse_block,
            threads: self.threads.max(1),
            ..AnalysisConfig::default()
        }
    }

    /// Serialize (`MGZS` framing, FNV-checksummed).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(256);
        self.encode_into(&mut buf);
        buf
    }

    /// Append the `MGZS` frame to a pooled buffer; the checksum covers
    /// only this frame's bytes, so the encoding is byte-identical to
    /// [`encode`](Self::encode) whatever precedes it.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        let start = buf.len();
        buf.extend_from_slice(SPEC_MAGIC);
        buf.extend_from_slice(&SPEC_VERSION.to_le_bytes());
        buf.push(self.footprint_block.log2());
        buf.push(self.reuse_block.log2());
        put_varint(buf, self.threads as u64);
        put_u64s(buf, &self.locality_sizes);
        put_varint(buf, self.annots.len() as u64);
        for (ip, an) in self.annots.iter() {
            put_varint(buf, ip.raw());
            buf.push(match an.class {
                LoadClass::Constant => 0,
                LoadClass::Strided => 1,
                LoadClass::Irregular => 2,
            });
            put_varint(buf, u64::from(an.implied_const));
            buf.push(an.scale);
            put_varint(buf, zigzag(an.offset));
            buf.push(u8::from(an.two_source));
            put_varint(buf, u64::from(an.func.0));
            put_varint(buf, u64::from(an.src_line));
        }
        put_varint(buf, self.symbols.len() as u64);
        for f in self.symbols.functions() {
            put_str(buf, &f.name);
            put_varint(buf, f.lo.raw());
            put_varint(buf, f.hi.raw());
            put_str(buf, &f.src_file);
        }
        let sum = fnv1a64(&buf[start..]);
        buf.extend_from_slice(&sum.to_le_bytes());
    }

    /// Decode a serialized spec.
    pub fn decode(data: &[u8]) -> Result<WorkerSpec, PartialError> {
        let body = check_frame(data, SPEC_MAGIC, SPEC_VERSION, "worker spec")?;
        let mut src = body;
        let footprint_block = get_block_size(&mut src, "spec footprint block")?;
        let reuse_block = get_block_size(&mut src, "spec reuse block")?;
        let threads = get_varint(&mut src, "spec threads")? as usize;
        let locality_sizes = get_u64s(&mut src, "spec locality sizes")?;
        let n = get_len(&mut src, "spec annot count")?;
        let mut annots = AuxAnnotations::new();
        for _ in 0..n {
            let ip = Ip(get_varint(&mut src, "annot ip")?);
            let class = match get_byte(&mut src, "annot class")? {
                0 => LoadClass::Constant,
                1 => LoadClass::Strided,
                2 => LoadClass::Irregular,
                other => {
                    return Err(PartialError::Corrupt {
                        detail: format!("unknown load class {other}"),
                    })
                }
            };
            let implied_const = get_varint(&mut src, "annot implied_const")?;
            let implied_const =
                u32::try_from(implied_const).map_err(|_| PartialError::Corrupt {
                    detail: format!("annot implied_const {implied_const} out of range"),
                })?;
            let scale = get_byte(&mut src, "annot scale")?;
            let offset = unzigzag(get_varint(&mut src, "annot offset")?);
            let two_source = get_byte(&mut src, "annot two_source")? != 0;
            let func = get_varint(&mut src, "annot func")?;
            let func = u32::try_from(func).map_err(|_| PartialError::Corrupt {
                detail: format!("annot func id {func} out of range"),
            })?;
            let src_line = get_varint(&mut src, "annot src_line")?;
            let src_line = u32::try_from(src_line).map_err(|_| PartialError::Corrupt {
                detail: format!("annot src_line {src_line} out of range"),
            })?;
            let mut an = IpAnnot::of_class(class, FunctionId(func));
            an.implied_const = implied_const;
            an.scale = scale;
            an.offset = offset;
            an.two_source = two_source;
            an.src_line = src_line;
            annots.insert(ip, an);
        }
        let n = get_len(&mut src, "spec symbol count")?;
        let mut symbols = SymbolTable::new();
        for _ in 0..n {
            let name = get_str(&mut src, "symbol name")?;
            let lo = Ip(get_varint(&mut src, "symbol lo")?);
            let hi = Ip(get_varint(&mut src, "symbol hi")?);
            let src_file = get_str(&mut src, "symbol src_file")?;
            if hi.raw() <= lo.raw() {
                return Err(PartialError::Corrupt {
                    detail: format!("symbol {name} has empty range"),
                });
            }
            symbols.add_function(&name, lo, hi, &src_file);
        }
        if !src.is_empty() {
            return Err(PartialError::Corrupt {
                detail: format!("{} trailing bytes in worker spec", src.len()),
            });
        }
        Ok(WorkerSpec {
            footprint_block,
            reuse_block,
            threads,
            locality_sizes,
            annots,
            symbols,
        })
    }
}

/// Run a [`StreamingAnalyzer`] over the contiguous frame range
/// `frames` of an indexed container — the worker's whole job between
/// decode and ship-back. Frames are fetched by seek via the index,
/// never by scanning.
pub fn analyze_frames(
    container: &[u8],
    index: &FrameIndex,
    frames: Range<usize>,
    annots: &AuxAnnotations,
    symbols: &SymbolTable,
    cfg: AnalysisConfig,
    locality_sizes: &[u64],
) -> Result<PartialReport, ModelError> {
    let mut span = memgaze_obs::span("worker.analyze_frames");
    if span.is_active() {
        span.set_label(format!("frames {}..{}", frames.start, frames.end));
    }
    let mut sa = StreamingAnalyzer::new(annots, symbols, cfg).with_locality_sizes(locality_sizes);
    for i in frames {
        let samples = index.read_frame(container, i)?;
        sa.ingest_shard(&samples);
    }
    Ok(sa.into_partial())
}

/// Partition the indexed frames into at most `workers` contiguous
/// ranges, balanced by sample count (frames vary in size; samples are
/// the unit of analysis work). Every returned range is non-empty;
/// fewer than `workers` ranges come back when there are fewer frames.
pub fn partition_frames(index: &FrameIndex, workers: usize) -> Vec<Range<usize>> {
    let samples: Vec<u64> = index.entries.iter().map(|e| e.samples).collect();
    partition_by_samples(&samples, workers)
}

/// [`partition_frames`] over bare per-frame sample counts — the same
/// balanced contiguous partition for callers whose frame inventory
/// lives in a store catalog rather than a [`FrameIndex`] sidecar.
/// Given the same counts, the two produce identical ranges, so a
/// store-backed fan-out dispatches exactly the ranges a container-backed
/// one would.
pub fn partition_by_samples(samples: &[u64], workers: usize) -> Vec<Range<usize>> {
    let n = samples.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    let weights: Vec<u64> = samples.iter().map(|&s| s.max(1)).collect();
    let total: u64 = weights.iter().sum();
    let mut out = Vec::with_capacity(workers);
    let mut start = 0usize;
    let mut acc = 0u64;
    for (i, &w) in weights.iter().enumerate() {
        acc += w;
        let k = out.len() + 1;
        if k < workers && i + 1 < n {
            let quota_met = acc as u128 * workers as u128 >= total as u128 * k as u128;
            let must_close = n - (i + 1) == workers - k;
            if quota_met || must_close {
                out.push(start..i + 1);
                start = i + 1;
            }
        }
    }
    out.push(start..n);
    out
}

// ---- wire primitives ----

fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(b);
            return;
        }
        buf.push(b | 0x80);
    }
}

fn get_varint(src: &mut &[u8], context: &'static str) -> Result<u64, PartialError> {
    // Fast path: a u64 varint spans at most 10 bytes, so with that much
    // input left the whole value decodes with one bounds decision
    // instead of one per byte. The partial codec decodes hundreds of
    // thousands of these per report, so the per-byte checks are a
    // measurable share of coordinator decode time.
    let s = *src;
    if s.len() >= 10 {
        let mut v: u64 = 0;
        for (i, &byte) in s[..10].iter().enumerate() {
            v |= u64::from(byte & 0x7f) << (7 * i as u32);
            if byte & 0x80 == 0 {
                *src = &s[i + 1..];
                return Ok(v);
            }
        }
        return Err(PartialError::Corrupt {
            detail: format!("varint overflow in {context}"),
        });
    }
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = get_byte(src, context)?;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(PartialError::Corrupt {
                detail: format!("varint overflow in {context}"),
            });
        }
    }
}

fn get_byte(src: &mut &[u8], context: &'static str) -> Result<u8, PartialError> {
    let (&b, rest) = src
        .split_first()
        .ok_or(PartialError::Truncated { context })?;
    *src = rest;
    Ok(b)
}

/// A length prefix, bounded by the bytes actually remaining so corrupt
/// counts cannot trigger giant allocations.
fn get_len(src: &mut &[u8], context: &'static str) -> Result<usize, PartialError> {
    let n = get_varint(src, context)? as usize;
    if n > src.len() {
        return Err(PartialError::Truncated { context });
    }
    Ok(n)
}

/// Hard ceiling on entries in one run-length-encoded list. The
/// `get_len` remaining-bytes guard does not apply to RLE lists — a run
/// escape stores thousands of entries in three bytes — so this bounds
/// the memory a corrupt (checksum-colliding) count can make the
/// decoder commit.
const MAX_RLE_ENTRIES: usize = 1 << 26;

/// Length prefix of a run-length-encoded list; see [`MAX_RLE_ENTRIES`].
fn get_count(src: &mut &[u8], context: &'static str) -> Result<usize, PartialError> {
    let n = get_varint(src, context)? as usize;
    if n > MAX_RLE_ENTRIES {
        return Err(PartialError::Corrupt {
            detail: format!("list of {n} entries exceeds decoder limit ({context})"),
        });
    }
    Ok(n)
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn get_f64(src: &mut &[u8], context: &'static str) -> Result<f64, PartialError> {
    if src.len() < 8 {
        return Err(PartialError::Truncated { context });
    }
    let (bytes, rest) = src.split_at(8);
    *src = rest;
    Ok(f64::from_bits(u64::from_le_bytes(
        bytes.try_into().expect("split_at gave 8 bytes"),
    )))
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn get_str(src: &mut &[u8], context: &'static str) -> Result<String, PartialError> {
    let n = get_len(src, context)?;
    let (bytes, rest) = src.split_at(n);
    *src = rest;
    String::from_utf8(bytes.to_vec()).map_err(|_| PartialError::Corrupt {
        detail: format!("non-utf8 string in {context}"),
    })
}

/// Encode an arbitrary-order `u64` list as zigzag deltas with
/// run-length escapes: after a verbatim first element, each entry is
/// the token `zigzag(v[i] - v[i-1]) + 1`; token `0` escapes a run —
/// `0, zigzag(d), k` stands for `k` consecutive deltas of `d`. Block
/// lists in first-touch or LRU order are near-sequential for streamed
/// regions, so the dominant case is a handful of runs instead of one
/// 3-byte absolute varint per block.
fn put_u64s(buf: &mut Vec<u8>, vs: &[u64]) {
    put_varint(buf, vs.len() as u64);
    let Some((&first, rest)) = vs.split_first() else {
        return;
    };
    put_varint(buf, first);
    let mut prev = first;
    let mut i = 0;
    while i < rest.len() {
        let delta = rest[i].wrapping_sub(prev);
        let mut run = 1;
        while i + run < rest.len() && rest[i + run].wrapping_sub(rest[i + run - 1]) == delta {
            run += 1;
        }
        if run >= SORTED_RUN_MIN {
            put_varint(buf, 0);
            put_varint(buf, zigzag(delta as i64));
            put_varint(buf, run as u64);
        } else {
            let mut p = prev;
            for k in 0..run {
                put_varint(buf, zigzag(rest[i + k].wrapping_sub(p) as i64) + 1);
                p = rest[i + k];
            }
        }
        prev = rest[i + run - 1];
        i += run;
    }
}

fn get_u64s(src: &mut &[u8], context: &'static str) -> Result<Vec<u64>, PartialError> {
    let n = get_count(src, context)?;
    let mut out = Vec::with_capacity(n);
    if n == 0 {
        return Ok(out);
    }
    let mut v = get_varint(src, context)?;
    out.push(v);
    while out.len() < n {
        let token = get_varint(src, context)?;
        if token == 0 {
            let d = unzigzag(get_varint(src, context)?) as u64;
            let k = get_varint(src, context)? as usize;
            if k == 0 || k > n - out.len() {
                return Err(PartialError::Corrupt {
                    detail: format!("bad run in u64 list ({context})"),
                });
            }
            for _ in 0..k {
                v = v.wrapping_add(d);
                out.push(v);
            }
        } else {
            v = v.wrapping_add(unzigzag(token - 1) as u64);
            out.push(v);
        }
    }
    Ok(out)
}

/// Sorted lists delta-encode; also validates order on decode.
/// Shortest run of equal deltas worth collapsing into an RLE escape
/// (marker + delta + count = 3 varints, so 4 is the break-even point
/// for one-byte deltas).
const SORTED_RUN_MIN: usize = 4;

/// Delta-encode a strictly sorted list with periodic-pattern escapes.
///
/// The first element is written verbatim (as its delta from zero).
/// After that, deltas are strictly positive — the list has no
/// duplicates — which frees `0` as an escape: `0, p, k, d1..dp` means
/// "the delta pattern `d1..dp` repeated `k` times". Block footprints
/// are dominated by short periodic stride patterns (a pure stream is
/// period 1; a stream with every j-th slot classified elsewhere has
/// period j-1), so this collapses the codec's largest lists from one
/// varint per block to a few bytes per pattern.
const SORTED_MAX_PERIOD: usize = 4;

fn put_sorted(buf: &mut Vec<u8>, vs: &[u64]) {
    put_varint(buf, vs.len() as u64);
    let Some((&first, rest)) = vs.split_first() else {
        return;
    };
    put_varint(buf, first);
    let mut prev = first;
    let mut i = 0;
    while i < rest.len() {
        // Longest periodic cover starting here, over short periods.
        let mut best_p = 0usize;
        let mut best_cover = 0usize;
        for p in 1..=SORTED_MAX_PERIOD.min(rest.len() - i) {
            let mut j = i + p;
            while j < rest.len()
                && rest[j] - if j == 0 { prev } else { rest[j - 1] }
                    == rest[j - p] - if j == p { prev } else { rest[j - p - 1] }
            {
                j += 1;
            }
            let cover = ((j - i) / p) * p;
            if cover > best_cover {
                best_cover = cover;
                best_p = p;
            }
        }
        if best_cover >= 2 * best_p && best_cover >= 8 {
            put_varint(buf, 0);
            put_varint(buf, best_p as u64);
            put_varint(buf, (best_cover / best_p) as u64);
            let mut p2 = prev;
            for k in 0..best_p {
                put_varint(buf, rest[i + k] - p2);
                p2 = rest[i + k];
            }
            prev = rest[i + best_cover - 1];
            i += best_cover;
        } else {
            put_varint(buf, rest[i] - prev);
            prev = rest[i];
            i += 1;
        }
    }
}

fn get_sorted(src: &mut &[u8], context: &'static str) -> Result<Vec<u64>, PartialError> {
    let n = get_count(src, context)?;
    let mut out = Vec::with_capacity(n);
    if n == 0 {
        return Ok(out);
    }
    let mut v = get_varint(src, context)?;
    out.push(v);
    while out.len() < n {
        let delta = get_varint(src, context)?;
        if delta == 0 {
            // Pattern escape: `k` repetitions of a `p`-delta pattern of
            // strictly positive deltas.
            let p = get_varint(src, context)? as usize;
            let k = get_varint(src, context)? as usize;
            if p == 0 || k == 0 || p.checked_mul(k).is_none_or(|t| t > n - out.len()) {
                return Err(PartialError::Corrupt {
                    detail: format!("bad pattern run in sorted list ({context})"),
                });
            }
            let mut pat = [0u64; 16];
            if p > pat.len() {
                return Err(PartialError::Corrupt {
                    detail: format!("pattern period {p} too long ({context})"),
                });
            }
            for d in pat[..p].iter_mut() {
                *d = get_varint(src, context)?;
                if *d == 0 {
                    return Err(PartialError::Corrupt {
                        detail: format!("zero delta in sorted-list pattern ({context})"),
                    });
                }
            }
            for _ in 0..k {
                for &d in &pat[..p] {
                    v += d;
                    out.push(v);
                }
            }
        } else {
            v += delta;
            out.push(v);
        }
    }
    Ok(out)
}

/// Encode a class footprint list, back-referencing `all` when they are
/// equal: tag byte 0 means "same list as `all`" (nothing follows), tag
/// byte 1 means a [`put_sorted`] list follows. Equality is checked on
/// the full contents, so the compression never assumes the subset
/// invariant the analyzer happens to maintain.
fn put_class_list(buf: &mut Vec<u8>, vs: &[u64], all: &[u64]) {
    if vs == all {
        buf.push(0);
    } else {
        buf.push(1);
        put_sorted(buf, vs);
    }
}

fn get_class_list(
    src: &mut &[u8],
    all: &[u64],
    context: &'static str,
) -> Result<Vec<u64>, PartialError> {
    match get_byte(src, context)? {
        0 => Ok(all.to_vec()),
        1 => get_sorted(src, context),
        tag => Err(PartialError::Corrupt {
            detail: format!("bad class-list tag {tag} ({context})"),
        }),
    }
}

fn get_block_size(src: &mut &[u8], context: &'static str) -> Result<BlockSize, PartialError> {
    let log2 = get_byte(src, context)?;
    if log2 >= 64 {
        return Err(PartialError::Corrupt {
            detail: format!("block size log2 {log2} out of range ({context})"),
        });
    }
    Ok(BlockSize::from_log2(log2))
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// Validate magic + version + trailing FNV checksum, returning the body.
fn check_frame<'a>(
    data: &'a [u8],
    magic: &[u8; 4],
    version: u16,
    what: &'static str,
) -> Result<&'a [u8], PartialError> {
    if data.len() < 14 {
        return Err(PartialError::Truncated { context: what });
    }
    let (body, sum_bytes) = data.split_at(data.len() - 8);
    let want = u64::from_le_bytes(sum_bytes.try_into().expect("split_at gave 8 bytes"));
    if fnv1a64(body) != want {
        return Err(PartialError::Corrupt {
            detail: format!("{what} checksum mismatch"),
        });
    }
    if &body[..4] != magic {
        return Err(PartialError::Corrupt {
            detail: format!("{what} magic {:?}", &body[..4]),
        });
    }
    let ver = u16::from_le_bytes([body[4], body[5]]);
    if ver != version {
        return Err(PartialError::Corrupt {
            detail: format!("{what} version {ver}, expected {version}"),
        });
    }
    Ok(&body[6..])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streaming::stream_resident_trace;
    use memgaze_model::{encode_sharded_indexed, Access, Sample, SampledTrace};

    fn mk_stream(seed: u64, n: usize) -> Vec<u64> {
        // Deterministic pseudo-random block stream with heavy reuse.
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) % 37
            })
            .collect()
    }

    #[test]
    fn reuse_partial_merge_is_exact() {
        let stream = mk_stream(7, 400);
        for splits in [
            vec![400],
            vec![0, 400],
            vec![1, 399],
            vec![130, 270],
            vec![50, 50, 100, 200],
        ] {
            // Whole-stream reference.
            let mut whole = ReuseTracker::new();
            for &b in &stream {
                whole.feed(b);
            }
            // Segment trackers merged via ReusePartial.
            let mut merged = ReusePartial::default();
            let mut lo = 0usize;
            let mut segs = Vec::new();
            for &len in &splits {
                segs.push(&stream[lo..lo + len]);
                lo += len;
            }
            segs.push(&stream[lo..]);
            for seg in segs {
                let mut t = ReuseTracker::with_slot_capacity(8); // force compactions
                for &b in seg {
                    t.feed(b);
                }
                merged.absorb(&ReusePartial::from_tracker(&t));
            }
            assert_eq!(merged.events, whole.events(), "{splits:?}");
            assert_eq!(merged.dist_sum, whole.distance_sum(), "{splits:?}");
            assert_eq!(merged.firsts, whole.first_touch_order(), "{splits:?}");
            assert_eq!(merged.lru, whole.lru_order(), "{splits:?}");
        }
    }

    fn synthetic_trace() -> (SampledTrace, AuxAnnotations, SymbolTable) {
        let mut t = SampledTrace::new(TraceMeta::new("fanout-test", 10_000, 16 << 10));
        t.meta.total_loads = 120_000;
        t.meta.total_instrumented_loads = 1200;
        for s in 0..12u64 {
            let base = s * 10_000;
            let mut accesses = Vec::new();
            for i in 0..(60 + (s * 13) % 50) {
                let (ip, addr) = if i % 3 == 0 {
                    (0x500 + (i % 2) * 4, 0x20_0000 + (i % 23) * 64)
                } else {
                    (0x400 + (i % 5) * 4, 0x10_0000 + (s * 100 + i) * 16)
                };
                accesses.push(Access::new(ip, addr, base + i));
            }
            let n = accesses.len() as u64;
            t.push_sample(Sample::new(accesses, base + n)).unwrap();
        }
        let mut annots = AuxAnnotations::new();
        for k in 0..5u64 {
            let mut an = IpAnnot::of_class(LoadClass::Strided, FunctionId(0));
            an.implied_const = 2;
            annots.insert(Ip(0x400 + k * 4), an);
        }
        annots.insert(
            Ip(0x500),
            IpAnnot::of_class(LoadClass::Irregular, FunctionId(1)),
        );
        let mut symbols = SymbolTable::new();
        symbols.add_function("alpha", Ip(0x400), Ip(0x500), "a.c");
        symbols.add_function("beta", Ip(0x500), Ip(0x600), "b.c");
        (t, annots, symbols)
    }

    #[test]
    fn merged_partials_match_single_pass_for_any_split() {
        let (t, annots, symbols) = synthetic_trace();
        let cfg = AnalysisConfig {
            threads: 1,
            ..AnalysisConfig::default()
        };
        let sizes = [8u64, 32];
        let (container, index) = encode_sharded_indexed(&t, 3);
        let whole = stream_resident_trace(&t, &annots, &symbols, cfg, &sizes, 3);
        for workers in [1usize, 2, 3, 4, 7] {
            let ranges = partition_frames(&index, workers);
            let mut merged = PartialReport::empty(cfg.footprint_block, cfg.reuse_block, &sizes);
            for r in ranges {
                let p =
                    analyze_frames(&container, &index, r, &annots, &symbols, cfg, &sizes).unwrap();
                merged.merge(p).unwrap();
            }
            let report = merged.finish(&t.meta);
            assert_eq!(
                report.decompression, whole.decompression,
                "workers {workers}"
            );
            assert_eq!(
                report.function_rows, whole.function_rows,
                "workers {workers}"
            );
            assert_eq!(report.block_reuse, whole.block_reuse, "workers {workers}");
            assert_eq!(
                report.reuse_histogram, whole.reuse_histogram,
                "workers {workers}"
            );
            assert_eq!(
                report.locality_series, whole.locality_series,
                "workers {workers}"
            );
            for n in [1usize, 3, 5] {
                assert_eq!(
                    report.interval_rows(n),
                    whole.interval_rows(n),
                    "workers {workers}"
                );
            }
        }
    }

    #[test]
    fn list_codecs_roundtrip_at_scale() {
        // Shapes the bench workload produces: long sequential runs,
        // short-period stride patterns, reuse orders, and sparse lists.
        let seq: Vec<u64> = (0..16384u64).map(|i| 0x8000 + i).collect();
        let pattern: Vec<u64> = (0..98304u64).filter(|i| i % 4 != 0).collect();
        let rev: Vec<u64> = (0..4096u64).rev().map(|i| i * 3 + 7).collect();
        let dups: Vec<u64> = (0..1000u64).map(|i| i / 10).collect();
        let small: Vec<u64> = vec![5, 6, 9];
        for vs in [&seq, &pattern, &small, &Vec::new()] {
            let mut buf = Vec::new();
            put_sorted(&mut buf, vs);
            let mut src = buf.as_slice();
            assert_eq!(&get_sorted(&mut src, "t").unwrap(), vs);
            assert!(src.is_empty());
        }
        for vs in [&seq, &pattern, &rev, &dups, &small, &Vec::new()] {
            let mut buf = Vec::new();
            put_u64s(&mut buf, vs);
            let mut src = buf.as_slice();
            assert_eq!(&get_u64s(&mut src, "t").unwrap(), vs);
            assert!(src.is_empty());
        }
        // The run escapes actually engage: a 16K sequential list must
        // collapse to bytes, not one varint per entry.
        let mut buf = Vec::new();
        put_u64s(&mut buf, &seq);
        assert!(
            buf.len() < 32,
            "sequential list not run-compressed: {}",
            buf.len()
        );
    }

    #[test]
    fn partial_report_roundtrips_through_codec() {
        let (t, annots, symbols) = synthetic_trace();
        let cfg = AnalysisConfig {
            threads: 1,
            ..AnalysisConfig::default()
        };
        let (container, index) = encode_sharded_indexed(&t, 4);
        let p = analyze_frames(
            &container,
            &index,
            0..index.entries.len(),
            &annots,
            &symbols,
            cfg,
            &[16],
        )
        .unwrap();
        let wire = p.encode();
        let back = PartialReport::decode(&wire).unwrap();
        assert_eq!(p, back);
        // Truncation and corruption are typed errors.
        assert!(PartialReport::decode(&wire[..wire.len() - 3]).is_err());
        let mut flipped = wire.clone();
        flipped[20] ^= 0x10;
        assert!(PartialReport::decode(&flipped).is_err());
        assert!(PartialReport::decode(b"MGZP\x01\x00junk").is_err());
    }

    #[test]
    fn worker_spec_roundtrips_through_codec() {
        let (_, annots, symbols) = synthetic_trace();
        let spec = WorkerSpec {
            footprint_block: BlockSize::WORD,
            reuse_block: BlockSize::CACHE_LINE,
            threads: 2,
            locality_sizes: vec![8, 64],
            annots,
            symbols,
        };
        let wire = spec.encode();
        let back = WorkerSpec::decode(&wire).unwrap();
        assert_eq!(spec, back);
        assert!(WorkerSpec::decode(&wire[..wire.len() - 1]).is_err());
    }

    #[test]
    fn partition_covers_all_frames_without_overlap() {
        let (t, _, _) = synthetic_trace();
        for shard in [1usize, 2, 5] {
            let (_, index) = encode_sharded_indexed(&t, shard);
            for workers in [1usize, 2, 3, 4, 8, 64] {
                let ranges = partition_frames(&index, workers);
                assert!(ranges.len() <= workers.max(1));
                let mut next = 0usize;
                for r in &ranges {
                    assert_eq!(r.start, next, "shard {shard} workers {workers}");
                    assert!(r.end > r.start, "empty range");
                    next = r.end;
                }
                assert_eq!(next, index.entries.len());
            }
        }
    }

    #[test]
    fn merge_rejects_mismatched_configs() {
        let a = PartialReport::empty(BlockSize::WORD, BlockSize::CACHE_LINE, &[8]);
        let mut b = PartialReport::empty(BlockSize::WORD, BlockSize::CACHE_LINE, &[16]);
        assert!(matches!(
            b.merge(a.clone()),
            Err(PartialError::ConfigMismatch { .. })
        ));
        let mut c = PartialReport::empty(BlockSize::OS_PAGE, BlockSize::CACHE_LINE, &[8]);
        assert!(matches!(
            c.merge(a),
            Err(PartialError::ConfigMismatch { .. })
        ));
    }
}
