//! Partial-report algebra and wire codec for multi-process fan-out.
//!
//! A fan-out coordinator partitions a sharded container's frame ranges
//! across workers (threads or `memgaze analyze-shard` subprocesses);
//! each worker runs a [`StreamingAnalyzer`] over its contiguous range
//! and snapshots it into a [`PartialReport`]
//! ([`StreamingAnalyzer::into_partial`]). The coordinator folds the
//! partials **in shard order** with [`PartialReport::merge`] and calls
//! [`PartialReport::finish`] — the *same* fold the resident streaming
//! path uses — so fan-out reports are bit-identical to the resident
//! [`Analyzer`](crate::Analyzer) for every worker count and shard size.
//!
//! The merge laws, per artifact:
//!
//! * integer counters, footprint set unions, histogram bins, and
//!   [`BlockReuse`] stats are associative — any grouping agrees;
//! * `f64` per-sample rows (diagnostics, reuse summaries, locality
//!   partials) are **concatenated**, never pre-summed, and folded once
//!   at finish in global sample order;
//! * cross-boundary exact reuse distances merge through
//!   [`ReusePartial`]: a segment is summarized by its distinct blocks
//!   in first-touch order and in last-access order plus its integer
//!   event/distance sums, which is exactly enough to replay the
//!   boundary events of two adjacent segments (see
//!   [`ReusePartial::absorb`]).
//!
//! Everything crossing a process boundary uses a hand-rolled,
//! length-prefixed, FNV-checksummed binary codec (varints + `f64` as
//! IEEE-754 bits), because serialization here must round-trip **bit
//! exactly** — JSON would not.

use crate::analyzer::{AnalysisConfig, FunctionRow};
use crate::confidence::Confidence;
use crate::diagnostics::FootprintDiagnostics;
use crate::fxhash::FxHashSet;
use crate::histogram::{LocalityPoint, Log2Histogram};
use crate::reuse::BlockReuse;
use crate::streaming::{
    IngestStats, ReuseTracker, SampleReuseSummary, StreamingAnalyzer, StreamingReport,
};
use memgaze_model::{
    compression_ratio, fnv1a64, AuxAnnotations, BlockSize, DecompressionInfo, FrameIndex,
    FunctionId, Ip, IpAnnot, LoadClass, ModelError, SymbolTable, TraceMeta,
};
use std::collections::BTreeMap;
use std::ops::Range;

const PARTIAL_MAGIC: &[u8; 4] = b"MGZP";
const PARTIAL_VERSION: u16 = 1;
const SPEC_MAGIC: &[u8; 4] = b"MGZS";
const SPEC_VERSION: u16 = 1;

/// Errors of the partial-report algebra and its wire codec.
#[derive(Debug)]
pub enum PartialError {
    /// Wire data ended prematurely.
    Truncated {
        /// What was being decoded when input ran out.
        context: &'static str,
    },
    /// Wire data failed a checksum or structural validation.
    Corrupt {
        /// What was wrong.
        detail: String,
    },
    /// Two partials built under different analysis configurations.
    ConfigMismatch {
        /// What differed.
        detail: String,
    },
}

impl std::fmt::Display for PartialError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartialError::Truncated { context } => {
                write!(f, "truncated fan-out data while decoding {context}")
            }
            PartialError::Corrupt { detail } => write!(f, "corrupt fan-out data: {detail}"),
            PartialError::ConfigMismatch { detail } => {
                write!(f, "partial-report config mismatch: {detail}")
            }
        }
    }
}

impl std::error::Error for PartialError {}

/// Exact-merge summary of a [`ReuseTracker`] over one stream segment.
///
/// `firsts` holds the segment's distinct blocks in first-touch order,
/// `lru` the same set in last-access order; `events`/`dist_sum` are the
/// segment-internal reuse totals. This is precisely the information
/// needed to merge two adjacent segments exactly — see
/// [`absorb`](Self::absorb).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReusePartial {
    pub(crate) firsts: Vec<u64>,
    pub(crate) lru: Vec<u64>,
    pub(crate) events: u64,
    pub(crate) dist_sum: u64,
}

impl ReusePartial {
    /// Snapshot a tracker's state.
    pub fn from_tracker(tracker: &ReuseTracker) -> ReusePartial {
        ReusePartial {
            firsts: tracker.first_touch_order().to_vec(),
            lru: tracker.lru_order(),
            events: tracker.events(),
            dist_sum: tracker.distance_sum(),
        }
    }

    /// Reuse events in the summarized stream.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Mean reuse distance, identical to
    /// [`ReuseTracker::mean_distance`] over the same stream.
    pub fn mean_distance(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.dist_sum as f64 / self.events as f64
        }
    }

    /// Merge the summary of the *immediately following* stream segment
    /// into this one, exactly.
    ///
    /// Boundary events — the first access in `other` to a block already
    /// seen in `self` — are replayed through a fresh tracker: feed
    /// `self.lru` (all distinct, so no events), then `other.firsts` in
    /// order. For such a block `b`, the distinct blocks between its two
    /// accesses in the concatenated stream are (a) the `self` blocks
    /// accessed after `b`'s last `self` access — exactly those behind
    /// it in `self.lru` — and (b) the `other` blocks first touched
    /// before `b` — exactly those fed earlier from `other.firsts`; the
    /// tracker's marker moves dedupe the union. Events wholly inside
    /// either segment are already counted in that segment's sums.
    ///
    /// The merged orderings are built structurally (the replay
    /// tracker's post-state does not see `other`'s internal
    /// reorderings): first-touch order is `self.firsts` then `other`'s
    /// new blocks; last-access order is `self.lru` minus `other`'s
    /// blocks, then `other.lru`.
    pub fn absorb(&mut self, other: &ReusePartial) {
        if other.firsts.is_empty() {
            return;
        }
        if self.firsts.is_empty() {
            *self = other.clone();
            return;
        }
        let mut replay = ReuseTracker::new();
        for &b in &self.lru {
            replay.feed(b);
        }
        debug_assert_eq!(replay.events(), 0, "lru blocks are distinct");
        for &b in &other.firsts {
            replay.feed(b);
        }
        let boundary_events = replay.events();
        let boundary_dist = replay.distance_sum();

        let self_blocks: FxHashSet<u64> = self.lru.iter().copied().collect();
        let other_blocks: FxHashSet<u64> = other.lru.iter().copied().collect();
        self.firsts.extend(
            other
                .firsts
                .iter()
                .copied()
                .filter(|b| !self_blocks.contains(b)),
        );
        let mut lru: Vec<u64> = self
            .lru
            .iter()
            .copied()
            .filter(|b| !other_blocks.contains(b))
            .collect();
        lru.extend_from_slice(&other.lru);
        self.lru = lru;
        self.events += other.events + boundary_events;
        self.dist_sum += other.dist_sum + boundary_dist;
    }
}

/// Per-function partial artifacts of one shard range.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncPartial {
    pub(crate) name: String,
    /// Footprint blocks touched, sorted.
    pub(crate) all: Vec<u64>,
    pub(crate) strided: Vec<u64>,
    pub(crate) irregular: Vec<u64>,
    pub(crate) observed: u64,
    pub(crate) implied_const: u64,
    pub(crate) reuse: ReusePartial,
    /// Per-sample footprint observations, in sample order.
    pub(crate) obs: Vec<f64>,
}

impl FuncPartial {
    /// Merge the partial of the immediately following shard range.
    fn absorb(&mut self, other: FuncPartial) {
        union_sorted(&mut self.all, &other.all);
        union_sorted(&mut self.strided, &other.strided);
        union_sorted(&mut self.irregular, &other.irregular);
        self.observed += other.observed;
        self.implied_const += other.implied_const;
        self.reuse.absorb(&other.reuse);
        self.obs.extend(other.obs);
    }
}

/// Union of two sorted, deduplicated block lists.
fn union_sorted(a: &mut Vec<u64>, b: &[u64]) {
    if b.is_empty() {
        return;
    }
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() || j < b.len() {
        let take_a = j >= b.len() || (i < a.len() && a[i] <= b[j]);
        if take_a {
            if j < b.len() && b[j] == a[i] {
                j += 1;
            }
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    *a = out;
}

/// The mergeable snapshot of a [`StreamingAnalyzer`] over one shard
/// range: everything [`finish`](Self::finish) needs, in a form where
/// per-sample rows concatenate and aggregates fold associatively.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialReport {
    pub(crate) footprint_block: BlockSize,
    pub(crate) reuse_block: BlockSize,
    pub(crate) locality_sizes: Vec<u64>,
    pub(crate) num_samples: u64,
    pub(crate) observed: u64,
    pub(crate) implied_const: u64,
    pub(crate) per_sample_diags: Vec<FootprintDiagnostics>,
    pub(crate) per_sample_reuse: Vec<SampleReuseSummary>,
    /// Per locality size, one `(windows, Σd, Σg, Σf)` row per sample.
    pub(crate) locality: Vec<Vec<(u64, f64, f64, f64)>>,
    pub(crate) block_reuse: BlockReuse,
    pub(crate) histogram: Log2Histogram,
    pub(crate) funcs: BTreeMap<u32, FuncPartial>,
    pub(crate) stats: IngestStats,
}

impl PartialReport {
    /// The merge identity for a given configuration: merging any
    /// partial into it yields that partial.
    pub fn empty(
        footprint_block: BlockSize,
        reuse_block: BlockSize,
        locality_sizes: &[u64],
    ) -> PartialReport {
        PartialReport {
            footprint_block,
            reuse_block,
            locality_sizes: locality_sizes.to_vec(),
            num_samples: 0,
            observed: 0,
            implied_const: 0,
            per_sample_diags: Vec::new(),
            per_sample_reuse: Vec::new(),
            locality: vec![Vec::new(); locality_sizes.len()],
            block_reuse: BlockReuse::default(),
            histogram: Log2Histogram::new(),
            funcs: BTreeMap::new(),
            stats: IngestStats::default(),
        }
    }

    /// Samples summarized by this partial.
    pub fn num_samples(&self) -> u64 {
        self.num_samples
    }

    /// Ingest accounting of the pass that produced this partial
    /// (rolled up across merges: counters sum, peaks take the max).
    pub fn stats(&self) -> &IngestStats {
        &self.stats
    }

    /// Merge the partial of the **immediately following** shard range
    /// into this one. Merging in any other order silently computes a
    /// different (wrong) trace, so the coordinator keys partials by
    /// range index and folds them in ascending order.
    pub fn merge(&mut self, other: PartialReport) -> Result<(), PartialError> {
        if self.footprint_block != other.footprint_block || self.reuse_block != other.reuse_block {
            return Err(PartialError::ConfigMismatch {
                detail: format!(
                    "block sizes ({:?}/{:?}) vs ({:?}/{:?})",
                    self.footprint_block,
                    self.reuse_block,
                    other.footprint_block,
                    other.reuse_block
                ),
            });
        }
        if self.locality_sizes != other.locality_sizes {
            return Err(PartialError::ConfigMismatch {
                detail: format!(
                    "locality sizes {:?} vs {:?}",
                    self.locality_sizes, other.locality_sizes
                ),
            });
        }
        self.num_samples += other.num_samples;
        self.observed += other.observed;
        self.implied_const += other.implied_const;
        self.per_sample_diags.extend(other.per_sample_diags);
        self.per_sample_reuse.extend(other.per_sample_reuse);
        for (rows, orows) in self.locality.iter_mut().zip(other.locality) {
            rows.extend(orows);
        }
        self.block_reuse.merge(&other.block_reuse);
        self.histogram.merge(&other.histogram);
        for (id, fp) in other.funcs {
            match self.funcs.entry(id) {
                std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().absorb(fp),
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(fp);
                }
            }
        }
        self.stats.merge(&other.stats);
        Ok(())
    }

    /// Fold into the final report — the single fold shared with
    /// [`StreamingAnalyzer::finish`], which is what makes fan-out
    /// reports bit-identical to resident streaming by construction.
    pub fn finish(self, meta: &TraceMeta) -> StreamingReport {
        let decompression = DecompressionInfo {
            num_samples: self.num_samples,
            period: meta.period,
            observed: self.observed,
            implied_const: self.implied_const,
        };
        let rho = decompression.rho();
        let fb = self.footprint_block;

        let mut function_rows: Vec<FunctionRow> = self
            .funcs
            .into_values()
            .map(|fp| {
                let kappa = compression_ratio(fp.observed, fp.implied_const);
                let diag = FootprintDiagnostics {
                    observed: fp.observed,
                    implied_const: fp.implied_const,
                    footprint: fp.all.len() as u64,
                    f_str: fp.strided.len() as u64,
                    f_irr: fp.irregular.len() as u64,
                    kappa,
                };
                FunctionRow {
                    name: fp.name,
                    f_hat_bytes: rho * diag.footprint as f64 * fb.bytes() as f64,
                    delta_f: diag.delta_f(),
                    f_str_pct: diag.delta_f_str_pct(),
                    accesses_decompressed: diag.kappa * diag.observed as f64,
                    observed: diag.observed,
                    mean_d: fp.reuse.mean_distance(),
                    confidence: Confidence::from_observations(&fp.obs),
                }
            })
            .collect();
        function_rows.sort_by(|a, b| b.accesses_decompressed.total_cmp(&a.accesses_decompressed));

        let locality_series: Vec<LocalityPoint> = self
            .locality_sizes
            .iter()
            .zip(&self.locality)
            .filter_map(|(&size, rows)| {
                let mut n = 0u64;
                let (mut sum_d, mut sum_g, mut sum_f) = (0.0, 0.0, 0.0);
                for &(pn, pd, pg, pf) in rows {
                    n += pn;
                    sum_d += pd;
                    sum_g += pg;
                    sum_f += pf;
                }
                (n > 0).then(|| LocalityPoint {
                    interval: size,
                    mean_d: sum_d / n as f64,
                    mean_delta_f: sum_g / n as f64,
                    mean_f: sum_f / n as f64,
                    windows: n,
                })
            })
            .collect();

        crate::streaming::StreamingReport {
            decompression,
            function_rows,
            block_reuse: self.block_reuse,
            reuse_histogram: self.histogram,
            locality_series,
            ingest: self.stats,
            footprint_block: fb,
            reuse_block: self.reuse_block,
            per_sample_diags: self.per_sample_diags,
            per_sample_reuse: self.per_sample_reuse,
        }
    }

    /// Serialize for the worker→coordinator pipe (`MGZP` framing,
    /// FNV-checksummed, `f64` as IEEE-754 bits — bit-exact round trip).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(1024);
        buf.extend_from_slice(PARTIAL_MAGIC);
        buf.extend_from_slice(&PARTIAL_VERSION.to_le_bytes());
        buf.push(self.footprint_block.log2());
        buf.push(self.reuse_block.log2());
        put_u64s(&mut buf, &self.locality_sizes);
        put_varint(&mut buf, self.num_samples);
        put_varint(&mut buf, self.observed);
        put_varint(&mut buf, self.implied_const);
        put_varint(&mut buf, self.per_sample_diags.len() as u64);
        for d in &self.per_sample_diags {
            put_varint(&mut buf, d.observed);
            put_varint(&mut buf, d.implied_const);
            put_varint(&mut buf, d.footprint);
            put_varint(&mut buf, d.f_str);
            put_varint(&mut buf, d.f_irr);
            put_f64(&mut buf, d.kappa);
        }
        put_varint(&mut buf, self.per_sample_reuse.len() as u64);
        for r in &self.per_sample_reuse {
            put_varint(&mut buf, r.events as u64);
            put_f64(&mut buf, r.mean_d);
        }
        for rows in &self.locality {
            put_varint(&mut buf, rows.len() as u64);
            for &(n, d, g, fval) in rows {
                put_varint(&mut buf, n);
                put_f64(&mut buf, d);
                put_f64(&mut buf, g);
                put_f64(&mut buf, fval);
            }
        }
        put_varint(&mut buf, self.block_reuse.len() as u64);
        let mut prev_block = 0u64;
        for (block, stats) in self.block_reuse.raw_rows() {
            put_varint(&mut buf, block - prev_block);
            prev_block = block;
            for s in stats {
                put_varint(&mut buf, s);
            }
        }
        let (bins, count, sum) = self.histogram.raw_parts();
        put_u64s(&mut buf, bins);
        put_varint(&mut buf, count);
        put_varint(&mut buf, sum);
        put_varint(&mut buf, self.funcs.len() as u64);
        for (&id, fp) in &self.funcs {
            put_varint(&mut buf, u64::from(id));
            put_str(&mut buf, &fp.name);
            put_sorted(&mut buf, &fp.all);
            put_sorted(&mut buf, &fp.strided);
            put_sorted(&mut buf, &fp.irregular);
            put_varint(&mut buf, fp.observed);
            put_varint(&mut buf, fp.implied_const);
            put_u64s(&mut buf, &fp.reuse.firsts);
            put_u64s(&mut buf, &fp.reuse.lru);
            put_varint(&mut buf, fp.reuse.events);
            put_varint(&mut buf, fp.reuse.dist_sum);
            put_varint(&mut buf, fp.obs.len() as u64);
            for &o in &fp.obs {
                put_f64(&mut buf, o);
            }
        }
        put_varint(&mut buf, self.stats.shards);
        put_varint(&mut buf, self.stats.samples);
        put_varint(&mut buf, self.stats.merge_events);
        put_varint(&mut buf, self.stats.peak_shard_samples as u64);
        put_varint(&mut buf, self.stats.peak_shard_bytes as u64);
        let sum = fnv1a64(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        buf
    }

    /// Decode a serialized partial, rejecting truncation, corruption,
    /// and structural inconsistencies — a worker's garbled output must
    /// surface as a typed error, never a bad merge.
    pub fn decode(data: &[u8]) -> Result<PartialReport, PartialError> {
        let body = check_frame(data, PARTIAL_MAGIC, PARTIAL_VERSION, "partial report")?;
        let mut src = body;
        let footprint_block = get_block_size(&mut src, "partial footprint block")?;
        let reuse_block = get_block_size(&mut src, "partial reuse block")?;
        let locality_sizes = get_u64s(&mut src, "partial locality sizes")?;
        let num_samples = get_varint(&mut src, "partial num_samples")?;
        let observed = get_varint(&mut src, "partial observed")?;
        let implied_const = get_varint(&mut src, "partial implied_const")?;
        let n = get_len(&mut src, "partial diag count")?;
        let mut per_sample_diags = Vec::with_capacity(n);
        for _ in 0..n {
            per_sample_diags.push(FootprintDiagnostics {
                observed: get_varint(&mut src, "diag observed")?,
                implied_const: get_varint(&mut src, "diag implied_const")?,
                footprint: get_varint(&mut src, "diag footprint")?,
                f_str: get_varint(&mut src, "diag f_str")?,
                f_irr: get_varint(&mut src, "diag f_irr")?,
                kappa: get_f64(&mut src, "diag kappa")?,
            });
        }
        let n = get_len(&mut src, "partial reuse count")?;
        let mut per_sample_reuse = Vec::with_capacity(n);
        for _ in 0..n {
            per_sample_reuse.push(SampleReuseSummary {
                events: get_varint(&mut src, "reuse events")? as usize,
                mean_d: get_f64(&mut src, "reuse mean_d")?,
            });
        }
        let mut locality = Vec::with_capacity(locality_sizes.len());
        for _ in 0..locality_sizes.len() {
            let n = get_len(&mut src, "locality row count")?;
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                rows.push((
                    get_varint(&mut src, "locality windows")?,
                    get_f64(&mut src, "locality d")?,
                    get_f64(&mut src, "locality g")?,
                    get_f64(&mut src, "locality f")?,
                ));
            }
            locality.push(rows);
        }
        let n = get_len(&mut src, "block reuse count")?;
        let mut rows = Vec::with_capacity(n);
        let mut block = 0u64;
        for _ in 0..n {
            block += get_varint(&mut src, "block delta")?;
            let mut stats = [0u64; 4];
            for s in &mut stats {
                *s = get_varint(&mut src, "block stat")?;
            }
            rows.push((block, stats));
        }
        let block_reuse = BlockReuse::from_raw_rows(rows).ok_or_else(|| PartialError::Corrupt {
            detail: "block reuse rows out of order".to_string(),
        })?;
        let bins = get_u64s(&mut src, "histogram bins")?;
        let count = get_varint(&mut src, "histogram count")?;
        let sum = get_varint(&mut src, "histogram sum")?;
        let histogram = Log2Histogram::from_raw_parts(bins, count, sum);
        let n = get_len(&mut src, "function count")?;
        let mut funcs = BTreeMap::new();
        for _ in 0..n {
            let id = get_varint(&mut src, "function id")?;
            let id = u32::try_from(id).map_err(|_| PartialError::Corrupt {
                detail: format!("function id {id} out of range"),
            })?;
            let fp = FuncPartial {
                name: get_str(&mut src, "function name")?,
                all: get_sorted(&mut src, "function footprint")?,
                strided: get_sorted(&mut src, "function strided")?,
                irregular: get_sorted(&mut src, "function irregular")?,
                observed: get_varint(&mut src, "function observed")?,
                implied_const: get_varint(&mut src, "function implied_const")?,
                reuse: ReusePartial {
                    firsts: get_u64s(&mut src, "function firsts")?,
                    lru: get_u64s(&mut src, "function lru")?,
                    events: get_varint(&mut src, "function events")?,
                    dist_sum: get_varint(&mut src, "function dist_sum")?,
                },
                obs: {
                    let n = get_len(&mut src, "function obs count")?;
                    let mut obs = Vec::with_capacity(n);
                    for _ in 0..n {
                        obs.push(get_f64(&mut src, "function obs")?);
                    }
                    obs
                },
            };
            funcs.insert(id, fp);
        }
        let stats = IngestStats {
            shards: get_varint(&mut src, "stats shards")?,
            samples: get_varint(&mut src, "stats samples")?,
            merge_events: get_varint(&mut src, "stats merges")?,
            peak_shard_samples: get_varint(&mut src, "stats peak samples")? as usize,
            peak_shard_bytes: get_varint(&mut src, "stats peak bytes")? as usize,
        };
        if !src.is_empty() {
            return Err(PartialError::Corrupt {
                detail: format!("{} trailing bytes in partial report", src.len()),
            });
        }
        Ok(PartialReport {
            footprint_block,
            reuse_block,
            locality_sizes,
            num_samples,
            observed,
            implied_const,
            per_sample_diags,
            per_sample_reuse,
            locality,
            block_reuse,
            histogram,
            funcs,
            stats,
        })
    }
}

/// Everything a worker needs besides the container + index: the side
/// tables and the analysis configuration. Shipped to workers as a spec
/// file (`MGZS` framing).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerSpec {
    /// Footprint block size.
    pub footprint_block: BlockSize,
    /// Reuse block size.
    pub reuse_block: BlockSize,
    /// Analysis threads per worker.
    pub threads: usize,
    /// Locality-vs-interval sizes.
    pub locality_sizes: Vec<u64>,
    /// The instrumentor's annotation side table.
    pub annots: AuxAnnotations,
    /// Function symbols.
    pub symbols: SymbolTable,
}

impl WorkerSpec {
    /// The analysis configuration this spec encodes. Zoom settings are
    /// irrelevant to the streaming path and take their defaults.
    pub fn analysis_config(&self) -> AnalysisConfig {
        AnalysisConfig {
            footprint_block: self.footprint_block,
            reuse_block: self.reuse_block,
            threads: self.threads.max(1),
            ..AnalysisConfig::default()
        }
    }

    /// Serialize (`MGZS` framing, FNV-checksummed).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(256);
        buf.extend_from_slice(SPEC_MAGIC);
        buf.extend_from_slice(&SPEC_VERSION.to_le_bytes());
        buf.push(self.footprint_block.log2());
        buf.push(self.reuse_block.log2());
        put_varint(&mut buf, self.threads as u64);
        put_u64s(&mut buf, &self.locality_sizes);
        put_varint(&mut buf, self.annots.len() as u64);
        for (ip, an) in self.annots.iter() {
            put_varint(&mut buf, ip.raw());
            buf.push(match an.class {
                LoadClass::Constant => 0,
                LoadClass::Strided => 1,
                LoadClass::Irregular => 2,
            });
            put_varint(&mut buf, u64::from(an.implied_const));
            buf.push(an.scale);
            put_varint(&mut buf, zigzag(an.offset));
            buf.push(u8::from(an.two_source));
            put_varint(&mut buf, u64::from(an.func.0));
            put_varint(&mut buf, u64::from(an.src_line));
        }
        put_varint(&mut buf, self.symbols.len() as u64);
        for f in self.symbols.functions() {
            put_str(&mut buf, &f.name);
            put_varint(&mut buf, f.lo.raw());
            put_varint(&mut buf, f.hi.raw());
            put_str(&mut buf, &f.src_file);
        }
        let sum = fnv1a64(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        buf
    }

    /// Decode a serialized spec.
    pub fn decode(data: &[u8]) -> Result<WorkerSpec, PartialError> {
        let body = check_frame(data, SPEC_MAGIC, SPEC_VERSION, "worker spec")?;
        let mut src = body;
        let footprint_block = get_block_size(&mut src, "spec footprint block")?;
        let reuse_block = get_block_size(&mut src, "spec reuse block")?;
        let threads = get_varint(&mut src, "spec threads")? as usize;
        let locality_sizes = get_u64s(&mut src, "spec locality sizes")?;
        let n = get_len(&mut src, "spec annot count")?;
        let mut annots = AuxAnnotations::new();
        for _ in 0..n {
            let ip = Ip(get_varint(&mut src, "annot ip")?);
            let class = match get_byte(&mut src, "annot class")? {
                0 => LoadClass::Constant,
                1 => LoadClass::Strided,
                2 => LoadClass::Irregular,
                other => {
                    return Err(PartialError::Corrupt {
                        detail: format!("unknown load class {other}"),
                    })
                }
            };
            let implied_const = get_varint(&mut src, "annot implied_const")?;
            let implied_const =
                u32::try_from(implied_const).map_err(|_| PartialError::Corrupt {
                    detail: format!("annot implied_const {implied_const} out of range"),
                })?;
            let scale = get_byte(&mut src, "annot scale")?;
            let offset = unzigzag(get_varint(&mut src, "annot offset")?);
            let two_source = get_byte(&mut src, "annot two_source")? != 0;
            let func = get_varint(&mut src, "annot func")?;
            let func = u32::try_from(func).map_err(|_| PartialError::Corrupt {
                detail: format!("annot func id {func} out of range"),
            })?;
            let src_line = get_varint(&mut src, "annot src_line")?;
            let src_line = u32::try_from(src_line).map_err(|_| PartialError::Corrupt {
                detail: format!("annot src_line {src_line} out of range"),
            })?;
            let mut an = IpAnnot::of_class(class, FunctionId(func));
            an.implied_const = implied_const;
            an.scale = scale;
            an.offset = offset;
            an.two_source = two_source;
            an.src_line = src_line;
            annots.insert(ip, an);
        }
        let n = get_len(&mut src, "spec symbol count")?;
        let mut symbols = SymbolTable::new();
        for _ in 0..n {
            let name = get_str(&mut src, "symbol name")?;
            let lo = Ip(get_varint(&mut src, "symbol lo")?);
            let hi = Ip(get_varint(&mut src, "symbol hi")?);
            let src_file = get_str(&mut src, "symbol src_file")?;
            if hi.raw() <= lo.raw() {
                return Err(PartialError::Corrupt {
                    detail: format!("symbol {name} has empty range"),
                });
            }
            symbols.add_function(&name, lo, hi, &src_file);
        }
        if !src.is_empty() {
            return Err(PartialError::Corrupt {
                detail: format!("{} trailing bytes in worker spec", src.len()),
            });
        }
        Ok(WorkerSpec {
            footprint_block,
            reuse_block,
            threads,
            locality_sizes,
            annots,
            symbols,
        })
    }
}

/// Run a [`StreamingAnalyzer`] over the contiguous frame range
/// `frames` of an indexed container — the worker's whole job between
/// decode and ship-back. Frames are fetched by seek via the index,
/// never by scanning.
pub fn analyze_frames(
    container: &[u8],
    index: &FrameIndex,
    frames: Range<usize>,
    annots: &AuxAnnotations,
    symbols: &SymbolTable,
    cfg: AnalysisConfig,
    locality_sizes: &[u64],
) -> Result<PartialReport, ModelError> {
    let mut span = memgaze_obs::span("worker.analyze_frames");
    if span.is_active() {
        span.set_label(format!("frames {}..{}", frames.start, frames.end));
    }
    let mut sa = StreamingAnalyzer::new(annots, symbols, cfg).with_locality_sizes(locality_sizes);
    for i in frames {
        let samples = index.read_frame(container, i)?;
        sa.ingest_shard(&samples);
    }
    Ok(sa.into_partial())
}

/// Partition the indexed frames into at most `workers` contiguous
/// ranges, balanced by sample count (frames vary in size; samples are
/// the unit of analysis work). Every returned range is non-empty;
/// fewer than `workers` ranges come back when there are fewer frames.
pub fn partition_frames(index: &FrameIndex, workers: usize) -> Vec<Range<usize>> {
    let n = index.entries.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    let weights: Vec<u64> = index.entries.iter().map(|e| e.samples.max(1)).collect();
    let total: u64 = weights.iter().sum();
    let mut out = Vec::with_capacity(workers);
    let mut start = 0usize;
    let mut acc = 0u64;
    for (i, &w) in weights.iter().enumerate() {
        acc += w;
        let k = out.len() + 1;
        if k < workers && i + 1 < n {
            let quota_met = acc as u128 * workers as u128 >= total as u128 * k as u128;
            let must_close = n - (i + 1) == workers - k;
            if quota_met || must_close {
                out.push(start..i + 1);
                start = i + 1;
            }
        }
    }
    out.push(start..n);
    out
}

// ---- wire primitives ----

fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(b);
            return;
        }
        buf.push(b | 0x80);
    }
}

fn get_varint(src: &mut &[u8], context: &'static str) -> Result<u64, PartialError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = get_byte(src, context)?;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(PartialError::Corrupt {
                detail: format!("varint overflow in {context}"),
            });
        }
    }
}

fn get_byte(src: &mut &[u8], context: &'static str) -> Result<u8, PartialError> {
    let (&b, rest) = src
        .split_first()
        .ok_or(PartialError::Truncated { context })?;
    *src = rest;
    Ok(b)
}

/// A length prefix, bounded by the bytes actually remaining so corrupt
/// counts cannot trigger giant allocations.
fn get_len(src: &mut &[u8], context: &'static str) -> Result<usize, PartialError> {
    let n = get_varint(src, context)? as usize;
    if n > src.len() {
        return Err(PartialError::Truncated { context });
    }
    Ok(n)
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn get_f64(src: &mut &[u8], context: &'static str) -> Result<f64, PartialError> {
    if src.len() < 8 {
        return Err(PartialError::Truncated { context });
    }
    let (bytes, rest) = src.split_at(8);
    *src = rest;
    Ok(f64::from_bits(u64::from_le_bytes(
        bytes.try_into().expect("split_at gave 8 bytes"),
    )))
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn get_str(src: &mut &[u8], context: &'static str) -> Result<String, PartialError> {
    let n = get_len(src, context)?;
    let (bytes, rest) = src.split_at(n);
    *src = rest;
    String::from_utf8(bytes.to_vec()).map_err(|_| PartialError::Corrupt {
        detail: format!("non-utf8 string in {context}"),
    })
}

fn put_u64s(buf: &mut Vec<u8>, vs: &[u64]) {
    put_varint(buf, vs.len() as u64);
    for &v in vs {
        put_varint(buf, v);
    }
}

fn get_u64s(src: &mut &[u8], context: &'static str) -> Result<Vec<u64>, PartialError> {
    let n = get_len(src, context)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_varint(src, context)?);
    }
    Ok(out)
}

/// Sorted lists delta-encode; also validates order on decode.
fn put_sorted(buf: &mut Vec<u8>, vs: &[u64]) {
    put_varint(buf, vs.len() as u64);
    let mut prev = 0u64;
    for &v in vs {
        put_varint(buf, v - prev);
        prev = v;
    }
}

fn get_sorted(src: &mut &[u8], context: &'static str) -> Result<Vec<u64>, PartialError> {
    let n = get_len(src, context)?;
    let mut out = Vec::with_capacity(n);
    let mut v = 0u64;
    for i in 0..n {
        let delta = get_varint(src, context)?;
        if i > 0 && delta == 0 {
            return Err(PartialError::Corrupt {
                detail: format!("duplicate entry in sorted list ({context})"),
            });
        }
        v += delta;
        out.push(v);
    }
    Ok(out)
}

fn get_block_size(src: &mut &[u8], context: &'static str) -> Result<BlockSize, PartialError> {
    let log2 = get_byte(src, context)?;
    if log2 >= 64 {
        return Err(PartialError::Corrupt {
            detail: format!("block size log2 {log2} out of range ({context})"),
        });
    }
    Ok(BlockSize::from_log2(log2))
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// Validate magic + version + trailing FNV checksum, returning the body.
fn check_frame<'a>(
    data: &'a [u8],
    magic: &[u8; 4],
    version: u16,
    what: &'static str,
) -> Result<&'a [u8], PartialError> {
    if data.len() < 14 {
        return Err(PartialError::Truncated { context: what });
    }
    let (body, sum_bytes) = data.split_at(data.len() - 8);
    let want = u64::from_le_bytes(sum_bytes.try_into().expect("split_at gave 8 bytes"));
    if fnv1a64(body) != want {
        return Err(PartialError::Corrupt {
            detail: format!("{what} checksum mismatch"),
        });
    }
    if &body[..4] != magic {
        return Err(PartialError::Corrupt {
            detail: format!("{what} magic {:?}", &body[..4]),
        });
    }
    let ver = u16::from_le_bytes([body[4], body[5]]);
    if ver != version {
        return Err(PartialError::Corrupt {
            detail: format!("{what} version {ver}, expected {version}"),
        });
    }
    Ok(&body[6..])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streaming::stream_resident_trace;
    use memgaze_model::{encode_sharded_indexed, Access, Sample, SampledTrace};

    fn mk_stream(seed: u64, n: usize) -> Vec<u64> {
        // Deterministic pseudo-random block stream with heavy reuse.
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) % 37
            })
            .collect()
    }

    #[test]
    fn reuse_partial_merge_is_exact() {
        let stream = mk_stream(7, 400);
        for splits in [
            vec![400],
            vec![0, 400],
            vec![1, 399],
            vec![130, 270],
            vec![50, 50, 100, 200],
        ] {
            // Whole-stream reference.
            let mut whole = ReuseTracker::new();
            for &b in &stream {
                whole.feed(b);
            }
            // Segment trackers merged via ReusePartial.
            let mut merged = ReusePartial::default();
            let mut lo = 0usize;
            let mut segs = Vec::new();
            for &len in &splits {
                segs.push(&stream[lo..lo + len]);
                lo += len;
            }
            segs.push(&stream[lo..]);
            for seg in segs {
                let mut t = ReuseTracker::with_slot_capacity(8); // force compactions
                for &b in seg {
                    t.feed(b);
                }
                merged.absorb(&ReusePartial::from_tracker(&t));
            }
            assert_eq!(merged.events, whole.events(), "{splits:?}");
            assert_eq!(merged.dist_sum, whole.distance_sum(), "{splits:?}");
            assert_eq!(merged.firsts, whole.first_touch_order(), "{splits:?}");
            assert_eq!(merged.lru, whole.lru_order(), "{splits:?}");
        }
    }

    fn synthetic_trace() -> (SampledTrace, AuxAnnotations, SymbolTable) {
        let mut t = SampledTrace::new(TraceMeta::new("fanout-test", 10_000, 16 << 10));
        t.meta.total_loads = 120_000;
        t.meta.total_instrumented_loads = 1200;
        for s in 0..12u64 {
            let base = s * 10_000;
            let mut accesses = Vec::new();
            for i in 0..(60 + (s * 13) % 50) {
                let (ip, addr) = if i % 3 == 0 {
                    (0x500 + (i % 2) * 4, 0x20_0000 + (i % 23) * 64)
                } else {
                    (0x400 + (i % 5) * 4, 0x10_0000 + (s * 100 + i) * 16)
                };
                accesses.push(Access::new(ip, addr, base + i));
            }
            let n = accesses.len() as u64;
            t.push_sample(Sample::new(accesses, base + n)).unwrap();
        }
        let mut annots = AuxAnnotations::new();
        for k in 0..5u64 {
            let mut an = IpAnnot::of_class(LoadClass::Strided, FunctionId(0));
            an.implied_const = 2;
            annots.insert(Ip(0x400 + k * 4), an);
        }
        annots.insert(
            Ip(0x500),
            IpAnnot::of_class(LoadClass::Irregular, FunctionId(1)),
        );
        let mut symbols = SymbolTable::new();
        symbols.add_function("alpha", Ip(0x400), Ip(0x500), "a.c");
        symbols.add_function("beta", Ip(0x500), Ip(0x600), "b.c");
        (t, annots, symbols)
    }

    #[test]
    fn merged_partials_match_single_pass_for_any_split() {
        let (t, annots, symbols) = synthetic_trace();
        let cfg = AnalysisConfig {
            threads: 1,
            ..AnalysisConfig::default()
        };
        let sizes = [8u64, 32];
        let (container, index) = encode_sharded_indexed(&t, 3);
        let whole = stream_resident_trace(&t, &annots, &symbols, cfg, &sizes, 3);
        for workers in [1usize, 2, 3, 4, 7] {
            let ranges = partition_frames(&index, workers);
            let mut merged = PartialReport::empty(cfg.footprint_block, cfg.reuse_block, &sizes);
            for r in ranges {
                let p =
                    analyze_frames(&container, &index, r, &annots, &symbols, cfg, &sizes).unwrap();
                merged.merge(p).unwrap();
            }
            let report = merged.finish(&t.meta);
            assert_eq!(
                report.decompression, whole.decompression,
                "workers {workers}"
            );
            assert_eq!(
                report.function_rows, whole.function_rows,
                "workers {workers}"
            );
            assert_eq!(report.block_reuse, whole.block_reuse, "workers {workers}");
            assert_eq!(
                report.reuse_histogram, whole.reuse_histogram,
                "workers {workers}"
            );
            assert_eq!(
                report.locality_series, whole.locality_series,
                "workers {workers}"
            );
            for n in [1usize, 3, 5] {
                assert_eq!(
                    report.interval_rows(n),
                    whole.interval_rows(n),
                    "workers {workers}"
                );
            }
        }
    }

    #[test]
    fn partial_report_roundtrips_through_codec() {
        let (t, annots, symbols) = synthetic_trace();
        let cfg = AnalysisConfig {
            threads: 1,
            ..AnalysisConfig::default()
        };
        let (container, index) = encode_sharded_indexed(&t, 4);
        let p = analyze_frames(
            &container,
            &index,
            0..index.entries.len(),
            &annots,
            &symbols,
            cfg,
            &[16],
        )
        .unwrap();
        let wire = p.encode();
        let back = PartialReport::decode(&wire).unwrap();
        assert_eq!(p, back);
        // Truncation and corruption are typed errors.
        assert!(PartialReport::decode(&wire[..wire.len() - 3]).is_err());
        let mut flipped = wire.clone();
        flipped[20] ^= 0x10;
        assert!(PartialReport::decode(&flipped).is_err());
        assert!(PartialReport::decode(b"MGZP\x01\x00junk").is_err());
    }

    #[test]
    fn worker_spec_roundtrips_through_codec() {
        let (_, annots, symbols) = synthetic_trace();
        let spec = WorkerSpec {
            footprint_block: BlockSize::WORD,
            reuse_block: BlockSize::CACHE_LINE,
            threads: 2,
            locality_sizes: vec![8, 64],
            annots,
            symbols,
        };
        let wire = spec.encode();
        let back = WorkerSpec::decode(&wire).unwrap();
        assert_eq!(spec, back);
        assert!(WorkerSpec::decode(&wire[..wire.len() - 1]).is_err());
    }

    #[test]
    fn partition_covers_all_frames_without_overlap() {
        let (t, _, _) = synthetic_trace();
        for shard in [1usize, 2, 5] {
            let (_, index) = encode_sharded_indexed(&t, shard);
            for workers in [1usize, 2, 3, 4, 8, 64] {
                let ranges = partition_frames(&index, workers);
                assert!(ranges.len() <= workers.max(1));
                let mut next = 0usize;
                for r in &ranges {
                    assert_eq!(r.start, next, "shard {shard} workers {workers}");
                    assert!(r.end > r.start, "empty range");
                    next = r.end;
                }
                assert_eq!(next, index.entries.len());
            }
        }
    }

    #[test]
    fn merge_rejects_mismatched_configs() {
        let a = PartialReport::empty(BlockSize::WORD, BlockSize::CACHE_LINE, &[8]);
        let mut b = PartialReport::empty(BlockSize::WORD, BlockSize::CACHE_LINE, &[16]);
        assert!(matches!(
            b.merge(a.clone()),
            Err(PartialError::ConfigMismatch { .. })
        ));
        let mut c = PartialReport::empty(BlockSize::OS_PAGE, BlockSize::CACHE_LINE, &[8]);
        assert!(matches!(
            c.merge(a),
            Err(PartialError::ConfigMismatch { .. })
        ));
    }
}
