//! Footprint access diagnostics (paper §V-E).
//!
//! Decomposes footprint into strided (prefetchable) and irregular
//! (non-prefetchable) components using the statically assigned load
//! classes — "constant time per operation, without any pattern analysis".
//! Metrics: `F_str`, `F_irr`, their growth rates, the fraction of
//! footprint growth due to each, and the fraction of Constant accesses
//! `A_const%`.

use crate::footprint::footprint_growth;
use crate::fxhash::FxHashSet;
use memgaze_model::{Access, AuxAnnotations, BlockSize, LoadClass};
use serde::{Deserialize, Serialize};

/// The footprint access diagnostics of one window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FootprintDiagnostics {
    /// Observed accesses `A` in the window.
    pub observed: u64,
    /// Implied Constant accesses `A_const`.
    pub implied_const: u64,
    /// Footprint in blocks.
    pub footprint: u64,
    /// Footprint of blocks touched by Strided accesses.
    pub f_str: u64,
    /// Footprint of blocks touched by Irregular accesses.
    pub f_irr: u64,
    /// Compression ratio κ of the window.
    pub kappa: f64,
}

impl FootprintDiagnostics {
    /// Compute the diagnostics of a window given the annotation file.
    pub fn compute(accesses: &[Access], annots: &AuxAnnotations, bs: BlockSize) -> Self {
        let mut all: FxHashSet<u64> =
            FxHashSet::with_capacity_and_hasher(accesses.len(), Default::default());
        let mut strided: FxHashSet<u64> = FxHashSet::default();
        let mut irregular: FxHashSet<u64> = FxHashSet::default();
        let mut implied_const = 0u64;
        for a in accesses {
            let b = a.addr.block(bs);
            all.insert(b);
            match annots.class_of(a.ip) {
                LoadClass::Strided => {
                    strided.insert(b);
                }
                LoadClass::Irregular => {
                    irregular.insert(b);
                }
                // Constant accesses appear in uncompressed traces; they
                // occupy "1 unit" of space and are excluded from the
                // str/irr decomposition.
                LoadClass::Constant => {}
            }
            implied_const += annots.implied_const_of(a.ip);
        }
        let observed = accesses.len() as u64;
        FootprintDiagnostics {
            observed,
            implied_const,
            footprint: all.len() as u64,
            f_str: strided.len() as u64,
            f_irr: irregular.len() as u64,
            kappa: memgaze_model::compression_ratio(observed, implied_const),
        }
    }

    /// Footprint growth `ΔF̂` (Eq. 4).
    pub fn delta_f(&self) -> f64 {
        footprint_growth(self.footprint, self.observed, self.kappa)
    }

    /// Strided footprint growth.
    pub fn delta_f_str(&self) -> f64 {
        footprint_growth(self.f_str, self.observed, self.kappa)
    }

    /// Irregular footprint growth.
    pub fn delta_f_irr(&self) -> f64 {
        footprint_growth(self.f_irr, self.observed, self.kappa)
    }

    /// Percentage of footprint with strided access (`F_str%`).
    pub fn f_str_pct(&self) -> f64 {
        if self.footprint == 0 {
            0.0
        } else {
            100.0 * self.f_str as f64 / self.footprint as f64
        }
    }

    /// Percentage of footprint with irregular access (`F_irr%`).
    pub fn f_irr_pct(&self) -> f64 {
        if self.footprint == 0 {
            0.0
        } else {
            100.0 * self.f_irr as f64 / self.footprint as f64
        }
    }

    /// Fraction of footprint growth due to strided accesses
    /// (`ΔF_str%`), normalized over the classified components.
    pub fn delta_f_str_pct(&self) -> f64 {
        let denom = (self.f_str + self.f_irr) as f64;
        if denom == 0.0 {
            0.0
        } else {
            100.0 * self.f_str as f64 / denom
        }
    }

    /// Fraction of footprint growth due to irregular accesses
    /// (`ΔF_irr%`).
    pub fn delta_f_irr_pct(&self) -> f64 {
        let denom = (self.f_str + self.f_irr) as f64;
        if denom == 0.0 {
            0.0
        } else {
            100.0 * self.f_irr as f64 / denom
        }
    }

    /// Fraction of accesses to constant-sized data (`A_const%`).
    pub fn a_const_pct(&self) -> f64 {
        let total = self.observed + self.implied_const;
        if total == 0 {
            0.0
        } else {
            100.0 * self.implied_const as f64 / total as f64
        }
    }

    /// Merge another window's diagnostics (aggregation over samples;
    /// footprints add — an over-estimate the paper acknowledges as
    /// "quantitative overestimates rather than qualitative", §VI-A).
    pub fn merge(&mut self, other: &FootprintDiagnostics) {
        self.observed += other.observed;
        self.implied_const += other.implied_const;
        self.footprint += other.footprint;
        self.f_str += other.f_str;
        self.f_irr += other.f_irr;
        self.kappa = memgaze_model::compression_ratio(self.observed, self.implied_const);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memgaze_model::{Access, FunctionId, Ip, IpAnnot};

    /// Annotations: 0x10 strided (1 implied const), 0x20 irregular.
    fn annots() -> AuxAnnotations {
        let mut ax = AuxAnnotations::new();
        let mut s = IpAnnot::of_class(LoadClass::Strided, FunctionId(0));
        s.implied_const = 1;
        ax.insert(Ip(0x10), s);
        ax.insert(
            Ip(0x20),
            IpAnnot::of_class(LoadClass::Irregular, FunctionId(0)),
        );
        ax
    }

    fn acc(ip: u64, block: u64, t: u64) -> Access {
        Access::new(ip, block * 64, t)
    }

    #[test]
    fn decomposition_by_class() {
        let ax = annots();
        // Strided loads hit blocks 0..4; irregular hit blocks 4, 10.
        let mut w = Vec::new();
        for (t, b) in [0u64, 1, 2, 3].iter().enumerate() {
            w.push(acc(0x10, *b, t as u64));
        }
        w.push(acc(0x20, 4, 4));
        w.push(acc(0x20, 10, 5));
        w.push(acc(0x10, 4, 6)); // overlap block 4 touched by both

        let d = FootprintDiagnostics::compute(&w, &ax, BlockSize::CACHE_LINE);
        assert_eq!(d.footprint, 6);
        assert_eq!(d.f_str, 5);
        assert_eq!(d.f_irr, 2);
        assert_eq!(d.observed, 7);
        // 5 strided hits × 1 implied const each.
        assert_eq!(d.implied_const, 5);
        assert!((d.kappa - (1.0 + 5.0 / 7.0)).abs() < 1e-12);
        // ΔF = 6/(κ·7) = 6/12 = 0.5.
        assert!((d.delta_f() - 0.5).abs() < 1e-12);
        assert!((d.f_str_pct() - 100.0 * 5.0 / 6.0).abs() < 1e-9);
        assert!((d.delta_f_str_pct() - 100.0 * 5.0 / 7.0).abs() < 1e-9);
        assert!((d.a_const_pct() - 100.0 * 5.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_ips_default_to_irregular() {
        let ax = AuxAnnotations::new();
        let w = vec![acc(0x99, 0, 0), acc(0x99, 1, 1)];
        let d = FootprintDiagnostics::compute(&w, &ax, BlockSize::CACHE_LINE);
        assert_eq!(d.f_irr, 2);
        assert_eq!(d.f_str, 0);
        assert_eq!(d.delta_f_irr_pct(), 100.0);
    }

    #[test]
    fn empty_window_is_all_zero() {
        let d = FootprintDiagnostics::compute(&[], &annots(), BlockSize::CACHE_LINE);
        assert_eq!(d.footprint, 0);
        assert_eq!(d.delta_f(), 0.0);
        assert_eq!(d.f_str_pct(), 0.0);
        assert_eq!(d.a_const_pct(), 0.0);
    }

    #[test]
    fn merge_accumulates_and_rescales_kappa() {
        let ax = annots();
        let w1 = vec![acc(0x10, 0, 0), acc(0x10, 1, 1)];
        let w2 = vec![acc(0x20, 5, 2), acc(0x20, 6, 3)];
        let mut d = FootprintDiagnostics::compute(&w1, &ax, BlockSize::CACHE_LINE);
        d.merge(&FootprintDiagnostics::compute(
            &w2,
            &ax,
            BlockSize::CACHE_LINE,
        ));
        assert_eq!(d.observed, 4);
        assert_eq!(d.footprint, 4);
        assert_eq!(d.f_str, 2);
        assert_eq!(d.f_irr, 2);
        assert_eq!(d.implied_const, 2);
        assert!((d.kappa - 1.5).abs() < 1e-12);
        assert_eq!(d.delta_f_str_pct(), 50.0);
    }
}
