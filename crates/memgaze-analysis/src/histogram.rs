//! Histograms and locality-vs-interval series.
//!
//! Supports the paper's histogram plots: reuse-distance distributions,
//! and Fig. 9's "data locality of hot access intervals (intra-sample)" —
//! average locality metrics as a function of access-interval size.

use crate::diagnostics::FootprintDiagnostics;
use crate::par;
use crate::reuse::{self, ReuseAnalysis};
use memgaze_model::{Access, AuxAnnotations, BlockSize, SampledTrace};
use serde::{Deserialize, Serialize};

/// A log₂-binned histogram of nonnegative values.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Log2Histogram {
    /// `bins[k]` counts values in `[2^(k-1), 2^k)`; `bins[0]` counts 0.
    bins: Vec<u64>,
    /// Total count.
    count: u64,
    /// Sum of raw values (for the mean). Kept as an integer so merging
    /// histograms is exactly associative regardless of shard grouping.
    sum: u64,
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Log2Histogram {
        Log2Histogram::default()
    }

    /// Insert a value.
    pub fn insert(&mut self, v: u64) {
        let bin = if v == 0 {
            0
        } else {
            (64 - v.leading_zeros()) as usize
        };
        if self.bins.len() <= bin {
            self.bins.resize(bin + 1, 0);
        }
        self.bins[bin] += 1;
        self.count += 1;
        self.sum += v;
    }

    /// Fold another histogram's mass into this one (for merging
    /// per-sample partial histograms).
    pub fn merge(&mut self, other: &Log2Histogram) {
        if self.bins.len() < other.bins.len() {
            self.bins.resize(other.bins.len(), 0);
        }
        for (b, &c) in self.bins.iter_mut().zip(&other.bins) {
            *b += c;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Number of inserted values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of inserted values.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Raw `(bins, count, sum)` for the fan-out wire codec.
    pub(crate) fn raw_parts(&self) -> (&[u64], u64, u64) {
        (&self.bins, self.count, self.sum)
    }

    /// Rebuild from raw parts (fan-out wire codec).
    pub(crate) fn from_raw_parts(bins: Vec<u64>, count: u64, sum: u64) -> Log2Histogram {
        Log2Histogram { bins, count, sum }
    }

    /// `(bin upper bound, count)` pairs for populated bins.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .filter(|&(_k, &c)| c > 0)
            .map(|(k, &c)| (if k == 0 { 0 } else { 1u64 << (k - 1) }, c))
    }

    /// Value below which `q` of the mass lies (approximate, by bin upper
    /// bound).
    pub fn quantile(&self, q: f64) -> u64 {
        let target = (self.count as f64 * q).ceil() as u64;
        let mut seen = 0;
        for (k, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if k == 0 { 0 } else { 1u64 << (k - 1) };
            }
        }
        0
    }
}

/// One point of the locality-vs-interval-size series (Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalityPoint {
    /// Access-interval size in observed accesses.
    pub interval: u64,
    /// Mean spatio-temporal reuse distance D within intervals of this
    /// size.
    pub mean_d: f64,
    /// Mean footprint growth within the intervals.
    pub mean_delta_f: f64,
    /// Mean footprint within the intervals, in blocks.
    pub mean_f: f64,
    /// Intervals measured.
    pub windows: u64,
}

/// Intra-sample locality as a function of access-interval size: chop each
/// sample into intervals of each requested size and average D and ΔF.
pub fn locality_vs_interval(
    trace: &SampledTrace,
    annots: &AuxAnnotations,
    reuse_block: BlockSize,
    sizes: &[u64],
) -> Vec<LocalityPoint> {
    locality_vs_interval_with(trace, annots, reuse_block, sizes, par::default_threads())
}

/// [`locality_vs_interval`] with an explicit worker count. The
/// per-sample chunk analyses run in parallel; their partial sums are
/// folded in sample order, so the result is identical for every thread
/// count.
pub fn locality_vs_interval_with(
    trace: &SampledTrace,
    annots: &AuxAnnotations,
    reuse_block: BlockSize,
    sizes: &[u64],
    threads: usize,
) -> Vec<LocalityPoint> {
    let mut out = Vec::with_capacity(sizes.len());
    for &size in sizes {
        let chunk = size.max(1) as usize;
        // Per-sample partials (windows, Σd, Σg, Σf), merged in order.
        let partials = par::par_map(&trace.samples, threads, |s| {
            locality_sample_partial(&s.accesses, annots, reuse_block, chunk)
        });
        let mut n = 0u64;
        let (mut sum_d, mut sum_g, mut sum_f) = (0.0, 0.0, 0.0);
        for (pn, pd, pg, pf) in partials {
            n += pn;
            sum_d += pd;
            sum_g += pg;
            sum_f += pf;
        }
        if n > 0 {
            out.push(LocalityPoint {
                interval: size,
                mean_d: sum_d / n as f64,
                mean_delta_f: sum_g / n as f64,
                mean_f: sum_f / n as f64,
                windows: n,
            });
        }
    }
    out
}

/// One sample's partial sums for a locality-vs-interval point:
/// `(windows, Σ mean-D, Σ ΔF, Σ F)` over the sample's `chunk`-sized
/// intervals. Shared by the resident series above and the streaming
/// analyzer, so both fold identical per-sample terms and agree bit for
/// bit.
pub fn locality_sample_partial(
    accesses: &[Access],
    annots: &AuxAnnotations,
    reuse_block: BlockSize,
    chunk: usize,
) -> (u64, f64, f64, f64) {
    let mut n = 0u64;
    let (mut sum_d, mut sum_g, mut sum_f) = (0.0, 0.0, 0.0);
    for w in accesses.chunks(chunk) {
        if w.len() < chunk.div_ceil(2) {
            continue;
        }
        let r = reuse::analyze_window(w, reuse_block);
        let d = FootprintDiagnostics::compute(w, annots, reuse_block);
        n += 1;
        sum_d += r.mean_distance();
        sum_g += d.delta_f();
        sum_f += d.footprint as f64;
    }
    (n, sum_d, sum_g, sum_f)
}

/// Reuse-distance histogram over all intra-sample windows.
pub fn reuse_distance_histogram(trace: &SampledTrace, bs: BlockSize) -> Log2Histogram {
    let analyses = par::par_map(&trace.samples, par::default_threads(), |s| {
        reuse::analyze_window(&s.accesses, bs)
    });
    reuse_histogram_from(&analyses)
}

/// Reuse-distance histogram from precomputed per-sample analyses.
pub fn reuse_histogram_from(analyses: &[ReuseAnalysis]) -> Log2Histogram {
    let mut h = Log2Histogram::new();
    for r in analyses {
        for e in &r.events {
            h.insert(e.distance);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use memgaze_model::{Access, Sample, TraceMeta};

    #[test]
    fn log2_bins() {
        let mut h = Log2Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1000] {
            h.insert(v);
        }
        assert_eq!(h.count(), 8);
        let bins: Vec<(u64, u64)> = h.iter().collect();
        // 0 → bin 0; 1 → bin[1] (ub 1); 2,3 → bin[2] (ub 2); 4,7 → bin[3]
        // (ub 4); 8 → bin[4] (ub 8); 1000 → bin[10] (ub 512).
        assert_eq!(bins[0], (0, 1));
        assert_eq!(bins[1], (1, 1));
        assert_eq!(bins[2], (2, 2));
        assert_eq!(bins[3], (4, 2));
        assert_eq!(bins[4], (8, 1));
        assert_eq!(bins[5], (512, 1));
        assert!((h.mean() - 1025.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles() {
        let mut h = Log2Histogram::new();
        for v in 0..100u64 {
            h.insert(v);
        }
        assert!(h.quantile(0.5) <= 64);
        assert!(h.quantile(1.0) >= 64);
        assert_eq!(Log2Histogram::new().quantile(0.5), 0);
    }

    fn mk_trace(block_cycle: u64, w: usize) -> SampledTrace {
        let mut t = SampledTrace::new(TraceMeta::new("t", 1000, 8192));
        let accesses = (0..w)
            .map(|i| Access::new(0x400u64, (i as u64 % block_cycle) * 64, i as u64))
            .collect();
        t.push_sample(Sample::new(accesses, w as u64)).unwrap();
        t
    }

    #[test]
    fn locality_series_grows_with_interval() {
        // Cycling over 32 blocks: D within a window of ≥32 accesses is 31;
        // smaller windows see smaller distances (only first-touches).
        let t = mk_trace(32, 256);
        let annots = AuxAnnotations::new();
        let pts = locality_vs_interval(&t, &annots, BlockSize::CACHE_LINE, &[8, 64, 128]);
        assert_eq!(pts.len(), 3);
        // Interval 8 < cycle: no reuse at all.
        assert_eq!(pts[0].mean_d, 0.0);
        // Interval 64 and 128: reuse at distance 31.
        assert!((pts[1].mean_d - 31.0).abs() < 1e-9, "{:?}", pts[1]);
        assert!((pts[2].mean_d - 31.0).abs() < 1e-9);
        // ΔF falls as windows grow (same 32 blocks, more accesses).
        assert!(pts[2].mean_delta_f < pts[0].mean_delta_f);
    }

    #[test]
    fn merge_sums_bins_and_mass() {
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        let mut whole = Log2Histogram::new();
        for v in [0u64, 1, 5, 9] {
            a.insert(v);
            whole.insert(v);
        }
        for v in [2u64, 1000, 3] {
            b.insert(v);
            whole.insert(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
        a.merge(&Log2Histogram::new());
        assert_eq!(a, whole);
    }

    #[test]
    fn locality_series_threads_invariant() {
        let mut t = SampledTrace::new(TraceMeta::new("t", 1000, 8192));
        for s in 0..120u64 {
            let n = 8 + (s * 11) % 120;
            let acc: Vec<Access> = (0..n)
                .map(|i| Access::new(0x400u64, ((s * 17 + i * 3) % 256) * 64, s * 1000 + i))
                .collect();
            t.push_sample(Sample::new(acc, s * 1000 + n)).unwrap();
        }
        let annots = AuxAnnotations::new();
        let sizes = [8u64, 32, 64];
        let one = locality_vs_interval_with(&t, &annots, BlockSize::CACHE_LINE, &sizes, 1);
        let four = locality_vs_interval_with(&t, &annots, BlockSize::CACHE_LINE, &sizes, 4);
        assert_eq!(one, four);
    }

    #[test]
    fn reuse_histogram_of_cyclic_trace() {
        let t = mk_trace(16, 64);
        let h = reuse_distance_histogram(&t, BlockSize::CACHE_LINE);
        // 64 accesses cycling over 16 blocks → 48 reuses at distance 15.
        assert_eq!(h.count(), 48);
        assert!((h.mean() - 15.0).abs() < 1e-9);
    }
}
