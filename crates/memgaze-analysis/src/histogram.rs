//! Histograms and locality-vs-interval series.
//!
//! Supports the paper's histogram plots: reuse-distance distributions,
//! and Fig. 9's "data locality of hot access intervals (intra-sample)" —
//! average locality metrics as a function of access-interval size.

use crate::diagnostics::FootprintDiagnostics;
use crate::reuse;
use memgaze_model::{AuxAnnotations, BlockSize, SampledTrace};
use serde::{Deserialize, Serialize};

/// A log₂-binned histogram of nonnegative values.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Log2Histogram {
    /// `bins[k]` counts values in `[2^(k-1), 2^k)`; `bins[0]` counts 0.
    bins: Vec<u64>,
    /// Total count.
    count: u64,
    /// Sum of raw values (for the mean).
    sum: f64,
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Log2Histogram {
        Log2Histogram::default()
    }

    /// Insert a value.
    pub fn insert(&mut self, v: u64) {
        let bin = if v == 0 {
            0
        } else {
            (64 - v.leading_zeros()) as usize
        };
        if self.bins.len() <= bin {
            self.bins.resize(bin + 1, 0);
        }
        self.bins[bin] += 1;
        self.count += 1;
        self.sum += v as f64;
    }

    /// Number of inserted values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of inserted values.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// `(bin upper bound, count)` pairs for populated bins.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.bins.iter().enumerate().filter_map(|(k, &c)| {
            (c > 0).then(|| (if k == 0 { 0 } else { 1u64 << (k - 1) }, c))
        })
    }

    /// Value below which `q` of the mass lies (approximate, by bin upper
    /// bound).
    pub fn quantile(&self, q: f64) -> u64 {
        let target = (self.count as f64 * q).ceil() as u64;
        let mut seen = 0;
        for (k, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if k == 0 { 0 } else { 1u64 << (k - 1) };
            }
        }
        0
    }
}

/// One point of the locality-vs-interval-size series (Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalityPoint {
    /// Access-interval size in observed accesses.
    pub interval: u64,
    /// Mean spatio-temporal reuse distance D within intervals of this
    /// size.
    pub mean_d: f64,
    /// Mean footprint growth within the intervals.
    pub mean_delta_f: f64,
    /// Mean footprint within the intervals, in blocks.
    pub mean_f: f64,
    /// Intervals measured.
    pub windows: u64,
}

/// Intra-sample locality as a function of access-interval size: chop each
/// sample into intervals of each requested size and average D and ΔF.
pub fn locality_vs_interval(
    trace: &SampledTrace,
    annots: &AuxAnnotations,
    reuse_block: BlockSize,
    sizes: &[u64],
) -> Vec<LocalityPoint> {
    let mut out = Vec::with_capacity(sizes.len());
    for &size in sizes {
        let chunk = size.max(1) as usize;
        let mut n = 0u64;
        let (mut sum_d, mut sum_g, mut sum_f) = (0.0, 0.0, 0.0);
        for s in &trace.samples {
            for w in s.accesses.chunks(chunk) {
                if w.len() < chunk.div_ceil(2) {
                    continue;
                }
                let r = reuse::analyze_window(w, reuse_block);
                let d = FootprintDiagnostics::compute(w, annots, reuse_block);
                n += 1;
                sum_d += r.mean_distance();
                sum_g += d.delta_f();
                sum_f += d.footprint as f64;
            }
        }
        if n > 0 {
            out.push(LocalityPoint {
                interval: size,
                mean_d: sum_d / n as f64,
                mean_delta_f: sum_g / n as f64,
                mean_f: sum_f / n as f64,
                windows: n,
            });
        }
    }
    out
}

/// Reuse-distance histogram over all intra-sample windows.
pub fn reuse_distance_histogram(trace: &SampledTrace, bs: BlockSize) -> Log2Histogram {
    let mut h = Log2Histogram::new();
    for s in &trace.samples {
        let r = reuse::analyze_window(&s.accesses, bs);
        for e in &r.events {
            h.insert(e.distance);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use memgaze_model::{Access, Sample, TraceMeta};

    #[test]
    fn log2_bins() {
        let mut h = Log2Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1000] {
            h.insert(v);
        }
        assert_eq!(h.count(), 8);
        let bins: Vec<(u64, u64)> = h.iter().collect();
        // 0 → bin 0; 1 → bin[1] (ub 1); 2,3 → bin[2] (ub 2); 4,7 → bin[3]
        // (ub 4); 8 → bin[4] (ub 8); 1000 → bin[10] (ub 512).
        assert_eq!(bins[0], (0, 1));
        assert_eq!(bins[1], (1, 1));
        assert_eq!(bins[2], (2, 2));
        assert_eq!(bins[3], (4, 2));
        assert_eq!(bins[4], (8, 1));
        assert_eq!(bins[5], (512, 1));
        assert!((h.mean() - 1025.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles() {
        let mut h = Log2Histogram::new();
        for v in 0..100u64 {
            h.insert(v);
        }
        assert!(h.quantile(0.5) <= 64);
        assert!(h.quantile(1.0) >= 64);
        assert_eq!(Log2Histogram::new().quantile(0.5), 0);
    }

    fn mk_trace(block_cycle: u64, w: usize) -> SampledTrace {
        let mut t = SampledTrace::new(TraceMeta::new("t", 1000, 8192));
        let accesses = (0..w)
            .map(|i| Access::new(0x400u64, (i as u64 % block_cycle) * 64, i as u64))
            .collect();
        t.push_sample(Sample::new(accesses, w as u64)).unwrap();
        t
    }

    #[test]
    fn locality_series_grows_with_interval() {
        // Cycling over 32 blocks: D within a window of ≥32 accesses is 31;
        // smaller windows see smaller distances (only first-touches).
        let t = mk_trace(32, 256);
        let annots = AuxAnnotations::new();
        let pts = locality_vs_interval(&t, &annots, BlockSize::CACHE_LINE, &[8, 64, 128]);
        assert_eq!(pts.len(), 3);
        // Interval 8 < cycle: no reuse at all.
        assert_eq!(pts[0].mean_d, 0.0);
        // Interval 64 and 128: reuse at distance 31.
        assert!((pts[1].mean_d - 31.0).abs() < 1e-9, "{:?}", pts[1]);
        assert!((pts[2].mean_d - 31.0).abs() < 1e-9);
        // ΔF falls as windows grow (same 32 blocks, more accesses).
        assert!(pts[2].mean_delta_f < pts[0].mean_delta_f);
    }

    #[test]
    fn reuse_histogram_of_cyclic_trace() {
        let t = mk_trace(16, 64);
        let h = reuse_distance_histogram(&t, BlockSize::CACHE_LINE);
        // 64 accesses cycling over 16 blocks → 48 reuses at distance 15.
        assert_eq!(h.count(), 48);
        assert!((h.mean() - 15.0).abs() < 1e-9);
    }
}
