//! The high-level analyzer: one façade over the multi-resolution analyses
//! (paper §IV–§V), producing the paper's table shapes.
//!
//! * [`Analyzer::function_table`] — data locality of hot function
//!   accesses (Tables IV and VI): `F̂`, `ΔF`, `F_str%`, `𝒜` per function.
//! * [`Analyzer::region_rows`] — spatio-temporal reuse of hot memory
//!   (Tables V, VII, IX): `D`, `Max D`, `#blocks`, `A`, `A/block` per hot
//!   region from the location zoom.
//! * [`Analyzer::interval_rows`] — data locality over time of hot access
//!   intervals (Table VIII): `F̂`, `ΔF`, `D`, `𝒜` per time interval.
//! * [`Analyzer::window_series`] / [`Analyzer::locality_series`] — the
//!   Fig. 6 and Fig. 9 series; [`Analyzer::heatmaps`] — Fig. 8.
//!
//! Every expensive artifact (ρ/κ facts, the flattened access stream,
//! per-sample reuse analyses and diagnostics, the merged [`BlockReuse`],
//! the zoom tree, code windows, and the function table) is memoized in an
//! interior-mutability [`ArtifactCache`], so rendering several tables
//! from one `Analyzer` computes each artifact exactly once. The cache is
//! keyed implicitly by `(trace, config)`: the trace is borrowed
//! immutably, and [`Analyzer::with_config`] resets the cache.

use crate::confidence::Confidence;
use crate::diagnostics::FootprintDiagnostics;
use crate::heatmap::{region_heatmaps_from, Heatmap};
use crate::histogram::{locality_vs_interval_with, LocalityPoint};
use crate::interval_tree::IntervalTree;
use crate::par;
use crate::report::{fmt_f3, fmt_pct, fmt_si, Table};
use crate::reuse::{self, BlockReuse, ReuseAnalysis};
use crate::window::{window_series_with, CodeWindows, WindowPoint};
use crate::zoom::{LocationZoom, ZoomConfig, ZoomRegion};
use memgaze_model::{
    Access, AuxAnnotations, BlockSize, DecompressionInfo, Sample, SampledTrace, SymbolTable,
};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Analyzer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnalysisConfig {
    /// Block size for footprint metrics (default: 8-byte word — a
    /// `ptwrite` payload's granularity).
    pub footprint_block: BlockSize,
    /// Block size for spatio-temporal reuse distance (default: 64-byte
    /// cache line).
    pub reuse_block: BlockSize,
    /// Location-zoom parameters.
    pub zoom: ZoomConfig,
    /// Worker threads for per-sample analysis.
    pub threads: usize,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            footprint_block: BlockSize::WORD,
            reuse_block: BlockSize::CACHE_LINE,
            zoom: ZoomConfig::default(),
            threads: par::default_threads(),
        }
    }
}

/// One row of the hot-function locality table (Tables IV / VI).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionRow {
    /// Function name.
    pub name: String,
    /// Estimated footprint `F̂` in bytes (ρ-scaled).
    pub f_hat_bytes: f64,
    /// Footprint growth `ΔF` (blocks per decompressed access).
    pub delta_f: f64,
    /// Strided percentage of footprint (`F_str%`).
    pub f_str_pct: f64,
    /// Decompressed accesses `𝒜` attributed to the function (κ·A).
    pub accesses_decompressed: f64,
    /// Observed accesses `A`.
    pub observed: u64,
    /// Mean intra-run reuse distance.
    pub mean_d: f64,
    /// Confidence of the per-sample footprint estimate.
    pub confidence: Confidence,
}

/// One row of the hot-memory reuse table (Tables V / VII / IX).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionRow {
    /// Region address range `[lo, hi)`.
    pub range: (u64, u64),
    /// Mean spatio-temporal reuse distance `D`.
    pub reuse_d: f64,
    /// Maximum reuse distance.
    pub max_d: u64,
    /// Distinct blocks touched.
    pub blocks: u64,
    /// Observed accesses into the region.
    pub accesses: u64,
    /// Percent of total accesses.
    pub pct_of_total: f64,
    /// Attributed code (function names), hottest first.
    pub code: Vec<String>,
}

impl RegionRow {
    /// Accesses per block.
    pub fn accesses_per_block(&self) -> f64 {
        if self.blocks == 0 {
            0.0
        } else {
            self.accesses as f64 / self.blocks as f64
        }
    }
}

/// One row of the locality-over-time table (Table VIII).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntervalRow {
    /// Interval index (0-based).
    pub interval: usize,
    /// Estimated footprint `F̂` in bytes.
    pub f_hat_bytes: f64,
    /// Footprint growth.
    pub delta_f: f64,
    /// Mean intra-sample reuse distance.
    pub mean_d: f64,
    /// Decompressed accesses in the interval.
    pub accesses_decompressed: f64,
}

/// How many times each memoized artifact was actually *computed*
/// (not served from the cache). Exposed so perf tests can assert that
/// rendering every table computes each artifact exactly once.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// ρ/κ decompression facts.
    pub decompression: u64,
    /// Flattened access stream.
    pub accesses: u64,
    /// Per-sample reuse analyses (at the reuse block size).
    pub sample_reuse: u64,
    /// Per-sample footprint diagnostics (at the footprint block size).
    pub sample_diags: u64,
    /// Merged trace-wide [`BlockReuse`].
    pub block_reuse: u64,
    /// Location-zoom tree.
    pub zoom: u64,
    /// Per-function code windows.
    pub code_windows: u64,
    /// Sorted function-table rows.
    pub function_rows: u64,
    /// Artifacts seeded by merging streamed shard partials instead of
    /// full recomputation (see [`Analyzer::with_streamed_artifacts`]).
    pub merges: u64,
}

/// Interior-mutability memoization of the analyzer's artifacts.
///
/// Each slot is a `OnceLock` so a `&Analyzer` can lazily fill it; the
/// paired counters record how many times the compute closure actually
/// ran, which the throughput tests assert on.
#[derive(Default)]
struct ArtifactCache {
    decompression: OnceLock<DecompressionInfo>,
    accesses: OnceLock<Vec<Access>>,
    sample_reuse: OnceLock<Vec<ReuseAnalysis>>,
    sample_diags: OnceLock<Vec<FootprintDiagnostics>>,
    block_reuse: OnceLock<BlockReuse>,
    zoom: OnceLock<Option<ZoomRegion>>,
    code_windows: OnceLock<CodeWindows>,
    function_rows: OnceLock<Vec<FunctionRow>>,
    computes: Counters,
}

#[derive(Default)]
struct Counters {
    decompression: AtomicU64,
    accesses: AtomicU64,
    sample_reuse: AtomicU64,
    sample_diags: AtomicU64,
    block_reuse: AtomicU64,
    zoom: AtomicU64,
    code_windows: AtomicU64,
    function_rows: AtomicU64,
    merges: AtomicU64,
}

impl Counters {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// The analyzer façade.
pub struct Analyzer<'a> {
    trace: &'a SampledTrace,
    annots: &'a AuxAnnotations,
    symbols: &'a SymbolTable,
    cfg: AnalysisConfig,
    cache: ArtifactCache,
}

impl<'a> Analyzer<'a> {
    /// An analyzer with default configuration.
    pub fn new(
        trace: &'a SampledTrace,
        annots: &'a AuxAnnotations,
        symbols: &'a SymbolTable,
    ) -> Analyzer<'a> {
        Analyzer {
            trace,
            annots,
            symbols,
            cfg: AnalysisConfig::default(),
            cache: ArtifactCache::default(),
        }
    }

    /// Replace the configuration. Resets the artifact cache — cached
    /// artifacts are only valid for the `(trace, config)` pair they were
    /// computed under.
    pub fn with_config(mut self, cfg: AnalysisConfig) -> Analyzer<'a> {
        self.cfg = cfg;
        self.cache = ArtifactCache::default();
        self
    }

    /// The sampled trace under analysis.
    pub fn trace(&self) -> &SampledTrace {
        self.trace
    }

    /// The auxiliary annotation file.
    pub fn annots(&self) -> &AuxAnnotations {
        self.annots
    }

    /// Symbols of the original module.
    pub fn symbols(&self) -> &SymbolTable {
        self.symbols
    }

    /// The active configuration.
    pub fn config(&self) -> &AnalysisConfig {
        &self.cfg
    }

    /// Compute counts of the memoized artifacts so far.
    pub fn cache_stats(&self) -> CacheStats {
        let c = &self.cache.computes;
        CacheStats {
            decompression: c.decompression.load(Ordering::Relaxed),
            accesses: c.accesses.load(Ordering::Relaxed),
            sample_reuse: c.sample_reuse.load(Ordering::Relaxed),
            sample_diags: c.sample_diags.load(Ordering::Relaxed),
            block_reuse: c.block_reuse.load(Ordering::Relaxed),
            zoom: c.zoom.load(Ordering::Relaxed),
            code_windows: c.code_windows.load(Ordering::Relaxed),
            function_rows: c.function_rows.load(Ordering::Relaxed),
            merges: c.merges.load(Ordering::Relaxed),
        }
    }

    /// Seed the artifact cache with the merged artifacts of a streaming
    /// ingest pass, so a follow-up resident analysis serves them without
    /// recomputing. The report must come from the same trace, annotation
    /// file, symbols, and configuration this analyzer holds — like
    /// [`with_config`](Self::with_config), artifact validity is the
    /// caller's contract. Each seeded slot counts as a merge (not a
    /// compute) in [`cache_stats`](Self::cache_stats).
    pub fn with_streamed_artifacts(
        self,
        report: &crate::streaming::StreamingReport,
    ) -> Analyzer<'a> {
        if self.cache.decompression.set(report.decompression).is_ok() {
            Counters::bump(&self.cache.computes.merges);
        }
        if self
            .cache
            .block_reuse
            .set(report.block_reuse.clone())
            .is_ok()
        {
            Counters::bump(&self.cache.computes.merges);
        }
        if self
            .cache
            .function_rows
            .set(report.function_rows.clone())
            .is_ok()
        {
            Counters::bump(&self.cache.computes.merges);
        }
        self
    }

    /// ρ/κ decompression facts of the trace.
    pub fn decompression(&self) -> DecompressionInfo {
        *self.cache.decompression.get_or_init(|| {
            Counters::bump(&self.cache.computes.decompression);
            DecompressionInfo::from_trace(self.trace, self.annots)
        })
    }

    /// All sampled accesses, flattened and memoized (feeds the zoom and
    /// any custom analysis).
    pub fn all_accesses(&self) -> &[Access] {
        self.cache.accesses.get_or_init(|| {
            Counters::bump(&self.cache.computes.accesses);
            self.trace.accesses().copied().collect()
        })
    }

    /// Per-sample reuse analyses at the configured reuse block size,
    /// computed in parallel and memoized.
    pub fn sample_reuse(&self) -> &[ReuseAnalysis] {
        self.cache.sample_reuse.get_or_init(|| {
            Counters::bump(&self.cache.computes.sample_reuse);
            let rb = self.cfg.reuse_block;
            par::par_map(&self.trace.samples, self.cfg.threads, |s| {
                reuse::analyze_window(&s.accesses, rb)
            })
        })
    }

    /// Per-sample footprint diagnostics at the configured footprint
    /// block size, computed in parallel and memoized.
    pub fn sample_diagnostics(&self) -> &[FootprintDiagnostics] {
        self.cache.sample_diags.get_or_init(|| {
            Counters::bump(&self.cache.computes.sample_diags);
            let fb = self.cfg.footprint_block;
            par::par_map(&self.trace.samples, self.cfg.threads, |s| {
                FootprintDiagnostics::compute(&s.accesses, self.annots, fb)
            })
        })
    }

    /// Per-function code windows, memoized.
    pub fn code_windows(&self) -> &CodeWindows {
        self.cache.code_windows.get_or_init(|| {
            Counters::bump(&self.cache.computes.code_windows);
            CodeWindows::build(self.trace, self.symbols)
        })
    }

    /// Per-function locality rows, sorted by decompressed accesses
    /// (hottest first). Computed once per analyzer; per-function work
    /// runs in parallel.
    pub fn function_table(&self) -> &[FunctionRow] {
        self.cache.function_rows.get_or_init(|| {
            Counters::bump(&self.cache.computes.function_rows);
            let rho = self.decompression().rho();
            let cw = self.code_windows();
            let fb = self.cfg.footprint_block;
            let rb = self.cfg.reuse_block;
            let funcs: Vec<(&str, &[Access], &[usize])> = cw
                .iter_with_samples()
                .map(|(name, accesses, _runs, ends)| (name, accesses, ends))
                .collect();
            let mut rows = par::par_map(&funcs, self.cfg.threads, |&(name, accesses, ends)| {
                let diag = FootprintDiagnostics::compute(accesses, self.annots, fb);
                let r = reuse::analyze_window(accesses, rb);
                // Per-sample footprint observations for the confidence
                // interval: slice the function's accesses at the sample
                // boundaries the code windows recorded.
                let mut obs = Vec::with_capacity(ends.len());
                let mut start = 0usize;
                for &end in ends {
                    obs.push(crate::footprint::footprint(&accesses[start..end], fb) as f64);
                    start = end;
                }
                FunctionRow {
                    name: name.to_string(),
                    f_hat_bytes: rho * diag.footprint as f64 * fb.bytes() as f64,
                    delta_f: diag.delta_f(),
                    f_str_pct: diag.delta_f_str_pct(),
                    accesses_decompressed: diag.kappa * diag.observed as f64,
                    observed: diag.observed,
                    mean_d: r.mean_distance(),
                    confidence: Confidence::from_observations(&obs),
                }
            });
            rows.sort_by(|a, b| b.accesses_decompressed.total_cmp(&a.accesses_decompressed));
            rows
        })
    }

    /// Render the function table in the paper's Table IV shape.
    pub fn function_table_rendered(&self, title: &str) -> Table {
        let mut t = Table::new(title, &["Function", "F", "dF", "Fstr%", "A"]);
        for row in self.function_table() {
            t.push_row(vec![
                row.name.clone(),
                fmt_si(row.f_hat_bytes),
                fmt_f3(row.delta_f),
                fmt_pct(row.f_str_pct),
                fmt_si(row.accesses_decompressed),
            ]);
        }
        t
    }

    /// Merged per-block reuse over all samples (location analyses).
    /// Per-sample summaries are built in parallel from the cached
    /// per-sample reuse analyses, then coalesced with a single index
    /// rebuild; the merged summary is memoized.
    pub fn block_reuse(&self) -> &BlockReuse {
        self.cache.block_reuse.get_or_init(|| {
            Counters::bump(&self.cache.computes.block_reuse);
            let rb = self.cfg.reuse_block;
            let analyses = self.sample_reuse();
            let pairs: Vec<(&Sample, &ReuseAnalysis)> =
                self.trace.samples.iter().zip(analyses).collect();
            let parts = par::par_map(&pairs, self.cfg.threads, |&(s, r)| {
                BlockReuse::from_analysis(&s.accesses, rb, r)
            });
            BlockReuse::from_parts(parts)
        })
    }

    /// The location zoom tree (Fig. 5), with source-line attribution
    /// from the annotation file. Memoized; shares the cached
    /// [`Analyzer::block_reuse`] when the zoom's access block matches
    /// the reuse block (the default).
    pub fn zoom(&self) -> Option<&ZoomRegion> {
        self.cache
            .zoom
            .get_or_init(|| {
                Counters::bump(&self.cache.computes.zoom);
                let accesses = self.all_accesses();
                if accesses.is_empty() {
                    return None;
                }
                let zcfg = self.cfg.zoom;
                let run = |summary: &BlockReuse| {
                    LocationZoom::new(accesses, summary, self.symbols, zcfg)
                        .with_annotations(self.annots)
                        .run()
                };
                if zcfg.access_block == self.cfg.reuse_block {
                    run(self.block_reuse())
                } else {
                    // The zoom wants a different block granularity; build
                    // a dedicated summary at that size.
                    let parts = par::par_map(&self.trace.samples, self.cfg.threads, |s| {
                        let r = reuse::analyze_window(&s.accesses, zcfg.access_block);
                        BlockReuse::from_analysis(&s.accesses, zcfg.access_block, &r)
                    });
                    run(&BlockReuse::from_parts(parts))
                }
            })
            .as_ref()
    }

    /// Hot-memory reuse rows from the zoom's leaves, hottest first
    /// (Tables V / VII / IX).
    pub fn region_rows(&self) -> Vec<RegionRow> {
        let rb = self.cfg.reuse_block;
        let root = match self.zoom() {
            Some(r) => r,
            None => return Vec::new(),
        };
        let summary = self.block_reuse();
        let mut rows: Vec<RegionRow> = root
            .leaves()
            .into_iter()
            .map(|leaf| {
                let lo_b = leaf.lo >> rb.log2();
                let hi_b = (leaf.hi + rb.bytes() - 1) >> rb.log2();
                RegionRow {
                    range: (leaf.lo, leaf.hi),
                    reuse_d: leaf.reuse_d,
                    max_d: summary.region_max_distance(lo_b, hi_b),
                    blocks: leaf.blocks,
                    accesses: leaf.accesses,
                    pct_of_total: leaf.pct_of_total,
                    code: leaf.code.iter().map(|c| c.function.clone()).collect(),
                }
            })
            .collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.accesses));
        rows
    }

    /// Reuse row for one explicit address range (when the caller knows
    /// the object, e.g. Table V's named objects).
    pub fn region_row_for(&self, lo: u64, hi: u64) -> RegionRow {
        let summary = self.block_reuse();
        let rb = self.cfg.reuse_block;
        let lo_b = lo >> rb.log2();
        let hi_b = (hi + rb.bytes() - 1) >> rb.log2();
        let accesses = summary.region_accesses(lo_b, hi_b);
        let total = self.trace.observed_accesses();
        RegionRow {
            range: (lo, hi),
            reuse_d: summary.region_mean_distance(lo_b, hi_b),
            max_d: summary.region_max_distance(lo_b, hi_b),
            blocks: summary.region_blocks(lo_b, hi_b),
            accesses,
            pct_of_total: if total == 0 {
                0.0
            } else {
                100.0 * accesses as f64 / total as f64
            },
            code: Vec::new(),
        }
    }

    /// Locality over time: split the samples into `n` equal time
    /// intervals and report per-interval metrics (Table VIII). Consumes
    /// the cached per-sample diagnostics and reuse analyses, so repeat
    /// calls (and other tables) share the per-sample passes.
    pub fn interval_rows(&self, n: usize) -> Vec<IntervalRow> {
        if self.trace.samples.is_empty() || n == 0 {
            return Vec::new();
        }
        let rho = self.decompression().rho();
        let fb = self.cfg.footprint_block;
        let diags = self.sample_diagnostics();
        let reuses = self.sample_reuse();
        let per_interval = self.trace.samples.len().div_ceil(n);
        diags
            .chunks(per_interval)
            .zip(reuses.chunks(per_interval))
            .enumerate()
            .map(|(i, (dgroup, rgroup))| {
                let mut diag: Option<FootprintDiagnostics> = None;
                for d in dgroup {
                    match &mut diag {
                        Some(m) => m.merge(d),
                        None => diag = Some(*d),
                    }
                }
                let mut d_sum = 0.0;
                let mut d_n = 0u64;
                for r in rgroup {
                    if !r.events.is_empty() {
                        d_sum += r.mean_distance() * r.events.len() as f64;
                        d_n += r.events.len() as u64;
                    }
                }
                let diag = diag.unwrap_or_default();
                IntervalRow {
                    interval: i,
                    f_hat_bytes: rho * diag.footprint as f64 * fb.bytes() as f64,
                    delta_f: diag.delta_f(),
                    mean_d: if d_n == 0 { 0.0 } else { d_sum / d_n as f64 },
                    accesses_decompressed: diag.kappa * diag.observed as f64,
                }
            })
            .collect()
    }

    /// Footprint-metric histograms over power-of-2 windows (Fig. 6).
    pub fn window_series(&self, sizes: &[u64]) -> Vec<WindowPoint> {
        let info = self.decompression();
        window_series_with(
            self.trace,
            self.annots,
            self.cfg.footprint_block,
            sizes,
            &info,
            self.cfg.threads,
        )
    }

    /// Locality vs. interval size (Fig. 9).
    pub fn locality_series(&self, sizes: &[u64]) -> Vec<LocalityPoint> {
        locality_vs_interval_with(
            self.trace,
            self.annots,
            self.cfg.reuse_block,
            sizes,
            self.cfg.threads,
        )
    }

    /// Access-frequency and reuse-distance heatmaps of a region (Fig. 8).
    /// Shares the cached per-sample reuse analyses.
    pub fn heatmaps(&self, region: (u64, u64), rows: usize, cols: usize) -> (Heatmap, Heatmap) {
        region_heatmaps_from(
            self.trace,
            self.sample_reuse(),
            region,
            rows,
            cols,
            self.cfg.threads,
        )
    }

    /// The execution interval tree (Fig. 4).
    pub fn interval_tree(&self) -> IntervalTree {
        IntervalTree::build_par(
            self.trace,
            self.annots,
            self.symbols,
            self.cfg.footprint_block,
            self.decompression().rho(),
            self.cfg.threads,
        )
    }

    /// Working-set analysis at OS-page granularity with inter-sample
    /// reuse (paper §V-B).
    pub fn working_set(&self) -> crate::workingset::WorkingSet {
        crate::workingset::working_set(self.trace, self.annots, memgaze_model::BlockSize::OS_PAGE)
    }

    /// Undersampling detection (paper §VI-A: "One could flag regions
    /// with insufficient samples"): functions whose per-window footprint
    /// estimate has too few samples or too wide a confidence interval.
    pub fn undersampled_functions(
        &self,
        min_samples: u64,
        max_relative_ci: f64,
    ) -> Vec<(String, Confidence)> {
        self.function_table()
            .iter()
            .filter(|r| r.confidence.is_undersampled(min_samples, max_relative_ci))
            .map(|r| (r.name.clone(), r.confidence.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memgaze_model::{FunctionId, Ip, IpAnnot, LoadClass, Sample, TraceMeta};

    /// A trace with a hot streaming function and a cold reusing one, plus
    /// matching annotations and symbols.
    fn setup() -> (SampledTrace, AuxAnnotations, SymbolTable) {
        let mut symbols = SymbolTable::new();
        symbols.add_function("stream", Ip(0x100), Ip(0x200), "w.c");
        symbols.add_function("reuse", Ip(0x200), Ip(0x300), "w.c");
        let mut annots = AuxAnnotations::new();
        annots.insert(
            Ip(0x110),
            IpAnnot::of_class(LoadClass::Strided, FunctionId(0)),
        );
        annots.insert(
            Ip(0x210),
            IpAnnot::of_class(LoadClass::Irregular, FunctionId(1)),
        );

        let mut t = SampledTrace::new(TraceMeta::new("t", 1000, 8192));
        t.meta.total_loads = 16_000;
        for s in 0..16u64 {
            let base = s * 1000;
            let mut acc = Vec::new();
            for i in 0..96u64 {
                // Streaming: fresh 8-byte word each access at 1 MiB.
                acc.push(Access::new(
                    Ip(0x110),
                    (1u64 << 20) + (s * 96 + i) * 8,
                    base + i,
                ));
            }
            for i in 96..128u64 {
                // Reusing: cycle 4 blocks at 16 MiB.
                acc.push(Access::new(
                    Ip(0x210),
                    (16u64 << 20) + (i % 4) * 64,
                    base + i,
                ));
            }
            t.push_sample(Sample::new(acc, base + 128)).unwrap();
        }
        (t, annots, symbols)
    }

    #[test]
    fn function_table_identifies_hotspot() {
        let (t, annots, symbols) = setup();
        let a = Analyzer::new(&t, &annots, &symbols);
        let rows = a.function_table();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "stream");
        // Streaming function: ΔF ≈ 1 block/access, 100% strided.
        assert!(rows[0].delta_f > 0.9, "{:?}", rows[0]);
        assert!((rows[0].f_str_pct - 100.0).abs() < 1e-9);
        // Reusing function: tiny footprint growth, 0% strided.
        assert!(rows[1].delta_f < 0.2);
        assert_eq!(rows[1].f_str_pct, 0.0);
        // F̂ scales by ρ = 16·1000/2048.
        let rho = 16_000.0 / 2048.0;
        let expect = rho * (16.0 * 96.0) * 8.0; // all distinct words × 8 B
        assert!((rows[0].f_hat_bytes - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn rendered_table_shape() {
        let (t, annots, symbols) = setup();
        let a = Analyzer::new(&t, &annots, &symbols);
        let table = a.function_table_rendered("demo");
        let s = table.render();
        assert!(s.contains("stream"));
        assert!(s.contains("reuse"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn region_rows_find_two_objects() {
        let (t, annots, symbols) = setup();
        let a = Analyzer::new(&t, &annots, &symbols);
        let rows = a.region_rows();
        assert!(!rows.is_empty());
        // The hottest region is the streamed 1-MiB object, attributed to
        // "stream".
        assert!(rows[0].range.0 < (2 << 20));
        assert!(rows[0].code.contains(&"stream".to_string()));
        // Reusing object: few blocks, many accesses per block.
        let reuse_row = a.region_row_for(16 << 20, (16 << 20) + 4 * 64);
        assert_eq!(reuse_row.blocks, 4);
        assert!(reuse_row.accesses_per_block() > 50.0);
        assert!(reuse_row.reuse_d <= 4.0);
        assert!(reuse_row.max_d <= 4);
    }

    #[test]
    fn interval_rows_cover_all_samples() {
        let (t, annots, symbols) = setup();
        let a = Analyzer::new(&t, &annots, &symbols);
        let rows = a.interval_rows(8);
        assert_eq!(rows.len(), 8);
        let total_acc: f64 = rows.iter().map(|r| r.accesses_decompressed).sum();
        assert!((total_acc - 16.0 * 128.0).abs() < 1e-6);
        // Streaming dominates footprint: every interval's ΔF is similar.
        for r in &rows {
            assert!(r.delta_f > 0.5 && r.delta_f <= 1.0, "{r:?}");
        }
    }

    #[test]
    fn series_and_tree_available() {
        let (t, annots, symbols) = setup();
        let a = Analyzer::new(&t, &annots, &symbols);
        assert!(!a.window_series(&[16, 64]).is_empty());
        assert!(!a.locality_series(&[16, 64]).is_empty());
        let tree = a.interval_tree();
        assert_eq!(tree.sample_nodes().len(), 16);
        let (acc, _d) = a.heatmaps((1 << 20, (1 << 20) + 16 * 96 * 8), 8, 8);
        assert_eq!(acc.total(), 16.0 * 96.0);
    }

    #[test]
    fn undersampling_flags_rare_functions() {
        let (t, annots, symbols) = setup();
        let a = Analyzer::new(&t, &annots, &symbols);
        // With a strict CI requirement everything is flagged; with a lax
        // one, the stable streaming/reuse functions pass.
        let strict = a.undersampled_functions(1_000_000, 0.0);
        assert_eq!(strict.len(), 2, "all functions flagged under strict bounds");
        let lax = a.undersampled_functions(2, 0.5);
        assert!(
            lax.len() < 2,
            "stable metrics should pass lax bounds: {lax:?}"
        );
    }

    #[test]
    fn empty_trace_degenerates_gracefully() {
        let t = SampledTrace::new(TraceMeta::new("t", 1000, 8192));
        let annots = AuxAnnotations::new();
        let symbols = SymbolTable::new();
        let a = Analyzer::new(&t, &annots, &symbols);
        assert!(a.function_table().is_empty());
        assert!(a.region_rows().is_empty());
        assert!(a.interval_rows(4).is_empty());
        assert!(a.zoom().is_none());
    }

    #[test]
    fn report_path_computes_each_artifact_once() {
        // The ISSUE's acceptance criterion: region_rows() followed by
        // region_row_for() performs exactly one block_reuse and one zoom
        // computation; the rest of the multi-table report path keeps
        // every counter at one.
        let (t, annots, symbols) = setup();
        let a = Analyzer::new(&t, &annots, &symbols);
        let rows = a.region_rows();
        assert!(!rows.is_empty());
        let _row = a.region_row_for(16 << 20, (16 << 20) + 4 * 64);
        let stats = a.cache_stats();
        assert_eq!(stats.block_reuse, 1, "{stats:?}");
        assert_eq!(stats.zoom, 1, "{stats:?}");
        assert_eq!(stats.sample_reuse, 1, "{stats:?}");

        // Pile on the rest of the report; artifacts must not recompute.
        let _ = a.function_table();
        let _ = a.function_table_rendered("again");
        let _ = a.interval_rows(8);
        let _ = a.interval_rows(4);
        let _ = a.region_rows();
        let _ = a.heatmaps((1 << 20, 2 << 20), 4, 4);
        let _ = a.window_series(&[16, 64]);
        let stats = a.cache_stats();
        assert_eq!(stats.block_reuse, 1, "{stats:?}");
        assert_eq!(stats.zoom, 1, "{stats:?}");
        assert_eq!(stats.sample_reuse, 1, "{stats:?}");
        assert_eq!(stats.sample_diags, 1, "{stats:?}");
        assert_eq!(stats.decompression, 1, "{stats:?}");
        assert_eq!(stats.code_windows, 1, "{stats:?}");
        assert_eq!(stats.function_rows, 1, "{stats:?}");
    }

    #[test]
    fn with_config_resets_cache() {
        let (t, annots, symbols) = setup();
        let a = Analyzer::new(&t, &annots, &symbols);
        let _ = a.block_reuse();
        assert_eq!(a.cache_stats().block_reuse, 1);
        let a = a.with_config(AnalysisConfig {
            threads: 1,
            ..AnalysisConfig::default()
        });
        assert_eq!(a.cache_stats().block_reuse, 0, "cache must reset");
        let _ = a.block_reuse();
        assert_eq!(a.cache_stats().block_reuse, 1);
    }

    #[test]
    fn cached_results_match_fresh_analyzer() {
        let (t, annots, symbols) = setup();
        let cached = Analyzer::new(&t, &annots, &symbols);
        // Warm every artifact, then ask again.
        let first_regions = cached.region_rows();
        let first_functions = cached.function_table().to_vec();
        let fresh = Analyzer::new(&t, &annots, &symbols);
        assert_eq!(first_regions, fresh.region_rows());
        assert_eq!(first_functions, fresh.function_table());
        assert_eq!(cached.region_rows(), fresh.region_rows());
        assert_eq!(cached.interval_rows(8), fresh.interval_rows(8));
        assert_eq!(cached.block_reuse(), fresh.block_reuse());
        assert_eq!(cached.zoom(), fresh.zoom());
    }
}
