//! Undersampling detection (paper §VI-A: "It should be possible to
//! automatically detect most undersampling by analyzing sample density
//! and forming confidence intervals. One could flag regions with
//! insufficient samples.").
//!
//! For each aggregation unit (function, region, interval) we form the
//! sample mean and a normal-approximation confidence interval of the
//! per-sample footprint; units with too few samples or too wide a
//! relative interval are flagged.

use serde::{Deserialize, Serialize};

/// Confidence assessment of one aggregated estimate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Confidence {
    /// Number of samples contributing.
    pub samples: u64,
    /// Sample mean of the metric.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Half-width of the 95% confidence interval of the mean.
    pub ci_half_width: f64,
}

impl Confidence {
    /// Compute from per-sample metric observations.
    pub fn from_observations(values: &[f64]) -> Confidence {
        let n = values.len() as f64;
        if values.is_empty() {
            return Confidence {
                samples: 0,
                mean: 0.0,
                std_dev: 0.0,
                ci_half_width: f64::INFINITY,
            };
        }
        let mean = values.iter().sum::<f64>() / n;
        let var = if values.len() < 2 {
            0.0
        } else {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0)
        };
        let std_dev = var.sqrt();
        // z ≈ 1.96 for 95%.
        let ci_half_width = if values.len() < 2 {
            f64::INFINITY
        } else {
            1.96 * std_dev / n.sqrt()
        };
        Confidence {
            samples: values.len() as u64,
            mean,
            std_dev,
            ci_half_width,
        }
    }

    /// Relative CI half-width (∞ when the mean is zero or samples are
    /// insufficient).
    pub fn relative_ci(&self) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.ci_half_width / self.mean.abs()
        }
    }

    /// Flag this unit as undersampled given minimum sample count and
    /// maximum relative CI.
    pub fn is_undersampled(&self, min_samples: u64, max_relative_ci: f64) -> bool {
        self.samples < min_samples || self.relative_ci() > max_relative_ci
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_metric_is_confident() {
        let values: Vec<f64> = (0..100).map(|i| 100.0 + (i % 3) as f64).collect();
        let c = Confidence::from_observations(&values);
        assert_eq!(c.samples, 100);
        assert!((c.mean - 101.0).abs() < 0.2);
        assert!(c.relative_ci() < 0.01);
        assert!(!c.is_undersampled(10, 0.1));
    }

    #[test]
    fn few_samples_flagged() {
        let c = Confidence::from_observations(&[50.0, 60.0]);
        assert!(c.is_undersampled(10, 0.5));
        let single = Confidence::from_observations(&[50.0]);
        assert!(single.ci_half_width.is_infinite());
        assert!(single.is_undersampled(1, 1.0));
    }

    #[test]
    fn noisy_metric_flagged() {
        let values: Vec<f64> = (0..20)
            .map(|i| if i % 2 == 0 { 1.0 } else { 1000.0 })
            .collect();
        let c = Confidence::from_observations(&values);
        assert!(c.relative_ci() > 0.2);
        assert!(c.is_undersampled(10, 0.2));
    }

    #[test]
    fn empty_observations() {
        let c = Confidence::from_observations(&[]);
        assert_eq!(c.samples, 0);
        assert!(c.is_undersampled(1, 1.0));
        assert!(c.relative_ci().is_infinite());
    }
}
