//! Multi-resolution memory and data-reuse analysis of sampled traces —
//! the analysis half of MemGaze (paper §IV–§V).
//!
//! The analyses characterize locations vs. operations, accesses vs.
//! spatio-temporal reuse, and reuse (distance, rate, volume) vs. access
//! patterns:
//!
//! * [`footprint`] — footprint `F`, captures/survivals `C`/`S`,
//!   estimated footprint `F̂` (Eq. 3) and growth `ΔF̂` (Eq. 4);
//! * [`diagnostics`] — footprint access diagnostics (`F_str`, `F_irr`,
//!   `ΔF_str%`, `A_const%`, §V-E);
//! * [`reuse`] — reuse interval and exact spatio-temporal reuse distance
//!   (`O(log n)` Fenwick algorithm) plus per-block summaries;
//! * [`window`] — power-of-2 trace windows and per-function code windows
//!   (§IV-B);
//! * [`interval_tree`] — the execution interval tree (Fig. 4);
//! * [`zoom`] — location zooming to hot memory regions (Fig. 5);
//! * [`histogram`], [`heatmap`] — distribution views (Figs. 8–9);
//! * [`mape`] — the Fig. 6 validation machinery;
//! * [`confidence`] — undersampling detection (§VI-A's suggestion);
//! * [`analyzer`] — a façade producing the paper's table shapes;
//! * [`report`] — table rendering; [`par`] — scoped-thread parallel helpers.

pub mod analyzer;
pub mod confidence;
pub mod diagnostics;
pub mod fanout;
pub mod footprint;
pub mod fxhash;
pub mod heatmap;
pub mod histogram;
pub mod interval_tree;
pub mod live;
pub mod mape;
pub mod par;
pub mod report;
pub mod reuse;
pub mod streaming;
pub mod window;
pub mod workingset;
pub mod zoom;

pub use analyzer::{AnalysisConfig, Analyzer, CacheStats, FunctionRow, IntervalRow, RegionRow};
pub use confidence::Confidence;
pub use diagnostics::FootprintDiagnostics;
pub use fanout::{
    analyze_frames, partition_by_samples, partition_frames, FuncPartial, PartialError,
    PartialReport, ReusePartial, WorkerSpec,
};
pub use footprint::{
    captures_survivals, estimated_footprint, footprint, footprint_growth, CapturesSurvivals,
    WindowKind,
};
pub use fxhash::{FxHashMap, FxHashSet};
pub use heatmap::{region_heatmaps, region_heatmaps_from, Heatmap};
pub use histogram::{
    locality_vs_interval, locality_vs_interval_with, reuse_distance_histogram,
    reuse_histogram_from, LocalityPoint, Log2Histogram,
};
pub use interval_tree::{IntervalNode, IntervalTree, NodeKind};
pub use live::{
    window_meta, AnomalyKind, AnomalyMark, LiveConfig, WindowReport, WindowRing, WindowStats,
};
pub use mape::{compare_window_series, mape, pct_error, MapeReport};
pub use report::{fmt_f3, fmt_pct, fmt_si, Table};
pub use reuse::{analyze_window, analyze_window_naive, BlockReuse, ReuseAnalysis, ReuseEvent};
pub use streaming::{
    stream_resident_trace, IngestStats, ReuseTracker, StreamingAnalyzer, StreamingReport,
};
pub use window::{pow2_sizes, window_series, window_series_with, CodeWindows, WindowPoint};
pub use workingset::{working_set, WorkingSet};
pub use zoom::{
    zoom_trace, zoom_trace_annotated, LocationZoom, RegionCode, ZoomConfig, ZoomRegion,
};
