//! Working-set analysis and inter-sample reuse (paper §V-B).
//!
//! "To adapt D to sampled traces, we either focus solely on intra-sample
//! windows or calculate the average unique blocks accessed between
//! samples based on footprint growth. … For working-set analysis, we use
//! inter-sample reuse and blocks of OS page size."
//!
//! For each block, the gaps (in loads) between consecutive *samples*
//! that touch it are converted to an estimated reuse distance by
//! multiplying with the trace's footprint growth `ΔF̂` — the average
//! unique blocks accessed per load.

use crate::diagnostics::FootprintDiagnostics;
use crate::fxhash::FxHashMap;
use memgaze_model::{AuxAnnotations, BlockSize, DecompressionInfo, SampledTrace};
use serde::{Deserialize, Serialize};

/// Working-set summary of a sampled trace at a given page size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkingSet {
    /// Page size used.
    pub page_size: BlockSize,
    /// Distinct pages observed in samples.
    pub pages_observed: u64,
    /// ρ-scaled estimate of the population's working set, in pages.
    pub pages_estimated: f64,
    /// Footprint growth ΔF̂ at page granularity (pages per decompressed
    /// access).
    pub delta_f_pages: f64,
    /// Mean gap, in loads, between consecutive samples touching the same
    /// page (0 when no page recurs).
    pub mean_intersample_gap: f64,
    /// Estimated inter-sample reuse distance: ΔF̂ × mean gap — the
    /// average unique pages touched between two uses of a page.
    pub est_intersample_distance: f64,
    /// Pages touched by two or more samples (inter-sample captures).
    pub recurring_pages: u64,
}

/// Compute the working set of a trace at `page` granularity.
pub fn working_set(trace: &SampledTrace, annots: &AuxAnnotations, page: BlockSize) -> WorkingSet {
    let info = DecompressionInfo::from_trace(trace, annots);
    // Per page: (first trigger time, last trigger time, samples touching,
    // sum of gaps).
    let mut pages: FxHashMap<u64, (u64, u64, u64)> = FxHashMap::default(); // last_time, touches, gap_sum
    let mut merged: Option<FootprintDiagnostics> = None;
    for s in &trace.samples {
        let d = FootprintDiagnostics::compute(&s.accesses, annots, page);
        match &mut merged {
            Some(m) => m.merge(&d),
            None => merged = Some(d),
        }
        let mut touched: Vec<u64> = s.accesses.iter().map(|a| a.addr.block(page)).collect();
        touched.sort_unstable();
        touched.dedup();
        for b in touched {
            match pages.get_mut(&b) {
                Some((last, touches, gap_sum)) => {
                    *gap_sum += s.trigger_time.saturating_sub(*last);
                    *last = s.trigger_time;
                    *touches += 1;
                }
                None => {
                    pages.insert(b, (s.trigger_time, 1, 0));
                }
            }
        }
    }

    let diag = merged.unwrap_or_default();
    let delta_f = diag.delta_f();
    let (mut gap_sum, mut gap_n, mut recurring) = (0u64, 0u64, 0u64);
    for (_, touches, gaps) in pages.values() {
        if *touches >= 2 {
            recurring += 1;
            gap_sum += gaps;
            gap_n += touches - 1;
        }
    }
    let mean_gap = if gap_n == 0 {
        0.0
    } else {
        gap_sum as f64 / gap_n as f64
    };
    WorkingSet {
        page_size: page,
        pages_observed: pages.len() as u64,
        pages_estimated: info.rho() * pages.len() as f64,
        delta_f_pages: delta_f,
        mean_intersample_gap: mean_gap,
        est_intersample_distance: delta_f * mean_gap,
        recurring_pages: recurring,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memgaze_model::{Access, Sample, TraceMeta};

    /// Samples that revisit the same two pages every period, plus one
    /// streaming page per sample.
    fn recurring_trace(nsamples: u64, period: u64) -> SampledTrace {
        let mut t = SampledTrace::new(TraceMeta::new("ws", period, 8192));
        t.meta.total_loads = nsamples * period;
        for s in 0..nsamples {
            let base = s * period;
            let mut acc = Vec::new();
            for i in 0..32u64 {
                // Hot pages 0 and 1 (4-KiB pages at 0x10_0000).
                acc.push(Access::new(
                    0x400u64,
                    0x10_0000 + (i % 2) * 4096 + i * 8,
                    base + i,
                ));
            }
            for i in 32..64u64 {
                // A fresh page per sample.
                acc.push(Access::new(
                    0x404u64,
                    0x80_0000 + s * 4096 + i * 8,
                    base + i,
                ));
            }
            t.push_sample(Sample::new(acc, base + period)).unwrap();
        }
        t
    }

    #[test]
    fn recurring_pages_and_gaps() {
        let t = recurring_trace(8, 10_000);
        let ws = working_set(&t, &AuxAnnotations::new(), BlockSize::OS_PAGE);
        // 2 hot pages + 8 streaming pages.
        assert_eq!(ws.pages_observed, 10);
        assert_eq!(ws.recurring_pages, 2);
        // Gaps between consecutive samples are exactly one period.
        assert!((ws.mean_intersample_gap - 10_000.0).abs() < 1e-9);
        // Estimated inter-sample distance = ΔF(pages/access) × gap.
        assert!(ws.est_intersample_distance > 0.0);
        assert!((ws.est_intersample_distance - ws.delta_f_pages * 10_000.0).abs() < 1e-9);
        // ρ = 8·10000/512 = 156.25 → estimate scales.
        assert!((ws.pages_estimated - 156.25 * 10.0).abs() < 1e-6);
    }

    #[test]
    fn streaming_only_trace_has_no_recurrence() {
        let mut t = SampledTrace::new(TraceMeta::new("ws", 1000, 8192));
        t.meta.total_loads = 4000;
        for s in 0..4u64 {
            let acc = (0..16u64)
                .map(|i| Access::new(0x400u64, (s * 16 + i) * 4096, s * 1000 + i))
                .collect();
            t.push_sample(Sample::new(acc, (s + 1) * 1000)).unwrap();
        }
        let ws = working_set(&t, &AuxAnnotations::new(), BlockSize::OS_PAGE);
        assert_eq!(ws.recurring_pages, 0);
        assert_eq!(ws.mean_intersample_gap, 0.0);
        assert_eq!(ws.est_intersample_distance, 0.0);
        assert_eq!(ws.pages_observed, 64);
    }

    #[test]
    fn empty_trace() {
        let t = SampledTrace::new(TraceMeta::new("ws", 1000, 8192));
        let ws = working_set(&t, &AuxAnnotations::new(), BlockSize::OS_PAGE);
        assert_eq!(ws.pages_observed, 0);
        assert_eq!(ws.pages_estimated, 0.0);
    }

    #[test]
    fn page_size_controls_granularity() {
        let t = recurring_trace(4, 10_000);
        let pages = working_set(&t, &AuxAnnotations::new(), BlockSize::OS_PAGE);
        let lines = working_set(&t, &AuxAnnotations::new(), BlockSize::CACHE_LINE);
        assert!(lines.pages_observed > pages.pages_observed);
    }
}
