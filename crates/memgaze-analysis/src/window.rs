//! Trace windows and code windows (paper §IV-B, §VI-A).
//!
//! *Trace windows* chop the sampled access stream into fixed-size
//! (power-of-2) windows and report metric histograms over window size —
//! the Fig. 6 validation series. Windows smaller than a sample are exact
//! intra-sample chunks; larger windows aggregate consecutive samples and
//! scale estimates by ρ (Eq. 3, inter-window case).
//!
//! *Code windows* aggregate access runs by function over many samples,
//! which "reduces blind spots and statistical error" — the second Fig. 6
//! series, and the basis of the per-function hot-spot tables.

use crate::diagnostics::FootprintDiagnostics;
use crate::footprint::WindowKind;
use crate::par;
use memgaze_model::{
    Access, AuxAnnotations, BlockSize, DecompressionInfo, Sample, SampledTrace, SymbolTable,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One point of a metric-vs-window-size series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowPoint {
    /// Requested window size in decompressed accesses.
    pub target_size: u64,
    /// Mean decompressed accesses actually covered per window.
    pub effective_size: f64,
    /// Number of windows measured.
    pub windows: u64,
    /// Mean (estimated) footprint in blocks.
    pub f: f64,
    /// Mean (estimated) strided footprint.
    pub f_str: f64,
    /// Mean (estimated) irregular footprint.
    pub f_irr: f64,
    /// Mean footprint growth.
    pub delta_f: f64,
    /// Whether the windows were intra- or inter-sample.
    pub kind: WindowKind,
}

/// Power-of-two window sizes from `2^lo` to `2^hi` inclusive.
pub fn pow2_sizes(lo: u32, hi: u32) -> Vec<u64> {
    (lo..=hi).map(|k| 1u64 << k).collect()
}

/// Compute one intra-sample series point: chop every sample into chunks
/// of `target/κ` observed accesses and average the diagnostics.
fn intra_point(
    trace: &SampledTrace,
    annots: &AuxAnnotations,
    bs: BlockSize,
    target: u64,
    kappa_global: f64,
    threads: usize,
) -> Option<WindowPoint> {
    let chunk_obs = ((target as f64 / kappa_global).round() as usize).max(1);
    // Per-sample partial sums, folded in sample order so the result is
    // independent of the worker count.
    let partials = par::par_map(&trace.samples, threads, |s| {
        let mut n = 0u64;
        let mut sum = [0.0f64; 5]; // f, f_str, f_irr, delta_f, eff_size
        for chunk in s.accesses.chunks(chunk_obs) {
            if chunk.len() < chunk_obs.div_ceil(2) {
                continue; // skip ragged tails smaller than half a window
            }
            let d = FootprintDiagnostics::compute(chunk, annots, bs);
            n += 1;
            sum[0] += d.footprint as f64;
            sum[1] += d.f_str as f64;
            sum[2] += d.f_irr as f64;
            sum[3] += d.delta_f();
            sum[4] += d.kappa * d.observed as f64;
        }
        (n, sum)
    });
    let mut n = 0u64;
    let mut sum = [0.0f64; 5];
    for (pn, psum) in partials {
        n += pn;
        for (s, p) in sum.iter_mut().zip(psum) {
            *s += p;
        }
    }
    (n > 0).then(|| WindowPoint {
        target_size: target,
        effective_size: sum[4] / n as f64,
        windows: n,
        f: sum[0] / n as f64,
        f_str: sum[1] / n as f64,
        f_irr: sum[2] / n as f64,
        delta_f: sum[3] / n as f64,
        kind: WindowKind::Intra,
    })
}

/// Compute one inter-sample series point: group `k` consecutive samples,
/// merge diagnostics, and scale footprints by ρ.
fn inter_point(
    trace: &SampledTrace,
    annots: &AuxAnnotations,
    bs: BlockSize,
    target: u64,
    rho: f64,
    k: usize,
    threads: usize,
) -> Option<WindowPoint> {
    if trace.samples.is_empty() || k == 0 {
        return None;
    }
    // Each sample group merges independently; group partials fold in
    // time order.
    let groups: Vec<&[Sample]> = trace.samples.chunks(k).collect();
    let partials = par::par_map(&groups, threads, |group| {
        let mut merged: Option<FootprintDiagnostics> = None;
        for s in *group {
            let d = FootprintDiagnostics::compute(&s.accesses, annots, bs);
            match &mut merged {
                Some(m) => m.merge(&d),
                None => merged = Some(d),
            }
        }
        merged.map(|d| (d, group.len()))
    });
    let mut n = 0u64;
    let mut sum = [0.0f64; 5];
    for p in partials {
        let (d, group_len) = p?;
        if d.observed == 0 {
            continue;
        }
        n += 1;
        sum[0] += rho * d.footprint as f64;
        sum[1] += rho * d.f_str as f64;
        sum[2] += rho * d.f_irr as f64;
        sum[3] += d.delta_f();
        sum[4] += group_len as f64 * trace.meta.period as f64;
    }
    (n > 0).then(|| WindowPoint {
        target_size: target,
        effective_size: sum[4] / n as f64,
        windows: n,
        f: sum[0] / n as f64,
        f_str: sum[1] / n as f64,
        f_irr: sum[2] / n as f64,
        delta_f: sum[3] / n as f64,
        kind: WindowKind::Inter,
    })
}

/// Metric-vs-window-size series over the given decompressed window sizes.
pub fn window_series(
    trace: &SampledTrace,
    annots: &AuxAnnotations,
    bs: BlockSize,
    sizes: &[u64],
) -> Vec<WindowPoint> {
    let info = DecompressionInfo::from_trace(trace, annots);
    window_series_with(trace, annots, bs, sizes, &info, par::default_threads())
}

/// [`window_series`] with precomputed decompression facts and an
/// explicit worker count — the analyzer passes its cached ρ/κ here so
/// the series does not re-derive them per call.
pub fn window_series_with(
    trace: &SampledTrace,
    annots: &AuxAnnotations,
    bs: BlockSize,
    sizes: &[u64],
    info: &DecompressionInfo,
    threads: usize,
) -> Vec<WindowPoint> {
    let kappa = info.kappa();
    let rho = info.rho();
    // A window fits inside a sample while its decompressed size is below
    // the mean decompressed sample window.
    let mean_window_decomp = trace.mean_window() * kappa;
    sizes
        .iter()
        .filter_map(|&target| {
            if (target as f64) <= mean_window_decomp.max(1.0) {
                intra_point(trace, annots, bs, target, kappa, threads)
            } else if trace.meta.period > 0 && target >= trace.meta.period {
                let k = ((target as f64) / trace.meta.period as f64)
                    .round()
                    .max(1.0) as usize;
                inter_point(trace, annots, bs, target, rho, k, threads)
            } else if trace.meta.period > 0 {
                // The R2 blind spot (paper §IV-A): window sizes between
                // the sample window w and the period w+z cannot be
                // observed — neither a sample nor a sample group covers
                // them.
                None
            } else {
                // A full trace viewed as one sample: keep chunking it.
                intra_point(trace, annots, bs, target, kappa, threads)
            }
        })
        .collect()
}

/// One function's code window: concatenated accesses plus structure.
#[derive(Debug, Clone, Default)]
struct FuncWindow {
    name: String,
    /// The function's accesses across all samples, in time order.
    accesses: Vec<Access>,
    /// Number of contiguous access runs.
    runs: u64,
    /// End offset into `accesses` after each sample the function
    /// appears in; `accesses[ends[i-1]..ends[i]]` is one sample's worth.
    sample_ends: Vec<usize>,
}

/// Access runs grouped by function — code windows.
#[derive(Debug, Clone, Default)]
pub struct CodeWindows {
    per_func: BTreeMap<u32, FuncWindow>,
}

impl CodeWindows {
    /// Group a trace's accesses into code windows via the symbol table.
    /// Accesses outside any known function are grouped under
    /// `"<unknown>"` with id `u32::MAX`.
    pub fn build(trace: &SampledTrace, symbols: &SymbolTable) -> CodeWindows {
        let mut per_func: BTreeMap<u32, FuncWindow> = BTreeMap::new();
        for s in &trace.samples {
            let mut prev: Option<u32> = None;
            for a in &s.accesses {
                let (id, name) = match symbols.lookup(a.ip) {
                    Some(f) => (f.id.0, f.name.clone()),
                    None => (u32::MAX, "<unknown>".to_string()),
                };
                let entry = per_func.entry(id).or_insert_with(|| FuncWindow {
                    name,
                    ..FuncWindow::default()
                });
                entry.accesses.push(*a);
                if prev != Some(id) {
                    entry.runs += 1; // a new run begins
                }
                prev = Some(id);
            }
            // Record the sample boundary for every function this sample
            // touched.
            for fw in per_func.values_mut() {
                if fw.accesses.len() > fw.sample_ends.last().copied().unwrap_or(0) {
                    fw.sample_ends.push(fw.accesses.len());
                }
            }
        }
        CodeWindows { per_func }
    }

    /// Iterate `(function name, accesses, runs)` sorted by function id.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[Access], u64)> + '_ {
        self.per_func
            .values()
            .map(|f| (f.name.as_str(), f.accesses.as_slice(), f.runs))
    }

    /// Like [`iter`](Self::iter) but also yielding each function's
    /// per-sample end offsets, so callers can slice the accesses at
    /// sample boundaries.
    pub fn iter_with_samples(&self) -> impl Iterator<Item = (&str, &[Access], u64, &[usize])> + '_ {
        self.per_func.values().map(|f| {
            (
                f.name.as_str(),
                f.accesses.as_slice(),
                f.runs,
                f.sample_ends.as_slice(),
            )
        })
    }

    /// The accesses attributed to the named function.
    pub fn function(&self, name: &str) -> Option<&[Access]> {
        self.per_func
            .values()
            .find(|f| f.name == name)
            .map(|f| f.accesses.as_slice())
    }

    /// Number of functions with at least one access.
    pub fn len(&self) -> usize {
        self.per_func.len()
    }

    /// True when no accesses were attributed.
    pub fn is_empty(&self) -> bool {
        self.per_func.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memgaze_model::{Ip, Sample, TraceMeta};

    fn trace_with_samples(nsamples: usize, w: usize, period: u64) -> SampledTrace {
        let mut t = SampledTrace::new(TraceMeta::new("t", period, 8192));
        t.meta.total_loads = nsamples as u64 * period;
        for s in 0..nsamples {
            let base = s as u64 * period;
            let accesses = (0..w)
                .map(|i| Access::new(0x400u64, (s * w + i) as u64 * 64, base + i as u64))
                .collect();
            t.push_sample(Sample::new(accesses, base + w as u64))
                .unwrap();
        }
        t
    }

    #[test]
    fn pow2_sizes_cover_range() {
        assert_eq!(pow2_sizes(4, 7), vec![16, 32, 64, 128]);
    }

    #[test]
    fn intra_windows_of_streaming_trace_have_full_footprint() {
        // Every access in the synthetic trace touches a fresh block, so a
        // window of W accesses has footprint W and ΔF = 1.
        let t = trace_with_samples(4, 256, 10_000);
        let annots = AuxAnnotations::new();
        let pts = window_series(&t, &annots, BlockSize::CACHE_LINE, &[16, 64]);
        assert_eq!(pts.len(), 2);
        for p in &pts {
            assert_eq!(p.kind, WindowKind::Intra);
            assert!((p.f - p.target_size as f64).abs() < 1e-9, "{p:?}");
            assert!((p.delta_f - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn inter_windows_scale_by_rho() {
        let t = trace_with_samples(8, 100, 10_000);
        let annots = AuxAnnotations::new();
        // ρ = 8·10000 / 800 = 100. One-sample inter window: F̂ = 100·100.
        let pts = window_series(&t, &annots, BlockSize::CACHE_LINE, &[10_000]);
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].kind, WindowKind::Inter);
        assert!((pts[0].f - 10_000.0).abs() < 1e-6, "{:?}", pts[0]);
        assert_eq!(pts[0].windows, 8);
    }

    #[test]
    fn windows_partition_accesses() {
        let t = trace_with_samples(2, 128, 1000);
        let annots = AuxAnnotations::new();
        let pts = window_series(&t, &annots, BlockSize::CACHE_LINE, &[32]);
        // 2 samples × 128/32 windows each.
        assert_eq!(pts[0].windows, 8);
        assert!((pts[0].effective_size - 32.0).abs() < 1e-9);
    }

    #[test]
    fn window_series_threads_invariant() {
        let t = trace_with_samples(40, 200, 10_000);
        let annots = AuxAnnotations::new();
        let info = DecompressionInfo::from_trace(&t, &annots);
        let sizes = [16u64, 64, 10_000, 20_000];
        let one = window_series_with(&t, &annots, BlockSize::CACHE_LINE, &sizes, &info, 1);
        let four = window_series_with(&t, &annots, BlockSize::CACHE_LINE, &sizes, &info, 4);
        assert_eq!(one, four);
        assert_eq!(
            one,
            window_series(&t, &annots, BlockSize::CACHE_LINE, &sizes)
        );
    }

    #[test]
    fn code_windows_group_by_function() {
        let mut symbols = SymbolTable::new();
        symbols.add_function("a", Ip(0x100), Ip(0x200), "a.c");
        symbols.add_function("b", Ip(0x200), Ip(0x300), "a.c");
        let mut t = SampledTrace::new(TraceMeta::new("t", 100, 8192));
        // Runs: a a | b b | a — 3 runs, 2 functions + unknown.
        let accesses = vec![
            Access::new(Ip(0x100), 0u64, 0),
            Access::new(Ip(0x110), 64u64, 1),
            Access::new(Ip(0x210), 128u64, 2),
            Access::new(Ip(0x220), 192u64, 3),
            Access::new(Ip(0x120), 0u64, 4),
            Access::new(Ip(0x999), 999u64, 5),
        ];
        t.push_sample(Sample::new(accesses, 6)).unwrap();
        let cw = CodeWindows::build(&t, &symbols);
        assert_eq!(cw.len(), 3);
        assert_eq!(cw.function("a").unwrap().len(), 3);
        assert_eq!(cw.function("b").unwrap().len(), 2);
        assert_eq!(cw.function("<unknown>").unwrap().len(), 1);
        let a_runs = cw.iter().find(|(n, _, _)| *n == "a").unwrap().2;
        assert_eq!(a_runs, 2);
    }

    #[test]
    fn code_windows_record_sample_boundaries() {
        let mut symbols = SymbolTable::new();
        symbols.add_function("a", Ip(0x100), Ip(0x200), "a.c");
        symbols.add_function("b", Ip(0x200), Ip(0x300), "a.c");
        let mut t = SampledTrace::new(TraceMeta::new("t", 100, 8192));
        // Sample 0: a ×2, b ×1. Sample 1: b ×2. Sample 2: a ×1.
        t.push_sample(Sample::new(
            vec![
                Access::new(Ip(0x100), 0u64, 0),
                Access::new(Ip(0x110), 64u64, 1),
                Access::new(Ip(0x210), 128u64, 2),
            ],
            3,
        ))
        .unwrap();
        t.push_sample(Sample::new(
            vec![
                Access::new(Ip(0x220), 192u64, 10),
                Access::new(Ip(0x230), 256u64, 11),
            ],
            12,
        ))
        .unwrap();
        t.push_sample(Sample::new(vec![Access::new(Ip(0x120), 0u64, 20)], 21))
            .unwrap();
        let cw = CodeWindows::build(&t, &symbols);
        let ends: Vec<(&str, Vec<usize>)> = cw
            .iter_with_samples()
            .map(|(n, _, _, e)| (n, e.to_vec()))
            .collect();
        // Function "a": 2 accesses in sample 0, 1 in sample 2 → [2, 3].
        // Function "b": 1 in sample 0, 2 in sample 1 → [1, 3].
        assert_eq!(ends, vec![("a", vec![2, 3]), ("b", vec![1, 3])]);
    }

    #[test]
    fn empty_trace_yields_no_points() {
        let t = SampledTrace::new(TraceMeta::new("t", 100, 8192));
        let pts = window_series(&t, &AuxAnnotations::new(), BlockSize::CACHE_LINE, &[16]);
        assert!(pts.is_empty());
        assert!(CodeWindows::build(&t, &SymbolTable::new()).is_empty());
    }
}
