//! Parallel per-sample analysis helpers.
//!
//! Sampled traces decompose naturally by sample; the per-sample work
//! (reuse analysis, diagnostics) is embarrassingly parallel. These
//! helpers shard work across `std::thread::scope` workers pulling
//! fixed-size chunks from an atomic work queue, so a handful of
//! expensive samples (e.g. one giant window among many small ones)
//! cannot stall a whole thread's equal share. Output order stays
//! deterministic: chunks are reassembled by their input offset.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Below this many items the threading overhead dominates; map inline.
const SEQ_CUTOFF: usize = 32;

/// Work-stealing granule: small enough that a skewed item distribution
/// load-balances, large enough that queue traffic stays negligible.
const CHUNK: usize = 16;

/// Chunk length for `items.len()` elements across `threads` workers:
/// the fixed granule, shrunk when the input is small so every worker
/// still gets work.
fn chunk_len(len: usize, threads: usize) -> usize {
    CHUNK.min(len.div_ceil(threads)).max(1)
}

/// Parallel map preserving input order. Falls back to a sequential map
/// for small inputs where threading overhead dominates.
pub fn par_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let threads = threads.max(1);
    if threads == 1 || items.len() <= SEQ_CUTOFF {
        return items.iter().map(&f).collect();
    }
    let n = items.len();
    let chunk = chunk_len(n, threads);
    let num_chunks = n.div_ceil(chunk);
    let next = AtomicUsize::new(0);
    let parts: Mutex<Vec<(usize, Vec<U>)>> = Mutex::new(Vec::with_capacity(num_chunks));

    let obs = memgaze_obs::enabled();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(num_chunks) {
            let (next, parts, f) = (&next, &parts, &f);
            scope.spawn(move || {
                let mut claimed = 0u64;
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    let start = idx * chunk;
                    if start >= n {
                        break;
                    }
                    if obs {
                        claimed += 1;
                        record_queue_depth(num_chunks, idx);
                    }
                    let end = (start + chunk).min(n);
                    let vals: Vec<U> = items[start..end].iter().map(f).collect();
                    parts.lock().unwrap().push((start, vals));
                }
                if obs {
                    record_worker_claims(claimed);
                }
            });
        }
    });

    let mut parts = parts.into_inner().unwrap();
    parts.sort_unstable_by_key(|&(start, _)| start);
    debug_assert_eq!(parts.iter().map(|p| p.1.len()).sum::<usize>(), n);
    parts.into_iter().flat_map(|(_, vals)| vals).collect()
}

/// Parallel map-fold: map each item and fold the results into one
/// accumulator per worker, merging the *few* per-worker accumulators at
/// the end. Avoids materializing a `Vec` when only the merged result is
/// needed (e.g. a trace-wide `BlockReuse`).
///
/// `merge` must be associative and commutative — which worker folds
/// which chunk is scheduling-dependent.
pub fn par_fold<T, A, F, M>(
    items: &[T],
    threads: usize,
    init: impl Fn() -> A + Sync,
    fold: F,
    merge: M,
) -> A
where
    T: Sync,
    A: Send,
    F: Fn(&mut A, &T) + Sync,
    M: Fn(A, A) -> A,
{
    let threads = threads.max(1);
    if threads == 1 || items.len() <= SEQ_CUTOFF {
        let mut acc = init();
        for item in items {
            fold(&mut acc, item);
        }
        return acc;
    }
    let n = items.len();
    let chunk = chunk_len(n, threads);
    let num_chunks = n.div_ceil(chunk);
    let next = AtomicUsize::new(0);
    let accs: Mutex<Vec<A>> = Mutex::new(Vec::with_capacity(threads));

    let obs = memgaze_obs::enabled();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(num_chunks) {
            let (next, accs, init, fold) = (&next, &accs, &init, &fold);
            scope.spawn(move || {
                let mut acc = init();
                let mut claimed = 0u64;
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    let start = idx * chunk;
                    if start >= n {
                        break;
                    }
                    if obs {
                        claimed += 1;
                        record_queue_depth(num_chunks, idx);
                    }
                    let end = (start + chunk).min(n);
                    for item in &items[start..end] {
                        fold(&mut acc, item);
                    }
                }
                if obs {
                    record_worker_claims(claimed);
                }
                accs.lock().unwrap().push(acc);
            });
        }
    });

    accs.into_inner().unwrap().into_iter().fold(init(), merge)
}

/// Record the work queue's remaining depth at claim time. `idx` is the
/// claim ticket; anything past the last chunk means the queue was
/// already drained.
#[cold]
fn record_queue_depth(num_chunks: usize, idx: usize) {
    let remaining = num_chunks.saturating_sub(idx + 1) as u64;
    memgaze_obs::histogram!("par.queue_depth").record(remaining);
    memgaze_obs::counter!("par.chunks_claimed").add(1);
}

/// Record one worker's total claims. Every claim past the first means
/// this worker came back for more instead of idling — the work-stealing
/// signal ISSUE tracking cares about.
#[cold]
fn record_worker_claims(claimed: u64) {
    if claimed > 1 {
        memgaze_obs::counter!("par.steals").add(claimed - 1);
    }
}

/// Default analysis parallelism: available cores capped at 8 (the
/// per-sample work is memory-bound; more threads just thrash the
/// cache). `MEMGAZE_THREADS` overrides the probe — useful to pin
/// benchmarks or force sequential runs — and is clamped to ≥ 1.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("MEMGAZE_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, 4, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_fallback_matches() {
        let items: Vec<u64> = (0..10).collect();
        assert_eq!(
            par_map(&items, 8, |&x| x + 1),
            par_map(&items, 1, |&x| x + 1)
        );
    }

    #[test]
    fn empty_input() {
        let items: Vec<u64> = vec![];
        assert!(par_map(&items, 4, |&x| x).is_empty());
    }

    #[test]
    fn uneven_chunks() {
        let items: Vec<usize> = (0..101).collect();
        let out = par_map(&items, 3, |&x| x);
        assert_eq!(out.len(), 101);
        assert_eq!(out[100], 100);
    }

    #[test]
    fn skewed_work_is_balanced() {
        // One huge item among many tiny ones must not serialize: with
        // CHUNK-granular stealing every worker keeps claiming the small
        // items while one chews the giant.
        let mut items = vec![10u64; 4000];
        items[7] = 3_000_000;
        let busy_sum = |&n: &u64| -> u64 { (0..n).fold(0, |a, x| a ^ x.wrapping_mul(31)) };
        let out = par_map(&items, 4, busy_sum);
        let seq: Vec<u64> = items.iter().map(busy_sum).collect();
        assert_eq!(out, seq);
    }

    #[test]
    fn fold_matches_sequential() {
        let items: Vec<u64> = (1..=5000).collect();
        let total = par_fold(&items, 4, || 0u64, |acc, &x| *acc += x, |a, b| a + b);
        assert_eq!(total, 5000 * 5001 / 2);
        let seq = par_fold(&items, 1, || 0u64, |acc, &x| *acc += x, |a, b| a + b);
        assert_eq!(total, seq);
    }

    #[test]
    fn threads_default_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn env_override_clamps() {
        // Serialize env mutation against other tests reading it.
        std::env::set_var("MEMGAZE_THREADS", "0");
        assert_eq!(default_threads(), 1);
        std::env::set_var("MEMGAZE_THREADS", "3");
        assert_eq!(default_threads(), 3);
        std::env::remove_var("MEMGAZE_THREADS");
        assert!(default_threads() >= 1);
    }
}
