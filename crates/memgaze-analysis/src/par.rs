//! Parallel per-sample analysis helpers.
//!
//! Sampled traces decompose naturally by sample; the per-sample work
//! (reuse analysis, diagnostics) is embarrassingly parallel. These
//! helpers shard work across crossbeam scoped threads while keeping the
//! deterministic output order of the sequential code.

/// Parallel map preserving input order. Falls back to a sequential map
/// for small inputs where threading overhead dominates.
pub fn par_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    const SEQ_CUTOFF: usize = 32;
    let threads = threads.max(1);
    if threads == 1 || items.len() <= SEQ_CUTOFF {
        return items.iter().map(&f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut out: Vec<Option<U>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);

    crossbeam::thread::scope(|scope| {
        // Split the output into per-thread windows so each thread owns a
        // disjoint region — no locking on the hot path.
        let mut rest: &mut [Option<U>] = &mut out;
        let mut start = 0usize;
        for chunk_items in items.chunks(chunk) {
            let (head, tail) = rest.split_at_mut(chunk_items.len());
            rest = tail;
            let f = &f;
            let base = start;
            let _ = base;
            scope.spawn(move |_| {
                for (slot, item) in head.iter_mut().zip(chunk_items) {
                    *slot = Some(f(item));
                }
            });
            start += chunk_items.len();
        }
    })
    .expect("analysis worker panicked");

    out.into_iter().map(|v| v.expect("all slots filled")).collect()
}

/// Default analysis parallelism: available cores capped at 8 (the
/// per-sample work is memory-bound; more threads just thrash the cache).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, 4, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_fallback_matches() {
        let items: Vec<u64> = (0..10).collect();
        assert_eq!(par_map(&items, 8, |&x| x + 1), par_map(&items, 1, |&x| x + 1));
    }

    #[test]
    fn empty_input() {
        let items: Vec<u64> = vec![];
        assert!(par_map(&items, 4, |&x| x).is_empty());
    }

    #[test]
    fn uneven_chunks() {
        let items: Vec<usize> = (0..101).collect();
        let out = par_map(&items, 3, |&x| x);
        assert_eq!(out.len(), 101);
        assert_eq!(out[100], 100);
    }

    #[test]
    fn threads_default_positive() {
        assert!(default_threads() >= 1);
    }
}
