//! Footprint, captures/survivals, and footprint growth
//! (paper §V-C, §V-D, Eqs. 3–4).
//!
//! Footprint `F` is the amount of *unique* data accessed by a series of
//! operations, measured in blocks of a configurable size. *Captures* `C`
//! are addresses with reuse inside the window, *survivals* `S` addresses
//! without; `F = C + S`. The estimated footprint `F̂` for a sampled
//! population scales by the sample ratio ρ for inter-window analysis
//! (Eq. 3), and footprint growth is footprint per (decompressed) access:
//! `ΔF̂(σ) = F(σ) / (κ(σ)·A(σ))` (Eq. 4).

use crate::fxhash::FxHashMap;
use memgaze_model::{Access, BlockSize};
use serde::{Deserialize, Serialize};

/// Captures and survivals of one access window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CapturesSurvivals {
    /// Unique blocks accessed two or more times (addresses *with* reuse).
    pub captures: u64,
    /// Unique blocks accessed exactly once (addresses *without* reuse).
    pub survivals: u64,
}

impl CapturesSurvivals {
    /// Observed footprint `F = C + S` in blocks.
    pub fn footprint(&self) -> u64 {
        self.captures + self.survivals
    }
}

/// Count unique blocks in a window.
pub fn footprint(accesses: &[Access], bs: BlockSize) -> u64 {
    let mut seen: FxHashMap<u64, ()> =
        FxHashMap::with_capacity_and_hasher(accesses.len(), Default::default());
    for a in accesses {
        seen.insert(a.addr.block(bs), ());
    }
    seen.len() as u64
}

/// Count captures and survivals in a window.
pub fn captures_survivals(accesses: &[Access], bs: BlockSize) -> CapturesSurvivals {
    let mut counts: FxHashMap<u64, u32> =
        FxHashMap::with_capacity_and_hasher(accesses.len(), Default::default());
    for a in accesses {
        *counts.entry(a.addr.block(bs)).or_insert(0) += 1;
    }
    let mut cs = CapturesSurvivals::default();
    for (_, n) in counts {
        if n >= 2 {
            cs.captures += 1;
        } else {
            cs.survivals += 1;
        }
    }
    cs
}

/// Which of Eq. 3's two cases applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WindowKind {
    /// Intra-window: the window lies inside one sample; metrics are exact.
    Intra,
    /// Inter-window: the window spans unsampled gaps; scale by ρ.
    Inter,
}

/// Estimated footprint `F̂` (Eq. 3): exact intra-window, `ρ·(C+S)`
/// inter-window.
pub fn estimated_footprint(cs: CapturesSurvivals, rho: f64, kind: WindowKind) -> f64 {
    match kind {
        WindowKind::Intra => cs.footprint() as f64,
        WindowKind::Inter => rho * cs.footprint() as f64,
    }
}

/// Footprint growth `ΔF̂ = F / (κ·A)` (Eq. 4): average new footprint per
/// decompressed access. `observed` is `A(σ)`.
pub fn footprint_growth(footprint_blocks: u64, observed: u64, kappa: f64) -> f64 {
    let denom = kappa * observed as f64;
    if denom <= 0.0 {
        0.0
    } else {
        footprint_blocks as f64 / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memgaze_model::Access;

    fn acc(addr: u64, t: u64) -> Access {
        Access::new(0x400u64, addr, t)
    }

    #[test]
    fn footprint_counts_unique_blocks() {
        let bs = BlockSize::CACHE_LINE;
        let accesses = vec![acc(0, 0), acc(8, 1), acc(63, 2), acc(64, 3), acc(128, 4)];
        // Blocks: {0, 1, 2}.
        assert_eq!(footprint(&accesses, bs), 3);
        // At byte granularity every distinct address counts.
        assert_eq!(footprint(&accesses, BlockSize::BYTE), 5);
        assert_eq!(footprint(&[], bs), 0);
    }

    #[test]
    fn captures_vs_survivals() {
        let bs = BlockSize::CACHE_LINE;
        // Block 0 twice (capture), block 1 once, block 2 once (survivals).
        let accesses = vec![acc(0, 0), acc(32, 1), acc(64, 2), acc(130, 3)];
        let cs = captures_survivals(&accesses, bs);
        assert_eq!(cs.captures, 1);
        assert_eq!(cs.survivals, 2);
        assert_eq!(cs.footprint(), footprint(&accesses, bs));
    }

    #[test]
    fn eq3_intra_vs_inter() {
        let cs = CapturesSurvivals {
            captures: 10,
            survivals: 30,
        };
        assert_eq!(estimated_footprint(cs, 50.0, WindowKind::Intra), 40.0);
        assert_eq!(estimated_footprint(cs, 50.0, WindowKind::Inter), 2000.0);
    }

    #[test]
    fn eq4_footprint_growth() {
        // 100 unique blocks over 500 observed accesses at κ=2:
        // ΔF = 100/(2·500) = 0.1.
        assert!((footprint_growth(100, 500, 2.0) - 0.1).abs() < 1e-12);
        assert_eq!(footprint_growth(100, 0, 2.0), 0.0);
    }

    #[test]
    fn footprint_subadditive_under_concatenation() {
        let bs = BlockSize::CACHE_LINE;
        let w1: Vec<Access> = (0..50).map(|i| acc(i * 64, i)).collect();
        let w2: Vec<Access> = (25..75).map(|i| acc(i * 64, i)).collect();
        let mut joined = w1.clone();
        joined.extend(w2.iter().copied());
        let f = footprint(&joined, bs);
        assert!(f <= footprint(&w1, bs) + footprint(&w2, bs));
        assert!(f >= footprint(&w1, bs).max(footprint(&w2, bs)));
    }
}
