//! Mean absolute percentage error (MAPE) and the Fig. 6 validation
//! machinery: comparing metric histograms of sampled traces against full
//! (or denser-sampled) baselines.

use crate::window::WindowPoint;
use serde::{Deserialize, Serialize};

/// MAPE between paired series, in percent. Pairs whose actual value is
/// zero are skipped (percentage error is undefined there); returns `None`
/// when no valid pair exists.
pub fn mape(actual: &[f64], predicted: &[f64]) -> Option<f64> {
    assert_eq!(actual.len(), predicted.len(), "series must pair up");
    let mut sum = 0.0;
    let mut n = 0u64;
    for (&a, &p) in actual.iter().zip(predicted) {
        if a != 0.0 {
            sum += ((p - a) / a).abs();
            n += 1;
        }
    }
    (n > 0).then(|| 100.0 * sum / n as f64)
}

/// Per-metric MAPE of a window-series validation (the Fig. 6 series:
/// F, F_str, F_irr).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MapeReport {
    /// MAPE of footprint F, percent.
    pub f: f64,
    /// MAPE of strided footprint.
    pub f_str: f64,
    /// MAPE of irregular footprint.
    pub f_irr: f64,
    /// Window sizes that participated.
    pub points: u64,
}

impl MapeReport {
    /// Worst of the three metric errors.
    pub fn worst(&self) -> f64 {
        self.f.max(self.f_str).max(self.f_irr)
    }
}

/// Compare two window series (matched by `target_size`); `baseline` is
/// the full/denser trace, `sampled` the one under validation.
pub fn compare_window_series(baseline: &[WindowPoint], sampled: &[WindowPoint]) -> MapeReport {
    let mut base_f = Vec::new();
    let mut samp_f = Vec::new();
    let mut base_s = Vec::new();
    let mut samp_s = Vec::new();
    let mut base_i = Vec::new();
    let mut samp_i = Vec::new();
    let mut points = 0;
    for b in baseline {
        if let Some(s) = sampled.iter().find(|s| s.target_size == b.target_size) {
            points += 1;
            base_f.push(b.f);
            samp_f.push(s.f);
            base_s.push(b.f_str);
            samp_s.push(s.f_str);
            base_i.push(b.f_irr);
            samp_i.push(s.f_irr);
        }
    }
    MapeReport {
        f: mape(&base_f, &samp_f).unwrap_or(0.0),
        f_str: mape(&base_s, &samp_s).unwrap_or(0.0),
        f_irr: mape(&base_i, &samp_i).unwrap_or(0.0),
        points,
    }
}

/// Scalar percentage error between two values (for code-window
/// validation, where each function contributes one number).
pub fn pct_error(actual: f64, predicted: f64) -> f64 {
    if actual == 0.0 {
        if predicted == 0.0 {
            0.0
        } else {
            100.0
        }
    } else {
        100.0 * ((predicted - actual) / actual).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::footprint::WindowKind;

    #[test]
    fn mape_basics() {
        assert_eq!(mape(&[100.0], &[100.0]), Some(0.0));
        assert_eq!(mape(&[100.0], &[110.0]), Some(10.0));
        assert_eq!(mape(&[100.0, 200.0], &[90.0, 220.0]), Some(10.0));
        // Zero actuals are skipped.
        assert_eq!(mape(&[0.0, 100.0], &[5.0, 150.0]), Some(50.0));
        assert_eq!(mape(&[0.0], &[5.0]), None);
        assert_eq!(mape(&[], &[]), None);
    }

    #[test]
    #[should_panic(expected = "pair up")]
    fn mismatched_series_panic() {
        mape(&[1.0], &[]);
    }

    fn wp(size: u64, f: f64, s: f64, i: f64) -> WindowPoint {
        WindowPoint {
            target_size: size,
            effective_size: size as f64,
            windows: 1,
            f,
            f_str: s,
            f_irr: i,
            delta_f: 0.0,
            kind: WindowKind::Intra,
        }
    }

    #[test]
    fn compare_series_matches_sizes() {
        let base = vec![wp(16, 10.0, 8.0, 2.0), wp(32, 20.0, 16.0, 4.0)];
        let samp = vec![wp(16, 11.0, 8.0, 3.0), wp(64, 99.0, 0.0, 0.0)];
        let r = compare_window_series(&base, &samp);
        assert_eq!(r.points, 1);
        assert!((r.f - 10.0).abs() < 1e-9);
        assert_eq!(r.f_str, 0.0);
        assert!((r.f_irr - 50.0).abs() < 1e-9);
        assert!((r.worst() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn pct_error_edge_cases() {
        assert_eq!(pct_error(0.0, 0.0), 0.0);
        assert_eq!(pct_error(0.0, 1.0), 100.0);
        assert!((pct_error(50.0, 45.0) - 10.0).abs() < 1e-12);
    }
}
