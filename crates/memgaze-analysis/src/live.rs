//! Live rolling-window analysis: the `memgaze watch` engine.
//!
//! Offline analysis sees the whole trace at once; live monitoring
//! (HMTT's online analyzer, BSC's live access-pattern tooling) sees an
//! unbounded stream and must answer "what changed?" from a bounded
//! ring of recent windows. This module folds per-window
//! [`StreamingReport`]s into [`WindowStats`] — footprint growth,
//! reuse-distance drift, `A_const%` shift — and raises deterministic
//! [`AnomalyMark`]s when a metric jumps past a threshold between
//! consecutive windows ("ΔF_irr% doubled in window N").
//!
//! Determinism is load-bearing: window stats derive from the merged
//! per-sample diagnostics of a [`StreamingReport`], whose merge laws
//! make them bit-identical across shard sizes and thread counts; the
//! drift tests are pure `f64` ratio comparisons. Two watch runs over
//! the same stream with the same config therefore mark the same
//! windows — the property `tests/watch_equivalence.rs` pins.

use crate::diagnostics::FootprintDiagnostics;
use crate::streaming::StreamingReport;
use memgaze_model::{Sample, TraceMeta};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Configuration for the rolling-window engine.
#[derive(Debug, Clone, Copy)]
pub struct LiveConfig {
    /// Windows retained in the ring; older windows are evicted (their
    /// stats survive in the drift chain, their reports do not).
    pub ring_capacity: usize,
    /// Ratio between consecutive windows at which a metric counts as
    /// anomalous; `2.0` means "doubled".
    pub anomaly_threshold: f64,
    /// Windows with fewer observed accesses than this are too thin to
    /// trust for drift — they update the chain but raise no marks.
    pub min_observed: u64,
}

impl Default for LiveConfig {
    fn default() -> LiveConfig {
        LiveConfig {
            ring_capacity: 32,
            anomaly_threshold: 2.0,
            min_observed: 64,
        }
    }
}

/// Drift metrics of one closed window, derived from the window's
/// [`StreamingReport`] by merging its per-sample diagnostics — the same
/// fold [`StreamingReport::interval_rows`] runs, collapsed to one row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowStats {
    /// Window index (0-based, monotonically increasing).
    pub window: usize,
    /// Samples the window folded.
    pub samples: usize,
    /// Observed accesses `A` across the window.
    pub observed: u64,
    /// Implied constant accesses `A_const` across the window.
    pub implied_const: u64,
    /// Estimated footprint `F̂` in bytes (`ρ · F · block`).
    pub f_hat_bytes: f64,
    /// Footprint growth `ΔF̂` of the merged window.
    pub delta_f: f64,
    /// Irregular share of footprint growth, `ΔF_irr%`.
    pub delta_f_irr_pct: f64,
    /// Constant-access share `A_const%`.
    pub a_const_pct: f64,
    /// Mean spatio-temporal reuse distance across the window's samples.
    pub mean_d: f64,
    /// Compression factor κ of the merged window.
    pub kappa: f64,
}

impl WindowStats {
    /// Fold a window's report into its drift metrics.
    pub fn from_report(window: usize, report: &StreamingReport) -> WindowStats {
        let mut diag: Option<FootprintDiagnostics> = None;
        for d in &report.per_sample_diags {
            match &mut diag {
                Some(m) => m.merge(d),
                None => diag = Some(*d),
            }
        }
        let diag = diag.unwrap_or_default();
        let mut d_sum = 0.0;
        let mut d_n = 0u64;
        for r in &report.per_sample_reuse {
            if r.events > 0 {
                d_sum += r.mean_d * r.events as f64;
                d_n += r.events as u64;
            }
        }
        let rho = report.decompression.rho();
        WindowStats {
            window,
            samples: report.per_sample_diags.len(),
            observed: diag.observed,
            implied_const: diag.implied_const,
            f_hat_bytes: rho * diag.footprint as f64 * report.footprint_block.bytes() as f64,
            delta_f: diag.delta_f(),
            delta_f_irr_pct: diag.delta_f_irr_pct(),
            a_const_pct: diag.a_const_pct(),
            mean_d: if d_n == 0 { 0.0 } else { d_sum / d_n as f64 },
            kappa: diag.kappa,
        }
    }
}

/// Which window metric drifted past the threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AnomalyKind {
    /// Estimated footprint `F̂` grew past the threshold ratio.
    FootprintGrowth,
    /// Mean reuse distance drifted up past the threshold ratio.
    ReuseDrift,
    /// `ΔF_irr%` (irregular-growth share) jumped past the threshold.
    IrregularShift,
    /// `A_const%` jumped past the threshold.
    ConstShift,
}

impl AnomalyKind {
    /// The metric's display name.
    pub fn metric(self) -> &'static str {
        match self {
            AnomalyKind::FootprintGrowth => "F_hat",
            AnomalyKind::ReuseDrift => "mean_d",
            AnomalyKind::IrregularShift => "dF_irr%",
            AnomalyKind::ConstShift => "A_const%",
        }
    }
}

/// One threshold crossing between consecutive windows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnomalyMark {
    /// Window in which the jump was observed.
    pub window: usize,
    /// Which metric jumped.
    pub kind: AnomalyKind,
    /// `now / max(prev, floor)` — at least the configured threshold.
    pub ratio: f64,
    /// The metric's value in the previous window.
    pub prev: f64,
    /// The metric's value in this window.
    pub now: f64,
}

impl AnomalyMark {
    /// Human-readable description, e.g.
    /// `"dF_irr% x2.3 in window 7 (12.1 -> 27.8)"`.
    pub fn detail(&self) -> String {
        format!(
            "{} x{:.1} in window {} ({:.1} -> {:.1})",
            self.kind.metric(),
            self.ratio,
            self.window,
            self.prev,
            self.now
        )
    }
}

/// One retained window: its drift stats plus the full per-window
/// report (for zooming into a marked window).
#[derive(Debug, Clone)]
pub struct WindowReport {
    /// The window's drift metrics.
    pub stats: WindowStats,
    /// The window's full analysis.
    pub report: StreamingReport,
}

/// Bounded ring of recent windows with drift detection between
/// consecutive pushes. Eviction drops old reports but never the drift
/// chain: the previous window's stats are kept separately.
#[derive(Debug)]
pub struct WindowRing {
    cfg: LiveConfig,
    windows: VecDeque<WindowReport>,
    prev: Option<WindowStats>,
    pushed: usize,
    anomalies: Vec<AnomalyMark>,
}

/// Floor applied to a previous value before the ratio test, so a
/// near-zero baseline doesn't turn noise into an infinite ratio.
const DRIFT_FLOORS: [(AnomalyKind, f64); 4] = [
    (AnomalyKind::FootprintGrowth, 64.0),
    (AnomalyKind::ReuseDrift, 1.0),
    (AnomalyKind::IrregularShift, 1.0),
    (AnomalyKind::ConstShift, 1.0),
];

impl WindowRing {
    /// An empty ring.
    pub fn new(cfg: LiveConfig) -> WindowRing {
        WindowRing {
            cfg,
            windows: VecDeque::new(),
            prev: None,
            pushed: 0,
            anomalies: Vec::new(),
        }
    }

    fn metric(kind: AnomalyKind, s: &WindowStats) -> f64 {
        match kind {
            AnomalyKind::FootprintGrowth => s.f_hat_bytes,
            AnomalyKind::ReuseDrift => s.mean_d,
            AnomalyKind::IrregularShift => s.delta_f_irr_pct,
            AnomalyKind::ConstShift => s.a_const_pct,
        }
    }

    /// Close a window: fold its report into stats, test drift against
    /// the previous window, retain it (evicting past capacity), and
    /// return the stats plus any new marks.
    pub fn push(&mut self, report: StreamingReport) -> (WindowStats, Vec<AnomalyMark>) {
        let stats = WindowStats::from_report(self.pushed, &report);
        self.pushed += 1;
        let mut marks = Vec::new();
        if let Some(prev) = &self.prev {
            let trusted =
                prev.observed >= self.cfg.min_observed && stats.observed >= self.cfg.min_observed;
            if trusted {
                for (kind, floor) in DRIFT_FLOORS {
                    let was = Self::metric(kind, prev).max(floor);
                    let now = Self::metric(kind, &stats);
                    let ratio = now / was;
                    if ratio >= self.cfg.anomaly_threshold {
                        marks.push(AnomalyMark {
                            window: stats.window,
                            kind,
                            ratio,
                            prev: Self::metric(kind, prev),
                            now,
                        });
                    }
                }
            }
        }
        self.prev = Some(stats);
        self.anomalies.extend(marks.iter().cloned());
        self.windows.push_back(WindowReport { stats, report });
        while self.windows.len() > self.cfg.ring_capacity.max(1) {
            self.windows.pop_front();
        }
        (stats, marks)
    }

    /// Windows currently retained (oldest first).
    pub fn windows(&self) -> impl Iterator<Item = &WindowReport> {
        self.windows.iter()
    }

    /// Total windows ever pushed (≥ retained count).
    pub fn pushed(&self) -> usize {
        self.pushed
    }

    /// Every mark raised since the ring was created.
    pub fn anomalies(&self) -> &[AnomalyMark] {
        &self.anomalies
    }

    /// The most recently closed window's stats, if any.
    pub fn last_stats(&self) -> Option<&WindowStats> {
        self.prev.as_ref()
    }
}

/// Metadata for one watch window, derived deterministically from the
/// window's samples and the sampling configuration *at collection
/// start*. Both the live driver and the offline reference pass
/// (`tests/watch_equivalence.rs`) derive window metadata through this
/// one function, so their per-window reports can be compared
/// field-for-field.
pub fn window_meta(
    workload: &str,
    period: u64,
    buffer_bytes: u64,
    samples: &[Sample],
) -> TraceMeta {
    let mut meta = TraceMeta::new(workload, period, buffer_bytes);
    meta.total_loads = samples.len() as u64 * period;
    meta.total_instrumented_loads = samples.iter().map(|s| s.accesses.len() as u64).sum();
    meta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::AnalysisConfig;
    use crate::streaming::StreamingAnalyzer;
    use memgaze_model::{
        Access, AuxAnnotations, FunctionId, Ip, IpAnnot, LoadClass, Sample, SymbolTable,
    };

    fn window_report(samples: &[Sample]) -> StreamingReport {
        let mut annots = AuxAnnotations::new();
        annots.insert(
            Ip(0x400),
            IpAnnot::of_class(LoadClass::Strided, FunctionId(0)),
        );
        annots.insert(
            Ip(0x404),
            IpAnnot::of_class(LoadClass::Irregular, FunctionId(0)),
        );
        let symbols = SymbolTable::new();
        let mut sa = StreamingAnalyzer::new(&annots, &symbols, AnalysisConfig::default());
        sa.ingest_shard(samples);
        sa.finish(&window_meta("live-test", 1000, 8192, samples))
    }

    fn strided(samples: usize, base: u64) -> Vec<Sample> {
        (0..samples)
            .map(|s| {
                let accesses: Vec<Access> = (0..100u64)
                    .map(|i| Access::new(0x400, base + (s as u64 * 100 + i) * 64, i))
                    .collect();
                Sample::new(accesses, (s as u64 + 1) * 1000)
            })
            .collect()
    }

    fn scattered(samples: usize, spread: u64) -> Vec<Sample> {
        (0..samples)
            .map(|s| {
                let accesses: Vec<Access> = (0..100u64)
                    .map(|i| {
                        let x = s as u64 * 100 + i;
                        Access::new(0x404, 0x900_0000 + (x * x * 2654435761) % spread, i)
                    })
                    .collect();
                Sample::new(accesses, (s as u64 + 1) * 1000)
            })
            .collect()
    }

    #[test]
    fn steady_stream_raises_no_marks() {
        let mut ring = WindowRing::new(LiveConfig::default());
        for w in 0..6 {
            let (_stats, marks) = ring.push(window_report(&strided(4, w * 0x100_0000)));
            assert!(marks.is_empty(), "window {w} marked: {marks:?}");
        }
        assert_eq!(ring.pushed(), 6);
        assert!(ring.anomalies().is_empty());
    }

    #[test]
    fn phase_shift_marks_the_shifted_window() {
        let mut ring = WindowRing::new(LiveConfig::default());
        ring.push(window_report(&strided(4, 0)));
        ring.push(window_report(&strided(4, 0)));
        let (_stats, marks) = ring.push(window_report(&scattered(4, 1 << 30)));
        assert!(!marks.is_empty(), "phase shift must raise a mark");
        assert!(marks.iter().all(|m| m.window == 2));
        assert!(marks.iter().all(|m| m.ratio >= 2.0));
        for m in &marks {
            assert!(m.detail().contains("window 2"), "{}", m.detail());
        }
    }

    #[test]
    fn marks_are_deterministic_across_runs() {
        let run = || {
            let mut ring = WindowRing::new(LiveConfig::default());
            ring.push(window_report(&strided(4, 0)));
            ring.push(window_report(&scattered(4, 1 << 28)));
            ring.push(window_report(&strided(4, 0)));
            ring.anomalies().to_vec()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn ring_evicts_reports_but_keeps_the_drift_chain() {
        let cfg = LiveConfig {
            ring_capacity: 2,
            ..LiveConfig::default()
        };
        let mut ring = WindowRing::new(cfg);
        for w in 0..5 {
            ring.push(window_report(&strided(4, w * 0x10_0000)));
        }
        assert_eq!(ring.windows().count(), 2);
        assert_eq!(ring.pushed(), 5);
        assert_eq!(ring.last_stats().unwrap().window, 4);
    }

    #[test]
    fn thin_windows_do_not_mark() {
        let cfg = LiveConfig {
            min_observed: 1_000_000,
            ..LiveConfig::default()
        };
        let mut ring = WindowRing::new(cfg);
        ring.push(window_report(&strided(4, 0)));
        let (_s, marks) = ring.push(window_report(&scattered(4, 1 << 30)));
        assert!(marks.is_empty());
    }
}
