//! Property tests of the throughput overhaul's three pillars:
//!
//! 1. the memoized `Analyzer` returns the same artifacts as a fresh
//!    analyzer computed from scratch for each query;
//! 2. the indexed `BlockReuse` region queries agree with a linear-scan
//!    oracle over `(block, stats)` pairs;
//! 3. every parallelized per-sample pass is invariant in the worker
//!    count (threads = N matches threads = 1 bit-for-bit).

use memgaze_analysis::{
    analyze_window, locality_vs_interval_with, region_heatmaps_from, window_series_with,
    AnalysisConfig, Analyzer, BlockReuse, IntervalTree,
};
use memgaze_model::{
    Access, AuxAnnotations, BlockSize, Sample, SampledTrace, SymbolTable, TraceMeta,
};
use proptest::prelude::*;

fn arb_access() -> impl Strategy<Value = Access> {
    (0u64..64, 0u64..(1 << 12), 0u64..(1 << 20))
        .prop_map(|(ip, addr, t)| Access::new(0x400 + ip * 4, 0x10_0000 + addr * 8, t))
}

fn arb_window(max: usize) -> impl Strategy<Value = Vec<Access>> {
    prop::collection::vec(arb_access(), 0..max).prop_map(|mut v| {
        v.sort_by_key(|a| a.time);
        v
    })
}

fn arb_trace() -> impl Strategy<Value = SampledTrace> {
    prop::collection::vec(arb_window(120), 0..10).prop_map(|windows| {
        let mut t = SampledTrace::new(TraceMeta::new("prop", 10_000, 8192));
        let mut offset = 0u64;
        for w in windows {
            let shifted: Vec<Access> = w
                .iter()
                .map(|a| Access::new(a.ip, a.addr, a.time + offset))
                .collect();
            let trigger = shifted.last().map_or(offset, |a| a.time + 1);
            t.push_sample(Sample::new(shifted, trigger)).unwrap();
            offset = trigger + 10_000;
        }
        t.meta.total_loads = offset.max(1);
        t
    })
}

/// Linear-scan oracle for the indexed region queries: per-block
/// `(accesses, Σ distance, reuse count, max distance)` accumulated
/// directly from the per-sample analyses, queried by brute force.
#[derive(Default)]
struct ScanOracle {
    rows: Vec<(u64, u64, u64, u64, u64)>, // block, accesses, dist_sum, reuse_cnt, max
}

fn oracle(t: &SampledTrace, bs: BlockSize) -> ScanOracle {
    use std::collections::BTreeMap;
    let mut m: BTreeMap<u64, (u64, u64, u64, u64)> = BTreeMap::new();
    for s in &t.samples {
        let r = analyze_window(&s.accesses, bs);
        for a in &s.accesses {
            m.entry(a.addr.block(bs)).or_default().0 += 1;
        }
        for e in &r.events {
            let ent = m.entry(e.block).or_default();
            ent.1 += e.distance;
            ent.2 += 1;
            ent.3 = ent.3.max(e.distance);
        }
    }
    ScanOracle {
        rows: m
            .into_iter()
            .map(|(b, (a, d, c, x))| (b, a, d, c, x))
            .collect(),
    }
}

impl ScanOracle {
    fn in_range(&self, lo: u64, hi: u64) -> impl Iterator<Item = &(u64, u64, u64, u64, u64)> {
        self.rows.iter().filter(move |r| r.0 >= lo && r.0 < hi)
    }
    fn accesses(&self, lo: u64, hi: u64) -> u64 {
        self.in_range(lo, hi).map(|r| r.1).sum()
    }
    fn blocks(&self, lo: u64, hi: u64) -> u64 {
        self.in_range(lo, hi).count() as u64
    }
    fn mean_distance(&self, lo: u64, hi: u64) -> f64 {
        let (mut sum, mut cnt) = (0u64, 0u64);
        for r in self.in_range(lo, hi) {
            sum += r.2;
            cnt += r.3;
        }
        if cnt == 0 {
            0.0
        } else {
            sum as f64 / cnt as f64
        }
    }
    fn max_distance(&self, lo: u64, hi: u64) -> u64 {
        self.in_range(lo, hi).map(|r| r.4).max().unwrap_or(0)
    }
}

fn trace_block_reuse(t: &SampledTrace, bs: BlockSize) -> BlockReuse {
    let mut br = BlockReuse::default();
    for s in &t.samples {
        let r = analyze_window(&s.accesses, bs);
        br.merge(&BlockReuse::from_analysis(&s.accesses, bs, &r));
    }
    br
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pillar 1: every cached artifact equals the same artifact from a
    /// fresh analyzer, and repeated queries never recompute.
    #[test]
    fn cached_analyzer_matches_fresh(t in arb_trace()) {
        let annots = AuxAnnotations::new();
        let symbols = SymbolTable::new();
        let cfg = AnalysisConfig::default();
        let cached = Analyzer::new(&t, &annots, &symbols).with_config(cfg);

        // Query everything twice from the cached analyzer.
        for _ in 0..2 {
            let _ = cached.decompression();
            let _ = cached.function_table();
            let _ = cached.region_rows();
            let _ = cached.interval_rows(4);
            let _ = cached.block_reuse();
            let _ = cached.zoom();
        }
        let fresh = || Analyzer::new(&t, &annots, &symbols).with_config(cfg);
        prop_assert_eq!(cached.decompression(), fresh().decompression());
        prop_assert_eq!(cached.function_table(), fresh().function_table().to_vec());
        prop_assert_eq!(cached.region_rows(), fresh().region_rows());
        prop_assert_eq!(cached.interval_rows(4), fresh().interval_rows(4));
        let f = fresh();
        prop_assert_eq!(cached.block_reuse(), f.block_reuse());
        prop_assert_eq!(cached.zoom(), f.zoom());

        // Each artifact computed at most once despite repeated queries.
        let stats = cached.cache_stats();
        prop_assert!(stats.block_reuse <= 1);
        prop_assert!(stats.zoom <= 1);
        prop_assert!(stats.sample_reuse <= 1);
        prop_assert!(stats.sample_diags <= 1);
        prop_assert!(stats.function_rows <= 1);
        prop_assert!(stats.decompression <= 1);
    }

    /// Pillar 2: indexed region queries equal the linear-scan oracle on
    /// arbitrary query ranges (including empty and reversed ones).
    #[test]
    fn indexed_region_queries_match_scan(
        t in arb_trace(),
        queries in prop::collection::vec((0u64..(1 << 14), 0u64..(1 << 14)), 1..20),
    ) {
        let br = trace_block_reuse(&t, BlockSize::CACHE_LINE);
        let o = oracle(&t, BlockSize::CACHE_LINE);
        // Blocks of the generated addresses: 0x10_0000/64 .. + 2^12*8/64.
        let base = 0x10_0000u64 >> 6;
        for (a, b) in queries {
            let (lo, hi) = (base + a.min(b), base + a.max(b));
            prop_assert_eq!(br.region_accesses(lo, hi), o.accesses(lo, hi));
            prop_assert_eq!(br.region_blocks(lo, hi), o.blocks(lo, hi));
            prop_assert_eq!(br.region_max_distance(lo, hi), o.max_distance(lo, hi));
            // Both sides divide identical integer sums → exactly equal.
            prop_assert_eq!(br.region_mean_distance(lo, hi), o.mean_distance(lo, hi));
        }
        // Degenerate ranges.
        prop_assert_eq!(br.region_accesses(10, 10), 0);
        prop_assert_eq!(br.region_accesses(0, u64::MAX), o.accesses(0, u64::MAX));
    }

    /// Pillar 3: the parallel per-sample passes are bit-for-bit
    /// invariant in the worker count.
    #[test]
    fn parallel_passes_match_single_thread(t in arb_trace(), threads in 2usize..6) {
        let annots = AuxAnnotations::new();
        let symbols = SymbolTable::new();
        let sizes = [8u64, 32, 128];
        let info = {
            let a = Analyzer::new(&t, &annots, &symbols);
            a.decompression()
        };

        let w1 = window_series_with(&t, &annots, BlockSize::WORD, &sizes, &info, 1);
        let wn = window_series_with(&t, &annots, BlockSize::WORD, &sizes, &info, threads);
        prop_assert_eq!(w1, wn);

        let l1 = locality_vs_interval_with(&t, &annots, BlockSize::CACHE_LINE, &sizes, 1);
        let ln = locality_vs_interval_with(&t, &annots, BlockSize::CACHE_LINE, &sizes, threads);
        prop_assert_eq!(l1, ln);

        let analyses: Vec<_> = t
            .samples
            .iter()
            .map(|s| analyze_window(&s.accesses, BlockSize::CACHE_LINE))
            .collect();
        let region = (0x10_0000u64, 0x10_0000 + (1 << 15));
        let (a1, d1) = region_heatmaps_from(&t, &analyses, region, 8, 8, 1);
        let (an, dn) = region_heatmaps_from(&t, &analyses, region, 8, 8, threads);
        prop_assert_eq!(a1, an);
        prop_assert_eq!(d1, dn);

        let tree1 = IntervalTree::build_par(&t, &annots, &symbols, BlockSize::WORD, 1.0, 1);
        let treen = IntervalTree::build_par(&t, &annots, &symbols, BlockSize::WORD, 1.0, threads);
        prop_assert_eq!(tree1, treen);

        // And through the analyzer façade: threads=1 vs threads=N config
        // produce identical tables.
        let c1 = AnalysisConfig {
            threads: 1,
            ..AnalysisConfig::default()
        };
        let cn = AnalysisConfig { threads, ..c1 };
        let one = Analyzer::new(&t, &annots, &symbols).with_config(c1);
        let many = Analyzer::new(&t, &annots, &symbols).with_config(cn);
        prop_assert_eq!(one.function_table().to_vec(), many.function_table().to_vec());
        prop_assert_eq!(one.region_rows(), many.region_rows());
        prop_assert_eq!(one.interval_rows(4), many.interval_rows(4));
        prop_assert_eq!(one.block_reuse(), many.block_reuse());
    }
}
