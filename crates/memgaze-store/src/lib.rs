//! Content-addressed trace store with tiered caching and an
//! index-backed query engine.
//!
//! MemGaze's value proposition (paper §I) is *rapid* load-level
//! analysis — but rapid re-analysis matters just as much: traces are
//! collected once and then interrogated many times, under different
//! configurations, zoom targets, and time windows. This crate gives
//! traces a durable home built for that access pattern:
//!
//! * [`blob`] — shard-frame payloads stored as checksummed,
//!   block-compressed blobs under a seeded-FNV *content hash*, so
//!   identical frames are stored once and every read is self-verifying;
//! * [`compress`] — the general-purpose LZ block codec layered over the
//!   existing trigger delta chains;
//! * [`catalog`] — the persistent promotion of the in-memory
//!   [`FrameIndex`](memgaze_model::FrameIndex) sidecar: ordered frame
//!   hashes plus per-frame sample/load counts, time and address ranges,
//!   per-block reuse rows, and function attribution (MGZC format);
//! * [`cache`] — a byte-budgeted in-memory LRU over decoded payloads,
//!   instrumented through `memgaze-obs`;
//! * [`store`] — [`TraceStore`]: `put`/`get`/`ls`/`gc`, byte-identical
//!   container reassembly, and store-backed analysis with a per-frame
//!   result cache keyed by (frame hash, analyzer-config hash);
//! * [`query`] — [`QueryEngine`]: region / time-range / per-function
//!   statistics answered from catalog summaries without decoding any
//!   shard.
//!
//! Every degraded on-disk state is a typed [`StoreError`]; corruption
//! and staleness are detected, named, and never returned as data.

pub mod blob;
pub mod cache;
pub mod catalog;
pub mod compress;
pub mod error;
pub mod query;
pub mod store;

pub use blob::{content_hash, CONTENT_HASH_SEED};
pub use cache::{BlobCache, CacheStats};
pub use catalog::{Catalog, FrameSummary};
pub use error::StoreError;
pub use query::{FunctionAnswer, QueryEngine, RegionAnswer, TimeAnswer};
pub use store::{
    validate_trace_id, GcReport, PutReceipt, StoreAnalysis, StoreConfig, TraceEntry, TraceStore,
    DEFAULT_CACHE_BUDGET,
};
