//! Typed store failures.
//!
//! Every degraded on-disk state the store can meet — a blob whose bytes
//! no longer hash to their name, a catalog that no longer describes its
//! blobs, a missing object — comes back as a [`StoreError`] variant,
//! never a panic. Callers distinguish *corruption* (bytes changed under
//! us) from *staleness* (a catalog/blob pairing that is internally
//! valid but mismatched) from *absence* (a hash nothing stored), which
//! is exactly the split `gc` and repair tooling need.

use memgaze_analysis::PartialError;
use memgaze_model::ModelError;

/// Failures of the trace store.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem I/O failed.
    Io {
        /// What the store was doing.
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A trace id that cannot be a catalog file name.
    InvalidTraceId {
        /// The offending id.
        id: String,
    },
    /// No catalog is stored under this trace id.
    MissingTrace {
        /// The requested id.
        id: String,
    },
    /// A referenced blob does not exist in the blob area.
    MissingBlob {
        /// The content hash that resolved to nothing.
        hash: u64,
    },
    /// A blob's bytes fail their checksum, fail to decompress, or no
    /// longer hash to the content address they are stored under.
    CorruptBlob {
        /// The content hash the blob was fetched by.
        hash: u64,
        /// What was wrong.
        detail: String,
    },
    /// A catalog file that does not decode (bad magic, checksum
    /// mismatch, truncation, malformed fields).
    CorruptCatalog {
        /// The trace id whose catalog failed.
        id: String,
        /// What was wrong.
        detail: String,
    },
    /// A catalog that decodes fine but no longer describes the stored
    /// data — e.g. a reassembled container whose length or checksum
    /// disagrees with what the catalog recorded at put time.
    StaleCatalog {
        /// What mismatched.
        detail: String,
    },
    /// The model layer rejected container or frame data.
    Model(ModelError),
    /// A cached partial report failed to decode or merge.
    Partial(PartialError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { context, source } => write!(f, "store i/o ({context}): {source}"),
            StoreError::InvalidTraceId { id } => write!(
                f,
                "invalid trace id {id:?}: use only ASCII letters, digits, '.', '_', '-'"
            ),
            StoreError::MissingTrace { id } => write!(f, "no trace {id:?} in the store"),
            StoreError::MissingBlob { hash } => write!(f, "blob {hash:#018x} is not in the store"),
            StoreError::CorruptBlob { hash, detail } => {
                write!(f, "blob {hash:#018x} is corrupt: {detail}")
            }
            StoreError::CorruptCatalog { id, detail } => {
                write!(f, "catalog for {id:?} is corrupt: {detail}")
            }
            StoreError::StaleCatalog { detail } => write!(f, "stale catalog: {detail}"),
            StoreError::Model(e) => write!(f, "store model error: {e}"),
            StoreError::Partial(e) => write!(f, "store partial-report error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Model(e) => Some(e),
            StoreError::Partial(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for StoreError {
    fn from(e: ModelError) -> Self {
        StoreError::Model(e)
    }
}

impl From<PartialError> for StoreError {
    fn from(e: PartialError) -> Self {
        StoreError::Partial(e)
    }
}

/// Attach an operation context to an I/O error.
pub(crate) fn io_err(context: impl Into<String>, source: std::io::Error) -> StoreError {
    StoreError::Io {
        context: context.into(),
        source,
    }
}
