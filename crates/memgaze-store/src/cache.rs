//! In-memory hot-shard cache: a byte-budgeted LRU over decoded blob
//! payloads.
//!
//! Repeated analysis of the same trace (interactive zooming, fan-out
//! retries, re-runs with a different analyzer config) keeps refetching
//! the same blobs; this cache keeps the most recently touched payloads
//! resident up to a configurable byte budget, so the disk + checksum +
//! decompression path runs once per hot shard. Payloads are shared out
//! as `Arc<Vec<u8>>` — eviction never invalidates a payload a caller is
//! still holding.
//!
//! Hit/miss/eviction traffic is wired through `memgaze-obs`
//! (`store.cache_hits`, `store.cache_misses`, `store.cache_evictions`),
//! so `--obs` runs see cache behavior next to the rest of the pipeline.

use memgaze_obs::counter;
use std::collections::HashMap;
use std::sync::Arc;

/// Monotonic use-stamp; u64 cannot wrap in any realistic run.
type Stamp = u64;

/// Byte-budgeted LRU keyed by content hash.
pub struct BlobCache {
    budget: u64,
    held: u64,
    tick: Stamp,
    entries: HashMap<u64, (Arc<Vec<u8>>, Stamp)>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A point-in-time view of cache traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from memory.
    pub hits: u64,
    /// Lookups that fell through to disk.
    pub misses: u64,
    /// Payloads evicted to stay within budget.
    pub evictions: u64,
    /// Bytes currently resident.
    pub held_bytes: u64,
}

impl BlobCache {
    /// A cache that holds at most `budget` payload bytes. A zero budget
    /// disables residency entirely (every lookup is a miss).
    pub fn new(budget: u64) -> BlobCache {
        BlobCache {
            budget,
            held: 0,
            tick: 0,
            entries: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Look up a payload, refreshing its recency on hit.
    pub fn get(&mut self, hash: u64) -> Option<Arc<Vec<u8>>> {
        self.tick += 1;
        match self.entries.get_mut(&hash) {
            Some((payload, stamp)) => {
                *stamp = self.tick;
                self.hits += 1;
                counter!("store.cache_hits").add(1);
                Some(Arc::clone(payload))
            }
            None => {
                self.misses += 1;
                counter!("store.cache_misses").add(1);
                None
            }
        }
    }

    /// Insert a payload, evicting least-recently-used entries until the
    /// budget holds. A payload larger than the whole budget is simply
    /// not retained (the caller still has its Arc).
    ///
    /// Eviction never panics: the victim is removed with an `if let`
    /// rather than an `expect`, and byte accounting saturates. A shared
    /// server process must survive any interleaving of cache traffic —
    /// a poisoned-or-dead cache taking the whole daemon down with it is
    /// strictly worse than one stale entry.
    pub fn put(&mut self, hash: u64, payload: Arc<Vec<u8>>) {
        let size = payload.len() as u64;
        if size > self.budget {
            return;
        }
        self.tick += 1;
        if let Some((old, _)) = self.entries.insert(hash, (payload, self.tick)) {
            self.held = self.held.saturating_sub(old.len() as u64);
        }
        self.held += size;
        while self.held > self.budget {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(&hash, _)| hash);
            let Some(victim) = victim else {
                // Accounting says over budget but no entries remain:
                // resynchronize rather than spin (or die) on the skew.
                self.held = self.entries.values().map(|(p, _)| p.len() as u64).sum();
                break;
            };
            // The victim key was found under the same borrow, but a
            // racing removal path must degrade to "retry with the next
            // victim", never a process-killing panic.
            if let Some((evicted, _)) = self.entries.remove(&victim) {
                self.held = self.held.saturating_sub(evicted.len() as u64);
                self.evictions += 1;
                counter!("store.cache_evictions").add(1);
            }
        }
    }

    /// Traffic counters since construction.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            held_bytes: self.held,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(n: usize, fill: u8) -> Arc<Vec<u8>> {
        Arc::new(vec![fill; n])
    }

    #[test]
    fn hits_refresh_recency() {
        let mut c = BlobCache::new(100);
        c.put(1, blob(40, 1));
        c.put(2, blob(40, 2));
        assert!(c.get(1).is_some()); // 1 is now more recent than 2
        c.put(3, blob(40, 3)); // budget forces one eviction: 2
        assert!(c.get(1).is_some());
        assert!(c.get(2).is_none());
        assert!(c.get(3).is_some());
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.held_bytes, 80);
        assert_eq!(s.hits, 3);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn oversized_payloads_pass_through() {
        let mut c = BlobCache::new(10);
        c.put(7, blob(50, 0));
        assert!(c.get(7).is_none());
        assert_eq!(c.stats().held_bytes, 0);
    }

    #[test]
    fn reinsert_replaces_without_double_count() {
        let mut c = BlobCache::new(100);
        c.put(5, blob(60, 0));
        c.put(5, blob(30, 1));
        assert_eq!(c.stats().held_bytes, 30);
        assert_eq!(c.get(5).unwrap().len(), 30);
    }

    #[test]
    fn zero_budget_disables_residency() {
        let mut c = BlobCache::new(0);
        c.put(1, blob(1, 0));
        assert!(c.get(1).is_none());
    }

    /// Regression: many threads hammering a shared cache with a budget
    /// small enough that nearly every `put` evicts. The pre-fix eviction
    /// loop removed its victim through `expect("victim was just found")`,
    /// so any accounting skew under contention killed the process; the
    /// server-shaped requirement is that no interleaving panics and the
    /// byte accounting stays within budget.
    #[test]
    fn concurrent_eviction_never_panics() {
        use std::sync::Mutex;
        let cache = Arc::new(Mutex::new(BlobCache::new(256)));
        let workers: Vec<_> = (0..8u64)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        let key = (t * 31 + i) % 64;
                        let mut c = cache.lock().unwrap();
                        if i % 3 == 0 {
                            c.get(key);
                        } else {
                            c.put(key, blob(32 + (key as usize % 48), key as u8));
                        }
                        let held = c.stats().held_bytes;
                        assert!(held <= 256, "held {held} exceeds budget");
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().expect("cache worker must not panic");
        }
        let c = cache.lock().unwrap();
        let actual: u64 = c.entries.values().map(|(p, _)| p.len() as u64).sum();
        assert_eq!(
            c.stats().held_bytes,
            actual,
            "accounting drifted from contents"
        );
    }
}
