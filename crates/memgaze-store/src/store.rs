//! The content-addressed trace store.
//!
//! On-disk layout under one root directory:
//!
//! ```text
//! root/
//!   blobs/aa/aabbcc...16hex.blob      compressed frame payloads (MGZB)
//!   catalog/<trace-id>.mgzc           per-trace catalogs (MGZC)
//!   results/<cfg-16hex>/<frame-16hex>.mgzp   cached per-frame partials
//! ```
//!
//! Three tiers answer reads, cheapest first:
//!
//! 1. the **result cache** — per-frame [`PartialReport`]s keyed by
//!    (frame content hash, analyzer config hash), so re-analysis of an
//!    unchanged frame under an unchanged configuration is a file read
//!    and a decode, no sample ever touched;
//! 2. the **hot-shard LRU** ([`BlobCache`]) — decoded payloads resident
//!    in memory up to a byte budget;
//! 3. the **blob tier** — checksummed, block-compressed files fetched
//!    by content hash.
//!
//! Content addressing makes `put` deduplicating (identical frames in
//! any trace share one blob) and makes every read self-verifying: bytes
//! that do not hash to their address are a typed [`StoreError`], never
//! returned data. All writes are atomic (temp file + rename), so a
//! crashed `put` leaves either the old object or the new one, never a
//! torn file.

use crate::blob::{decode_blob, encode_blob};
use crate::cache::{BlobCache, CacheStats};
use crate::catalog::Catalog;
use crate::error::{io_err, StoreError};
use memgaze_analysis::streaming::StreamingReport;
use memgaze_analysis::{AnalysisConfig, PartialReport, StreamingAnalyzer, WorkerSpec};
use memgaze_model::annot::AuxAnnotations;
use memgaze_model::stream::decode_frame_payload;
use memgaze_model::{fnv1a64, BlockSize, FrameIndex, SymbolTable, TraceMeta};
use std::fs;
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default hot-shard cache budget: enough for the working set of an
/// interactive session without surprising anyone's memory profile.
pub const DEFAULT_CACHE_BUDGET: u64 = 64 << 20;

/// Configuration for opening a [`TraceStore`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Root directory; created (with parents) on open.
    pub root: PathBuf,
    /// Hot-shard LRU budget in payload bytes. Zero disables residency.
    pub cache_budget_bytes: u64,
    /// Block size for catalog reuse summaries.
    pub summary_block: BlockSize,
}

impl StoreConfig {
    /// Defaults for a store rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> StoreConfig {
        StoreConfig {
            root: root.into(),
            cache_budget_bytes: DEFAULT_CACHE_BUDGET,
            summary_block: BlockSize::CACHE_LINE,
        }
    }
}

/// What one `put` did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PutReceipt {
    /// Frames in the trace.
    pub frames: usize,
    /// Blobs written by this put.
    pub new_blobs: usize,
    /// Frames whose blob already existed (deduplicated).
    pub dedup_blobs: usize,
    /// Uncompressed payload bytes across all frames.
    pub raw_bytes: u64,
    /// On-disk bytes of the unique blobs referenced by this trace.
    pub stored_bytes: u64,
}

impl PutReceipt {
    /// Uncompressed-to-stored ratio (> 1 means the store saved space).
    pub fn compression_ratio(&self) -> f64 {
        if self.stored_bytes == 0 {
            1.0
        } else {
            self.raw_bytes as f64 / self.stored_bytes as f64
        }
    }
}

/// One row of [`TraceStore::ls`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Trace id.
    pub id: String,
    /// Frame count.
    pub frames: usize,
    /// Total samples.
    pub samples: u64,
    /// Total uncompressed payload bytes.
    pub payload_bytes: u64,
    /// Workload label from the trace meta.
    pub workload: String,
}

/// What a `gc` pass reclaimed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcReport {
    /// Unreferenced blobs removed.
    pub blobs_removed: usize,
    /// Blob bytes reclaimed.
    pub blob_bytes_reclaimed: u64,
    /// Cached results removed (frames no longer referenced).
    pub results_removed: usize,
}

/// Outcome of a store-backed analysis pass.
#[derive(Debug, Clone)]
pub struct StoreAnalysis {
    /// The merged report — bit-identical to a resident streaming pass
    /// over the same container and configuration.
    pub report: StreamingReport,
    /// Trace metadata with trailer-final totals.
    pub meta: TraceMeta,
    /// Frames served from the result cache.
    pub result_hits: usize,
    /// Frames analyzed from blobs.
    pub result_misses: usize,
}

/// A content-addressed store of trace shards with tiered caching.
pub struct TraceStore {
    config: StoreConfig,
    cache: Mutex<BlobCache>,
}

impl TraceStore {
    /// Open (creating directories as needed) a store at `config.root`.
    pub fn open(config: StoreConfig) -> Result<TraceStore, StoreError> {
        for sub in ["blobs", "catalog", "results"] {
            let dir = config.root.join(sub);
            fs::create_dir_all(&dir)
                .map_err(|e| io_err(format!("creating {}", dir.display()), e))?;
        }
        let cache = Mutex::new(BlobCache::new(config.cache_budget_bytes));
        Ok(TraceStore { config, cache })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.config.root
    }

    /// Block size catalog reuse summaries are computed at.
    pub fn summary_block(&self) -> BlockSize {
        self.config.summary_block
    }

    /// Hot-shard cache traffic since open.
    pub fn cache_stats(&self) -> CacheStats {
        lock_live(&self.cache).stats()
    }

    fn blob_path(&self, hash: u64) -> PathBuf {
        let hex = format!("{hash:016x}");
        self.config
            .root
            .join("blobs")
            .join(&hex[..2])
            .join(format!("{hex}.blob"))
    }

    fn catalog_path(&self, id: &str) -> Result<PathBuf, StoreError> {
        validate_trace_id(id)?;
        Ok(self.config.root.join("catalog").join(format!("{id}.mgzc")))
    }

    fn result_path(&self, config_hash: u64, frame_hash: u64) -> PathBuf {
        self.config
            .root
            .join("results")
            .join(format!("{config_hash:016x}"))
            .join(format!("{frame_hash:016x}.mgzp"))
    }

    /// Merged-range cache entry: the exact fold of a frame range's
    /// partials, keyed by the sequence of frame content hashes (the
    /// `.mgzr` extension keeps it apart from per-frame `.mgzp`
    /// entries in the same config directory).
    fn range_result_path(&self, config_hash: u64, range_hash: u64) -> PathBuf {
        self.config
            .root
            .join("results")
            .join(format!("{config_hash:016x}"))
            .join(format!("{range_hash:016x}.mgzr"))
    }

    /// Store a container under `id`: scan it into a [`Catalog`], write
    /// every frame payload as a content-addressed blob (skipping blobs
    /// that already exist), and persist the catalog. Re-putting the
    /// same trace is idempotent; putting a different trace under an
    /// existing id replaces the catalog but shares any common blobs.
    pub fn put(
        &self,
        id: &str,
        container: &[u8],
        index: &FrameIndex,
        symbols: &SymbolTable,
    ) -> Result<PutReceipt, StoreError> {
        let mut span = memgaze_obs::span("store.put");
        if span.is_active() {
            span.set_label(format!("{id} ({} frames)", index.entries.len()));
        }
        let catalog_path = self.catalog_path(id)?;
        let catalog = Catalog::scan(id, container, index, symbols, self.config.summary_block)?;
        let mut receipt = PutReceipt {
            frames: catalog.frames.len(),
            new_blobs: 0,
            dedup_blobs: 0,
            raw_bytes: 0,
            stored_bytes: 0,
        };
        let mut seen = std::collections::BTreeSet::new();
        for (e, f) in index.entries.iter().zip(&catalog.frames) {
            receipt.raw_bytes += f.len;
            if !seen.insert(f.hash) {
                continue;
            }
            let path = self.blob_path(f.hash);
            let stored = match fs::metadata(&path) {
                Ok(m) => {
                    receipt.dedup_blobs += 1;
                    memgaze_obs::counter!("store.put_dedup").add(1);
                    m.len()
                }
                Err(_) => {
                    let payload = &container[e.offset as usize..(e.offset + e.len) as usize];
                    let framed = encode_blob(payload);
                    write_atomic(&path, &framed)?;
                    receipt.new_blobs += 1;
                    memgaze_obs::counter!("store.put_blobs").add(1);
                    framed.len() as u64
                }
            };
            receipt.stored_bytes += stored;
        }
        write_atomic(&catalog_path, &catalog.encode())?;
        Ok(receipt)
    }

    /// Load the catalog for `id`.
    pub fn catalog(&self, id: &str) -> Result<Catalog, StoreError> {
        let path = self.catalog_path(id)?;
        let data = match fs::read(&path) {
            Ok(d) => d,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StoreError::MissingTrace { id: id.to_string() })
            }
            Err(e) => return Err(io_err(format!("reading {}", path.display()), e)),
        };
        Catalog::decode(id, &data)
    }

    /// Fetch a frame payload by content hash, through the hot-shard
    /// cache. The returned bytes are verified (blob checksum, then
    /// content-hash recheck) before they are cached or returned.
    pub fn get_blob(&self, hash: u64) -> Result<Arc<Vec<u8>>, StoreError> {
        if let Some(hit) = lock_live(&self.cache).get(hash) {
            return Ok(hit);
        }
        let path = self.blob_path(hash);
        let data = match fs::read(&path) {
            Ok(d) => d,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StoreError::MissingBlob { hash })
            }
            Err(e) => return Err(io_err(format!("reading {}", path.display()), e)),
        };
        let payload = Arc::new(decode_blob(hash, &data)?);
        lock_live(&self.cache).put(hash, Arc::clone(&payload));
        Ok(payload)
    }

    /// Reassemble the byte-identical original container for `id` from
    /// its catalog and blobs, verifying total length and whole-container
    /// checksum — any catalog/blob drift is [`StoreError::StaleCatalog`].
    pub fn get_container(&self, id: &str) -> Result<Vec<u8>, StoreError> {
        let catalog = self.catalog(id)?;
        self.reassemble(&catalog)
    }

    /// [`get_container`](Self::get_container) from an already-loaded
    /// catalog.
    pub fn reassemble(&self, catalog: &Catalog) -> Result<Vec<u8>, StoreError> {
        let _span = memgaze_obs::span("store.reassemble");
        let mut out = Vec::with_capacity(catalog.container_len as usize);
        out.extend_from_slice(&catalog.header_bytes);
        for f in &catalog.frames {
            let payload = self.get_blob(f.hash)?;
            if payload.len() as u64 != f.len {
                return Err(StoreError::StaleCatalog {
                    detail: format!(
                        "frame {:#018x} is {} bytes, catalog records {}",
                        f.hash,
                        payload.len(),
                        f.len
                    ),
                });
            }
            put_varint(&mut out, payload.len() as u64);
            out.extend_from_slice(&payload);
        }
        out.extend_from_slice(&catalog.trailer_bytes);
        if out.len() as u64 != catalog.container_len {
            return Err(StoreError::StaleCatalog {
                detail: format!(
                    "reassembled {} bytes, catalog records {}",
                    out.len(),
                    catalog.container_len
                ),
            });
        }
        let got = fnv1a64(&out);
        if got != catalog.container_checksum {
            return Err(StoreError::StaleCatalog {
                detail: format!(
                    "reassembled checksum {got:#018x} != recorded {:#018x}",
                    catalog.container_checksum
                ),
            });
        }
        Ok(out)
    }

    /// List stored traces, sorted by id.
    pub fn ls(&self) -> Result<Vec<TraceEntry>, StoreError> {
        let dir = self.config.root.join("catalog");
        let mut out = Vec::new();
        for entry in
            fs::read_dir(&dir).map_err(|e| io_err(format!("listing {}", dir.display()), e))?
        {
            let entry = entry.map_err(|e| io_err("reading catalog dir entry", e))?;
            let name = entry.file_name();
            let Some(id) = name.to_str().and_then(|n| n.strip_suffix(".mgzc")) else {
                continue;
            };
            let catalog = self.catalog(id)?;
            out.push(TraceEntry {
                id: id.to_string(),
                frames: catalog.frames.len(),
                samples: catalog.total_samples(),
                payload_bytes: catalog.payload_bytes(),
                workload: catalog.meta().map(|m| m.workload).unwrap_or_default(),
            });
        }
        out.sort_by(|a, b| a.id.cmp(&b.id));
        Ok(out)
    }

    /// Remove blobs no catalog references, and cached results for
    /// frames no catalog references.
    pub fn gc(&self) -> Result<GcReport, StoreError> {
        let _span = memgaze_obs::span("store.gc");
        let mut live = std::collections::BTreeSet::new();
        for entry in self.ls()? {
            for f in self.catalog(&entry.id)?.frames {
                live.insert(f.hash);
            }
        }
        let mut report = GcReport::default();
        let blobs = self.config.root.join("blobs");
        for shard_dir in read_dir_sorted(&blobs)? {
            if !shard_dir.is_dir() {
                continue;
            }
            for path in read_dir_sorted(&shard_dir)? {
                let Some(hash) = hash_from_path(&path, ".blob") else {
                    continue;
                };
                if live.contains(&hash) {
                    continue;
                }
                let size = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                fs::remove_file(&path)
                    .map_err(|e| io_err(format!("removing {}", path.display()), e))?;
                report.blobs_removed += 1;
                report.blob_bytes_reclaimed += size;
            }
        }
        let results = self.config.root.join("results");
        for cfg_dir in read_dir_sorted(&results)? {
            if !cfg_dir.is_dir() {
                continue;
            }
            for path in read_dir_sorted(&cfg_dir)? {
                let Some(hash) = hash_from_path(&path, ".mgzp") else {
                    // Merged-range entries are keyed by frame-hash
                    // sequences gc cannot trace to live catalogs;
                    // they are pure derived caches, so gc drops them
                    // and the next analyze rebuilds what it needs.
                    if path.extension().is_some_and(|e| e == "mgzr") {
                        fs::remove_file(&path)
                            .map_err(|e| io_err(format!("removing {}", path.display()), e))?;
                        report.results_removed += 1;
                    }
                    continue;
                };
                if live.contains(&hash) {
                    continue;
                }
                fs::remove_file(&path)
                    .map_err(|e| io_err(format!("removing {}", path.display()), e))?;
                report.results_removed += 1;
            }
        }
        Ok(report)
    }

    /// Hash of everything that determines an analysis *result* for a
    /// frame: block sizes, locality sizes, annotations, symbols. The
    /// thread count is deliberately pinned to 1 before hashing —
    /// results are thread-invariant, so runs at different parallelism
    /// share one cache namespace.
    pub fn config_hash(
        analysis: &AnalysisConfig,
        locality_sizes: &[u64],
        annots: &AuxAnnotations,
        symbols: &SymbolTable,
    ) -> u64 {
        let spec = WorkerSpec {
            footprint_block: analysis.footprint_block,
            reuse_block: analysis.reuse_block,
            threads: 1,
            locality_sizes: locality_sizes.to_vec(),
            annots: annots.clone(),
            symbols: symbols.clone(),
        };
        fnv1a64(&spec.encode())
    }

    /// Analyze a contiguous frame range of a stored trace into a
    /// mergeable [`PartialReport`], result caches first: the
    /// merged-range tier (the exact fold of this frame-hash sequence,
    /// what a repeat analysis or a retried fan-out range asks for),
    /// then the per-frame tier for whatever overlaps. This is the unit
    /// the store-backed fan-out workers run; returns the partial plus
    /// (cache hits, misses).
    pub fn analyze_frames(
        &self,
        catalog: &Catalog,
        frames: Range<usize>,
        annots: &AuxAnnotations,
        symbols: &SymbolTable,
        analysis: AnalysisConfig,
        locality_sizes: &[u64],
    ) -> Result<(PartialReport, usize, usize), StoreError> {
        let mut span = memgaze_obs::span("store.analyze_frames");
        if span.is_active() {
            span.set_label(format!(
                "{} frames {}..{}",
                catalog.trace_id, frames.start, frames.end
            ));
        }
        let cfg_hash = Self::config_hash(&analysis, locality_sizes, annots, symbols);
        // Merged-range tier first: the exact fold of this frame-hash
        // sequence may already be cached (a re-analysis of an unchanged
        // trace, or a retried fan-out range), skipping both the
        // per-frame reads and the fold itself. The key is the hash
        // sequence, not the indices, so identical content anywhere in
        // any trace shares the entry.
        let range_hash = frames
            .end
            .checked_sub(frames.start)
            .filter(|&n| n > 1)
            .and_then(|_| {
                let fs = catalog.frames.get(frames.clone())?;
                let mut key = Vec::with_capacity(fs.len() * 8);
                for f in fs {
                    key.extend_from_slice(&f.hash.to_le_bytes());
                }
                Some(fnv1a64(&key))
            });
        if let Some(rh) = range_hash {
            let cached = fs::read(self.range_result_path(cfg_hash, rh))
                .ok()
                .and_then(|d| PartialReport::decode(&d).ok());
            if let Some(p) = cached {
                let n = frames.end - frames.start;
                memgaze_obs::counter!("store.result_hits").add(n as u64);
                return Ok((p, n, 0));
            }
        }
        let mut parts: Vec<PartialReport> = Vec::with_capacity(frames.len());
        let mut hits = 0usize;
        let mut misses = 0usize;
        for i in frames {
            let Some(f) = catalog.frames.get(i) else {
                return Err(StoreError::StaleCatalog {
                    detail: format!(
                        "frame {i} out of range ({} cataloged)",
                        catalog.frames.len()
                    ),
                });
            };
            let path = self.result_path(cfg_hash, f.hash);
            // A cached result that fails to decode is treated as a miss
            // and overwritten — the cache can never wedge an analysis.
            let cached = fs::read(&path)
                .ok()
                .and_then(|d| PartialReport::decode(&d).ok());
            let partial = match cached {
                Some(p) => {
                    hits += 1;
                    memgaze_obs::counter!("store.result_hits").add(1);
                    p
                }
                None => {
                    misses += 1;
                    memgaze_obs::counter!("store.result_misses").add(1);
                    let payload = self.get_blob(f.hash)?;
                    let samples = decode_frame_payload(&payload)?;
                    let mut sa = StreamingAnalyzer::new(annots, symbols, analysis)
                        .with_locality_sizes(locality_sizes);
                    sa.ingest_shard(&samples);
                    let p = sa.into_partial();
                    write_atomic(&path, &p.encode())?;
                    p
                }
            };
            parts.push(partial);
        }
        // One partial per frame makes a sequential fold quadratic in
        // the per-merge index rebuilds; merge_many folds them exactly
        // with one rebuild.
        let merged = PartialReport::merge_many(
            parts,
            analysis.footprint_block,
            analysis.reuse_block,
            locality_sizes,
        )?;
        if let Some(rh) = range_hash {
            write_atomic(&self.range_result_path(cfg_hash, rh), &merged.encode())?;
        }
        Ok((merged, hits, misses))
    }

    /// Analyze a whole stored trace. The report is bit-identical to a
    /// resident streaming pass over the original container with the
    /// same configuration, whichever mix of caches served it.
    pub fn analyze(
        &self,
        id: &str,
        annots: &AuxAnnotations,
        symbols: &SymbolTable,
        analysis: AnalysisConfig,
        locality_sizes: &[u64],
    ) -> Result<StoreAnalysis, StoreError> {
        let catalog = self.catalog(id)?;
        let meta = catalog.meta()?;
        let n = catalog.frames.len();
        let (merged, result_hits, result_misses) =
            self.analyze_frames(&catalog, 0..n, annots, symbols, analysis, locality_sizes)?;
        Ok(StoreAnalysis {
            report: merged.finish(&meta),
            meta,
            result_hits,
            result_misses,
        })
    }
}

/// Trace ids become file names; restrict them to a safe alphabet.
pub fn validate_trace_id(id: &str) -> Result<(), StoreError> {
    let ok = !id.is_empty()
        && id.len() <= 128
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
        && !id.starts_with('.');
    if ok {
        Ok(())
    } else {
        Err(StoreError::InvalidTraceId { id: id.to_string() })
    }
}

fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(b);
            return;
        }
        buf.push(b | 0x80);
    }
}

/// Lock a mutex, recovering the data from a poisoned lock — cache
/// bookkeeping cannot be torn in a way that matters (worst case: a
/// stale recency stamp).
fn lock_live<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Write-then-rename so concurrent readers (and crashed writers) never
/// see a torn object.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let parent = path.parent().expect("store object paths have parents");
    fs::create_dir_all(parent).map_err(|e| io_err(format!("creating {}", parent.display()), e))?;
    let tmp = parent.join(format!(
        ".tmp-{}-{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    fs::write(&tmp, bytes).map_err(|e| io_err(format!("writing {}", tmp.display()), e))?;
    fs::rename(&tmp, path).map_err(|e| {
        let _ = fs::remove_file(&tmp);
        io_err(format!("renaming into {}", path.display()), e)
    })
}

/// Directory entries in sorted order; a missing directory is empty.
fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, StoreError> {
    let rd = match fs::read_dir(dir) {
        Ok(rd) => rd,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(io_err(format!("listing {}", dir.display()), e)),
    };
    let mut out = Vec::new();
    for entry in rd {
        out.push(entry.map_err(|e| io_err("reading dir entry", e))?.path());
    }
    out.sort();
    Ok(out)
}

/// Parse `<16 hex>.ext` back into the hash it names.
fn hash_from_path(path: &Path, ext: &str) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let hex = name.strip_suffix(ext)?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use memgaze_model::{encode_sharded_indexed, Access, Sample, SampledTrace};

    fn mk_trace(samples: usize, w: usize, salt: u64) -> SampledTrace {
        let mut t = SampledTrace::new(TraceMeta::new("store-unit", 10_000, 16 << 10));
        t.meta.total_loads = (samples * 10_000) as u64;
        t.meta.total_instrumented_loads = (samples * 100) as u64;
        for s in 0..samples {
            let base = (s as u64) * 10_000;
            let accesses = (0..w)
                .map(|i| {
                    Access::new(
                        0x400u64 + (i as u64 % 5) * 4,
                        0x10_0000u64 + ((i as u64 + salt) % 13) * 64,
                        base + i as u64,
                    )
                })
                .collect();
            t.push_sample(Sample::new(accesses, base + w as u64))
                .unwrap();
        }
        t
    }

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "memgaze-store-unit-{tag}-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_roundtrip_and_dedup() {
        let root = tmp_root("roundtrip");
        let store = TraceStore::open(StoreConfig::new(&root)).unwrap();
        let t = mk_trace(10, 17, 0);
        let (container, index) = encode_sharded_indexed(&t, 3);
        let sy = SymbolTable::new();
        let receipt = store.put("alpha", &container, &index, &sy).unwrap();
        assert_eq!(receipt.frames, 4);
        assert_eq!(receipt.new_blobs, 4);
        assert_eq!(receipt.dedup_blobs, 0);
        assert!(receipt.compression_ratio() > 0.0);
        // Byte-identical reassembly.
        assert_eq!(store.get_container("alpha").unwrap(), container);
        // Re-put is pure dedup.
        let again = store.put("alpha", &container, &index, &sy).unwrap();
        assert_eq!(again.new_blobs, 0);
        assert_eq!(again.dedup_blobs, 4);
        // Same trace under another id shares every blob.
        let twin = store.put("beta", &container, &index, &sy).unwrap();
        assert_eq!(twin.new_blobs, 0);
        let ids: Vec<String> = store.ls().unwrap().into_iter().map(|e| e.id).collect();
        assert_eq!(ids, vec!["alpha".to_string(), "beta".to_string()]);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn missing_and_invalid_ids_are_typed() {
        let root = tmp_root("ids");
        let store = TraceStore::open(StoreConfig::new(&root)).unwrap();
        assert!(matches!(
            store.catalog("nope"),
            Err(StoreError::MissingTrace { .. })
        ));
        for bad in ["", "a/b", "..", ".hidden", "x y"] {
            assert!(
                matches!(store.catalog(bad), Err(StoreError::InvalidTraceId { .. })),
                "{bad:?} must be invalid"
            );
        }
        assert!(matches!(
            store.get_blob(0xdead_beef),
            Err(StoreError::MissingBlob { .. })
        ));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn gc_reclaims_unreferenced_objects() {
        let root = tmp_root("gc");
        let store = TraceStore::open(StoreConfig::new(&root)).unwrap();
        let sy = SymbolTable::new();
        let a = mk_trace(6, 9, 0);
        let b = mk_trace(6, 9, 7); // different addresses ⇒ different blobs
        let (ca, ia) = encode_sharded_indexed(&a, 2);
        let (cb, ib) = encode_sharded_indexed(&b, 2);
        store.put("a", &ca, &ia, &sy).unwrap();
        store.put("b", &cb, &ib, &sy).unwrap();
        // Analyze "b" so it has cached results, then drop its catalog.
        store
            .analyze(
                "b",
                &AuxAnnotations::new(),
                &sy,
                AnalysisConfig::default(),
                &[64],
            )
            .unwrap();
        fs::remove_file(root.join("catalog/b.mgzc")).unwrap();
        let report = store.gc().unwrap();
        assert_eq!(report.blobs_removed, 3);
        assert!(report.blob_bytes_reclaimed > 0);
        // "b"'s three per-frame results plus the merged-range entry its
        // analyze persisted (range entries are always dropped by gc).
        assert_eq!(report.results_removed, 4);
        // "a" is untouched and still reassembles.
        assert_eq!(store.get_container("a").unwrap(), ca);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn analyze_is_cached_and_stable() {
        let root = tmp_root("analyze");
        let store = TraceStore::open(StoreConfig::new(&root)).unwrap();
        let t = mk_trace(8, 21, 3);
        let (container, index) = encode_sharded_indexed(&t, 2);
        let sy = SymbolTable::new();
        let annots = AuxAnnotations::new();
        store.put("tr", &container, &index, &sy).unwrap();
        let cfg = AnalysisConfig::default();
        let sizes = [16u64, 64, 256];
        let cold = store.analyze("tr", &annots, &sy, cfg, &sizes).unwrap();
        assert_eq!((cold.result_hits, cold.result_misses), (0, 4));
        let warm = store.analyze("tr", &annots, &sy, cfg, &sizes).unwrap();
        assert_eq!((warm.result_hits, warm.result_misses), (4, 0));
        assert_eq!(cold.report, warm.report);
        // Bit-identical to the resident streaming pass.
        let resident = memgaze_analysis::stream_resident_trace(&t, &annots, &sy, cfg, &sizes, 2);
        assert_eq!(cold.report, resident);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn corrupt_blob_read_is_typed_and_stale_catalog_detected() {
        let root = tmp_root("corrupt");
        let store = TraceStore::open(StoreConfig::new(&root)).unwrap();
        let t = mk_trace(4, 12, 0);
        let (container, index) = encode_sharded_indexed(&t, 2);
        let sy = SymbolTable::new();
        store.put("tr", &container, &index, &sy).unwrap();
        let catalog = store.catalog("tr").unwrap();
        let victim = store.blob_path(catalog.frames[1].hash);
        let mut bytes = fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        fs::write(&victim, &bytes).unwrap();
        assert!(matches!(
            store.get_blob(catalog.frames[1].hash),
            Err(StoreError::CorruptBlob { .. })
        ));
        assert!(matches!(
            store.get_container("tr"),
            Err(StoreError::CorruptBlob { .. })
        ));
        fs::remove_dir_all(&root).unwrap();
    }
}
