//! General-purpose LZ-style block compression for shard blobs.
//!
//! Shard frame payloads are already delta-chained varints (the MGZT
//! codec), but real traces still carry long-range redundancy the delta
//! chain cannot see: repeated ip sets across samples, periodic address
//! walks, identical sample shapes. A byte-oriented LZ77 pass on top
//! picks that up cheaply, and — unlike a trace-aware recoding — stays
//! content-agnostic, so the blob store can hold any bytes.
//!
//! The format is a classic greedy LZ with varint tokens, chosen for
//! decode simplicity over ratio (this is a storage tier, not an archive
//! format):
//!
//! ```text
//! stream   := raw_len varint | sequence*
//! sequence := lit_len varint | literal bytes
//!           | (match only if output still short of raw_len)
//!             (match_len - MIN_MATCH) varint | distance varint (>= 1)
//! ```
//!
//! The decoder stops exactly when `raw_len` bytes have been produced,
//! so no terminator token is needed; a final all-literal tail simply
//! omits the match. Matches may overlap their own output (distance <
//! match length), giving RLE for free. The encoder finds matches with a
//! single-probe hash table over 4-byte windows — the LZ4 strategy —
//! so compression is one pass, O(n), with a fixed 64 KiB table.
//!
//! [`compress`] never fails; [`decompress`] returns a typed detail
//! string for every malformation (truncation, bad distance, output
//! overrun, trailing bytes) and never panics — the blob layer maps
//! those into [`StoreError::CorruptBlob`](crate::StoreError::CorruptBlob).

/// Matches shorter than this cost more to encode than to emit literally.
const MIN_MATCH: usize = 4;
/// log2 of the match hash table size.
const HASH_BITS: u32 = 14;
/// Sentinel for an empty hash-table slot.
const NO_POS: u32 = u32::MAX;

/// Hash of a 4-byte window, Fibonacci-style multiplicative.
#[inline]
fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(0x9e37_79b1) >> (32 - HASH_BITS)) as usize
}

fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(b);
            return;
        }
        buf.push(b | 0x80);
    }
}

fn get_varint(src: &[u8], pos: &mut usize, context: &'static str) -> Result<u64, String> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = src.get(*pos) else {
            return Err(format!("truncated varint in {context}"));
        };
        *pos += 1;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(format!("varint overflow in {context}"));
        }
    }
}

/// Compress `src`. The output always decodes back to `src` exactly; it
/// is *usually* smaller, but incompressible input costs a few bytes of
/// framing overhead — callers compare lengths and keep the raw form
/// when compression does not pay (see the blob encoder).
pub fn compress(src: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(src.len() / 2 + 16);
    put_varint(&mut out, src.len() as u64);
    if src.len() < MIN_MATCH {
        if !src.is_empty() {
            put_varint(&mut out, src.len() as u64);
            out.extend_from_slice(src);
        }
        return out;
    }
    let mut head = vec![NO_POS; 1 << HASH_BITS];
    let mut i = 0usize;
    let mut lit_start = 0usize;
    // The last window whose 4 bytes fit entirely in `src`.
    let last_window = src.len() - MIN_MATCH;
    while i <= last_window {
        let h = hash4(&src[i..]);
        let cand = head[h];
        head[h] = i as u32;
        let matched = cand != NO_POS && {
            let c = cand as usize;
            src[c..c + MIN_MATCH] == src[i..i + MIN_MATCH]
        };
        if !matched {
            i += 1;
            continue;
        }
        let cand = cand as usize;
        // Extend the match greedily past the mandatory 4 bytes.
        let mut len = MIN_MATCH;
        while i + len < src.len() && src[cand + len] == src[i + len] {
            len += 1;
        }
        put_varint(&mut out, (i - lit_start) as u64);
        out.extend_from_slice(&src[lit_start..i]);
        put_varint(&mut out, (len - MIN_MATCH) as u64);
        put_varint(&mut out, (i - cand) as u64);
        // Seed the table inside the match so later data can still find
        // these positions; a sparse stride keeps long matches O(1)-ish
        // without giving up short-range repeats.
        let stride = (len / 16).max(1);
        let mut p = i + 1;
        while p + MIN_MATCH <= src.len() && p < i + len {
            head[hash4(&src[p..])] = p as u32;
            p += stride;
        }
        i += len;
        lit_start = i;
    }
    // Input ending exactly at a match needs no empty trailing literal
    // run — the decoder stops at the declared length.
    if lit_start < src.len() {
        put_varint(&mut out, (src.len() - lit_start) as u64);
        out.extend_from_slice(&src[lit_start..]);
    }
    out
}

/// Decompress a [`compress`] stream, checking it declares exactly
/// `expected_len` bytes. Every malformation is a typed detail string;
/// nothing panics and no allocation is driven by unvalidated lengths
/// beyond `expected_len`.
pub fn decompress(src: &[u8], expected_len: usize) -> Result<Vec<u8>, String> {
    let mut pos = 0usize;
    let raw_len = get_varint(src, &mut pos, "raw length")? as usize;
    if raw_len != expected_len {
        return Err(format!(
            "stream declares {raw_len} raw bytes, catalog expects {expected_len}"
        ));
    }
    let mut out = Vec::with_capacity(raw_len);
    while out.len() < raw_len {
        let lit_len = get_varint(src, &mut pos, "literal length")? as usize;
        if lit_len > raw_len - out.len() {
            return Err(format!(
                "literal run of {lit_len} overruns output ({} of {raw_len} produced)",
                out.len()
            ));
        }
        let Some(lits) = src.get(pos..pos + lit_len) else {
            return Err("truncated literal run".to_string());
        };
        out.extend_from_slice(lits);
        pos += lit_len;
        if out.len() == raw_len {
            break;
        }
        let match_len = get_varint(src, &mut pos, "match length")? as usize + MIN_MATCH;
        let dist = get_varint(src, &mut pos, "match distance")? as usize;
        if dist == 0 || dist > out.len() {
            return Err(format!(
                "match distance {dist} with only {} bytes produced",
                out.len()
            ));
        }
        if match_len > raw_len - out.len() {
            return Err(format!(
                "match of {match_len} overruns output ({} of {raw_len} produced)",
                out.len()
            ));
        }
        // Byte-at-a-time copy: overlapping matches (dist < len) must see
        // the bytes they just produced.
        let start = out.len() - dist;
        for k in 0..match_len {
            let b = out[start + k];
            out.push(b);
        }
    }
    if pos != src.len() {
        return Err(format!("{} trailing bytes after stream", src.len() - pos));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        let back = decompress(&c, data.len()).expect("decompress");
        assert_eq!(back, data);
    }

    #[test]
    fn roundtrips_edge_shapes() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abc");
        roundtrip(b"abcd");
        roundtrip(&[0u8; 10_000]);
        roundtrip(b"abcabcabcabcabcabcabcabc");
        let mixed: Vec<u8> = (0u32..5000)
            .map(|i| ((i.wrapping_mul(2654435761)) >> 13) as u8 ^ (i as u8 & 0x3f))
            .collect();
        roundtrip(&mixed);
    }

    #[test]
    fn repetitive_input_actually_shrinks() {
        let data: Vec<u8> = b"sample-frame-payload-"
            .iter()
            .copied()
            .cycle()
            .take(8192)
            .collect();
        let c = compress(&data);
        assert!(
            c.len() < data.len() / 4,
            "8 KiB of period-21 text should compress well, got {} bytes",
            c.len()
        );
        assert_eq!(decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn overlapping_match_is_rle() {
        let mut data = vec![7u8; 4096];
        data.extend_from_slice(b"tail");
        let c = compress(&data);
        assert!(
            c.len() < 64,
            "run-length input should be tiny, got {}",
            c.len()
        );
        assert_eq!(decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn malformed_streams_are_typed_errors() {
        let good = compress(b"abcdabcdabcdabcd-abcdabcd");
        // Wrong expected length.
        assert!(decompress(&good, 7).unwrap_err().contains("expects 7"));
        // Truncations at every prefix either error or cannot silently
        // produce the full output.
        for cut in 0..good.len() {
            match decompress(&good[..cut], 25) {
                Ok(out) => panic!("truncated prefix of {cut} bytes decoded to {out:?}"),
                Err(detail) => assert!(!detail.is_empty()),
            }
        }
        // A match distance pointing before the start of output.
        let mut bad = Vec::new();
        put_varint(&mut bad, 8); // raw_len
        put_varint(&mut bad, 1); // one literal
        bad.push(b'x');
        put_varint(&mut bad, 0); // match_len = MIN_MATCH
        put_varint(&mut bad, 5); // distance 5 > 1 byte produced
        assert!(decompress(&bad, 8).unwrap_err().contains("distance"));
        // Trailing garbage after a complete stream.
        let mut trailing = compress(b"done");
        trailing.push(0xff);
        assert!(decompress(&trailing, 4).unwrap_err().contains("trailing"));
    }

    #[test]
    fn zero_distance_is_rejected() {
        let mut bad = Vec::new();
        put_varint(&mut bad, 9);
        put_varint(&mut bad, 4);
        bad.extend_from_slice(b"abcd");
        put_varint(&mut bad, 1); // match_len 5
        put_varint(&mut bad, 0); // distance 0
        assert!(decompress(&bad, 9).unwrap_err().contains("distance 0"));
    }
}
