//! Persistent per-trace catalog (MGZC v1).
//!
//! The catalog is the store's promotion of the in-memory
//! [`FrameIndex`] sidecar to a durable, queryable record: for each
//! trace it holds the ordered list of frame content hashes (the blob
//! addresses) plus per-frame *summaries* — sample/load counts, time
//! range, address range, per-block reuse rows at a fixed summary block
//! size, and per-function load counts. Region, time-range and
//! per-function queries are answered from these summaries alone; the
//! blobs are only touched when samples themselves are needed.
//!
//! Byte-identical reassembly is part of the contract: the catalog
//! stores the original container's header and trailer bytes verbatim,
//! together with the container's total length and whole-container
//! checksum, so `header || (varint len || payload)* || trailer` can be
//! re-emitted and *verified* — any drift between catalog and blobs
//! surfaces as [`StoreError::StaleCatalog`], never as silently wrong
//! bytes.
//!
//! ```text
//! magic "MGZC" | version u16 = 1
//! | trace_id string | summary_block log2 u8
//! | header_bytes blob | trailer_bytes blob
//! | container_len varint | container_checksum u64 LE
//! | total_loads varint | total_instrumented_loads varint
//! | func_names: count varint, then strings
//! | frames: count varint, then per frame:
//! |   content_hash u64 LE | len varint | samples varint | loads varint
//! |   time flag u8 [lo varint, span varint]
//! |   addr flag u8 [lo varint, span varint]
//! |   reuse rows: count varint, then delta-coded block + 4 stat varints
//! |   func loads: count varint, then (name index varint, loads varint)
//! | fnv1a64(all preceding bytes) u64 LE
//! ```

use crate::blob::content_hash;
use crate::error::StoreError;
use memgaze_analysis::{analyze_window, BlockReuse};
use memgaze_model::stream::decode_frame_payload;
use memgaze_model::{fnv1a64, BlockSize, FrameIndex, ModelError, SymbolTable, TraceMeta};
use std::collections::BTreeMap;

const CATALOG_MAGIC: &[u8; 4] = b"MGZC";
const CATALOG_VERSION: u16 = 1;

/// Summary of one stored frame — everything the query engine can know
/// about the frame without fetching its blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameSummary {
    /// Content address of the frame's payload blob.
    pub hash: u64,
    /// Payload length in bytes (uncompressed).
    pub len: u64,
    /// Samples in the frame.
    pub samples: u64,
    /// Recorded accesses (observed loads) in the frame.
    pub loads: u64,
    /// Inclusive logical-time range of the frame's accesses, `None`
    /// for a frame with no accesses.
    pub time_range: Option<(u64, u64)>,
    /// Inclusive data-address range touched by the frame.
    pub addr_range: Option<(u64, u64)>,
    /// Per-block reuse rows at the catalog's summary block size —
    /// [`BlockReuse::raw_rows`] interchange form, blocks strictly
    /// increasing.
    pub reuse_rows: Vec<(u64, [u64; 4])>,
    /// Loads attributed to functions, as (index into
    /// [`Catalog::func_names`], load count) pairs. Accesses whose ip
    /// resolves to no symbol are not listed.
    pub func_loads: Vec<(u32, u64)>,
}

impl FrameSummary {
    /// Whether the frame's time range intersects `[lo, hi)`.
    pub fn overlaps_time(&self, lo: u64, hi: u64) -> bool {
        self.time_range
            .is_some_and(|(tlo, thi)| tlo < hi && thi >= lo)
    }

    /// Whether the frame's address range intersects `[lo, hi)`.
    pub fn overlaps_addr(&self, lo: u64, hi: u64) -> bool {
        self.addr_range
            .is_some_and(|(alo, ahi)| alo < hi && ahi >= lo)
    }
}

/// Durable record of one stored trace: identity, reassembly material,
/// and the per-frame summary table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Catalog {
    /// The trace's store id.
    pub trace_id: String,
    /// Block size the per-frame reuse rows were summarized at.
    pub summary_block: BlockSize,
    /// The original container's header + provisional meta, verbatim.
    pub header_bytes: Vec<u8>,
    /// The original container's terminator + trailer, verbatim.
    pub trailer_bytes: Vec<u8>,
    /// Total container length in bytes.
    pub container_len: u64,
    /// FNV-1a checksum of the whole original container.
    pub container_checksum: u64,
    /// Trailer `total_loads`.
    pub total_loads: u64,
    /// Trailer `total_instrumented_loads`.
    pub total_instrumented_loads: u64,
    /// Function name table referenced by [`FrameSummary::func_loads`].
    pub func_names: Vec<String>,
    /// Frame summaries in container order.
    pub frames: Vec<FrameSummary>,
}

impl Catalog {
    /// Build a catalog by scanning a container/index pair — the same
    /// construction `put` runs, exposed so a catalog can always be
    /// rebuilt from first principles (and so tests can assert rebuild
    /// == stored).
    pub fn scan(
        trace_id: &str,
        container: &[u8],
        index: &FrameIndex,
        symbols: &SymbolTable,
        summary_block: BlockSize,
    ) -> Result<Catalog, StoreError> {
        index.validate(container)?;
        let header_bytes = container[..index.header_len as usize].to_vec();
        let body_end = index
            .entries
            .last()
            .map(|e| (e.offset + e.len) as usize)
            .unwrap_or(index.header_len as usize);
        let trailer_bytes = container[body_end..].to_vec();
        let mut names: Vec<String> = Vec::new();
        let mut name_ids: BTreeMap<String, u32> = BTreeMap::new();
        let mut frames = Vec::with_capacity(index.entries.len());
        for (i, e) in index.entries.iter().enumerate() {
            let payload = &container[e.offset as usize..(e.offset + e.len) as usize];
            let samples = decode_frame_payload(payload).map_err(|err| ModelError::InShard {
                shard: i as u64,
                source: Box::new(err),
            })?;
            let mut loads = 0u64;
            let mut time_range: Option<(u64, u64)> = None;
            let mut addr_range: Option<(u64, u64)> = None;
            let mut reuse: Option<BlockReuse> = None;
            let mut func_loads: BTreeMap<u32, u64> = BTreeMap::new();
            for s in &samples {
                loads += s.accesses.len() as u64;
                for a in &s.accesses {
                    time_range = Some(match time_range {
                        None => (a.time, a.time),
                        Some((lo, hi)) => (lo.min(a.time), hi.max(a.time)),
                    });
                    addr_range = Some(match addr_range {
                        None => (a.addr.0, a.addr.0),
                        Some((lo, hi)) => (lo.min(a.addr.0), hi.max(a.addr.0)),
                    });
                    if let Some(f) = symbols.lookup(a.ip) {
                        let id = *name_ids.entry(f.name.clone()).or_insert_with(|| {
                            names.push(f.name.clone());
                            (names.len() - 1) as u32
                        });
                        *func_loads.entry(id).or_insert(0) += 1;
                    }
                }
                // Intra-sample reuse, matching the streaming analyzer's
                // window semantics, merged across the frame's samples.
                let analysis = analyze_window(&s.accesses, summary_block);
                let br = BlockReuse::from_analysis(&s.accesses, summary_block, &analysis);
                match &mut reuse {
                    None => reuse = Some(br),
                    Some(acc) => acc.merge(&br),
                }
            }
            frames.push(FrameSummary {
                hash: content_hash(payload),
                len: e.len,
                samples: e.samples,
                loads,
                time_range,
                addr_range,
                reuse_rows: reuse.map(|r| r.raw_rows().collect()).unwrap_or_default(),
                func_loads: func_loads.into_iter().collect(),
            });
        }
        Ok(Catalog {
            trace_id: trace_id.to_string(),
            summary_block,
            header_bytes,
            trailer_bytes,
            container_len: container.len() as u64,
            container_checksum: fnv1a64(container),
            total_loads: index.total_loads,
            total_instrumented_loads: index.total_instrumented_loads,
            func_names: names,
            frames,
        })
    }

    /// The trace's metadata, with the trailer-final load totals already
    /// patched in (the header's copy is provisional by design).
    pub fn meta(&self) -> Result<TraceMeta, StoreError> {
        let reader =
            memgaze_model::ShardReader::new(self.header_bytes.as_slice()).map_err(|e| {
                StoreError::CorruptCatalog {
                    id: self.trace_id.clone(),
                    detail: format!("stored header bytes do not parse: {e}"),
                }
            })?;
        let mut meta = reader.meta().clone();
        meta.total_loads = self.total_loads;
        meta.total_instrumented_loads = self.total_instrumented_loads;
        Ok(meta)
    }

    /// Total samples across all frames.
    pub fn total_samples(&self) -> u64 {
        self.frames.iter().map(|f| f.samples).sum()
    }

    /// Total uncompressed payload bytes across all frames.
    pub fn payload_bytes(&self) -> u64 {
        self.frames.iter().map(|f| f.len).sum()
    }

    /// Per-frame sample counts, the weights
    /// [`memgaze_analysis::partition_by_samples`] balances over.
    pub fn sample_weights(&self) -> Vec<u64> {
        self.frames.iter().map(|f| f.samples).collect()
    }

    /// Serialize (MGZC framing, FNV-checksummed).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(256 + self.frames.len() * 64);
        buf.extend_from_slice(CATALOG_MAGIC);
        buf.extend_from_slice(&CATALOG_VERSION.to_le_bytes());
        put_string(&mut buf, &self.trace_id);
        buf.push(self.summary_block.log2());
        put_bytes(&mut buf, &self.header_bytes);
        put_bytes(&mut buf, &self.trailer_bytes);
        put_varint(&mut buf, self.container_len);
        buf.extend_from_slice(&self.container_checksum.to_le_bytes());
        put_varint(&mut buf, self.total_loads);
        put_varint(&mut buf, self.total_instrumented_loads);
        put_varint(&mut buf, self.func_names.len() as u64);
        for name in &self.func_names {
            put_string(&mut buf, name);
        }
        put_varint(&mut buf, self.frames.len() as u64);
        for f in &self.frames {
            buf.extend_from_slice(&f.hash.to_le_bytes());
            put_varint(&mut buf, f.len);
            put_varint(&mut buf, f.samples);
            put_varint(&mut buf, f.loads);
            put_range(&mut buf, f.time_range);
            put_range(&mut buf, f.addr_range);
            put_varint(&mut buf, f.reuse_rows.len() as u64);
            let mut prev_block = 0u64;
            for &(block, stats) in &f.reuse_rows {
                // Blocks are strictly increasing: delta-code them.
                put_varint(&mut buf, block - prev_block);
                prev_block = block;
                for s in stats {
                    put_varint(&mut buf, s);
                }
            }
            put_varint(&mut buf, f.func_loads.len() as u64);
            for &(id, loads) in &f.func_loads {
                put_varint(&mut buf, u64::from(id));
                put_varint(&mut buf, loads);
            }
        }
        let sum = fnv1a64(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        buf
    }

    /// Decode a serialized catalog for trace `id`, rejecting truncation
    /// and corruption with [`StoreError::CorruptCatalog`].
    pub fn decode(id: &str, data: &[u8]) -> Result<Catalog, StoreError> {
        let corrupt = |detail: String| StoreError::CorruptCatalog {
            id: id.to_string(),
            detail,
        };
        if data.len() < 14 {
            return Err(corrupt(format!("{} bytes is too short", data.len())));
        }
        let (body, sum_bytes) = data.split_at(data.len() - 8);
        let want = u64::from_le_bytes(sum_bytes.try_into().expect("split_at gave 8 bytes"));
        let got = fnv1a64(body);
        if got != want {
            return Err(corrupt(format!(
                "checksum {got:#018x} != stored {want:#018x}"
            )));
        }
        let mut r = Dec { src: body, pos: 0 };
        let magic = r.take(4).ok_or_else(|| corrupt("truncated magic".into()))?;
        if magic != CATALOG_MAGIC {
            return Err(corrupt(format!("bad magic {magic:?}")));
        }
        let ver = r
            .u16_le()
            .ok_or_else(|| corrupt("truncated version".into()))?;
        if ver != CATALOG_VERSION {
            return Err(corrupt(format!(
                "version {ver}, expected {CATALOG_VERSION}"
            )));
        }
        let trace_id = r
            .string()
            .ok_or_else(|| corrupt("bad trace id field".into()))?;
        let summary_block = BlockSize::from_log2(
            r.byte()
                .filter(|&b| b < 64)
                .ok_or_else(|| corrupt("bad summary block".into()))?,
        );
        let header_bytes = r
            .bytes()
            .ok_or_else(|| corrupt("truncated header bytes".into()))?;
        let trailer_bytes = r
            .bytes()
            .ok_or_else(|| corrupt("truncated trailer bytes".into()))?;
        let container_len = r
            .varint()
            .ok_or_else(|| corrupt("truncated container length".into()))?;
        let container_checksum = r
            .u64_le()
            .ok_or_else(|| corrupt("truncated container checksum".into()))?;
        let total_loads = r
            .varint()
            .ok_or_else(|| corrupt("truncated total loads".into()))?;
        let total_instrumented_loads = r
            .varint()
            .ok_or_else(|| corrupt("truncated instrumented loads".into()))?;
        let nfuncs =
            r.varint()
                .ok_or_else(|| corrupt("truncated function count".into()))? as usize;
        if nfuncs > body.len() {
            return Err(corrupt(format!("function count {nfuncs} exceeds catalog")));
        }
        let mut func_names = Vec::with_capacity(nfuncs);
        for _ in 0..nfuncs {
            func_names.push(
                r.string()
                    .ok_or_else(|| corrupt("bad function name".into()))?,
            );
        }
        let nframes = r
            .varint()
            .ok_or_else(|| corrupt("truncated frame count".into()))? as usize;
        // Each frame is at least 14 encoded bytes; bound the allocation.
        if nframes > body.len() / 14 {
            return Err(corrupt(format!("frame count {nframes} exceeds catalog")));
        }
        let mut frames = Vec::with_capacity(nframes);
        for i in 0..nframes {
            let bad = |what: &str| corrupt(format!("frame {i}: bad {what}"));
            let hash = r.u64_le().ok_or_else(|| bad("hash"))?;
            let len = r.varint().ok_or_else(|| bad("length"))?;
            let samples = r.varint().ok_or_else(|| bad("sample count"))?;
            let loads = r.varint().ok_or_else(|| bad("load count"))?;
            let time_range = get_range(&mut r).ok_or_else(|| bad("time range"))?;
            let addr_range = get_range(&mut r).ok_or_else(|| bad("address range"))?;
            let nrows = r.varint().ok_or_else(|| bad("reuse row count"))? as usize;
            if nrows > body.len() / 5 {
                return Err(bad("reuse row count"));
            }
            let mut reuse_rows = Vec::with_capacity(nrows);
            let mut block = 0u64;
            for _ in 0..nrows {
                block = block
                    .checked_add(r.varint().ok_or_else(|| bad("reuse block"))?)
                    .ok_or_else(|| bad("reuse block"))?;
                let mut stats = [0u64; 4];
                for s in &mut stats {
                    *s = r.varint().ok_or_else(|| bad("reuse stat"))?;
                }
                reuse_rows.push((block, stats));
            }
            let nfl = r.varint().ok_or_else(|| bad("function load count"))? as usize;
            if nfl > body.len() / 2 {
                return Err(bad("function load count"));
            }
            let mut func_loads = Vec::with_capacity(nfl);
            for _ in 0..nfl {
                let id = r.varint().ok_or_else(|| bad("function id"))?;
                if id >= func_names.len() as u64 {
                    return Err(bad("function id"));
                }
                let fl = r.varint().ok_or_else(|| bad("function loads"))?;
                func_loads.push((id as u32, fl));
            }
            frames.push(FrameSummary {
                hash,
                len,
                samples,
                loads,
                time_range,
                addr_range,
                reuse_rows,
                func_loads,
            });
        }
        if r.pos != body.len() {
            return Err(corrupt(format!("{} trailing bytes", body.len() - r.pos)));
        }
        Ok(Catalog {
            trace_id,
            summary_block,
            header_bytes,
            trailer_bytes,
            container_len,
            container_checksum,
            total_loads,
            total_instrumented_loads,
            func_names,
            frames,
        })
    }
}

fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(b);
            return;
        }
        buf.push(b | 0x80);
    }
}

fn put_bytes(buf: &mut Vec<u8>, data: &[u8]) {
    put_varint(buf, data.len() as u64);
    buf.extend_from_slice(data);
}

fn put_string(buf: &mut Vec<u8>, s: &str) {
    put_bytes(buf, s.as_bytes());
}

/// Optional inclusive range: presence flag, then lo + span.
fn put_range(buf: &mut Vec<u8>, range: Option<(u64, u64)>) {
    match range {
        None => buf.push(0),
        Some((lo, hi)) => {
            buf.push(1);
            put_varint(buf, lo);
            put_varint(buf, hi - lo);
        }
    }
}

fn get_range(r: &mut Dec<'_>) -> Option<Option<(u64, u64)>> {
    match r.byte()? {
        0 => Some(None),
        1 => {
            let lo = r.varint()?;
            let span = r.varint()?;
            Some(Some((lo, lo.checked_add(span)?)))
        }
        _ => None,
    }
}

/// Cursor-style decoder over the catalog body. All methods return
/// `None` on truncation/malformation; callers attach context.
struct Dec<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let out = self.src.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(out)
    }

    fn byte(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u16_le(&mut self) -> Option<u16> {
        self.take(2)
            .map(|b| u16::from_le_bytes(b.try_into().expect("take gave 2 bytes")))
    }

    fn u64_le(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("take gave 8 bytes")))
    }

    fn varint(&mut self) -> Option<u64> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.byte()?;
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Some(v);
            }
            shift += 7;
            if shift >= 64 {
                return None;
            }
        }
    }

    fn bytes(&mut self) -> Option<Vec<u8>> {
        let len = self.varint()? as usize;
        self.take(len).map(|b| b.to_vec())
    }

    fn string(&mut self) -> Option<String> {
        String::from_utf8(self.bytes()?).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memgaze_model::{encode_sharded_indexed, Access, Ip, Sample, SampledTrace, TraceMeta};

    fn mk_trace(samples: usize, w: usize) -> SampledTrace {
        let mut t = SampledTrace::new(TraceMeta::new("catalog-unit", 10_000, 16 << 10));
        t.meta.total_loads = (samples * 10_000) as u64;
        t.meta.total_instrumented_loads = (samples * 100) as u64;
        for s in 0..samples {
            let base = (s as u64) * 10_000;
            let accesses = (0..w)
                .map(|i| {
                    Access::new(
                        0x400u64 + (i as u64 % 7) * 4,
                        0x10_0000u64 + (i as u64 % 11) * 64,
                        base + i as u64,
                    )
                })
                .collect();
            t.push_sample(Sample::new(accesses, base + w as u64))
                .unwrap();
        }
        t
    }

    fn mk_symbols() -> SymbolTable {
        let mut sy = SymbolTable::new();
        sy.add_function("hot_loop", Ip(0x400), Ip(0x410), "hot.c");
        sy.add_function("cold_path", Ip(0x410), Ip(0x420), "cold.c");
        sy
    }

    #[test]
    fn scan_summarizes_and_roundtrips() {
        let t = mk_trace(9, 23);
        let (container, index) = encode_sharded_indexed(&t, 4);
        let sy = mk_symbols();
        let cat =
            Catalog::scan("unit-trace", &container, &index, &sy, BlockSize::CACHE_LINE).unwrap();
        assert_eq!(cat.frames.len(), 3);
        assert_eq!(cat.total_samples(), 9);
        assert_eq!(
            cat.frames.iter().map(|f| f.loads).sum::<u64>(),
            (9 * 23) as u64
        );
        // Every frame saw ips in both functions.
        assert_eq!(cat.func_names.len(), 2);
        for f in &cat.frames {
            assert!(f.time_range.is_some() && f.addr_range.is_some());
            assert!(!f.reuse_rows.is_empty());
            assert!(f.reuse_rows.windows(2).all(|w| w[0].0 < w[1].0));
        }
        // Meta parses from the stored header with final totals.
        let meta = cat.meta().unwrap();
        assert_eq!(meta.workload, "catalog-unit");
        assert_eq!(meta.total_loads, t.meta.total_loads);
        // Codec roundtrip is exact.
        let encoded = cat.encode();
        let back = Catalog::decode("unit-trace", &encoded).unwrap();
        assert_eq!(cat, back);
    }

    #[test]
    fn corruption_and_truncation_are_typed() {
        let t = mk_trace(4, 8);
        let (container, index) = encode_sharded_indexed(&t, 2);
        let cat = Catalog::scan(
            "c",
            &container,
            &index,
            &SymbolTable::new(),
            BlockSize::WORD,
        )
        .unwrap();
        let encoded = cat.encode();
        for cut in [0usize, 3, 10, encoded.len() / 2, encoded.len() - 1] {
            assert!(matches!(
                Catalog::decode("c", &encoded[..cut]),
                Err(StoreError::CorruptCatalog { .. })
            ));
        }
        let mut flipped = encoded.clone();
        flipped[12] ^= 0x20;
        assert!(matches!(
            Catalog::decode("c", &flipped),
            Err(StoreError::CorruptCatalog { .. })
        ));
    }

    #[test]
    fn empty_trace_catalogs_cleanly() {
        let t = SampledTrace::new(TraceMeta::new("empty", 1000, 4096));
        let (container, index) = encode_sharded_indexed(&t, 8);
        let cat = Catalog::scan(
            "e",
            &container,
            &index,
            &SymbolTable::new(),
            BlockSize::WORD,
        )
        .unwrap();
        assert!(cat.frames.is_empty());
        assert_eq!(cat.container_len, container.len() as u64);
        let back = Catalog::decode("e", &cat.encode()).unwrap();
        assert_eq!(cat, back);
    }
}
