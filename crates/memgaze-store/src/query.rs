//! Index-backed query engine.
//!
//! A [`QueryEngine`] is built from a [`Catalog`] *alone* — it holds no
//! store handle, so it is incapable of decoding a shard by
//! construction. Region, time-range, and per-function questions are
//! answered entirely from the per-frame summaries `put` recorded:
//! the merged [`BlockReuse`] rows (prefix sums + sparse range-max give
//! O(log n) region statistics), the per-frame time/address ranges, and
//! the per-frame function load counts.
//!
//! The numbers are exact, not approximate: the catalog rows are the
//! same per-block aggregation a full streaming pass produces at the
//! store's summary block size, persisted at put time.

use crate::catalog::Catalog;
use crate::error::StoreError;
use memgaze_analysis::BlockReuse;
use memgaze_model::BlockSize;
use std::collections::BTreeMap;

/// Answer to a [`QueryEngine::region`] query over an address range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionAnswer {
    /// Accesses to blocks in the region.
    pub accesses: u64,
    /// Distinct summary blocks touched in the region.
    pub blocks: u64,
    /// Mean spatio-temporal reuse distance of the region's reuses.
    pub mean_distance: f64,
    /// Maximum reuse distance seen in the region.
    pub max_distance: u64,
    /// Frames whose address range overlaps the region — the shards a
    /// deep-dive would need to fetch.
    pub frames: usize,
}

/// Answer to a [`QueryEngine::time_range`] query over logical time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeAnswer {
    /// Frames whose time range overlaps the window.
    pub frames: usize,
    /// Samples in those frames.
    pub samples: u64,
    /// Observed loads in those frames.
    pub loads: u64,
    /// Mean reuse distance across those frames' summaries.
    pub mean_distance: f64,
}

/// Answer to a [`QueryEngine::function`] query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionAnswer {
    /// The function's name.
    pub name: String,
    /// Observed loads attributed to the function.
    pub loads: u64,
    /// Frames in which the function appears.
    pub frames: usize,
}

/// Catalog-only query engine over one stored trace.
pub struct QueryEngine {
    summary_block: BlockSize,
    /// All frames' reuse rows merged into one indexed summary.
    reuse: BlockReuse,
    /// (samples, loads, time range, addr range) per frame.
    frames: Vec<FrameFacts>,
    /// Function name → (total loads, frames appearing in).
    functions: BTreeMap<String, (u64, usize)>,
}

struct FrameFacts {
    samples: u64,
    loads: u64,
    time_range: Option<(u64, u64)>,
    addr_range: Option<(u64, u64)>,
    /// Σ dist_sum and Σ reuse_cnt over the frame's rows, precomputed
    /// for time-window mean-distance sums.
    dist_sum: u64,
    reuse_cnt: u64,
}

impl QueryEngine {
    /// Build the engine from a catalog. Fails only if a frame's stored
    /// reuse rows are malformed (blocks out of order) — corruption the
    /// codec checksum should have caught.
    pub fn new(catalog: &Catalog) -> Result<QueryEngine, StoreError> {
        let _span = memgaze_obs::span("store.query_build");
        let mut parts = Vec::with_capacity(catalog.frames.len());
        let mut frames = Vec::with_capacity(catalog.frames.len());
        let mut functions: BTreeMap<String, (u64, usize)> = BTreeMap::new();
        for (i, f) in catalog.frames.iter().enumerate() {
            let br = BlockReuse::from_raw_rows(f.reuse_rows.clone()).ok_or_else(|| {
                StoreError::CorruptCatalog {
                    id: catalog.trace_id.clone(),
                    detail: format!("frame {i}: reuse rows out of block order"),
                }
            })?;
            parts.push(br);
            let (dist_sum, reuse_cnt) = f
                .reuse_rows
                .iter()
                .fold((0u64, 0u64), |(d, c), (_, s)| (d + s[1], c + s[2]));
            frames.push(FrameFacts {
                samples: f.samples,
                loads: f.loads,
                time_range: f.time_range,
                addr_range: f.addr_range,
                dist_sum,
                reuse_cnt,
            });
            for &(id, loads) in &f.func_loads {
                let name = catalog.func_names.get(id as usize).ok_or_else(|| {
                    StoreError::CorruptCatalog {
                        id: catalog.trace_id.clone(),
                        detail: format!("frame {i}: function id {id} out of table"),
                    }
                })?;
                let slot = functions.entry(name.clone()).or_insert((0, 0));
                slot.0 += loads;
                slot.1 += 1;
            }
        }
        Ok(QueryEngine {
            summary_block: catalog.summary_block,
            reuse: BlockReuse::from_parts(parts),
            frames,
            functions,
        })
    }

    /// The block size region statistics are granular to.
    pub fn summary_block(&self) -> BlockSize {
        self.summary_block
    }

    /// Statistics for the address region `[lo_addr, hi_addr)`.
    pub fn region(&self, lo_addr: u64, hi_addr: u64) -> RegionAnswer {
        if hi_addr <= lo_addr {
            return RegionAnswer {
                accesses: 0,
                blocks: 0,
                mean_distance: 0.0,
                max_distance: 0,
                frames: 0,
            };
        }
        let log2 = self.summary_block.log2();
        let lo_block = lo_addr >> log2;
        let hi_block = ((hi_addr - 1) >> log2) + 1;
        let frames = self
            .frames
            .iter()
            .filter(|f| {
                f.addr_range
                    .is_some_and(|(alo, ahi)| alo < hi_addr && ahi >= lo_addr)
            })
            .count();
        RegionAnswer {
            accesses: self.reuse.region_accesses(lo_block, hi_block),
            blocks: self.reuse.region_blocks(lo_block, hi_block),
            mean_distance: self.reuse.region_mean_distance(lo_block, hi_block),
            max_distance: self.reuse.region_max_distance(lo_block, hi_block),
            frames,
        }
    }

    /// Statistics for the logical-time window `[lo, hi)`, at frame
    /// granularity (a frame counts when its time range overlaps).
    pub fn time_range(&self, lo: u64, hi: u64) -> TimeAnswer {
        let mut out = TimeAnswer {
            frames: 0,
            samples: 0,
            loads: 0,
            mean_distance: 0.0,
        };
        let (mut dist, mut cnt) = (0u64, 0u64);
        for f in &self.frames {
            let overlaps = f.time_range.is_some_and(|(tlo, thi)| tlo < hi && thi >= lo);
            if !overlaps {
                continue;
            }
            out.frames += 1;
            out.samples += f.samples;
            out.loads += f.loads;
            dist += f.dist_sum;
            cnt += f.reuse_cnt;
        }
        if cnt > 0 {
            out.mean_distance = dist as f64 / cnt as f64;
        }
        out
    }

    /// Loads attributed to function `name`, or `None` if it never
    /// appears in the trace.
    pub fn function(&self, name: &str) -> Option<FunctionAnswer> {
        self.functions
            .get(name)
            .map(|&(loads, frames)| FunctionAnswer {
                name: name.to_string(),
                loads,
                frames,
            })
    }

    /// All attributed functions, hottest first.
    pub fn functions(&self) -> Vec<FunctionAnswer> {
        let mut out: Vec<FunctionAnswer> = self
            .functions
            .iter()
            .map(|(name, &(loads, frames))| FunctionAnswer {
                name: name.clone(),
                loads,
                frames,
            })
            .collect();
        out.sort_by(|a, b| b.loads.cmp(&a.loads).then_with(|| a.name.cmp(&b.name)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memgaze_model::{
        encode_sharded_indexed, Access, Ip, Sample, SampledTrace, SymbolTable, TraceMeta,
    };

    fn mk_catalog() -> Catalog {
        let mut t = SampledTrace::new(TraceMeta::new("query-unit", 10_000, 16 << 10));
        t.meta.total_loads = 60_000;
        t.meta.total_instrumented_loads = 600;
        for s in 0..6u64 {
            let base = s * 10_000;
            // Two address neighborhoods: low for even samples, high for odd.
            let region = if s % 2 == 0 {
                0x10_0000u64
            } else {
                0x80_0000u64
            };
            let accesses = (0..10u64)
                .map(|i| Access::new(0x400 + (i % 3) * 4, region + (i % 4) * 64, base + i))
                .collect();
            t.push_sample(Sample::new(accesses, base + 10)).unwrap();
        }
        // One sample per frame so each frame's address range stays in
        // one neighborhood.
        let (container, index) = encode_sharded_indexed(&t, 1);
        let mut sy = SymbolTable::new();
        sy.add_function("walker", Ip(0x400), Ip(0x408), "w.c");
        Catalog::scan("q", &container, &index, &sy, BlockSize::CACHE_LINE).unwrap()
    }

    #[test]
    fn region_splits_neighborhoods() {
        let q = QueryEngine::new(&mk_catalog()).unwrap();
        let low = q.region(0x10_0000, 0x10_1000);
        let high = q.region(0x80_0000, 0x80_1000);
        let nothing = q.region(0x40_0000, 0x40_1000);
        // 30 accesses per neighborhood (3 samples × 10), 4 blocks each.
        assert_eq!(low.accesses, 30);
        assert_eq!(high.accesses, 30);
        assert_eq!(low.blocks, 4);
        assert_eq!(nothing.accesses, 0);
        assert_eq!(nothing.frames, 0);
        assert!(low.frames > 0);
        // Blocks repeat within a sample, so reuse was observed.
        assert!(low.mean_distance > 0.0);
        assert!(low.max_distance > 0);
        // Degenerate range.
        assert_eq!(q.region(10, 10).accesses, 0);
    }

    #[test]
    fn time_range_counts_overlapping_frames() {
        let q = QueryEngine::new(&mk_catalog()).unwrap();
        let all = q.time_range(0, u64::MAX);
        assert_eq!(all.frames, 6);
        assert_eq!(all.samples, 6);
        assert_eq!(all.loads, 60);
        assert!(all.mean_distance > 0.0);
        // First frame only: sample 0 occupies times < 10_000.
        let first = q.time_range(0, 10_000);
        assert_eq!(first.frames, 1);
        assert_eq!(first.samples, 1);
        let none = q.time_range(1_000_000, 2_000_000);
        assert_eq!(none.frames, 0);
        assert_eq!(none.loads, 0);
    }

    #[test]
    fn function_attribution() {
        let q = QueryEngine::new(&mk_catalog()).unwrap();
        // ips cycle 0x400/0x404/0x408; "walker" covers [0x400, 0x408).
        let w = q.function("walker").unwrap();
        assert_eq!(w.loads, 42); // 7 of 10 accesses per sample × 6 samples
        assert_eq!(w.frames, 6);
        assert!(q.function("missing").is_none());
        let table = q.functions();
        assert_eq!(table.len(), 1);
        assert_eq!(table[0].name, "walker");
    }
}
