//! Content-addressed blob framing.
//!
//! A blob is one shard-frame payload (the MGZT frame bytes past the
//! length varint), stored under its *content hash* — a seeded FNV-1a-64
//! of the uncompressed payload. Identical frames across traces (or
//! across re-puts of the same trace) therefore share one file, which is
//! what makes the store deduplicating.
//!
//! On-disk framing:
//!
//! ```text
//! magic "MGZB" | version u16 = 1 | enc u8 (0 raw, 1 lz)
//! | raw_len varint | payload bytes | fnv1a64(all preceding bytes) u64 LE
//! ```
//!
//! The trailing checksum covers the *encoded* bytes, so media rot is
//! caught before any decompression runs; after decoding, the content
//! hash of the recovered payload is re-checked against the address the
//! blob was fetched by, so a blob filed under the wrong name can never
//! be returned. Compression is attempted on every put but kept only
//! when it shrinks the payload — `enc = 0` stores the raw bytes, making
//! incompressible frames cost just the 16-byte frame + 8-byte checksum.

use crate::compress;
use crate::error::StoreError;
use memgaze_model::{fnv1a64, fnv1a64_seeded};

const BLOB_MAGIC: &[u8; 4] = b"MGZB";
const BLOB_VERSION: u16 = 1;
const ENC_RAW: u8 = 0;
const ENC_LZ: u8 = 1;

/// Seed for content addresses. Deliberately distinct from the plain
/// FNV offset basis so a blob's content hash never collides by
/// construction with the frame checksums the [`memgaze_model::FrameIndex`]
/// records for the same bytes — the two namespaces stay disjoint.
pub const CONTENT_HASH_SEED: u64 = 0x6d67_7a73_746f_7265; // "mgzstore"

/// Content address of a frame payload.
#[inline]
pub fn content_hash(payload: &[u8]) -> u64 {
    fnv1a64_seeded(CONTENT_HASH_SEED, payload)
}

fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(b);
            return;
        }
        buf.push(b | 0x80);
    }
}

fn get_varint(src: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &byte = src.get(*pos)?;
        *pos += 1;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
}

/// Frame a payload for disk: compress when it pays, checksum always.
pub fn encode_blob(payload: &[u8]) -> Vec<u8> {
    let compressed = compress::compress(payload);
    let (enc, body): (u8, &[u8]) = if compressed.len() < payload.len() {
        (ENC_LZ, &compressed)
    } else {
        (ENC_RAW, payload)
    };
    let mut out = Vec::with_capacity(body.len() + 32);
    out.extend_from_slice(BLOB_MAGIC);
    out.extend_from_slice(&BLOB_VERSION.to_le_bytes());
    out.push(enc);
    put_varint(&mut out, payload.len() as u64);
    out.extend_from_slice(body);
    let sum = fnv1a64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

fn corrupt(hash: u64, detail: impl Into<String>) -> StoreError {
    StoreError::CorruptBlob {
        hash,
        detail: detail.into(),
    }
}

/// Decode a blob fetched by content address `hash`, verifying the
/// framing checksum, the declared encoding, and finally that the
/// recovered payload really hashes to `hash`.
pub fn decode_blob(hash: u64, data: &[u8]) -> Result<Vec<u8>, StoreError> {
    if data.len() < 16 {
        return Err(corrupt(hash, format!("{} bytes is too short", data.len())));
    }
    let (body, sum_bytes) = data.split_at(data.len() - 8);
    let want = u64::from_le_bytes(sum_bytes.try_into().expect("split_at gave 8 bytes"));
    let got = fnv1a64(body);
    if got != want {
        return Err(corrupt(
            hash,
            format!("frame checksum {got:#018x} != stored {want:#018x}"),
        ));
    }
    if &body[..4] != BLOB_MAGIC {
        return Err(corrupt(hash, format!("bad magic {:?}", &body[..4])));
    }
    let ver = u16::from_le_bytes([body[4], body[5]]);
    if ver != BLOB_VERSION {
        return Err(corrupt(
            hash,
            format!("version {ver}, expected {BLOB_VERSION}"),
        ));
    }
    let enc = body[6];
    let mut pos = 7usize;
    let raw_len =
        get_varint(body, &mut pos).ok_or_else(|| corrupt(hash, "truncated raw length"))? as usize;
    let payload = match enc {
        ENC_RAW => {
            let raw = &body[pos..];
            if raw.len() != raw_len {
                return Err(corrupt(
                    hash,
                    format!("raw blob holds {} bytes, declares {raw_len}", raw.len()),
                ));
            }
            raw.to_vec()
        }
        ENC_LZ => {
            compress::decompress(&body[pos..], raw_len).map_err(|detail| corrupt(hash, detail))?
        }
        other => return Err(corrupt(hash, format!("unknown encoding {other}"))),
    };
    let got = content_hash(&payload);
    if got != hash {
        return Err(corrupt(
            hash,
            format!("payload hashes to {got:#018x}, filed under {hash:#018x}"),
        ));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compressible_and_not() {
        let reps: Vec<u8> = b"frame ".iter().copied().cycle().take(4096).collect();
        let rand: Vec<u8> = (0u32..1024)
            .flat_map(|i| i.wrapping_mul(2654435761).to_le_bytes())
            .collect();
        for payload in [&reps[..], &rand[..], b"", b"x"] {
            let h = content_hash(payload);
            let framed = encode_blob(payload);
            assert_eq!(decode_blob(h, &framed).unwrap(), payload);
        }
        // The repetitive payload actually used the compressed encoding.
        let framed = encode_blob(&reps);
        assert!(framed.len() < reps.len() / 2);
    }

    #[test]
    fn content_hash_disjoint_from_frame_checksum() {
        let payload = b"same bytes, two namespaces";
        assert_ne!(content_hash(payload), fnv1a64(payload));
    }

    #[test]
    fn corruption_is_a_typed_error() {
        let payload: Vec<u8> = b"abcdabcdabcd".repeat(64);
        let h = content_hash(&payload);
        let framed = encode_blob(&payload);
        // Flip a byte anywhere: the framing checksum catches it.
        for at in [0usize, 5, 7, framed.len() / 2, framed.len() - 1] {
            let mut bad = framed.clone();
            bad[at] ^= 0x01;
            assert!(
                matches!(decode_blob(h, &bad), Err(StoreError::CorruptBlob { hash, .. }) if hash == h),
                "flip at {at} must be CorruptBlob"
            );
        }
        // Truncation too.
        assert!(matches!(
            decode_blob(h, &framed[..framed.len() - 3]),
            Err(StoreError::CorruptBlob { .. })
        ));
        // A *valid* blob fetched under the wrong address is rejected by
        // the content-hash recheck.
        assert!(matches!(
            decode_blob(h ^ 1, &framed),
            Err(StoreError::CorruptBlob { .. })
        ));
    }
}
