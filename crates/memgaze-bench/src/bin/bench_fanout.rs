//! BENCH_fanout: single-process streaming vs multi-process fan-out.
//!
//! Builds a large-window synthetic trace, encodes it into an indexed
//! sharded container, and measures wall-clock for the resident
//! single-threaded streaming pass against `run_fanout` at 1/2/4/8
//! workers. Every fan-out report is asserted bit-identical to the
//! baseline before its timing counts. Workers run as `memgaze
//! analyze-shard` subprocesses when the sibling `memgaze` binary exists
//! next to this one; otherwise the in-process backend is used (and
//! recorded in the payload).
//!
//! Two speedup figures are reported per worker count: the measured
//! wall-clock speedup, which is capped by the host's core count
//! (recorded as `host_cpus`), and the critical-path speedup — the
//! slowest single range plus the serial merge/finish tail — which is
//! what wall-clock converges to once the host has at least as many
//! cores as workers.

use memgaze_analysis::{
    analyze_frames, partition_frames, AnalysisConfig, IngestStats, PartialReport, StreamingAnalyzer,
};
use memgaze_bench::{emit, scales, span_breakdown, timed, SpanShare};
use memgaze_core::{run_fanout, FanoutBackend, FanoutConfig, FanoutPool};
use memgaze_model::{
    encode_sharded_indexed, Access, AuxAnnotations, FunctionId, Ip, IpAnnot, LoadClass, Sample,
    SampledTrace, ShardReader, SymbolTable, TraceMeta,
};
use serde::Serialize;

const LOCALITY_SIZES: [u64; 3] = [16, 64, 256];
const SHARD_SAMPLES: usize = 4;

/// The large-window scenario: every sample carries a wide access window
/// mixing a strided stream with cyclic reuse, so per-sample analysis —
/// the work fan-out parallelizes — dominates.
fn synthetic_setup(samples: usize, window: usize) -> (SampledTrace, AuxAnnotations, SymbolTable) {
    let mut t = SampledTrace::new(TraceMeta::new("bench-fanout", 10_000, 16 << 10));
    t.meta.total_loads = (samples * 10_000) as u64;
    t.meta.total_instrumented_loads = (samples * window) as u64;
    for s in 0..samples as u64 {
        let base = s * 10_000;
        let accesses: Vec<Access> = (0..window as u64)
            .map(|i| {
                let (ip, addr) = if i % 4 == 0 {
                    (0x500 + (i % 3) * 4, 0x20_0000 + (i % 512) * 64)
                } else {
                    (0x400 + (i % 5) * 4, 0x10_0000 + (s * window as u64 + i) * 8)
                };
                Access::new(ip, addr, base + i)
            })
            .collect();
        t.push_sample(Sample::new(accesses, base + window as u64))
            .unwrap();
    }
    let mut annots = AuxAnnotations::new();
    for k in 0..5u64 {
        let mut an = IpAnnot::of_class(LoadClass::Strided, FunctionId(0));
        an.implied_const = 3;
        annots.insert(Ip(0x400 + k * 4), an);
    }
    for k in 0..3u64 {
        annots.insert(
            Ip(0x500 + k * 4),
            IpAnnot::of_class(LoadClass::Irregular, FunctionId(1)),
        );
    }
    let mut symbols = SymbolTable::new();
    symbols.add_function("stream_fn", Ip(0x400), Ip(0x500), "a.c");
    symbols.add_function("cycle_fn", Ip(0x500), Ip(0x600), "a.c");
    (t, annots, symbols)
}

#[derive(Serialize)]
struct Variant {
    workers: usize,
    /// Wall-clock of the full fan-out run on this host.
    fanout_ms: f64,
    /// `baseline_stream_ms / fanout_ms` — bounded by the host's cores.
    wall_speedup: f64,
    /// Longest single range's analysis time plus merge + finish: the
    /// run's critical path, i.e. the wall-clock a host with >= `workers`
    /// cores converges to.
    critical_path_ms: f64,
    /// `baseline_stream_ms / critical_path_ms`.
    critical_path_speedup: f64,
    ranges: usize,
    retries: u32,
    /// Subprocesses spawned inside the measured runs — 0 once the pool
    /// is warm; anything else means workers died and were respawned.
    spawns_in_measured_runs: u32,
    ingest: IngestStats,
    /// Per-span exclusive-time attribution of one untimed fan-out run
    /// at this worker count.
    breakdown: Vec<SpanShare>,
}

#[derive(Serialize)]
struct Payload {
    samples: usize,
    window: usize,
    shard_samples: usize,
    backend: String,
    baseline_stream_ms: f64,
    /// Per-span exclusive-time attribution of one untimed baseline
    /// streaming pass.
    baseline_breakdown: Vec<SpanShare>,
    variants: Vec<Variant>,
}

fn main() {
    let sc = scales::from_env();
    // Sized so one pass runs ~100ms at the default scale: the fixed
    // per-run fan-out costs (request/response turnaround, partial
    // decode, final merge) are low single-digit milliseconds, and the
    // wall-clock comparison should measure the pipeline, not the
    // constant.
    let samples = (sc.micro_elems as usize / 32).clamp(12, 256);
    let window = if sc.micro_elems <= 1024 {
        1024
    } else if sc.micro_elems >= 8192 {
        4096
    } else {
        2048
    };
    let (trace, annots, symbols) = synthetic_setup(samples, window);
    let cfg = AnalysisConfig {
        threads: 1,
        ..AnalysisConfig::default()
    };
    let (container, index) = encode_sharded_indexed(&trace, SHARD_SAMPLES);

    // Baseline: the single-process, single-threaded streaming pass over
    // the same container bytes — decode, incremental analysis, finish.
    let baseline_path = || {
        let mut reader = ShardReader::new(container.as_slice()).expect("valid container");
        let mut an =
            StreamingAnalyzer::new(&annots, &symbols, cfg).with_locality_sizes(&LOCALITY_SIZES);
        for shard in reader.by_ref() {
            an.ingest_shard(&shard.expect("valid container").samples);
        }
        let meta = reader.meta().clone();
        an.finish(&meta)
    };
    // Prefer real subprocess workers: the memgaze binary sits next to
    // this bench binary when both were built by the same cargo profile.
    // MEMGAZE_FANOUT_BACKEND=in-process forces the thread backend.
    let sibling = std::env::current_exe().ok().and_then(|p| {
        let exe = p.parent()?.join(if cfg!(windows) {
            "memgaze.exe"
        } else {
            "memgaze"
        });
        exe.is_file().then_some(exe)
    });
    let forced_in_process =
        std::env::var("MEMGAZE_FANOUT_BACKEND").is_ok_and(|v| v == "in-process");
    let (backend, backend_name) = match (forced_in_process, sibling) {
        (false, Some(exe)) => (FanoutBackend::Subprocess { exe }, "persistent-subprocess"),
        _ => (FanoutBackend::InProcess, "in-process"),
    };

    // Subprocess runs go through warm persistent-worker pools: spawn +
    // container load happen once here, outside the measured window, and
    // every measured run reuses the same workers — the steady state a
    // long-lived analysis service runs in.
    let worker_counts = [1usize, 2, 4, 8];
    let prepared: Vec<(usize, FanoutConfig, Option<FanoutPool>)> = worker_counts
        .iter()
        .map(|&workers| {
            let fan_cfg = FanoutConfig {
                workers,
                threads_per_worker: 1,
                locality_sizes: LOCALITY_SIZES.to_vec(),
                ..FanoutConfig::default()
            };
            let pool = match &backend {
                FanoutBackend::Subprocess { exe } => {
                    let pool = FanoutPool::new(
                        exe,
                        &container,
                        &index,
                        &annots,
                        &symbols,
                        cfg,
                        fan_cfg.clone(),
                    )
                    .expect("pool over a freshly indexed container");
                    pool.prewarm().expect("prewarm persistent workers");
                    Some(pool)
                }
                FanoutBackend::InProcess => None,
            };
            (workers, fan_cfg, pool)
        })
        .collect();
    let run_one = |(_, fan_cfg, pool): &(usize, FanoutConfig, Option<FanoutPool>)| match pool {
        Some(p) => p
            .run()
            .expect("pooled fan-out over a freshly indexed container"),
        None => run_fanout(
            &container, &index, &annots, &symbols, cfg, fan_cfg, &backend,
        )
        .expect("fan-out over a freshly indexed container"),
    };

    // Warm everything, then interleave the baseline with every variant
    // inside each measurement round: wall-clock on a small shared host
    // drifts over the life of the process, and timing the contenders
    // back-to-back (keeping per-path minima across rounds) stops the
    // reported speedups from absorbing that drift.
    let _ = baseline_path();
    for p in &prepared {
        let _ = run_one(p);
    }
    let mut baseline_ms = f64::INFINITY;
    let mut baseline = None;
    let mut fan_ms = vec![f64::INFINITY; prepared.len()];
    let mut runs: Vec<Option<_>> = prepared.iter().map(|_| None).collect();
    let mut spawns_in_measured = vec![0u32; prepared.len()];
    for _ in 0..5 {
        let (ms, out) = timed(baseline_path);
        baseline_ms = baseline_ms.min(ms);
        baseline = Some(out);
        for (k, p) in prepared.iter().enumerate() {
            let (ms, out) = timed(|| run_one(p));
            fan_ms[k] = fan_ms[k].min(ms);
            spawns_in_measured[k] += out.spawns;
            runs[k] = Some(out);
        }
    }
    let baseline = baseline.unwrap();
    let (_, baseline_breakdown) = span_breakdown(baseline_path);

    let mut variants = Vec::new();
    for (k, p) in prepared.iter().enumerate() {
        let workers = p.0;
        let run = runs[k].take().unwrap();
        let fanout_ms = fan_ms[k];
        let (_, fan_breakdown) = span_breakdown(|| run_one(p));

        // Bit-identity with the baseline, per worker count. The ingest
        // field legitimately differs (per-worker peaks and merge
        // counts), so it is excluded.
        assert_eq!(
            run.report.decompression, baseline.decompression,
            "w{workers}"
        );
        assert_eq!(
            run.report.function_rows, baseline.function_rows,
            "w{workers}"
        );
        assert_eq!(run.report.block_reuse, baseline.block_reuse, "w{workers}");
        assert_eq!(
            run.report.reuse_histogram, baseline.reuse_histogram,
            "w{workers}"
        );
        assert_eq!(
            run.report.locality_series, baseline.locality_series,
            "w{workers}"
        );
        assert_eq!(
            run.report.interval_rows(8),
            baseline.interval_rows(8),
            "w{workers}"
        );
        assert_eq!(run.retries, 0, "no failures expected in the benchmark");

        // Critical path: the slowest range analyzed alone, plus the
        // serial merge + finish tail. Ranges run concurrently, so this
        // is the wall-clock floor a sufficiently-parallel host hits.
        let ranges = partition_frames(&index, workers);
        let critical_path_ms = {
            let mut worst_range_ms = 0.0f64;
            let mut partials = Vec::with_capacity(ranges.len());
            for r in &ranges {
                let mut best = f64::INFINITY;
                let mut kept = None;
                for _ in 0..3 {
                    let (ms, p) = timed(|| {
                        analyze_frames(
                            &container,
                            &index,
                            r.clone(),
                            &annots,
                            &symbols,
                            cfg,
                            &LOCALITY_SIZES,
                        )
                        .expect("range analysis over a freshly indexed container")
                    });
                    best = best.min(ms);
                    kept = Some(p);
                }
                worst_range_ms = worst_range_ms.max(best);
                partials.push(kept.unwrap());
            }
            let meta = run.meta.clone();
            let (tail_ms, _) = timed(move || {
                let mut acc =
                    PartialReport::empty(cfg.footprint_block, cfg.reuse_block, &LOCALITY_SIZES);
                for p in partials {
                    acc.merge(p).expect("uniform worker configs");
                }
                acc.finish(&meta)
            });
            worst_range_ms + tail_ms
        };

        variants.push(Variant {
            workers,
            fanout_ms,
            wall_speedup: baseline_ms / fanout_ms,
            critical_path_ms,
            critical_path_speedup: baseline_ms / critical_path_ms,
            ranges: ranges.len(),
            retries: run.retries,
            spawns_in_measured_runs: spawns_in_measured[k],
            ingest: run.report.ingest,
            breakdown: fan_breakdown,
        });
    }

    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut table = memgaze_analysis::Table::new(
        "BENCH_fanout: streaming baseline vs multi-process fan-out (bit-identical reports)",
        &[
            "path",
            "workers",
            "wall (ms)",
            "wall speedup",
            "crit path (ms)",
            "crit speedup",
            "ranges",
        ],
    );
    table.push_row(vec![
        "streaming".into(),
        "1".into(),
        format!("{baseline_ms:.2}"),
        "1.00x".into(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    for v in &variants {
        table.push_row(vec![
            "fan-out".into(),
            format!("{}", v.workers),
            format!("{:.2}", v.fanout_ms),
            format!("{:.2}x", v.wall_speedup),
            format!("{:.2}", v.critical_path_ms),
            format!("{:.2}x", v.critical_path_speedup),
            format!("{}", v.ranges),
        ]);
    }
    let payload = Payload {
        samples,
        window,
        shard_samples: SHARD_SAMPLES,
        backend: backend_name.to_string(),
        baseline_stream_ms: baseline_ms,
        baseline_breakdown,
        variants,
    };
    emit("BENCH_fanout", &table, &payload);

    let at4 = payload.variants.iter().find(|v| v.workers == 4);
    let wall4 = at4.map_or(0.0, |v| v.wall_speedup);
    let crit4 = at4.map_or(0.0, |v| v.critical_path_speedup);
    println!(
        "fan-out at 4 workers ({backend_name}, {host_cpus} host cpu(s)): \
         wall {wall4:.2}x, critical path {crit4:.2}x"
    );
    if host_cpus < 4 {
        println!(
            "note: wall-clock speedup is capped by the {host_cpus} available core(s); \
             the critical-path column is the wall-clock a >=4-core host converges to"
        );
    }
}
