//! BENCH_obs: observability overhead — the BENCH_analysis report path
//! with the obs layer disabled vs. enabled (JSONL sink).
//!
//! The acceptance budget is <5% per scenario: disabled obs must cost a
//! couple of atomic loads per instrumentation point, and enabled obs a
//! sharded counter bump plus span open/close on the hot analysis path
//! (per-sample parallel passes, work-stealing queue metrics).

use memgaze_analysis::{reuse_histogram_from, AnalysisConfig, Analyzer, Table};
use memgaze_bench::{emit, scales, timed};
use memgaze_model::{Access, AuxAnnotations, Sample, SampledTrace, SymbolTable, TraceMeta};
use memgaze_obs::ObsConfig;
use serde::Serialize;

/// The BENCH_analysis synthetic trace: a strided phase interleaved with
/// cyclic reuse over four hot regions; `skew > 0` makes sample 0 that
/// many times larger than the rest.
fn synthetic_trace(samples: usize, window: usize, skew: usize) -> SampledTrace {
    let mut t = SampledTrace::new(TraceMeta::new("bench", 10_000, 16 << 10));
    t.meta.total_loads = (samples * 10_000) as u64;
    for s in 0..samples {
        let w = if s == 0 && skew > 0 {
            window * skew
        } else {
            window
        };
        let base = (s * 10_000 * skew.max(1)) as u64;
        let accesses: Vec<Access> = (0..w)
            .map(|i| {
                let addr = if i % 2 == 0 {
                    0x10_0000 + ((s * w + i) as u64) * 64
                } else {
                    let hot = ((i / 2) % 4) as u64;
                    0x80_0000 + hot * 0x100_0000 + ((i % 64) as u64) * 64
                };
                Access::new(0x400u64 + (i as u64 % 16) * 4, addr, base + i as u64)
            })
            .collect();
        t.push_sample(Sample::new(accesses, base + w as u64))
            .unwrap();
    }
    t
}

/// The multi-table report path from BENCH_analysis — the workload whose
/// throughput PR 1 optimized and this layer must not claw back.
fn report_path(a: &Analyzer<'_>) -> usize {
    let mut touched = 0usize;
    touched += a.function_table().len();
    let regions = a.region_rows();
    touched += regions.len();
    for r in &regions {
        touched += a.region_row_for(r.range.0, r.range.1).code.len();
    }
    touched += a.interval_rows(8).len();
    for r in regions.iter().take(2) {
        let (acc, _) = a.heatmaps(r.range, 16, 32);
        touched += acc.dark_cells(0.5);
    }
    touched += reuse_histogram_from(a.sample_reuse()).count() as usize;
    touched
}

#[derive(Serialize)]
struct Scenario {
    scenario: String,
    samples: usize,
    window: usize,
    disabled_ms: f64,
    enabled_ms: f64,
    overhead_pct: f64,
}

#[derive(Serialize)]
struct Payload {
    threads: usize,
    budget_pct: f64,
    max_overhead_pct: f64,
    within_budget: bool,
    scenarios: Vec<Scenario>,
}

fn run_scenario(
    name: &str,
    samples: usize,
    window: usize,
    skew: usize,
    jsonl: &std::path::Path,
) -> Scenario {
    let trace = synthetic_trace(samples, window, skew);
    let annots = AuxAnnotations::new();
    let symbols = SymbolTable::new();
    let cfg = AnalysisConfig::default();
    let run = || {
        let a = Analyzer::new(&trace, &annots, &symbols).with_config(cfg);
        report_path(&a)
    };

    // Warm up with obs off.
    memgaze_obs::configure(ObsConfig::disabled());
    let expect = run();

    // Best of five per mode, interleaved so machine drift hits both
    // modes alike. The enabled runs pay the full deal: span open/close,
    // sharded counter bumps, and the JSONL flush of metric snapshots.
    let mut disabled_ms = f64::INFINITY;
    let mut enabled_ms = f64::INFINITY;
    for _ in 0..5 {
        memgaze_obs::configure(ObsConfig::disabled());
        let (ms, n) = timed(run);
        assert_eq!(n, expect, "disabled run must agree");
        disabled_ms = disabled_ms.min(ms);

        memgaze_obs::configure(ObsConfig {
            jsonl_path: Some(jsonl.to_path_buf()),
            ..ObsConfig::disabled()
        });
        let (ms, n) = timed(|| {
            let n = run();
            memgaze_obs::flush();
            n
        });
        assert_eq!(n, expect, "enabled run must agree");
        enabled_ms = enabled_ms.min(ms);
    }
    memgaze_obs::configure(ObsConfig::disabled());

    Scenario {
        scenario: name.to_string(),
        samples,
        window,
        disabled_ms,
        enabled_ms,
        overhead_pct: (enabled_ms - disabled_ms) / disabled_ms.max(1e-9) * 100.0,
    }
}

fn main() {
    let sc = scales::from_env();
    let samples = (sc.micro_elems as usize / 64).clamp(32, 256);
    let jsonl =
        std::env::temp_dir().join(format!("memgaze-bench-obs-{}.jsonl", std::process::id()));
    let scenarios = vec![
        run_scenario("uniform 64-sample report", samples, 512, 0, &jsonl),
        run_scenario("large-window report", samples / 2, 2048, 0, &jsonl),
        run_scenario(
            "skewed sample sizes (1×32 larger)",
            samples,
            256,
            32,
            &jsonl,
        ),
    ];
    let _ = std::fs::remove_file(&jsonl);

    let mut table = Table::new(
        "BENCH_obs: report path, obs disabled vs enabled (JSONL sink)",
        &["scenario", "disabled (ms)", "enabled (ms)", "overhead"],
    );
    for s in &scenarios {
        table.push_row(vec![
            s.scenario.clone(),
            format!("{:.2}", s.disabled_ms),
            format!("{:.2}", s.enabled_ms),
            format!("{:+.2}%", s.overhead_pct),
        ]);
    }
    let max_overhead_pct = scenarios
        .iter()
        .map(|s| s.overhead_pct)
        .fold(f64::NEG_INFINITY, f64::max);
    let payload = Payload {
        threads: AnalysisConfig::default().threads,
        budget_pct: 5.0,
        max_overhead_pct,
        within_budget: max_overhead_pct < 5.0,
        scenarios,
    };
    emit("BENCH_obs", &table, &payload);
    println!(
        "max overhead across scenarios: {max_overhead_pct:+.2}% (budget 5%): {}",
        if payload.within_budget {
            "PASS"
        } else {
            "FAIL"
        }
    );
}
