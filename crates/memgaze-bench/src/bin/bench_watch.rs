//! BENCH_watch: the live rolling-window monitor under the phase-shift
//! workload — controller convergence (windows and retunes until the
//! drop rate settles in band), anomaly-detection latency (windows
//! between the phase shift and the first mark), and the replay gate.
//!
//! The acceptance gate (wired through `compare_bench --check` in the
//! `watch-smoke` CI job): `windows_bit_identical >= 1` — every window
//! of a pinned-controller run, replayed offline from its container
//! frames through a resident [`StreamingAnalyzer`] pass, must
//! reproduce the live window stats field for field, or the latency
//! and convergence numbers describe a different analysis.

use memgaze_analysis::{window_meta, AnalysisConfig, StreamingAnalyzer, Table, WindowStats};
use memgaze_bench::{emit, timed};
use memgaze_core::{
    phase_shift_steps, smoke_run, watch_workload, ControllerMode, WatchConfig, WatchReport,
};
use memgaze_obs::ObsConfig;
use memgaze_ptsim::SamplerConfig;
use serde::Serialize;

const LOCALITY: &[u64] = &[16, 64, 256];
const STEPS: usize = 64;
const LOADS_PER_STEP: usize = 4_000;
const WINDOW_SAMPLES: usize = 4;

#[derive(Serialize)]
struct Payload {
    wall_ms: f64,
    // Adaptive run: governor behaviour from an undersized buffer.
    adaptive_windows: usize,
    adaptive_anomalies: usize,
    retunes: usize,
    windows_to_converge: u64,
    converged: u64,
    final_drop_rate: f64,
    // Pinned run: constant period, so the shift window is exact.
    pinned_windows: usize,
    pinned_anomalies: usize,
    phase_shift_window: usize,
    anomaly_detection_latency_windows: u64,
    // Replay gate over the pinned run's container frames.
    windows_checked: usize,
    windows_matching: usize,
    windows_bit_identical: u64,
}

/// A pinned watch run with the default (adequate) buffer: the period
/// never moves, so loads-per-window is constant and the window
/// containing the phase shift is exact arithmetic.
fn pinned_run() -> WatchReport {
    let sampler = SamplerConfig::application(2_000);
    let watch = WatchConfig {
        window_samples: WINDOW_SAMPLES,
        mode: ControllerMode::Pinned,
        ..WatchConfig::default()
    };
    watch_workload(
        "bench-watch",
        &sampler,
        &watch,
        AnalysisConfig::default(),
        LOCALITY,
        |space, step| phase_shift_steps(space, step, STEPS, LOADS_PER_STEP),
    )
    .expect("pinned watch run")
}

/// Replay every container frame resident and count the windows whose
/// drift stats match the live run bit for bit.
fn replay_matches(report: &WatchReport) -> usize {
    report
        .index
        .validate(&report.container)
        .expect("index matches container");
    (0..report.index.entries.len())
        .filter(|&i| {
            let samples = report
                .index
                .read_frame(&report.container, i)
                .expect("frame decodes");
            let meta = window_meta(
                "bench-watch",
                report.initial_period,
                report.initial_buffer_bytes,
                &samples,
            );
            let mut sa =
                StreamingAnalyzer::new(&report.annots, &report.symbols, AnalysisConfig::default())
                    .with_locality_sizes(LOCALITY);
            sa.ingest_shard(&samples);
            WindowStats::from_report(i, &sa.finish(&meta)) == report.windows[i]
        })
        .count()
}

fn main() {
    memgaze_obs::configure(ObsConfig::disabled());

    let (wall_ms, (adaptive, pinned, matching)) = timed(|| {
        let (adaptive, _) = smoke_run(ControllerMode::Adaptive).expect("adaptive smoke run");
        let pinned = pinned_run();
        let matching = replay_matches(&pinned);
        (adaptive, pinned, matching)
    });

    // Shift at step STEPS/2 with a fixed period: the first post-shift
    // sample lands in window (loads_before_shift / period) / samples.
    let loads_before_shift = (STEPS as u64 / 2) * LOADS_PER_STEP as u64;
    let phase_shift_window = (loads_before_shift / pinned.initial_period) as usize / WINDOW_SAMPLES;
    let detection_latency = pinned
        .anomalies
        .iter()
        .map(|m| m.window)
        .filter(|&w| w >= phase_shift_window)
        .min()
        .map(|w| (w - phase_shift_window) as u64)
        .unwrap_or(u64::MAX);

    let payload = Payload {
        wall_ms,
        adaptive_windows: adaptive.windows.len(),
        adaptive_anomalies: adaptive.anomalies.len(),
        retunes: adaptive.retunes.len(),
        windows_to_converge: adaptive.converged_at.map(|w| w as u64).unwrap_or(u64::MAX),
        converged: u64::from(adaptive.converged_at.is_some()),
        final_drop_rate: adaptive.final_drop_rate,
        pinned_windows: pinned.windows.len(),
        pinned_anomalies: pinned.anomalies.len(),
        phase_shift_window,
        anomaly_detection_latency_windows: detection_latency,
        windows_checked: pinned.windows.len(),
        windows_matching: matching,
        windows_bit_identical: u64::from(matching == pinned.windows.len() && matching > 0),
    };

    let mut table = Table::new(
        "BENCH_watch: live rolling-window monitor + feedback controller",
        &["metric", "value"],
    );
    table.push_row(vec![
        "adaptive run".into(),
        format!(
            "{} windows, {} anomaly marks, {} retunes",
            payload.adaptive_windows, payload.adaptive_anomalies, payload.retunes
        ),
    ]);
    table.push_row(vec![
        "controller convergence".into(),
        match adaptive.converged_at {
            Some(w) => format!("window {w}, final drop rate {:.2}", payload.final_drop_rate),
            None => "did not converge".into(),
        },
    ]);
    table.push_row(vec![
        "anomaly detection latency".into(),
        format!(
            "{} windows after shift window {}",
            payload.anomaly_detection_latency_windows, payload.phase_shift_window
        ),
    ]);
    table.push_row(vec![
        "pinned windows replayed bit-identical".into(),
        format!("{}/{}", payload.windows_matching, payload.windows_checked),
    ]);
    table.push_row(vec!["wall".into(), format!("{wall_ms:.0}ms")]);
    emit("BENCH_watch", &table, &payload);
}
