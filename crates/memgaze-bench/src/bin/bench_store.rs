//! BENCH_store: the tiered trace store — cold-disk analysis vs the
//! warm hot-shard LRU vs the per-frame result cache, the block
//! compressor's ratio on a sampled trace, and catalog-only query
//! latency with proof that no shard frame is decoded to answer it.
//!
//! The acceptance gates (wired through `compare_bench --check` in the
//! `store-smoke` CI job):
//!
//! * `speedup_result_cache >= 5` — re-analysing an unchanged trace from
//!   cached [`PartialReport`]s must beat the cold decode+analyze pass
//!   by at least 5x;
//! * `query_frames_decoded <= 0` — region/time/function queries are
//!   answered from catalog summaries alone.

use memgaze_analysis::{stream_resident_trace, AnalysisConfig, Table};
use memgaze_bench::{emit, scales, timed};
use memgaze_model::{
    encode_sharded_indexed, Access, AuxAnnotations, Sample, SampledTrace, SymbolTable, TraceMeta,
};
use memgaze_obs::ObsConfig;
use memgaze_store::{QueryEngine, StoreConfig, TraceStore};
use serde::Serialize;
use std::path::Path;

/// The BENCH_analysis synthetic trace shape: a strided phase
/// interleaved with cyclic reuse over four hot regions. Distinct access
/// times keep every frame unique, so frame counts equal blob counts.
fn synthetic_trace(samples: usize, window: usize) -> SampledTrace {
    let mut t = SampledTrace::new(TraceMeta::new("bench-store", 10_000, 16 << 10));
    t.meta.total_loads = (samples * 10_000) as u64;
    t.meta.total_instrumented_loads = (samples * window) as u64;
    for s in 0..samples {
        let base = (s * 10_000) as u64;
        let accesses: Vec<Access> = (0..window)
            .map(|i| {
                let addr = if i % 2 == 0 {
                    0x10_0000 + ((s * window + i) as u64) * 64
                } else {
                    let hot = ((i / 2) % 4) as u64;
                    0x80_0000 + hot * 0x100_0000 + ((i % 64) as u64) * 64
                };
                Access::new(0x400u64 + (i as u64 % 16) * 4, addr, base + i as u64)
            })
            .collect();
        t.push_sample(Sample::new(accesses, base + window as u64))
            .unwrap();
    }
    t
}

fn wipe_results(root: &Path) {
    let _ = std::fs::remove_dir_all(root.join("results"));
}

#[derive(Serialize)]
struct Payload {
    samples: usize,
    window: usize,
    frames: usize,
    shard_samples: usize,
    raw_bytes: u64,
    stored_bytes: u64,
    compression_ratio: f64,
    resident_ms: f64,
    cold_ms: f64,
    warm_lru_ms: f64,
    result_cache_ms: f64,
    speedup_warm_lru: f64,
    speedup_result_cache: f64,
    catalog_query_us: f64,
    query_frames_decoded: u64,
}

fn main() {
    let sc = scales::from_env();
    let samples = (sc.micro_elems as usize / 16).clamp(64, 256);
    let window = 512;
    let shard_samples = 4;
    let reps = 5;

    memgaze_obs::configure(ObsConfig::disabled());
    let trace = synthetic_trace(samples, window);
    let (container, index) = encode_sharded_indexed(&trace, shard_samples);
    let annots = AuxAnnotations::new();
    let mut symbols = SymbolTable::new();
    symbols.add_function("hot", 0x400u64.into(), 0x420u64.into(), "bench.c");
    symbols.add_function("cold", 0x420u64.into(), 0x440u64.into(), "bench.c");
    let cfg = AnalysisConfig::default();
    let sizes = [16u64, 64, 256];

    let root = std::env::temp_dir().join(format!("memgaze-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let store = TraceStore::open(StoreConfig::new(&root)).expect("open store");
    let receipt = store
        .put("bench", &container, &index, &symbols)
        .expect("put");
    let frames = receipt.frames;

    // Resident reference: analyze the in-memory trace directly.
    let mut resident_ms = f64::INFINITY;
    let mut resident = None;
    for _ in 0..reps {
        let (ms, r) =
            timed(|| stream_resident_trace(&trace, &annots, &symbols, cfg, &sizes, shard_samples));
        resident_ms = resident_ms.min(ms);
        resident = Some(r);
    }
    let resident = resident.unwrap();

    // Cold: a fresh store handle (empty LRU) and no cached results —
    // every frame is read from disk, decompressed, and analyzed.
    let mut cold_ms = f64::INFINITY;
    for _ in 0..reps {
        wipe_results(&root);
        let fresh = TraceStore::open(StoreConfig::new(&root)).expect("open store");
        let (ms, run) = timed(|| {
            fresh
                .analyze("bench", &annots, &symbols, cfg, &sizes)
                .expect("cold analyze")
        });
        assert_eq!(run.result_misses, frames, "cold pass must miss every frame");
        assert_eq!(run.report, resident, "store analysis must be bit-identical");
        cold_ms = cold_ms.min(ms);
    }

    // Warm LRU: same handle, blobs resident in the hot-shard cache, but
    // results wiped — decode is skipped, analysis still runs.
    let mut warm_lru_ms = f64::INFINITY;
    store
        .analyze("bench", &annots, &symbols, cfg, &sizes)
        .expect("lru warmup");
    for _ in 0..reps {
        wipe_results(&root);
        let (ms, run) = timed(|| {
            store
                .analyze("bench", &annots, &symbols, cfg, &sizes)
                .expect("warm analyze")
        });
        assert_eq!(
            run.result_misses, frames,
            "warm-LRU pass recomputes results"
        );
        assert_eq!(run.report, resident, "store analysis must be bit-identical");
        warm_lru_ms = warm_lru_ms.min(ms);
    }

    // Result cache: the previous pass persisted every PartialReport, so
    // re-analysis only loads and merges them.
    let mut result_cache_ms = f64::INFINITY;
    store
        .analyze("bench", &annots, &symbols, cfg, &sizes)
        .expect("result warmup");
    for _ in 0..reps {
        let fresh = TraceStore::open(StoreConfig::new(&root)).expect("open store");
        let (ms, run) = timed(|| {
            fresh
                .analyze("bench", &annots, &symbols, cfg, &sizes)
                .expect("cached analyze")
        });
        assert_eq!(run.result_hits, frames, "cached pass must hit every frame");
        assert_eq!(run.report, resident, "store analysis must be bit-identical");
        result_cache_ms = result_cache_ms.min(ms);
    }

    // Catalog-only queries, with the frames-decoded counter armed to
    // prove no shard leaves the blob store.
    let catalog = store.catalog("bench").expect("catalog");
    let engine = QueryEngine::new(&catalog).expect("query engine");
    memgaze_obs::configure(ObsConfig {
        capture: true,
        ..ObsConfig::disabled()
    });
    let decoded_before = memgaze_obs::counter("model.frames_decoded").value();
    let query_reps = 200usize;
    let (query_ms, answered) = timed(|| {
        let mut n = 0usize;
        for i in 0..query_reps {
            let lo = 0x80_0000 + (i as u64 % 4) * 0x100_0000;
            n += engine.region(lo, lo + 0x100_0000).accesses as usize;
            n += engine.time_range(0, u64::MAX).frames;
            n += engine.function("hot").map_or(0, |f| f.frames);
        }
        n
    });
    assert!(answered > 0, "queries must see the stored accesses");
    let query_frames_decoded =
        memgaze_obs::counter("model.frames_decoded").value() - decoded_before;
    memgaze_obs::configure(ObsConfig::disabled());
    let _ = memgaze_obs::take_capture();
    let catalog_query_us = query_ms * 1000.0 / query_reps as f64;

    let _ = std::fs::remove_dir_all(&root);

    let compression_ratio = receipt.raw_bytes as f64 / receipt.stored_bytes.max(1) as f64;
    let payload = Payload {
        samples,
        window,
        frames,
        shard_samples,
        raw_bytes: receipt.raw_bytes,
        stored_bytes: receipt.stored_bytes,
        compression_ratio,
        resident_ms,
        cold_ms,
        warm_lru_ms,
        result_cache_ms,
        speedup_warm_lru: cold_ms / warm_lru_ms.max(1e-9),
        speedup_result_cache: cold_ms / result_cache_ms.max(1e-9),
        catalog_query_us,
        query_frames_decoded,
    };

    let mut table = Table::new(
        "BENCH_store: tiered trace store (cold vs warm LRU vs result cache)",
        &["tier", "time (ms)", "speedup vs cold"],
    );
    table.push_row(vec![
        "resident (reference)".into(),
        format!("{resident_ms:.2}"),
        "-".into(),
    ]);
    table.push_row(vec![
        "cold disk".into(),
        format!("{cold_ms:.2}"),
        "1.00x".into(),
    ]);
    table.push_row(vec![
        "warm hot-shard LRU".into(),
        format!("{warm_lru_ms:.2}"),
        format!("{:.2}x", payload.speedup_warm_lru),
    ]);
    table.push_row(vec![
        "result cache".into(),
        format!("{result_cache_ms:.2}"),
        format!("{:.2}x", payload.speedup_result_cache),
    ]);
    emit("BENCH_store", &table, &payload);
    println!(
        "compression {compression_ratio:.2}x ({} -> {} bytes across {frames} frames); \
         catalog query {catalog_query_us:.1}us with {query_frames_decoded} frames decoded",
        receipt.raw_bytes, receipt.stored_bytes
    );
}
