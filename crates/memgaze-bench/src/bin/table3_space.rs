//! Table III: space savings of MemGaze's memory traces.
//!
//! Compares, per benchmark and optimization level: 'Rec' (compressed full
//! trace with bandwidth-pressure drops), 'All' (drop-corrected compressed
//! full trace), 'All⁺' (uncompressed full trace), and the MemGaze sampled
//! trace, with ratios as percentages. The paper's headline: sampled
//! traces are ≈1% of full ones; compression adds 1.2× (O3) / 2× (O0).
//!
//! Microbenchmarks run on the IR path (true Rec/All/All⁺ collections);
//! applications run on the stream path, where All⁺ is recovered from the
//! annotations' implied-Constant counts (exactly what the decoder would
//! reconstruct), and O0 is emulated with one implied frame load per
//! instrumented load.

use memgaze_analysis::Table;
use memgaze_bench::{emit, scales};
use memgaze_core::{full_trace_workload, trace_workload, MemGaze, PipelineConfig};
use memgaze_instrument::{InstrumentConfig, Instrumenter};
use memgaze_model::{io, DecompressionInfo};
use memgaze_ptsim::{collect_full, BandwidthModel, SamplerConfig};
use memgaze_workloads::darknet::{self, Network};
use memgaze_workloads::gap::{self, GapConfig, GapKernel};
use memgaze_workloads::minivite::{self, MapVariant, MiniViteConfig};
use memgaze_workloads::ubench::{MicroBench, OptLevel};
use memgaze_workloads::{LoadRecorder, TracedSpace};
use serde::Serialize;

#[derive(Serialize)]
struct Table3Row {
    benchmark: String,
    rec_bytes: u64,
    all_bytes: u64,
    all_plus_bytes: u64,
    memgaze_bytes: u64,
    ratio_rec_pct: f64,
    ratio_all_pct: f64,
    ratio_all_plus_pct: f64,
    kappa: f64,
}

fn pct(a: u64, b: u64) -> f64 {
    if b == 0 {
        0.0
    } else {
        100.0 * a as f64 / b as f64
    }
}

/// A workload runnable under any recorder.
trait Runner: Copy {
    fn exec<R: LoadRecorder>(&self, space: &mut TracedSpace<R>);
}

#[derive(Clone, Copy)]
struct Mv(MiniViteConfig);
impl Runner for Mv {
    fn exec<R: LoadRecorder>(&self, space: &mut TracedSpace<R>) {
        minivite::run(space, &self.0);
    }
}

#[derive(Clone, Copy)]
struct Gap(GapConfig);
impl Runner for Gap {
    fn exec<R: LoadRecorder>(&self, space: &mut TracedSpace<R>) {
        gap::run(space, &self.0);
    }
}

#[derive(Clone, Copy)]
struct Dark(Network);
impl Runner for Dark {
    fn exec<R: LoadRecorder>(&self, space: &mut TracedSpace<R>) {
        darknet::run(space, self.0);
    }
}

/// Four trace sizes of one workload; `o0_extra > 0` emulates O0.
fn workload_row(name: &str, period: u64, o0_extra: u32, runner: impl Runner) -> Table3Row {
    let (rec, _) = full_trace_workload(name, Some(BandwidthModel::default()), true, |s| {
        s.set_o0_extra(o0_extra);
        runner.exec(s)
    });
    let (all, _) = full_trace_workload(name, None, true, |s| {
        s.set_o0_extra(o0_extra);
        runner.exec(s)
    });
    let sampler = SamplerConfig::application(period);
    let (sampled, _) = trace_workload(name, &sampler, |s| {
        s.set_o0_extra(o0_extra);
        runner.exec(s)
    });

    let rec_bytes = io::full_size_bytes(&rec.trace);
    let all_bytes = io::full_size_bytes(&all.trace);
    let kappa = DecompressionInfo::from_trace(&sampled.trace, &sampled.annots).kappa();
    let all_plus_bytes = (all_bytes as f64 * kappa) as u64;
    let memgaze_bytes = io::sampled_size_bytes(&sampled.trace);
    Table3Row {
        benchmark: name.to_string(),
        rec_bytes,
        all_bytes,
        all_plus_bytes,
        memgaze_bytes,
        ratio_rec_pct: pct(memgaze_bytes, rec_bytes),
        ratio_all_pct: pct(memgaze_bytes, all_bytes),
        ratio_all_plus_pct: pct(memgaze_bytes, all_plus_bytes),
        kappa,
    }
}

/// Microbenchmark sizes on the IR path: real Rec/All/All⁺ collections.
fn micro_row(name: &str, opt: OptLevel, elems: u32, reps: u32, period: u64) -> Table3Row {
    let bench = MicroBench::parse(name, elems, reps, opt).expect("bench");
    let module = bench.module();
    let main = module.find_proc("main").unwrap();

    let comp = Instrumenter::default().instrument(&module);
    let unc = Instrumenter::new(InstrumentConfig::uncompressed()).instrument(&module);

    // Microbenchmarks barely drop in the paper (their 'Rec' equals
    // 'All'): the IR kernels are small enough that copies keep up. Use a
    // bandwidth model with just mild pressure.
    let micro_bw = BandwidthModel {
        bytes_per_load: 18.0,
        burst_bytes: 64.0 * 1024.0,
    };
    let (rec, _) = collect_full(&comp, main, Some(micro_bw), name).unwrap();
    let (all, _) = collect_full(&comp, main, None, name).unwrap();
    let (all_plus, _) = collect_full(&unc, main, None, name).unwrap();

    let mut cfg = PipelineConfig::microbench();
    cfg.sampler.period = period;
    let report = MemGaze::new(cfg).run_microbench(&bench).unwrap();

    let rec_bytes = io::full_size_bytes(&rec);
    let all_bytes = io::full_size_bytes(&all);
    let all_plus_bytes = io::full_size_bytes(&all_plus);
    let memgaze_bytes = io::sampled_size_bytes(&report.trace);
    let kappa = DecompressionInfo::from_trace(&report.trace, &report.instrumented.annots).kappa();
    Table3Row {
        benchmark: format!("{}-{}", name, opt.suffix()),
        rec_bytes,
        all_bytes,
        all_plus_bytes,
        memgaze_bytes,
        ratio_rec_pct: pct(memgaze_bytes, rec_bytes),
        ratio_all_pct: pct(memgaze_bytes, all_bytes),
        ratio_all_plus_pct: pct(memgaze_bytes, all_plus_bytes),
        kappa,
    }
}

fn main() {
    let sc = scales::from_env();
    let mut rows = Vec::new();

    for opt in [OptLevel::O0, OptLevel::O3] {
        rows.push(micro_row(
            "str2|irr",
            opt,
            sc.micro_elems,
            sc.micro_reps,
            sc.micro_period,
        ));
    }

    for (variant, o0) in [
        (MapVariant::V1, 0u32),
        (MapVariant::V1, 1),
        (MapVariant::V2, 0),
        (MapVariant::V3, 0),
    ] {
        let mv = MiniViteConfig {
            scale: sc.graph_scale,
            degree: sc.degree,
            iterations: sc.louvain_iters,
            variant,
            seed: 42,
            v2_default_capacity: 64,
        };
        let label = format!(
            "miniVite-{}-{}",
            if o0 > 0 { "O0" } else { "O3" },
            variant.label()
        );
        rows.push(workload_row(&label, sc.app_period, o0, Mv(mv)));
    }

    for kernel in [
        GapKernel::Cc,
        GapKernel::CcSv,
        GapKernel::Pr,
        GapKernel::PrSpmv,
    ] {
        let cfg = GapConfig {
            scale: sc.graph_scale,
            degree: sc.degree,
            kernel,
            max_iters: sc.pr_iters,
            seed: 9,
        };
        for o0 in [1u32, 0] {
            let label = format!(
                "GAP-{}-{}",
                kernel.label(),
                if o0 > 0 { "O0" } else { "O3" }
            );
            rows.push(workload_row(&label, sc.app_period, o0, Gap(cfg)));
        }
    }

    for net in [Network::AlexNet, Network::ResNet152] {
        rows.push(workload_row(
            &format!("Darknet-{}", net.label()),
            sc.app_period,
            0,
            Dark(net),
        ));
    }

    let mut table = Table::new(
        "Table III: trace sizes — Rec / All / All+ (bytes) vs MemGaze, ratios in %",
        &[
            "Benchmark",
            "Rec",
            "All",
            "All+",
            "MemGaze",
            "%Rec",
            "%All",
            "%All+",
            "kappa",
        ],
    );
    for r in &rows {
        table.push_row(vec![
            r.benchmark.clone(),
            r.rec_bytes.to_string(),
            r.all_bytes.to_string(),
            r.all_plus_bytes.to_string(),
            r.memgaze_bytes.to_string(),
            format!("{:.2}", r.ratio_rec_pct),
            format!("{:.2}", r.ratio_all_pct),
            format!("{:.2}", r.ratio_all_plus_pct),
            format!("{:.2}", r.kappa),
        ]);
    }
    emit("table3_space", &table, &rows);

    let o0 = rows.iter().find(|r| r.benchmark.contains("O0-v1")).unwrap();
    let o3 = rows.iter().find(|r| r.benchmark.contains("O3-v1")).unwrap();
    println!(
        "compression: O0 kappa {:.2} (paper ≈2), O3 kappa {:.2} (paper ≈1.2); sampled/All ratios {:.2}% / {:.2}%",
        o0.kappa, o3.kappa, o0.ratio_all_pct, o3.ratio_all_pct
    );
}
