//! BENCH_analysis: end-to-end analyzer throughput — memoized artifact
//! cache vs. per-table recomputation.
//!
//! The multi-table report path (function table, region tables, interval
//! table, window/locality series, heatmaps) shares every expensive
//! artifact through the `Analyzer`'s interior-mutability cache. The
//! "fresh" baseline reproduces the pre-cache behaviour by constructing a
//! new `Analyzer` for each table, so each entry point recomputes its
//! per-sample passes, merged block summary, and zoom tree.

use memgaze_analysis::{reuse_histogram_from, AnalysisConfig, Analyzer, CacheStats, Table};
use memgaze_bench::{emit, scales, timed};
use memgaze_model::{Access, AuxAnnotations, Sample, SampledTrace, SymbolTable, TraceMeta};
use serde::Serialize;

/// A synthetic trace mixing a strided phase and a cyclic-reuse phase.
/// `skew > 0` makes sample 0 `skew`× larger than the rest — the
/// work-stealing scheduler's worst case for static chunking.
fn synthetic_trace(samples: usize, window: usize, skew: usize) -> SampledTrace {
    let mut t = SampledTrace::new(TraceMeta::new("bench", 10_000, 16 << 10));
    t.meta.total_loads = (samples * 10_000) as u64;
    for s in 0..samples {
        let w = if s == 0 && skew > 0 {
            window * skew
        } else {
            window
        };
        let base = (s * 10_000 * skew.max(1)) as u64;
        let accesses: Vec<Access> = (0..w)
            .map(|i| {
                // Even accesses stream; odd accesses cycle within one of
                // four distinct hot regions (the paper's region tables
                // list several hot ranges, each drilled into separately).
                let addr = if i % 2 == 0 {
                    0x10_0000 + ((s * w + i) as u64) * 64
                } else {
                    let hot = ((i / 2) % 4) as u64;
                    0x80_0000 + hot * 0x100_0000 + ((i % 64) as u64) * 64
                };
                Access::new(0x400u64 + (i as u64 % 16) * 4, addr, base + i as u64)
            })
            .collect();
        t.push_sample(Sample::new(accesses, base + w as u64))
            .unwrap();
    }
    t
}

/// The multi-table report path over one (cached) analyzer: the hot
/// function table (IV/VI), the hot-region table (V/VII/IX) plus a
/// drill-down row per region, the interval table (VIII), the Fig. 8
/// heatmaps of the two hottest regions, and the reuse-distance
/// histogram. Every step shares the cached per-sample analyses, merged
/// block summary, and zoom tree.
fn report_path(a: &Analyzer<'_>) -> usize {
    let mut touched = 0usize;
    touched += a.function_table().len();
    let regions = a.region_rows();
    touched += regions.len();
    for r in &regions {
        touched += a.region_row_for(r.range.0, r.range.1).code.len();
    }
    touched += a.interval_rows(8).len();
    for r in regions.iter().take(2) {
        let (acc, _) = a.heatmaps(r.range, 16, 32);
        touched += acc.dark_cells(0.5);
    }
    touched += reuse_histogram_from(a.sample_reuse()).count() as usize;
    touched
}

/// The same path with a fresh analyzer per table — the pre-memoization
/// cost model, where every entry point recomputed its artifacts (and
/// each drill-down query rebuilt the zoom tree).
fn report_path_fresh(
    trace: &SampledTrace,
    annots: &AuxAnnotations,
    symbols: &SymbolTable,
    cfg: AnalysisConfig,
) -> usize {
    let fresh = || Analyzer::new(trace, annots, symbols).with_config(cfg);
    let mut touched = 0usize;
    touched += fresh().function_table().len();
    let regions = fresh().region_rows();
    touched += regions.len();
    for r in &regions {
        touched += fresh().region_row_for(r.range.0, r.range.1).code.len();
    }
    touched += fresh().interval_rows(8).len();
    for r in regions.iter().take(2) {
        let a = fresh();
        let (acc, _) = a.heatmaps(r.range, 16, 32);
        touched += acc.dark_cells(0.5);
    }
    touched += reuse_histogram_from(fresh().sample_reuse()).count() as usize;
    touched
}

#[derive(Serialize)]
struct Scenario {
    scenario: String,
    samples: usize,
    window: usize,
    fresh_ms: f64,
    memoized_ms: f64,
    speedup: f64,
    cache_stats: CacheStats,
}

#[derive(Serialize)]
struct Payload {
    threads: usize,
    scenarios: Vec<Scenario>,
}

fn run_scenario(name: &str, samples: usize, window: usize, skew: usize) -> Scenario {
    let trace = synthetic_trace(samples, window, skew);
    let annots = AuxAnnotations::new();
    let symbols = SymbolTable::new();
    let cfg = AnalysisConfig::default();

    // Warm up (page in the trace, spin up the thread pool path).
    let _ = report_path(&Analyzer::new(&trace, &annots, &symbols).with_config(cfg));

    // Best of three runs per path; each memoized run starts from a cold
    // cache (analyzer construction included).
    let mut fresh_ms = f64::INFINITY;
    let mut memoized_ms = f64::INFINITY;
    let mut fresh_touched = 0;
    let mut memo_touched = 0;
    for _ in 0..3 {
        let (ms, n) = timed(|| report_path_fresh(&trace, &annots, &symbols, cfg));
        fresh_ms = fresh_ms.min(ms);
        fresh_touched = n;
        let (ms, n) = timed(|| {
            let a = Analyzer::new(&trace, &annots, &symbols).with_config(cfg);
            report_path(&a)
        });
        memoized_ms = memoized_ms.min(ms);
        memo_touched = n;
    }
    assert_eq!(fresh_touched, memo_touched, "paths must agree");

    let analyzer = Analyzer::new(&trace, &annots, &symbols).with_config(cfg);
    let _ = report_path(&analyzer);
    let stats = analyzer.cache_stats();
    assert_eq!(stats.block_reuse, 1, "block_reuse must compute once");
    assert_eq!(stats.zoom, 1, "zoom must compute once");
    assert_eq!(stats.sample_reuse, 1, "sample reuse must compute once");

    Scenario {
        scenario: name.to_string(),
        samples,
        window,
        fresh_ms,
        memoized_ms,
        speedup: fresh_ms / memoized_ms.max(1e-9),
        cache_stats: stats,
    }
}

fn main() {
    let sc = scales::from_env();
    let samples = (sc.micro_elems as usize / 64).clamp(32, 256);
    let scenarios = vec![
        run_scenario("uniform 64-sample report", samples, 512, 0),
        run_scenario("large-window report", samples / 2, 2048, 0),
        run_scenario("skewed sample sizes (1×32 larger)", samples, 256, 32),
    ];

    let mut table = Table::new(
        "BENCH_analysis: multi-table report, fresh vs memoized analyzer",
        &["scenario", "fresh (ms)", "memoized (ms)", "speedup"],
    );
    for s in &scenarios {
        table.push_row(vec![
            s.scenario.clone(),
            format!("{:.2}", s.fresh_ms),
            format!("{:.2}", s.memoized_ms),
            format!("{:.2}x", s.speedup),
        ]);
    }
    let payload = Payload {
        threads: AnalysisConfig::default().threads,
        scenarios,
    };
    emit("BENCH_analysis", &table, &payload);

    let min = payload
        .scenarios
        .iter()
        .map(|s| s.speedup)
        .fold(f64::INFINITY, f64::min);
    println!("minimum speedup across scenarios: {min:.2}x");
}
