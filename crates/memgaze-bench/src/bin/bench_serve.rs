//! BENCH_serve: the streaming-analysis daemon under concurrent session
//! load — sessions/sec through the full HTTP lifecycle
//! (create → feed → seal), client-observed feed latency percentiles,
//! and the per-session byte high-water mark the admission budget sees.
//!
//! The acceptance gate (wired through `compare_bench --check` in the
//! `serve-smoke` CI job): `bit_identical >= 1` — every sealed session
//! in the run must reproduce its resident [`StreamingAnalyzer`] pass
//! bit for bit, or the throughput numbers are meaningless.

use memgaze_analysis::Table;
use memgaze_bench::{emit, scales, timed};
use memgaze_model::Sample;
use memgaze_obs::ObsConfig;
use memgaze_serve::harness::{container, resident_report, synthetic_samples};
use memgaze_serve::{Client, ServeConfig, Server};
use serde::Serialize;
use std::sync::Mutex;
use std::time::Instant;

#[derive(Serialize)]
struct Payload {
    sessions: usize,
    concurrency: usize,
    samples_per_session: usize,
    shards_per_session: usize,
    uploads_per_session: usize,
    pool_threads: usize,
    wall_ms: f64,
    sessions_per_sec: f64,
    feed_p50_us: f64,
    feed_p95_us: f64,
    peak_session_bytes: u64,
    bit_identical: u64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    memgaze_obs::configure(ObsConfig::disabled());
    let sc = scales::from_env();
    let sessions = (sc.micro_elems as usize / 128).clamp(8, 48);
    let concurrency = 4usize;
    let pool_threads = 6usize;
    let samples_per_session = 10usize;
    let window = 96usize;
    let group = 2usize; // samples per shard
    let split = 2usize; // shards per upload

    let server = Server::bind("127.0.0.1:0", ServeConfig::default(), pool_threads)
        .expect("bind bench server");
    let client = Client::new(server.addr());
    let cfg = ServeConfig::default();

    // Each session gets its own salted trace; residents are computed
    // up front so only serve-side work is on the clock.
    let traces: Vec<Vec<Vec<Sample>>> = (0..sessions)
        .map(|i| {
            synthetic_samples(samples_per_session, window, i as u64)
                .chunks(group)
                .map(|c| c.to_vec())
                .collect()
        })
        .collect();
    let residents: Vec<_> = traces
        .iter()
        .enumerate()
        .map(|(i, groups)| resident_report(&format!("bench-{i}"), groups, &cfg))
        .collect();
    let uploads_per_session = traces[0].chunks(split).count();

    let feed_us = Mutex::new(Vec::<f64>::new());
    let identical = Mutex::new(0usize);
    let next = std::sync::atomic::AtomicUsize::new(0);

    let (wall_ms, ()) = timed(|| {
        std::thread::scope(|scope| {
            for _ in 0..concurrency {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    if i >= sessions {
                        break;
                    }
                    let workload = format!("bench-{i}");
                    let id = client.create_session().expect("create");
                    let mut lat = Vec::new();
                    for upload in traces[i].chunks(split) {
                        let refs: Vec<&[Sample]> = upload.iter().map(|g| g.as_slice()).collect();
                        let body = container(&workload, &refs);
                        let started = Instant::now();
                        let resp = client.feed(&id, &body, None).expect("feed");
                        lat.push(started.elapsed().as_secs_f64() * 1e6);
                        assert_eq!(resp.status, 202, "feed refused: {}", resp.text());
                    }
                    let sealed = client.seal(&id).expect("seal");
                    let report = sealed.finish().expect("finish");
                    if report == residents[i] {
                        *identical.lock().unwrap() += 1;
                    }
                    feed_us.lock().unwrap().extend(lat);
                });
            }
        });
    });

    let peak_session_bytes = server
        .registry()
        .ids()
        .iter()
        .filter_map(|id| server.registry().get(id).ok())
        .map(|s| s.status().peak_bytes)
        .max()
        .unwrap_or(0);
    let drained = server.drain();
    assert_eq!(drained.seal_failures, 0, "drain must be clean");

    let mut lat = feed_us.into_inner().unwrap();
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let identical = identical.into_inner().unwrap();
    let payload = Payload {
        sessions,
        concurrency,
        samples_per_session,
        shards_per_session: traces[0].len(),
        uploads_per_session,
        pool_threads,
        wall_ms,
        sessions_per_sec: sessions as f64 / (wall_ms / 1000.0).max(1e-9),
        feed_p50_us: percentile(&lat, 0.50),
        feed_p95_us: percentile(&lat, 0.95),
        peak_session_bytes,
        bit_identical: u64::from(identical == sessions),
    };

    let mut table = Table::new(
        "BENCH_serve: streaming-analysis daemon under concurrent sessions",
        &["metric", "value"],
    );
    table.push_row(vec![
        "sessions (complete lifecycles)".into(),
        format!("{sessions} @ {concurrency} concurrent"),
    ]);
    table.push_row(vec![
        "sessions/sec".into(),
        format!("{:.1}", payload.sessions_per_sec),
    ]);
    table.push_row(vec![
        "feed latency p50 / p95".into(),
        format!(
            "{:.0}us / {:.0}us",
            payload.feed_p50_us, payload.feed_p95_us
        ),
    ]);
    table.push_row(vec![
        "peak per-session bytes".into(),
        format!("{peak_session_bytes}"),
    ]);
    table.push_row(vec![
        "bit-identical to resident".into(),
        format!("{identical}/{sessions}"),
    ]);
    emit("BENCH_serve", &table, &payload);
}
