//! BENCH_streaming: resident vs streaming/sharded trace analysis.
//!
//! The streaming path encodes the trace into a sharded v2 container, then
//! decodes and analyzes it one shard at a time ([`ShardReader`] →
//! [`StreamingAnalyzer`]), holding at most one shard of decoded trace
//! data plus O(partials) accumulator state. This binary measures the
//! cost of that bounded-memory pass against the resident analyzer across
//! shard sizes and verifies the two produce bit-identical reports.

use memgaze_analysis::{
    locality_vs_interval_with, reuse_histogram_from, AnalysisConfig, Analyzer, IngestStats,
    StreamingAnalyzer,
};
use memgaze_bench::{emit, scales, span_breakdown, timed, SpanShare};
use memgaze_model::{
    encode_sharded, Access, AuxAnnotations, FunctionId, Ip, IpAnnot, LoadClass, Sample,
    SampledTrace, ShardReader, SymbolTable, TraceMeta,
};
use serde::Serialize;

const LOCALITY_SIZES: [u64; 2] = [16, 64];

/// A synthetic trace with two annotated code regions: a strided
/// streaming function and a cyclic-reuse function, so the function
/// table, reuse summary, and locality series all have real work to do.
fn synthetic_setup(samples: usize, window: usize) -> (SampledTrace, AuxAnnotations, SymbolTable) {
    let mut t = SampledTrace::new(TraceMeta::new("bench-stream", 10_000, 16 << 10));
    t.meta.total_loads = (samples * 10_000) as u64;
    t.meta.total_instrumented_loads = (samples * window) as u64;
    for s in 0..samples as u64 {
        let base = s * 10_000;
        let accesses: Vec<Access> = (0..window as u64)
            .map(|i| {
                let (ip, addr) = if i % 4 == 0 {
                    (0x500 + (i % 3) * 4, 0x20_0000 + (i % 128) * 64)
                } else {
                    (0x400 + (i % 5) * 4, 0x10_0000 + (s * window as u64 + i) * 8)
                };
                Access::new(ip, addr, base + i)
            })
            .collect();
        t.push_sample(Sample::new(accesses, base + window as u64))
            .unwrap();
    }
    let mut annots = AuxAnnotations::new();
    for k in 0..5u64 {
        let mut an = IpAnnot::of_class(LoadClass::Strided, FunctionId(0));
        an.implied_const = 3;
        annots.insert(Ip(0x400 + k * 4), an);
    }
    for k in 0..3u64 {
        annots.insert(
            Ip(0x500 + k * 4),
            IpAnnot::of_class(LoadClass::Irregular, FunctionId(1)),
        );
    }
    let mut symbols = SymbolTable::new();
    symbols.add_function("stream_fn", Ip(0x400), Ip(0x500), "a.c");
    symbols.add_function("cycle_fn", Ip(0x500), Ip(0x600), "a.c");
    (t, annots, symbols)
}

#[derive(Serialize)]
struct Variant {
    shard_samples: usize,
    stream_ms: f64,
    /// stream_ms / resident_ms — the streaming overhead this bench
    /// exists to bound.
    overhead_vs_resident: f64,
    peak_resident_bytes: usize,
    merge_events: u64,
    ingest: IngestStats,
    /// Per-span exclusive-time attribution of one untimed streaming
    /// pass at this shard size.
    breakdown: Vec<SpanShare>,
}

#[derive(Serialize)]
struct Payload {
    samples: usize,
    window: usize,
    threads: usize,
    resident_ms: f64,
    resident_peak_bytes: usize,
    /// Per-span exclusive-time attribution of one untimed resident pass.
    resident_breakdown: Vec<SpanShare>,
    variants: Vec<Variant>,
}

fn main() {
    let sc = scales::from_env();
    let samples = (sc.micro_elems as usize / 16).clamp(64, 512);
    let window = 512usize;
    let (trace, annots, symbols) = synthetic_setup(samples, window);
    let cfg = AnalysisConfig::default();

    // The resident report path: function table, block summary, interval
    // table, reuse histogram, locality series — all from an in-memory
    // trace.
    let resident_path = || {
        let a = Analyzer::new(&trace, &annots, &symbols).with_config(cfg);
        let rows = a.function_table().to_vec();
        let reuse = a.block_reuse().clone();
        let intervals = a.interval_rows(8);
        let hist = reuse_histogram_from(a.sample_reuse());
        let loc = locality_vs_interval_with(&trace, &annots, cfg.reuse_block, &LOCALITY_SIZES, 1);
        (a.decompression(), rows, reuse, intervals, hist, loc)
    };
    // Measurement rounds interleave the resident path with every
    // streaming shard size: on a small shared host, wall-clock drifts
    // between the start and end of the process, and timing the paths
    // back-to-back within each round (taking per-path minima across
    // rounds) keeps the reported ratios from absorbing that drift.
    let shard_sizes = [1usize, 16, 256];
    let containers: Vec<Vec<u8>> = shard_sizes
        .iter()
        .map(|&n| encode_sharded(&trace, n))
        .collect();
    let run_stream = |container: &[u8]| {
        let mut reader = ShardReader::new(container).expect("valid container");
        let mut an =
            StreamingAnalyzer::new(&annots, &symbols, cfg).with_locality_sizes(&LOCALITY_SIZES);
        for shard in reader.by_ref() {
            an.ingest_shard(&shard.expect("valid container").samples);
        }
        let meta = reader.meta().clone();
        an.finish(&meta)
    };

    let _ = resident_path(); // warm up
    for c in &containers {
        let _ = run_stream(c); // warm up
    }
    let mut resident_ms = f64::INFINITY;
    let mut resident = None;
    let mut stream_ms = vec![f64::INFINITY; shard_sizes.len()];
    let mut reports: Vec<Option<_>> = shard_sizes.iter().map(|_| None).collect();
    for _ in 0..5 {
        let (ms, out) = timed(resident_path);
        resident_ms = resident_ms.min(ms);
        resident = Some(out);
        for (k, c) in containers.iter().enumerate() {
            let (ms, out) = timed(|| run_stream(c));
            stream_ms[k] = stream_ms[k].min(ms);
            reports[k] = Some(out);
        }
    }
    let (res_dec, res_rows, res_reuse, res_intervals, res_hist, res_loc) = resident.unwrap();
    let (_, resident_breakdown) = span_breakdown(resident_path);
    let total_accesses: usize = trace.samples.iter().map(|s| s.accesses.len()).sum();
    let resident_peak_bytes = total_accesses * std::mem::size_of::<Access>();

    let mut variants = Vec::new();
    for (k, &shard_samples) in shard_sizes.iter().enumerate() {
        let report = reports[k].take().unwrap();
        let stream_ms = stream_ms[k];
        let (_, breakdown) = span_breakdown(|| run_stream(&containers[k]));

        // Bit-identity with the resident analyzer, per shard size.
        assert_eq!(report.decompression, res_dec, "shard {shard_samples}");
        assert_eq!(report.function_rows, res_rows, "shard {shard_samples}");
        assert_eq!(report.block_reuse, res_reuse, "shard {shard_samples}");
        assert_eq!(
            report.interval_rows(8),
            res_intervals,
            "shard {shard_samples}"
        );
        assert_eq!(report.reuse_histogram, res_hist, "shard {shard_samples}");
        assert_eq!(report.locality_series, res_loc, "shard {shard_samples}");
        assert!(
            report.ingest.peak_shard_bytes
                <= shard_samples * window * std::mem::size_of::<Access>()
        );

        variants.push(Variant {
            shard_samples,
            stream_ms,
            overhead_vs_resident: stream_ms / resident_ms,
            peak_resident_bytes: report.ingest.peak_shard_bytes,
            merge_events: report.ingest.merge_events,
            ingest: report.ingest,
            breakdown,
        });
    }

    let mut table = memgaze_analysis::Table::new(
        "BENCH_streaming: resident vs streaming analysis (bit-identical reports)",
        &[
            "path",
            "shard",
            "time (ms)",
            "vs resident",
            "peak trace bytes",
            "merges",
        ],
    );
    table.push_row(vec![
        "resident".into(),
        "-".into(),
        format!("{resident_ms:.2}"),
        "1.00x".into(),
        format!("{resident_peak_bytes}"),
        "-".into(),
    ]);
    for v in &variants {
        table.push_row(vec![
            "streaming".into(),
            format!("{}", v.shard_samples),
            format!("{:.2}", v.stream_ms),
            format!("{:.2}x", v.overhead_vs_resident),
            format!("{}", v.peak_resident_bytes),
            format!("{}", v.merge_events),
        ]);
    }
    let payload = Payload {
        samples,
        window,
        threads: cfg.threads,
        resident_ms,
        resident_peak_bytes,
        resident_breakdown,
        variants,
    };
    emit("BENCH_streaming", &table, &payload);

    let best = payload
        .variants
        .iter()
        .map(|v| resident_peak_bytes as f64 / v.peak_resident_bytes.max(1) as f64)
        .fold(0.0, f64::max);
    println!("peak trace memory reduction (best shard size): {best:.1}x");
}
