//! Ablations of MemGaze's design choices.
//!
//! 1. **Buffer yield factor** (the kernel async-fill artifact, §VI):
//!    how snapshot yield changes sample windows and footprint-MAPE.
//! 2. **Compact 32-bit PTW payloads** (§VI-B1 future work): trace bytes
//!    and estimated overhead vs. full 64-bit payloads.
//! 3. **Load-based vs. time-based trigger** (§III-C footnote): sampling
//!    bias on a two-phase stream whose load rate changes.
//! 4. **Strided `ptwrite` suppression** (§VI-B1: "additional compression
//!    that reduces ptwrites for Strided loads"): overhead saved by
//!    emitting one packet per four strided loads.
//! 5. **Zoom hot threshold `t%`** (§IV-C2: "The stopping threshold is
//!    also important"): leaf count and hot coverage across thresholds.

use memgaze_analysis::{
    compare_window_series, pow2_sizes, window_series, AnalysisConfig, Table, ZoomConfig,
};
use memgaze_bench::{emit, scales};
use memgaze_core::{trace_workload, MemGaze, PipelineConfig};
use memgaze_model::Ip;
use memgaze_ptsim::{OverheadModel, RunProfile, SamplerConfig, StreamSampler, TimeStreamSampler};
use memgaze_workloads::minivite::{self, MapVariant, MiniViteConfig};
use memgaze_workloads::ubench::{MicroBench, OptLevel};
use serde::Serialize;

#[derive(Serialize, Default)]
struct Out {
    yield_factor: Vec<(f64, f64, f64)>, // (yield, mean window, MAPE F)
    payload: Vec<(String, u64, f64)>,   // (mode, bytes, overhead)
    trigger_bias: Vec<(String, f64)>,   // (trigger, slow-phase fraction)
    strided_suppression: Vec<(String, f64)>, // (mode, overhead)
    zoom_threshold: Vec<(f64, usize, f64)>, // (t%, leaves, top-leaf pct)
}

fn ablate_yield(out: &mut Out, sc: &memgaze_bench::scales::Scales) {
    let bench = MicroBench::parse("str2|irr", sc.micro_elems, 20, OptLevel::O3).unwrap();
    let sizes = pow2_sizes(4, 8);
    for yf in [0.25, 0.55, 1.0] {
        let mut cfg = PipelineConfig::microbench();
        cfg.sampler.period = sc.micro_period;
        cfg.sampler.yield_factor = yf;
        let mg = MemGaze::new(cfg.clone());
        let report = mg.run_microbench(&bench).unwrap();
        let truth = mg.microbench_ground_truth(&bench).unwrap();
        let fb = cfg.analysis.footprint_block;
        let s = window_series(&report.trace, &report.instrumented.annots, fb, &sizes);
        let full = truth.as_single_sample_trace();
        let f = window_series(&full, &report.instrumented.annots, fb, &sizes);
        let mape = compare_window_series(&f, &s);
        out.yield_factor
            .push((yf, report.trace.mean_window(), mape.f));
    }
}

fn ablate_payload(out: &mut Out, sc: &memgaze_bench::scales::Scales) {
    let mv = MiniViteConfig {
        scale: sc.graph_scale,
        degree: sc.degree,
        iterations: 1,
        variant: MapVariant::V1,
        seed: 42,
        v2_default_capacity: 64,
    };
    for (label, compact) in [("64-bit", false), ("32-bit", true)] {
        let mut cfg = SamplerConfig::application(sc.app_period);
        cfg.compact_payloads = compact;
        let (report, _) = trace_workload("mv", &cfg, |s| minivite::run(s, &mv));
        let bytes = report.stream.packets.generated_bytes(compact);
        // Overhead: copy term scales with bytes.
        let prof = RunProfile {
            instrs: report.phases.iter().map(|p| p.counters.instrs).sum(),
            loads: report.stream.total_loads,
            stores: report.phases.iter().map(|p| p.counters.stores).sum(),
            ptwrites_executed: report.stream.ptwrites_executed,
            ptwrites_enabled: report.stream.ptwrites_enabled,
            bytes_generated: bytes,
        };
        out.payload.push((
            label.to_string(),
            bytes,
            OverheadModel::default().estimate(&prof).overhead(),
        ));
    }
}

fn ablate_trigger(out: &mut Out) {
    // Two-phase stream: dense (1 cycle/load, region A) then sparse
    // (10 cycles/load, region B), equal load counts.
    let n = 200_000u64;
    let feed = |f: &mut dyn FnMut(Ip, u64, u64)| {
        for t in 0..n {
            f(Ip(0x400), 0x10_0000 + (t % 512) * 64, 1);
        }
        for t in 0..n {
            f(Ip(0x404), 0x80_0000 + (t % 512) * 64, 10);
        }
    };
    let frac_slow = |trace: &memgaze_model::SampledTrace| {
        let total = trace.observed_accesses().max(1);
        let b = trace
            .accesses()
            .filter(|a| a.addr.raw() >= 0x80_0000)
            .count() as u64;
        b as f64 / total as f64
    };

    let mut cfg = SamplerConfig::application(20_000);
    cfg.buffer_bytes = 2 << 10;
    let mut tt = TimeStreamSampler::new(cfg.clone());
    let mut lt = StreamSampler::new(SamplerConfig {
        period: 20_000 * 2 / 11,
        ..cfg
    });
    feed(&mut |ip, a, c| tt.on_load(ip, a, true, 1, c));
    feed(&mut |ip, a, _| lt.on_load(ip, a, true, 1));
    let (t_trace, _) = tt.finish("time");
    let (l_trace, _) = lt.finish("loads");
    out.trigger_bias
        .push(("load-based".into(), frac_slow(&l_trace)));
    out.trigger_bias
        .push(("time-based".into(), frac_slow(&t_trace)));
}

fn ablate_strided_suppression(out: &mut Out, sc: &memgaze_bench::scales::Scales) {
    // Measure a strided-heavy workload, then estimate the overhead with
    // 3 of every 4 strided ptwrites suppressed (reconstructable from the
    // stride annotation).
    let mv = MiniViteConfig {
        scale: sc.graph_scale,
        degree: sc.degree,
        iterations: 1,
        variant: MapVariant::V3, // hopscotch: strided probes dominate
        seed: 42,
        v2_default_capacity: 64,
    };
    let cfg = SamplerConfig::application(sc.app_period);
    let (report, _) = trace_workload("mv", &cfg, |s| minivite::run(s, &mv));
    let strided_frac = {
        let total = report.trace.observed_accesses().max(1);
        let strided = report
            .trace
            .accesses()
            .filter(|a| report.annots.class_of(a.ip) == memgaze_model::LoadClass::Strided)
            .count() as u64;
        strided as f64 / total as f64
    };
    let base_prof = RunProfile {
        instrs: report.phases.iter().map(|p| p.counters.instrs).sum(),
        loads: report.stream.total_loads,
        stores: report.phases.iter().map(|p| p.counters.stores).sum(),
        ptwrites_executed: report.stream.ptwrites_executed,
        ptwrites_enabled: report.stream.ptwrites_executed,
        bytes_generated: report.stream.ptwrites_executed * 10,
    };
    let model = OverheadModel::default();
    out.strided_suppression
        .push(("full".into(), model.estimate(&base_prof).overhead()));
    // Suppress 75% of strided ptwrites (and their bytes).
    let kept = |n: u64| -> u64 {
        let strided = (n as f64 * strided_frac) as u64;
        n - strided * 3 / 4
    };
    let mut supp = base_prof;
    supp.ptwrites_executed = kept(base_prof.ptwrites_executed);
    supp.ptwrites_enabled = supp.ptwrites_executed;
    supp.bytes_generated = supp.ptwrites_executed * 10;
    supp.instrs = base_prof.base_instrs() + supp.ptwrites_executed;
    out.strided_suppression
        .push(("strided/4".into(), model.estimate(&supp).overhead()));
}

fn ablate_zoom_threshold(out: &mut Out, sc: &memgaze_bench::scales::Scales) {
    let mv = MiniViteConfig {
        scale: sc.graph_scale,
        degree: sc.degree,
        iterations: 1,
        variant: MapVariant::V2,
        seed: 42,
        v2_default_capacity: 64,
    };
    let cfg = SamplerConfig::application(sc.app_period);
    let (report, _) = trace_workload("mv", &cfg, |s| minivite::run(s, &mv));
    for t in [2.0, 10.0, 40.0] {
        let acfg = AnalysisConfig {
            zoom: ZoomConfig {
                hot_threshold_pct: t,
                ..ZoomConfig::default()
            },
            ..AnalysisConfig::default()
        };
        let analyzer = report.analyzer(acfg);
        let rows = analyzer.region_rows();
        let top_pct = rows.first().map(|r| r.pct_of_total).unwrap_or(0.0);
        out.zoom_threshold.push((t, rows.len(), top_pct));
    }
}

fn main() {
    let sc = scales::from_env();
    let mut out = Out::default();
    ablate_yield(&mut out, &sc);
    ablate_payload(&mut out, &sc);
    ablate_trigger(&mut out);
    ablate_strided_suppression(&mut out, &sc);
    ablate_zoom_threshold(&mut out, &sc);

    let mut t = Table::new("Ablations", &["Knob", "Setting", "Result"]);
    for (yf, w, m) in &out.yield_factor {
        t.push_row(vec![
            "buffer yield".into(),
            format!("{yf:.2}"),
            format!("window {w:.0}, MAPE F {m:.1}%"),
        ]);
    }
    for (mode, bytes, ov) in &out.payload {
        t.push_row(vec![
            "PTW payload".into(),
            mode.clone(),
            format!("{bytes} B generated, overhead {:.0}%", ov * 100.0),
        ]);
    }
    for (mode, frac) in &out.trigger_bias {
        t.push_row(vec![
            "trigger".into(),
            mode.clone(),
            format!("slow-phase sample fraction {frac:.2} (stream is 0.50)"),
        ]);
    }
    for (mode, ov) in &out.strided_suppression {
        t.push_row(vec![
            "strided ptwrites".into(),
            mode.clone(),
            format!("overhead {:.0}%", ov * 100.0),
        ]);
    }
    for (th, leaves, top) in &out.zoom_threshold {
        t.push_row(vec![
            "zoom t%".into(),
            format!("{th:.0}"),
            format!("{leaves} leaves, hottest covers {top:.1}%"),
        ]);
    }
    emit("ablations", &t, &out);
}
