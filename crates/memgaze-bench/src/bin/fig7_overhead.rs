//! Figure 7: time overhead for memory tracing.
//!
//! Per-phase overhead of MemGaze (continuous PT, "suboptimal kernel
//! support") vs. MemGaze-opt (PT enabled only during samples), plus the
//! ptwrite-to-instruction ratio series that predicts the overhead. The
//! paper's bands: continuous typically 10–95% (Darknet 5×–7× from its
//! store rate); opt 10–35%, tracking the ptwrite execution rate.

use memgaze_analysis::{fmt_pct, Table};
use memgaze_bench::{emit, scales};
use memgaze_core::{phase_profiles, trace_workload, PhaseOverhead};
use memgaze_ptsim::{OverheadModel, PtMode, SamplerConfig};
use memgaze_workloads::darknet::{self, Network};
use memgaze_workloads::gap::{self, GapConfig, GapKernel};
use memgaze_workloads::minivite::{self, MapVariant, MiniViteConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Fig7Row {
    benchmark: String,
    phase: String,
    continuous_overhead_pct: f64,
    opt_overhead_pct: f64,
    ptwrite_ratio: f64,
    loads: u64,
}

fn collect(
    name: &str,
    period: u64,
    run: impl FnOnce(&mut memgaze_workloads::TracedSpace<memgaze_core::SamplerRecorder>),
) -> Vec<Fig7Row> {
    // Opt-mode collection measures the true enabled fraction.
    let mut cfg = SamplerConfig::application(period);
    cfg.mode = PtMode::SampleOnly;
    let (report, _) = trace_workload(name, &cfg, |s| run(s));
    let enabled_frac = if report.stream.ptwrites_executed == 0 {
        0.0
    } else {
        report.stream.ptwrites_enabled as f64 / report.stream.ptwrites_executed as f64
    };

    let model = OverheadModel::default();
    let cont = phase_profiles(&report.phases, &model, PtMode::Continuous, 1.0);
    let opt = phase_profiles(&report.phases, &model, PtMode::SampleOnly, enabled_frac);

    cont.iter()
        .zip(&opt)
        .map(|(c, o): (&PhaseOverhead, &PhaseOverhead)| Fig7Row {
            benchmark: name.to_string(),
            phase: c.phase.clone(),
            continuous_overhead_pct: 100.0 * c.overhead,
            opt_overhead_pct: 100.0 * o.overhead,
            ptwrite_ratio: c.ptwrite_ratio,
            loads: c.loads,
        })
        .collect()
}

fn main() {
    let sc = scales::from_env();
    let mut rows: Vec<Fig7Row> = Vec::new();

    for variant in [MapVariant::V1, MapVariant::V2, MapVariant::V3] {
        let mv = MiniViteConfig {
            scale: sc.graph_scale,
            degree: sc.degree,
            iterations: sc.louvain_iters,
            variant,
            seed: 42,
            v2_default_capacity: 64,
        };
        rows.extend(collect(
            &format!("miniVite-{}", variant.label()),
            sc.app_period,
            move |s| {
                minivite::run(s, &mv);
            },
        ));
    }
    for kernel in [
        GapKernel::Pr,
        GapKernel::PrSpmv,
        GapKernel::Cc,
        GapKernel::CcSv,
    ] {
        let cfg = GapConfig {
            scale: sc.graph_scale,
            degree: sc.degree,
            kernel,
            max_iters: sc.pr_iters,
            seed: 9,
        };
        rows.extend(collect(
            &format!("GAP-{}", kernel.label()),
            sc.app_period,
            move |s| {
                gap::run(s, &cfg);
            },
        ));
    }
    for net in [Network::AlexNet, Network::ResNet152] {
        rows.extend(collect(
            &format!("Darknet-{}", net.label()),
            sc.app_period,
            move |s| {
                darknet::run(s, net);
            },
        ));
    }

    let mut table = Table::new(
        "Fig. 7: per-phase tracing overhead — MemGaze (continuous) vs. MemGaze-opt",
        &[
            "Benchmark",
            "Phase",
            "Cont. %",
            "Opt %",
            "ptw ratio",
            "Loads",
        ],
    );
    for r in &rows {
        table.push_row(vec![
            r.benchmark.clone(),
            r.phase.clone(),
            fmt_pct(r.continuous_overhead_pct),
            fmt_pct(r.opt_overhead_pct),
            format!("{:.3}", r.ptwrite_ratio),
            r.loads.to_string(),
        ]);
    }
    emit("fig7_overhead", &table, &rows);

    // Shape summary.
    let darknet_worst = rows
        .iter()
        .filter(|r| r.benchmark.starts_with("Darknet"))
        .map(|r| r.continuous_overhead_pct)
        .fold(0.0f64, f64::max);
    let graph_rows: Vec<&Fig7Row> = rows
        .iter()
        .filter(|r| !r.benchmark.starts_with("Darknet"))
        .collect();
    let graph_worst = graph_rows
        .iter()
        .map(|r| r.continuous_overhead_pct)
        .fold(0.0f64, f64::max);
    println!(
        "continuous: graph benchmarks worst {:.0}% (paper: typically 10–95%); Darknet worst {:.0}% (paper: 5×–7× = 400–600%)",
        graph_worst, darknet_worst
    );
    let opt_max = rows
        .iter()
        .map(|r| r.opt_overhead_pct)
        .fold(0.0f64, f64::max);
    println!("opt: worst {:.0}% (paper: 10–35%)", opt_max);
}
