//! Table II: time overhead of binary instrumentation and analysis.
//!
//! Measures the three toolchain steps on our substrate: 'Instrument'
//! (classify + rewrite a load module; application binaries are emulated
//! by synthetic modules matched to the paper's binary sizes), 'Analysis/1'
//! (trace building: decoding raw packets / building the trace), and
//! 'Analysis/2' (trace analysis: function table, regions, intervals).

use memgaze_analysis::{AnalysisConfig, Table};
use memgaze_bench::{emit, scales, synthetic_module, timed};
use memgaze_core::{trace_workload, MemGaze, PipelineConfig};
use memgaze_instrument::Instrumenter;
use memgaze_ptsim::SamplerConfig;
use memgaze_workloads::darknet::{self, Network};
use memgaze_workloads::gap::{self, GapConfig, GapKernel};
use memgaze_workloads::minivite::{self, MapVariant, MiniViteConfig};
use memgaze_workloads::ubench::{MicroBench, OptLevel};
use serde::Serialize;

#[derive(Serialize)]
struct Table2Row {
    benchmark: String,
    binary_kb: f64,
    instrument_ms: f64,
    analysis1_ms: f64,
    analysis2_ms: f64,
}

fn analyze_ms(report: &memgaze_core::WorkloadReport) -> f64 {
    let (ms, _) = timed(|| {
        let a = report.analyzer(AnalysisConfig::default());
        let _ = a.function_table();
        let _ = a.region_rows();
        let _ = a.interval_rows(8);
    });
    ms
}

fn main() {
    let sc = scales::from_env();
    let mut rows = Vec::new();

    // Microbenchmark: the real IR instrumentation path, all steps.
    {
        let bench = MicroBench::parse("str2|irr", sc.micro_elems, sc.micro_reps, OptLevel::O3)
            .expect("bench");
        let module = bench.module();
        let (instr_ms, inst) = timed(|| Instrumenter::default().instrument(&module));
        let mut cfg = PipelineConfig::microbench();
        cfg.sampler.period = sc.micro_period;
        // Analysis/1 on the IR path is collection+decode.
        let (a1_ms, report) = timed(|| MemGaze::new(cfg.clone()).run_microbench(&bench).unwrap());
        let (a2_ms, _) = timed(|| {
            let a = report.analyzer(cfg.analysis);
            let _ = a.function_table();
            let _ = a.region_rows();
        });
        rows.push(Table2Row {
            benchmark: "ubenchmarks".into(),
            binary_kb: module.binary_size_bytes() as f64 / 1024.0,
            instrument_ms: instr_ms,
            analysis1_ms: a1_ms,
            analysis2_ms: a2_ms,
        });
        let _ = inst;
    }

    // Application binaries: instrumentation time on synthetic modules
    // matched to the paper's binary sizes; Analysis/1 and Analysis/2 on
    // the real workload traces.
    // Paper sizes: miniVite 1900 kB, GAP pr/cc ≈ 100 kB, Darknet 2700 kB.
    let shapes = [
        ("miniVite-O3-v1", 480usize, 60usize),
        ("GAP pr-O3", 24, 60),
        ("GAP cc-O3", 26, 60),
        ("Darknet-AlexNet", 680, 60),
        ("Darknet-ResNet", 680, 60),
    ];
    for (name, procs, loads) in shapes {
        let module = synthetic_module(procs, loads);
        let (instr_ms, _) = timed(|| Instrumenter::default().instrument(&module));

        let sampler = SamplerConfig::application(sc.app_period);
        let (a1_ms, report) = timed(|| match name {
            n if n.starts_with("miniVite") => {
                let mv = MiniViteConfig {
                    scale: sc.graph_scale,
                    degree: sc.degree,
                    iterations: sc.louvain_iters,
                    variant: MapVariant::V1,
                    seed: 42,
                    v2_default_capacity: 64,
                };
                trace_workload(name, &sampler, |s| {
                    minivite::run(s, &mv);
                })
                .0
            }
            n if n.starts_with("GAP") => {
                let kernel = if n.contains("pr") {
                    GapKernel::Pr
                } else {
                    GapKernel::Cc
                };
                let cfg = GapConfig {
                    scale: sc.graph_scale,
                    degree: sc.degree,
                    kernel,
                    max_iters: sc.pr_iters,
                    seed: 9,
                };
                trace_workload(name, &sampler, |s| {
                    gap::run(s, &cfg);
                })
                .0
            }
            _ => {
                let net = if name.contains("ResNet") {
                    Network::ResNet152
                } else {
                    Network::AlexNet
                };
                trace_workload(name, &sampler, |s| {
                    darknet::run(s, net);
                })
                .0
            }
        });
        let a2 = analyze_ms(&report);
        rows.push(Table2Row {
            benchmark: name.into(),
            binary_kb: module.binary_size_bytes() as f64 / 1024.0,
            instrument_ms: instr_ms,
            analysis1_ms: a1_ms,
            analysis2_ms: a2,
        });
    }

    let mut table = Table::new(
        "Table II: toolchain times (Instrument / Analysis-1 trace building / Analysis-2 analysis)",
        &[
            "Benchmark",
            "Binary kB",
            "Instrument ms",
            "Analysis/1 ms",
            "Analysis/2 ms",
        ],
    );
    for r in &rows {
        table.push_row(vec![
            r.benchmark.clone(),
            format!("{:.0}", r.binary_kb),
            format!("{:.1}", r.instrument_ms),
            format!("{:.1}", r.analysis1_ms),
            format!("{:.1}", r.analysis2_ms),
        ]);
    }
    emit("table2_toolchain", &table, &rows);

    // Shape check: instrumentation time grows with binary size.
    let mv = rows
        .iter()
        .find(|r| r.benchmark.starts_with("miniVite"))
        .unwrap();
    let gap = rows
        .iter()
        .find(|r| r.benchmark.starts_with("GAP"))
        .unwrap();
    println!(
        "instrumentation scales with binary size: miniVite ({:.0} kB) {:.1} ms vs GAP ({:.0} kB) {:.1} ms",
        mv.binary_kb, mv.instrument_ms, gap.binary_kb, gap.instrument_ms
    );
}
