//! Tables VI, VII & VIII: the Darknet case study — gemm/im2col locality,
//! reuse of the hot matrices, and locality over time.
//!
//! Paper shapes: gemm dominates footprint (>90%) with F_str% = 100;
//! ResNet-152's footprint dwarfs AlexNet's; reuse distance D rises over
//! time as gemm's N shrinks; ResNet's ΔF declines over time while
//! AlexNet's varies with its heterogeneous layers.

use memgaze_analysis::{fmt_f3, fmt_pct, fmt_si, AnalysisConfig, Table};
use memgaze_bench::{emit, scales};
use memgaze_core::trace_workload;
use memgaze_ptsim::SamplerConfig;
use memgaze_workloads::darknet::{self, Network};
use serde::Serialize;

#[derive(Serialize)]
struct Out {
    table6: Vec<(String, String, f64, f64, f64, f64)>,
    table7: Vec<(String, String, f64, u64, u64, f64)>,
    table8: Vec<(usize, String, f64, f64, f64, f64)>,
}

fn main() {
    let sc = scales::from_env();
    let _ = sc;
    let mut out = Out {
        table6: Vec::new(),
        table7: Vec::new(),
        table8: Vec::new(),
    };

    for net in [Network::AlexNet, Network::ResNet152] {
        let mut sampler = SamplerConfig::application(20_000);
        sampler.seed = 11;
        let (report, _) = trace_workload(&format!("Darknet-{}", net.label()), &sampler, |s| {
            darknet::run(s, net)
        });
        let analyzer = report.analyzer(AnalysisConfig::default());

        for row in analyzer.function_table() {
            if ["gemm", "im2col"].contains(&row.name.as_str()) {
                out.table6.push((
                    row.name.clone(),
                    net.label().into(),
                    row.f_hat_bytes,
                    row.delta_f,
                    row.f_str_pct,
                    row.accesses_decompressed,
                ));
            }
        }

        // Table VII: reuse of the hot matrices (gemm's A/B/C regions and
        // im2col's input region).
        for (label, object) in [
            ("gemm-B", "gemm's B"),
            ("gemm-A", "gemm's A"),
            ("gemm-C", "gemm's C"),
            ("image", "hot region in im2col"),
        ] {
            if let Some((lo, hi)) = report.label_range(label) {
                let row = analyzer.region_row_for(lo, hi);
                if row.accesses > 0 {
                    out.table7.push((
                        object.into(),
                        net.label().into(),
                        row.reuse_d,
                        row.blocks,
                        row.accesses,
                        row.accesses_per_block(),
                    ));
                }
            }
        }

        for row in analyzer.interval_rows(8) {
            out.table8.push((
                row.interval,
                net.label().into(),
                row.f_hat_bytes,
                row.delta_f,
                row.mean_d,
                row.accesses_decompressed,
            ));
        }
    }

    let mut t6 = Table::new(
        "Table VI: Darknet data locality of hot function accesses",
        &["Function", "Model", "F", "dF", "Fstr%", "A"],
    );
    for (f, m, fh, df, fs, a) in &out.table6 {
        t6.push_row(vec![
            f.clone(),
            m.clone(),
            fmt_si(*fh),
            fmt_f3(*df),
            fmt_pct(*fs),
            fmt_si(*a),
        ]);
    }
    let mut t7 = Table::new(
        "Table VII: Darknet spatio-temporal reuse of hot memory (64 B block)",
        &["Object", "Model", "Reuse (D)", "#blocks", "A", "A/block"],
    );
    for (o, m, d, b, a, apb) in &out.table7 {
        t7.push_row(vec![
            o.clone(),
            m.clone(),
            fmt_f3(*d),
            b.to_string(),
            fmt_si(*a as f64),
            fmt_f3(*apb),
        ]);
    }
    let mut t8 = Table::new(
        "Table VIII: Darknet/gemm data locality over time (8 access intervals)",
        &["Interval", "Model", "F", "dF", "D", "A"],
    );
    for (i, m, f, df, d, a) in &out.table8 {
        t8.push_row(vec![
            i.to_string(),
            m.clone(),
            fmt_si(*f),
            fmt_f3(*df),
            fmt_f3(*d),
            fmt_si(*a),
        ]);
    }
    println!("{}", t6.render());
    println!("{}", t7.render());
    emit("table6_7_8_darknet", &t8, &out);

    // Shape summaries.
    let gemm_all_strided = out
        .table6
        .iter()
        .filter(|r| r.0 == "gemm")
        .all(|r| (r.4 - 100.0).abs() < 1e-9);
    println!("gemm F_str% = 100 for both models: {gemm_all_strided}");
    let d_trend = |model: &str| -> (f64, f64) {
        let rows: Vec<&(usize, String, f64, f64, f64, f64)> =
            out.table8.iter().filter(|r| r.1 == model).collect();
        let first: f64 = rows[..4].iter().map(|r| r.4).sum();
        let last: f64 = rows[4..].iter().map(|r| r.4).sum();
        (first, last)
    };
    for m in ["AlexNet", "ResNet152"] {
        let (a, b) = d_trend(m);
        println!(
            "{m}: D rises over time: {:.2} → {:.2} ({})",
            a / 4.0,
            b / 4.0,
            b > a
        );
    }
}
