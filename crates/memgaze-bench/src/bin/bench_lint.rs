//! BENCH_lint: static verification + differential classification check
//! over every generated module.
//!
//! Runs `lint_module` (IR verifier, abstract-interpretation differential
//! against the dataflow classifier, instrumentation-plan checker) on the
//! full O0/O3 microbenchmark suites and a set of synthetic
//! application-shaped modules, and records per-module lint time, the
//! oracle agreement rate, and — the acceptance bar — that there are zero
//! unsound disagreements and zero error-severity diagnostics.

use memgaze_analysis::Table;
use memgaze_bench::{emit, scales, synthetic_module, timed};
use memgaze_instrument::{lint_module, DiffSummary, InstrumentConfig};
use memgaze_isa::codegen::{self, OptLevel};
use memgaze_isa::{LoadModule, Severity};
use serde::Serialize;

#[derive(Serialize)]
struct LintRow {
    module: String,
    loads: u64,
    agree: u64,
    absint_unknown: u64,
    lost_compression: u64,
    unsound: u64,
    errors: usize,
    warnings: usize,
    lint_ms: f64,
}

#[derive(Serialize)]
struct Payload {
    rows: Vec<LintRow>,
    total: DiffSummary,
    agreement_rate: f64,
    total_errors: usize,
    total_warnings: usize,
}

fn modules() -> Vec<(String, LoadModule)> {
    let sc = scales::from_env();
    let mut out = Vec::new();
    for opt in [OptLevel::O0, OptLevel::O3] {
        for spec in codegen::standard_suite(opt, sc.micro_elems, sc.micro_reps) {
            let m = codegen::generate(&spec);
            out.push((m.name.clone(), m));
        }
    }
    for (procs, loads) in [(4usize, 9usize), (16, 12), (64, 9), (256, 12)] {
        let m = synthetic_module(procs, loads);
        out.push((m.name.clone(), m));
    }
    out
}

fn main() {
    let config = InstrumentConfig::default();
    let mut rows = Vec::new();
    let mut total = DiffSummary::default();
    let mut total_errors = 0usize;
    let mut total_warnings = 0usize;

    for (name, module) in modules() {
        let (lint_ms, report) = timed(|| lint_module(&module, &config));
        let errors = report.count(Severity::Error);
        let warnings = report.count(Severity::Warning);
        for d in &report.diagnostics {
            eprintln!("{d}");
        }
        total.merge(&report.differential);
        total_errors += errors;
        total_warnings += warnings;
        let d = report.differential;
        rows.push(LintRow {
            module: name,
            loads: d.loads,
            agree: d.agree,
            absint_unknown: d.absint_unknown,
            lost_compression: d.lost_compression,
            unsound: d.unsound,
            errors,
            warnings,
            lint_ms,
        });
    }

    let mut table = Table::new(
        "BENCH_lint: verifier + differential classification check",
        &[
            "Module", "loads", "agree", "unknown", "lost", "unsound", "err", "warn", "ms",
        ],
    );
    for r in &rows {
        table.push_row(vec![
            r.module.clone(),
            r.loads.to_string(),
            r.agree.to_string(),
            r.absint_unknown.to_string(),
            r.lost_compression.to_string(),
            r.unsound.to_string(),
            r.errors.to_string(),
            r.warnings.to_string(),
            format!("{:.2}", r.lint_ms),
        ]);
    }

    let payload = Payload {
        agreement_rate: total.agreement_rate(),
        total_errors,
        total_warnings,
        total,
        rows,
    };
    emit("BENCH_lint", &table, &payload);
    println!(
        "agreement rate {:.3} over {} loads; {} unsound, {} errors",
        payload.agreement_rate, payload.total.loads, payload.total.unsound, payload.total_errors
    );
    assert_eq!(
        payload.total.unsound, 0,
        "unsound differential disagreement"
    );
    assert_eq!(payload.total_errors, 0, "error-severity lint diagnostics");
}
