//! BENCH_lint: static verification + differential classification check
//! over every generated module.
//!
//! Runs `lint_module` (IR verifier, abstract-interpretation differential
//! against the fused classifier, instrumentation-plan checker) on the
//! full O0/O3 microbenchmark suites, a set of synthetic
//! application-shaped modules, and four absint showcase workloads
//! (spilled IV, nested loops, interprocedural summaries, masked index).
//! Records per-module lint time, the oracle agreement rate, and — the
//! acceptance bars — that there are zero unsound disagreements, zero
//! error-severity diagnostics, and that eliding proven-strided loads
//! measurably shrinks the instrumentation plan.

use memgaze_analysis::Table;
use memgaze_bench::{
    call_graph_module, emit, masked_index_module, nested_loop_module, scales, spilled_iv_module,
    synthetic_module, timed,
};
use memgaze_instrument::{lint_module, InstrPlan, InstrumentConfig, ModuleClassification};
use memgaze_isa::codegen::{self, OptLevel};
use memgaze_isa::{LoadModule, Severity};
use serde::Serialize;

#[derive(Serialize)]
struct LintRow {
    module: String,
    loads: u64,
    agree: u64,
    absint_unknown: u64,
    upgraded: u64,
    lost_compression: u64,
    unsound: u64,
    errors: usize,
    warnings: usize,
    lint_ms: f64,
}

/// Differential totals plus the headline ratio CI gates on.
#[derive(Serialize)]
struct TotalSummary {
    loads: u64,
    agree: u64,
    absint_unknown: u64,
    upgraded: u64,
    lost_compression: u64,
    unsound: u64,
    /// `agree / loads` — the precision ratchet.
    agreement: f64,
}

/// Instrumentation-plan impact of the proven-stride elision, summed over
/// every module: how many loads the baseline plan instruments, how many
/// survive with elision on, and the estimated trace-byte saving (each
/// `ptwrite` packet costs 9 bytes, one per source register).
#[derive(Serialize)]
struct InstrImpact {
    base_instrumented: u64,
    elision_instrumented: u64,
    elided: u64,
    base_trace_bytes: u64,
    elision_trace_bytes: u64,
    /// Fractional trace-byte reduction from elision.
    reduction: f64,
}

#[derive(Serialize)]
struct Payload {
    rows: Vec<LintRow>,
    total: TotalSummary,
    instr: InstrImpact,
    total_errors: usize,
    total_warnings: usize,
}

fn modules() -> Vec<(String, LoadModule)> {
    let sc = scales::from_env();
    let mut out = Vec::new();
    for opt in [OptLevel::O0, OptLevel::O3] {
        for spec in codegen::standard_suite(opt, sc.micro_elems, sc.micro_reps) {
            let m = codegen::generate(&spec);
            out.push((m.name.clone(), m));
        }
    }
    for (procs, loads) in [(4usize, 9usize), (16, 12), (64, 9), (256, 12)] {
        let m = synthetic_module(procs, loads);
        out.push((m.name.clone(), m));
    }
    for m in [
        spilled_iv_module(sc.micro_elems),
        nested_loop_module(64, sc.micro_elems / 64),
        call_graph_module(sc.micro_elems),
        masked_index_module(sc.micro_elems.next_power_of_two()),
    ] {
        out.push((m.name.clone(), m));
    }
    out
}

/// Estimated trace bytes for one plan: 9 bytes per inserted `ptwrite`
/// packet, one packet per source register of each instrumented load.
fn trace_bytes(classification: &ModuleClassification, plan: &InstrPlan) -> u64 {
    plan.iter()
        .filter(|(_, d)| d.instrument)
        .map(|(ip, _)| {
            let cl = classification.get(*ip).expect("classified");
            cl.num_sources as u64 * 9
        })
        .sum()
}

fn main() {
    let config = InstrumentConfig::default();
    let mut rows = Vec::new();
    let mut total = memgaze_instrument::DiffSummary::default();
    let mut total_errors = 0usize;
    let mut total_warnings = 0usize;
    let mut instr = InstrImpact {
        base_instrumented: 0,
        elision_instrumented: 0,
        elided: 0,
        base_trace_bytes: 0,
        elision_trace_bytes: 0,
        reduction: 0.0,
    };

    for (name, module) in modules() {
        let (lint_ms, report) = timed(|| lint_module(&module, &config));
        let errors = report.count(Severity::Error);
        let warnings = report.count(Severity::Warning);
        for d in &report.diagnostics {
            eprintln!("{d}");
        }
        total.merge(&report.differential);
        total_errors += errors;
        total_warnings += warnings;

        let classification = ModuleClassification::analyze(&module);
        let base = InstrPlan::build(&module, &classification, &config);
        let elide = InstrPlan::build(&module, &classification, &InstrumentConfig::eliding());
        instr.base_instrumented += base.num_instrumented();
        instr.elision_instrumented += elide.num_instrumented();
        instr.elided += elide.num_elided();
        instr.base_trace_bytes += trace_bytes(&classification, &base);
        instr.elision_trace_bytes += trace_bytes(&classification, &elide);

        let d = report.differential;
        rows.push(LintRow {
            module: name,
            loads: d.loads,
            agree: d.agree,
            absint_unknown: d.absint_unknown,
            upgraded: d.upgraded,
            lost_compression: d.lost_compression,
            unsound: d.unsound,
            errors,
            warnings,
            lint_ms,
        });
    }
    instr.reduction = if instr.base_trace_bytes == 0 {
        0.0
    } else {
        1.0 - instr.elision_trace_bytes as f64 / instr.base_trace_bytes as f64
    };

    let mut table = Table::new(
        "BENCH_lint: verifier + differential classification check",
        &[
            "Module", "loads", "agree", "unknown", "upgr", "lost", "unsound", "err", "warn", "ms",
        ],
    );
    for r in &rows {
        table.push_row(vec![
            r.module.clone(),
            r.loads.to_string(),
            r.agree.to_string(),
            r.absint_unknown.to_string(),
            r.upgraded.to_string(),
            r.lost_compression.to_string(),
            r.unsound.to_string(),
            r.errors.to_string(),
            r.warnings.to_string(),
            format!("{:.2}", r.lint_ms),
        ]);
    }

    let payload = Payload {
        total: TotalSummary {
            loads: total.loads,
            agree: total.agree,
            absint_unknown: total.absint_unknown,
            upgraded: total.upgraded,
            lost_compression: total.lost_compression,
            unsound: total.unsound,
            agreement: total.agreement_rate(),
        },
        instr,
        total_errors,
        total_warnings,
        rows,
    };
    emit("BENCH_lint", &table, &payload);
    println!(
        "agreement {:.3} over {} loads ({} upgraded); {} unsound, {} errors; \
         elision drops instrumented {} → {} ({:.1}% trace bytes)",
        payload.total.agreement,
        payload.total.loads,
        payload.total.upgraded,
        payload.total.unsound,
        total_errors,
        payload.instr.base_instrumented,
        payload.instr.elision_instrumented,
        payload.instr.reduction * 100.0
    );
    assert_eq!(
        payload.total.unsound, 0,
        "unsound differential disagreement"
    );
    assert_eq!(total_errors, 0, "error-severity lint diagnostics");
}
