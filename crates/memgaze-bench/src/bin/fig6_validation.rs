//! Figure 6: validating sampled footprint access diagnostics.
//!
//! For every microbenchmark, compare metric histograms (F, F_str, F_irr
//! over power-of-2 windows) between sampled and full traces — the paper
//! reports trace-window MAPE < 25% and code-window error < 5%. For the
//! graph benchmarks, validate against 10×-denser sampling, as the paper
//! does (full traces of the graph benchmarks were infeasible).

use memgaze_analysis::{
    compare_window_series, fmt_pct, footprint, pct_error, pow2_sizes, window_series, CodeWindows,
    Table,
};
use memgaze_model::Access;

/// Code-window comparison: mean footprint of fixed-size chunks of a
/// function's accesses, sampled vs. baseline (both measured the same
/// way, so the aggregation over many samples is what reduces the error —
/// paper §IV-B).
fn chunked_footprint(accesses: &[Access], chunk: usize, fb: BlockSize) -> f64 {
    let chunk = chunk.max(4);
    let mut n = 0u64;
    let mut sum = 0.0;
    for c in accesses.chunks(chunk) {
        if c.len() < chunk / 2 {
            continue;
        }
        sum += footprint(c, fb) as f64;
        n += 1;
    }
    if n == 0 {
        f64::NAN
    } else {
        sum / n as f64
    }
}
use memgaze_bench::{emit, scales};
use memgaze_core::{trace_workload, MemGaze, PipelineConfig};
use memgaze_model::{BlockSize, DecompressionInfo};
use memgaze_ptsim::SamplerConfig;
use memgaze_workloads::gap::{self, GapConfig, GapKernel};
use memgaze_workloads::minivite::{self, MapVariant, MiniViteConfig};
use memgaze_workloads::ubench::{suite, MicroBench, OptLevel, UKernelSpec};
use serde::Serialize;

#[derive(Serialize)]
struct Fig6Row {
    bench: String,
    trace_mape_f: f64,
    trace_mape_fstr: f64,
    trace_mape_firr: f64,
    code_err_f: f64,
    windows_compared: u64,
}

/// Microbenchmark validation: sampled vs. perfect full trace.
fn micro_row(bench: &MicroBench, period: u64) -> Fig6Row {
    let mut cfg = PipelineConfig::microbench();
    cfg.sampler.period = period;
    let mg = MemGaze::new(cfg.clone());
    let report = mg.run_microbench(bench).expect("pipeline");
    let truth = mg.microbench_ground_truth(bench).expect("ground truth");

    let sizes = pow2_sizes(4, 9);
    let fb = cfg.analysis.footprint_block;
    let sampled = window_series(&report.trace, &report.instrumented.annots, fb, &sizes);
    let full_trace = truth.as_single_sample_trace();
    let full = window_series(&full_trace, &report.instrumented.annots, fb, &sizes);
    let mape = compare_window_series(&full, &sampled);

    // Code windows: aggregate the kernel's accesses over all samples and
    // compare the mean per-window footprint against the full trace at
    // the same window size.
    let info = DecompressionInfo::from_trace(&report.trace, &report.instrumented.annots);
    let _ = info;
    let cw_s = CodeWindows::build(&report.trace, &report.instrumented.orig_symbols);
    let cw_f = CodeWindows::build(&full_trace, &report.instrumented.orig_symbols);
    let chunk = report.trace.mean_window().max(8.0) as usize;
    let code_err = match (cw_s.function("kernel"), cw_f.function("kernel")) {
        (Some(s), Some(f)) => pct_error(
            chunked_footprint(f, chunk, fb),
            chunked_footprint(s, chunk, fb),
        ),
        _ => f64::NAN,
    };

    Fig6Row {
        bench: bench.name(),
        trace_mape_f: mape.f,
        trace_mape_fstr: mape.f_str,
        trace_mape_firr: mape.f_irr,
        code_err_f: code_err,
        windows_compared: mape.points,
    }
}

/// Graph-benchmark validation: sampled vs. 10×-denser sampling.
fn graph_row(
    name: &str,
    period: u64,
    run: impl Fn(&mut memgaze_workloads::TracedSpace<memgaze_core::SamplerRecorder>),
) -> Fig6Row {
    let sparse_cfg = SamplerConfig::application(period);
    let mut dense_cfg = SamplerConfig::application(period / 10);
    dense_cfg.seed = sparse_cfg.seed + 1;

    let (sparse, _) = trace_workload(name, &sparse_cfg, |s| run(s));
    let (dense, _) = trace_workload(name, &dense_cfg, |s| run(s));

    let sizes = pow2_sizes(4, 8);
    let fb = BlockSize::WORD;
    let s_series = window_series(&sparse.trace, &sparse.annots, fb, &sizes);
    let d_series = window_series(&dense.trace, &dense.annots, fb, &sizes);
    let mape = compare_window_series(&d_series, &s_series);

    // Code windows: compare the hottest function's mean per-window
    // footprint between densities at a matched window size.
    let code_err = {
        let cw_s = CodeWindows::build(&sparse.trace, &sparse.symbols);
        let cw_d = CodeWindows::build(&dense.trace, &dense.symbols);
        let chunk = sparse.trace.mean_window().max(8.0) as usize;
        let hottest = {
            let a_s = sparse.analyzer(Default::default());
            a_s.function_table().first().map(|r| r.name.clone())
        };
        match hottest.and_then(|h| Some((cw_s.function(&h)?, cw_d.function(&h)?))) {
            Some((s, d)) => pct_error(
                chunked_footprint(d, chunk, fb),
                chunked_footprint(s, chunk, fb),
            ),
            None => f64::NAN,
        }
    };

    Fig6Row {
        bench: name.to_string(),
        trace_mape_f: mape.f,
        trace_mape_fstr: mape.f_str,
        trace_mape_firr: mape.f_irr,
        code_err_f: code_err,
        windows_compared: mape.points,
    }
}

fn main() {
    let sc = scales::from_env();
    let mut rows = Vec::new();

    // Microbenchmarks (suite at O3, as Fig. 6's bulk).
    for bench in suite(OptLevel::O3) {
        let bench = MicroBench::new(UKernelSpec {
            elems: sc.micro_elems,
            reps: sc.micro_reps,
            ..bench.spec
        });
        rows.push(micro_row(&bench, sc.micro_period));
    }

    // Graph benchmarks, validated against 10× denser sampling.
    let mv = MiniViteConfig {
        scale: sc.graph_scale,
        degree: sc.degree,
        iterations: sc.louvain_iters,
        variant: MapVariant::V1,
        seed: 42,
        v2_default_capacity: 64,
    };
    rows.push(graph_row("miniVite-O3-v1", sc.app_period, move |s| {
        minivite::run(s, &mv);
    }));
    for kernel in [GapKernel::Pr, GapKernel::Cc] {
        let cfg = GapConfig {
            scale: sc.graph_scale,
            degree: sc.degree,
            kernel,
            max_iters: sc.pr_iters,
            seed: 9,
        };
        rows.push(graph_row(
            &format!("GAP-{}-O3", kernel.label()),
            sc.app_period,
            move |s| {
                gap::run(s, &cfg);
            },
        ));
    }

    let mut table = Table::new(
        "Fig. 6: MAPE of sampled footprint access diagnostics (trace windows) and code-window error",
        &["Benchmark", "MAPE F%", "MAPE Fstr%", "MAPE Firr%", "Code err F%", "Windows"],
    );
    for r in &rows {
        table.push_row(vec![
            r.bench.clone(),
            fmt_pct(r.trace_mape_f),
            fmt_pct(r.trace_mape_fstr),
            fmt_pct(r.trace_mape_firr),
            fmt_pct(r.code_err_f),
            r.windows_compared.to_string(),
        ]);
    }
    emit("fig6_validation", &table, &rows);

    let worst = rows.iter().map(|r| r.trace_mape_f).fold(0.0f64, f64::max);
    println!(
        "worst trace-window footprint MAPE: {:.1}% (paper band: 1–25%)",
        worst
    );
}
