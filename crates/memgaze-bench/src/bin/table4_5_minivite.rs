//! Tables IV & V: the miniVite case study — data locality of hot
//! function accesses and spatio-temporal reuse of hot memory, across the
//! three map variants, plus run times.
//!
//! Paper shapes to reproduce: v1 (chained map) has the worst footprint
//! growth and lowest strided fraction; v2 fixes the access pattern but
//! inflates accesses (resizing + over-allocation); v3 right-sizes and
//! wins; run times order v1 > v2 > v3.

use memgaze_analysis::{fmt_f3, fmt_pct, fmt_si, AnalysisConfig, Table};
use memgaze_bench::{emit, scales};
use memgaze_core::trace_workload;
use memgaze_ptsim::SamplerConfig;
use memgaze_workloads::minivite::{self, MapVariant, MiniViteConfig};
use serde::Serialize;

#[derive(Serialize)]
struct FunctionRowOut {
    function: String,
    variant: String,
    f_hat_bytes: f64,
    delta_f: f64,
    f_str_pct: f64,
    accesses: f64,
}

#[derive(Serialize)]
struct RegionRowOut {
    object: String,
    variant: String,
    reuse_d: f64,
    blocks: u64,
    accesses: u64,
    accesses_per_block: f64,
}

#[derive(Serialize)]
struct Output {
    table4: Vec<FunctionRowOut>,
    table5: Vec<RegionRowOut>,
    runtimes: Vec<(String, u64)>,
}

fn main() {
    let sc = scales::from_env();
    let mut out = Output {
        table4: Vec::new(),
        table5: Vec::new(),
        runtimes: Vec::new(),
    };

    for variant in [MapVariant::V1, MapVariant::V2, MapVariant::V3] {
        let cfg = MiniViteConfig {
            scale: sc.graph_scale,
            degree: sc.degree,
            iterations: sc.louvain_iters,
            variant,
            seed: 42,
            v2_default_capacity: 64,
        };
        let sampler = SamplerConfig::application(sc.app_period);
        let (report, result) = trace_workload(
            &format!("miniVite-O3-{}", variant.label()),
            &sampler,
            |space| minivite::run(space, &cfg),
        );
        out.runtimes
            .push((variant.label().to_string(), result.abstract_cost));

        let analyzer = report.analyzer(AnalysisConfig::default());
        for row in analyzer.function_table() {
            if ["buildMap", "map.insert", "getMax"].contains(&row.name.as_str()) {
                out.table4.push(FunctionRowOut {
                    function: row.name.clone(),
                    variant: variant.label().into(),
                    f_hat_bytes: row.f_hat_bytes,
                    delta_f: row.delta_f,
                    f_str_pct: row.f_str_pct,
                    accesses: row.accesses_decompressed,
                });
            }
        }
        for (label, object) in [
            ("map", "map (hash table)"),
            ("csr-targets", "remote edges of local vertices"),
            ("communities", "other objs in buildMap"),
        ] {
            if let Some((lo, hi)) = report.label_range(label) {
                let row = analyzer.region_row_for(lo, hi);
                out.table5.push(RegionRowOut {
                    object: object.into(),
                    variant: variant.label().into(),
                    reuse_d: row.reuse_d,
                    blocks: row.blocks,
                    accesses: row.accesses,
                    accesses_per_block: row.accesses_per_block(),
                });
            }
        }
    }

    let mut t4 = Table::new(
        "Table IV: miniVite/-O3 data locality of hot function accesses",
        &["Function", "Variant", "F", "dF", "Fstr%", "A"],
    );
    for r in &out.table4 {
        t4.push_row(vec![
            r.function.clone(),
            r.variant.clone(),
            fmt_si(r.f_hat_bytes),
            fmt_f3(r.delta_f),
            fmt_pct(r.f_str_pct),
            fmt_si(r.accesses),
        ]);
    }
    let mut t5 = Table::new(
        "Table V: miniVite/-O3 spatio-temporal reuse of hot memory (64 B block)",
        &["Object", "Variant", "Reuse (D)", "#blocks", "A", "A/block"],
    );
    for r in &out.table5 {
        t5.push_row(vec![
            r.object.clone(),
            r.variant.clone(),
            fmt_f3(r.reuse_d),
            r.blocks.to_string(),
            fmt_si(r.accesses as f64),
            fmt_f3(r.accesses_per_block),
        ]);
    }
    println!("{}", t4.render());
    emit("table4_5_minivite", &t5, &out);

    println!("Run times (abstract cost):");
    for (v, c) in &out.runtimes {
        println!("  {v}: {}", fmt_si(*c as f64));
    }

    // Shape assertions (reported, not panicking, so partial data still
    // prints).
    let df = |v: &str| -> Option<f64> {
        out.table4
            .iter()
            .find(|r| r.function == "map.insert" && r.variant == v)
            .map(|r| r.f_str_pct)
    };
    if let (Some(v1), Some(v2)) = (df("v1"), df("v2")) {
        println!(
            "map.insert Fstr%: v1 {:.1} vs v2 {:.1} (paper: 73.3 vs 93.7 — v2 higher)",
            v1, v2
        );
    }
    println!(
        "runtime ordering v1 > v2 > v3: {}",
        out.runtimes[0].1 > out.runtimes[1].1 && out.runtimes[1].1 >= out.runtimes[2].1
    );
}
