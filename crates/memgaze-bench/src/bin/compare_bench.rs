//! Diff two bench JSONs (`experiments/BENCH_*.json`) as ratio deltas,
//! or gate one file against a threshold for CI.
//!
//! ```text
//! compare_bench OLD.json NEW.json
//! compare_bench --check 'variants.*.overhead_vs_resident<=1.5' FILE.json
//! ```
//!
//! Diff mode flattens every numeric field into a dotted path
//! (`variants.0.wall_speedup`) and prints old, new, and new/old for the
//! paths present in both files — the quickest way to see which stage a
//! perf change actually moved. Check mode evaluates `path<=bound` /
//! `path>=bound` expressions (a `*` segment matches any array index or
//! key) and exits nonzero when a matched value violates the bound, so a
//! perf-smoke job fails loudly instead of archiving a regression.
//!
//! The parser handles exactly the JSON subset our `emit` writes
//! (objects, arrays, strings, numbers, bools, null); it is not a
//! general-purpose JSON reader. Host-identity fields (`host_cpus`,
//! `memgaze_threads`) are compared too: a ratio between runs on
//! different hosts is flagged rather than silently reported.

use std::process::ExitCode;

/// One numeric leaf of a bench JSON: dotted path and value.
#[derive(Debug, Clone)]
struct Leaf {
    path: String,
    value: f64,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [flag, expr, file] if flag == "--check" => run_check(expr, file),
        [old, new] => run_diff(old, new),
        _ => {
            eprintln!(
                "usage: compare_bench OLD.json NEW.json\n       \
                 compare_bench --check 'PATH<=BOUND' FILE.json"
            );
            ExitCode::from(2)
        }
    }
}

fn load_leaves(path: &str) -> Result<Vec<Leaf>, String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let mut leaves = Vec::new();
    let mut p = Parser {
        bytes: body.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.value("", &mut leaves)
        .map_err(|e| format!("parse {path}: {e}"))?;
    Ok(leaves)
}

fn run_diff(old_path: &str, new_path: &str) -> ExitCode {
    let (old, new) = match (load_leaves(old_path), load_leaves(new_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("compare_bench: {e}");
            return ExitCode::FAILURE;
        }
    };
    for host_key in ["host_cpus", "memgaze_threads"] {
        let a = old.iter().find(|l| l.path == host_key).map(|l| l.value);
        let b = new.iter().find(|l| l.path == host_key).map(|l| l.value);
        if a != b {
            println!(
                "warning: {host_key} differs ({} vs {}) — ratios below compare different hosts",
                a.map_or("absent".into(), |v| v.to_string()),
                b.map_or("absent".into(), |v| v.to_string()),
            );
        }
    }
    let width = old
        .iter()
        .map(|l| l.path.len())
        .chain(["path".len()])
        .max()
        .unwrap_or(4);
    println!(
        "{:width$}  {:>12}  {:>12}  {:>8}",
        "path", "old", "new", "new/old"
    );
    let mut missing = 0usize;
    for l in &old {
        let Some(n) = new.iter().find(|m| m.path == l.path) else {
            missing += 1;
            continue;
        };
        let ratio = if l.value == 0.0 {
            if n.value == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            n.value / l.value
        };
        let marker = if !(0.99..=1.01).contains(&ratio) {
            " *"
        } else {
            ""
        };
        println!(
            "{:width$}  {:>12.4}  {:>12.4}  {:>7.3}x{marker}",
            l.path, l.value, n.value, ratio
        );
    }
    let added = new
        .iter()
        .filter(|m| old.iter().all(|l| l.path != m.path))
        .count();
    if missing + added > 0 {
        println!("({missing} paths only in old, {added} only in new)");
    }
    ExitCode::SUCCESS
}

fn run_check(expr: &str, file: &str) -> ExitCode {
    let (path_pat, op, bound) = match parse_check(expr) {
        Some(t) => t,
        None => {
            eprintln!(
                "compare_bench: bad check expression {expr:?} (want PATH<=BOUND or PATH>=BOUND)"
            );
            return ExitCode::from(2);
        }
    };
    let leaves = match load_leaves(file) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("compare_bench: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut matched = 0usize;
    let mut violations = 0usize;
    for l in &leaves {
        if !path_matches(path_pat, &l.path) {
            continue;
        }
        matched += 1;
        let ok = match op {
            "<=" => l.value <= bound,
            _ => l.value >= bound,
        };
        if ok {
            println!("ok   {} = {} ({op} {bound})", l.path, l.value);
        } else {
            println!("FAIL {} = {} (violates {op} {bound})", l.path, l.value);
            violations += 1;
        }
    }
    if matched == 0 {
        eprintln!("compare_bench: no numeric field matches {path_pat:?} in {file}");
        return ExitCode::FAILURE;
    }
    if violations > 0 {
        eprintln!("compare_bench: {violations}/{matched} checked values out of bounds");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn parse_check(expr: &str) -> Option<(&str, &'static str, f64)> {
    for op in ["<=", ">="] {
        if let Some((p, b)) = expr.split_once(op) {
            return Some((
                p.trim(),
                if op == "<=" { "<=" } else { ">=" },
                b.trim().parse().ok()?,
            ));
        }
    }
    None
}

/// Match a dotted path against a pattern where `*` matches one segment.
fn path_matches(pattern: &str, path: &str) -> bool {
    let ps: Vec<&str> = pattern.split('.').collect();
    let ls: Vec<&str> = path.split('.').collect();
    ps.len() == ls.len() && ps.iter().zip(&ls).all(|(p, l)| *p == "*" || p == l)
}

/// Minimal recursive-descent reader for the JSON subset `emit` writes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self, path: &str, out: &mut Vec<Leaf>) -> Result<(), String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(path, out),
            Some(b'[') => self.array(path, out),
            Some(b'"') => {
                self.string()?;
                Ok(())
            }
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(_) => {
                let v = self.number()?;
                out.push(Leaf {
                    path: path.to_string(),
                    value: v,
                });
                Ok(())
            }
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self, path: &str, out: &mut Vec<Leaf>) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let child = if path.is_empty() {
                key
            } else {
                format!("{path}.{key}")
            };
            self.value(&child, out)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self, path: &str, out: &mut Vec<Leaf>) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        let mut i = 0usize;
        loop {
            let child = format!("{path}.{i}");
            self.value(&child, out)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                    i += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    match esc {
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        // Keep the raw escape; keys we match on are ASCII.
                        b'u' => s.push_str("\\u"),
                        other => s.push(other as char),
                    }
                    self.pos += 1;
                }
                Some(b) => {
                    s.push(b as char);
                    self.pos += 1;
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<f64, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }
}
