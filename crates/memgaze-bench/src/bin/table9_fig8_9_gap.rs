//! Table IX, Fig. 8 & Fig. 9: the GAP case study — spatio-temporal reuse
//! of hot memory for PageRank (pr vs. pr-spmv) and Connected Components
//! (cc vs. cc-sv), heatmap distributions, and locality of hot access
//! intervals.
//!
//! Paper shapes: pr's D on `o-score` beats pr-spmv's; cc has *higher*
//! average D than cc-sv (outlier-driven) yet runs much faster; the Fig. 8
//! heatmaps show cc with fewer/smaller dark access bands; Fig. 9 plots
//! intra-sample locality vs. interval size.

use memgaze_analysis::{fmt_f3, fmt_si, AnalysisConfig, Table};
use memgaze_bench::{emit, scales};
use memgaze_core::trace_workload;
use memgaze_ptsim::SamplerConfig;
use memgaze_workloads::gap::{self, GapConfig, GapKernel};
use serde::Serialize;

#[derive(Serialize)]
struct Table9Row {
    object: String,
    algorithm: String,
    reuse_d: f64,
    max_d: u64,
    accesses: u64,
    accesses_per_block: f64,
    time_cost: u64,
}

#[derive(Serialize)]
struct Fig8Out {
    algorithm: String,
    access_dark_cells_50: usize,
    reuse_dark_cells_50: usize,
    access_total: f64,
}

#[derive(Serialize)]
struct Fig9Point {
    algorithm: String,
    interval: u64,
    mean_d: f64,
    mean_delta_f: f64,
}

#[derive(Serialize)]
struct Out {
    table9: Vec<Table9Row>,
    fig8: Vec<Fig8Out>,
    fig9: Vec<Fig9Point>,
}

fn main() {
    let sc = scales::from_env();
    let mut out = Out {
        table9: Vec::new(),
        fig8: Vec::new(),
        fig9: Vec::new(),
    };

    for kernel in [
        GapKernel::Pr,
        GapKernel::PrSpmv,
        GapKernel::Cc,
        GapKernel::CcSv,
    ] {
        let cfg = GapConfig {
            scale: sc.graph_scale,
            degree: sc.degree,
            kernel,
            max_iters: sc.pr_iters,
            seed: 9,
        };
        let sampler = SamplerConfig::application(sc.app_period / 4);
        let (report, result) = trace_workload(&format!("GAP-{}", kernel.label()), &sampler, |s| {
            gap::run(s, &cfg)
        });
        let analyzer = report.analyzer(AnalysisConfig::default());

        let object = match kernel {
            GapKernel::Pr | GapKernel::PrSpmv => "o-score",
            GapKernel::Cc | GapKernel::CcSv => "cc",
        };
        if let Some((lo, hi)) = report.label_range(object) {
            let row = analyzer.region_row_for(lo, hi);
            out.table9.push(Table9Row {
                object: object.into(),
                algorithm: kernel.label().into(),
                reuse_d: row.reuse_d,
                max_d: row.max_d,
                accesses: row.accesses,
                accesses_per_block: row.accesses_per_block(),
                time_cost: result.abstract_cost,
            });

            // Fig. 8: heatmaps of the hot object for the CC variants.
            if matches!(kernel, GapKernel::Cc | GapKernel::CcSv) {
                let (acc, d) = analyzer.heatmaps((lo, hi), 24, 48);
                println!("Fig. 8 — {} access heatmap:", kernel.label());
                print!("{}", acc.render_ascii());
                out.fig8.push(Fig8Out {
                    algorithm: kernel.label().into(),
                    access_dark_cells_50: acc.dark_cells(0.5),
                    reuse_dark_cells_50: d.dark_cells(0.5),
                    access_total: acc.total(),
                });
            }
        }

        // Fig. 9: intra-sample locality vs. interval size.
        for p in analyzer.locality_series(&[16, 32, 64, 128, 256]) {
            out.fig9.push(Fig9Point {
                algorithm: kernel.label().into(),
                interval: p.interval,
                mean_d: p.mean_d,
                mean_delta_f: p.mean_delta_f,
            });
        }
    }

    let mut t9 = Table::new(
        "Table IX: GAP spatio-temporal reuse of hot memory (64 B block)",
        &[
            "Object",
            "Algorithm",
            "Reuse (D)",
            "Max D",
            "A",
            "A/block",
            "Time",
        ],
    );
    for r in &out.table9 {
        t9.push_row(vec![
            r.object.clone(),
            r.algorithm.clone(),
            fmt_f3(r.reuse_d),
            r.max_d.to_string(),
            fmt_si(r.accesses as f64),
            fmt_f3(r.accesses_per_block),
            fmt_si(r.time_cost as f64),
        ]);
    }
    let mut t_fig9 = Table::new(
        "Fig. 9: data locality of hot access intervals (intra-sample)",
        &["Algorithm", "Interval", "mean D", "mean dF"],
    );
    for p in &out.fig9 {
        t_fig9.push_row(vec![
            p.algorithm.clone(),
            p.interval.to_string(),
            fmt_f3(p.mean_d),
            fmt_f3(p.mean_delta_f),
        ]);
    }
    println!("{}", t_fig9.render());
    emit("table9_fig8_9_gap", &t9, &out);

    // Shape summaries.
    let d_of = |alg: &str| {
        out.table9
            .iter()
            .find(|r| r.algorithm == alg)
            .map(|r| r.reuse_d)
    };
    if let (Some(pr), Some(spmv)) = (d_of("pr"), d_of("pr-spmv")) {
        println!(
            "pr D {:.2} < pr-spmv D {:.2}: {} (paper: 1.13 < 2.41)",
            pr,
            spmv,
            pr < spmv
        );
    }
    let t_of = |alg: &str| {
        out.table9
            .iter()
            .find(|r| r.algorithm == alg)
            .map(|r| r.time_cost)
    };
    if let (Some(cc), Some(sv)) = (t_of("cc"), t_of("cc-sv")) {
        println!(
            "cc time {} << cc-sv time {}: {} (paper: 2.7 s vs 45.5 s)",
            cc,
            sv,
            cc < sv
        );
    }
    if out.fig8.len() == 2 {
        println!(
            "Fig. 8: cc dark access cells {} vs cc-sv {} (paper: cc has fewer/smaller dark bands)",
            out.fig8[0].access_dark_cells_50, out.fig8[1].access_dark_cells_50
        );
    }
}
