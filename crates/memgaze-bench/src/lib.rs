//! Shared machinery for the paper-experiment binaries and Criterion
//! benches.
//!
//! Every table and figure of the paper's evaluation (§VI–§VII) has a
//! binary under `src/bin/` that regenerates it on the simulated
//! substrate; this library holds the common workload scales, the
//! experiment output format (rendered table + machine-readable JSON under
//! `experiments/`), and a synthetic-module generator used to reproduce
//! the instrumentation-time-vs-binary-size curve of Table II.

use memgaze_analysis::Table;
use memgaze_isa::builder::{ModuleBuilder, ProcBuilder};
use memgaze_isa::{AddrMode, CmpOp, LoadModule, Operand, Reg};
use serde::Serialize;
use std::io::Write as _;
use std::path::PathBuf;

pub mod scales {
    //! Workload scales for the experiment binaries.
    //!
    //! `MEMGAZE_SCALE=small` shrinks everything for smoke runs; the
    //! default is sized so each binary completes in well under a minute.

    /// Experiment scale knobs.
    #[derive(Debug, Clone, Copy)]
    pub struct Scales {
        /// Microbenchmark array elements.
        pub micro_elems: u32,
        /// Microbenchmark repetitions.
        pub micro_reps: u32,
        /// Graph scale (2^scale vertices) for miniVite/GAP.
        pub graph_scale: u32,
        /// Graph average degree.
        pub degree: usize,
        /// miniVite Louvain iterations.
        pub louvain_iters: usize,
        /// PageRank iteration budget.
        pub pr_iters: usize,
        /// Application sampling period (loads).
        pub app_period: u64,
        /// Microbenchmark sampling period (loads).
        pub micro_period: u64,
    }

    /// Resolve from the `MEMGAZE_SCALE` environment variable.
    pub fn from_env() -> Scales {
        match std::env::var("MEMGAZE_SCALE").as_deref() {
            Ok("small") => Scales {
                micro_elems: 1024,
                micro_reps: 10,
                graph_scale: 8,
                degree: 6,
                louvain_iters: 1,
                pr_iters: 6,
                app_period: 10_000,
                micro_period: 5_000,
            },
            Ok("large") => Scales {
                micro_elems: 8192,
                micro_reps: 100,
                graph_scale: 13,
                degree: 12,
                louvain_iters: 3,
                pr_iters: 12,
                app_period: 200_000,
                micro_period: 10_000,
            },
            _ => Scales {
                micro_elems: 4096,
                micro_reps: 50,
                graph_scale: 10,
                degree: 8,
                louvain_iters: 2,
                pr_iters: 9,
                app_period: 50_000,
                micro_period: 10_000,
            },
        }
    }
}

/// Where experiment JSON lands.
pub fn experiments_dir() -> PathBuf {
    let dir = std::env::var("MEMGAZE_EXPERIMENTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("experiments"));
    std::fs::create_dir_all(&dir).expect("create experiments dir");
    dir
}

/// Print a rendered table and persist the machine-readable payload as
/// `experiments/<id>.json`.
pub fn emit<T: Serialize>(id: &str, table: &Table, payload: &T) {
    println!("{}", table.render());
    let path = experiments_dir().join(format!("{id}.json"));
    let json = serde_json::to_string_pretty(payload).expect("serialize experiment");
    let mut f = std::fs::File::create(&path).expect("create experiment file");
    f.write_all(json.as_bytes()).expect("write experiment file");
    println!("[experiment data → {}]\n", path.display());
}

/// A synthetic load module with `procs` procedures of `loads_per_proc`
/// mixed-class loads each — used to reproduce Table II's
/// instrumentation-time-vs-binary-size behaviour at application binary
/// sizes (miniVite ≈ 1.9 MB vs GAP ≈ 100 kB).
pub fn synthetic_module(procs: usize, loads_per_proc: usize) -> LoadModule {
    let mut mb = ModuleBuilder::new(format!("synthetic-{procs}x{loads_per_proc}"));
    let base = mb.alloc_global("data", 512);
    for p in 0..procs {
        let mut pb = ProcBuilder::new(format!("f{p}"), "synth.c");
        let body = pb.new_block();
        let exit = pb.new_block();
        let (i, a, x) = (Reg::gp(0), Reg::gp(1), Reg::gp(2));
        pb.mov_imm(i, 0).mov_imm(a, base as i64);
        pb.jmp(body);
        pb.switch_to(body);
        for l in 0..loads_per_proc {
            match l % 3 {
                0 => {
                    // Strided.
                    pb.load(x, AddrMode::base_index(a, i, 8, (l as i64) * 8));
                }
                1 => {
                    // Irregular (through the loaded value).
                    pb.load(x, AddrMode::base_disp(x, 0));
                }
                _ => {
                    // Constant frame load.
                    pb.load(x, AddrMode::base_disp(Reg::FP, -8 - (l as i64)));
                }
            }
        }
        pb.add_imm(i, 1);
        pb.br(i, CmpOp::Lt, Operand::Imm(4), body, exit);
        pb.switch_to(exit);
        pb.ret();
        mb.add(pb);
    }
    mb.finish()
}

/// Milliseconds elapsed running `f`, plus its result.
pub fn timed<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = std::time::Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64() * 1e3, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memgaze_instrument::Instrumenter;

    #[test]
    fn synthetic_module_scales_with_inputs() {
        let small = synthetic_module(4, 9);
        let big = synthetic_module(40, 9);
        assert!(big.num_instrs() > 5 * small.num_instrs());
        assert!(big.binary_size_bytes() > small.binary_size_bytes());
        small.validate().unwrap();
        // The instrumentor accepts it and finds all three classes.
        let out = Instrumenter::default().instrument(&small);
        assert!(out.stats.constant_loads > 0);
        assert!(out.stats.strided_loads > 0);
        assert!(out.stats.irregular_loads > 0);
    }

    #[test]
    fn timed_returns_result() {
        let (ms, v) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(ms >= 0.0);
    }

    #[test]
    fn scales_resolve() {
        let s = scales::from_env();
        assert!(s.micro_elems > 0 && s.graph_scale > 0);
    }
}
