//! Shared machinery for the paper-experiment binaries and Criterion
//! benches.
//!
//! Every table and figure of the paper's evaluation (§VI–§VII) has a
//! binary under `src/bin/` that regenerates it on the simulated
//! substrate; this library holds the common workload scales, the
//! experiment output format (rendered table + machine-readable JSON under
//! `experiments/`), and a synthetic-module generator used to reproduce
//! the instrumentation-time-vs-binary-size curve of Table II.

use memgaze_analysis::Table;
use memgaze_isa::builder::{ModuleBuilder, ProcBuilder};
use memgaze_isa::{AddrMode, BinOp, CmpOp, LoadModule, Operand, Reg};
use serde::Serialize;
use std::io::Write as _;
use std::path::PathBuf;

pub mod scales {
    //! Workload scales for the experiment binaries.
    //!
    //! `MEMGAZE_SCALE=small` shrinks everything for smoke runs; the
    //! default is sized so each binary completes in well under a minute.

    /// Experiment scale knobs.
    #[derive(Debug, Clone, Copy)]
    pub struct Scales {
        /// Microbenchmark array elements.
        pub micro_elems: u32,
        /// Microbenchmark repetitions.
        pub micro_reps: u32,
        /// Graph scale (2^scale vertices) for miniVite/GAP.
        pub graph_scale: u32,
        /// Graph average degree.
        pub degree: usize,
        /// miniVite Louvain iterations.
        pub louvain_iters: usize,
        /// PageRank iteration budget.
        pub pr_iters: usize,
        /// Application sampling period (loads).
        pub app_period: u64,
        /// Microbenchmark sampling period (loads).
        pub micro_period: u64,
    }

    /// Resolve from the `MEMGAZE_SCALE` environment variable.
    pub fn from_env() -> Scales {
        match std::env::var("MEMGAZE_SCALE").as_deref() {
            Ok("small") => Scales {
                micro_elems: 1024,
                micro_reps: 10,
                graph_scale: 8,
                degree: 6,
                louvain_iters: 1,
                pr_iters: 6,
                app_period: 10_000,
                micro_period: 5_000,
            },
            Ok("large") => Scales {
                micro_elems: 8192,
                micro_reps: 100,
                graph_scale: 13,
                degree: 12,
                louvain_iters: 3,
                pr_iters: 12,
                app_period: 200_000,
                micro_period: 10_000,
            },
            _ => Scales {
                micro_elems: 4096,
                micro_reps: 50,
                graph_scale: 10,
                degree: 8,
                louvain_iters: 2,
                pr_iters: 9,
                app_period: 50_000,
                micro_period: 10_000,
            },
        }
    }
}

/// Where experiment JSON lands.
pub fn experiments_dir() -> PathBuf {
    let dir = std::env::var("MEMGAZE_EXPERIMENTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("experiments"));
    std::fs::create_dir_all(&dir).expect("create experiments dir");
    dir
}

/// Print a rendered table and persist the machine-readable payload as
/// `experiments/<id>.json`.
pub fn emit<T: Serialize>(id: &str, table: &Table, payload: &T) {
    println!("{}", table.render());
    let path = experiments_dir().join(format!("{id}.json"));
    let json =
        with_host_fields(serde_json::to_string_pretty(payload).expect("serialize experiment"));
    let mut f = std::fs::File::create(&path).expect("create experiment file");
    f.write_all(json.as_bytes()).expect("write experiment file");
    println!("[experiment data → {}]\n", path.display());
}

/// Prepend the host facts every bench JSON must carry — core count and
/// the effective `MEMGAZE_THREADS` resolution — to a serialized
/// top-level JSON object. Timings are only comparable between two runs
/// when these match, so [`emit`] injects them unconditionally.
fn with_host_fields(body: String) -> String {
    let Some(rest) = body.strip_prefix('{') else {
        return body; // non-object payload: nothing to annotate
    };
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = memgaze_analysis::par::default_threads();
    let sep = if rest.trim_start().starts_with('}') {
        ""
    } else {
        ","
    };
    format!("{{\n  \"host_cpus\": {cpus},\n  \"memgaze_threads\": {threads}{sep}{rest}")
}

/// One span name's share of an attribution pass (see
/// [`span_breakdown`]), in milliseconds.
#[derive(Debug, Clone, Serialize)]
pub struct SpanShare {
    /// Span name as recorded by the instrumented stage.
    pub span: String,
    /// Spans recorded under this name.
    pub count: u64,
    /// Total wall-clock inside these spans, children included.
    pub inclusive_ms: f64,
    /// Wall-clock inside these spans minus their direct children — the
    /// stage's *own* cost, which is what an optimization moves.
    pub exclusive_ms: f64,
}

/// Run `f` once with in-memory observability capture on and return its
/// result plus the per-span-name timing breakdown, sorted by exclusive
/// time descending. Benches use this for an **untimed** attribution
/// pass — capture overhead stays out of the measured iterations, while
/// the emitted JSON still records where each pipeline stage spends its
/// time.
pub fn span_breakdown<T>(f: impl FnOnce() -> T) -> (T, Vec<SpanShare>) {
    memgaze_obs::configure(memgaze_obs::ObsConfig {
        capture: true,
        ..memgaze_obs::ObsConfig::disabled()
    });
    let out = f();
    let events = memgaze_obs::take_capture();
    memgaze_obs::configure(memgaze_obs::ObsConfig::disabled());
    let mut shares: Vec<SpanShare> = memgaze_obs::exclusive_by_name(&events)
        .into_iter()
        .map(|(span, agg)| SpanShare {
            span,
            count: agg.count,
            inclusive_ms: agg.incl_us as f64 / 1000.0,
            exclusive_ms: agg.excl_us as f64 / 1000.0,
        })
        .collect();
    shares.sort_by(|a, b| {
        b.exclusive_ms
            .partial_cmp(&a.exclusive_ms)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    (out, shares)
}

/// A synthetic load module with `procs` procedures of `loads_per_proc`
/// mixed-class loads each — used to reproduce Table II's
/// instrumentation-time-vs-binary-size behaviour at application binary
/// sizes (miniVite ≈ 1.9 MB vs GAP ≈ 100 kB).
pub fn synthetic_module(procs: usize, loads_per_proc: usize) -> LoadModule {
    let mut mb = ModuleBuilder::new(format!("synthetic-{procs}x{loads_per_proc}"));
    let base = mb.alloc_global("data", 512);
    for p in 0..procs {
        let mut pb = ProcBuilder::new(format!("f{p}"), "synth.c");
        let body = pb.new_block();
        let exit = pb.new_block();
        let (i, a, x) = (Reg::gp(0), Reg::gp(1), Reg::gp(2));
        pb.mov_imm(i, 0).mov_imm(a, base as i64);
        pb.jmp(body);
        pb.switch_to(body);
        for l in 0..loads_per_proc {
            match l % 3 {
                0 => {
                    // Strided.
                    pb.load(x, AddrMode::base_index(a, i, 8, (l as i64) * 8));
                }
                1 => {
                    // Irregular (through the loaded value).
                    pb.load(x, AddrMode::base_disp(x, 0));
                }
                _ => {
                    // Constant frame load.
                    pb.load(x, AddrMode::base_disp(Reg::FP, -8 - (l as i64)));
                }
            }
        }
        pb.add_imm(i, 1);
        pb.br(i, CmpOp::Lt, Operand::Imm(4), body, exit);
        pb.switch_to(exit);
        pb.ret();
        mb.add(pb);
    }
    mb.finish()
}

/// A loop whose induction variable lives in a stack slot (unoptimized
/// spill): `t ← load [FP-8]; load [a + t*8]; t += 1; store t, [FP-8]`.
/// Dataflow sees two defs of `t` and gives up; store→load forwarding in
/// the abstract interpreter proves the data load strides by 8.
pub fn spilled_iv_module(elems: u32) -> LoadModule {
    let mut mb = ModuleBuilder::new("spill-iv");
    let base = mb.alloc_global("arr", elems as usize);
    let mut pb = ProcBuilder::new("kernel", "spill.c");
    let body = pb.new_block();
    let exit = pb.new_block();
    let (a, t, x) = (Reg::gp(1), Reg::gp(5), Reg::gp(4));
    pb.mov_imm(a, base as i64).mov_imm(t, 0);
    pb.store(t, AddrMode::base_disp(Reg::FP, -8));
    pb.jmp(body);
    pb.switch_to(body);
    pb.load(t, AddrMode::base_disp(Reg::FP, -8));
    pb.load(x, AddrMode::base_index(a, t, 8, 0));
    pb.add_imm(t, 1);
    pb.store(t, AddrMode::base_disp(Reg::FP, -8));
    pb.br(t, CmpOp::Lt, Operand::Imm(elems as i64), body, exit);
    pb.switch_to(exit);
    pb.ret();
    mb.add(pb);
    mb.finish()
}

/// A row-major 2-D sweep: the outer loop recomputes the row base
/// `a = base + k·cols·8`, the inner loop strides through it. Exercises
/// the nest-aware proof (`outer_stride`) of the abstract interpreter.
pub fn nested_loop_module(rows: u32, cols: u32) -> LoadModule {
    let mut mb = ModuleBuilder::new("nest");
    let base = mb.alloc_global("grid", (rows * cols) as usize);
    let mut pb = ProcBuilder::new("kernel", "nest.c");
    let outer = pb.new_block();
    let inner = pb.new_block();
    let latch = pb.new_block();
    let exit = pb.new_block();
    let (k, j, a, x) = (Reg::gp(6), Reg::gp(7), Reg::gp(1), Reg::gp(4));
    pb.mov_imm(k, 0);
    pb.jmp(outer);
    pb.switch_to(outer);
    pb.mov(a, k);
    pb.bin(BinOp::Mul, a, Operand::Imm(cols as i64 * 8));
    pb.bin(BinOp::Add, a, Operand::Imm(base as i64));
    pb.mov_imm(j, 0);
    pb.jmp(inner);
    pb.switch_to(inner);
    pb.load(x, AddrMode::base_index(a, j, 8, 0));
    pb.add_imm(j, 1);
    pb.br(j, CmpOp::Lt, Operand::Imm(cols as i64), inner, latch);
    pb.switch_to(latch);
    pb.add_imm(k, 1);
    pb.br(k, CmpOp::Lt, Operand::Imm(rows as i64), outer, exit);
    pb.switch_to(exit);
    pb.ret();
    mb.add(pb);
    mb.finish()
}

/// A two-procedure module exercising interprocedural summaries: a pure
/// leaf dereferences an argument pointer in a loop (every call site
/// passes the same global scalar, so the address resolves to a data
/// Constant), and the caller keeps its array pointer in a scratch
/// register across the call — sound only because the summary proves the
/// leaf does not clobber it.
pub fn call_graph_module(elems: u32) -> LoadModule {
    let mut mb = ModuleBuilder::new("callsum");
    let scalar = mb.alloc_global("g", 1);
    let arr = mb.alloc_global("arr", elems as usize);

    let mut leaf = ProcBuilder::new("leaf", "call.c");
    let lbody = leaf.new_block();
    let lexit = leaf.new_block();
    let (lx, ln) = (Reg::gp(9), Reg::gp(10));
    leaf.mov_imm(ln, 0);
    leaf.jmp(lbody);
    leaf.switch_to(lbody);
    leaf.load(lx, AddrMode::base_disp(Reg::gp(0), 0));
    leaf.add_imm(ln, 1);
    leaf.br(ln, CmpOp::Lt, Operand::Imm(4), lbody, lexit);
    leaf.switch_to(lexit);
    leaf.ret();
    let leaf_id = mb.add(leaf);

    let mut main = ProcBuilder::new("main", "call.c");
    let body = main.new_block();
    let exit = main.new_block();
    let (i, a, x) = (Reg::gp(7), Reg::gp(2), Reg::gp(11));
    main.mov_imm(a, arr as i64).mov_imm(i, 0);
    main.jmp(body);
    main.switch_to(body);
    main.load(x, AddrMode::base_index(a, i, 8, 0));
    main.mov_imm(Reg::gp(0), scalar as i64);
    main.call(leaf_id);
    main.add_imm(i, 1);
    main.br(i, CmpOp::Lt, Operand::Imm(elems as i64), body, exit);
    main.switch_to(exit);
    main.mov_imm(Reg::gp(0), scalar as i64);
    main.call(leaf_id);
    main.ret();
    mb.add(main);
    mb.finish()
}

/// A power-of-two circular buffer walk: `t ← i & (elems-1)` then
/// `load [a + t*8]`. The mask redefinition defeats plain IV analysis;
/// value-range analysis proves `i` already fits the mask, so the
/// abstract interpreter keeps the address affine. `elems` must be a
/// power of two.
pub fn masked_index_module(elems: u32) -> LoadModule {
    assert!(elems.is_power_of_two(), "mask workload needs 2^k elems");
    let mut mb = ModuleBuilder::new("mask");
    let base = mb.alloc_global("ring", elems as usize);
    let mut pb = ProcBuilder::new("kernel", "mask.c");
    let body = pb.new_block();
    let exit = pb.new_block();
    let (i, a, t, x) = (Reg::gp(6), Reg::gp(1), Reg::gp(3), Reg::gp(4));
    pb.mov_imm(i, 0).mov_imm(a, base as i64);
    pb.jmp(body);
    pb.switch_to(body);
    pb.mov(t, i);
    pb.bin(BinOp::And, t, Operand::Imm(elems as i64 - 1));
    pb.load(x, AddrMode::base_index(a, t, 8, 0));
    pb.add_imm(i, 1);
    pb.br(i, CmpOp::Lt, Operand::Imm(elems as i64), body, exit);
    pb.switch_to(exit);
    pb.ret();
    mb.add(pb);
    mb.finish()
}

/// Milliseconds elapsed running `f`, plus its result.
pub fn timed<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = std::time::Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64() * 1e3, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memgaze_instrument::Instrumenter;

    #[test]
    fn host_fields_are_injected_into_object_payloads() {
        let annotated = with_host_fields("{\n  \"a\": 1\n}".to_string());
        assert!(annotated.starts_with("{\n  \"host_cpus\": "), "{annotated}");
        assert!(annotated.contains("\"memgaze_threads\": "), "{annotated}");
        assert!(annotated.ends_with("\"a\": 1\n}"), "{annotated}");
        // An empty object gains the fields without a dangling comma.
        let empty = with_host_fields("{}".to_string());
        assert!(empty.contains("\"memgaze_threads\""), "{empty}");
        assert!(!empty.contains(",}"), "{empty}");
        // Non-object payloads pass through untouched.
        assert_eq!(with_host_fields("[1,2]".to_string()), "[1,2]");
    }

    #[test]
    fn synthetic_module_scales_with_inputs() {
        let small = synthetic_module(4, 9);
        let big = synthetic_module(40, 9);
        assert!(big.num_instrs() > 5 * small.num_instrs());
        assert!(big.binary_size_bytes() > small.binary_size_bytes());
        small.validate().unwrap();
        // The instrumentor accepts it and finds all three classes.
        let out = Instrumenter::default().instrument(&small);
        assert!(out.stats.constant_loads > 0);
        assert!(out.stats.strided_loads > 0);
        assert!(out.stats.irregular_loads > 0);
    }

    #[test]
    fn showcase_workloads_validate_and_run() {
        for m in [
            spilled_iv_module(32),
            nested_loop_module(4, 8),
            call_graph_module(32),
            masked_index_module(32),
        ] {
            m.validate().unwrap_or_else(|e| panic!("{}: {e}", m.name));
            // Each showcase module must actually execute and touch memory.
            let out = Instrumenter::default().instrument(&m);
            assert!(
                out.stats.constant_loads + out.stats.strided_loads + out.stats.irregular_loads > 0,
                "{}: no classified loads",
                m.name
            );
        }
    }

    #[test]
    fn timed_returns_result() {
        let (ms, v) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(ms >= 0.0);
    }

    #[test]
    fn scales_resolve() {
        let s = scales::from_env();
        assert!(s.micro_elems > 0 && s.graph_scale > 0);
    }
}
