//! Criterion benches of the collection path: stream-sampler feed rate
//! and the interpreter + PT collector on instrumented microbenchmarks —
//! the simulator-side cost behind paper Fig. 7's measurements.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use memgaze_core::{MemGaze, PipelineConfig};
use memgaze_model::Ip;
use memgaze_ptsim::{SamplerConfig, StreamSampler};
use memgaze_workloads::ubench::{MicroBench, OptLevel};

fn bench_stream_sampler(c: &mut Criterion) {
    let mut g = c.benchmark_group("stream_sampler_feed");
    for loads in [10_000u64, 100_000] {
        g.throughput(Throughput::Elements(loads));
        g.bench_with_input(BenchmarkId::from_parameter(loads), &loads, |b, &n| {
            b.iter(|| {
                let mut cfg = SamplerConfig::application(5_000);
                cfg.seed = 3;
                let mut s = StreamSampler::new(cfg);
                for t in 0..n {
                    s.on_load(Ip(0x400), 0x10_0000 + (t % 4096) * 8, true, 1);
                }
                s.finish("bench").0.num_samples()
            })
        });
    }
    g.finish();
}

fn bench_microbench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("microbench_pipeline");
    g.sample_size(10);
    for name in ["str1", "irr"] {
        let bench = MicroBench::parse(name, 1024, 5, OptLevel::O3).unwrap();
        let mut cfg = PipelineConfig::microbench();
        cfg.sampler.period = 2_000;
        g.bench_with_input(BenchmarkId::from_parameter(name), &bench, |b, bench| {
            b.iter(|| {
                MemGaze::new(cfg.clone())
                    .run_microbench(bench)
                    .unwrap()
                    .trace
                    .num_samples()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_stream_sampler, bench_microbench_pipeline);
criterion_main!(benches);
