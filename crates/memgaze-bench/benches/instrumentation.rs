//! Criterion benches of static analysis + instrumentation (Table II's
//! 'Instrument' column): classification, planning, and rewriting as a
//! function of module size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use memgaze_bench::synthetic_module;
use memgaze_instrument::{Instrumenter, ModuleClassification};

fn bench_classification(c: &mut Criterion) {
    let mut g = c.benchmark_group("classification");
    for procs in [8usize, 64, 256] {
        let m = synthetic_module(procs, 30);
        g.throughput(Throughput::Bytes(m.binary_size_bytes()));
        g.bench_with_input(BenchmarkId::from_parameter(procs), &m, |b, m| {
            b.iter(|| ModuleClassification::analyze(m).len())
        });
    }
    g.finish();
}

fn bench_full_instrumentation(c: &mut Criterion) {
    let mut g = c.benchmark_group("instrument");
    for procs in [8usize, 64, 256] {
        let m = synthetic_module(procs, 30);
        g.throughput(Throughput::Bytes(m.binary_size_bytes()));
        g.bench_with_input(BenchmarkId::from_parameter(procs), &m, |b, m| {
            b.iter(|| {
                Instrumenter::default()
                    .instrument(m)
                    .stats
                    .ptwrites_inserted
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_classification, bench_full_instrumentation);
criterion_main!(benches);
