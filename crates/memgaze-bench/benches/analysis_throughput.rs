//! Criterion benches of the analysis kernels: reuse distance, footprint
//! diagnostics, window series, zoom, and interval tree — the costs behind
//! Table II's 'Analysis/2'.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use memgaze_analysis::{
    analyze_window, window_series, AnalysisConfig, Analyzer, FootprintDiagnostics,
};
use memgaze_model::{
    Access, AuxAnnotations, BlockSize, Sample, SampledTrace, SymbolTable, TraceMeta,
};

/// A synthetic trace mixing a strided phase and a cyclic-reuse phase.
fn synthetic_trace(samples: usize, window: usize) -> SampledTrace {
    let mut t = SampledTrace::new(TraceMeta::new("bench", 10_000, 16 << 10));
    t.meta.total_loads = (samples * 10_000) as u64;
    for s in 0..samples {
        let base = (s * 10_000) as u64;
        let accesses: Vec<Access> = (0..window)
            .map(|i| {
                let addr = if i % 2 == 0 {
                    0x10_0000 + ((s * window + i) as u64) * 64
                } else {
                    0x80_0000 + ((i % 64) as u64) * 64
                };
                Access::new(0x400u64 + (i as u64 % 16) * 4, addr, base + i as u64)
            })
            .collect();
        t.push_sample(Sample::new(accesses, base + window as u64))
            .unwrap();
    }
    t
}

fn bench_reuse_distance(c: &mut Criterion) {
    let mut g = c.benchmark_group("reuse_distance");
    for window in [256usize, 1024, 4096] {
        let t = synthetic_trace(1, window);
        let accesses = t.samples[0].accesses.clone();
        g.throughput(Throughput::Elements(window as u64));
        g.bench_with_input(BenchmarkId::from_parameter(window), &accesses, |b, a| {
            b.iter(|| analyze_window(a, BlockSize::CACHE_LINE))
        });
    }
    g.finish();
}

fn bench_diagnostics(c: &mut Criterion) {
    let annots = AuxAnnotations::new();
    let t = synthetic_trace(1, 4096);
    let accesses = t.samples[0].accesses.clone();
    c.bench_function("footprint_diagnostics_4096", |b| {
        b.iter(|| FootprintDiagnostics::compute(&accesses, &annots, BlockSize::WORD))
    });
}

fn bench_window_series(c: &mut Criterion) {
    let annots = AuxAnnotations::new();
    let t = synthetic_trace(64, 512);
    let sizes = [16u64, 64, 256];
    c.bench_function("window_series_64x512", |b| {
        b.iter(|| window_series(&t, &annots, BlockSize::WORD, &sizes))
    });
}

fn bench_full_analyzer(c: &mut Criterion) {
    let annots = AuxAnnotations::new();
    let symbols = SymbolTable::new();
    let t = synthetic_trace(64, 512);
    c.bench_function("analyzer_tables_64x512", |b| {
        b.iter(|| {
            let a = Analyzer::new(&t, &annots, &symbols).with_config(AnalysisConfig::default());
            let rows = a.region_rows();
            let intervals = a.interval_rows(8);
            (rows.len(), intervals.len())
        })
    });
}

/// Every memoized artifact from one analyzer: the cold path constructs
/// the cache once per iteration; the warm path re-reads a prebuilt cache
/// (all hits) — the gap is the full cost of the artifact builds.
fn bench_memoized_report(c: &mut Criterion) {
    let annots = AuxAnnotations::new();
    let symbols = SymbolTable::new();
    let t = synthetic_trace(64, 512);
    let all_artifacts = |a: &Analyzer<'_>| {
        let mut n = a.function_table().len();
        n += a.sample_reuse().len();
        n += a.sample_diagnostics().len();
        n += a.block_reuse().len();
        n += a.zoom().map_or(0, |z| z.children.len());
        n += a.region_rows().len();
        n += a.interval_rows(8).len();
        n += a.window_series(&[16, 64, 256]).len();
        n += a.locality_series(&[16, 64, 256]).len();
        n += a.all_accesses().len();
        n += a.decompression().observed as usize;
        n
    };
    let mut g = c.benchmark_group("memoized_report_64x512");
    g.bench_function("cold_cache", |b| {
        b.iter(|| {
            let a = Analyzer::new(&t, &annots, &symbols).with_config(AnalysisConfig::default());
            all_artifacts(&a)
        })
    });
    let warm = Analyzer::new(&t, &annots, &symbols).with_config(AnalysisConfig::default());
    all_artifacts(&warm);
    g.bench_function("warm_cache", |b| b.iter(|| all_artifacts(&warm)));
    g.finish();
}

/// Skewed sample sizes: one sample 32× larger than the rest. Static
/// chunking would serialize on the giant sample; the work-stealing
/// scheduler keeps the other workers busy on the small ones.
fn bench_skewed_samples(c: &mut Criterion) {
    let annots = AuxAnnotations::new();
    let symbols = SymbolTable::new();
    let mut t = synthetic_trace(63, 256);
    let giant: Vec<Access> = (0..256 * 32)
        .map(|i| {
            let addr = 0x40_0000 + ((i % 4096) as u64) * 64;
            Access::new(0x400u64, addr, 1_000_000 + i as u64)
        })
        .collect();
    t.push_sample(Sample::new(giant, 1_000_000 + 256 * 32))
        .unwrap();
    c.bench_function("analyzer_tables_skewed_1x32", |b| {
        b.iter(|| {
            let a = Analyzer::new(&t, &annots, &symbols).with_config(AnalysisConfig::default());
            let rows = a.region_rows();
            let intervals = a.interval_rows(8);
            (rows.len(), intervals.len())
        })
    });
}

criterion_group!(
    benches,
    bench_reuse_distance,
    bench_diagnostics,
    bench_window_series,
    bench_full_analyzer,
    bench_memoized_report,
    bench_skewed_samples
);
criterion_main!(benches);
