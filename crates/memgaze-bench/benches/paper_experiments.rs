//! Criterion wrappers around miniature versions of the paper
//! experiments, so the cost of regenerating each table/figure is tracked
//! over time. The full-size regenerations live in `src/bin/`.

use criterion::{criterion_group, criterion_main, Criterion};
use memgaze_analysis::{compare_window_series, pow2_sizes, window_series, AnalysisConfig};
use memgaze_core::{trace_workload, MemGaze, PipelineConfig};
use memgaze_ptsim::SamplerConfig;
use memgaze_workloads::gap::{self, GapConfig, GapKernel};
use memgaze_workloads::minivite::{self, MapVariant, MiniViteConfig};
use memgaze_workloads::ubench::{MicroBench, OptLevel};

/// Fig. 6 in miniature: validate one microbenchmark against its ground
/// truth.
fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_validation");
    g.sample_size(10);
    let bench = MicroBench::parse("str2|irr", 1024, 10, OptLevel::O3).unwrap();
    let mut cfg = PipelineConfig::microbench();
    cfg.sampler.period = 2_000;
    g.bench_function("str2|irr-small", |b| {
        b.iter(|| {
            let mg = MemGaze::new(cfg.clone());
            let report = mg.run_microbench(&bench).unwrap();
            let truth = mg.microbench_ground_truth(&bench).unwrap();
            let sizes = pow2_sizes(4, 7);
            let fb = cfg.analysis.footprint_block;
            let s = window_series(&report.trace, &report.instrumented.annots, fb, &sizes);
            let full = truth.as_single_sample_trace();
            let f = window_series(&full, &report.instrumented.annots, fb, &sizes);
            compare_window_series(&f, &s).f
        })
    });
    g.finish();
}

/// Table IV in miniature: one miniVite variant through the full stack.
fn bench_table4(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4_minivite");
    g.sample_size(10);
    let mv = MiniViteConfig {
        scale: 7,
        degree: 6,
        iterations: 1,
        variant: MapVariant::V2,
        seed: 42,
        v2_default_capacity: 64,
    };
    g.bench_function("v2-small", |b| {
        b.iter(|| {
            let sampler = SamplerConfig::application(10_000);
            let (report, _) = trace_workload("mv", &sampler, |s| minivite::run(s, &mv));
            report
                .analyzer(AnalysisConfig::default())
                .function_table()
                .len()
        })
    });
    g.finish();
}

/// Table IX in miniature: one GAP kernel through region analysis.
fn bench_table9(c: &mut Criterion) {
    let mut g = c.benchmark_group("table9_gap");
    g.sample_size(10);
    let cfg = GapConfig {
        scale: 8,
        degree: 6,
        kernel: GapKernel::Pr,
        max_iters: 5,
        seed: 9,
    };
    g.bench_function("pr-small", |b| {
        b.iter(|| {
            let sampler = SamplerConfig::application(10_000);
            let (report, _) = trace_workload("gap", &sampler, |s| gap::run(s, &cfg));
            let analyzer = report.analyzer(AnalysisConfig::default());
            let (lo, hi) = report.label_range("o-score").unwrap();
            analyzer.region_row_for(lo, hi).reuse_d
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fig6, bench_table4, bench_table9);
criterion_main!(benches);
