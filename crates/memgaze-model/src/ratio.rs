//! Sample-ratio and compression-ratio algebra (paper §III-C, Eqs. 1–2).
//!
//! With compression, the *observed* accesses `A` differ from the accesses
//! `𝒜` directly implied by the observation. The **sample ratio**
//! `ρ = 𝒜̂(σ)/𝒜(σ)` scales sample statistics to the population, and the
//! **compression ratio** `κ(σ)` relates observed to implied accesses:
//!
//! ```text
//! κ(σ) = 1 + A_const(σ)/A(σ)                            (Eq. 2)
//! ρ    = |σ|(w+z) / (κ(σ)·A(σ))                         (Eq. 1)
//! ```
//!
//! where the sampling period `w+z` counts *all* executed loads.

use crate::annot::AuxAnnotations;
use crate::sample::SampledTrace;
use serde::{Deserialize, Serialize};

/// Compression ratio `κ = 1 + A_const/A` (Eq. 2).
///
/// `observed` is `A(σ)` (recorded accesses) and `implied_const` is
/// `A_const(σ)` (Constant loads represented by proxies). Returns 1.0 when
/// nothing was observed.
pub fn compression_ratio(observed: u64, implied_const: u64) -> f64 {
    if observed == 0 {
        1.0
    } else {
        1.0 + implied_const as f64 / observed as f64
    }
}

/// Sample ratio `ρ = |σ|·(w+z) / (κ·A)` (Eq. 1).
///
/// `num_samples` is `|σ|`, `period` is `w+z` in executed loads, `observed`
/// is `A(σ)`, and `kappa` the compression ratio. Returns 1.0 for degenerate
/// inputs (no samples or no observations) so scaling becomes the identity.
pub fn sample_ratio(num_samples: u64, period: u64, observed: u64, kappa: f64) -> f64 {
    let implied = kappa * observed as f64;
    if num_samples == 0 || implied <= 0.0 {
        return 1.0;
    }
    (num_samples as f64 * period as f64) / implied
}

/// Everything needed to decompress and re-scale a sampled trace's
/// statistics: `|σ|`, `w+z`, `A(σ)`, `A_const(σ)`, and the derived κ and ρ.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecompressionInfo {
    /// Number of samples `|σ|`.
    pub num_samples: u64,
    /// Sampling period `w+z` in executed loads.
    pub period: u64,
    /// Observed accesses `A(σ)`.
    pub observed: u64,
    /// Implied Constant accesses `A_const(σ)`.
    pub implied_const: u64,
}

impl DecompressionInfo {
    /// Derive the decompression info from a trace and its annotations.
    pub fn from_trace(trace: &SampledTrace, annots: &AuxAnnotations) -> DecompressionInfo {
        let observed = trace.observed_accesses();
        DecompressionInfo {
            num_samples: trace.num_samples() as u64,
            period: trace.meta.period,
            observed,
            implied_const: annots.implied_const_accesses(trace),
        }
    }

    /// Compression ratio κ (Eq. 2).
    pub fn kappa(&self) -> f64 {
        compression_ratio(self.observed, self.implied_const)
    }

    /// Accesses directly implied by the observation: `𝒜(σ) = κ·A(σ)`.
    pub fn implied_accesses(&self) -> f64 {
        self.kappa() * self.observed as f64
    }

    /// Sample ratio ρ (Eq. 1).
    pub fn rho(&self) -> f64 {
        sample_ratio(self.num_samples, self.period, self.observed, self.kappa())
    }

    /// Scale a sample statistic to a population estimate: `x̂ = ρ·x`.
    pub fn scale(&self, sample_stat: f64) -> f64 {
        self.rho() * sample_stat
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::Access;
    use crate::annot::IpAnnot;
    use crate::sample::{Sample, TraceMeta};
    use crate::symbols::FunctionId;
    use crate::{Ip, LoadClass};

    #[test]
    fn kappa_matches_eq2() {
        // κ = 1 + A_const/A
        assert_eq!(compression_ratio(100, 0), 1.0);
        assert!((compression_ratio(100, 100) - 2.0).abs() < 1e-12);
        assert!((compression_ratio(100, 20) - 1.2).abs() < 1e-12);
        // Degenerate: no observations.
        assert_eq!(compression_ratio(0, 5), 1.0);
    }

    #[test]
    fn rho_without_compression_is_period_over_window() {
        // ρ reduces to (w+z)/w for non-selective instrumentation.
        let rho = sample_ratio(10, 10_000, 10 * 500, 1.0);
        assert!((rho - 20.0).abs() < 1e-12);
    }

    #[test]
    fn rho_accounts_for_compression() {
        // With κ=2, each observed access stands for two, halving ρ.
        let rho = sample_ratio(10, 10_000, 10 * 500, 2.0);
        assert!((rho - 10.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_rho_is_identity() {
        assert_eq!(sample_ratio(0, 1000, 100, 1.0), 1.0);
        assert_eq!(sample_ratio(10, 1000, 0, 1.0), 1.0);
    }

    #[test]
    fn info_from_trace() {
        let mut ax = AuxAnnotations::new();
        let mut proxy = IpAnnot::of_class(LoadClass::Strided, FunctionId(0));
        proxy.implied_const = 1;
        ax.insert(Ip(0x10), proxy);

        let mut t = SampledTrace::new(TraceMeta::new("t", 1000, 8192));
        t.push_sample(Sample::new(
            (0..10)
                .map(|i| Access::new(Ip(0x10), 0x1000u64 + i * 64, i))
                .collect(),
            10,
        ))
        .unwrap();

        let info = DecompressionInfo::from_trace(&t, &ax);
        assert_eq!(info.observed, 10);
        assert_eq!(info.implied_const, 10);
        assert!((info.kappa() - 2.0).abs() < 1e-12);
        // 𝒜 = κA = 20; ρ = 1·1000/20 = 50.
        assert!((info.rho() - 50.0).abs() < 1e-12);
        assert!((info.scale(2.0) - 100.0).abs() < 1e-12);
    }
}
