//! Error type shared by trace-model operations.

/// Errors produced while building, encoding, or decoding trace-model data.
#[derive(Debug)]
pub enum ModelError {
    /// A block size that is zero or not a power of two.
    InvalidBlockSize(u64),
    /// A trace file whose magic number or version is unrecognized.
    BadHeader {
        /// Human-readable description of what was wrong.
        detail: String,
    },
    /// Trace data ended prematurely while decoding.
    Truncated {
        /// What was being decoded when input ran out.
        context: &'static str,
    },
    /// Samples must be time-ordered and non-overlapping.
    UnorderedSamples {
        /// Index of the offending sample.
        index: usize,
    },
    /// Underlying I/O error.
    Io(std::io::Error),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::InvalidBlockSize(b) => {
                write!(f, "invalid block size {b}: must be a nonzero power of two")
            }
            ModelError::BadHeader { detail } => write!(f, "bad trace header: {detail}"),
            ModelError::Truncated { context } => {
                write!(f, "truncated trace data while decoding {context}")
            }
            ModelError::UnorderedSamples { index } => {
                write!(f, "sample {index} is out of time order")
            }
            ModelError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ModelError {
    fn from(e: std::io::Error) -> Self {
        ModelError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ModelError::InvalidBlockSize(48);
        assert!(e.to_string().contains("48"));
        let e = ModelError::Truncated { context: "sample" };
        assert!(e.to_string().contains("sample"));
    }

    #[test]
    fn io_error_source_preserved() {
        use std::error::Error;
        let e = ModelError::from(std::io::Error::other("boom"));
        assert!(e.source().is_some());
    }
}
