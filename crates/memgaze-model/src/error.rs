//! Error type shared by trace-model operations.

/// Errors produced while building, encoding, or decoding trace-model data.
#[derive(Debug)]
pub enum ModelError {
    /// A block size that is zero or not a power of two.
    InvalidBlockSize(u64),
    /// A trace file whose magic number or version is unrecognized.
    BadHeader {
        /// Human-readable description of what was wrong.
        detail: String,
    },
    /// Trace data ended prematurely while decoding.
    Truncated {
        /// What was being decoded when input ran out.
        context: &'static str,
    },
    /// A decoded count or offset too large to address on this platform
    /// (`u64` → `usize` would truncate). Unchecked `as usize` narrowing
    /// here would silently wrap on 32-bit targets, letting a hostile
    /// length alias a small allocation; decoders reject it instead.
    Oversize {
        /// What was being decoded when the value was rejected.
        context: &'static str,
        /// The offending value.
        value: u64,
    },
    /// Samples must be time-ordered and non-overlapping.
    UnorderedSamples {
        /// Index of the offending sample.
        index: usize,
    },
    /// A sample failed to decode; wraps the underlying error so callers
    /// can tell which sample of a payload was corrupt.
    InSample {
        /// Index of the failing sample within its payload.
        index: usize,
        /// What went wrong inside the sample.
        source: Box<ModelError>,
    },
    /// A shard frame failed to decode; wraps the underlying error so
    /// streaming callers can tell how far a container was readable.
    InShard {
        /// Index of the failing shard frame.
        shard: u64,
        /// What went wrong inside the frame.
        source: Box<ModelError>,
    },
    /// Trailer totals that contradict what was actually streamed — e.g.
    /// fewer total loads than samples written (each sample is triggered
    /// by at least one load, so `total_loads >= samples` always holds
    /// for a truthful trailer).
    InconsistentTotals {
        /// The `total_loads` the caller tried to seal into the trailer.
        total_loads: u64,
        /// Samples actually written to the container.
        samples: u64,
    },
    /// A frame-index sidecar that does not describe the container it was
    /// presented with (wrong length, wrong header, or a frame whose
    /// bytes no longer match the indexed checksum).
    StaleIndex {
        /// What mismatched.
        detail: String,
    },
    /// Underlying I/O error.
    Io(std::io::Error),
}

impl ModelError {
    /// The shard index a decode failure occurred in, if this error came
    /// from a sharded container.
    pub fn shard_index(&self) -> Option<u64> {
        match self {
            ModelError::InShard { shard, .. } => Some(*shard),
            _ => None,
        }
    }
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::InvalidBlockSize(b) => {
                write!(f, "invalid block size {b}: must be a nonzero power of two")
            }
            ModelError::BadHeader { detail } => write!(f, "bad trace header: {detail}"),
            ModelError::Truncated { context } => {
                write!(f, "truncated trace data while decoding {context}")
            }
            ModelError::Oversize { context, value } => {
                write!(
                    f,
                    "oversize value {value} while decoding {context}: not addressable on this platform"
                )
            }
            ModelError::UnorderedSamples { index } => {
                write!(f, "sample {index} is out of time order")
            }
            ModelError::InSample { index, source } => {
                write!(f, "sample {index}: {source}")
            }
            ModelError::InShard { shard, source } => {
                write!(f, "shard {shard}: {source}")
            }
            ModelError::InconsistentTotals {
                total_loads,
                samples,
            } => write!(
                f,
                "inconsistent trailer totals: total_loads {total_loads} < {samples} samples written"
            ),
            ModelError::StaleIndex { detail } => {
                write!(f, "stale frame index: {detail}")
            }
            ModelError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Io(e) => Some(e),
            ModelError::InSample { source, .. } | ModelError::InShard { source, .. } => {
                Some(source.as_ref())
            }
            _ => None,
        }
    }
}

impl From<std::io::Error> for ModelError {
    fn from(e: std::io::Error) -> Self {
        ModelError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ModelError::InvalidBlockSize(48);
        assert!(e.to_string().contains("48"));
        let e = ModelError::Truncated { context: "sample" };
        assert!(e.to_string().contains("sample"));
    }

    #[test]
    fn io_error_source_preserved() {
        use std::error::Error;
        let e = ModelError::from(std::io::Error::other("boom"));
        assert!(e.source().is_some());
    }

    #[test]
    fn wrapped_errors_chain_and_locate() {
        use std::error::Error;
        let inner = ModelError::Truncated { context: "access" };
        let e = ModelError::InShard {
            shard: 3,
            source: Box::new(ModelError::InSample {
                index: 7,
                source: Box::new(inner),
            }),
        };
        assert_eq!(e.shard_index(), Some(3));
        assert!(e.to_string().contains("shard 3"));
        assert!(e.to_string().contains("sample 7"));
        let mid = e.source().unwrap();
        assert!(mid.source().unwrap().to_string().contains("access"));
    }
}
