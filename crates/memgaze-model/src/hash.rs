//! The workspace's one FNV-1a-64 implementation.
//!
//! Every checksum in the MemGaze wire formats — the `MGZX` frame-index
//! sidecar, the `MGZP`/`MGZS` fan-out codec, and the `memgaze-store`
//! blob and catalog formats — is 64-bit FNV-1a. It is fast,
//! dependency-free, and has good dispersion; all of these uses are
//! corruption detection and content addressing among trusted peers,
//! not cryptography, so collision resistance against an adversary is
//! explicitly a non-goal.
//!
//! Besides the plain [`fnv1a64`] digest this module offers a *seeded*
//! variant for domain separation: `memgaze-store` keys blobs by
//! [`fnv1a64_seeded`] with its own seed so a content hash can never be
//! confused with a frame checksum of the same bytes, and an incremental
//! [`Fnv64`] hasher for callers that produce bytes in pieces.

/// The standard FNV-1a-64 offset basis — the initial state of an
/// unseeded hash.
pub const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// The FNV-1a-64 prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over a byte slice, starting from the standard offset
/// basis. This is the checksum used by the sidecar, the fan-out wire
/// codec, and the store formats.
#[inline]
pub fn fnv1a64(data: &[u8]) -> u64 {
    fnv1a64_seeded(FNV_OFFSET_BASIS, data)
}

/// 64-bit FNV-1a starting from `seed` instead of the offset basis.
/// Distinct seeds give independent hash domains over the same bytes;
/// `memgaze-store` uses this to keep content-address keys disjoint from
/// payload checksums.
#[inline]
pub fn fnv1a64_seeded(seed: u64, data: &[u8]) -> u64 {
    let mut h = seed;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Incremental FNV-1a-64: feed bytes in any chunking and get the same
/// digest as the one-shot functions over the concatenation.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64 {
    state: u64,
}

impl Fnv64 {
    /// A hasher starting from the standard offset basis.
    pub fn new() -> Fnv64 {
        Fnv64::with_seed(FNV_OFFSET_BASIS)
    }

    /// A hasher starting from `seed` (see [`fnv1a64_seeded`]).
    pub fn with_seed(seed: u64) -> Fnv64 {
        Fnv64 { state: seed }
    }

    /// Absorb more bytes.
    #[inline]
    pub fn update(&mut self, data: &[u8]) -> &mut Fnv64 {
        self.state = fnv1a64_seeded(self.state, data);
        self
    }

    /// The digest over everything absorbed so far. The hasher remains
    /// usable; FNV has no finalization step.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Standard FNV-1a-64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn seeded_domains_are_independent() {
        let data = b"same bytes";
        let plain = fnv1a64(data);
        let seeded = fnv1a64_seeded(0x1234_5678_9abc_def0, data);
        assert_ne!(plain, seeded);
        // Seeding with the offset basis is the plain hash.
        assert_eq!(fnv1a64_seeded(FNV_OFFSET_BASIS, data), plain);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data: Vec<u8> = (0u16..300).map(|i| (i % 251) as u8).collect();
        for split in [0usize, 1, 7, 150, 299, 300] {
            let mut h = Fnv64::new();
            h.update(&data[..split]).update(&data[split..]);
            assert_eq!(h.finish(), fnv1a64(&data), "split {split}");
        }
        let mut seeded = Fnv64::with_seed(42);
        seeded.update(&data);
        assert_eq!(seeded.finish(), fnv1a64_seeded(42, &data));
    }
}
