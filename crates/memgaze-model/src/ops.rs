//! Trace transformations: filtering and merging.
//!
//! Downstream analyses often want a *view* of a trace — one function, one
//! address region, one time span — without re-collecting. These
//! operations preserve sample structure (a filtered sample keeps its
//! trigger time, so ρ-based estimators still apply to the surviving
//! accesses) and keep metadata consistent.

use crate::access::Access;
use crate::sample::{Sample, SampledTrace};
use crate::symbols::SymbolTable;

/// Keep only accesses satisfying `pred`, preserving sample boundaries.
/// Samples left empty are retained (they still witness their period for
/// ρ purposes).
pub fn filter_accesses(
    trace: &SampledTrace,
    mut pred: impl FnMut(&Access) -> bool,
) -> SampledTrace {
    let mut out = SampledTrace::new(trace.meta.clone());
    for s in &trace.samples {
        let kept: Vec<Access> = s.accesses.iter().filter(|a| pred(a)).copied().collect();
        out.push_sample(Sample::new(kept, s.trigger_time))
            .expect("filter preserves order");
    }
    out
}

/// Keep only accesses into the address region `[lo, hi)`.
pub fn filter_region(trace: &SampledTrace, lo: u64, hi: u64) -> SampledTrace {
    filter_accesses(trace, |a| a.addr.raw() >= lo && a.addr.raw() < hi)
}

/// Keep only accesses whose logical time lies in `[start, end)`.
pub fn filter_time(trace: &SampledTrace, start: u64, end: u64) -> SampledTrace {
    filter_accesses(trace, |a| a.time >= start && a.time < end)
}

/// Keep only accesses attributed to the named function.
pub fn filter_function(trace: &SampledTrace, symbols: &SymbolTable, name: &str) -> SampledTrace {
    let range = symbols
        .find_by_name(name)
        .and_then(|id| symbols.function(id))
        .map(|f| (f.lo, f.hi));
    match range {
        Some((lo, hi)) => filter_accesses(trace, |a| a.ip >= lo && a.ip < hi),
        None => {
            let mut empty = SampledTrace::new(trace.meta.clone());
            for s in &trace.samples {
                empty
                    .push_sample(Sample::new(Vec::new(), s.trigger_time))
                    .expect("order preserved");
            }
            empty
        }
    }
}

/// Merge two traces of the *same run* (e.g. two guarded collections with
/// disjoint regions of interest): samples are matched by trigger time;
/// accesses interleave by logical time; duplicates (same time + ip) are
/// kept once.
pub fn merge(a: &SampledTrace, b: &SampledTrace) -> SampledTrace {
    let mut out = SampledTrace::new(a.meta.clone());
    out.meta.total_loads = a.meta.total_loads.max(b.meta.total_loads);

    let mut ia = a.samples.iter().peekable();
    let mut ib = b.samples.iter().peekable();
    while ia.peek().is_some() || ib.peek().is_some() {
        let next = match (ia.peek(), ib.peek()) {
            (Some(x), Some(y)) if x.trigger_time == y.trigger_time => {
                let (x, y) = (ia.next().unwrap(), ib.next().unwrap());
                let mut acc = Vec::with_capacity(x.accesses.len() + y.accesses.len());
                let (mut i, mut j) = (0, 0);
                while i < x.accesses.len() || j < y.accesses.len() {
                    let take_x = match (x.accesses.get(i), y.accesses.get(j)) {
                        (Some(p), Some(q)) => p.time <= q.time,
                        (Some(_), None) => true,
                        _ => false,
                    };
                    let cand = if take_x {
                        i += 1;
                        x.accesses[i - 1]
                    } else {
                        j += 1;
                        y.accesses[j - 1]
                    };
                    let dup = acc
                        .last()
                        .is_some_and(|p: &Access| p.time == cand.time && p.ip == cand.ip);
                    if !dup {
                        acc.push(cand);
                    }
                }
                Sample::new(acc, x.trigger_time)
            }
            (Some(x), Some(y)) => {
                if x.trigger_time < y.trigger_time {
                    ia.next().unwrap().clone()
                } else {
                    let _ = x;
                    ib.next().unwrap().clone()
                }
            }
            (Some(_), None) => ia.next().unwrap().clone(),
            (None, Some(_)) => ib.next().unwrap().clone(),
            (None, None) => unreachable!(),
        };
        out.push_sample(next).expect("merged samples stay ordered");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::TraceMeta;
    use crate::Ip;

    #[allow(clippy::type_complexity)]
    fn mk(samples: &[(u64, &[(u64, u64, u64)])]) -> SampledTrace {
        // (trigger, [(ip, addr, time)])
        let mut t = SampledTrace::new(TraceMeta::new("t", 100, 1024));
        for (trigger, accs) in samples {
            let v: Vec<Access> = accs
                .iter()
                .map(|(ip, addr, time)| Access::new(*ip, *addr, *time))
                .collect();
            t.push_sample(Sample::new(v, *trigger)).unwrap();
        }
        t
    }

    #[test]
    fn region_and_time_filters() {
        let t = mk(&[
            (10, &[(0x400, 0x1000, 1), (0x404, 0x2000, 2)]),
            (20, &[(0x400, 0x1100, 12), (0x404, 0x3000, 13)]),
        ]);
        let r = filter_region(&t, 0x1000, 0x2000);
        assert_eq!(r.observed_accesses(), 2);
        assert_eq!(r.num_samples(), 2, "empty samples retained");
        assert!(r.accesses().all(|a| a.addr.raw() < 0x2000));

        let w = filter_time(&t, 0, 10);
        assert_eq!(w.observed_accesses(), 2);
        assert!(w.accesses().all(|a| a.time < 10));
    }

    #[test]
    fn function_filter_uses_symbols() {
        let mut sym = SymbolTable::new();
        sym.add_function("f", Ip(0x400), Ip(0x404), "x.c");
        sym.add_function("g", Ip(0x404), Ip(0x408), "x.c");
        let t = mk(&[(10, &[(0x400, 0x1000, 1), (0x404, 0x2000, 2)])]);
        let f = filter_function(&t, &sym, "f");
        assert_eq!(f.observed_accesses(), 1);
        assert_eq!(f.accesses().next().unwrap().ip, Ip(0x400));
        let none = filter_function(&t, &sym, "missing");
        assert_eq!(none.observed_accesses(), 0);
        assert_eq!(none.num_samples(), 1);
    }

    #[test]
    fn merge_interleaves_and_dedups() {
        let a = mk(&[(10, &[(0x400, 0x1000, 1), (0x400, 0x1008, 3)])]);
        let b = mk(&[(10, &[(0x404, 0x2000, 2), (0x400, 0x1008, 3)])]);
        let m = merge(&a, &b);
        assert_eq!(m.num_samples(), 1);
        let times: Vec<u64> = m.accesses().map(|x| x.time).collect();
        assert_eq!(
            times,
            vec![1, 2, 3],
            "interleaved by time, duplicate dropped"
        );
    }

    #[test]
    fn merge_disjoint_samples() {
        let a = mk(&[(10, &[(0x400, 0x1000, 1)])]);
        let b = mk(&[(20, &[(0x404, 0x2000, 12)])]);
        let m = merge(&a, &b);
        assert_eq!(m.num_samples(), 2);
        assert_eq!(m.observed_accesses(), 2);
    }

    #[test]
    fn filters_compose_with_decompression() {
        // Filtering keeps sample counts, so ρ (which depends on |σ| and
        // the period) is unchanged.
        let t = mk(&[
            (10, &[(0x400, 0x1000, 1), (0x404, 0x2000, 2)]),
            (20, &[(0x400, 0x1100, 12)]),
        ]);
        let f = filter_region(&t, 0x1000, 0x2000);
        assert_eq!(f.num_samples(), t.num_samples());
        assert_eq!(f.meta.period, t.meta.period);
    }
}
