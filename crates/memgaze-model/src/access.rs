//! Recorded memory accesses and load classes.

use crate::addr::{Addr, Ip};
use serde::{Deserialize, Serialize};

/// Static access-pattern class of a load (paper §III-B).
///
/// Classes are assigned by the instrumentor's data-dependence analysis and
/// drive both trace compression (Constant loads are not instrumented) and
/// the footprint access diagnostics (`F_str`, `F_irr`, `A_const%`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LoadClass {
    /// Scalar loads of stack-frame or global data: offset-only addressing
    /// relative to a frame pointer or a global section. All constant loads
    /// are viewed as touching one unit of space.
    Constant,
    /// Loads whose address follows a loop induction variable with constant
    /// stride; prefetchable.
    Strided,
    /// Everything else — typically indirect loads through pointers;
    /// non-prefetchable.
    Irregular,
}

impl LoadClass {
    /// Whether the instrumentor records this load's address (paper Fig. 2):
    /// Strided and Irregular loads are always instrumented; Constant loads
    /// are implied by a proxy.
    #[inline]
    pub fn is_instrumented(self) -> bool {
        !matches!(self, LoadClass::Constant)
    }

    /// Short mnemonic used in reports.
    pub fn mnemonic(self) -> &'static str {
        match self {
            LoadClass::Constant => "const",
            LoadClass::Strided => "str",
            LoadClass::Irregular => "irr",
        }
    }
}

impl std::fmt::Display for LoadClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// One recorded load: instruction pointer, data address, and timestamp.
///
/// The timestamp is a logical load counter (the sampling trigger counts
/// memory accesses, paper §III-C), not wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Access {
    /// Address of the (uninstrumented) load instruction.
    pub ip: Ip,
    /// Data address the load dereferenced.
    pub addr: Addr,
    /// Logical time: index of this load in the executed load stream.
    pub time: u64,
}

impl Access {
    /// Convenience constructor.
    #[inline]
    pub fn new(ip: impl Into<Ip>, addr: impl Into<Addr>, time: u64) -> Access {
        Access {
            ip: ip.into(),
            addr: addr.into(),
            time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_instrumentation_policy() {
        assert!(!LoadClass::Constant.is_instrumented());
        assert!(LoadClass::Strided.is_instrumented());
        assert!(LoadClass::Irregular.is_instrumented());
    }

    #[test]
    fn mnemonics_match_paper_naming() {
        // Paper microbenchmark names use "str" and "irr".
        assert_eq!(LoadClass::Strided.to_string(), "str");
        assert_eq!(LoadClass::Irregular.to_string(), "irr");
        assert_eq!(LoadClass::Constant.to_string(), "const");
    }

    #[test]
    fn access_construction() {
        let a = Access::new(0x400u64, 0x7fff_0000u64, 42);
        assert_eq!(a.ip, Ip(0x400));
        assert_eq!(a.addr, Addr(0x7fff_0000));
        assert_eq!(a.time, 42);
    }
}
