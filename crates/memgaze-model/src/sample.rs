//! Samples and sampled traces (paper Fig. 3, §III-C).
//!
//! A sample is a sequence of `w` recorded accesses followed by `z`
//! non-recorded accesses; `(w+z)` is the sampling period in memory loads
//! and `(w+z) ≫ w` (ratios of 10³…10⁵ : 1). The recorded `w` corresponds to
//! the contents of Processor Tracing's fixed-size circular buffer at the
//! sampling trigger.

use crate::access::Access;
use crate::error::ModelError;
use serde::{Deserialize, Serialize};

/// Metadata describing how a trace was collected.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceMeta {
    /// Human-readable workload label, e.g. `"miniVite-O3-v2"`.
    pub workload: String,
    /// Sampling period `w+z` in executed memory loads.
    pub period: u64,
    /// Circular trace-buffer capacity in bytes.
    pub buffer_bytes: u64,
    /// Total memory loads executed by the monitored region (the population
    /// the sampling trigger counted over), i.e. `𝒜̂` for the whole run.
    pub total_loads: u64,
    /// Total loads whose address was recorded by instrumentation across the
    /// whole run (before sampling); used for drop accounting.
    pub total_instrumented_loads: u64,
}

impl TraceMeta {
    /// Metadata with the given workload name and collection parameters.
    pub fn new(workload: impl Into<String>, period: u64, buffer_bytes: u64) -> TraceMeta {
        TraceMeta {
            workload: workload.into(),
            period,
            buffer_bytes,
            total_loads: 0,
            total_instrumented_loads: 0,
        }
    }
}

/// One sample: the decoded contents of the trace buffer at a trigger.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Recorded accesses, in execution order. Length is the observed window
    /// `w = A(σ)` for this sample.
    pub accesses: Vec<Access>,
    /// Logical time (load counter) at which the sampling trigger fired.
    pub trigger_time: u64,
}

impl Sample {
    /// A sample from time-ordered accesses.
    pub fn new(accesses: Vec<Access>, trigger_time: u64) -> Sample {
        debug_assert!(
            accesses.windows(2).all(|p| p[0].time <= p[1].time),
            "sample accesses must be time-ordered"
        );
        Sample {
            accesses,
            trigger_time,
        }
    }

    /// Number of recorded accesses (`w` for this sample).
    #[inline]
    pub fn window(&self) -> usize {
        self.accesses.len()
    }

    /// Logical time of the first recorded access, if any.
    pub fn start_time(&self) -> Option<u64> {
        self.accesses.first().map(|a| a.time)
    }

    /// Logical time of the last recorded access, if any.
    pub fn end_time(&self) -> Option<u64> {
        self.accesses.last().map(|a| a.time)
    }

    /// True if the sample recorded nothing (e.g. PT was gated off).
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }
}

/// A sampled, possibly compressed, memory address trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampledTrace {
    /// Collection metadata.
    pub meta: TraceMeta,
    /// Samples in trigger-time order.
    pub samples: Vec<Sample>,
}

impl SampledTrace {
    /// An empty trace with the given metadata.
    pub fn new(meta: TraceMeta) -> SampledTrace {
        SampledTrace {
            meta,
            samples: Vec::new(),
        }
    }

    /// Append a sample, enforcing trigger-time order.
    pub fn push_sample(&mut self, sample: Sample) -> Result<(), ModelError> {
        if let Some(last) = self.samples.last() {
            if sample.trigger_time < last.trigger_time {
                return Err(ModelError::UnorderedSamples {
                    index: self.samples.len(),
                });
            }
        }
        self.samples.push(sample);
        Ok(())
    }

    /// Number of samples `|σ|`.
    #[inline]
    pub fn num_samples(&self) -> usize {
        self.samples.len()
    }

    /// Total observed accesses `A(σ)` across all samples.
    pub fn observed_accesses(&self) -> u64 {
        self.samples.iter().map(|s| s.accesses.len() as u64).sum()
    }

    /// Average recorded window `w` per sample (0 when there are no samples).
    pub fn mean_window(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.observed_accesses() as f64 / self.samples.len() as f64
        }
    }

    /// Iterate over all recorded accesses in time order.
    pub fn accesses(&self) -> impl Iterator<Item = &Access> + '_ {
        self.samples.iter().flat_map(|s| s.accesses.iter())
    }

    /// True if no sample recorded any access.
    pub fn is_empty(&self) -> bool {
        self.samples.iter().all(|s| s.is_empty())
    }
}

/// A full (unsampled) trace used as a validation baseline (paper §VI-A) and
/// for space accounting (Table III).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FullTrace {
    /// Collection metadata (period is irrelevant; kept for symmetry).
    pub meta: TraceMeta,
    /// Every recorded access, in execution order.
    pub accesses: Vec<Access>,
    /// Accesses lost to collector throttling ("DROP" records): the paper's
    /// 'Rec' traces lose an unpredictable 30–50%.
    pub dropped: u64,
}

impl FullTrace {
    /// An empty full trace.
    pub fn new(meta: TraceMeta) -> FullTrace {
        FullTrace {
            meta,
            accesses: Vec::new(),
            dropped: 0,
        }
    }

    /// Number of recorded accesses.
    #[inline]
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Fraction of instrumented accesses that were dropped.
    pub fn drop_rate(&self) -> f64 {
        let total = self.accesses.len() as u64 + self.dropped;
        if total == 0 {
            0.0
        } else {
            self.dropped as f64 / total as f64
        }
    }

    /// View the full trace as one giant sample (useful for running sampled
    /// analyses on full data).
    pub fn as_single_sample_trace(&self) -> SampledTrace {
        let mut meta = self.meta.clone();
        meta.period = self.accesses.len() as u64;
        SampledTrace {
            meta,
            samples: vec![Sample::new(
                self.accesses.clone(),
                self.accesses.last().map_or(0, |a| a.time),
            )],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::Access;

    fn acc(t: u64) -> Access {
        Access::new(0x400u64, 0x1000u64 + t * 8, t)
    }

    #[test]
    fn sample_window_and_times() {
        let s = Sample::new(vec![acc(5), acc(6), acc(7)], 10);
        assert_eq!(s.window(), 3);
        assert_eq!(s.start_time(), Some(5));
        assert_eq!(s.end_time(), Some(7));
        assert!(!s.is_empty());
        assert!(Sample::new(vec![], 3).is_empty());
    }

    #[test]
    fn trace_push_enforces_order() {
        let mut t = SampledTrace::new(TraceMeta::new("t", 1000, 8192));
        t.push_sample(Sample::new(vec![acc(1)], 10)).unwrap();
        t.push_sample(Sample::new(vec![acc(20)], 30)).unwrap();
        let err = t.push_sample(Sample::new(vec![acc(2)], 5));
        assert!(matches!(
            err,
            Err(ModelError::UnorderedSamples { index: 2 })
        ));
    }

    #[test]
    fn trace_aggregates() {
        let mut t = SampledTrace::new(TraceMeta::new("t", 1000, 8192));
        t.push_sample(Sample::new(vec![acc(1), acc(2)], 10))
            .unwrap();
        t.push_sample(Sample::new(vec![acc(20), acc(21), acc(22)], 30))
            .unwrap();
        assert_eq!(t.num_samples(), 2);
        assert_eq!(t.observed_accesses(), 5);
        assert!((t.mean_window() - 2.5).abs() < 1e-12);
        assert_eq!(t.accesses().count(), 5);
        assert!(!t.is_empty());
    }

    #[test]
    fn empty_trace_statistics() {
        let t = SampledTrace::new(TraceMeta::new("t", 1000, 8192));
        assert_eq!(t.mean_window(), 0.0);
        assert!(t.is_empty());
    }

    #[test]
    fn full_trace_drop_rate() {
        let mut f = FullTrace::new(TraceMeta::new("t", 0, 0));
        assert_eq!(f.drop_rate(), 0.0);
        f.accesses = vec![acc(0), acc(1), acc(2)];
        f.dropped = 1;
        assert!((f.drop_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn full_trace_as_single_sample() {
        let mut f = FullTrace::new(TraceMeta::new("t", 0, 0));
        f.accesses = vec![acc(0), acc(1), acc(2)];
        let st = f.as_single_sample_trace();
        assert_eq!(st.num_samples(), 1);
        assert_eq!(st.observed_accesses(), 3);
        assert_eq!(st.meta.period, 3);
    }
}
