//! Symbol tables and source mapping.
//!
//! Binary instrumentation rewrites the instruction stream, so the new code
//! is no longer aligned with the load module's source-line mapping; the
//! paper extends DynInst with an interface that records the mapping between
//! new object code and source (§III-D). [`SourceMap`] models that recovered
//! mapping; [`SymbolTable`] maps instruction addresses to functions, which
//! the analyses use to form *code windows* (§IV-B) and attribute regions to
//! code (§IV-C2).

use crate::addr::Ip;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Dense function identifier, an index into [`SymbolTable::functions`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct FunctionId(pub u32);

impl std::fmt::Display for FunctionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A function symbol: name and half-open instruction range `[lo, hi)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionSym {
    /// Function identifier (its index in the table).
    pub id: FunctionId,
    /// Demangled name.
    pub name: String,
    /// First instruction address.
    pub lo: Ip,
    /// One past the last instruction address.
    pub hi: Ip,
    /// Source file, when known.
    pub src_file: String,
}

/// A symbol table over one (instrumented) load module.
///
/// Function ranges must be non-overlapping; lookup is a binary search.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SymbolTable {
    functions: Vec<FunctionSym>,
}

impl SymbolTable {
    /// An empty table.
    pub fn new() -> SymbolTable {
        SymbolTable::default()
    }

    /// Add a function covering `[lo, hi)`; returns its id.
    ///
    /// # Panics
    /// Panics if the range is empty or overlaps an existing function.
    pub fn add_function(
        &mut self,
        name: impl Into<String>,
        lo: Ip,
        hi: Ip,
        src_file: impl Into<String>,
    ) -> FunctionId {
        assert!(lo < hi, "function range must be non-empty");
        let id = FunctionId(self.functions.len() as u32);
        let sym = FunctionSym {
            id,
            name: name.into(),
            lo,
            hi,
            src_file: src_file.into(),
        };
        // Keep sorted by lo for binary-search lookup.
        let pos = self.functions.partition_point(|f| f.lo < sym.lo);
        if pos > 0 {
            assert!(
                self.functions[pos - 1].hi <= sym.lo,
                "function {} overlaps {}",
                sym.name,
                self.functions[pos - 1].name
            );
        }
        if pos < self.functions.len() {
            assert!(
                sym.hi <= self.functions[pos].lo,
                "function {} overlaps {}",
                sym.name,
                self.functions[pos].name
            );
        }
        self.functions.insert(pos, sym);
        // Re-number ids to be table indices after insertion sort.
        for (i, f) in self.functions.iter_mut().enumerate() {
            f.id = FunctionId(i as u32);
        }
        self.functions[pos].id
    }

    /// The function containing `ip`, if any.
    pub fn lookup(&self, ip: Ip) -> Option<&FunctionSym> {
        let pos = self.functions.partition_point(|f| f.lo <= ip);
        if pos == 0 {
            return None;
        }
        let f = &self.functions[pos - 1];
        (ip < f.hi).then_some(f)
    }

    /// The function with the given id.
    pub fn function(&self, id: FunctionId) -> Option<&FunctionSym> {
        self.functions.get(id.0 as usize)
    }

    /// Find a function id by exact name.
    pub fn find_by_name(&self, name: &str) -> Option<FunctionId> {
        self.functions.iter().find(|f| f.name == name).map(|f| f.id)
    }

    /// All functions, sorted by start address.
    pub fn functions(&self) -> &[FunctionSym] {
        &self.functions
    }

    /// Number of functions.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// True if the table has no functions.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }
}

/// Mapping from instrumented instruction addresses back to the original
/// addresses and source lines (paper §III-D).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SourceMap {
    map: BTreeMap<Ip, SourceLoc>,
}

/// One recovered source location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourceLoc {
    /// Address of the corresponding instruction in the *original* module.
    pub orig_ip: Ip,
    /// Source line number.
    pub line: u32,
}

impl SourceMap {
    /// An empty map.
    pub fn new() -> SourceMap {
        SourceMap::default()
    }

    /// Record that instrumented `new_ip` corresponds to `orig_ip` at `line`.
    pub fn record(&mut self, new_ip: Ip, orig_ip: Ip, line: u32) {
        self.map.insert(new_ip, SourceLoc { orig_ip, line });
    }

    /// Recover the original location of an instrumented instruction.
    pub fn resolve(&self, new_ip: Ip) -> Option<SourceLoc> {
        self.map.get(&new_ip).copied()
    }

    /// Number of mapped instructions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is mapped.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_within_ranges() {
        let mut t = SymbolTable::new();
        let a = t.add_function("alpha", Ip(0x100), Ip(0x200), "a.c");
        let b = t.add_function("beta", Ip(0x200), Ip(0x280), "b.c");
        assert_eq!(t.lookup(Ip(0x100)).unwrap().name, "alpha");
        assert_eq!(t.lookup(Ip(0x1ff)).unwrap().name, "alpha");
        assert_eq!(t.lookup(Ip(0x200)).unwrap().name, "beta");
        assert!(t.lookup(Ip(0x280)).is_none());
        assert!(t.lookup(Ip(0x50)).is_none());
        assert_eq!(t.function(a).unwrap().name, "alpha");
        assert_eq!(t.function(b).unwrap().name, "beta");
    }

    #[test]
    fn out_of_order_insertion_keeps_ids_dense() {
        let mut t = SymbolTable::new();
        t.add_function("hi", Ip(0x900), Ip(0xa00), "x.c");
        t.add_function("lo", Ip(0x100), Ip(0x200), "x.c");
        assert_eq!(t.functions()[0].name, "lo");
        assert_eq!(t.functions()[0].id, FunctionId(0));
        assert_eq!(t.functions()[1].id, FunctionId(1));
        assert_eq!(t.find_by_name("hi"), Some(FunctionId(1)));
        assert_eq!(t.find_by_name("missing"), None);
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlap_is_rejected() {
        let mut t = SymbolTable::new();
        t.add_function("a", Ip(0x100), Ip(0x200), "x.c");
        t.add_function("b", Ip(0x180), Ip(0x300), "x.c");
    }

    #[test]
    fn source_map_roundtrip() {
        let mut m = SourceMap::new();
        m.record(Ip(0x1004), Ip(0x1000), 42);
        let loc = m.resolve(Ip(0x1004)).unwrap();
        assert_eq!(loc.orig_ip, Ip(0x1000));
        assert_eq!(loc.line, 42);
        assert!(m.resolve(Ip(0x9999)).is_none());
        assert_eq!(m.len(), 1);
    }
}
