//! Chunked (sharded) trace container for streaming ingest.
//!
//! The v1 MGZT payload is monolithic: sample count up front, every
//! sample delta-chained to the previous one, so a decoder must walk the
//! whole byte stream to recover anything. Real collectors (HMTT-style
//! DMA windows, perf ring buffers) hand data over in bounded chunks;
//! this module adds a v2 framing of the same codec whose payload is a
//! sequence of self-delimiting *shard frames*, each decodable on its
//! own with O(shard) memory:
//!
//! ```text
//! magic "MGZT" | version u16 = 2 | kind u8 = 2 | meta | frames | trailer
//! frame   := frame_len varint (> 0) | payload
//! payload := nsamples varint | per sample as in v1, trigger delta
//!            chain restarting at 0 for each frame
//! trailer := 0 varint | total_loads varint | total_instr varint
//! ```
//!
//! The header's meta is provisional — a live collector does not know
//! the final load totals when it emits the header — and the trailer
//! patches `total_loads` / `total_instrumented_loads` once the stream
//! ends. A zero frame length is an unambiguous terminator because even
//! an empty frame's payload is at least one byte (its sample count).
//!
//! [`ShardWriter`] appends frames to any [`Write`] sink; [`ShardReader`]
//! iterates frames from any [`Read`] source, holding one decoded shard
//! at a time. [`encode_sharded`] / [`decode_sharded`] are in-memory
//! conveniences over the two.
//!
//! # Frame-index sidecar
//!
//! Shard frames are self-delimiting but not self-locating: a reader
//! must still scan the container front to back to find frame `k`. For
//! fan-out — worker processes each analyzing a contiguous frame range —
//! [`ShardWriter::finish_indexed`] additionally emits a [`FrameIndex`]
//! sidecar recording, per frame, the payload byte offset, payload
//! length, sample count, and an FNV-1a checksum, plus enough container
//! identity (header checksum, total length, trailer totals) that
//! [`FrameIndex::validate`] can detect a stale or mismatched
//! index-vs-container pair before any worker seeks with it.

use crate::error::ModelError;
use crate::hash::fnv1a64;
use crate::io::{
    decoded_usize, get_sample, get_varint, put_header, put_meta, put_sample, put_varint,
};
use crate::sample::{Sample, SampledTrace, TraceMeta};
use bytes::{Buf, BytesMut};
use std::io::{Read, Write};

const VERSION_SHARDED: u16 = 2;
const KIND_SHARDED: u8 = 2;

const INDEX_MAGIC: &[u8; 4] = b"MGZX";
const INDEX_VERSION: u16 = 1;

/// Default shard granularity for callers without a better-informed
/// choice: small enough to bound memory, large enough that per-frame
/// overhead (absolute first trigger, frame length) is negligible.
pub const DEFAULT_SHARD_SAMPLES: usize = 64;

/// Location and identity of one shard frame inside a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameIndexEntry {
    /// Byte offset of the frame's payload (past its length varint).
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// Samples encoded in the frame.
    pub samples: u64,
    /// FNV-1a checksum of the payload bytes.
    pub checksum: u64,
}

/// Sidecar index over a v2 sharded container: per-frame seek table plus
/// enough container identity to reject a stale or mismatched pairing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameIndex {
    /// Byte length of the container header + provisional meta.
    pub header_len: u64,
    /// FNV-1a checksum of those header bytes.
    pub header_checksum: u64,
    /// Total container length in bytes, trailer included.
    pub container_len: u64,
    /// Trailer `total_loads`, duplicated so workers need not scan to
    /// the trailer.
    pub total_loads: u64,
    /// Trailer `total_instrumented_loads`.
    pub total_instrumented_loads: u64,
    /// One entry per frame, in container order.
    pub entries: Vec<FrameIndexEntry>,
}

impl FrameIndex {
    /// Total samples across all indexed frames.
    pub fn total_samples(&self) -> u64 {
        self.entries.iter().map(|e| e.samples).sum()
    }

    /// Check that this index describes `container`. Cheap — O(header) —
    /// and catches the common staleness modes: a container rewritten
    /// with different meta or different length, or an index presented
    /// with the wrong container entirely. Per-frame payload corruption
    /// is caught lazily by [`read_frame`](Self::read_frame).
    pub fn validate(&self, container: &[u8]) -> Result<(), ModelError> {
        if self.container_len != container.len() as u64 {
            return Err(ModelError::StaleIndex {
                detail: format!(
                    "container is {} bytes, index describes {}",
                    container.len(),
                    self.container_len
                ),
            });
        }
        // Compare in u64 space before narrowing: an `as usize` cast of a
        // hostile header length would wrap on 32-bit targets and pass
        // the bound check with a bogus small value.
        if self.header_len > container.len() as u64 {
            return Err(ModelError::StaleIndex {
                detail: format!("header length {} exceeds container", self.header_len),
            });
        }
        let hdr = self.header_len as usize;
        let got = fnv1a64(&container[..hdr]);
        if got != self.header_checksum {
            return Err(ModelError::StaleIndex {
                detail: format!(
                    "header checksum {got:#018x} != indexed {:#018x}",
                    self.header_checksum
                ),
            });
        }
        for (i, e) in self.entries.iter().enumerate() {
            if e.offset
                .checked_add(e.len)
                .is_none_or(|end| end > self.container_len)
            {
                return Err(ModelError::StaleIndex {
                    detail: format!("frame {i} spans past the container end"),
                });
            }
        }
        Ok(())
    }

    /// Seek to frame `i` of `container` and decode its samples,
    /// verifying the indexed checksum first. The container is not
    /// scanned: only the indexed payload bytes are touched.
    pub fn read_frame(&self, container: &[u8], i: usize) -> Result<Vec<Sample>, ModelError> {
        let entry = self.entries.get(i).ok_or_else(|| ModelError::StaleIndex {
            detail: format!("frame {i} out of range ({} indexed)", self.entries.len()),
        })?;
        // Bounds-check in u64 space, then narrow: both casts are safe
        // once `end <= container.len()` holds, and a hostile offset/len
        // can no longer wrap through `as usize` on 32-bit targets.
        let end = entry
            .offset
            .checked_add(entry.len)
            .filter(|&end| end <= container.len() as u64);
        let Some(end) = end else {
            return Err(ModelError::StaleIndex {
                detail: format!("frame {i} spans past the container end"),
            });
        };
        let lo = entry.offset as usize;
        let hi = end as usize;
        let payload = &container[lo..hi];
        let got = fnv1a64(payload);
        if got != entry.checksum {
            return Err(ModelError::StaleIndex {
                detail: format!(
                    "frame {i} checksum {got:#018x} != indexed {:#018x}",
                    entry.checksum
                ),
            });
        }
        memgaze_obs::counter!("model.frames_decoded").add(1);
        memgaze_obs::counter!("model.frame_bytes").add(payload.len() as u64);
        decode_frame_payload(payload).map_err(|e| ModelError::InShard {
            shard: i as u64,
            source: Box::new(e),
        })
    }

    /// Serialize the index (`MGZX` framing, FNV-checksummed).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(32 + self.entries.len() * 16);
        buf.extend_from_slice(INDEX_MAGIC);
        buf.extend_from_slice(&INDEX_VERSION.to_le_bytes());
        put_varint(&mut buf, self.header_len);
        buf.extend_from_slice(&self.header_checksum.to_le_bytes());
        put_varint(&mut buf, self.container_len);
        put_varint(&mut buf, self.total_loads);
        put_varint(&mut buf, self.total_instrumented_loads);
        put_varint(&mut buf, self.entries.len() as u64);
        let mut prev_offset = 0u64;
        for e in &self.entries {
            // Offsets are strictly increasing, so delta-encode them.
            put_varint(&mut buf, e.offset - prev_offset);
            prev_offset = e.offset;
            put_varint(&mut buf, e.len);
            put_varint(&mut buf, e.samples);
            buf.extend_from_slice(&e.checksum.to_le_bytes());
        }
        let sum = fnv1a64(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        buf.to_vec()
    }

    /// Decode a serialized index, rejecting truncation and corruption.
    pub fn decode(data: &[u8]) -> Result<FrameIndex, ModelError> {
        if data.len() < 14 {
            return Err(ModelError::Truncated {
                context: "frame index",
            });
        }
        let (body, sum_bytes) = data.split_at(data.len() - 8);
        let want = u64::from_le_bytes(sum_bytes.try_into().expect("split_at gave 8 bytes"));
        if fnv1a64(body) != want {
            return Err(ModelError::BadHeader {
                detail: "frame index checksum mismatch".to_string(),
            });
        }
        let mut src = body;
        let mut magic = [0u8; 4];
        src.read_exact(&mut magic)
            .map_err(|e| map_eof(e, "frame index magic"))?;
        if &magic != INDEX_MAGIC {
            return Err(ModelError::BadHeader {
                detail: format!("frame index magic {magic:?}"),
            });
        }
        let mut ver = [0u8; 2];
        src.read_exact(&mut ver)
            .map_err(|e| map_eof(e, "frame index version"))?;
        let ver = u16::from_le_bytes(ver);
        if ver != INDEX_VERSION {
            return Err(ModelError::BadHeader {
                detail: format!("frame index version {ver}, expected {INDEX_VERSION}"),
            });
        }
        let header_len = read_varint(&mut src, "index header_len")?;
        let header_checksum = read_u64_le(&mut src, "index header_checksum")?;
        let container_len = read_varint(&mut src, "index container_len")?;
        let total_loads = read_varint(&mut src, "index total_loads")?;
        let total_instrumented_loads = read_varint(&mut src, "index total_instr")?;
        let n = decoded_usize(
            read_varint(&mut src, "index entry count")?,
            "index entry count",
        )?;
        // Each entry is at least 11 bytes encoded; bound the allocation.
        if n > body.len() / 11 {
            return Err(ModelError::Truncated {
                context: "frame index entries",
            });
        }
        let mut entries = Vec::with_capacity(n);
        let mut offset = 0u64;
        for _ in 0..n {
            offset += read_varint(&mut src, "index entry offset")?;
            entries.push(FrameIndexEntry {
                offset,
                len: read_varint(&mut src, "index entry len")?,
                samples: read_varint(&mut src, "index entry samples")?,
                checksum: read_u64_le(&mut src, "index entry checksum")?,
            });
        }
        if !src.is_empty() {
            return Err(ModelError::BadHeader {
                detail: format!("{} trailing bytes in frame index", src.len()),
            });
        }
        Ok(FrameIndex {
            header_len,
            header_checksum,
            container_len,
            total_loads,
            total_instrumented_loads,
            entries,
        })
    }
}

/// Incremental writer for the v2 sharded container.
pub struct ShardWriter<W: Write> {
    sink: W,
    shards: u64,
    samples: u64,
    scratch: BytesMut,
    /// Bytes written so far (header + frames).
    pos: u64,
    header_len: u64,
    header_checksum: u64,
    entries: Vec<FrameIndexEntry>,
}

impl<W: Write> ShardWriter<W> {
    /// Write the container header and provisional metadata. The load
    /// totals in `meta` are placeholders; [`finish`](Self::finish)
    /// writes the real values into the trailer.
    pub fn new(mut sink: W, meta: &TraceMeta) -> Result<ShardWriter<W>, ModelError> {
        let mut buf = BytesMut::with_capacity(64);
        put_header(&mut buf, VERSION_SHARDED, KIND_SHARDED);
        put_meta(&mut buf, meta);
        sink.write_all(&buf)?;
        Ok(ShardWriter {
            sink,
            shards: 0,
            samples: 0,
            scratch: BytesMut::new(),
            pos: buf.len() as u64,
            header_len: buf.len() as u64,
            header_checksum: fnv1a64(&buf),
            entries: Vec::new(),
        })
    }

    /// Append one shard frame holding `samples`, which must continue the
    /// container's global time order. Returns the frame's payload size
    /// in bytes.
    pub fn write_shard(&mut self, samples: &[Sample]) -> Result<usize, ModelError> {
        self.scratch.clear();
        put_varint(&mut self.scratch, samples.len() as u64);
        // The trigger delta chain restarts per frame so each frame is
        // decodable without its predecessors.
        let mut prev_trigger = 0u64;
        for s in samples {
            put_sample(&mut self.scratch, prev_trigger, s);
            prev_trigger = s.trigger_time;
        }
        let mut head = BytesMut::with_capacity(10);
        put_varint(&mut head, self.scratch.len() as u64);
        self.sink.write_all(&head)?;
        self.sink.write_all(&self.scratch)?;
        self.entries.push(FrameIndexEntry {
            offset: self.pos + head.len() as u64,
            len: self.scratch.len() as u64,
            samples: samples.len() as u64,
            checksum: fnv1a64(&self.scratch),
        });
        self.pos += (head.len() + self.scratch.len()) as u64;
        self.shards += 1;
        self.samples += samples.len() as u64;
        Ok(self.scratch.len())
    }

    /// Write the terminator and trailer (the final load totals) and
    /// return the sink.
    ///
    /// Totals are validated against what was actually streamed: every
    /// sample is triggered by at least one load, so a trailer claiming
    /// `total_loads < samples()` would seal a self-inconsistent
    /// container and is rejected with
    /// [`ModelError::InconsistentTotals`].
    pub fn finish(self, total_loads: u64, total_instrumented_loads: u64) -> Result<W, ModelError> {
        self.finish_indexed(total_loads, total_instrumented_loads)
            .map(|(sink, _)| sink)
    }

    /// Like [`finish`](Self::finish), but also return the
    /// [`FrameIndex`] sidecar accumulated while writing.
    pub fn finish_indexed(
        mut self,
        total_loads: u64,
        total_instrumented_loads: u64,
    ) -> Result<(W, FrameIndex), ModelError> {
        if total_loads < self.samples {
            return Err(ModelError::InconsistentTotals {
                total_loads,
                samples: self.samples,
            });
        }
        let mut tail = BytesMut::with_capacity(24);
        put_varint(&mut tail, 0);
        put_varint(&mut tail, total_loads);
        put_varint(&mut tail, total_instrumented_loads);
        self.sink.write_all(&tail)?;
        self.sink.flush()?;
        let index = FrameIndex {
            header_len: self.header_len,
            header_checksum: self.header_checksum,
            container_len: self.pos + tail.len() as u64,
            total_loads,
            total_instrumented_loads,
            entries: self.entries,
        };
        Ok((self.sink, index))
    }

    /// Frames written so far.
    pub fn shards(&self) -> u64 {
        self.shards
    }

    /// Samples written so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

/// One decoded shard frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Shard {
    /// Zero-based frame index within the container.
    pub index: u64,
    /// The shard's samples, in trace time order.
    pub samples: Vec<Sample>,
    /// Encoded payload size of this frame in bytes.
    pub encoded_bytes: usize,
}

/// Iterator decoding one shard frame at a time from any [`Read`]
/// source, holding O(shard) memory. Reads byte-at-a-time for varints,
/// so wrap slow sources in a [`std::io::BufReader`].
///
/// After the iterator yields `None` for a well-formed container,
/// [`meta`](Self::meta) reflects the trailer-patched load totals.
/// Decode failures are wrapped in [`ModelError::InShard`] naming the
/// failing frame, and the iterator fuses (yields `None` afterwards).
pub struct ShardReader<R: Read> {
    src: R,
    meta: TraceMeta,
    next_index: u64,
    done: bool,
    /// Frame-payload scratch reused across frames, so a steady-state
    /// read decodes every frame into already-warm capacity.
    payload: Vec<u8>,
}

impl<R: Read> ShardReader<R> {
    /// Read and validate the container header and provisional metadata.
    pub fn new(mut src: R) -> Result<ShardReader<R>, ModelError> {
        let mut hdr = [0u8; 7];
        src.read_exact(&mut hdr).map_err(|e| map_eof(e, "header"))?;
        if &hdr[..4] != crate::io::MAGIC {
            return Err(ModelError::BadHeader {
                detail: format!("magic {:?}", &hdr[..4]),
            });
        }
        let ver = u16::from_le_bytes([hdr[4], hdr[5]]);
        if ver != VERSION_SHARDED {
            return Err(ModelError::BadHeader {
                detail: format!("version {ver}, expected {VERSION_SHARDED}"),
            });
        }
        if hdr[6] != KIND_SHARDED {
            return Err(ModelError::BadHeader {
                detail: format!("kind {}, expected {KIND_SHARDED}", hdr[6]),
            });
        }
        let meta = read_meta(&mut src)?;
        Ok(ShardReader {
            src,
            meta,
            next_index: 0,
            done: false,
            payload: Vec::new(),
        })
    }

    /// Container metadata. Load totals are provisional until the
    /// trailer has been read (i.e. the iterator returned `None`).
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Whether the terminator (or an error) has been reached.
    pub fn is_finished(&self) -> bool {
        self.done
    }

    fn next_shard(&mut self) -> Result<Option<Shard>, ModelError> {
        let _span = memgaze_obs::span("model.decode_frame");
        let len = read_varint(&mut self.src, "frame length")?;
        if len == 0 {
            self.meta.total_loads = read_varint(&mut self.src, "trailer total_loads")?;
            self.meta.total_instrumented_loads =
                read_varint(&mut self.src, "trailer total_instrumented_loads")?;
            return Ok(None);
        }
        // A frame that cannot fit in this platform's address space is
        // rejected up front with a typed error — on 32-bit targets an
        // `as usize` narrowing here would wrap instead.
        let encoded_bytes = decoded_usize(len, "frame length")?;
        // Read exactly `len` payload bytes into the reusable scratch.
        // `take` + `read_to_end` grows the buffer only as data actually
        // arrives, so a corrupt length on a truncated stream cannot
        // trigger a giant allocation.
        self.payload.clear();
        self.payload.reserve(encoded_bytes.min(1 << 20));
        let got = (&mut self.src).take(len).read_to_end(&mut self.payload)?;
        if got as u64 != len {
            return Err(ModelError::Truncated {
                context: "shard frame",
            });
        }
        let samples = decode_frame_payload(&self.payload)?;
        memgaze_obs::counter!("model.frames_decoded").add(1);
        memgaze_obs::counter!("model.frame_bytes").add(len);
        let index = self.next_index;
        self.next_index += 1;
        Ok(Some(Shard {
            index,
            samples,
            encoded_bytes,
        }))
    }
}

impl<R: Read> Iterator for ShardReader<R> {
    type Item = Result<Shard, ModelError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.next_shard() {
            Ok(Some(shard)) => Some(Ok(shard)),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(ModelError::InShard {
                    shard: self.next_index,
                    source: Box::new(e),
                }))
            }
        }
    }
}

/// Decode one frame payload: sample count, then the per-frame delta
/// chain (trigger chain restarting at 0). Shared by the scanning
/// [`ShardReader`], the seeking [`FrameIndex::read_frame`], and the
/// `memgaze-store` blob path, which holds frame payloads outside any
/// container.
pub fn decode_frame_payload(mut buf: &[u8]) -> Result<Vec<Sample>, ModelError> {
    let n = decoded_usize(
        get_varint(&mut buf, "shard num_samples")?,
        "shard num_samples",
    )?;
    if n > buf.remaining() / 2 {
        return Err(ModelError::Truncated {
            context: "shard samples",
        });
    }
    let mut samples = Vec::with_capacity(n);
    let mut prev_trigger = 0u64;
    for index in 0..n {
        let s = get_sample(&mut buf, prev_trigger).map_err(|e| ModelError::InSample {
            index,
            source: Box::new(e),
        })?;
        prev_trigger = s.trigger_time;
        samples.push(s);
    }
    if buf.has_remaining() {
        return Err(ModelError::BadHeader {
            detail: format!("{} trailing bytes in shard frame", buf.remaining()),
        });
    }
    Ok(samples)
}

/// Encode a resident trace as a v2 sharded container with
/// `shard_samples` samples per frame.
///
/// Panics if the trace's own meta totals are inconsistent with its
/// sample count (see [`ShardWriter::finish`]); a resident
/// [`SampledTrace`] carrying untruthful totals is a caller bug.
pub fn encode_sharded(trace: &SampledTrace, shard_samples: usize) -> Vec<u8> {
    encode_sharded_indexed(trace, shard_samples).0
}

/// Like [`encode_sharded`], but also return the [`FrameIndex`] sidecar.
pub fn encode_sharded_indexed(trace: &SampledTrace, shard_samples: usize) -> (Vec<u8>, FrameIndex) {
    let mut w = ShardWriter::new(Vec::new(), &trace.meta).expect("writing to a Vec cannot fail");
    for chunk in trace.samples.chunks(shard_samples.max(1)) {
        w.write_shard(chunk).expect("writing to a Vec cannot fail");
    }
    w.finish_indexed(trace.meta.total_loads, trace.meta.total_instrumented_loads)
        .expect("resident trace meta totals must be consistent with its samples")
}

/// Decode a v2 sharded container back into a resident trace.
pub fn decode_sharded(data: &[u8]) -> Result<SampledTrace, ModelError> {
    let mut reader = ShardReader::new(data)?;
    let mut samples = Vec::new();
    for shard in reader.by_ref() {
        samples.extend(shard?.samples);
    }
    let mut trace = SampledTrace::new(reader.meta().clone());
    for s in samples {
        trace.push_sample(s)?;
    }
    Ok(trace)
}

fn map_eof(e: std::io::Error, context: &'static str) -> ModelError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        ModelError::Truncated { context }
    } else {
        ModelError::Io(e)
    }
}

fn read_byte<R: Read>(src: &mut R, context: &'static str) -> Result<u8, ModelError> {
    let mut b = [0u8; 1];
    src.read_exact(&mut b).map_err(|e| map_eof(e, context))?;
    Ok(b[0])
}

fn read_varint<R: Read>(src: &mut R, context: &'static str) -> Result<u64, ModelError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = read_byte(src, context)?;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(ModelError::BadHeader {
                detail: format!("varint overflow in {context}"),
            });
        }
    }
}

fn read_u64_le<R: Read>(src: &mut R, context: &'static str) -> Result<u64, ModelError> {
    let mut b = [0u8; 8];
    src.read_exact(&mut b).map_err(|e| map_eof(e, context))?;
    Ok(u64::from_le_bytes(b))
}

fn read_string<R: Read>(src: &mut R, context: &'static str) -> Result<String, ModelError> {
    let len = decoded_usize(read_varint(src, context)?, context)?;
    let mut raw = Vec::with_capacity(len.min(1 << 16));
    let got = src.take(len as u64).read_to_end(&mut raw)?;
    if got != len {
        return Err(ModelError::Truncated { context });
    }
    String::from_utf8(raw).map_err(|_| ModelError::BadHeader {
        detail: format!("non-utf8 string in {context}"),
    })
}

fn read_meta<R: Read>(src: &mut R) -> Result<TraceMeta, ModelError> {
    Ok(TraceMeta {
        workload: read_string(src, "meta.workload")?,
        period: read_varint(src, "meta.period")?,
        buffer_bytes: read_varint(src, "meta.buffer_bytes")?,
        total_loads: read_varint(src, "meta.total_loads")?,
        total_instrumented_loads: read_varint(src, "meta.total_instr")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::Access;
    use crate::io::encode_sampled;

    fn mk_trace(samples: usize, w: usize) -> SampledTrace {
        let mut t = SampledTrace::new(TraceMeta::new("stream-unit", 10_000, 16 << 10));
        t.meta.total_loads = (samples * 10_000) as u64;
        t.meta.total_instrumented_loads = (samples * 100) as u64;
        for s in 0..samples {
            let base = (s as u64) * 10_000;
            let accesses = (0..w)
                .map(|i| {
                    Access::new(
                        0x400u64 + (i as u64 % 7) * 4,
                        0x10_0000u64 + (i as u64) * 64,
                        base + i as u64,
                    )
                })
                .collect();
            t.push_sample(Sample::new(accesses, base + w as u64))
                .unwrap();
        }
        t
    }

    #[test]
    fn roundtrip_across_shard_sizes() {
        let t = mk_trace(13, 37);
        for shard in [1usize, 2, 5, 13, 100] {
            let bytes = encode_sharded(&t, shard);
            let back = decode_sharded(&bytes).unwrap();
            assert_eq!(t, back, "shard size {shard}");
        }
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = SampledTrace::new(TraceMeta::new("empty", 1000, 4096));
        let bytes = encode_sharded(&t, 16);
        let back = decode_sharded(&bytes).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn reader_yields_expected_shard_shapes() {
        let t = mk_trace(10, 8);
        let bytes = encode_sharded(&t, 4);
        let mut reader = ShardReader::new(&bytes[..]).unwrap();
        // Provisional meta is readable before any frame.
        assert_eq!(reader.meta().workload, "stream-unit");
        let shards: Vec<Shard> = reader.by_ref().map(|s| s.unwrap()).collect();
        assert_eq!(shards.len(), 3);
        assert_eq!(
            shards.iter().map(|s| s.samples.len()).collect::<Vec<_>>(),
            vec![4, 4, 2]
        );
        assert_eq!(shards[2].index, 2);
        assert!(reader.is_finished());
        // Trailer patched the totals.
        assert_eq!(reader.meta().total_loads, t.meta.total_loads);
        assert_eq!(
            reader.meta().total_instrumented_loads,
            t.meta.total_instrumented_loads
        );
    }

    #[test]
    fn trailer_patches_provisional_totals() {
        // Simulate a live collector: provisional meta with zero totals,
        // real totals only in the trailer.
        let t = mk_trace(6, 5);
        let mut provisional = t.meta.clone();
        provisional.total_loads = 0;
        provisional.total_instrumented_loads = 0;
        let mut w = ShardWriter::new(Vec::new(), &provisional).unwrap();
        for chunk in t.samples.chunks(2) {
            w.write_shard(chunk).unwrap();
        }
        assert_eq!(w.shards(), 3);
        assert_eq!(w.samples(), 6);
        let bytes = w.finish(42_000, 777).unwrap();
        let mut r = ShardReader::new(&bytes[..]).unwrap();
        assert_eq!(r.meta().total_loads, 0);
        for s in r.by_ref() {
            s.unwrap();
        }
        assert_eq!(r.meta().total_loads, 42_000);
        assert_eq!(r.meta().total_instrumented_loads, 777);
    }

    #[test]
    fn truncated_frame_names_failing_shard() {
        let t = mk_trace(9, 20);
        let bytes = encode_sharded(&t, 3);
        let cut = &bytes[..bytes.len() - 30];
        let reader = ShardReader::new(cut).unwrap();
        let results: Vec<Result<Shard, ModelError>> = reader.collect();
        let last = results.last().unwrap();
        match last {
            Err(e) => {
                assert_eq!(e.shard_index(), Some(2), "got {e}");
            }
            Ok(_) => panic!("truncated container must error"),
        }
        // Earlier shards still decoded.
        assert!(results[0].is_ok() && results[1].is_ok());
    }

    #[test]
    fn missing_terminator_is_an_error_not_silence() {
        let t = mk_trace(4, 10);
        let full = encode_sharded(&t, 2);
        // Drop the terminator + trailer entirely.
        let bytes = &full[..full.len() - 3];
        let reader = ShardReader::new(bytes).unwrap();
        let results: Vec<Result<Shard, ModelError>> = reader.collect();
        assert!(results.last().unwrap().is_err());
    }

    #[test]
    fn corrupt_frame_count_is_rejected_without_allocating() {
        let mut buf = BytesMut::new();
        put_header(&mut buf, VERSION_SHARDED, KIND_SHARDED);
        put_meta(&mut buf, &TraceMeta::new("corrupt", 1000, 4096));
        // Frame of 3 bytes claiming an absurd sample count.
        let mut payload = BytesMut::new();
        put_varint(&mut payload, u64::MAX >> 1);
        put_varint(&mut buf, payload.len() as u64);
        buf.extend_from_slice(&payload);
        let reader = ShardReader::new(&buf[..]).unwrap();
        let results: Vec<Result<Shard, ModelError>> = reader.collect();
        match results.last().unwrap() {
            Err(e) => assert_eq!(e.shard_index(), Some(0)),
            Ok(_) => panic!("corrupt count must error"),
        }
    }

    #[test]
    fn hostile_lengths_are_typed_errors_not_wraps() {
        // Regression: decoded counts/lengths/offsets used to be narrowed
        // with `as usize`, which silently truncates on 32-bit targets
        // and lets a hostile length wrap into a small allocation. Every
        // site now routes through `usize::try_from` into the typed
        // decode-error chain, so each of these ends in a typed error on
        // every pointer width — never a wrap, never a panic.

        // A frame payload claiming u64::MAX samples is rejected before
        // any allocation (Oversize on 32-bit, count-vs-bytes bound here).
        let mut payload = BytesMut::new();
        put_varint(&mut payload, u64::MAX);
        match decode_frame_payload(&payload) {
            Err(ModelError::Truncated { .. } | ModelError::Oversize { .. }) => {}
            other => panic!("expected typed rejection, got {other:?}"),
        }

        // A meta string whose length varint claims u64::MAX bytes.
        let mut buf = BytesMut::new();
        put_header(&mut buf, VERSION_SHARDED, KIND_SHARDED);
        put_varint(&mut buf, u64::MAX); // meta.workload length
        buf.extend_from_slice(b"x");
        match ShardReader::new(&buf[..]) {
            Err(ModelError::Truncated { .. } | ModelError::Oversize { .. }) => {}
            Err(other) => panic!("expected typed rejection, got {other:?}"),
            Ok(_) => panic!("hostile meta length must not decode"),
        }

        // A varint that never terminates within 64 bits of shift.
        let overlong = [0xffu8; 11];
        match read_varint(&mut &overlong[..], "overlong") {
            Err(ModelError::BadHeader { detail }) => assert!(detail.contains("varint overflow")),
            other => panic!("expected varint overflow, got {other:?}"),
        }

        // An index entry whose offset+len wraps u64 (or spans past the
        // container) fails validation and read_frame with typed errors.
        let t = mk_trace(3, 4);
        let (bytes, mut index) = encode_sharded_indexed(&t, 1);
        index.entries[0].offset = u64::MAX - 8;
        index.entries[0].len = 64;
        assert!(matches!(
            index.validate(&bytes),
            Err(ModelError::StaleIndex { .. })
        ));
        assert!(matches!(
            index.read_frame(&bytes, 0),
            Err(ModelError::StaleIndex { .. })
        ));

        // A header length larger than the container is a typed staleness
        // error even though it can no longer be compared post-wrap.
        let (bytes, mut index) = encode_sharded_indexed(&t, 1);
        index.header_len = u64::MAX;
        assert!(matches!(
            index.validate(&bytes),
            Err(ModelError::StaleIndex { .. })
        ));
    }

    #[test]
    fn v1_container_is_rejected_with_version_error() {
        let t = mk_trace(2, 4);
        let v1 = encode_sampled(&t);
        match ShardReader::new(v1.as_slice()) {
            Err(ModelError::BadHeader { detail }) => assert!(detail.contains("version")),
            Err(other) => panic!("expected BadHeader, got {other:?}"),
            Ok(_) => panic!("v1 container must be rejected"),
        }
    }

    #[test]
    fn v2_container_is_rejected_by_v1_decoder() {
        let t = mk_trace(2, 4);
        let v2 = encode_sharded(&t, 2);
        assert!(matches!(
            crate::io::decode_sampled(bytes::Bytes::from(v2)),
            Err(ModelError::BadHeader { .. })
        ));
    }

    #[test]
    fn finish_rejects_inconsistent_totals() {
        // Regression: a trailer claiming fewer total loads than samples
        // written used to seal a self-inconsistent container silently.
        let t = mk_trace(6, 5);
        let mut w = ShardWriter::new(Vec::new(), &t.meta).unwrap();
        for chunk in t.samples.chunks(2) {
            w.write_shard(chunk).unwrap();
        }
        match w.finish(3, 100) {
            Err(ModelError::InconsistentTotals {
                total_loads,
                samples,
            }) => {
                assert_eq!(total_loads, 3);
                assert_eq!(samples, 6);
            }
            other => panic!("expected InconsistentTotals, got {other:?}"),
        }
        // Equal totals are the boundary case and are fine.
        let mut w = ShardWriter::new(Vec::new(), &t.meta).unwrap();
        w.write_shard(&t.samples).unwrap();
        assert!(w.finish(6, 6).is_ok());
    }

    #[test]
    fn frame_index_locates_every_frame() {
        let t = mk_trace(11, 9);
        for shard in [1usize, 3, 4, 11] {
            let (bytes, index) = encode_sharded_indexed(&t, shard);
            index.validate(&bytes).unwrap();
            assert_eq!(index.entries.len(), t.samples.len().div_ceil(shard));
            assert_eq!(index.total_samples(), t.samples.len() as u64);
            assert_eq!(index.total_loads, t.meta.total_loads);
            let mut all = Vec::new();
            for i in 0..index.entries.len() {
                all.extend(index.read_frame(&bytes, i).unwrap());
            }
            assert_eq!(all, t.samples, "shard size {shard}");
        }
    }

    #[test]
    fn frame_index_roundtrips_through_codec() {
        let t = mk_trace(7, 12);
        let (_, index) = encode_sharded_indexed(&t, 3);
        let encoded = index.encode();
        let back = FrameIndex::decode(&encoded).unwrap();
        assert_eq!(index, back);
        // Truncation and bit flips are rejected, never mis-decoded.
        assert!(FrameIndex::decode(&encoded[..encoded.len() - 1]).is_err());
        let mut flipped = encoded.clone();
        flipped[10] ^= 0x40;
        assert!(FrameIndex::decode(&flipped).is_err());
    }

    #[test]
    fn stale_index_is_detected() {
        let a = mk_trace(6, 8);
        let mut b = mk_trace(6, 8);
        b.meta.workload = "other-workload".to_string();
        let (bytes_a, index_a) = encode_sharded_indexed(&a, 2);
        let (bytes_b, _) = encode_sharded_indexed(&b, 2);
        // Index from A does not validate against container B (different
        // meta ⇒ different header bytes and checksum).
        assert!(matches!(
            index_a.validate(&bytes_b),
            Err(ModelError::StaleIndex { .. })
        ));
        // A truncated container fails the length check.
        assert!(matches!(
            index_a.validate(&bytes_a[..bytes_a.len() - 1]),
            Err(ModelError::StaleIndex { .. })
        ));
        // Payload corruption is caught at read_frame via the checksum.
        let mut corrupt = bytes_a.clone();
        let off = index_a.entries[1].offset as usize;
        corrupt[off + 1] ^= 0xff;
        index_a.validate(&corrupt).unwrap();
        assert!(matches!(
            index_a.read_frame(&corrupt, 1),
            Err(ModelError::StaleIndex { .. })
        ));
        // Untouched frames still decode.
        assert!(index_a.read_frame(&corrupt, 0).is_ok());
    }

    #[test]
    fn reader_fuses_after_error() {
        let t = mk_trace(4, 10);
        let bytes = encode_sharded(&t, 2);
        let cut = &bytes[..bytes.len() - 20];
        let mut reader = ShardReader::new(cut).unwrap();
        let mut saw_err = false;
        for s in reader.by_ref() {
            if s.is_err() {
                saw_err = true;
            }
        }
        assert!(saw_err);
        assert!(reader.next().is_none());
        assert!(reader.next().is_none());
    }
}
