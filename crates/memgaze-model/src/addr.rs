//! Address, instruction-pointer, and block-granularity primitives.
//!
//! MemGaze analyses operate on *spatio-temporal blocks* (paper §IV-C2,
//! §V-B): reuse distance and footprint are computed with respect to a
//! configurable access-block size `b_a` (defaulting to a 64-byte cache
//! line) and a page size `b_p` used by the location zoom.

use serde::{Deserialize, Serialize};

/// A virtual data address, as written by a `ptwrite` payload.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Addr(pub u64);

impl Addr {
    /// The raw 64-bit address.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The containing block number at the given block size.
    #[inline]
    pub fn block(self, bs: BlockSize) -> u64 {
        self.0 >> bs.log2()
    }

    /// Byte offset within the containing block.
    #[inline]
    pub fn block_offset(self, bs: BlockSize) -> u64 {
        self.0 & (bs.bytes() - 1)
    }

    /// Address advanced by `delta` bytes.
    #[inline]
    pub fn offset(self, delta: i64) -> Addr {
        Addr(self.0.wrapping_add(delta as u64))
    }
}

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

/// An instruction pointer in a (possibly instrumented) load module.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Ip(pub u64);

impl Ip {
    /// The raw instruction address.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for Ip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ip:0x{:x}", self.0)
    }
}

impl From<u64> for Ip {
    fn from(v: u64) -> Self {
        Ip(v)
    }
}

/// A power-of-two block size used for spatio-temporal analysis.
///
/// Stored as `log2(bytes)` so block arithmetic is a shift. The paper uses a
/// 64-byte cache line for access blocks and an OS page (4 KiB) for
/// working-set analysis (§V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BlockSize {
    log2: u8,
}

impl BlockSize {
    /// A 64-byte cache line, the default access block `b_a`.
    pub const CACHE_LINE: BlockSize = BlockSize { log2: 6 };
    /// A 4-KiB OS page, the default working-set block.
    pub const OS_PAGE: BlockSize = BlockSize { log2: 12 };
    /// Byte granularity (block == address).
    pub const BYTE: BlockSize = BlockSize { log2: 0 };
    /// 8-byte word granularity, matching a `ptwrite` payload.
    pub const WORD: BlockSize = BlockSize { log2: 3 };

    /// Construct from a byte count, which must be a power of two.
    pub fn from_bytes(bytes: u64) -> Result<BlockSize, crate::ModelError> {
        if bytes == 0 || !bytes.is_power_of_two() {
            return Err(crate::ModelError::InvalidBlockSize(bytes));
        }
        Ok(BlockSize {
            log2: bytes.trailing_zeros() as u8,
        })
    }

    /// Construct directly from `log2(bytes)`.
    pub fn from_log2(log2: u8) -> BlockSize {
        debug_assert!(log2 < 64);
        BlockSize { log2 }
    }

    /// `log2` of the block size in bytes.
    #[inline]
    pub fn log2(self) -> u8 {
        self.log2
    }

    /// Block size in bytes.
    #[inline]
    pub fn bytes(self) -> u64 {
        1u64 << self.log2
    }
}

impl Default for BlockSize {
    fn default() -> Self {
        BlockSize::CACHE_LINE
    }
}

impl std::fmt::Display for BlockSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}B", self.bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_size_from_bytes() {
        assert_eq!(BlockSize::from_bytes(64).unwrap(), BlockSize::CACHE_LINE);
        assert_eq!(BlockSize::from_bytes(4096).unwrap(), BlockSize::OS_PAGE);
        assert_eq!(BlockSize::from_bytes(1).unwrap(), BlockSize::BYTE);
        assert!(BlockSize::from_bytes(0).is_err());
        assert!(BlockSize::from_bytes(48).is_err());
    }

    #[test]
    fn block_number_and_offset() {
        let a = Addr(0x1234);
        let bs = BlockSize::CACHE_LINE;
        assert_eq!(a.block(bs), 0x1234 >> 6);
        assert_eq!(a.block_offset(bs), 0x1234 & 63);
        // Two addresses in the same line share the block number.
        assert_eq!(Addr(0x1000).block(bs), Addr(0x103f).block(bs));
        assert_ne!(Addr(0x1000).block(bs), Addr(0x1040).block(bs));
    }

    #[test]
    fn byte_granularity_is_identity() {
        let a = Addr(0xdead_beef);
        assert_eq!(a.block(BlockSize::BYTE), a.raw());
        assert_eq!(a.block_offset(BlockSize::BYTE), 0);
    }

    #[test]
    fn addr_offset_wraps() {
        assert_eq!(Addr(10).offset(-4), Addr(6));
        assert_eq!(Addr(10).offset(4), Addr(14));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Addr(0xff).to_string(), "0xff");
        assert_eq!(Ip(0x40).to_string(), "ip:0x40");
        assert_eq!(BlockSize::CACHE_LINE.to_string(), "64B");
    }
}
