//! Compact on-disk trace encoding.
//!
//! MemGaze trace sizes matter (paper §VI-C, Table III): the collector's
//! output is what gets copied from the pinned kernel buffer and stored.
//! This module provides a delta + LEB128-varint codec for sampled and full
//! traces; the encoded byte counts are what the Table III space-savings
//! experiment reports.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic "MGZT" | version u16 | kind u8 | meta | payload
//! meta   := workload(len-prefixed utf8) | period | buffer_bytes
//!           | total_loads | total_instr        (all varint)
//! sampled payload := |σ| varint, then per sample:
//!           trigger_time Δvarint | w varint |
//!           per access: ip zigzag-Δ | addr zigzag-Δ | time Δ  (varints)
//! full payload := dropped varint | n varint | accesses as above
//! ```

use crate::access::Access;
use crate::error::ModelError;
use crate::sample::{FullTrace, Sample, SampledTrace, TraceMeta};
use bytes::{Buf, BufMut, Bytes, BytesMut};

pub(crate) const MAGIC: &[u8; 4] = b"MGZT";
const VERSION: u16 = 1;
const KIND_SAMPLED: u8 = 0;
const KIND_FULL: u8 = 1;

/// Append an unsigned LEB128 varint.
pub(crate) fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Read an unsigned LEB128 varint.
pub(crate) fn get_varint<B: Buf>(buf: &mut B, context: &'static str) -> Result<u64, ModelError> {
    // Fast path: a u64 varint is at most 10 bytes, so when the current
    // contiguous chunk holds that many the whole value decodes off the
    // slice with a single bounds decision instead of one per byte.
    let chunk = buf.chunk();
    if chunk.len() >= 10 {
        let mut v: u64 = 0;
        for (i, &byte) in chunk[..10].iter().enumerate() {
            v |= u64::from(byte & 0x7f) << (7 * i as u32);
            if byte & 0x80 == 0 {
                buf.advance(i + 1);
                return Ok(v);
            }
        }
        return Err(ModelError::BadHeader {
            detail: format!("varint overflow in {context}"),
        });
    }
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(ModelError::Truncated { context });
        }
        let byte = buf.get_u8();
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(ModelError::BadHeader {
                detail: format!("varint overflow in {context}"),
            });
        }
    }
}

/// Zigzag-encode a signed delta so small magnitudes stay small.
#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_string(buf: &mut BytesMut, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.put_slice(s.as_bytes());
}

/// Narrow a decoded count/length/offset to `usize`, rejecting values a
/// 32-bit target cannot address instead of letting `as usize` wrap them
/// into small (hostile-length-aliasing) allocations. On 64-bit targets
/// this never fails, but every decode path routes through it so the
/// codec is identical on both.
pub(crate) fn decoded_usize(v: u64, context: &'static str) -> Result<usize, ModelError> {
    usize::try_from(v).map_err(|_| ModelError::Oversize { context, value: v })
}

fn get_string<B: Buf>(buf: &mut B, context: &'static str) -> Result<String, ModelError> {
    let len = decoded_usize(get_varint(buf, context)?, context)?;
    if buf.remaining() < len {
        return Err(ModelError::Truncated { context });
    }
    let mut raw = vec![0u8; len];
    buf.copy_to_slice(&mut raw);
    String::from_utf8(raw).map_err(|_| ModelError::BadHeader {
        detail: format!("non-utf8 string in {context}"),
    })
}

pub(crate) fn put_meta(buf: &mut BytesMut, meta: &TraceMeta) {
    put_string(buf, &meta.workload);
    put_varint(buf, meta.period);
    put_varint(buf, meta.buffer_bytes);
    put_varint(buf, meta.total_loads);
    put_varint(buf, meta.total_instrumented_loads);
}

pub(crate) fn get_meta<B: Buf>(buf: &mut B) -> Result<TraceMeta, ModelError> {
    Ok(TraceMeta {
        workload: get_string(buf, "meta.workload")?,
        period: get_varint(buf, "meta.period")?,
        buffer_bytes: get_varint(buf, "meta.buffer_bytes")?,
        total_loads: get_varint(buf, "meta.total_loads")?,
        total_instrumented_loads: get_varint(buf, "meta.total_instr")?,
    })
}

/// Delta-encoding state for a run of accesses.
#[derive(Default)]
struct DeltaState {
    ip: u64,
    addr: u64,
    time: u64,
}

fn put_access(buf: &mut BytesMut, st: &mut DeltaState, a: &Access) {
    put_varint(buf, zigzag(a.ip.0.wrapping_sub(st.ip) as i64));
    put_varint(buf, zigzag(a.addr.0.wrapping_sub(st.addr) as i64));
    put_varint(buf, a.time.wrapping_sub(st.time));
    st.ip = a.ip.0;
    st.addr = a.addr.0;
    st.time = a.time;
}

fn get_access<B: Buf>(buf: &mut B, st: &mut DeltaState) -> Result<Access, ModelError> {
    let dip = unzigzag(get_varint(buf, "access.ip")?);
    let daddr = unzigzag(get_varint(buf, "access.addr")?);
    let dtime = get_varint(buf, "access.time")?;
    st.ip = st.ip.wrapping_add(dip as u64);
    st.addr = st.addr.wrapping_add(daddr as u64);
    st.time = st.time.wrapping_add(dtime);
    Ok(Access {
        ip: crate::Ip(st.ip),
        addr: crate::Addr(st.addr),
        time: st.time,
    })
}

pub(crate) fn put_header(buf: &mut BytesMut, version: u16, kind: u8) {
    buf.put_slice(MAGIC);
    buf.put_u16_le(version);
    buf.put_u8(kind);
}

fn check_header<B: Buf>(buf: &mut B, want_kind: u8) -> Result<(), ModelError> {
    if buf.remaining() < 7 {
        return Err(ModelError::Truncated { context: "header" });
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(ModelError::BadHeader {
            detail: format!("magic {magic:?}"),
        });
    }
    let ver = buf.get_u16_le();
    if ver != VERSION {
        return Err(ModelError::BadHeader {
            detail: format!("version {ver}"),
        });
    }
    let kind = buf.get_u8();
    if kind != want_kind {
        return Err(ModelError::BadHeader {
            detail: format!("kind {kind}, expected {want_kind}"),
        });
    }
    Ok(())
}

/// Append one sample: trigger delta from `prev_trigger`, window length,
/// then delta-coded accesses with a fresh [`DeltaState`]. Shared by the
/// v1 monolithic payload and the v2 shard frames.
pub(crate) fn put_sample(buf: &mut BytesMut, prev_trigger: u64, s: &Sample) {
    put_varint(buf, s.trigger_time.wrapping_sub(prev_trigger));
    put_varint(buf, s.accesses.len() as u64);
    let mut st = DeltaState::default();
    for a in &s.accesses {
        put_access(buf, &mut st, a);
    }
}

/// Decode one sample written by [`put_sample`]. The claimed window
/// length is validated against the remaining payload before any
/// allocation, so a corrupt count errors instead of reserving memory
/// for it.
pub(crate) fn get_sample<B: Buf>(buf: &mut B, prev_trigger: u64) -> Result<Sample, ModelError> {
    let trigger = prev_trigger.wrapping_add(get_varint(buf, "trigger_time")?);
    let w = decoded_usize(get_varint(buf, "window")?, "window")?;
    // Every encoded access costs at least three bytes (three varints).
    if w > buf.remaining() / 3 {
        return Err(ModelError::Truncated {
            context: "sample accesses",
        });
    }
    let mut st = DeltaState::default();
    let mut accesses = Vec::with_capacity(w);
    for _ in 0..w {
        accesses.push(get_access(buf, &mut st)?);
    }
    Ok(Sample::new(accesses, trigger))
}

/// Encode a sampled trace to its compact byte representation.
pub fn encode_sampled(trace: &SampledTrace) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + trace.observed_accesses() as usize * 4);
    put_header(&mut buf, VERSION, KIND_SAMPLED);
    put_meta(&mut buf, &trace.meta);
    put_varint(&mut buf, trace.samples.len() as u64);
    let mut prev_trigger = 0u64;
    for s in &trace.samples {
        put_sample(&mut buf, prev_trigger, s);
        prev_trigger = s.trigger_time;
    }
    buf.freeze()
}

/// Decode a sampled trace previously produced by [`encode_sampled`].
pub fn decode_sampled(mut data: Bytes) -> Result<SampledTrace, ModelError> {
    check_header(&mut data, KIND_SAMPLED)?;
    let meta = get_meta(&mut data)?;
    let n = decoded_usize(get_varint(&mut data, "num_samples")?, "num_samples")?;
    // Every encoded sample costs at least two bytes (two varints), so a
    // claimed count beyond that is corrupt; reject it before allocating.
    if n > data.remaining() / 2 {
        return Err(ModelError::Truncated { context: "samples" });
    }
    let mut trace = SampledTrace::new(meta);
    let mut trigger = 0u64;
    for index in 0..n {
        let s = get_sample(&mut data, trigger).map_err(|e| ModelError::InSample {
            index,
            source: Box::new(e),
        })?;
        trigger = s.trigger_time;
        trace.push_sample(s)?;
    }
    Ok(trace)
}

/// Encode a full trace.
pub fn encode_full(trace: &FullTrace) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + trace.accesses.len() * 4);
    put_header(&mut buf, VERSION, KIND_FULL);
    put_meta(&mut buf, &trace.meta);
    put_varint(&mut buf, trace.dropped);
    put_varint(&mut buf, trace.accesses.len() as u64);
    let mut st = DeltaState::default();
    for a in &trace.accesses {
        put_access(&mut buf, &mut st, a);
    }
    buf.freeze()
}

/// Decode a full trace previously produced by [`encode_full`].
pub fn decode_full(mut data: Bytes) -> Result<FullTrace, ModelError> {
    check_header(&mut data, KIND_FULL)?;
    let meta = get_meta(&mut data)?;
    let dropped = get_varint(&mut data, "dropped")?;
    let n = decoded_usize(get_varint(&mut data, "num_accesses")?, "num_accesses")?;
    if n > data.remaining() / 3 {
        return Err(ModelError::Truncated {
            context: "accesses",
        });
    }
    let mut st = DeltaState::default();
    let mut accesses = Vec::with_capacity(n);
    for _ in 0..n {
        accesses.push(get_access(&mut data, &mut st)?);
    }
    Ok(FullTrace {
        meta,
        accesses,
        dropped,
    })
}

/// Encoded size in bytes of a sampled trace (what Table III reports as the
/// 'MemGaze' column).
pub fn sampled_size_bytes(trace: &SampledTrace) -> u64 {
    encode_sampled(trace).len() as u64
}

/// Encoded size in bytes of a full trace ('Rec'/'All' columns of Table III,
/// depending on whether drops occurred upstream).
pub fn full_size_bytes(trace: &FullTrace) -> u64 {
    encode_full(trace).len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::Access;
    use crate::sample::{Sample, TraceMeta};

    fn mk_trace(samples: usize, w: usize) -> SampledTrace {
        let mut t = SampledTrace::new(TraceMeta::new("unit", 10_000, 16 << 10));
        t.meta.total_loads = (samples * 10_000) as u64;
        for s in 0..samples {
            let base = (s as u64) * 10_000;
            let accesses = (0..w)
                .map(|i| {
                    Access::new(
                        0x400u64 + (i as u64 % 7) * 4,
                        0x10_0000u64 + (i as u64) * 64,
                        base + i as u64,
                    )
                })
                .collect();
            t.push_sample(Sample::new(accesses, base + w as u64))
                .unwrap();
        }
        t
    }

    #[test]
    fn sampled_roundtrip() {
        let t = mk_trace(5, 100);
        let bytes = encode_sampled(&t);
        let back = decode_sampled(bytes).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn full_roundtrip() {
        let mut f = FullTrace::new(TraceMeta::new("unit", 0, 0));
        f.dropped = 17;
        f.accesses = (0..1000)
            .map(|i| Access::new(0x400u64, 0x1000u64 + i * 8, i))
            .collect();
        let back = decode_full(encode_full(&f)).unwrap();
        assert_eq!(f, back);
    }

    #[test]
    fn delta_coding_compresses_regular_streams() {
        // A strided stream should cost only a few bytes per access.
        let t = mk_trace(1, 10_000);
        let per_access = sampled_size_bytes(&t) as f64 / 10_000.0;
        assert!(
            per_access < 6.0,
            "expected < 6 B/access for strided stream, got {per_access}"
        );
    }

    #[test]
    fn truncated_input_is_rejected() {
        let t = mk_trace(2, 50);
        let bytes = encode_sampled(&t);
        for cut in [0usize, 3, 6, 10, bytes.len() - 1] {
            let sliced = bytes.slice(0..cut);
            assert!(decode_sampled(sliced).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn truncation_mid_sample_names_the_sample() {
        let t = mk_trace(3, 50);
        let bytes = encode_sampled(&t);
        // Cut deep into the payload: past the header, meta, and first
        // sample, but before the end — the error must locate a sample.
        let sliced = bytes.slice(0..bytes.len() - 10);
        match decode_sampled(sliced) {
            Err(ModelError::InSample { index, source }) => {
                assert_eq!(index, 2);
                assert!(matches!(
                    *source,
                    ModelError::Truncated { .. } | ModelError::BadHeader { .. }
                ));
            }
            other => panic!("expected InSample, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_sample_count_is_rejected_without_allocating() {
        // Header + meta, then a sample count far beyond the payload: the
        // decoder must refuse before reserving memory for it.
        let mut buf = BytesMut::new();
        put_header(&mut buf, VERSION, KIND_SAMPLED);
        put_meta(&mut buf, &TraceMeta::new("corrupt", 1000, 4096));
        put_varint(&mut buf, u64::MAX >> 1);
        assert!(matches!(
            decode_sampled(buf.freeze()),
            Err(ModelError::Truncated { .. })
        ));
    }

    #[test]
    fn corrupt_window_count_is_rejected_without_allocating() {
        let mut buf = BytesMut::new();
        put_header(&mut buf, VERSION, KIND_SAMPLED);
        put_meta(&mut buf, &TraceMeta::new("corrupt", 1000, 4096));
        put_varint(&mut buf, 1); // one sample
        put_varint(&mut buf, 5); // trigger delta
        put_varint(&mut buf, u64::MAX >> 1); // absurd window length
        match decode_sampled(buf.freeze()) {
            Err(ModelError::InSample { index: 0, source }) => {
                assert!(matches!(*source, ModelError::Truncated { .. }));
            }
            other => panic!("expected InSample, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_full_count_is_rejected() {
        let mut buf = BytesMut::new();
        put_header(&mut buf, VERSION, KIND_FULL);
        put_meta(&mut buf, &TraceMeta::new("corrupt", 0, 0));
        put_varint(&mut buf, 0); // dropped
        put_varint(&mut buf, u64::MAX >> 1); // absurd access count
        assert!(matches!(
            decode_full(buf.freeze()),
            Err(ModelError::Truncated { .. })
        ));
    }

    #[test]
    fn overlong_varint_is_rejected() {
        // Eleven continuation bytes cannot encode a u64.
        let mut buf = BytesMut::new();
        put_header(&mut buf, VERSION, KIND_SAMPLED);
        buf.put_slice(&[0xff; 11]);
        assert!(matches!(
            decode_sampled(buf.freeze()),
            Err(ModelError::BadHeader { .. })
        ));
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let t = mk_trace(1, 10);
        let bytes = encode_sampled(&t);
        assert!(matches!(
            decode_full(bytes),
            Err(ModelError::BadHeader { .. })
        ));
    }

    #[test]
    fn zigzag_inverts() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 12345, -98765] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn varint_roundtrip_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX] {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            let mut b = buf.freeze();
            assert_eq!(get_varint(&mut b, "t").unwrap(), v);
        }
    }
}
