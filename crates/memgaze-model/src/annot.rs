//! The auxiliary annotation file emitted by binary instrumentation
//! (paper §III-A, Fig. 2).
//!
//! For every instrumented load the instrumentor records, keyed by
//! instruction address: the load class, the literal scale/offset extracted
//! from the addressing mode, whether the load has two source registers
//! (which doubles its trace-space cost, §VI-C), and — for proxy
//! instructions — the number of *implied* Constant loads in the proxy's
//! basic block. The annotations make the compressed trace non-lossy: the
//! analyses recover `A_const(σ)` (and hence `κ`, Eq. 2) from the trace plus
//! this file.

use crate::access::LoadClass;
use crate::addr::Ip;
use crate::sample::SampledTrace;
use crate::symbols::FunctionId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-instruction annotation record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IpAnnot {
    /// Static class of this load.
    pub class: LoadClass,
    /// Number of Constant loads in the same basic block that this
    /// (proxy) instruction stands for. Zero for non-proxy instructions.
    pub implied_const: u32,
    /// Literal scale factor from the addressing mode (`k` in
    /// `[r_s1 + r_s2*k] + o`), 1 when absent.
    pub scale: u8,
    /// Literal displacement from the addressing mode.
    pub offset: i64,
    /// Whether the addressing mode uses two source registers; such loads
    /// cost two `ptwrite`s of trace space.
    pub two_source: bool,
    /// Enclosing function.
    pub func: FunctionId,
    /// Source line recovered through the source-mapping interface (§III-D).
    pub src_line: u32,
}

impl IpAnnot {
    /// A minimal annotation for the given class.
    pub fn of_class(class: LoadClass, func: FunctionId) -> IpAnnot {
        IpAnnot {
            class,
            implied_const: 0,
            scale: 1,
            offset: 0,
            two_source: false,
            func,
            src_line: 0,
        }
    }
}

/// The auxiliary annotation file: instruction address → annotation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AuxAnnotations {
    map: BTreeMap<Ip, IpAnnot>,
}

impl AuxAnnotations {
    /// An empty annotation set.
    pub fn new() -> AuxAnnotations {
        AuxAnnotations::default()
    }

    /// Insert (or replace) the annotation for `ip`.
    pub fn insert(&mut self, ip: Ip, annot: IpAnnot) {
        self.map.insert(ip, annot);
    }

    /// Look up the annotation for `ip`.
    pub fn get(&self, ip: Ip) -> Option<&IpAnnot> {
        self.map.get(&ip)
    }

    /// The load class recorded for `ip`, defaulting to Irregular for
    /// unannotated instructions (conservative: irregular loads are never
    /// compressed away, so an unknown ip must be treated as observed data).
    pub fn class_of(&self, ip: Ip) -> LoadClass {
        self.map.get(&ip).map_or(LoadClass::Irregular, |a| a.class)
    }

    /// Number of implied Constant loads carried by `ip` as a proxy.
    pub fn implied_const_of(&self, ip: Ip) -> u64 {
        self.map.get(&ip).map_or(0, |a| a.implied_const as u64)
    }

    /// Number of annotated instructions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no instruction is annotated.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate over `(ip, annotation)` pairs in address order.
    pub fn iter(&self) -> impl Iterator<Item = (&Ip, &IpAnnot)> + '_ {
        self.map.iter()
    }

    /// `A_const(σ)`: total Constant loads implied by the observed accesses
    /// of `trace` (paper Eq. 2 uses this to recover κ). "It is easy to
    /// calculate A_const(σ) from the combination of the trace and auxiliary
    /// annotations."
    pub fn implied_const_accesses(&self, trace: &SampledTrace) -> u64 {
        trace.accesses().map(|a| self.implied_const_of(a.ip)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::Access;
    use crate::sample::{Sample, TraceMeta};

    #[test]
    fn lookup_and_defaults() {
        let mut ax = AuxAnnotations::new();
        let mut a = IpAnnot::of_class(LoadClass::Strided, FunctionId(0));
        a.implied_const = 3;
        ax.insert(Ip(0x10), a);
        assert_eq!(ax.class_of(Ip(0x10)), LoadClass::Strided);
        assert_eq!(ax.implied_const_of(Ip(0x10)), 3);
        // Unknown ips are conservatively irregular with no implied loads.
        assert_eq!(ax.class_of(Ip(0x99)), LoadClass::Irregular);
        assert_eq!(ax.implied_const_of(Ip(0x99)), 0);
        assert_eq!(ax.len(), 1);
        assert!(!ax.is_empty());
    }

    #[test]
    fn implied_const_accumulates_over_trace() {
        let mut ax = AuxAnnotations::new();
        let mut proxy = IpAnnot::of_class(LoadClass::Strided, FunctionId(0));
        proxy.implied_const = 2;
        ax.insert(Ip(0x10), proxy);
        ax.insert(
            Ip(0x20),
            IpAnnot::of_class(LoadClass::Irregular, FunctionId(0)),
        );

        let mut t = SampledTrace::new(TraceMeta::new("t", 100, 8192));
        t.push_sample(Sample::new(
            vec![
                Access::new(Ip(0x10), 0x1000u64, 0),
                Access::new(Ip(0x20), 0x2000u64, 1),
                Access::new(Ip(0x10), 0x1040u64, 2),
            ],
            3,
        ))
        .unwrap();
        // Two proxy hits × 2 implied constants each.
        assert_eq!(ax.implied_const_accesses(&t), 4);
    }
}
