//! Trace model for MemGaze.
//!
//! This crate defines the data that flows through the MemGaze pipeline
//! (paper §II, Fig. 1): load-level memory [`Access`]es, fixed-size
//! [`Sample`]s of access sequences (paper Fig. 3), the [`SampledTrace`]
//! produced by the Processor-Tracing collector, the auxiliary annotation
//! file emitted by the binary instrumentor (paper §III-A), symbol/source
//! mapping, and the sample/compression ratio algebra of paper Eqs. (1)–(2).
//!
//! The crate is deliberately free of analysis logic; it is the vocabulary
//! shared by the instrumentor (`memgaze-instrument`), the Processor-Tracing
//! model (`memgaze-ptsim`), and the analyses (`memgaze-analysis`).

pub mod access;
pub mod addr;
pub mod annot;
pub mod error;
pub mod hash;
pub mod io;
pub mod ops;
pub mod ratio;
pub mod sample;
pub mod stream;
pub mod symbols;

pub use access::{Access, LoadClass};
pub use addr::{Addr, BlockSize, Ip};
pub use annot::{AuxAnnotations, IpAnnot};
pub use error::ModelError;
pub use hash::{fnv1a64, fnv1a64_seeded, Fnv64};
pub use ratio::{compression_ratio, sample_ratio, DecompressionInfo};
pub use sample::{FullTrace, Sample, SampledTrace, TraceMeta};
pub use stream::{
    decode_frame_payload, decode_sharded, encode_sharded, encode_sharded_indexed, FrameIndex,
    FrameIndexEntry, Shard, ShardReader, ShardWriter, DEFAULT_SHARD_SAMPLES,
};
pub use symbols::{FunctionId, FunctionSym, SymbolTable};
