//! Bridges between the workloads' [`LoadRecorder`] trait and the
//! Processor-Tracing stream collectors.

use memgaze_model::Ip;
use memgaze_ptsim::{StreamFull, StreamSampler};
use memgaze_workloads::LoadRecorder;

/// Routes workload loads into the sampled PT collector.
pub struct SamplerRecorder {
    /// The wrapped sampler.
    pub sampler: StreamSampler,
}

impl SamplerRecorder {
    /// Wrap a sampler.
    pub fn new(sampler: StreamSampler) -> SamplerRecorder {
        SamplerRecorder { sampler }
    }
}

impl LoadRecorder for SamplerRecorder {
    fn record(&mut self, ip: Ip, addr: u64, instrumented: bool, packets: u8) {
        self.sampler.on_load(ip, addr, instrumented, packets);
    }
}

/// Routes workload loads into the full-trace collector.
pub struct FullRecorder {
    /// The wrapped collector.
    pub full: StreamFull,
}

impl FullRecorder {
    /// Wrap a full collector.
    pub fn new(full: StreamFull) -> FullRecorder {
        FullRecorder { full }
    }
}

impl LoadRecorder for FullRecorder {
    fn record(&mut self, ip: Ip, addr: u64, instrumented: bool, packets: u8) {
        self.full.on_load(ip, addr, instrumented, packets);
    }
}

/// Fan-out to two recorders (e.g. sampled + full in a single run, so the
/// validation baseline sees the identical load stream).
pub struct TeeRecorder<A: LoadRecorder, B: LoadRecorder> {
    /// First target.
    pub a: A,
    /// Second target.
    pub b: B,
}

impl<A: LoadRecorder, B: LoadRecorder> TeeRecorder<A, B> {
    /// Tee to `a` and `b`.
    pub fn new(a: A, b: B) -> TeeRecorder<A, B> {
        TeeRecorder { a, b }
    }
}

impl<A: LoadRecorder, B: LoadRecorder> LoadRecorder for TeeRecorder<A, B> {
    fn record(&mut self, ip: Ip, addr: u64, instrumented: bool, packets: u8) {
        self.a.record(ip, addr, instrumented, packets);
        self.b.record(ip, addr, instrumented, packets);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memgaze_ptsim::SamplerConfig;

    #[test]
    fn tee_feeds_both() {
        let mut cfg = SamplerConfig::microbench();
        cfg.period = 100;
        let tee = TeeRecorder::new(
            SamplerRecorder::new(StreamSampler::new(cfg)),
            FullRecorder::new(StreamFull::unlimited()),
        );
        let mut tee = tee;
        for t in 0..1000u64 {
            tee.record(Ip(0x400), t * 64, true, 1);
        }
        let (trace, stats) = tee.a.sampler.finish("t");
        let full = tee.b.full.finish("t");
        assert_eq!(stats.total_loads, 1000);
        assert_eq!(full.accesses.len(), 1000);
        assert!(trace.num_samples() >= 9);
        // Sampled accesses are a subset of full accesses by (time, addr).
        let set: std::collections::HashSet<(u64, u64)> = full
            .accesses
            .iter()
            .map(|a| (a.time, a.addr.raw()))
            .collect();
        for a in trace.accesses() {
            assert!(set.contains(&(a.time, a.addr.raw())));
        }
    }
}
