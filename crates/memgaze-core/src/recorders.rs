//! Bridges between the workloads' [`LoadRecorder`] trait and the
//! Processor-Tracing stream collectors.

use memgaze_model::{FrameIndex, Ip, ModelError, Sample, ShardWriter, TraceMeta};
use memgaze_ptsim::{StreamFull, StreamSampler, StreamStats};
use memgaze_workloads::LoadRecorder;

/// Routes workload loads into the sampled PT collector.
pub struct SamplerRecorder {
    /// The wrapped sampler.
    pub sampler: StreamSampler,
}

impl SamplerRecorder {
    /// Wrap a sampler.
    pub fn new(sampler: StreamSampler) -> SamplerRecorder {
        SamplerRecorder { sampler }
    }
}

impl LoadRecorder for SamplerRecorder {
    fn record(&mut self, ip: Ip, addr: u64, instrumented: bool, packets: u8) {
        self.sampler.on_load(ip, addr, instrumented, packets);
    }
}

/// Routes workload loads into the full-trace collector.
pub struct FullRecorder {
    /// The wrapped collector.
    pub full: StreamFull,
}

impl FullRecorder {
    /// Wrap a full collector.
    pub fn new(full: StreamFull) -> FullRecorder {
        FullRecorder { full }
    }
}

impl LoadRecorder for FullRecorder {
    fn record(&mut self, ip: Ip, addr: u64, instrumented: bool, packets: u8) {
        self.full.on_load(ip, addr, instrumented, packets);
    }
}

/// Routes workload loads into the sampled collector and encodes completed
/// samples into sharded container frames as they retire, so the run never
/// holds more than one in-flight shard of decoded trace data.
pub struct StreamingRecorder {
    sampler: StreamSampler,
    writer: ShardWriter<Vec<u8>>,
    pending: Vec<Sample>,
    shard_samples: usize,
}

impl StreamingRecorder {
    /// Wrap a sampler, writing `shard_samples`-sample frames against the
    /// provisional `meta` (totals are patched by the trailer at finish).
    pub fn new(
        sampler: StreamSampler,
        meta: &TraceMeta,
        shard_samples: usize,
    ) -> StreamingRecorder {
        let writer = ShardWriter::new(Vec::new(), meta)
            .expect("writing a container header to a Vec cannot fail");
        StreamingRecorder {
            sampler,
            writer,
            pending: Vec::new(),
            shard_samples: shard_samples.max(1),
        }
    }

    /// Shard frames written so far.
    pub fn shards_written(&self) -> u64 {
        self.writer.shards()
    }

    fn flush_full_shards(&mut self) {
        while self.pending.len() >= self.shard_samples {
            let shard: Vec<Sample> = self.pending.drain(..self.shard_samples).collect();
            self.writer
                .write_shard(&shard)
                .expect("writing a shard frame to a Vec cannot fail");
        }
    }

    /// Flush the trailing partial sample and any undrained samples, then
    /// seal the container. Returns the encoded container bytes, the frame
    /// index sidecar, the final trace metadata, and collection stats.
    ///
    /// Sealing validates the trailer totals against the samples actually
    /// written; an inconsistency is a typed [`ModelError`], not a panic —
    /// the caller decides whether a bad recording is fatal.
    pub fn finish(
        self,
        workload: &str,
    ) -> Result<(Vec<u8>, FrameIndex, TraceMeta, StreamStats), ModelError> {
        let StreamingRecorder {
            sampler,
            mut writer,
            mut pending,
            shard_samples,
        } = self;
        let (meta, samples, stats) = sampler.finish_parts(workload);
        pending.extend(samples);
        for shard in pending.chunks(shard_samples) {
            writer
                .write_shard(shard)
                .expect("writing a shard frame to a Vec cannot fail");
        }
        let (container, index) =
            writer.finish_indexed(meta.total_loads, meta.total_instrumented_loads)?;
        Ok((container, index, meta, stats))
    }
}

impl LoadRecorder for StreamingRecorder {
    fn record(&mut self, ip: Ip, addr: u64, instrumented: bool, packets: u8) {
        self.sampler.on_load(ip, addr, instrumented, packets);
        if self.sampler.completed_samples() > 0 {
            let drained = self.sampler.take_completed();
            self.pending.extend(drained);
            self.flush_full_shards();
        }
    }
}

/// Fan-out to two recorders (e.g. sampled + full in a single run, so the
/// validation baseline sees the identical load stream).
pub struct TeeRecorder<A: LoadRecorder, B: LoadRecorder> {
    /// First target.
    pub a: A,
    /// Second target.
    pub b: B,
}

impl<A: LoadRecorder, B: LoadRecorder> TeeRecorder<A, B> {
    /// Tee to `a` and `b`.
    pub fn new(a: A, b: B) -> TeeRecorder<A, B> {
        TeeRecorder { a, b }
    }
}

impl<A: LoadRecorder, B: LoadRecorder> LoadRecorder for TeeRecorder<A, B> {
    fn record(&mut self, ip: Ip, addr: u64, instrumented: bool, packets: u8) {
        self.a.record(ip, addr, instrumented, packets);
        self.b.record(ip, addr, instrumented, packets);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memgaze_ptsim::SamplerConfig;

    #[test]
    fn tee_feeds_both() {
        let mut cfg = SamplerConfig::microbench();
        cfg.period = 100;
        let tee = TeeRecorder::new(
            SamplerRecorder::new(StreamSampler::new(cfg)),
            FullRecorder::new(StreamFull::unlimited()),
        );
        let mut tee = tee;
        for t in 0..1000u64 {
            tee.record(Ip(0x400), t * 64, true, 1);
        }
        let (trace, stats) = tee.a.sampler.finish("t");
        let full = tee.b.full.finish("t");
        assert_eq!(stats.total_loads, 1000);
        assert_eq!(full.accesses.len(), 1000);
        assert!(trace.num_samples() >= 9);
        // Sampled accesses are a subset of full accesses by (time, addr).
        let set: std::collections::HashSet<(u64, u64)> = full
            .accesses
            .iter()
            .map(|a| (a.time, a.addr.raw()))
            .collect();
        for a in trace.accesses() {
            assert!(set.contains(&(a.time, a.addr.raw())));
        }
    }

    #[test]
    fn streaming_recorder_container_matches_resident_trace() {
        let mut cfg = SamplerConfig::microbench();
        cfg.period = 100;
        let provisional = TraceMeta::new("t", cfg.period, cfg.buffer_bytes);
        let mut resident = SamplerRecorder::new(StreamSampler::new(cfg.clone()));
        let mut streaming = StreamingRecorder::new(StreamSampler::new(cfg), &provisional, 3);
        for t in 0..5000u64 {
            let addr = (t * 37) % 4096 * 64;
            resident.record(Ip(0x400 + t % 7), addr, true, 1);
            streaming.record(Ip(0x400 + t % 7), addr, true, 1);
        }
        let (trace, res_stats) = resident.sampler.finish("t");
        assert!(streaming.shards_written() > 1);
        let (container, index, meta, stats) = streaming.finish("t").unwrap();
        assert_eq!(meta, trace.meta);
        assert_eq!(stats.total_loads, res_stats.total_loads);
        let decoded = memgaze_model::decode_sharded(&container).unwrap();
        assert_eq!(decoded, trace);
        // The sidecar matches the container it was written alongside.
        index.validate(&container).unwrap();
        assert_eq!(index.total_samples(), trace.num_samples() as u64);
    }
}
