//! The end-to-end pipeline drivers.

use crate::recorders::SamplerRecorder;
use memgaze_analysis::{AnalysisConfig, Analyzer};
use memgaze_instrument::{InstrumentConfig, Instrumented, Instrumenter};
use memgaze_model::{AuxAnnotations, FullTrace, SampledTrace, SymbolTable};
use memgaze_ptsim::{
    BandwidthModel, OverheadModel, RunStats, SamplerConfig, StreamFull, StreamSampler, StreamStats,
};
use memgaze_workloads::ubench::MicroBench;
use memgaze_workloads::{Allocation, FnRecorder, Phase, TracedSpace};
use serde::{Deserialize, Serialize};

/// Pipeline configuration: collection, instrumentation, analysis, and
/// overhead-model parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Processor-Tracing collection parameters.
    pub sampler: SamplerConfig,
    /// Instrumentor configuration (ROI, compression).
    pub instrument: InstrumentConfig,
    /// Analysis parameters.
    pub analysis: AnalysisConfig,
    /// Overhead-model constants.
    pub overhead: OverheadModel,
}

impl PipelineConfig {
    /// The paper's microbenchmark setup: 10-K-load period, 16-KiB buffer.
    pub fn microbench() -> PipelineConfig {
        PipelineConfig {
            sampler: SamplerConfig::microbench(),
            instrument: InstrumentConfig::default(),
            analysis: AnalysisConfig::default(),
            overhead: OverheadModel::default(),
        }
    }

    /// The paper's application setup: large period, 8-KiB buffer.
    pub fn application(period: u64) -> PipelineConfig {
        PipelineConfig {
            sampler: SamplerConfig::application(period),
            instrument: InstrumentConfig::default(),
            analysis: AnalysisConfig::default(),
            overhead: OverheadModel::default(),
        }
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig::microbench()
    }
}

/// Result of tracing an IR microbenchmark.
pub struct MicroReport {
    /// The decoded sampled trace.
    pub trace: SampledTrace,
    /// Instrumentation side tables (annotations keyed by original ip).
    pub instrumented: Instrumented,
    /// Run statistics (exec + packets).
    pub run: RunStats,
}

impl MicroReport {
    /// An analyzer over this report.
    pub fn analyzer(&self, cfg: AnalysisConfig) -> Analyzer<'_> {
        Analyzer::new(
            &self.trace,
            &self.instrumented.annots,
            &self.instrumented.orig_symbols,
        )
        .with_config(cfg)
    }
}

/// Result of tracing a native workload.
pub struct WorkloadReport {
    /// The sampled trace.
    pub trace: SampledTrace,
    /// Annotation file from the site registry.
    pub annots: AuxAnnotations,
    /// Symbols from the site registry.
    pub symbols: SymbolTable,
    /// Per-phase execution counters.
    pub phases: Vec<Phase>,
    /// Collection statistics.
    pub stream: StreamStats,
    /// Simulated allocations (object → address range).
    pub allocations: Vec<Allocation>,
}

impl WorkloadReport {
    /// An analyzer over this report.
    pub fn analyzer(&self, cfg: AnalysisConfig) -> Analyzer<'_> {
        Analyzer::new(&self.trace, &self.annots, &self.symbols).with_config(cfg)
    }

    /// Address range of the most recent allocation with `label`.
    pub fn object_range(&self, label: &str) -> Option<(u64, u64)> {
        self.allocations
            .iter()
            .rev()
            .find(|a| a.label == label)
            .map(|a| (a.base, a.base + a.bytes))
    }

    /// Address range covering *all* allocations with `label`.
    pub fn label_range(&self, label: &str) -> Option<(u64, u64)> {
        let mut lo = u64::MAX;
        let mut hi = 0;
        for a in self.allocations.iter().filter(|a| a.label == label) {
            lo = lo.min(a.base);
            hi = hi.max(a.base + a.bytes);
        }
        (lo < hi).then_some((lo, hi))
    }
}

/// Result of full-trace collection over a workload.
pub struct FullWorkloadReport {
    /// The full trace ('Rec' when a bandwidth model dropped packets,
    /// 'All' otherwise).
    pub trace: FullTrace,
    /// Annotation file.
    pub annots: AuxAnnotations,
    /// Symbols.
    pub symbols: SymbolTable,
    /// Per-phase counters.
    pub phases: Vec<Phase>,
    /// Allocations.
    pub allocations: Vec<Allocation>,
}

/// Interpreter step budget for profiling and collection runs.
pub(crate) const MAX_INSTRS: u64 = 2_000_000_000;

/// The pipeline façade.
pub struct MemGaze {
    cfg: PipelineConfig,
}

impl MemGaze {
    /// A pipeline with the given configuration.
    pub fn new(cfg: PipelineConfig) -> MemGaze {
        MemGaze { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// Run a microbenchmark end-to-end on the IR path: generate,
    /// instrument (`ptwrite` insertion), execute, collect, decode.
    pub fn run_microbench(
        &self,
        bench: &MicroBench,
    ) -> Result<MicroReport, Box<dyn std::error::Error>> {
        let module = bench.module();
        let inst = Instrumenter::new(self.cfg.instrument.clone()).instrument(&module);
        let main = inst
            .module
            .find_proc("main")
            .ok_or("generated module lacks a main procedure")?;
        let (trace, run, _outcome) =
            memgaze_ptsim::collect_sampled(&inst, main, self.cfg.sampler.clone(), &bench.name())?;
        Ok(MicroReport {
            trace,
            instrumented: inst,
            run,
        })
    }

    /// Ground-truth full trace of a microbenchmark (validation baseline).
    pub fn microbench_ground_truth(
        &self,
        bench: &MicroBench,
    ) -> Result<FullTrace, Box<dyn std::error::Error>> {
        let module = bench.module();
        let main = module
            .find_proc("main")
            .ok_or("generated module lacks a main procedure")?;
        let (trace, _stats) = memgaze_ptsim::ground_truth(&module, main, &bench.name())?;
        Ok(trace)
    }
}

/// Trace a native workload through the sampled collector. The closure
/// receives the traced space and performs the workload; its return value
/// is passed through.
pub fn trace_workload<T>(
    name: &str,
    cfg: &SamplerConfig,
    run: impl FnOnce(&mut TracedSpace<SamplerRecorder>) -> T,
) -> (WorkloadReport, T) {
    let recorder = SamplerRecorder::new(StreamSampler::new(cfg.clone()));
    let mut space = TracedSpace::new(recorder);
    let value = run(&mut space);
    let annots = space.annotations();
    let symbols = space.symbols();
    let phases = space.phases().to_vec();
    let allocations = space.allocations().to_vec();
    let recorder = space.into_recorder();
    let (trace, stream) = recorder.sampler.finish(name);
    (
        WorkloadReport {
            trace,
            annots,
            symbols,
            phases,
            stream,
            allocations,
        },
        value,
    )
}

/// Collect a full trace of a native workload ('Rec' with a bandwidth
/// model, 'All' with `None`).
pub fn full_trace_workload<T>(
    name: &str,
    bw: Option<BandwidthModel>,
    compress: bool,
    run: impl FnOnce(&mut TracedSpace<crate::recorders::FullRecorder>) -> T,
) -> (FullWorkloadReport, T) {
    let full = match bw {
        Some(b) => StreamFull::new(b),
        None => StreamFull::unlimited(),
    };
    let mut space = TracedSpace::new(crate::recorders::FullRecorder::new(full));
    space.set_compress(compress);
    let value = run(&mut space);
    let annots = space.annotations();
    let symbols = space.symbols();
    let phases = space.phases().to_vec();
    let allocations = space.allocations().to_vec();
    let trace = space.into_recorder().full.finish(name);
    (
        FullWorkloadReport {
            trace,
            annots,
            symbols,
            phases,
            allocations,
        },
        value,
    )
}

/// Count a workload's loads without collecting anything (used to size
/// sampling periods).
pub fn dry_run_loads<T>(
    run: impl FnOnce(&mut TracedSpace<FnRecorder<fn(memgaze_model::Ip, u64, bool, u8)>>) -> T,
) -> (u64, T) {
    fn nop(_: memgaze_model::Ip, _: u64, _: bool, _: u8) {}
    let mut space = TracedSpace::new(FnRecorder(nop as fn(memgaze_model::Ip, u64, bool, u8)));
    let value = run(&mut space);
    (space.counters().loads, value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memgaze_workloads::minivite::{self, MapVariant, MiniViteConfig};
    use memgaze_workloads::ubench::{MicroBench, OptLevel};

    #[test]
    fn microbench_pipeline_end_to_end() {
        let bench = MicroBench::parse("str2|irr", 1024, 10, OptLevel::O3).unwrap();
        let mut cfg = PipelineConfig::microbench();
        cfg.sampler.period = 2000;
        let report = MemGaze::new(cfg.clone()).run_microbench(&bench).unwrap();
        assert!(report.trace.num_samples() > 1);
        assert!(report.run.exec.ptwrites > 0);

        let analyzer = report.analyzer(cfg.analysis);
        let rows = analyzer.function_table();
        assert!(rows.iter().any(|r| r.name == "kernel"));
        // The kernel mixes strided and irregular loads.
        let kernel = rows.iter().find(|r| r.name == "kernel").unwrap();
        assert!(kernel.f_str_pct > 0.0 && kernel.f_str_pct < 100.0);
    }

    #[test]
    fn workload_pipeline_end_to_end() {
        let mut cfg = SamplerConfig::application(20_000);
        cfg.seed = 9;
        let mv = MiniViteConfig {
            scale: 7,
            degree: 6,
            iterations: 1,
            variant: MapVariant::V2,
            seed: 3,
            v2_default_capacity: 64,
        };
        let (report, result) =
            trace_workload("miniVite-v2", &cfg, |space| minivite::run(space, &mv));
        assert!(!result.communities.is_empty());
        assert!(report.trace.num_samples() > 0);
        assert!(report.stream.total_loads > 20_000);
        assert_eq!(report.phases.len(), 3);
        assert!(report.label_range("map").is_some());

        let analyzer = report.analyzer(AnalysisConfig::default());
        let rows = analyzer.function_table();
        assert!(
            rows.iter().any(|r| r.name == "map.insert"),
            "hot functions: {:?}",
            rows.iter().map(|r| r.name.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn full_and_sampled_see_same_stream() {
        let mv = MiniViteConfig {
            scale: 6,
            degree: 4,
            iterations: 1,
            variant: MapVariant::V1,
            seed: 3,
            v2_default_capacity: 64,
        };
        let (full, _) = full_trace_workload("mv", None, true, |s| minivite::run(s, &mv));
        let (loads, _) = dry_run_loads(|s| minivite::run(s, &mv));
        assert_eq!(full.trace.meta.total_loads, loads);
        assert!(full.trace.accesses.len() as u64 <= loads);
        assert_eq!(full.trace.dropped, 0);
    }

    #[test]
    fn uncompressed_full_trace_is_larger() {
        let mv = MiniViteConfig {
            scale: 6,
            degree: 4,
            iterations: 1,
            variant: MapVariant::V1,
            seed: 3,
            v2_default_capacity: 64,
        };
        let (comp, _) = full_trace_workload("mv", None, true, |s| minivite::run(s, &mv));
        let (unc, _) = full_trace_workload("mv", None, false, |s| minivite::run(s, &mv));
        // miniVite's sites are all non-constant here, so the counts can
        // tie; the uncompressed trace must never be smaller.
        assert!(unc.trace.accesses.len() >= comp.trace.accesses.len());
    }
}
